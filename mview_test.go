package mview

import (
	"strings"
	"testing"
)

func openExample41(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.CreateRelation("r", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation("s", "C", "D"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v", ViewSpec{
		From:   []string{"r", "s"},
		Where:  "A < 10 && C > 5 && B = C",
		Select: []string{"A", "D"},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openExample41(t)
	info, err := db.Exec(Insert("r", 9, 10), Insert("s", 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if info.Inserted != 2 || info.ViewsRefreshed != 1 {
		t.Errorf("TxInfo = %+v", info)
	}
	rows, err := db.View("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[0] != 9 || rows[0].Values[1] != 20 || rows[0].Count != 1 {
		t.Errorf("rows = %+v", rows)
	}
	schema, err := db.ViewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 2 || schema[0] != "r.A" || schema[1] != "s.D" {
		t.Errorf("schema = %v", schema)
	}
}

func TestRelevantAPI(t *testing.T) {
	db := openExample41(t)
	// The paper's Example 4.1 verdicts through the public API.
	rel, err := db.Relevant("v", "r", 9, 10)
	if err != nil || !rel {
		t.Errorf("Relevant(9,10) = %v, %v", rel, err)
	}
	rel, err = db.Relevant("v", "r", 11, 10)
	if err != nil || rel {
		t.Errorf("Relevant(11,10) = %v, %v", rel, err)
	}
	if _, err := db.Relevant("v", "nope", 1); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := db.Relevant("nope", "r", 1); err == nil {
		t.Error("unknown view must fail")
	}
}

func TestDeferredAndStats(t *testing.T) {
	db := openExample41(t)
	if err := db.CreateView("snap", ViewSpec{From: []string{"r"}, Where: "A < 5"}, OnDemand(), WithFilter()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(Insert("r", 1, 1), Insert("r", 99, 1)); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.View("snap")
	if len(rows) != 0 {
		t.Errorf("deferred view should be stale: %+v", rows)
	}
	st, err := db.Stats("snap")
	if err != nil || st.PendingTx != 1 {
		t.Errorf("stats = %+v, %v", st, err)
	}
	if err := db.Refresh("snap"); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.View("snap")
	if len(rows) != 1 || rows[0].Values[0] != 1 {
		t.Errorf("after refresh: %+v", rows)
	}
	st, _ = db.Stats("snap")
	if st.FilteredOut != 1 {
		t.Errorf("filter should have dropped (99,1): %+v", st)
	}
	if err := db.RefreshAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNetChurnInvisible(t *testing.T) {
	db := openExample41(t)
	info, err := db.Exec(Insert("r", 1, 1), Delete("r", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if info.Inserted != 0 || info.Deleted != 0 || info.ViewsRefreshed != 0 {
		t.Errorf("churn leaked: %+v", info)
	}
}

func TestCreateJoinView(t *testing.T) {
	db := Open()
	_ = db.CreateRelation("r", "A", "B")
	_ = db.CreateRelation("s", "B", "C")
	if err := db.CreateJoinView("j", []string{"r", "s"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(Insert("r", 1, 2), Insert("s", 2, 3)); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.View("j")
	if len(rows) != 1 || rows[0].Values[2] != 3 {
		t.Errorf("join view = %+v", rows)
	}
	if err := db.CreateJoinView("bad", []string{"nope"}); err == nil {
		t.Error("unknown relation must fail")
	}
}

func TestAliasesInFrom(t *testing.T) {
	db := Open()
	_ = db.CreateRelation("r", "A", "B")
	if err := db.CreateView("self", ViewSpec{
		From:  []string{"r x", "r AS y"},
		Where: "x.B = y.A",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(Insert("r", 1, 2), Insert("r", 2, 9)); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.View("self")
	if len(rows) != 1 {
		t.Errorf("self-join rows = %+v", rows)
	}
	if err := db.CreateView("bad", ViewSpec{From: []string{"r a b c"}}); err == nil {
		t.Error("malformed From must fail")
	}
	if err := db.CreateView("bad2", ViewSpec{}); err == nil {
		t.Error("empty From must fail")
	}
	if err := db.CreateView("bad3", ViewSpec{From: []string{"r"}, Where: "A <"}); err == nil {
		t.Error("bad Where must fail")
	}
}

func TestQueryAndRows(t *testing.T) {
	db := openExample41(t)
	if _, err := db.Exec(Insert("r", 3, 4), Insert("r", 7, 8)); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(ViewSpec{From: []string{"r"}, Where: "A > 5", Select: []string{"B"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[0] != 8 {
		t.Errorf("query = %+v", rows)
	}
	base, err := db.Rows("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 || base[0][0] != 3 {
		t.Errorf("base rows = %+v", base)
	}
	if _, err := db.Rows("nope"); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := db.Query(ViewSpec{From: []string{"zzz"}}); err == nil {
		t.Error("unknown relation in query must fail")
	}
}

func TestRecomputeOptionAndLists(t *testing.T) {
	db := openExample41(t)
	if err := db.CreateView("w", ViewSpec{From: []string{"r"}}, WithRecompute()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(Insert("r", 1, 1)); err != nil {
		t.Fatal(err)
	}
	st, _ := db.Stats("w")
	if st.Recomputes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := db.Relations(); len(got) != 2 {
		t.Errorf("Relations = %v", got)
	}
	if got := db.Views(); len(got) != 2 {
		t.Errorf("Views = %v", got)
	}
	if err := db.DropView("w"); err != nil {
		t.Fatal(err)
	}
	if got := db.Views(); len(got) != 1 {
		t.Errorf("Views = %v", got)
	}
}

func TestUpdateOpAndExplainAndSaveLoad(t *testing.T) {
	db := openExample41(t)
	if _, err := db.Exec(Insert("r", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(Update("r", []int64{1, 2}, []int64{1, 9})...); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.Rows("r")
	if len(rows) != 1 || rows[0][1] != 9 {
		t.Errorf("after Update: %v", rows)
	}

	out, err := db.Explain("v")
	if err != nil || len(out) == 0 {
		t.Errorf("Explain: %q, %v", out, err)
	}

	var buf strings.Builder
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	rows2, _ := db2.Rows("r")
	if len(rows2) != 1 || rows2[0][1] != 9 {
		t.Errorf("after Load: %v", rows2)
	}
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("Load(garbage) must fail")
	}
}

func TestSubscribe(t *testing.T) {
	db := openExample41(t)
	var changes []Change
	cancel, err := db.Subscribe("v", func(c Change) { changes = append(changes, c) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(Insert("r", 9, 10), Insert("s", 10, 20)); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || len(changes[0].Inserts) != 1 || changes[0].View != "v" {
		t.Fatalf("changes = %+v", changes)
	}
	if changes[0].Inserts[0].Values[0] != 9 || changes[0].Inserts[0].Values[1] != 20 {
		t.Errorf("insert payload = %+v", changes[0].Inserts)
	}
	// Irrelevant update: no wake-up.
	if _, err := db.Exec(Insert("r", 11, 10)); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Errorf("irrelevant update woke subscriber: %+v", changes)
	}
	cancel()
	if _, err := db.Exec(Delete("s", 10, 20)); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Errorf("cancelled subscriber woken: %+v", changes)
	}
	if _, err := db.Subscribe("zzz", func(Change) {}); err == nil {
		t.Error("unknown view must fail")
	}
}

func TestAdaptiveOption(t *testing.T) {
	db := openExample41(t)
	if err := db.CreateView("a", ViewSpec{From: []string{"r"}}, WithAdaptiveMaint()); err != nil {
		t.Fatal(err)
	}
	// Empty base → first tx recomputes.
	if _, err := db.Exec(Insert("r", 1, 1)); err != nil {
		t.Fatal(err)
	}
	st, _ := db.Stats("a")
	if st.Recomputes+st.Refreshes == 0 {
		t.Errorf("adaptive view never maintained: %+v", st)
	}
}

func TestWithoutPrefixSharing(t *testing.T) {
	db := Open()
	_ = db.CreateRelation("r", "A", "B")
	_ = db.CreateRelation("s", "B", "C")
	if err := db.CreateJoinView("j", []string{"r", "s"}, WithoutPrefixSharing()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(Insert("r", 1, 2), Insert("s", 2, 3)); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.View("j")
	if len(rows) != 1 {
		t.Errorf("rows = %+v", rows)
	}
}
