package mview_test

// Godoc examples: runnable documentation for the public API.

import (
	"fmt"

	"mview"
)

// Example reproduces the paper's Example 4.1 end to end.
func Example() {
	db := mview.Open()
	_ = db.CreateRelation("r", "A", "B")
	_ = db.CreateRelation("s", "C", "D")
	_ = db.CreateView("v", mview.ViewSpec{
		From:   []string{"r", "s"},
		Where:  "A < 10 && C > 5 && B = C",
		Select: []string{"A", "D"},
	})
	_, _ = db.Exec(mview.Insert("r", 9, 10), mview.Insert("s", 10, 20))
	rows, _ := db.View("v")
	for _, r := range rows {
		fmt.Println(r.Values, "×", r.Count)
	}
	// Output:
	// [9 20] × 1
}

// ExampleDB_Relevant shows the §4 irrelevance test: (11,10) fails
// A < 10 for every database state, so it can be discarded unseen.
func ExampleDB_Relevant() {
	db := mview.Open()
	_ = db.CreateRelation("r", "A", "B")
	_ = db.CreateRelation("s", "C", "D")
	_ = db.CreateView("v", mview.ViewSpec{
		From:  []string{"r", "s"},
		Where: "A < 10 && C > 5 && B = C",
	})
	for _, tu := range [][2]int64{{9, 10}, {11, 10}} {
		ok, _ := db.Relevant("v", "r", tu[0], tu[1])
		fmt.Printf("insert %v relevant: %v\n", tu, ok)
	}
	// Output:
	// insert [9 10] relevant: true
	// insert [11 10] relevant: false
}

// ExampleDB_Subscribe shows alerter-style change notifications: the
// callback receives exactly the delta that maintenance computed.
func ExampleDB_Subscribe() {
	db := mview.Open()
	_ = db.CreateRelation("r", "A", "B")
	_ = db.CreateView("low", mview.ViewSpec{From: []string{"r"}, Where: "A < 5"})
	cancel, _ := db.Subscribe("low", func(c mview.Change) {
		for _, row := range c.Inserts {
			fmt.Println("alert:", row.Values)
		}
	})
	defer cancel()
	_, _ = db.Exec(mview.Insert("r", 3, 30)) // fires
	_, _ = db.Exec(mview.Insert("r", 9, 90)) // irrelevant: silent
	// Output:
	// alert: [3 30]
}

// ExampleDB_Refresh shows a deferred ("snapshot", §6) view.
func ExampleDB_Refresh() {
	db := mview.Open()
	_ = db.CreateRelation("r", "A")
	_ = db.CreateView("snap", mview.ViewSpec{From: []string{"r"}}, mview.OnDemand())
	_, _ = db.Exec(mview.Insert("r", 1))
	rows, _ := db.View("snap")
	fmt.Println("before refresh:", len(rows))
	_ = db.Refresh("snap")
	rows, _ = db.View("snap")
	fmt.Println("after refresh:", len(rows))
	// Output:
	// before refresh: 0
	// after refresh: 1
}

// ExampleDB_Stats shows maintenance statistics after transactions.
func ExampleDB_Stats() {
	db := mview.Open()
	_ = db.CreateRelation("r", "A")
	_ = db.CreateView("v", mview.ViewSpec{From: []string{"r"}, Where: "A > 0"}, mview.WithFilter())
	_, _ = db.Exec(mview.Insert("r", 1))
	_, _ = db.Exec(mview.Insert("r", -1)) // filtered as irrelevant
	st, _ := db.Stats("v")
	fmt.Println("refreshes:", st.Refreshes, "filtered:", st.FilteredOut)
	// Output:
	// refreshes: 2 filtered: 1
}
