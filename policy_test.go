package mview

// Public-API tests for the refresh-policy family: the policy matrix
// oracle (every policy converges to on-commit contents once quiesced,
// under every commit configuration), query-side staleness bounds,
// durable replay of SetPolicy, the opening default, and the follower
// contract for policy DDL.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mview/internal/repl"
)

// rowsByKey folds view rows into a multiplicity map so contents can be
// compared independent of iteration order.
func rowsByKey(rows []Row) map[string]int64 {
	m := make(map[string]int64, len(rows))
	for _, r := range rows {
		m[fmt.Sprint(r.Values)] += r.Count
	}
	return m
}

// TestPolicyMatrixOracle drives the same concurrent workload through
// one view per policy under every commit configuration (group commit
// on/off × sharded/unsharded) and checks that, once quiesced with
// RefreshAll, every policy's view matches the always-fresh on-commit
// oracle. Policies change WHEN maintenance runs, never WHAT the view
// converges to.
func TestPolicyMatrixOracle(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"solo", nil},
		{"group", []Option{WithGroupCommit(16, time.Millisecond)}},
		{"sharded", []Option{WithShards(4)}},
		{"group+sharded", []Option{WithGroupCommit(16, time.Millisecond), WithShards(4)}},
	}
	policies := []struct {
		view string
		opt  ViewOption
	}{
		{"vdemand", OnDemand()},
		{"vevery", Every(time.Hour)}, // never due during the test
		{"vslo", MaxStaleness(time.Hour)},
		{"vauto", AdaptivePolicy()},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			d := Open(cfg.opts...)
			if err := d.CreateRelation("r", "A", "B"); err != nil {
				t.Fatal(err)
			}
			spec := ViewSpec{From: []string{"r"}, Where: "B < 100"}
			if err := d.CreateView("oracle", spec, OnCommit()); err != nil {
				t.Fatal(err)
			}
			for _, p := range policies {
				if err := d.CreateView(p.view, spec, p.opt); err != nil {
					t.Fatal(err)
				}
			}

			// Disjoint key ranges per writer; every third insert is
			// deleted again in a later transaction, so convergence also
			// covers net-delete maintenance.
			const writers, txs = 4, 30
			var wg sync.WaitGroup
			for w := int64(0); w < writers; w++ {
				wg.Add(1)
				go func(w int64) {
					defer wg.Done()
					for i := int64(0); i < txs; i++ {
						if _, err := d.Exec(Insert("r", w*1000+i, i%100)); err != nil {
							t.Error(err)
							return
						}
						if i%3 == 0 && i > 0 {
							if _, err := d.Exec(Delete("r", w*1000+i-1, (i-1)%100)); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if err := d.RefreshAll(); err != nil {
				t.Fatal(err)
			}

			oracle, err := d.View("oracle")
			if err != nil {
				t.Fatal(err)
			}
			if len(oracle) == 0 {
				t.Fatal("oracle view is empty; workload never landed")
			}
			want := rowsByKey(oracle)
			for _, p := range policies {
				rows, err := d.View(p.view)
				if err != nil {
					t.Fatal(err)
				}
				got := rowsByKey(rows)
				if len(got) != len(want) {
					t.Fatalf("%s: %d distinct rows, oracle has %d", p.view, len(got), len(want))
				}
				for k, n := range want {
					if got[k] != n {
						t.Fatalf("%s: row %s count %d, oracle %d", p.view, k, got[k], n)
					}
				}
				if st, err := d.Stats(p.view); err != nil || st.PendingTx != 0 {
					t.Fatalf("%s: pending work after quiesce: %+v, %v", p.view, st, err)
				}
			}
		})
	}
}

// TestQueryStalenessBounds pins the query-side contract: MaxStale(d)
// refreshes only when the view is more than d stale, Consistent always
// serves fresh contents, and the tightest of several bounds wins.
func TestQueryStalenessBounds(t *testing.T) {
	d := Open()
	if err := d.CreateRelation("r", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateView("v", ViewSpec{From: []string{"r"}}, OnDemand()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(Insert("r", 1, 2)); err != nil {
		t.Fatal(err)
	}

	// Unbounded read: snapshot semantics, stale contents.
	if rows, err := d.View("v"); err != nil || len(rows) != 0 {
		t.Fatalf("unbounded read = %+v, %v (want stale empty)", rows, err)
	}
	// A loose bound tolerates the age (seconds old at most; bound 1h).
	if rows, err := d.View("v", MaxStale(time.Hour)); err != nil || len(rows) != 0 {
		t.Fatalf("loose-bound read = %+v, %v (want stale empty)", rows, err)
	}
	if st, _ := d.Stats("v"); st.PendingTx != 1 {
		t.Fatalf("bounded-but-tolerant read refreshed: %+v", st)
	}
	// The tightest of several bounds wins: Consistent forces freshness.
	rows, err := d.View("v", MaxStale(time.Hour), Consistent())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("consistent read = %+v, want 1 row", rows)
	}
	if st, _ := d.Stats("v"); st.PendingTx != 0 {
		t.Fatalf("consistent read left backlog: %+v", st)
	}

	// MaxStale clamps negatives to 0 (= Consistent).
	if _, err := d.Exec(Insert("r", 3, 4)); err != nil {
		t.Fatal(err)
	}
	if rows, _ := d.View("v", MaxStale(-time.Second)); len(rows) != 2 {
		t.Fatalf("negative-bound read = %+v, want fresh 2 rows", rows)
	}
}

// TestSetPolicyDurableReplay: a policy change is DDL — logged, then
// replayed on reopen like any view definition.
func TestSetPolicyDurableReplay(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, dir)
	if err := d.CreateRelation("r", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateView("v", ViewSpec{From: []string{"r"}}, OnDemand()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(Insert("r", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if st, _ := d.Stats("v"); st.PendingTx != 1 {
		t.Fatalf("ondemand view staged nothing: %+v", st)
	}

	// Tightening to on-commit drains the backlog in the same call.
	if err := d.SetPolicy("v", OnCommit()); err != nil {
		t.Fatal(err)
	}
	if rows, _ := d.View("v"); len(rows) != 1 {
		t.Fatalf("backlog survived SetPolicy(OnCommit): %+v", rows)
	}
	if err := d.SetPolicy("v", MaxStaleness(250*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	p, err := d.Policy("v")
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec != "maxstale=250ms" || p.Bound != 250*time.Millisecond || p.Immediate {
		t.Fatalf("policy = %+v", p)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDur(t, dir)
	defer d2.Close()
	p, err = d2.Policy("v")
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec != "maxstale=250ms" || p.Bound != 250*time.Millisecond {
		t.Fatalf("policy after reopen = %+v", p)
	}
	if err := d2.SetPolicy("zzz", OnCommit()); err == nil {
		t.Error("SetPolicy on unknown view must fail")
	}
	if err := d2.SetPolicy("v", WithFilter()); err == nil ||
		!strings.Contains(err.Error(), "not a refresh policy") {
		t.Errorf("SetPolicy with a non-policy option: %v", err)
	}
}

// TestWithDefaultPolicy: the opening default applies to views created
// without an explicit policy, an explicit one wins, and the default is
// materialized into the log so reopening under a different default
// leaves existing views unchanged.
func TestWithDefaultPolicy(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, WithDefaultPolicy(OnDemand()))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateRelation("r", "A", "B"); err != nil {
		t.Fatal(err)
	}
	spec := ViewSpec{From: []string{"r"}}
	if err := d.CreateView("vdef", spec); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateView("vexp", spec, Every(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if p, _ := d.Policy("vdef"); p.Spec != "ondemand" {
		t.Fatalf("defaulted view policy = %+v", p)
	}
	if p, _ := d.Policy("vexp"); p.Spec != "every=1m0s" {
		t.Fatalf("explicit view policy = %+v", p)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with no default (built-in oncommit): existing views keep
	// the policy they were created under.
	d2 := openDur(t, dir)
	defer d2.Close()
	if p, _ := d2.Policy("vdef"); p.Spec != "ondemand" {
		t.Fatalf("defaulted view policy after reopen = %+v", p)
	}
	if err := d2.CreateView("vnew", spec); err != nil {
		t.Fatal(err)
	}
	if p, _ := d2.Policy("vnew"); p.Spec != "oncommit" {
		t.Fatalf("built-in default = %+v", p)
	}

	// A non-policy or invalid default surfaces at first use.
	bad := Open(WithDefaultPolicy(WithFilter()))
	if err := bad.CreateRelation("r", "A"); err != nil {
		t.Fatal(err)
	}
	if err := bad.CreateView("v", ViewSpec{From: []string{"r"}}); err == nil ||
		!strings.Contains(err.Error(), "not a refresh policy") {
		t.Errorf("non-policy default: %v", err)
	}
	bad2 := Open(WithDefaultPolicy(Every(0)))
	if err := bad2.CreateRelation("r", "A"); err != nil {
		t.Fatal(err)
	}
	if err := bad2.CreateView("v", ViewSpec{From: []string{"r"}}); err == nil {
		t.Error("invalid default policy must fail at first use")
	}
}

// TestPolicyOptionValidation pins constructor errors and the stable
// option-name round trip every catalog surface (WAL replay, HTTP, CLI)
// relies on.
func TestPolicyOptionValidation(t *testing.T) {
	d := Open()
	if err := d.CreateRelation("r", "A"); err != nil {
		t.Fatal(err)
	}
	spec := ViewSpec{From: []string{"r"}}
	if err := d.CreateView("v", spec, Every(0)); err == nil {
		t.Error("Every(0) must fail")
	}
	if err := d.CreateView("v", spec, MaxStaleness(-time.Second)); err == nil {
		t.Error("MaxStaleness(-1s) must fail")
	}
	if err := d.CreateView("v", spec); err != nil {
		t.Fatal(err)
	}
	if err := d.SetPolicy("v", Every(0)); err == nil {
		t.Error("SetPolicy(Every(0)) must fail")
	}

	// The unknown-option error teaches the caller the known names.
	_, err := ParseViewOption("bogus")
	if err == nil {
		t.Fatal("unknown option must fail")
	}
	for _, want := range []string{"oncommit", "ondemand", "every=<dur>", "maxstale=<dur>", "autopolicy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-option error misses %q: %v", want, err)
		}
	}
	if _, err := ParseViewOption("every=nope"); err == nil {
		t.Error("bad interval must fail")
	}
	if _, err := ParseViewOption("maxstale=-1s"); err == nil {
		t.Error("negative bound must fail")
	}

	// Every stable name round-trips through ParseViewOption unchanged —
	// this is what makes WAL replay and the HTTP/CLI surfaces agree.
	names := []string{
		"oncommit", "ondemand", "every=1s", "maxstale=500ms", "autopolicy",
		"recompute", "adaptive", "filtered", "rowbyrow", "deferred",
	}
	for _, n := range names {
		o, err := ParseViewOption(n)
		if err != nil {
			t.Errorf("ParseViewOption(%q): %v", n, err)
			continue
		}
		if o.name != n {
			t.Errorf("ParseViewOption(%q).name = %q", n, o.name)
		}
	}
}

// TestFollowerPolicyDDL: policy changes ride the replication stream
// like any DDL — the follower's catalog mirrors the leader's — but a
// follower never accepts policy writes of its own.
func TestFollowerPolicyDDL(t *testing.T) {
	dir := t.TempDir()
	leader := openDur(t, dir)
	defer leader.Close()
	if err := leader.CreateRelation("r", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := leader.CreateView("v", ViewSpec{From: []string{"r"}}, OnDemand()); err != nil {
		t.Fatal(err)
	}
	srv, err := leader.ReplicationServer()
	if err != nil {
		t.Fatal(err)
	}
	srv.Poll = 200 * time.Microsecond
	follower, err := openFollowerTransport(repl.LocalTransport{S: srv}, "f1")
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitReplicated(t, follower, srv.LeaderLSN())

	// The bootstrapped catalog carries the creation-time policy.
	if p, err := follower.Policy("v"); err != nil || p.Spec != "ondemand" {
		t.Fatalf("bootstrapped policy = %+v, %v", p, err)
	}

	// A leader-side SetPolicy streams to the follower.
	if err := leader.SetPolicy("v", MaxStaleness(100*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, follower, srv.LeaderLSN())
	if p, err := follower.Policy("v"); err != nil || p.Spec != "maxstale=100ms" {
		t.Fatalf("streamed policy = %+v, %v", p, err)
	}

	// A view created after the follower connected replicates with its
	// policy attached.
	if err := leader.CreateView("vlate", ViewSpec{From: []string{"r"}}, Every(time.Minute)); err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, follower, srv.LeaderLSN())
	if p, err := follower.Policy("vlate"); err != nil || p.Spec != "every=1m0s" {
		t.Fatalf("late view policy = %+v, %v", p, err)
	}

	// Followers are read-only for policy DDL.
	if err := follower.SetPolicy("v", OnCommit()); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("SetPolicy on follower: %v", err)
	}
}
