package mview

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mview/internal/db"
	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/obs"
	"mview/internal/pred"
	"mview/internal/relation"
	"mview/internal/repl"
	"mview/internal/satgraph"
	"mview/internal/schema"
	"mview/internal/tuple"
	"mview/internal/wal"
)

// DB is a main-memory database with materialized views, optionally
// backed by a commit log and checkpoints (OpenDurable). It is safe for
// concurrent use.
type DB struct {
	// eng is an atomic pointer so readers (queries, HTTP handlers,
	// metrics) can keep loading it lock-free while a replication
	// re-sync swaps in a freshly bootstrapped engine (follower.go).
	// Leader databases store it once at open and never again.
	eng atomic.Pointer[db.Engine]
	// Durable state; nil/zero for in-memory databases.
	wal *wal.Log
	dir string
	mu  sync.Mutex // serializes logged statements so log order = apply order
	// gmu fences group commit against structural change: every grouped
	// Exec holds it shared for the duration of its submit, while DDL,
	// Checkpoint, Close, and the Enable/DisableGroupCommit toggles hold
	// it exclusively. That keeps log order equal to apply order across
	// the two logging disciplines (groups log-before-visible inside the
	// engine; statements here apply-then-log) and guarantees the
	// scheduler never stops with a durable transaction in flight.
	gmu sync.RWMutex
	// ckptMu serializes whole checkpoints (the background ticker, an
	// operator-triggered Checkpoint, and the open-time migration may
	// otherwise interleave); the commit fence is only held for the
	// capture and manifest-swap phases inside.
	ckptMu sync.Mutex
	// man is the checkpoint manifest currently on disk (nil before the
	// first checkpoint); ckptStats describes the last completed one.
	// Both are guarded by mu.
	man       *manifest
	ckptStats CheckpointStats
	// Replication (repl.go): replSrv is the lazily-created leader-side
	// stream server; follower is non-nil on replicas opened with
	// OpenFollower, which also sets readonly so every mutating method
	// returns ErrReadOnlyReplica.
	replMu   sync.Mutex
	replSrv  *repl.Server
	follower *followerState
	readonly bool
	// defaultPolicy is the WithDefaultPolicy refresh policy appended to
	// CreateView option lists that choose none; nil means OnCommit (the
	// zero ViewConfig) without materializing an option.
	defaultPolicy *ViewOption
	// Observability (Instrument); nil until attached.
	reg    *obs.Registry
	tracer obs.Tracer
	// Recovery cost measured by OpenDurable, exposed by Instrument.
	replayDur     time.Duration
	replayRecords int
}

// Instrument attaches a metrics registry and an optional tracer to
// the database and every layer beneath it: the engine (commit and
// refresh latency, §4 filter counts, pending-delta gauges), the
// differential evaluator (spans and per-operand delta events), and —
// for durable databases — the commit log (append/fsync latency, bytes
// written) plus the recovery cost of the last open. Either argument
// may be nil; calling with both nil detaches instrumentation.
//
// Call it once, before serving traffic. Handles are cached, so
// re-instrumenting with the same registry is idempotent.
//
// Deprecated: pass WithObs to Open or OpenDurable instead.
func (d *DB) Instrument(reg *obs.Registry, tr obs.Tracer) {
	defer d.lockIfDurable()()
	d.reg = reg
	d.tracer = tr
	d.engine().SetObs(reg, tr)
	if d.wal != nil {
		d.wal.SetObs(reg)
	}
	if reg != nil && d.dir != "" {
		reg.Gauge("mview_wal_replay_seconds",
			"Commit-log replay duration at the last open.", nil).Set(d.replayDur.Seconds())
		reg.Gauge("mview_wal_replay_records",
			"Commit-log records replayed at the last open.", nil).Set(float64(d.replayRecords))
	}
}

// Metrics returns the registry attached by Instrument (nil when the
// database is uninstrumented).
func (d *DB) Metrics() *obs.Registry { return d.reg }

// engine returns the current engine. The pointer is stable for the
// database's whole lifetime except on a replication follower, where a
// gap re-sync atomically replaces it (the old engine's immutable
// snapshots stay valid for readers that already hold them).
func (d *DB) engine() *db.Engine { return d.eng.Load() }

// Open creates an empty database configured by the given options.
func Open(opts ...Option) *DB {
	cfg := buildOpenConfig(opts)
	d := &DB{}
	d.eng.Store(db.New(cfg.engineOptions()...))
	d.applyRuntime(cfg)
	return d
}

// SetMaintWorkers bounds the worker pool that parallelizes per-view
// maintenance inside each commit and RefreshAll. n <= 0 restores the
// default, GOMAXPROCS. Independent views compute their deltas
// concurrently while the commit holds the engine lock, so multi-view
// catalogs stop paying single-core commit latency.
//
// Deprecated: pass WithMaintWorkers to Open or OpenDurable instead.
func (d *DB) SetMaintWorkers(n int) { d.engine().SetMaintWorkers(n) }

// MaintWorkers reports the effective maintenance worker-pool size.
func (d *DB) MaintWorkers() int { return d.engine().MaintWorkers() }

// CreateRelation adds a base relation with the named attributes.
func (d *DB) CreateRelation(name string, attrs ...string) error {
	if d.readonly {
		return ErrReadOnlyReplica
	}
	defer d.lockIfDurable()()
	if err := d.engine().CreateRelation(name, toAttrs(attrs)...); err != nil {
		return err
	}
	return d.logStmt(walStmt{Kind: "relation", Name: name, Attrs: attrs})
}

func toAttrs(attrs []string) []schema.Attribute {
	as := make([]schema.Attribute, len(attrs))
	for i, a := range attrs {
		as[i] = schema.Attribute(a)
	}
	return as
}

// lockIfDurable takes the statement-ordering lock when a commit log is
// attached, returning the matching unlock (a no-op otherwise). The
// caller must invoke the result with defer-like discipline; because
// the lock only matters for durable databases, plain calls at function
// entry followed by the returned closure via defer keep in-memory
// paths free of contention.
func (d *DB) lockIfDurable() func() {
	if d.wal == nil {
		// In-memory databases still fence structural statements against
		// in-flight grouped transactions; the engine lock alone orders
		// them, but draining the group first keeps DDL from interleaving
		// with a batch mid-pipeline.
		d.gmu.Lock()
		return d.gmu.Unlock
	}
	d.gmu.Lock()
	d.mu.Lock()
	return func() {
		d.mu.Unlock()
		d.gmu.Unlock()
	}
}

// ViewSpec describes an SPJ view: V = π_Select(σ_Where(From₁ × … ×
// Fromₚ)).
type ViewSpec struct {
	// From lists the operand relations, each as "rel", "rel alias", or
	// "rel AS alias". Attributes are referred to by name when
	// unambiguous, or qualified as "alias.attr".
	From []string
	// Where is the selection condition, e.g.
	// "A < 10 && C > 5 && B = C". Atoms compare an attribute against
	// an attribute, an attribute plus a constant, or a constant, with
	// =, !=, <, <=, >, >=; combine with &&, ||, and parentheses. Empty
	// means no condition.
	Where string
	// Select lists the projected attributes; empty means all.
	Select []string
}

func (s ViewSpec) build(name string) (expr.View, error) {
	v := expr.View{Name: name}
	if len(s.From) == 0 {
		return v, fmt.Errorf("mview: view %q has an empty From list", name)
	}
	for _, f := range s.From {
		fields := strings.Fields(f)
		switch {
		case len(fields) == 1:
			v.Operands = append(v.Operands, expr.Operand{Rel: fields[0]})
		case len(fields) == 2:
			v.Operands = append(v.Operands, expr.Operand{Rel: fields[0], Alias: fields[1]})
		case len(fields) == 3 && strings.EqualFold(fields[1], "as"):
			v.Operands = append(v.Operands, expr.Operand{Rel: fields[0], Alias: fields[2]})
		default:
			return v, fmt.Errorf("mview: bad From entry %q (want \"rel\", \"rel alias\", or \"rel AS alias\")", f)
		}
	}
	if s.Where != "" {
		w, err := pred.Parse(s.Where)
		if err != nil {
			return v, err
		}
		v.Where = w
	}
	for _, a := range s.Select {
		v.Project = append(v.Project, schema.Attribute(a))
	}
	return v, nil
}

// ViewOption configures a view at creation time. Options carry a
// stable name so durable databases can log and replay view
// definitions; ParseViewOption reconstructs any option from that name.
// The family covers three orthogonal axes: WHEN the view refreshes
// (the policy constructors in policy.go — OnCommit, Every, OnDemand,
// MaxStaleness, AdaptivePolicy), HOW a refresh runs (WithRecompute,
// WithAdaptiveMaint), and maintenance tuning (WithFilter,
// WithoutPrefixSharing).
type ViewOption struct {
	name  string
	apply func(*db.ViewConfig)
	// when is non-nil for refresh-policy options — the subset SetPolicy
	// accepts and a WithDefaultPolicy default is displaced by.
	when *db.RefreshSpec
	// err carries a constructor error (e.g. Every(0)) until the option
	// is used, since constructors have no error return.
	err error
}

// Deferred makes the view a snapshot (§6): transactions accumulate
// and the view is refreshed only by Refresh or RefreshAll.
//
// Deprecated: use the policy constructor OnDemand, which is identical;
// or Every / MaxStaleness for a deferred view the engine keeps fresh
// on a schedule.
func Deferred() ViewOption {
	o := OnDemand()
	o.name = "deferred" // historical log spelling, still round-trips
	return o
}

// WithRecompute pins the view to full re-evaluation on every refresh —
// the paper's baseline, useful for comparison. This is the HOW of a
// refresh; combine freely with any WHEN policy.
func WithRecompute() ViewOption {
	return ViewOption{name: "recompute", apply: func(c *db.ViewConfig) { c.Policy = db.PolicyRecompute }}
}

// Recompute pins the view to full re-evaluation on every refresh.
//
// Deprecated: renamed WithRecompute to make room for the refresh
// policy constructors (OnCommit, Every, OnDemand, MaxStaleness,
// AdaptivePolicy); behavior is unchanged.
func Recompute() ViewOption { return WithRecompute() }

// WithAdaptiveMaint lets the engine choose per refresh between
// differential maintenance and full re-evaluation, based on the
// delta-to-base size ratio — the paper's closing research question,
// answered with a simple cost model. This is the HOW of a refresh;
// for the adaptive WHEN (on-commit vs deferred from the write/read
// ratio) see AdaptivePolicy.
func WithAdaptiveMaint() ViewOption {
	return ViewOption{name: "adaptive", apply: func(c *db.ViewConfig) { c.Policy = db.PolicyAdaptive }}
}

// Adaptive lets the engine choose per refresh between differential
// maintenance and full re-evaluation.
//
// Deprecated: renamed WithAdaptiveMaint; behavior is unchanged. (For
// the adaptive refresh *policy*, see AdaptivePolicy.)
func Adaptive() ViewOption { return WithAdaptiveMaint() }

// WithFilter enables the §4 irrelevant-update pre-filter for the
// view's differential maintenance.
func WithFilter() ViewOption {
	return ViewOption{name: "filtered", apply: func(c *db.ViewConfig) { c.Maint.Filter = true }}
}

// WithoutPrefixSharing evaluates truth-table rows independently
// instead of sharing join prefixes. Exposed for experimentation; the
// default (sharing) is faster.
func WithoutPrefixSharing() ViewOption {
	return ViewOption{name: "rowbyrow", apply: func(c *db.ViewConfig) { c.Maint.Strategy = diffeval.StrategyRowByRow }}
}

// CreateView defines and materializes a view.
func (d *DB) CreateView(name string, spec ViewSpec, opts ...ViewOption) error {
	if d.readonly {
		return ErrReadOnlyReplica
	}
	opts = d.withDefaultPolicy(opts)
	if err := checkOptions(opts); err != nil {
		return err
	}
	defer d.lockIfDurable()()
	v, err := spec.build(name)
	if err != nil {
		return err
	}
	if err := d.engine().CreateView(v, buildConfig(opts)); err != nil {
		return err
	}
	return d.logStmt(walStmt{Kind: "view", Name: name, Spec: spec, Options: optionNames(opts)})
}

// withDefaultPolicy materializes the database's WithDefaultPolicy into
// a view's option list when the caller chose no policy themselves.
// Appending (rather than remembering the default engine-side) makes
// the choice durable: the logged statement names the policy, so a
// reopen under a different default replays the view unchanged.
func (d *DB) withDefaultPolicy(opts []ViewOption) []ViewOption {
	if d.defaultPolicy == nil {
		return opts
	}
	for _, o := range opts {
		if o.when != nil {
			return opts
		}
	}
	return append(append(make([]ViewOption, 0, len(opts)+1), opts...), *d.defaultPolicy)
}

func optionNames(opts []ViewOption) []string {
	names := make([]string, len(opts))
	for i, o := range opts {
		names[i] = o.name
	}
	return names
}

func buildConfig(opts []ViewOption) db.ViewConfig {
	var cfg db.ViewConfig
	cfg.EvalOpt.Greedy = true
	// Adaptive satisfiability: the paper's Floyd for small conjunctions,
	// Bellman–Ford once the variable count makes O(n³) dominate
	// (C-SAT-N3). Options may still pin a concrete method.
	cfg.Maint.FilterOptions.Method = satgraph.MethodAdaptive
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg
}

// CreateJoinView defines a natural-join view R1 ⋈ R2 ⋈ … ⋈ Rp (§5.3):
// operands join on equality of all shared attribute names, each
// emitted once.
func (d *DB) CreateJoinView(name string, rels []string, opts ...ViewOption) error {
	if d.readonly {
		return ErrReadOnlyReplica
	}
	opts = d.withDefaultPolicy(opts)
	if err := checkOptions(opts); err != nil {
		return err
	}
	defer d.lockIfDurable()()
	if err := d.createJoinViewCore(name, rels, opts); err != nil {
		return err
	}
	return d.logStmt(walStmt{Kind: "joinview", Name: name, Rels: rels, Options: optionNames(opts)})
}

func (d *DB) createJoinViewCore(name string, rels []string, opts []ViewOption) error {
	v, err := expr.NaturalJoin(name, d.engine().Scheme(), rels...)
	if err != nil {
		return err
	}
	return d.engine().CreateView(v, buildConfig(opts))
}

// DropView removes a view.
func (d *DB) DropView(name string) error {
	if d.readonly {
		return ErrReadOnlyReplica
	}
	defer d.lockIfDurable()()
	if err := d.engine().DropView(name); err != nil {
		return err
	}
	return d.logStmt(walStmt{Kind: "dropview", Name: name})
}

// Op is one operation inside a transaction.
type Op struct {
	del  bool
	rel  string
	vals []int64
}

// Insert builds an insert operation.
func Insert(rel string, vals ...int64) Op { return Op{rel: rel, vals: vals} }

// Delete builds a delete operation.
func Delete(rel string, vals ...int64) Op { return Op{del: true, rel: rel, vals: vals} }

// Update builds the delete-then-insert pair that modifies a tuple in
// place. Relations are sets of whole tuples, so an update is exactly
// this pair; wrapping both in one transaction keeps the change atomic
// and lets net-effect computation cancel no-op updates.
func Update(rel string, oldVals, newVals []int64) []Op {
	return []Op{Delete(rel, oldVals...), Insert(rel, newVals...)}
}

// TxInfo summarizes a committed transaction.
type TxInfo struct {
	Inserted       int // net tuples inserted across base relations
	Deleted        int // net tuples deleted across base relations
	ViewsRefreshed int // immediate views brought up to date
	ViewsDeferred  int // deferred views that queued the change

	// Trace identifies the commit's span tree in an attached
	// hierarchical tracer (obs.FlightRecorder); 0 when untraced.
	Trace uint64
}

// Exec runs the operations as one atomic transaction. Net semantics
// apply: inserting a present tuple or deleting an absent one is a
// no-op, and churn that cancels within the transaction never reaches
// the views.
func (d *DB) Exec(ops ...Op) (TxInfo, error) {
	return d.ExecContext(context.Background(), ops...)
}

// ExecContext is Exec with cancellation: the context is checked before
// the commit starts and — under group commit — while the transaction
// waits in the scheduler queue, so a caller that disconnects abandons
// its queued wait instead of holding a group slot. A transaction whose
// group leader has already claimed it runs to its verdict; a commit is
// never torn back out of a batch.
func (d *DB) ExecContext(ctx context.Context, ops ...Op) (TxInfo, error) {
	if err := ctx.Err(); err != nil {
		return TxInfo{}, err
	}
	if d.readonly {
		return TxInfo{}, ErrReadOnlyReplica
	}
	d.gmu.RLock()
	if d.engine().GroupCommitEnabled() {
		defer d.gmu.RUnlock()
		return d.execGrouped(ctx, ops)
	}
	d.gmu.RUnlock()
	defer d.lockIfDurable()()
	if err := ctx.Err(); err != nil {
		return TxInfo{}, err
	}
	info, err := d.execCore(ops)
	if err != nil {
		return TxInfo{}, err
	}
	if d.wal != nil {
		if err := d.logStmt(walStmt{Kind: "tx", Ops: opsToWal(ops)}); err != nil {
			return TxInfo{}, err
		}
	}
	return info, nil
}

// execGrouped rides the group-commit path: the statement is encoded up
// front, and the engine's leader logs it (one batched fsync for the
// whole group) before the transaction becomes visible, so — unlike the
// serial apply-then-log path above — a logging failure aborts the
// transaction instead of surfacing after the fact.
func (d *DB) execGrouped(ctx context.Context, ops []Op) (TxInfo, error) {
	var payload []byte
	if d.wal != nil {
		p, err := encodeStmt(walStmt{Kind: "tx", Ops: opsToWal(ops)})
		if err != nil {
			return TxInfo{}, err
		}
		payload = p
	}
	tx := buildTx(ops)
	res, err := d.engine().ExecuteLoggedCtx(ctx, &tx, payload)
	if err != nil {
		return TxInfo{}, err
	}
	return txInfoFrom(res), nil
}

func opsToWal(ops []Op) []walOp {
	wops := make([]walOp, len(ops))
	for i, o := range ops {
		wops[i] = walOp{Del: o.del, Rel: o.rel, Vals: o.vals}
	}
	return wops
}

// EnableGroupCommit coalesces concurrent Exec calls into commit
// groups: one batched log append (a single fsync covers every member),
// one composed maintenance pass over the group's net delta, and one
// snapshot publish. maxBatch caps the group size (<= 0 selects the
// default); window is how long the leader waits for followers once
// there is evidence of concurrency (0 disables the wait — groups form
// only from what has already queued). Transactions keep their
// individual atomicity: a member that fails validation is excluded and
// retried alone without poisoning the rest of its group.
//
// Deprecated: pass WithGroupCommit to Open or OpenDurable instead.
func (d *DB) EnableGroupCommit(maxBatch int, window time.Duration) {
	if d.readonly {
		return // followers apply wire batches; no local scheduler
	}
	d.gmu.Lock()
	defer d.gmu.Unlock()
	var logBatch func([][]byte) error
	if d.wal != nil {
		logBatch = d.logPayloadBatch
	}
	d.engine().EnableGroupCommit(maxBatch, window, logBatch)
}

// DisableGroupCommit drains any queued transactions and restores the
// serial commit path. It blocks until in-flight grouped Exec calls
// have completed.
func (d *DB) DisableGroupCommit() {
	d.gmu.Lock()
	defer d.gmu.Unlock()
	d.engine().DisableGroupCommit()
}

// GroupCommitEnabled reports whether Exec currently rides the
// group-commit scheduler.
func (d *DB) GroupCommitEnabled() bool { return d.engine().GroupCommitEnabled() }

func (d *DB) execCore(ops []Op) (TxInfo, error) {
	tx := buildTx(ops)
	res, err := d.engine().Execute(&tx)
	if err != nil {
		return TxInfo{}, err
	}
	return txInfoFrom(res), nil
}

func buildTx(ops []Op) delta.Tx {
	var tx delta.Tx
	nv := 0
	for _, o := range ops {
		nv += len(o.vals)
	}
	tx.Reserve(len(ops), nv)
	for _, o := range ops {
		// Tx.Insert/Delete copy the values into the transaction's
		// arena, so the op's slice can be handed over as-is.
		t := tuple.Tuple(o.vals)
		if o.del {
			tx.Delete(o.rel, t)
		} else {
			tx.Insert(o.rel, t)
		}
	}
	return tx
}

func txInfoFrom(res db.TxResult) TxInfo {
	info := TxInfo{ViewsRefreshed: res.ViewsRefreshed, ViewsDeferred: res.ViewsDeferred, Trace: res.Trace}
	for _, u := range res.Updates {
		if u.Inserts != nil {
			info.Inserted += u.Inserts.Len()
		}
		if u.Deletes != nil {
			info.Deleted += u.Deletes.Len()
		}
	}
	return info
}

// Row is one view tuple with its §5.2 multiplicity counter (the number
// of derivations supporting it).
type Row struct {
	Values []int64
	Count  int64
}

func rowsOf(c *relation.Counted) []Row {
	cts := c.Tuples()
	out := make([]Row, len(cts))
	for i, ct := range cts {
		out[i] = Row{Values: ct.Tuple, Count: ct.Count}
	}
	return out
}

// View returns the current contents of a materialized view, sorted.
// Without options the read is a lock-free snapshot: a deferred view
// may lag its base relations. QueryOptions state the read's own
// freshness contract — View(name, MaxStale(d)) refreshes the view
// synchronously first only when its oldest unapplied change is older
// than d, and Consistent() demands exact freshness — so callers no
// longer pair Refresh with View by hand.
func (d *DB) View(name string, opts ...QueryOption) ([]Row, error) {
	var c *relation.Counted
	var err error
	if bound, ok := queryBound(opts); ok {
		c, err = d.engine().ViewFresh(name, bound)
	} else {
		c, err = d.engine().View(name)
	}
	if err != nil {
		return nil, err
	}
	return rowsOf(c), nil
}

// ViewSchema returns the attribute names of a view's result.
func (d *DB) ViewSchema(name string) ([]string, error) {
	b, err := d.engine().ViewDef(name)
	if err != nil {
		return nil, err
	}
	out, err := b.OutScheme()
	if err != nil {
		return nil, err
	}
	attrs := out.Attributes()
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = string(a)
	}
	return names, nil
}

// Rows returns the sorted contents of a base relation.
func (d *DB) Rows(rel string) ([][]int64, error) {
	r, err := d.engine().Relation(rel)
	if err != nil {
		return nil, err
	}
	ts := r.Tuples()
	out := make([][]int64, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out, nil
}

// Refresh brings a deferred view up to date (§6 snapshot refresh).
func (d *DB) Refresh(name string) error { return d.engine().RefreshView(name) }

// RefreshAll refreshes every deferred view.
func (d *DB) RefreshAll() error { return d.engine().RefreshAll() }

// Relations lists base relation names in creation order.
func (d *DB) Relations() []string { return d.engine().Relations() }

// Views lists view names in creation order.
func (d *DB) Views() []string { return d.engine().Views() }

// Stats reports a view's accumulated maintenance counters.
type Stats struct {
	Transactions  int // transactions that touched the view's operands
	Refreshes     int // differential refreshes performed
	Recomputes    int // full re-evaluations performed
	RowsEvaluated int // truth-table rows completed
	JoinSteps     int // join pipeline steps executed
	FilteredOut   int // update tuples discarded as irrelevant (§4)
	DeltaInserts  int // view tuples inserted by deltas
	DeltaDeletes  int // view tuples deleted by deltas
	PendingTx     int // transactions awaiting a deferred refresh
	ShardTasks    int // per-shard maintenance tasks run on the pool (WithShards)
	ShardsPruned  int // shard sub-deltas skipped by the §4 key-range test
}

// Stats returns a view's maintenance counters.
func (d *DB) Stats(name string) (Stats, error) {
	s, err := d.engine().ViewStats(name)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Transactions:  s.Transactions,
		Refreshes:     s.Refreshes,
		Recomputes:    s.Recomputes,
		RowsEvaluated: s.RowsEvaluated,
		JoinSteps:     s.JoinSteps,
		FilteredOut:   s.FilteredOut,
		DeltaInserts:  s.DeltaInserts,
		DeltaDeletes:  s.DeltaDeletes,
		PendingTx:     s.PendingTx,
		ShardTasks:    s.ShardTasks,
		ShardsPruned:  s.ShardsPruned,
	}, nil
}

// Query evaluates an ad-hoc SPJ expression without materializing it.
func (d *DB) Query(spec ViewSpec) ([]Row, error) {
	return d.QueryContext(context.Background(), spec)
}

// QueryContext is Query with cancellation. Evaluation runs lock-free
// against an immutable snapshot and is not interruptible once started;
// the context gates entry, so an already-abandoned caller (e.g. a
// disconnected HTTP client) skips the evaluation entirely.
func (d *DB) QueryContext(ctx context.Context, spec ViewSpec) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := spec.build("(query)")
	if err != nil {
		return nil, err
	}
	c, err := d.engine().Query(v, eval.Options{Greedy: true})
	if err != nil {
		return nil, err
	}
	return rowsOf(c), nil
}

// Change is one view-change notification delivered to a subscriber.
type Change struct {
	View    string
	Inserts []Row
	Deletes []Row
}

// Subscribe registers an alerter on a view — the Buneman–Clemons
// application the paper cites: after every transaction or refresh that
// changes the view, the callback receives the exact insert and delete
// sets (which differential maintenance computed anyway). The callback
// runs synchronously after commit with no engine lock held; it may
// read the database but must not write to it. The returned cancel
// function removes the subscription.
func (d *DB) Subscribe(view string, fn func(Change)) (cancel func(), err error) {
	id, err := d.engine().Subscribe(view, func(name string, ins, del *relation.Counted) {
		fn(Change{View: name, Inserts: rowsOf(ins), Deletes: rowsOf(del)})
	})
	if err != nil {
		return nil, err
	}
	return func() { _ = d.engine().Unsubscribe(view, id) }, nil
}

// Save writes a durable snapshot of the database — scheme, base
// relation contents, and view definitions with their configurations —
// in a versioned binary format readable by Load.
func (d *DB) Save(w io.Writer) error { return d.engine().Save(w) }

// Load reads a snapshot produced by Save, returning a database with
// all relations restored and all views re-materialized. The snapshot
// format is shard-independent, so a snapshot written by any database
// loads under any WithShards setting.
func Load(r io.Reader, opts ...Option) (*DB, error) {
	cfg := buildOpenConfig(opts)
	eng, err := db.Load(r, cfg.engineOptions()...)
	if err != nil {
		return nil, err
	}
	d := &DB{}
	d.eng.Store(eng)
	d.applyRuntime(cfg)
	return d, nil
}

// Relevant applies the §4 test directly: it reports whether inserting
// or deleting the given tuple in the named base relation could affect
// the named view in ANY database state. A false answer is a proof of
// irrelevance (Theorem 4.1). The tuple is checked against every view
// operand that references the relation; the per-view checkers (and
// their prepared invariant graphs) are cached inside the engine.
func (d *DB) Relevant(view, rel string, vals ...int64) (bool, error) {
	return d.engine().Relevant(view, rel, tuple.New(vals...))
}

// Explain describes how a view is defined and maintained: operands,
// condition, projection, refresh mode, policy, row strategy, and the
// persistent indexes available to its delta joins.
func (d *DB) Explain(view string) (string, error) {
	return d.engine().Explain(view)
}

// ExplainAnalyze is Explain plus an "analyze" section with actual
// numbers: lifetime maintenance counters, current staleness, and the
// measured stage timings of the view's most recent maintenance pass —
// queue wait, compute, install, shard fan-out, delta size, and the
// trace id to look the carrying commit up in the flight recorder.
func (d *DB) ExplainAnalyze(view string) (string, error) {
	return d.engine().ExplainAnalyze(view)
}

// StageSummary is one stage's cumulative cost in CriticalPathSummary.
type StageSummary = db.StageSummary

// CriticalPathSummary attributes cumulative commit time to pipeline
// stages; see CriticalPath.
type CriticalPathSummary = db.CriticalPathSummary

// CriticalPath returns the database's cumulative commit-time
// attribution: for every pipeline stage (queue wait, net effects,
// composition, the slowest parallel maintenance task, validation,
// fsync, install, snapshot publish), the total seconds spent there and
// its share of the critical path. Counters accumulate from open; the
// read is lock-free.
func (d *DB) CriticalPath() CriticalPathSummary { return d.engine().CriticalPath() }

// Staleness reports each view's staleness in seconds: the age of its
// oldest unapplied change, 0 for a fresh view. Immediate views are
// always fresh; a deferred view goes stale the moment a commit queues
// backlog for it and snaps back to 0 when refreshed. As a side effect
// the per-view mview_view_staleness_seconds gauges are brought up to
// date.
func (d *DB) Staleness() map[string]float64 { return d.engine().Staleness() }

// SnapshotAge reports the age of the published read snapshot — how
// long ago the last commit, refresh, or DDL statement published.
func (d *DB) SnapshotAge() time.Duration { return d.engine().SnapshotAge() }
