package mview

// Construction options (the v1 opening surface).
//
// Open, OpenDurable, and Load accept functional options so every
// engine-level knob is set before the database serves its first
// statement. The former mutator methods (SetMaintWorkers,
// EnableGroupCommit, Instrument) remain as thin wrappers for
// compatibility but are deprecated: options compose, replay correctly
// on durable reopen, and cannot race with traffic.

import (
	"fmt"
	"time"

	"mview/internal/db"
	"mview/internal/obs"
)

// Option configures a database at open time. Options apply in order;
// the zero set matches the historical defaults (GOMAXPROCS maintenance
// workers, serial commits, monolithic relations, no instrumentation).
type Option func(*config)

type config struct {
	maintWorkers int
	shards       int
	groupCommit  bool
	groupMax     int
	groupWindow  time.Duration
	obsSet       bool
	reg          *obs.Registry
	tracer       obs.Tracer
	segmentBytes int64
	defPolicy    *ViewOption
}

// WithMaintWorkers bounds the worker pool that parallelizes per-view
// (and, with WithShards, per-shard) maintenance inside each commit and
// RefreshAll. n <= 0 selects the default, GOMAXPROCS.
func WithMaintWorkers(n int) Option {
	return func(c *config) { c.maintWorkers = n }
}

// WithShards partitions every base relation into n hash shards on its
// first attribute. A transaction that modifies a single operand of a
// view then fans out one maintenance task per touched shard — pruned
// early when the §4 test refutes the shard's key range — instead of
// one task per view. n <= 1 keeps relations monolithic. The shard
// count is runtime configuration, not persisted state: snapshots and
// the commit log are shard-independent, and a durable database may
// reopen with any count.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithGroupCommit opens the database with group commit enabled:
// concurrent Exec calls coalesce into commit groups — one batched
// fsync, one composed maintenance pass, one snapshot publish.
// maxBatch caps the group size (<= 0 selects the default); window is
// how long the leader waits for followers once there is evidence of
// concurrency. Equivalent to calling EnableGroupCommit after opening,
// but applied before the database serves traffic.
func WithGroupCommit(maxBatch int, window time.Duration) Option {
	return func(c *config) {
		c.groupCommit = true
		c.groupMax = maxBatch
		c.groupWindow = window
	}
}

// WithObs attaches a metrics registry and an optional tracer to the
// database and every layer beneath it at open time — for durable
// databases that includes the recovery cost of the open itself.
// Either argument may be nil. Equivalent to calling Instrument after
// opening.
func WithObs(reg *obs.Registry, tr obs.Tracer) Option {
	return func(c *config) {
		c.obsSet = true
		c.reg = reg
		c.tracer = tr
	}
}

// WithDefaultPolicy sets the refresh policy given to views created
// without an explicit one (the built-in default is OnCommit). p must
// be a when-policy option — OnCommit, Every, OnDemand, MaxStaleness,
// or AdaptivePolicy; anything else (or an invalid one, e.g. Every(0))
// surfaces as an error from the CreateView that would have used it.
// The default is materialized into each view's logged option list, so
// durable databases replay views under the policy they were created
// with even if the daemon reopens with a different default.
func WithDefaultPolicy(p ViewOption) Option {
	return func(c *config) { c.defPolicy = &p }
}

// WithSegmentSize sets the commit-log segment rotation threshold in
// bytes for durable databases: once the active segment exceeds n, the
// next append seals it and starts a new one, letting checkpoints drop
// covered segments by whole-file deletion. n <= 0 selects the default
// (64 MiB). Small values are useful in tests; in-memory databases
// ignore the option.
func WithSegmentSize(n int64) Option {
	return func(c *config) { c.segmentBytes = n }
}

func buildOpenConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// engineOptions returns the options that must reach the engine
// constructor (or db.Load) itself.
func (c config) engineOptions() []db.Option {
	var eo []db.Option
	if c.shards > 1 {
		eo = append(eo, db.WithShards(c.shards))
	}
	return eo
}

// applyRuntime applies the post-construction options. For durable
// databases this runs after the commit log is attached, so
// instrumentation covers the log and group commit batches its
// appends.
func (d *DB) applyRuntime(c config) {
	if c.defPolicy != nil {
		p := *c.defPolicy
		if p.err == nil && p.when == nil {
			p.err = fmt.Errorf("mview: WithDefaultPolicy option %q is not a refresh policy (want oncommit, ondemand, every=<dur>, maxstale=<dur>, or autopolicy)", p.name)
		}
		d.defaultPolicy = &p
	}
	if c.maintWorkers > 0 {
		d.engine().SetMaintWorkers(c.maintWorkers)
	}
	if c.obsSet {
		d.Instrument(c.reg, c.tracer)
	}
	if c.groupCommit {
		d.EnableGroupCommit(c.groupMax, c.groupWindow)
	}
}

// Shards reports the configured hash-shard count of base relations
// (1 when unsharded).
func (d *DB) Shards() int { return d.engine().Shards() }
