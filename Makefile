GO ?= go

.PHONY: all build test race bench crash lint clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the obs registry, the engine's
# notification fan-out, and the group-commit scheduler (including the
# group-vs-serial oracle) are exercised concurrently.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'Group' ./internal/db .

# The quantitative-shape benchmarks behind bench_results.txt. Narrow
# with BENCH, e.g. `make bench BENCH=GroupCommit` for the C-GROUP
# group-commit throughput sweep, or BENCH=ObsOverhead.
BENCH ?= .
bench:
	$(GO) test -run=NONE -bench=$(BENCH) -benchmem .

# Fault injection: kill the checkpoint at every step, and a group
# commit at every torn-batch byte offset, and prove recovery loses no
# committed transaction (durable_crash_test.go).
crash:
	$(GO) test -race -count=1 -run 'CheckpointCrash|CheckpointFault|GroupCrash|GroupCommitCrash' -v .

lint:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

clean:
	$(GO) clean ./...
