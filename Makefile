GO ?= go

.PHONY: all build test race bench crash lint clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the obs registry and the engine's
# notification fan-out are exercised concurrently.
race:
	$(GO) test -race ./...

# The quantitative-shape benchmarks behind bench_results.txt. Narrow
# with BENCH, e.g. `make bench BENCH=ObsOverhead`.
BENCH ?= .
bench:
	$(GO) test -run=NONE -bench=$(BENCH) -benchmem .

# Checkpoint fault injection: kill the checkpoint at every step and
# prove recovery loses no committed transaction (durable_crash_test.go).
crash:
	$(GO) test -race -count=1 -run 'CheckpointCrash|CheckpointFault' -v .

lint:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

clean:
	$(GO) clean ./...
