GO ?= go

.PHONY: all build test race bench lint clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the obs registry and the engine's
# notification fan-out are exercised concurrently.
race:
	$(GO) test -race ./...

# The quantitative-shape benchmarks behind bench_results.txt. Narrow
# with BENCH, e.g. `make bench BENCH=ObsOverhead`.
BENCH ?= .
bench:
	$(GO) test -run=NONE -bench=$(BENCH) -benchmem .

lint:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

clean:
	$(GO) clean ./...
