GO ?= go

.PHONY: all build test race bench bench-json allocguard crash trace-smoke repl-smoke lint apicheck apilock clean

all: lint apicheck build test allocguard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the obs registry, the engine's
# notification fan-out, and the group-commit scheduler (including the
# group-vs-serial oracle) are exercised concurrently.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'Group' ./internal/db .
	$(GO) test -race -count=2 -run 'Shard|SplitUpdate|MergeDeltas' ./internal/db ./internal/relation ./internal/delta ./internal/diffeval .

# The quantitative-shape benchmarks behind bench_results.txt. Narrow
# with BENCH, e.g. `make bench BENCH=GroupCommit` for the C-GROUP
# group-commit throughput sweep, or BENCH=ObsOverhead.
BENCH ?= .
bench:
	$(GO) test -run=NONE -bench=$(BENCH) -benchmem .

# The C-* benchmark tables as machine-readable JSON (one object per
# benchmark line on stdout, raw output on stderr) so the perf
# trajectory behind bench_results.txt is trackable across PRs.
bench-json:
	scripts/bench-json.sh

# Allocation regression gate: the C-FLAT eval benchmarks must stay
# within the allocs/op budgets checked in at scripts/allocguard.budget.
allocguard:
	scripts/allocguard.sh

# Fault injection: kill the checkpoint at every step (segment write,
# manifest tmp, rename, dirsync, segment delete), a group commit at
# every torn-batch byte offset, a single append at both IO stages, a
# legacy-layout migration mid-checkpoint, and a randomized workload at
# random hook steps — and prove recovery loses no committed transaction
# (durable_crash_test.go, durable_ckpt_test.go). The WAL-level torn-tail
# and rollback sweeps ride along from internal/wal.
crash:
	$(GO) test -race -count=1 -run 'CheckpointCrash|CheckpointFault|GroupCrash|GroupCommitCrash|SingleAppendFailure|LegacyMigrationCrash|RandomizedCrashCheckpoints' -v .
	$(GO) test -race -count=1 -run 'TornTail|AppendRollback|AppendBatchTorn|CorruptChecksum' ./internal/wal

# End-to-end flight-recorder check: boot mviewd with -trace-ring,
# drive a commit over HTTP, and assert /v1/debug/traces captured a
# full hierarchical trace (scripts/trace-smoke.sh).
trace-smoke:
	scripts/trace-smoke.sh

# End-to-end replication check: boot a leader mviewd -replicate and a
# follower mviewd -follow, commit over HTTP, and assert the follower
# converges, refuses writes, and both sides expose lag
# (scripts/repl-smoke.sh).
repl-smoke:
	scripts/repl-smoke.sh

lint:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

# The exported Go surface of the root package, pinned. apicheck fails
# on any drift from docs/api.lock; after an intentional API change,
# review the diff and re-record with `make apilock`.
apicheck:
	@$(GO) doc -all . > /tmp/api.current
	@diff -u docs/api.lock /tmp/api.current \
		|| { echo "exported API drifted from docs/api.lock (run 'make apilock' if intended)"; exit 1; }

apilock:
	$(GO) doc -all . > docs/api.lock

clean:
	$(GO) clean ./...
