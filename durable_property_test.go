package mview

// Randomized crash-recovery property: a durable database subjected to
// random DDL/DML with "crashes" (close + reopen) at random points must
// always match an in-memory twin that executed the same statements.

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestDurableMatchesInMemoryTwinUnderCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 6; trial++ {
		dir := t.TempDir()
		dur, err := OpenDurable(dir)
		if err != nil {
			t.Fatal(err)
		}
		mem := Open()

		both := func(f func(d *DB) error) {
			t.Helper()
			ed, em := f(dur), f(mem)
			if (ed == nil) != (em == nil) {
				t.Fatalf("trial %d: durable err=%v, memory err=%v", trial, ed, em)
			}
		}

		both(func(d *DB) error { return d.CreateRelation("r", "A", "B") })
		both(func(d *DB) error { return d.CreateRelation("s", "B", "C") })
		nViews := 0

		for step := 0; step < 60; step++ {
			switch rng.Intn(10) {
			case 0: // new view
				name := fmt.Sprintf("v%d", nViews)
				nViews++
				var opts []ViewOption
				if rng.Intn(2) == 0 {
					opts = append(opts, WithFilter())
				}
				if rng.Intn(4) == 0 {
					opts = append(opts, WithRecompute())
				}
				both(func(d *DB) error {
					return d.CreateView(name, ViewSpec{
						From:  []string{"r", "s"},
						Where: "r.B = s.B && r.A < 6",
					}, opts...)
				})
			case 1: // crash and recover the durable side
				if err := dur.Close(); err != nil {
					t.Fatal(err)
				}
				dur, err = OpenDurable(dir)
				if err != nil {
					t.Fatalf("trial %d step %d: recovery: %v", trial, step, err)
				}
			case 2: // checkpoint
				if err := dur.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			default: // transaction
				var ops []Op
				for j := 0; j < 1+rng.Intn(4); j++ {
					rel := "r"
					if rng.Intn(2) == 0 {
						rel = "s"
					}
					vals := []int64{int64(rng.Intn(8)), int64(rng.Intn(8))}
					if rng.Intn(3) == 0 {
						ops = append(ops, Delete(rel, vals...))
					} else {
						ops = append(ops, Insert(rel, vals...))
					}
				}
				both(func(d *DB) error {
					_, err := d.Exec(ops...)
					return err
				})
			}
		}

		// Final comparison: every relation and every view identical.
		for _, rel := range mem.Relations() {
			a, err := dur.Rows(rel)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := mem.Rows(rel)
			if len(a) != len(b) {
				t.Fatalf("trial %d: relation %s diverged: %d vs %d rows", trial, rel, len(a), len(b))
			}
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("trial %d: relation %s row %d: %v vs %v", trial, rel, i, a[i], b[i])
					}
				}
			}
		}
		for _, view := range mem.Views() {
			a, err := dur.View(view)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := mem.View(view)
			if len(a) != len(b) {
				t.Fatalf("trial %d: view %s diverged: %d vs %d rows", trial, view, len(a), len(b))
			}
			for i := range a {
				if a[i].Count != b[i].Count {
					t.Fatalf("trial %d: view %s row %d count: %d vs %d", trial, view, i, a[i].Count, b[i].Count)
				}
				for j := range a[i].Values {
					if a[i].Values[j] != b[i].Values[j] {
						t.Fatalf("trial %d: view %s row %d: %v vs %v", trial, view, i, a[i], b[i])
					}
				}
			}
		}
		_ = dur.Close()
	}
}
