package mview

// Checkpoint fault injection: kill the checkpoint at every step and
// prove that reopening the directory recovers every committed
// transaction. Run directly via `make crash`; also part of the
// regular test suite.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCheckpointCrashConsistency simulates the process dying at each
// checkpoint step — after the tmp write, after the rename (before the
// directory fsync), after the directory fsync (before the log
// truncate), and after a complete checkpoint — and asserts that no
// committed transaction is lost and no tmp file is leaked.
func TestCheckpointCrashConsistency(t *testing.T) {
	for _, step := range []string{"write-tmp", "rename", "dirsync", "complete"} {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			d := openDur(t, dir)
			seedDurable(t, d)
			// A second committed transaction the checkpoint must not
			// lose: r(8,10) joins s(10,20), so the view gains a row.
			if _, err := d.Exec(Insert("r", 8, 10)); err != nil {
				t.Fatal(err)
			}
			if step != "complete" {
				checkpointHook = func(s string) error {
					if s == step {
						return errSimulatedCrash
					}
					return nil
				}
				defer func() { checkpointHook = nil }()
			}
			err := d.Checkpoint()
			checkpointHook = nil
			want := 2
			if step == "complete" {
				if err != nil {
					t.Fatal(err)
				}
				// One more commit after the checkpoint, recovered from
				// the truncated log: s(10,30) joins both r rows.
				if _, err := d.Exec(Insert("s", 10, 30)); err != nil {
					t.Fatal(err)
				}
				want = 4
			} else if !errors.Is(err, errSimulatedCrash) {
				t.Fatalf("Checkpoint killed at %q: err = %v, want simulated crash", step, err)
			}

			// The process dies here: no Close, no further flushing.
			d2 := openDur(t, dir)
			defer d2.Close()
			rows, err := d2.View("v")
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != want {
				t.Fatalf("crash at %q: recovered view has %d rows, want %d: %+v",
					step, len(rows), want, rows)
			}
			if _, err := os.Stat(filepath.Join(dir, "snapshot.db.tmp")); !os.IsNotExist(err) {
				t.Errorf("stale snapshot tmp survived recovery (stat err = %v)", err)
			}

			// The recovered database keeps committing and checkpointing.
			if _, err := d2.Exec(Insert("r", 7, 10)); err != nil {
				t.Fatal(err)
			}
			if err := d2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckpointFaultCleansTmp: a checkpoint that fails for an
// ordinary reason (not a crash) must remove its tmp file and leave
// the database fully usable.
func TestCheckpointFaultCleansTmp(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, dir)
	seedDurable(t, d)
	bad := errors.New("injected checkpoint failure")
	checkpointHook = func(s string) error {
		if s == "write-tmp" {
			return bad
		}
		return nil
	}
	err := d.Checkpoint()
	checkpointHook = nil
	if !errors.Is(err, bad) {
		t.Fatalf("Checkpoint err = %v, want injected failure", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.db.tmp")); !os.IsNotExist(err) {
		t.Errorf("failed checkpoint leaked its tmp file (stat err = %v)", err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openDur(t, dir)
	defer d2.Close()
	verifySeeded(t, d2)
}
