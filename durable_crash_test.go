package mview

// Checkpoint fault injection: kill the checkpoint at every step and
// prove that reopening the directory recovers every committed
// transaction. Run directly via `make crash`; also part of the
// regular test suite.

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mview/internal/wal"
)

// TestCheckpointCrashConsistency simulates the process dying at each
// checkpoint step — after the segment writes, after the manifest tmp
// write, after the manifest rename (before the directory fsync), after
// the directory fsync (before the old segments are deleted), after the
// segment deletes, and after a complete checkpoint — and asserts that
// no committed transaction is lost and no tmp file or orphan segment
// survives recovery.
func TestCheckpointCrashConsistency(t *testing.T) {
	for _, step := range []string{"segment-write", "manifest-tmp", "rename", "dirsync", "segment-delete", "complete"} {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			d := openDur(t, dir)
			seedDurable(t, d)
			// A second committed transaction the checkpoint must not
			// lose: r(8,10) joins s(10,20), so the view gains a row.
			if _, err := d.Exec(Insert("r", 8, 10)); err != nil {
				t.Fatal(err)
			}
			if step != "complete" {
				checkpointHook = func(s string) error {
					if s == step {
						return errSimulatedCrash
					}
					return nil
				}
				defer func() { checkpointHook = nil }()
			}
			err := d.Checkpoint()
			checkpointHook = nil
			want := 2
			if step == "complete" {
				if err != nil {
					t.Fatal(err)
				}
				// One more commit after the checkpoint, recovered from
				// the truncated log: s(10,30) joins both r rows.
				if _, err := d.Exec(Insert("s", 10, 30)); err != nil {
					t.Fatal(err)
				}
				want = 4
			} else if !errors.Is(err, errSimulatedCrash) {
				t.Fatalf("Checkpoint killed at %q: err = %v, want simulated crash", step, err)
			}

			// The process dies here: no Close, no further flushing.
			d2 := openDur(t, dir)
			defer d2.Close()
			rows, err := d2.View("v")
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != want {
				t.Fatalf("crash at %q: recovered view has %d rows, want %d: %+v",
					step, len(rows), want, rows)
			}
			assertNoCheckpointDebris(t, dir)

			// The recovered database keeps committing and checkpointing.
			if _, err := d2.Exec(Insert("r", 7, 10)); err != nil {
				t.Fatal(err)
			}
			if err := d2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// assertNoCheckpointDebris fails if the directory holds a manifest tmp
// file, a legacy snapshot tmp, or a checkpoint segment the current
// manifest does not reference.
func assertNoCheckpointDebris(t *testing.T, dir string) {
	t.Helper()
	for _, tmp := range []string{manifestFile + ".tmp", snapshotFile + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, tmp)); !os.IsNotExist(err) {
			t.Errorf("stale %s survived (stat err = %v)", tmp, err)
		}
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var referenced map[string]bool
	if man != nil {
		referenced = man.files()
	}
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range matches {
		if !referenced[filepath.Base(p)] {
			t.Errorf("orphan checkpoint segment %s survived", filepath.Base(p))
		}
	}
}

// TestCheckpointFaultCleansTmp: a checkpoint that fails for an
// ordinary reason (not a crash) must remove every file it wrote —
// segments and manifest tmp — restore its dirty bits, and leave the
// database fully usable.
func TestCheckpointFaultCleansTmp(t *testing.T) {
	for _, step := range []string{"segment-write", "manifest-tmp"} {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			d := openDur(t, dir)
			seedDurable(t, d)
			bad := errors.New("injected checkpoint failure")
			checkpointHook = func(s string) error {
				if s == step {
					return bad
				}
				return nil
			}
			err := d.Checkpoint()
			checkpointHook = nil
			if !errors.Is(err, bad) {
				t.Fatalf("Checkpoint err = %v, want injected failure", err)
			}
			assertNoCheckpointDebris(t, dir)
			// The restored dirty bits make the retry write everything the
			// failed run was responsible for.
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2 := openDur(t, dir)
			defer d2.Close()
			verifySeeded(t, d2)
		})
	}
}

// TestSingleAppendFailureRecovery injects an IO failure into a single
// (non-batched) log append: the Exec must report the error, the log
// must roll back to its pre-write state, and — the regression this
// pins — a later successful append must be fully recovered on reopen
// rather than shadowed by leftover bytes of the failed write.
func TestSingleAppendFailureRecovery(t *testing.T) {
	for _, stage := range []string{"written", "synced"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			d := openDur(t, dir)
			seedDurable(t, d)
			fail := errors.New("injected append failure")
			wal.AppendHook = func(s string) error {
				if s == stage {
					return fail
				}
				return nil
			}
			_, err := d.Exec(Insert("r", 8, 10))
			wal.AppendHook = nil
			if !errors.Is(err, fail) {
				t.Fatalf("Exec err = %v, want injected failure", err)
			}
			// The next append lands where the failed one was rolled back
			// from and must be recovered intact.
			if _, err := d.Exec(Insert("r", 7, 10)); err != nil {
				t.Fatal(err)
			}
			_ = d.Close()
			d2 := openDur(t, dir)
			defer d2.Close()
			rows, err := d2.Rows("r")
			if err != nil {
				t.Fatal(err)
			}
			// Seed row plus the acknowledged insert; the failed one was
			// never logged (serial commits apply-then-log).
			want := map[int64]bool{9: true, 7: true}
			if len(rows) != 2 || !want[rows[0][0]] || !want[rows[1][0]] {
				t.Fatalf("recovered r = %v, want rows keyed 9 and 7", rows)
			}
			vrows, err := d2.View("v")
			if err != nil {
				t.Fatal(err)
			}
			if len(vrows) != 2 {
				t.Fatalf("recovered view = %+v, want 2 rows", vrows)
			}
		})
	}
}

// TestGroupCrashMidBatch kills the process (via wal.AppendBatchHook)
// after a commit group's records hit the log but before the append is
// acknowledged, then recovers from every byte-level cut of the doomed
// batch. Each group member writes one r row AND one s row in a single
// transaction, so any recovery that split a transaction would surface
// as an r row without its s mate. The invariant: recovery yields a
// whole-transaction prefix of the group — all of a member's effects or
// none of them.
func TestGroupCrashMidBatch(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, dir)
	seedDurable(t, d)

	walPath := filepath.Join(dir, logFile+".1") // the active segment
	before, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Encode a four-member group exactly as the scheduler's leader
	// would: one statement payload per transaction, appended through
	// logPayloadBatch (one framed write, one fsync).
	const groupSize = 4
	payloads := make([][]byte, groupSize)
	for i := range payloads {
		p, err := encodeStmt(walStmt{Kind: "tx", Ops: []walOp{
			{Rel: "r", Vals: []int64{int64(i), 10}},
			{Rel: "s", Vals: []int64{10, int64(100 + i)}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		payloads[i] = p
	}

	wal.AppendBatchHook = func(stage string) error {
		if stage == "synced" {
			return errSimulatedCrash
		}
		return nil
	}
	err = d.logPayloadBatch(payloads)
	wal.AppendBatchHook = nil
	if !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("logPayloadBatch err = %v, want simulated crash", err)
	}
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("doomed batch left no bytes in the log (%d <= %d)", len(after), len(before))
	}

	// The process dies here. Recover from every possible torn tail.
	prevK := -1
	for cut := len(before); cut <= len(after); cut++ {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, logFile+".1"), after[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d2, err := OpenDurable(dir2)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		rrows, err := d2.Rows("r")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		srows, err := d2.Rows("s")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// k = recovered group members; the seed contributes one row to
		// each base. Members must form a prefix, each one whole.
		k := len(rrows) - 1
		if len(srows)-1 != k {
			t.Fatalf("cut %d: recovered %d r rows but %d s rows — a transaction was split",
				cut, len(rrows)-1, len(srows)-1)
		}
		if k < prevK {
			t.Fatalf("cut %d: recovered %d members, previous cut had %d", cut, k, prevK)
		}
		prevK = k
		have := make(map[int64]bool)
		for _, row := range rrows {
			if row[1] == 10 && row[0] < groupSize {
				have[row[0]] = true
			}
		}
		for i := 0; i < groupSize; i++ {
			if have[int64(i)] != (i < k) {
				t.Fatalf("cut %d: member %d present=%v, want prefix of length %d",
					cut, i, have[int64(i)], k)
			}
		}
		// The recovered view must equal its recompute: (1+k) r rows
		// joining (1+k) s rows on B = C = 10.
		rows, err := d2.View("v")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if want := (1 + k) * (1 + k); len(rows) != want {
			t.Fatalf("cut %d: recovered view has %d rows, want %d (k=%d)", cut, len(rows), want, k)
		}
		if err := d2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if prevK != groupSize {
		t.Fatalf("full batch recovered only %d of %d members", prevK, groupSize)
	}
}

// TestGroupCommitCrashNeverAcksLostTx drives the real Exec group path
// into a log failure: every grouped transaction must be reported
// failed (log-before-visible), the live engine must stay untouched,
// and a recovery of the directory may surface a whole-transaction
// prefix of the doomed group but never an inconsistent state.
func TestGroupCommitCrashNeverAcksLostTx(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, dir)
	seedDurable(t, d)
	d.EnableGroupCommit(8, 5*time.Millisecond)

	walPath := filepath.Join(dir, logFile+".1") // the active segment
	// The hook fires on every append attempt (the process is "dead"
	// after the first), and records the log size at the first failure:
	// bytes past that mark were written by retries that a real crash
	// would never have run.
	var firstLen atomic.Int64
	firstLen.Store(-1)
	wal.AppendBatchHook = func(stage string) error {
		if stage != "written" {
			return nil
		}
		if fi, err := os.Stat(walPath); err == nil {
			firstLen.CompareAndSwap(-1, fi.Size())
		}
		return errSimulatedCrash
	}
	defer func() { wal.AppendBatchHook = nil }()

	const writers = 6
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := d.Exec(Insert("r", int64(i), 10)); err == nil {
				t.Errorf("writer %d: Exec acked a transaction the log never accepted", i)
			}
		}(i)
	}
	wg.Wait()
	wal.AppendBatchHook = nil

	// Log-before-visible: none of the failed transactions may have
	// reached the live engine.
	verifySeeded(t, d)

	// Simulate the crash at the first failed append: discard retry
	// bytes, reopen, and check the recovered state is consistent. The
	// unacked transactions may legitimately be durable (crash landed
	// between write and ack) — what is forbidden is a torn one.
	if n := firstLen.Load(); n < 0 {
		t.Fatal("hook never fired")
	} else if err := os.Truncate(walPath, n); err != nil {
		t.Fatal(err)
	}
	d2 := openDur(t, dir)
	defer d2.Close()
	rrows, err := d2.Rows("r")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := d2.View("v")
	if err != nil {
		t.Fatal(err)
	}
	// Seed: one r row, one s row, one view row. Each recovered member
	// adds one r row joining the single s row.
	if len(rows) != len(rrows) {
		t.Fatalf("recovered view has %d rows for %d r rows — view inconsistent with bases",
			len(rows), len(rrows))
	}
	if len(rrows)-1 > writers {
		t.Fatalf("recovered %d members from %d writers", len(rrows)-1, writers)
	}
}
