package mview

// Durable databases: a commit log plus checkpoints.
//
// OpenDurable gives the engine crash recovery: every DDL statement and
// transaction is appended to an fsynced, checksummed log as part of a
// successful commit, and Checkpoint writes a snapshot that lets the
// log be truncated. Reopening the directory loads the latest snapshot
// and replays the log records past it. Views re-materialize from the
// restored base relations, so a reopened database is always internally
// consistent.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mview/internal/db"
	"mview/internal/wal"
)

const (
	snapshotFile = "snapshot.db"
	logFile      = "commit.log"
	// walKindStmt tags gob-encoded statements in the log.
	walKindStmt uint8 = 1
	// snapshotMagic prefixes durable snapshots (before the u64 LSN and
	// the engine snapshot stream).
	snapshotMagic = "MVSNAP1\n"
)

// walOp mirrors Op with exported fields for gob.
type walOp struct {
	Del  bool
	Rel  string
	Vals []int64
}

// walStmt is one logged statement.
type walStmt struct {
	Kind    string // "tx" | "relation" | "view" | "joinview" | "dropview"
	Name    string
	Attrs   []string
	Spec    ViewSpec
	Options []string
	Rels    []string
	Ops     []walOp
}

// OpenDurable opens (creating if necessary) a durable database rooted
// at dir, configured by the given options. State is recovered from the
// latest checkpoint snapshot plus the commit log. Engine-level options
// (WithShards) shape the recovered state itself; the runtime options
// (WithGroupCommit, WithObs, WithMaintWorkers) are applied after the
// log is attached, so instrumentation covers the log and group commit
// batches its appends from the first transaction.
func OpenDurable(dir string, opts ...Option) (*DB, error) {
	cfg := buildOpenConfig(opts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A crash mid-checkpoint can leave a half-written snapshot tmp
	// behind. It was never renamed into place, so it holds nothing
	// durable; remove it rather than leak one per crash.
	if err := os.Remove(filepath.Join(dir, snapshotFile+".tmp")); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	snapPath := filepath.Join(dir, snapshotFile)
	logPath := filepath.Join(dir, logFile)

	d := &DB{eng: db.New(cfg.engineOptions()...)}
	var snapLSN uint64
	if f, err := os.Open(snapPath); err == nil {
		magic := make([]byte, len(snapshotMagic))
		var lsnBuf [8]byte
		if _, err := readFull(f, magic); err != nil || string(magic) != snapshotMagic {
			f.Close()
			return nil, fmt.Errorf("mview: %s is not a durable snapshot", snapPath)
		}
		if _, err := readFull(f, lsnBuf[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("mview: corrupt snapshot header: %w", err)
		}
		snapLSN = binary.BigEndian.Uint64(lsnBuf[:])
		eng, err := db.Load(f, cfg.engineOptions()...)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("mview: loading snapshot: %w", err)
		}
		d = &DB{eng: eng}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// Replay committed statements past the checkpoint, timing the pass
	// so Instrument can expose recovery cost (mview_wal_replay_*).
	replayStart := time.Now()
	err := wal.Replay(logPath, snapLSN, func(r wal.Record) error {
		if r.Kind != walKindStmt {
			return fmt.Errorf("mview: unknown log record kind %d at LSN %d", r.Kind, r.LSN)
		}
		var st walStmt
		if err := gob.NewDecoder(bytes.NewReader(r.Payload)).Decode(&st); err != nil {
			return fmt.Errorf("mview: decoding log record %d: %w", r.LSN, err)
		}
		if err := d.applyStmt(st); err != nil {
			return fmt.Errorf("mview: replaying log record %d: %w", r.LSN, err)
		}
		d.replayRecords++
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.replayDur = time.Since(replayStart)

	log, err := wal.Open(logPath)
	if err != nil {
		return nil, err
	}
	log.EnsureLSN(snapLSN + 1)
	d.wal = log
	d.dir = dir
	d.applyRuntime(cfg)
	return d, nil
}

func readFull(f *os.File, buf []byte) (int, error) {
	n, err := f.Read(buf)
	for n < len(buf) && err == nil {
		var m int
		m, err = f.Read(buf[n:])
		n += m
	}
	if n == len(buf) {
		return n, nil
	}
	return n, err
}

// applyStmt re-executes a logged statement without re-logging it.
func (d *DB) applyStmt(st walStmt) error {
	switch st.Kind {
	case "relation":
		return d.eng.CreateRelation(st.Name, toAttrs(st.Attrs)...)
	case "view":
		opts, err := optionsByName(st.Options)
		if err != nil {
			return err
		}
		v, err := st.Spec.build(st.Name)
		if err != nil {
			return err
		}
		return d.eng.CreateView(v, buildConfig(opts))
	case "joinview":
		opts, err := optionsByName(st.Options)
		if err != nil {
			return err
		}
		return d.createJoinViewCore(st.Name, st.Rels, opts)
	case "dropview":
		return d.eng.DropView(st.Name)
	case "tx":
		ops := make([]Op, len(st.Ops))
		for i, o := range st.Ops {
			ops[i] = Op{del: o.Del, rel: o.Rel, vals: o.Vals}
		}
		_, err := d.execCore(ops)
		return err
	default:
		return fmt.Errorf("mview: unknown logged statement kind %q", st.Kind)
	}
}

func optionsByName(names []string) ([]ViewOption, error) {
	opts := make([]ViewOption, 0, len(names))
	for _, n := range names {
		o, err := optionByName(n)
		if err != nil {
			return nil, err
		}
		opts = append(opts, o)
	}
	return opts, nil
}

// logStmt appends a statement to the commit log (no-op for in-memory
// databases). Called after the statement has been applied
// successfully; the append is fsynced before the public method
// returns, so an acknowledged commit can only be lost if the process
// dies between the in-memory apply and the append.
// encodeStmt gob-encodes a statement into a commit-log payload.
func encodeStmt(st walStmt) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (d *DB) logStmt(st walStmt) error {
	if d.wal == nil {
		return nil
	}
	p, err := encodeStmt(st)
	if err != nil {
		return err
	}
	_, err = d.wal.Append(walKindStmt, p)
	return err
}

// logPayloadBatch appends one already-encoded statement per member of
// a commit group, framed at consecutive LSNs and flushed with a single
// fsync. Recovery needs no group framing: each record replays as its
// own transaction, in the order the group applied them.
func (d *DB) logPayloadBatch(payloads [][]byte) error {
	entries := make([]wal.Entry, len(payloads))
	for i, p := range payloads {
		entries[i] = wal.Entry{Kind: walKindStmt, Payload: p}
	}
	_, err := d.wal.AppendBatch(entries)
	return err
}

// checkpointHook, when non-nil, runs between checkpoint steps so
// tests can inject faults. Steps, in order: "write-tmp" (tmp file
// written, synced, and closed; before rename), "rename" (snapshot
// renamed into place; before the directory fsync), "dirsync"
// (directory entry durable; before the log truncate). Returning
// errSimulatedCrash aborts with no cleanup — the process died at that
// instant — while any other error takes the normal cleanup path.
var checkpointHook func(step string) error

// errSimulatedCrash marks a fault-injection abort (see checkpointHook).
var errSimulatedCrash = errors.New("mview: simulated crash")

func hookStep(step string) error {
	if checkpointHook == nil {
		return nil
	}
	return checkpointHook(step)
}

// syncDir fsyncs a directory so a preceding rename's new entry is on
// disk before anything that depends on it.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Checkpoint writes a snapshot of the full database state and
// truncates the commit log. It returns an error on in-memory
// databases.
//
// Crash safety: the snapshot is written to a tmp file, fsynced,
// renamed over the previous snapshot, and the directory entry is
// fsynced — only then is the log truncated. A crash at any point
// leaves either the old snapshot with the full log or the new
// snapshot (log content then redundant), so replay always recovers
// every committed transaction. Truncating before the directory fsync
// would let a power loss surface the old snapshot next to an
// already-empty log, silently dropping commits.
func (d *DB) Checkpoint() error {
	if d.wal == nil {
		return fmt.Errorf("mview: Checkpoint on an in-memory database (use OpenDurable)")
	}
	// Fence out grouped commits first: the truncate below must not race
	// a leader mid-AppendBatch, and the snapshot must sit at a group
	// boundary.
	d.gmu.Lock()
	defer d.gmu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.reg != nil {
		defer func(t0 time.Time) {
			d.reg.Histogram("mview_checkpoint_seconds",
				"Checkpoint duration: snapshot write, fsync, rename, directory fsync, log truncate.", nil, nil).
				ObserveDuration(time.Since(t0))
		}(time.Now())
	}
	lsn := d.wal.LastLSN()

	tmp := filepath.Join(d.dir, snapshotFile+".tmp")
	if err := d.writeSnapshotTmp(tmp, lsn); err != nil {
		if !errors.Is(err, errSimulatedCrash) {
			os.Remove(tmp) // don't leak a half-written tmp on error
		}
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := hookStep("rename"); err != nil {
		return err
	}
	if err := syncDir(d.dir); err != nil {
		return err
	}
	if err := hookStep("dirsync"); err != nil {
		return err
	}
	// Safe even if we crash before this: replay skips LSNs ≤ the
	// snapshot's.
	return d.wal.Truncate()
}

// writeSnapshotTmp writes and fsyncs the checkpoint snapshot to tmp.
func (d *DB) writeSnapshotTmp(tmp string, lsn uint64) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var lsnBuf [8]byte
	binary.BigEndian.PutUint64(lsnBuf[:], lsn)
	if _, err := f.WriteString(snapshotMagic); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(lsnBuf[:]); err != nil {
		f.Close()
		return err
	}
	if err := d.eng.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return hookStep("write-tmp")
}

// SetLogSync controls whether each logged statement is fsynced before
// the call returns (the default). Disabling it trades durability
// against OS crashes for throughput — process crashes still lose
// nothing the OS has accepted. No-op on in-memory databases.
func (d *DB) SetLogSync(sync bool) {
	if d.wal != nil {
		d.wal.Sync = sync
	}
}

// Close releases the commit log. In-memory databases need no Close.
func (d *DB) Close() error {
	// Stop the group scheduler first (drains queued transactions and
	// waits out in-flight Exec calls) so no leader can touch the log
	// once it is closed.
	d.gmu.Lock()
	defer d.gmu.Unlock()
	d.eng.DisableGroupCommit()
	if d.wal == nil {
		return nil
	}
	err := d.wal.Close()
	d.wal = nil
	return err
}
