package mview

// Durable databases: a segmented commit log plus incremental
// checkpoints.
//
// OpenDurable gives the engine crash recovery: every DDL statement and
// transaction is appended to an fsynced, checksummed log as part of a
// successful commit, and Checkpoint persists the database state so the
// covered log prefix can be dropped. Reopening the directory loads the
// latest checkpoint and replays the log records past it. Views
// re-materialize from the restored base relations, so a reopened
// database is always internally consistent.
//
// On-disk layout (new format):
//
//	MANIFEST            the checkpoint root: segment list + WAL position
//	ckpt-<gen>-<i>.seg  immutable checkpoint segments (catalog + shards)
//	commit.log.<n>      WAL segments (internal/wal)
//
// A checkpoint writes the catalog segment (scheme + view definitions)
// plus one data segment per dirty, non-empty shard — concurrently, on
// the maintenance pool, with commits still flowing — and re-references
// the previous checkpoint's segments for clean shards. Only the final
// manifest swap (tmp write, rename, dirsync) and the WAL bookkeeping
// (segment seal at capture, covered-prefix drop) run under the commit
// fence, so the fence hold is O(manifest), not O(data).
//
// The legacy layout (monolithic snapshot.db + single commit.log) is
// migrated transparently on first open: the log file is adopted as the
// oldest WAL segment and the first checkpoint rewrites the snapshot
// into segments, after which snapshot.db is removed.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mview/internal/db"
	"mview/internal/wal"
)

const (
	snapshotFile = "snapshot.db" // legacy layout only
	logFile      = "commit.log"
	manifestFile = "MANIFEST"
	// walKindStmt tags gob-encoded statements in the log.
	walKindStmt uint8 = 1
	// snapshotMagic prefixes legacy durable snapshots (before the u64
	// LSN and the engine snapshot stream).
	snapshotMagic = "MVSNAP1\n"
	// manifestMagic heads the checkpoint manifest.
	manifestMagic = "MVMANIFEST1"
	// defaultSegmentBytes is the WAL segment rotation threshold when
	// WithSegmentSize is not given.
	defaultSegmentBytes = 64 << 20
)

// walOp mirrors Op with exported fields for gob.
type walOp struct {
	Del  bool
	Rel  string
	Vals []int64
}

// walStmt is one logged statement.
type walStmt struct {
	Kind    string // "tx" | "relation" | "view" | "joinview" | "dropview" | "policy"
	Name    string
	Attrs   []string
	Spec    ViewSpec
	Options []string
	Rels    []string
	Ops     []walOp
}

// manifestSeg is one data segment referenced by a manifest.
type manifestSeg struct {
	file  string
	rel   string
	shard int
}

// manifest is the checkpoint root: which segment files make up the
// checkpointed state and where in the WAL it was taken.
type manifest struct {
	gen       uint64 // checkpoint generation, monotonically increasing
	lsn       uint64 // WAL position the checkpoint covers
	shards    int    // engine shard count at write time
	catalog   string // catalog segment file name
	relShards map[string]int
	segs      []manifestSeg
}

// files returns every segment file the manifest references.
func (m *manifest) files() map[string]bool {
	out := make(map[string]bool, len(m.segs)+1)
	out[m.catalog] = true
	for _, s := range m.segs {
		out[s.file] = true
	}
	return out
}

// encode renders the manifest in its line-based text format with a
// trailing CRC32 line (debuggable with cat, torn-proof by checksum —
// though the atomic rename means a reader only ever sees a whole
// manifest).
func (m *manifest) encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", manifestMagic)
	fmt.Fprintf(&b, "gen %d\n", m.gen)
	fmt.Fprintf(&b, "lsn %d\n", m.lsn)
	fmt.Fprintf(&b, "shards %d\n", m.shards)
	fmt.Fprintf(&b, "catalog %s\n", m.catalog)
	for _, rel := range sortedRelNames(m.relShards) {
		fmt.Fprintf(&b, "relation %s %d\n", strconv.Quote(rel), m.relShards[rel])
	}
	for _, s := range m.segs {
		fmt.Fprintf(&b, "segment %s %s %d\n", s.file, strconv.Quote(s.rel), s.shard)
	}
	fmt.Fprintf(&b, "crc %d\n", crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

func sortedRelNames(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ { // insertion sort: tiny n, no extra import
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// decodeManifest parses and checksums a manifest file's contents.
func decodeManifest(data []byte) (*manifest, error) {
	crcAt := bytes.LastIndex(data, []byte("crc "))
	if crcAt < 0 {
		return nil, fmt.Errorf("mview: manifest missing crc line")
	}
	var wantCRC uint32
	if _, err := fmt.Sscanf(string(data[crcAt:]), "crc %d", &wantCRC); err != nil {
		return nil, fmt.Errorf("mview: manifest crc line: %w", err)
	}
	if got := crc32.ChecksumIEEE(data[:crcAt]); got != wantCRC {
		return nil, fmt.Errorf("mview: manifest checksum mismatch (got %d, want %d)", got, wantCRC)
	}
	m := &manifest{relShards: make(map[string]int)}
	sc := bufio.NewScanner(bytes.NewReader(data[:crcAt]))
	if !sc.Scan() || sc.Text() != manifestMagic {
		return nil, fmt.Errorf("mview: not a checkpoint manifest")
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		switch key {
		case "gen":
			if _, err := fmt.Sscanf(rest, "%d", &m.gen); err != nil {
				return nil, fmt.Errorf("mview: manifest gen: %w", err)
			}
		case "lsn":
			if _, err := fmt.Sscanf(rest, "%d", &m.lsn); err != nil {
				return nil, fmt.Errorf("mview: manifest lsn: %w", err)
			}
		case "shards":
			if _, err := fmt.Sscanf(rest, "%d", &m.shards); err != nil {
				return nil, fmt.Errorf("mview: manifest shards: %w", err)
			}
		case "catalog":
			m.catalog = rest
		case "relation":
			quoted, nstr, ok := cutLastField(rest)
			if !ok {
				return nil, fmt.Errorf("mview: manifest relation line %q", line)
			}
			rel, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("mview: manifest relation name %q: %w", quoted, err)
			}
			n, err := strconv.Atoi(nstr)
			if err != nil {
				return nil, fmt.Errorf("mview: manifest relation shards %q: %w", nstr, err)
			}
			m.relShards[rel] = n
		case "segment":
			file, rest2, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("mview: manifest segment line %q", line)
			}
			quoted, shardStr, ok := cutLastField(rest2)
			if !ok {
				return nil, fmt.Errorf("mview: manifest segment line %q", line)
			}
			rel, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("mview: manifest segment relation %q: %w", quoted, err)
			}
			shard, err := strconv.Atoi(shardStr)
			if err != nil {
				return nil, fmt.Errorf("mview: manifest segment shard %q: %w", shardStr, err)
			}
			m.segs = append(m.segs, manifestSeg{file: file, rel: rel, shard: shard})
		default:
			return nil, fmt.Errorf("mview: unknown manifest line %q", line)
		}
	}
	if m.catalog == "" {
		return nil, fmt.Errorf("mview: manifest missing catalog segment")
	}
	return m, nil
}

// cutLastField splits "… <last>" at the final space.
func cutLastField(s string) (head, last string, ok bool) {
	i := strings.LastIndex(s, " ")
	if i < 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// readManifest loads and validates dir's MANIFEST; (nil, nil) when the
// directory has none (fresh or legacy layout).
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return decodeManifest(data)
}

// OpenDurable opens (creating if necessary) a durable database rooted
// at dir, configured by the given options. State is recovered from the
// latest checkpoint (manifest + segments) plus the commit log.
// Engine-level options (WithShards) shape the recovered state itself;
// the runtime options (WithGroupCommit, WithObs, WithMaintWorkers) are
// applied after the log is attached, so instrumentation covers the log
// and group commit batches its appends from the first transaction.
//
// A directory in the legacy layout (monolithic snapshot.db +
// commit.log) opens transparently and is migrated in place: recovery
// reads the old files, an immediate checkpoint writes the segmented
// layout, and the legacy snapshot is removed.
func OpenDurable(dir string, opts ...Option) (*DB, error) {
	cfg := buildOpenConfig(opts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A crash mid-checkpoint can leave half-written tmp files and
	// orphaned segments behind. None of them are referenced by a
	// durable manifest, so they hold nothing; remove them rather than
	// leak one batch per crash.
	for _, stale := range []string{snapshotFile + ".tmp", manifestFile + ".tmp"} {
		if err := os.Remove(filepath.Join(dir, stale)); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if err := removeOrphanSegments(dir, man); err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, logFile)
	snapPath := filepath.Join(dir, snapshotFile)

	var d *DB
	var snapLSN uint64
	migrate := false
	switch {
	case man != nil:
		eng, err := loadFromManifest(dir, man, cfg)
		if err != nil {
			return nil, err
		}
		d = &DB{man: man}
		d.eng.Store(eng)
		snapLSN = man.lsn
		// A crash between a migration's manifest swap and its legacy
		// snapshot removal leaves snapshot.db behind; the manifest is
		// the truth now.
		if err := os.Remove(snapPath); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	default:
		d = &DB{}
		d.eng.Store(db.New(cfg.engineOptions()...))
		if f, err := os.Open(snapPath); err == nil {
			migrate = true
			var eng *db.Engine
			snapLSN, eng, err = loadLegacySnapshot(f, cfg)
			f.Close()
			if err != nil {
				return nil, err
			}
			d.eng.Store(eng)
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}

	// The state the checkpoint (or fresh engine) restored is exactly
	// what the segments hold, so shards start the first interval clean —
	// unless the engine resharded relative to the manifest (or we loaded
	// the shard-oblivious legacy snapshot), in which case the next
	// checkpoint must rewrite everything. WAL replay below re-dirties
	// the shards it touches through the normal commit path.
	if man != nil {
		cur := d.engine().CurrentSnapshot()
		for rel, n := range man.relShards {
			if cur.RelationShards(rel) == n {
				d.engine().SetCheckpointClean(rel)
			}
		}
	}

	// Replay committed statements past the checkpoint, timing the pass
	// so Instrument can expose recovery cost (mview_wal_replay_*).
	replayStart := time.Now()
	err = wal.Replay(logPath, snapLSN, func(r wal.Record) error {
		if r.Kind != walKindStmt {
			return fmt.Errorf("mview: unknown log record kind %d at LSN %d", r.Kind, r.LSN)
		}
		var st walStmt
		if err := gob.NewDecoder(bytes.NewReader(r.Payload)).Decode(&st); err != nil {
			return fmt.Errorf("mview: decoding log record %d: %w", r.LSN, err)
		}
		if err := d.applyStmt(st); err != nil {
			return fmt.Errorf("mview: replaying log record %d: %w", r.LSN, err)
		}
		d.replayRecords++
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.replayDur = time.Since(replayStart)

	log, err := wal.Open(logPath)
	if err != nil {
		return nil, err
	}
	log.EnsureLSN(snapLSN + 1)
	if cfg.segmentBytes > 0 {
		log.SegmentBytes = cfg.segmentBytes
	} else {
		log.SegmentBytes = defaultSegmentBytes
	}
	d.wal = log
	d.dir = dir

	if migrate {
		// One-time layout migration: checkpoint now (every shard is
		// dirty after a legacy load, so this writes the full segmented
		// state), then retire the legacy snapshot. A crash anywhere in
		// between reopens correctly: before the manifest swap the legacy
		// files still recover, after it the manifest wins.
		if err := d.Checkpoint(); err != nil {
			d.wal.Close()
			return nil, fmt.Errorf("mview: migrating legacy layout: %w", err)
		}
	}
	d.applyRuntime(cfg)
	return d, nil
}

// loadLegacySnapshot reads the pre-segmentation snapshot.db format.
func loadLegacySnapshot(f *os.File, cfg config) (uint64, *db.Engine, error) {
	magic := make([]byte, len(snapshotMagic))
	var lsnBuf [8]byte
	// io.ReadFull tolerates readers that return (0, nil) and reports
	// short reads as io.ErrUnexpectedEOF, so a truncated header is a
	// clean error instead of a spin.
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != snapshotMagic {
		return 0, nil, fmt.Errorf("mview: %s is not a durable snapshot", f.Name())
	}
	if _, err := io.ReadFull(f, lsnBuf[:]); err != nil {
		return 0, nil, fmt.Errorf("mview: corrupt snapshot header: %w", err)
	}
	snapLSN := binary.BigEndian.Uint64(lsnBuf[:])
	eng, err := db.Load(f, cfg.engineOptions()...)
	if err != nil {
		return 0, nil, fmt.Errorf("mview: loading snapshot: %w", err)
	}
	return snapLSN, eng, nil
}

// loadFromManifest restores an engine from a checkpoint's catalog and
// data segments.
func loadFromManifest(dir string, man *manifest, cfg config) (*db.Engine, error) {
	cat, err := os.Open(filepath.Join(dir, man.catalog))
	if err != nil {
		return nil, fmt.Errorf("mview: opening catalog segment: %w", err)
	}
	eng, pending, err := db.BeginSegmentedLoad(cat, cfg.engineOptions()...)
	cat.Close()
	if err != nil {
		return nil, fmt.Errorf("mview: loading catalog segment %s: %w", man.catalog, err)
	}
	for _, seg := range man.segs {
		f, err := os.Open(filepath.Join(dir, seg.file))
		if err != nil {
			return nil, fmt.Errorf("mview: opening segment %s: %w", seg.file, err)
		}
		err = eng.LoadShardSegment(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("mview: loading segment %s: %w", seg.file, err)
		}
	}
	if err := eng.CompleteSegmentedLoad(pending); err != nil {
		return nil, err
	}
	return eng, nil
}

// removeOrphanSegments deletes ckpt-*.seg files the manifest does not
// reference — the debris of a checkpoint that crashed before its
// manifest swap (or after being superseded).
func removeOrphanSegments(dir string, man *manifest) error {
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.seg"))
	if err != nil {
		return err
	}
	var referenced map[string]bool
	if man != nil {
		referenced = man.files()
	}
	for _, p := range matches {
		if referenced[filepath.Base(p)] {
			continue
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// applyStmt re-executes a logged statement without re-logging it.
func (d *DB) applyStmt(st walStmt) error {
	switch st.Kind {
	case "relation":
		return d.engine().CreateRelation(st.Name, toAttrs(st.Attrs)...)
	case "view":
		opts, err := optionsByName(st.Options)
		if err != nil {
			return err
		}
		v, err := st.Spec.build(st.Name)
		if err != nil {
			return err
		}
		return d.engine().CreateView(v, buildConfig(opts))
	case "joinview":
		opts, err := optionsByName(st.Options)
		if err != nil {
			return err
		}
		return d.createJoinViewCore(st.Name, st.Rels, opts)
	case "dropview":
		return d.engine().DropView(st.Name)
	case "policy":
		// SetPolicy logs the spec as a single option name; re-parse and
		// re-apply it. Replicas take this same path (repl.go), which is
		// how policy DDL reaches followers.
		if len(st.Options) != 1 {
			return fmt.Errorf("mview: malformed policy statement for view %q (%d options)", st.Name, len(st.Options))
		}
		o, err := ParseViewOption(st.Options[0])
		if err != nil {
			return err
		}
		if o.when == nil {
			return fmt.Errorf("mview: logged policy %q for view %q is not a refresh policy", st.Options[0], st.Name)
		}
		return d.engine().SetViewPolicy(st.Name, *o.when)
	case "tx":
		ops := make([]Op, len(st.Ops))
		for i, o := range st.Ops {
			ops[i] = Op{del: o.Del, rel: o.Rel, vals: o.Vals}
		}
		_, err := d.execCore(ops)
		return err
	default:
		return fmt.Errorf("mview: unknown logged statement kind %q", st.Kind)
	}
}

func optionsByName(names []string) ([]ViewOption, error) {
	opts := make([]ViewOption, 0, len(names))
	for _, n := range names {
		o, err := ParseViewOption(n)
		if err != nil {
			return nil, err
		}
		opts = append(opts, o)
	}
	return opts, nil
}

// logStmt appends a statement to the commit log (no-op for in-memory
// databases). Called after the statement has been applied
// successfully; the append is fsynced before the public method
// returns, so an acknowledged commit can only be lost if the process
// dies between the in-memory apply and the append.
// encodeStmt gob-encodes a statement into a commit-log payload.
func encodeStmt(st walStmt) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (d *DB) logStmt(st walStmt) error {
	if d.wal == nil {
		return nil
	}
	p, err := encodeStmt(st)
	if err != nil {
		return err
	}
	_, err = d.wal.Append(walKindStmt, p)
	return err
}

// logPayloadBatch appends one already-encoded statement per member of
// a commit group, framed at consecutive LSNs and flushed with a single
// fsync. Recovery needs no group framing: each record replays as its
// own transaction, in the order the group applied them.
func (d *DB) logPayloadBatch(payloads [][]byte) error {
	entries := make([]wal.Entry, len(payloads))
	for i, p := range payloads {
		entries[i] = wal.Entry{Kind: walKindStmt, Payload: p}
	}
	_, err := d.wal.AppendBatch(entries)
	return err
}

// checkpointHook, when non-nil, runs between checkpoint steps so tests
// can inject faults. Steps, in order: "segment-write" (catalog + dirty
// shard segments written, fsynced, and their directory entries synced;
// before the manifest tmp), "manifest-tmp" (MANIFEST.tmp written and
// synced; before the rename), "rename" (manifest renamed into place;
// before the directory fsync), "dirsync" (manifest entry durable;
// before old segments and covered WAL segments are deleted), and
// "segment-delete" (obsolete checkpoint and WAL segments removed).
// Returning errSimulatedCrash aborts with no cleanup — the process
// died at that instant — while any other error takes the normal
// cleanup path.
var checkpointHook func(step string) error

// errSimulatedCrash marks a fault-injection abort (see checkpointHook).
var errSimulatedCrash = errors.New("mview: simulated crash")

func hookStep(step string) error {
	if checkpointHook == nil {
		return nil
	}
	return checkpointHook(step)
}

// syncDir fsyncs a directory so a preceding rename's new entry is on
// disk before anything that depends on it.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CheckpointStats describes the last completed checkpoint.
type CheckpointStats struct {
	// LSN is the WAL position the checkpoint covers.
	LSN uint64
	// Duration is the whole checkpoint, capture to cleanup.
	Duration time.Duration
	// FenceHold is how long the checkpoint held the commit fence —
	// capture plus manifest swap; segment writing runs outside it.
	FenceHold time.Duration
	// SegmentsWritten counts segment files written (catalog included);
	// SegmentsReused counts clean shards re-referenced from the
	// previous checkpoint.
	SegmentsWritten int
	SegmentsReused  int
	// BytesWritten totals the new segment files' sizes.
	BytesWritten int64
	// WALSegmentsDropped counts sealed commit-log segments deleted
	// because this checkpoint covers them.
	WALSegmentsDropped int
}

// LastCheckpointStats reports the most recent successful Checkpoint on
// this handle (zero value before the first one).
func (d *DB) LastCheckpointStats() CheckpointStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ckptStats
}

// segJob is one segment file the checkpoint must write; rel == ""
// means the catalog.
type segJob struct {
	file  string
	rel   string
	shard int
}

// Checkpoint persists the current database state incrementally and
// drops the covered commit-log prefix. It returns an error on
// in-memory databases.
//
// Only shards dirtied since the previous checkpoint are rewritten
// (plus the small catalog segment); clean shards re-reference the
// previous checkpoint's immutable segment files. Segment writing runs
// concurrently on the maintenance pool while commits continue — the
// commit fence is held only to capture a consistent cut (snapshot, WAL
// position, dirty set; O(1)) and to swap the manifest (O(manifest)).
//
// Crash safety: new segments are written to uniquely named files and
// fsynced, the directory entry set is fsynced, then MANIFEST.tmp is
// written, fsynced, renamed over MANIFEST, and the directory is
// fsynced again — only then are superseded checkpoint segments and
// covered WAL segments deleted. A crash at any point leaves either the
// old manifest with the full log (new segments are unreferenced
// debris, removed at next open) or the new manifest (covered log
// content then redundant), so replay always recovers every committed
// transaction.
func (d *DB) Checkpoint() error {
	if d.wal == nil {
		return fmt.Errorf("mview: Checkpoint on an in-memory database (use OpenDurable)")
	}
	// One checkpoint at a time: the background ticker and an operator
	// CLI may race, and generations must be sequential.
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	t0 := time.Now()

	// Phase A — under the commit fence: capture a consistent cut. The
	// published snapshot equals the logged state here (no statement is
	// in flight), the WAL seals its active segment so the covered
	// prefix becomes droppable, and the dirty bitmaps reset to start
	// the next interval.
	d.gmu.Lock()
	d.mu.Lock()
	if d.wal == nil {
		d.mu.Unlock()
		d.gmu.Unlock()
		return fmt.Errorf("mview: Checkpoint on a closed database")
	}
	snap := d.engine().CurrentSnapshot()
	lsn := d.wal.LastLSN()
	rotErr := d.wal.Rotate()
	var dirty map[string][]bool
	var prev *manifest
	if rotErr == nil {
		dirty = d.engine().TakeCheckpointDirty()
		prev = d.man
	}
	d.mu.Unlock()
	d.gmu.Unlock()
	if rotErr != nil {
		return rotErr
	}
	fenceHold := time.Since(t0)

	restoreDirty := func() { d.engine().RestoreCheckpointDirty(dirty) }

	// Phase B — no fence: plan the segment set and write the new files
	// concurrently on the maintenance pool. The snapshot is immutable
	// (COW), so commits flowing meanwhile cannot perturb it.
	var gen uint64 = 1
	if prev != nil {
		gen = prev.gen + 1
	}
	man := &manifest{
		gen:       gen,
		lsn:       lsn,
		shards:    d.engine().Shards(),
		catalog:   fmt.Sprintf("ckpt-%d-0.seg", gen),
		relShards: make(map[string]int),
	}
	prevSegs := make(map[string]manifestSeg)
	if prev != nil {
		for _, s := range prev.segs {
			prevSegs[segKey(s.rel, s.shard)] = s
		}
	}
	jobs := []segJob{{file: man.catalog}}
	reused := 0
	next := 1
	for _, rel := range snap.Relations() {
		n := snap.RelationShards(rel)
		man.relShards[rel] = n
		bits := dirty[rel]
		// A reusable previous segment requires the same shard layout
		// then and now; otherwise every shard is dirty anyway (reshard
		// marks nothing clean).
		reusable := prev != nil && prev.relShards[rel] == n
		for shard := 0; shard < n; shard++ {
			if shard < len(bits) && !bits[shard] {
				if reusable {
					if s, ok := prevSegs[segKey(rel, shard)]; ok {
						man.segs = append(man.segs, s)
						reused++
					}
					continue
				}
				// Clean bit but no matching layout to reuse from: fall
				// through and rewrite (first checkpoint after reshard).
			}
			if snap.ShardLen(rel, shard) == 0 {
				continue // absence of a segment means an empty shard
			}
			file := fmt.Sprintf("ckpt-%d-%d.seg", gen, next)
			next++
			jobs = append(jobs, segJob{file: file, rel: rel, shard: shard})
			man.segs = append(man.segs, manifestSeg{file: file, rel: rel, shard: shard})
		}
	}

	var bytesWritten atomic.Int64
	cleanupNew := func() {
		for _, j := range jobs {
			os.Remove(filepath.Join(d.dir, j.file))
		}
	}
	if err := d.writeSegments(snap, jobs, &bytesWritten); err != nil {
		if !errors.Is(err, errSimulatedCrash) {
			cleanupNew()
			restoreDirty()
		}
		return err
	}
	if err := syncDir(d.dir); err != nil {
		cleanupNew()
		restoreDirty()
		return err
	}
	if err := hookStep("segment-write"); err != nil {
		if !errors.Is(err, errSimulatedCrash) {
			cleanupNew()
			restoreDirty()
		}
		return err
	}

	// Phase C — under the commit fence again: swap the manifest and
	// prune. Everything here is O(manifest), independent of data size.
	d.gmu.Lock()
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.gmu.Unlock()
	fenceStart := time.Now()
	if d.wal == nil {
		cleanupNew()
		restoreDirty()
		return fmt.Errorf("mview: database closed during checkpoint")
	}
	abort := func(err error) error {
		if !errors.Is(err, errSimulatedCrash) {
			os.Remove(filepath.Join(d.dir, manifestFile+".tmp"))
			cleanupNew()
			restoreDirty()
		}
		return err
	}
	tmp := filepath.Join(d.dir, manifestFile+".tmp")
	if err := writeFileSynced(tmp, man.encode()); err != nil {
		return abort(err)
	}
	if err := hookStep("manifest-tmp"); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, manifestFile)); err != nil {
		return abort(err)
	}
	// The rename is the commit point: from here the new manifest is the
	// disk truth (fsync pending, but a crash that loses the rename just
	// falls back to the old manifest plus the still-complete WAL).
	d.man = man
	if err := hookStep("rename"); err != nil {
		return err
	}
	if err := syncDir(d.dir); err != nil {
		return err
	}
	if err := hookStep("dirsync"); err != nil {
		return err
	}

	// Prune: checkpoint segments only the old manifest referenced, the
	// legacy snapshot if this was the migration, and WAL segments the
	// new manifest covers. All of it is redundant now; failures leave
	// only debris that the next open sweeps.
	if prev != nil {
		cur := man.files()
		for f := range prev.files() {
			if !cur[f] {
				os.Remove(filepath.Join(d.dir, f))
			}
		}
	}
	if err := os.Remove(filepath.Join(d.dir, snapshotFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	walDropped, err := d.wal.DropThrough(lsn)
	if err != nil {
		return err
	}
	if err := hookStep("segment-delete"); err != nil {
		return err
	}

	fenceHold += time.Since(fenceStart)
	d.ckptStats = CheckpointStats{
		LSN:                lsn,
		Duration:           time.Since(t0),
		FenceHold:          fenceHold,
		SegmentsWritten:    len(jobs),
		SegmentsReused:     reused,
		BytesWritten:       bytesWritten.Load(),
		WALSegmentsDropped: walDropped,
	}
	if d.reg != nil {
		d.reg.Histogram("mview_checkpoint_seconds",
			"Checkpoint duration: segment writes, manifest swap, pruning.", nil, nil).
			ObserveDuration(d.ckptStats.Duration)
		d.reg.Histogram("mview_checkpoint_fence_seconds",
			"Commit-fence hold time per checkpoint (capture + manifest swap; segment writes run outside the fence).", nil, nil).
			ObserveDuration(fenceHold)
		d.reg.Counter("mview_checkpoint_segments_written_total",
			"Checkpoint segment files written (catalog included).", nil).
			Add(int64(len(jobs)))
		d.reg.Counter("mview_checkpoint_segments_reused_total",
			"Clean shards re-referenced from the previous checkpoint instead of rewritten.", nil).
			Add(int64(reused))
	}
	return nil
}

func segKey(rel string, shard int) string { return fmt.Sprintf("%s\x00%d", rel, shard) }

// writeSegments writes the planned segment files concurrently on a
// pool sized like the maintenance pool, fsyncing each. The first error
// wins; remaining jobs are skipped.
func (d *DB) writeSegments(snap *db.Snapshot, jobs []segJob, bytesWritten *atomic.Int64) error {
	workers := d.engine().MaintWorkers()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			if err := d.writeSegment(snap, j, bytesWritten); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ch := make(chan segJob)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if err := d.writeSegment(snap, j, bytesWritten); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		ch <- j
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// writeSegment writes and fsyncs one segment file.
func (d *DB) writeSegment(snap *db.Snapshot, j segJob, bytesWritten *atomic.Int64) error {
	f, err := os.Create(filepath.Join(d.dir, j.file))
	if err != nil {
		return err
	}
	if j.rel == "" {
		err = snap.WriteCatalog(f)
	} else {
		err = snap.WriteShard(f, j.rel, j.shard)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if info, serr := f.Stat(); serr == nil {
		bytesWritten.Add(info.Size())
	}
	return f.Close()
}

// writeFileSynced writes data to path and fsyncs it.
func writeFileSynced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SetLogSync controls whether each logged statement is fsynced before
// the call returns (the default). Disabling it trades durability
// against OS crashes for throughput — process crashes still lose
// nothing the OS has accepted. No-op on in-memory databases.
func (d *DB) SetLogSync(sync bool) {
	if d.wal != nil {
		d.wal.Sync = sync
	}
}

// Close releases the commit log and, on a follower, stops replication
// (waiting for the apply loop to exit). In-memory leaders without
// scheduled refresh policies need no Close; databases with Every,
// MaxStaleness, or AdaptivePolicy views should Close to stop the
// refresh scheduler's timer wheel.
func (d *DB) Close() error {
	if d.follower != nil {
		d.follower.cancel()
		<-d.follower.done
	}
	// Stop the group scheduler first (drains queued transactions and
	// waits out in-flight Exec calls) so no leader can touch the log
	// once it is closed, then the refresh scheduler (its wheel may be
	// mid-refresh; stop waits it out so nothing fires after Close).
	d.gmu.Lock()
	defer d.gmu.Unlock()
	d.engine().DisableGroupCommit()
	d.engine().StopScheduler()
	if d.wal == nil {
		return nil
	}
	err := d.wal.Close()
	d.wal = nil
	return err
}
