package mview

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestExecContextCancellation pins the public context surface: a dead
// context commits nothing on either commit path, and the plain
// variants still work unchanged.
func TestExecContextCancellation(t *testing.T) {
	for _, opts := range [][]Option{nil, {WithGroupCommit(4, time.Millisecond)}} {
		d := Open(opts...)
		if err := d.CreateRelation("R", "A", "B"); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := d.ExecContext(ctx, Insert("R", 1, 2)); !errors.Is(err, context.Canceled) {
			t.Errorf("opts=%d: ExecContext = %v, want context.Canceled", len(opts), err)
		}
		if rows, _ := d.Rows("R"); len(rows) != 0 {
			t.Errorf("opts=%d: cancelled transaction committed: %v", len(opts), rows)
		}
		if _, err := d.QueryContext(ctx, ViewSpec{From: []string{"R"}}); !errors.Is(err, context.Canceled) {
			t.Errorf("opts=%d: QueryContext = %v, want context.Canceled", len(opts), err)
		}
		// Live context: both variants succeed.
		if _, err := d.ExecContext(context.Background(), Insert("R", 1, 2)); err != nil {
			t.Fatal(err)
		}
		rows, err := d.QueryContext(context.Background(), ViewSpec{From: []string{"R"}})
		if err != nil || len(rows) != 1 {
			t.Errorf("opts=%d: QueryContext = %v, %v; want one row", len(opts), rows, err)
		}
		d.DisableGroupCommit()
	}
}
