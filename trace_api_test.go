package mview

import (
	"strings"
	"testing"
	"time"

	"mview/internal/obs"
)

// TestTraceAPISurface exercises the observability additions on DB:
// ExplainAnalyze, Staleness, SnapshotAge, CriticalPath, and the
// TxInfo-to-flight-recorder linkage through Instrument.
func TestTraceAPISurface(t *testing.T) {
	fr := obs.NewFlightRecorder(8, 0)
	db := Open(WithObs(obs.NewRegistry(), fr))
	if err := db.CreateRelation("r", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v", ViewSpec{From: []string{"r"}, Where: "A < 10"}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("d", ViewSpec{From: []string{"r"}}, OnDemand()); err != nil {
		t.Fatal(err)
	}

	info, err := db.Exec(Insert("r", 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if info.Trace == 0 {
		t.Errorf("TxInfo.Trace = 0 with a flight recorder attached")
	} else if _, ok := fr.Get(info.Trace); !ok {
		t.Errorf("TxInfo.Trace %d not resolvable in the recorder", info.Trace)
	}
	time.Sleep(2 * time.Millisecond)

	// Staleness: the immediate view is fresh, the deferred one lags.
	st := db.Staleness()
	if st["v"] != 0 {
		t.Errorf("immediate staleness = %v, want 0", st["v"])
	}
	if st["d"] <= 0 {
		t.Errorf("deferred staleness = %v, want > 0", st["d"])
	}
	if err := db.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if st := db.Staleness(); st["d"] != 0 {
		t.Errorf("staleness after RefreshAll = %v, want 0", st["d"])
	}

	if age := db.SnapshotAge(); age < 0 || age > time.Minute {
		t.Errorf("SnapshotAge = %v, want small and non-negative", age)
	}

	cp := db.CriticalPath()
	if cp.Batches < 1 || cp.Seconds <= 0 {
		t.Errorf("CriticalPath = %+v, want >= 1 batch with time attributed", cp)
	}
	if _, ok := cp.Stages["install"]; !ok {
		t.Errorf("CriticalPath missing install stage: %v", cp.Stages)
	}

	// ExplainAnalyze names a trace the recorder can resolve.
	out, err := db.ExplainAnalyze("v")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "analyze:") || !strings.Contains(out, "trace=") {
		t.Fatalf("ExplainAnalyze output lacks annotations:\n%s", out)
	}
	idStr := out[strings.LastIndex(out, "trace=")+len("trace="):]
	idStr = strings.TrimSpace(strings.SplitN(idStr, "\n", 2)[0])
	var id uint64
	for _, c := range idStr {
		id = id*10 + uint64(c-'0')
	}
	if _, ok := fr.Get(id); !ok {
		t.Errorf("trace %d from ExplainAnalyze not found in the recorder", id)
	}
}

// TestInstrumentNilKeepsNewSurfacesWorking: every new read surface
// must stay usable (and cheap) on an uninstrumented database.
func TestInstrumentNilKeepsNewSurfacesWorking(t *testing.T) {
	db := openExample41(t)
	if _, err := db.Exec(Insert("r", 1, 6), Insert("s", 6, 20)); err != nil {
		t.Fatal(err)
	}
	if st := db.Staleness(); st["v"] != 0 {
		t.Errorf("staleness on uninstrumented db = %v", st)
	}
	cp := db.CriticalPath()
	if cp.Batches != 0 {
		t.Errorf("uninstrumented CriticalPath batches = %d, want 0 (no commitTrace)", cp.Batches)
	}
	out, err := db.ExplainAnalyze("v")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "last maintenance:") {
		t.Errorf("ExplainAnalyze must record timings without instrumentation:\n%s", out)
	}
	if strings.Contains(out, "trace=") {
		t.Errorf("uninstrumented maintenance must not claim a trace id:\n%s", out)
	}
}
