package mview

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync/atomic"

	"mview/internal/db"
	"mview/internal/delta"
	"mview/internal/repl"
	"mview/internal/wal"
)

// ErrReadOnlyReplica is returned by every mutating method of a
// follower database: replicas apply only what the leader streams, so
// writes (transactions and DDL alike) must go to the leader.
var ErrReadOnlyReplica = errors.New("mview: read-only replica (writes go to the leader)")

// ReplicationServer returns the database's leader-side replication
// stream server, creating it on first call. It requires a durable
// database — the segmented WAL is the stream's source of truth. The
// same server instance is shared by every transport (the HTTP routes
// under /v1/replication and in-process followers), so follower
// positions and lag metrics are tracked in one place.
func (d *DB) ReplicationServer() (*repl.Server, error) {
	if d.wal == nil || d.dir == "" {
		return nil, fmt.Errorf("mview: replication requires a durable leader (OpenDurable)")
	}
	d.replMu.Lock()
	defer d.replMu.Unlock()
	if d.replSrv == nil {
		d.replSrv = repl.NewServer(replSource{d: d, w: d.wal})
		d.replSrv.SetObs(d.reg)
	}
	return d.replSrv, nil
}

// replSource adapts a durable leader database to repl.Source. It
// captures the log pointer at creation so stream goroutines never race
// Close nilling d.wal: the position accessors are atomic and stay safe
// on a closed log (streams on a closing database drain and exit on
// their own terms).
type replSource struct {
	d *DB
	w *wal.Log
}

func (s replSource) Bounds() (uint64, uint64) { return s.w.Bounds() }
func (s replSource) LastLSN() uint64          { return s.w.LastLSN() }

func (s replSource) OpenTail(from uint64) (*wal.Tail, error) {
	return wal.OpenTail(filepath.Join(s.d.dir, logFile), from)
}

// WriteSnapshot streams a consistent bootstrap image. The commit fence
// (the same one Checkpoint's phase A takes) is held only to capture
// the immutable COW snapshot and its exact WAL position — O(1) — and
// is released before a single byte is written, so commits flow while
// the image streams out.
func (s replSource) WriteSnapshot(w io.Writer) (uint64, error) {
	d := s.d
	d.gmu.Lock()
	d.mu.Lock()
	if d.wal == nil {
		d.mu.Unlock()
		d.gmu.Unlock()
		return 0, fmt.Errorf("mview: snapshot on a closed database")
	}
	snap := d.engine().CurrentSnapshot()
	lsn := d.wal.LastLSN()
	d.mu.Unlock()
	d.gmu.Unlock()
	return lsn, writeReplSnapshot(w, snap, lsn)
}

// The bootstrap stream is the checkpoint codec's segments wrapped for
// sequential transport: a header binding the image to its WAL
// position, then length-prefixed sections (catalog first, then one
// per non-empty shard). The length prefixes exist because the segment
// readers buffer internally and over-read — sections must be framed,
// not concatenated.
const replSnapMagic = "MVIEWRPL1"

func writeReplSnapshot(w io.Writer, snap *db.Snapshot, lsn uint64) error {
	sections := 1
	for _, rel := range snap.Relations() {
		for shard := 0; shard < snap.RelationShards(rel); shard++ {
			if snap.ShardLen(rel, shard) > 0 {
				sections++
			}
		}
	}
	hdr := make([]byte, 0, len(replSnapMagic)+8+4)
	hdr = append(hdr, replSnapMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, lsn)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(sections))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var buf bytes.Buffer
	writeSection := func(fill func(io.Writer) error) error {
		buf.Reset()
		if err := fill(&buf); err != nil {
			return err
		}
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], uint32(buf.Len()))
		if _, err := w.Write(lenb[:]); err != nil {
			return err
		}
		_, err := w.Write(buf.Bytes())
		return err
	}
	if err := writeSection(snap.WriteCatalog); err != nil {
		return err
	}
	for _, rel := range snap.Relations() {
		for shard := 0; shard < snap.RelationShards(rel); shard++ {
			if snap.ShardLen(rel, shard) == 0 {
				continue
			}
			rel, shard := rel, shard
			if err := writeSection(func(out io.Writer) error {
				return snap.WriteShard(out, rel, shard)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// maxReplSection bounds one bootstrap section (1 GiB) against corrupt
// length fields; real sections are one shard each.
const maxReplSection = 1 << 30

func loadReplSnapshot(r io.Reader, cfg config) (*db.Engine, uint64, error) {
	hdr := make([]byte, len(replSnapMagic)+8+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, fmt.Errorf("mview: reading replication snapshot header: %w", err)
	}
	if string(hdr[:len(replSnapMagic)]) != replSnapMagic {
		return nil, 0, fmt.Errorf("mview: not a replication snapshot (magic %q)", hdr[:len(replSnapMagic)])
	}
	lsn := binary.BigEndian.Uint64(hdr[len(replSnapMagic):])
	sections := binary.BigEndian.Uint32(hdr[len(replSnapMagic)+8:])
	if sections == 0 {
		return nil, 0, fmt.Errorf("mview: replication snapshot with no sections")
	}
	readSection := func() ([]byte, error) {
		var lenb [4]byte
		if _, err := io.ReadFull(r, lenb[:]); err != nil {
			return nil, err
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n > maxReplSection {
			return nil, fmt.Errorf("mview: snapshot section of %d bytes exceeds limit", n)
		}
		sec := make([]byte, n)
		if _, err := io.ReadFull(r, sec); err != nil {
			return nil, err
		}
		return sec, nil
	}
	cat, err := readSection()
	if err != nil {
		return nil, 0, fmt.Errorf("mview: reading snapshot catalog: %w", err)
	}
	eng, pending, err := db.BeginSegmentedLoad(bytes.NewReader(cat), cfg.engineOptions()...)
	if err != nil {
		return nil, 0, err
	}
	for i := uint32(1); i < sections; i++ {
		sec, err := readSection()
		if err != nil {
			return nil, 0, fmt.Errorf("mview: reading snapshot section %d: %w", i, err)
		}
		if err := eng.LoadShardSegment(bytes.NewReader(sec)); err != nil {
			return nil, 0, err
		}
	}
	if err := eng.CompleteSegmentedLoad(pending); err != nil {
		return nil, 0, err
	}
	return eng, lsn, nil
}

// followerState is the replication machinery of a follower database.
type followerState struct {
	id      string
	cfg     config
	client  *repl.Client
	cancel  context.CancelFunc
	done    chan struct{}
	applied atomic.Uint64
}

// OpenFollower opens a read-only in-memory follower of the leader at
// leaderURL (its mviewd base URL, e.g. "http://leader:7171"). The
// follower bootstraps from a leader snapshot, applies the replication
// stream through the same maintenance pipeline the leader runs, and
// publishes its own COW snapshots — every read API (queries, views,
// watch subscriptions, HTTP routes) serves locally with no leader
// round-trips. Mutating methods return ErrReadOnlyReplica.
//
// id names this follower in the leader's lag metrics and must be
// stable across restarts. The connection is maintained in the
// background: dropped streams resume from the applied position, and a
// leader that has reclaimed needed WAL segments triggers a transparent
// re-sync from a fresh snapshot. Close stops replication.
func OpenFollower(leaderURL, id string, opts ...Option) (*DB, error) {
	return openFollowerTransport(repl.HTTPTransport{Base: leaderURL}, id, opts...)
}

// openFollowerTransport is OpenFollower over any transport — the
// in-process LocalTransport variant is what oracle tests and the
// replication benchmark use (no second process, same client logic).
func openFollowerTransport(t repl.Transport, id string, opts ...Option) (*DB, error) {
	if id == "" {
		return nil, fmt.Errorf("mview: follower id must be non-empty")
	}
	cfg := buildOpenConfig(opts)
	// Followers never run the group-commit scheduler: batch boundaries
	// arrive from the wire and apply through ExecuteReplicated.
	cfg.groupCommit = false
	d := &DB{readonly: true}
	d.eng.Store(db.New(cfg.engineOptions()...))
	// Policy DDL replays on followers so their catalogs mirror the
	// leader's, but only the leader RUNS the policies: refreshes arrive
	// through the replication stream, so a follower driving its own
	// timer wheel would do redundant work (and diverge the staleness
	// its metrics report from what the stream provides).
	d.engine().DisablePolicyRefresh()
	d.applyRuntime(cfg)
	f := &followerState{id: id, cfg: cfg}
	d.follower = f
	f.client = repl.NewClient(id, t, followerApplier{d})
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go func() {
		defer close(f.done)
		_ = f.client.Run(ctx)
	}()
	return d, nil
}

// FollowerStatus reports a follower's replication state (applied and
// leader positions, lag, re-sync and reconnect counts). ok is false on
// databases that are not followers.
func (d *DB) FollowerStatus() (st repl.ClientStatus, ok bool) {
	if d.follower == nil {
		return repl.ClientStatus{}, false
	}
	return d.follower.client.Status(), true
}

// followerApplier implements repl.Applier on a follower database. All
// methods run on the client's single replication goroutine.
type followerApplier struct{ d *DB }

// Bootstrap replaces the follower's entire engine from a leader
// snapshot stream. Readers are never blocked: they keep the old
// engine's immutable snapshots until the atomic pointer swap, after
// which new reads see the bootstrapped state.
func (a followerApplier) Bootstrap(r io.Reader) (uint64, error) {
	d := a.d
	eng, lsn, err := loadReplSnapshot(r, d.follower.cfg)
	if err != nil {
		return 0, err
	}
	if d.follower.cfg.maintWorkers > 0 {
		eng.SetMaintWorkers(d.follower.cfg.maintWorkers)
	}
	// Carry instrumentation over to the fresh engine (set by Open
	// options or a later Instrument call — e.g. the HTTP handler).
	eng.SetObs(d.reg, d.tracer)
	// Followers never drive policy refreshes (see openFollowerTransport);
	// the replaced engine's scheduler must stop or its wheel goroutine
	// would outlive the swap.
	eng.DisablePolicyRefresh()
	if old := d.eng.Swap(eng); old != nil {
		old.StopScheduler()
	}
	d.follower.applied.Store(lsn)
	return lsn, nil
}

// Apply applies one shipped batch: consecutive transaction records
// compose into a single maintenance pass (ExecuteReplicated — the same
// §6 path a leader commit group takes), DDL applies in stream order
// between them, and noop continuity records only advance the position.
// Any failure is a divergence; the client answers it with a re-sync.
func (a followerApplier) Apply(recs []wal.Record) error {
	d := a.d
	var txs []*delta.Tx
	flush := func() error {
		if len(txs) == 0 {
			return nil
		}
		err := d.engine().ExecuteReplicated(txs)
		txs = nil
		return err
	}
	for _, rec := range recs {
		if rec.Kind == wal.KindNoop {
			continue
		}
		if rec.Kind != walKindStmt {
			return fmt.Errorf("mview: unknown replicated record kind %d at LSN %d", rec.Kind, rec.LSN)
		}
		var st walStmt
		if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(&st); err != nil {
			return fmt.Errorf("mview: decoding replicated record at LSN %d: %w", rec.LSN, err)
		}
		if st.Kind == "tx" {
			ops := make([]Op, len(st.Ops))
			for i, o := range st.Ops {
				ops[i] = Op{del: o.Del, rel: o.Rel, vals: o.Vals}
			}
			tx := buildTx(ops)
			txs = append(txs, &tx)
			continue
		}
		// DDL: flush pending transactions first to preserve stream
		// order, then apply through the same dispatch recovery uses.
		if err := flush(); err != nil {
			return err
		}
		if err := d.applyStmt(st); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	d.follower.applied.Store(recs[len(recs)-1].LSN)
	return nil
}

func (a followerApplier) AppliedLSN() uint64 {
	return a.d.follower.applied.Load()
}
