package mview

// Replication oracle and failover properties: a follower fed the
// composed-delta stream (over the in-process transport, bytes
// identical to the HTTP wire) must converge to exactly the leader's
// state — no lost, duplicated, or reordered transactions — through a
// randomized concurrent workload with group commit, a mid-stream
// leader kill and restart (stream resume), and a checkpoint that
// reclaims WAL segments the follower still needed (explicit re-sync,
// never silent divergence). Run with -race in CI.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mview/internal/repl"
)

// swapTransport lets the failover test replace the follower's peer
// (leader restart → new server instance) and simulate the leader being
// down (every call errors, as a refused connection would).
type swapTransport struct {
	mu   sync.Mutex
	t    repl.Transport
	down bool
}

func (s *swapTransport) set(t repl.Transport, down bool) {
	s.mu.Lock()
	s.t, s.down = t, down
	s.mu.Unlock()
}

func (s *swapTransport) peer() (repl.Transport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, errors.New("swapTransport: leader down")
	}
	return s.t, nil
}

func (s *swapTransport) Snapshot(ctx context.Context) (io.ReadCloser, error) {
	t, err := s.peer()
	if err != nil {
		return nil, err
	}
	return t.Snapshot(ctx)
}

func (s *swapTransport) Stream(ctx context.Context, id string, from uint64) (io.ReadCloser, error) {
	t, err := s.peer()
	if err != nil {
		return nil, err
	}
	return t.Stream(ctx, id, from)
}

func (s *swapTransport) Ack(ctx context.Context, id string, lsn uint64) error {
	t, err := s.peer()
	if err != nil {
		return err
	}
	return t.Ack(ctx, id, lsn)
}

func waitReplicated(t *testing.T, f *DB, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := f.FollowerStatus(); ok && st.AppliedLSN >= lsn {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := f.FollowerStatus()
	t.Fatalf("follower stuck at LSN %d (want >= %d; state %q, resyncs %d, reconnects %d)",
		st.AppliedLSN, lsn, st.State, st.Resyncs, st.Reconnects)
}

// oracleOps is one writer's committed transactions in program order.
// Writers use disjoint key ranges, so transactions from different
// writers commute and the oracle may replay writer-by-writer.
type oracleOps struct {
	mu  sync.Mutex
	txs [][]Op
}

func (o *oracleOps) record(ops []Op) {
	o.mu.Lock()
	o.txs = append(o.txs, ops)
	o.mu.Unlock()
}

func replTestDDL(t *testing.T, d *DB) {
	t.Helper()
	steps := []func() error{
		func() error { return d.CreateRelation("r", "A", "B") },
		func() error { return d.CreateRelation("s", "B", "C") },
		func() error { return d.CreateView("vsel", ViewSpec{From: []string{"r"}, Where: "A < 250"}) },
		func() error { return d.CreateJoinView("vj", []string{"r", "s"}) },
		func() error {
			return d.CreateView("vrec", ViewSpec{From: []string{"r"}, Where: "B >= 5"}, WithRecompute())
		},
	}
	for _, f := range steps {
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}
}

// runWriters commits nTx random transactions per writer against d,
// each writer confined to its own key range, recording every committed
// transaction for the oracle.
func runWriters(t *testing.T, d *DB, writers, nTx, seed int, rec []*oracleOps) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed*100 + g)))
			base := int64(g * 100)
			for i := 0; i < nTx; i++ {
				var ops []Op
				for j := 0; j < 1+rng.Intn(3); j++ {
					a := base + int64(rng.Intn(25))
					b := base + int64(rng.Intn(25))
					var op Op
					switch rng.Intn(4) {
					case 0:
						op = Delete("r", a, b)
					case 1:
						op = Insert("s", b, a)
					case 2:
						op = Delete("s", b, a)
					default:
						op = Insert("r", a, b)
					}
					ops = append(ops, op)
				}
				if _, err := d.Exec(ops...); err != nil {
					errs <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
				rec[g].record(ops)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// mustEqualDB asserts b has exactly a's relations and views (rows,
// values, and §5 multiplicity counters).
func mustEqualDB(t *testing.T, label string, a, b *DB) {
	t.Helper()
	for _, rel := range a.Relations() {
		ra, err := a.Rows(rel)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Rows(rel)
		if err != nil {
			t.Fatalf("%s: relation %s: %v", label, rel, err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("%s: relation %s: %d vs %d rows", label, rel, len(ra), len(rb))
		}
		for i := range ra {
			for j := range ra[i] {
				if ra[i][j] != rb[i][j] {
					t.Fatalf("%s: relation %s row %d: %v vs %v", label, rel, i, ra[i], rb[i])
				}
			}
		}
	}
	for _, view := range a.Views() {
		va, err := a.View(view)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.View(view)
		if err != nil {
			t.Fatalf("%s: view %s: %v", label, view, err)
		}
		if len(va) != len(vb) {
			t.Fatalf("%s: view %s: %d vs %d rows", label, view, len(va), len(vb))
		}
		for i := range va {
			if va[i].Count != vb[i].Count {
				t.Fatalf("%s: view %s row %d count: %d vs %d", label, view, i, va[i].Count, vb[i].Count)
			}
			for j := range va[i].Values {
				if va[i].Values[j] != vb[i].Values[j] {
					t.Fatalf("%s: view %s row %d: %v vs %v", label, view, i, va[i], vb[i])
				}
			}
		}
	}
}

func TestReplicationFollowerOracleWithFailover(t *testing.T) {
	dir := t.TempDir()
	open := func() *DB {
		d, err := OpenDurable(dir,
			WithSegmentSize(2048),
			WithGroupCommit(16, time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	leader := open()
	replTestDDL(t, leader)

	srv, err := leader.ReplicationServer()
	if err != nil {
		t.Fatal(err)
	}
	srv.Poll = 200 * time.Microsecond
	srv.Heartbeat = 5 * time.Millisecond

	st := &swapTransport{}
	st.set(repl.LocalTransport{S: srv}, false)
	follower, err := openFollowerTransport(st, "f1")
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	// The in-memory oracle executes the same DDL and, at the end, each
	// writer's committed transactions in program order.
	oracle := Open()
	replTestDDL(t, oracle)
	const writers = 4
	rec := make([]*oracleOps, writers)
	for i := range rec {
		rec[i] = &oracleOps{}
	}

	// Phase 1: concurrent group-committed workload; follower streams it.
	runWriters(t, leader, writers, 40, 1, rec)
	waitReplicated(t, follower, srv.LeaderLSN())

	// Mid-stream DDL rides the same stream as transactions.
	if err := leader.CreateView("vlate", ViewSpec{From: []string{"s"}, Where: "C < 180"}); err != nil {
		t.Fatal(err)
	}
	if err := oracle.CreateView("vlate", ViewSpec{From: []string{"s"}, Where: "C < 180"}); err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, follower, srv.LeaderLSN())

	// Phase 2: kill the leader mid-stream. The transport goes dark (a
	// reconnect would be refused), then the fault hook aborts the live
	// stream at its next frame boundary.
	st.set(nil, true)
	var once sync.Once
	repl.SetStreamWriteHook(func(id string) error {
		var injected error
		once.Do(func() { injected = errors.New("injected leader crash") })
		return injected
	})
	defer repl.SetStreamWriteHook(nil)
	deadline := time.Now().Add(15 * time.Second)
	for {
		stats := srv.Status()
		if len(stats) == 1 && stats[0].Streams == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream did not drop after fault injection: %+v", stats)
		}
		time.Sleep(time.Millisecond)
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	repl.SetStreamWriteHook(nil)

	// Restart the leader, commit more while the follower is cut off,
	// and checkpoint so the WAL records the follower still needs are
	// reclaimed — resuming the stream must now be answered with an
	// explicit gap, forcing a snapshot re-sync.
	leader = open()
	defer leader.Close()
	runWriters(t, leader, writers, 40, 2, rec)
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv2, err := leader.ReplicationServer()
	if err != nil {
		t.Fatal(err)
	}
	srv2.Poll = 200 * time.Microsecond
	srv2.Heartbeat = 5 * time.Millisecond
	st.set(repl.LocalTransport{S: srv2}, false)
	waitReplicated(t, follower, srv2.LeaderLSN())
	if fst, _ := follower.FollowerStatus(); fst.Resyncs == 0 {
		t.Fatalf("expected a gap-forced re-sync after checkpoint reclaimed the WAL; status %+v", fst)
	}

	// Phase 3: post-re-sync liveness — more streamed traffic applies
	// through the maintenance pipeline, not another snapshot.
	preBoot, _ := follower.FollowerStatus()
	runWriters(t, leader, writers, 20, 3, rec)
	waitReplicated(t, follower, srv2.LeaderLSN())
	if fst, _ := follower.FollowerStatus(); fst.Resyncs != preBoot.Resyncs {
		t.Fatalf("post-re-sync traffic should stream, not re-bootstrap (resyncs %d -> %d; status %+v)",
			preBoot.Resyncs, fst.Resyncs, fst)
	}

	// Oracle replay: writer-by-writer (disjoint key ranges commute).
	for _, r := range rec {
		for _, ops := range r.txs {
			if _, err := oracle.Exec(ops...); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Zero lost, zero duplicated, zero reordered: leader == oracle, and
	// the follower matches both (contents and multiplicity counters).
	mustEqualDB(t, "leader vs oracle", oracle, leader)
	mustEqualDB(t, "follower vs leader", leader, follower)
	mustEqualDB(t, "follower vs oracle", oracle, follower)

	// Semantic stats: no view on either side may be left with queued
	// work, and the follower must have maintained its views from the
	// stream (bootstrap alone would leave the counters at zero).
	for _, view := range leader.Views() {
		ls, err := leader.Stats(view)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := follower.Stats(view)
		if err != nil {
			t.Fatal(err)
		}
		if ls.PendingTx != 0 || fs.PendingTx != 0 {
			t.Fatalf("view %s: pending work after convergence (leader %d, follower %d)",
				view, ls.PendingTx, fs.PendingTx)
		}
		if fs.Transactions == 0 {
			t.Fatalf("view %s: follower applied no streamed maintenance", view)
		}
	}
}

func TestFollowerRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	leader, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if err := leader.CreateRelation("r", "A"); err != nil {
		t.Fatal(err)
	}
	srv, err := leader.ReplicationServer()
	if err != nil {
		t.Fatal(err)
	}
	follower, err := openFollowerTransport(repl.LocalTransport{S: srv}, "ro")
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitReplicated(t, follower, srv.LeaderLSN())

	if _, err := follower.Exec(Insert("r", 1)); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Exec on follower: %v", err)
	}
	if err := follower.CreateRelation("x", "A"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("CreateRelation on follower: %v", err)
	}
	if err := follower.CreateView("v", ViewSpec{From: []string{"r"}}); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("CreateView on follower: %v", err)
	}
	if err := follower.DropView("v"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("DropView on follower: %v", err)
	}

	// Reads work: the replica serves the leader's catalog locally.
	if _, err := leader.Exec(Insert("r", 7)); err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, follower, srv.LeaderLSN())
	rows, err := follower.Rows("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != 7 {
		t.Fatalf("follower rows = %v, want [[7]]", rows)
	}
}
