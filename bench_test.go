package mview

// Benchmarks regenerating the quantitative claims indexed in
// DESIGN.md §4 and reported in EXPERIMENTS.md. The paper (SIGMOD
// 1986) has no machine experiments; each bench exposes the SHAPE of a
// claim — who wins, by what factor, where the crossover falls.
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mview/internal/db"
	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/irrelevance"
	"mview/internal/obs"
	"mview/internal/pred"
	"mview/internal/relation"
	"mview/internal/repl"
	"mview/internal/satgraph"
	"mview/internal/schema"
	"mview/internal/tuple"
	"mview/internal/workload"
)

// ---------- shared helpers ----------

func benchDB(b *testing.B) *schema.Database {
	b.Helper()
	db, err := schema.NewDatabase(
		&schema.RelScheme{Name: "R", Scheme: schema.MustScheme("A", "B")},
		&schema.RelScheme{Name: "S", Scheme: schema.MustScheme("B", "C")},
	)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func mustBind(b *testing.B, v expr.View, db *schema.Database) *expr.Bound {
	b.Helper()
	bound, err := expr.Bind(v, db)
	if err != nil {
		b.Fatal(err)
	}
	return bound
}

// randomConj builds a satisfiable-ish random conjunction over nVars
// variables with ~2·nVars atoms (the O(n³) sweep input).
func randomConj(rng *rand.Rand, nVars int) pred.Conjunction {
	vars := make([]pred.Var, nVars)
	for i := range vars {
		vars[i] = pred.Var(fmt.Sprintf("X%d", i))
	}
	ops := []pred.Op{pred.OpEQ, pred.OpLT, pred.OpLE, pred.OpGT, pred.OpGE}
	atoms := make([]pred.Atom, 2*nVars)
	for i := range atoms {
		x := vars[rng.Intn(nVars)]
		op := ops[rng.Intn(len(ops))]
		if rng.Intn(3) == 0 {
			atoms[i] = pred.VarConst(x, op, int64(rng.Intn(200)-100))
		} else {
			atoms[i] = pred.VarVar(x, op, vars[rng.Intn(nVars)], int64(rng.Intn(200)-100))
		}
	}
	return pred.And(atoms...)
}

// ---------- C-SAT-N3: satisfiability scaling ----------

func BenchmarkSatFloyd(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			conj := randomConj(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := satgraph.SatisfiableConjunction(conj, satgraph.MethodFloyd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSatBellmanFord(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			conj := randomConj(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := satgraph.SatisfiableConjunction(conj, satgraph.MethodBellmanFord); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSatDNF(b *testing.B) {
	for _, m := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("disjuncts=%d", m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			conjs := make([]pred.Conjunction, m)
			for i := range conjs {
				conjs[i] = randomConj(rng, 16)
			}
			d := pred.Or(conjs...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := satgraph.SatisfiableDNF(d, satgraph.MethodFloyd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- C-ALG41: invariant-graph reuse ----------

func alg41Checker(b *testing.B, nInv int) (*irrelevance.Checker, []tuple.Tuple) {
	b.Helper()
	db := benchDB(b)
	// Condition: invariant chain over S.C-derived pseudo-variables is
	// not expressible with two relations, so scale the invariant part
	// with constant bounds on S.C and a join atom on B.
	atoms := []pred.Atom{pred.VarVar("R.B", pred.OpEQ, "S.C", 0)}
	for i := 0; i < nInv; i++ {
		atoms = append(atoms, pred.VarConst("S.C", pred.OpGE, int64(-1000-i)))
	}
	atoms = append(atoms, pred.VarConst("R.A", pred.OpLT, 1000))
	bound := mustBind(b, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.Or(pred.And(atoms...)),
	}, db)
	c, err := irrelevance.NewChecker(bound, 0, irrelevance.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := workload.New(3)
	ts, err := g.Tuples(2, 4096, 4000)
	if err != nil {
		b.Fatal(err)
	}
	return c, ts
}

func BenchmarkFilterReuse(b *testing.B) {
	for _, nInv := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("invariants=%d", nInv), func(b *testing.B) {
			c, ts := alg41Checker(b, nInv)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Relevant(ts[i%len(ts)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFilterRebuild(b *testing.B) {
	for _, nInv := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("invariants=%d", nInv), func(b *testing.B) {
			c, ts := alg41Checker(b, nInv)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.RelevantNaive(ts[i%len(ts)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- C-SEL: select view, differential vs recompute ----------

func selectViewFixture(b *testing.B, baseN, deltaN int) (*expr.Bound, []*relation.Relation, []delta.Update, []*relation.Relation) {
	b.Helper()
	db := benchDB(b)
	bound := mustBind(b, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}},
		Where:    pred.MustParse("A < 500000"),
		Project:  []schema.Attribute{"B"},
	}, db)
	g := workload.New(7)
	base, err := g.Relation(schema.MustScheme("A", "B"), baseN, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	ins, err := g.FreshTuples(base, deltaN, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	insRel, err := relation.FromTuples(schema.MustScheme("A", "B"), ins...)
	if err != nil {
		b.Fatal(err)
	}
	ups := []delta.Update{{Rel: "R", Inserts: insRel}}
	post := base.Clone()
	if err := ups[0].Apply(post); err != nil {
		b.Fatal(err)
	}
	return bound, []*relation.Relation{base}, ups, []*relation.Relation{post}
}

func BenchmarkSelectView(b *testing.B) {
	const baseN = 100_000
	for _, deltaN := range []int{1, 10, 100, 1_000, 10_000} {
		bound, pre, ups, post := selectViewFixture(b, baseN, deltaN)
		m, err := diffeval.NewMaintainer(bound, diffeval.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("delta=%d/differential", deltaN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.ComputeDelta(pre, ups); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("delta=%d/recompute", deltaN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Materialize(bound, post, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- C-PROJ: counted project maintenance under deletes ----------

func BenchmarkProjectView(b *testing.B) {
	for _, dup := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("dupfactor=%d", dup), func(b *testing.B) {
			db := benchDB(b)
			bound := mustBind(b, expr.View{
				Name:     "v",
				Operands: []expr.Operand{{Rel: "R"}},
				Project:  []schema.Attribute{"B"},
			}, db)
			// B domain shrunk so each B value has ~dup derivations.
			g := workload.New(11)
			base := relation.New(schema.MustScheme("A", "B"))
			const n = 50_000
			for i := 0; i < n; i++ {
				_ = base.Insert(tuple.New(int64(i), int64(i%(n/dup))))
			}
			dels := g.Sample(base, 500)
			delRel, err := relation.FromTuples(schema.MustScheme("A", "B"), dels...)
			if err != nil {
				b.Fatal(err)
			}
			ups := []delta.Update{{Rel: "R", Deletes: delRel}}
			m, err := diffeval.NewMaintainer(bound, diffeval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			pre := []*relation.Relation{base}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.ComputeDelta(pre, ups); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- C-JOIN / C-MEMO / C-ORDER / C-IDX: join views ----------

// joinFixture builds a p-way chain join with k modified relations,
// returning the bound view, pre-state, updates, post-state, and an
// index provider over the pre-state.
type joinFixture struct {
	bound *expr.Bound
	pre   []*relation.Relation
	ups   []delta.Update
	post  []*relation.Relation
	prov  benchProvider
}

type benchProvider map[string]map[int]*relation.Index

func (p benchProvider) Index(rel string, pos int) *relation.Index { return p[rel][pos] }

func makeJoinFixture(b *testing.B, p, k, rows, deltaN int) joinFixture {
	b.Helper()
	mod := make([]int, k)
	for i := range mod {
		mod[i] = i
	}
	return makeJoinFixtureMod(b, p, mod, rows, deltaN)
}

// makeJoinFixtureMod builds a chain fixture with net inserts on the
// listed relation indexes.
func makeJoinFixtureMod(b *testing.B, p int, modify []int, rows, deltaN int) joinFixture {
	b.Helper()
	g := workload.New(int64(100*p + len(modify)))
	ch, err := g.Chain(p, rows, int64(rows))
	if err != nil {
		b.Fatal(err)
	}
	bound, err := expr.Bind(ch.View, ch.DB)
	if err != nil {
		b.Fatal(err)
	}
	var ups []delta.Update
	post := make([]*relation.Relation, len(ch.Insts))
	for i := range post {
		post[i] = ch.Insts[i].Clone()
	}
	for _, i := range modify {
		ins, err := g.FreshTuples(ch.Insts[i], deltaN, int64(rows))
		if err != nil {
			b.Fatal(err)
		}
		insRel, err := relation.FromTuples(ch.Insts[i].Scheme(), ins...)
		if err != nil {
			b.Fatal(err)
		}
		u := delta.Update{Rel: ch.Names[i], Inserts: insRel}
		ups = append(ups, u)
		if err := u.Apply(post[i]); err != nil {
			b.Fatal(err)
		}
	}
	prov := make(benchProvider)
	for i, name := range ch.Names {
		prov[name] = make(map[int]*relation.Index)
		for pos := 0; pos < 2; pos++ {
			ix, err := relation.BuildIndex(ch.Insts[i], pos)
			if err != nil {
				b.Fatal(err)
			}
			prov[name][pos] = ix
		}
	}
	return joinFixture{bound: bound, pre: ch.Insts, ups: ups, post: post, prov: prov}
}

func benchStrategies(b *testing.B, fx joinFixture, strategies map[string]diffeval.Strategy, recompute bool) {
	b.Helper()
	for name, strat := range strategies {
		m, err := diffeval.NewMaintainer(fx.bound, diffeval.Options{Strategy: strat})
		if err != nil {
			b.Fatal(err)
		}
		indexed := strat == diffeval.StrategyIndexedDelta
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if indexed {
					_, err = m.ComputeDeltaWith(fx.pre, fx.ups, fx.prov)
				} else {
					_, err = m.ComputeDelta(fx.pre, fx.ups)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if recompute {
		b.Run("recompute", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Materialize(fx.bound, fx.post, eval.Options{Greedy: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinView sweeps delta size for a 2-way join: differential
// (indexed and not) vs full re-evaluation — the headline §5.3 claim.
func BenchmarkJoinView(b *testing.B) {
	for _, deltaN := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("delta=%d", deltaN), func(b *testing.B) {
			fx := makeJoinFixture(b, 2, 1, 20_000, deltaN)
			benchStrategies(b, fx, map[string]diffeval.Strategy{
				"indexed":     diffeval.StrategyIndexedDelta,
				"prefixshare": diffeval.StrategyPrefixShare,
			}, true)
		})
	}
}

// BenchmarkRowsByK shows the 2^k − 1 row growth as more relations are
// modified in one transaction (§5.3's truth table).
func BenchmarkRowsByK(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("p=4/k=%d", k), func(b *testing.B) {
			fx := makeJoinFixture(b, 4, k, 5_000, 50)
			benchStrategies(b, fx, map[string]diffeval.Strategy{
				"indexed": diffeval.StrategyIndexedDelta,
			}, false)
		})
	}
}

// BenchmarkRowMemo quantifies the §5.3/§5.4 observation about re-using
// partial subexpressions across truth-table rows: prefix sharing vs
// independent row evaluation, p = k = 4 (15 rows).
func BenchmarkRowMemo(b *testing.B) {
	fx := makeJoinFixture(b, 4, 4, 5_000, 50)
	benchStrategies(b, fx, map[string]diffeval.Strategy{
		"prefixshare": diffeval.StrategyPrefixShare,
		"rowbyrow":    diffeval.StrategyRowByRow,
	}, false)
}

// BenchmarkDeltaJoinOrder quantifies the §5.3 join-order observation:
// fixed as-written order vs greedy smallest-first per row. The delta
// lands on the LAST chain relation, so the as-written order starts
// each row from a full base relation while greedy starts from the
// delta.
func BenchmarkDeltaJoinOrder(b *testing.B) {
	fx := makeJoinFixtureMod(b, 3, []int{2}, 20_000, 10)
	benchStrategies(b, fx, map[string]diffeval.Strategy{
		"aswritten": diffeval.StrategyRowByRow,
		"greedy":    diffeval.StrategyRowByRowGreedy,
	}, false)
}

// ---------- C-FILT: irrelevance-ratio sweep ----------

func BenchmarkMaintainFilter(b *testing.B) {
	db := benchDB(b)
	bound := mustBind(b, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("R.B = S.B && R.A < 1000"),
	}, db)
	g := workload.New(23)
	base, err := g.Relation(schema.MustScheme("A", "B"), 20_000, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	s, err := g.Relation(schema.MustScheme("B", "C"), 20_000, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	for _, relevantPct := range []int{0, 25, 50, 75, 100} {
		stream := g.ThresholdStream(2, 500, 1000, 10_000, float64(relevantPct)/100)
		insRel := relation.New(schema.MustScheme("A", "B"))
		for _, t := range stream {
			if !base.Has(t) {
				_ = insRel.Insert(t)
			}
		}
		ups := []delta.Update{{Rel: "R", Inserts: insRel}}
		pre := []*relation.Relation{base, s}
		for _, filter := range []bool{true, false} {
			m, err := diffeval.NewMaintainer(bound, diffeval.Options{Filter: filter, Strategy: diffeval.StrategyPrefixShare})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("relevant=%d%%/filter=%v", relevantPct, filter), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := m.ComputeDelta(pre, ups); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------- C-SPJ: realistic SPJ view end-to-end ----------

func BenchmarkSPJMaintain(b *testing.B) {
	g := workload.New(31)
	w, err := g.Orders(20_000, 2, 2_000, 4, 500, 50)
	if err != nil {
		b.Fatal(err)
	}
	bound, err := expr.Bind(expr.View{
		Name:     "hot",
		Operands: []expr.Operand{{Rel: "orders"}, {Rel: "items"}},
		Where:    pred.MustParse("orders.OID = items.OID && orders.REGION = 2 && items.QTY >= 40"),
		Project:  []schema.Attribute{"orders.OID", "orders.CUST", "items.SKU", "items.QTY"},
	}, w.DB)
	if err != nil {
		b.Fatal(err)
	}
	// One incoming order with 3 lines.
	oid := int64(1_000_000)
	insO := relation.MustFromTuples(w.Orders.Scheme(), tuple.New(oid, 7, 2))
	insI := relation.MustFromTuples(w.Items.Scheme(),
		tuple.New(oid, 1, 45), tuple.New(oid, 2, 10), tuple.New(oid, 3, 50))
	ups := []delta.Update{
		{Rel: "orders", Inserts: insO},
		{Rel: "items", Inserts: insI},
	}
	pre := []*relation.Relation{w.Orders, w.Items}
	post := []*relation.Relation{w.Orders.Clone(), w.Items.Clone()}
	_ = ups[0].Apply(post[0])
	_ = ups[1].Apply(post[1])
	prov := make(benchProvider)
	oix, _ := relation.BuildIndex(w.Orders, 0)
	iix, _ := relation.BuildIndex(w.Items, 0)
	prov["orders"] = map[int]*relation.Index{0: oix}
	prov["items"] = map[int]*relation.Index{0: iix}

	m, err := diffeval.NewMaintainer(bound, diffeval.Options{Filter: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("differential-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ComputeDeltaWith(pre, ups, prov); err != nil {
				b.Fatal(err)
			}
		}
	})
	mp, err := diffeval.NewMaintainer(bound, diffeval.Options{Strategy: diffeval.StrategyPrefixShare})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("differential-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mp.ComputeDelta(pre, ups); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Materialize(bound, post, eval.Options{Greedy: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- C-T42: multi-tuple irrelevance ----------

func BenchmarkMultiTuple(b *testing.B) {
	db := benchDB(b)
	bound := mustBind(b, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("R.B = S.B && R.A < 100 && S.C > 50"),
	}, db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := irrelevance.SetRelevant(bound, map[int]tuple.Tuple{
			0: tuple.New(int64(i%200), int64(i%50)),
			1: tuple.New(int64(i%50), int64(i%120)),
		}, irrelevance.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- C-NE: ≠ expansion cost ----------

func BenchmarkNeqExpansion(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("neq=%d", k), func(b *testing.B) {
			atoms := []pred.Atom{pred.VarConst("X0", pred.OpLT, 100)}
			for i := 0; i < k; i++ {
				atoms = append(atoms, pred.VarConst(pred.Var(fmt.Sprintf("X%d", i)), pred.OpNE, int64(i)))
			}
			c := pred.And(atoms...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs, err := pred.ExpandNE(c, 1024)
				if err != nil {
					b.Fatal(err)
				}
				for _, conj := range cs {
					if _, err := satgraph.SatisfiableConjunction(conj, satgraph.MethodFloyd); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---------- durability overhead ----------

// BenchmarkDurableExec measures the commit-log cost per transaction:
// in-memory vs logged (no fsync) vs logged+fsynced.
func BenchmarkDurableExec(b *testing.B) {
	type mode struct {
		name    string
		durable bool
		sync    bool
	}
	for _, m := range []mode{
		{"memory", false, false},
		{"logged", true, false},
		{"logged+fsync", true, true},
	} {
		b.Run(m.name, func(b *testing.B) {
			var d *DB
			if m.durable {
				var err error
				d, err = OpenDurable(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				d.SetLogSync(m.sync)
			} else {
				d = Open()
			}
			if err := d.CreateRelation("r", "A", "B"); err != nil {
				b.Fatal(err)
			}
			if err := d.CreateView("v", ViewSpec{From: []string{"r"}, Where: "A < 1000000"}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Exec(Insert("r", int64(i), int64(i%7))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpoint measures what a checkpoint costs over a large
// sharded base when one commit dirtied one shard: "full-rewrite"
// forces every shard dirty before each checkpoint (the cost the old
// monolithic layout paid every time — and paid under the commit
// fence), "incremental" lets the dirty-shard tracking rewrite only the
// touched shard and re-reference the rest. fence-ns/op is how long the
// commit fence was actually held (capture + manifest swap); the rest
// of the checkpoint runs with commits flowing.
func BenchmarkCheckpoint(b *testing.B) {
	const rows = 100_000
	for _, m := range []struct {
		name string
		full bool
	}{
		{"full-rewrite", true},
		{"incremental", false},
	} {
		b.Run(m.name, func(b *testing.B) {
			d, err := OpenDurable(b.TempDir(), WithShards(8))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			if err := d.CreateRelation("r", "A", "B"); err != nil {
				b.Fatal(err)
			}
			if err := d.CreateView("v", ViewSpec{From: []string{"r"}, Where: "B < 3"}); err != nil {
				b.Fatal(err)
			}
			const batch = 1000
			for lo := int64(0); lo < rows; lo += batch {
				ops := make([]Op, batch)
				for j := range ops {
					i := lo + int64(j)
					ops[j] = Insert("r", i, i%7)
				}
				if _, err := d.Exec(ops...); err != nil {
					b.Fatal(err)
				}
			}
			// A baseline checkpoint so the incremental variant has a
			// previous manifest to reuse segments from.
			if err := d.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var fenceNS, bytes, segs int64
			for i := 0; i < b.N; i++ {
				if _, err := d.Exec(Insert("r", int64(rows+i), 1)); err != nil {
					b.Fatal(err)
				}
				if m.full {
					d.engine().MarkAllCheckpointDirty()
				}
				if err := d.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				st := d.LastCheckpointStats()
				fenceNS += st.FenceHold.Nanoseconds()
				bytes += st.BytesWritten
				segs += int64(st.SegmentsWritten)
			}
			b.ReportMetric(float64(fenceNS)/float64(b.N), "fence-ns/op")
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
			b.ReportMetric(float64(segs)/float64(b.N), "segs/op")
		})
	}
}

// ---------- observability overhead ----------

// BenchmarkObsOverhead measures what metrics and tracing cost on the
// commit hot path: the same single-insert transaction against an
// immediate differential view, uninstrumented vs with a live registry
// vs registry plus each tracer the daemon can mount — a no-op tracer,
// a quiet slow-logger (threshold never met, pooled spans), and a live
// flight recorder capturing every commit's span tree. The
// uninstrumented path must stay within a few percent of the seed (one
// atomic pointer load per commit).
func BenchmarkObsOverhead(b *testing.B) {
	for _, m := range []struct {
		name string
		reg  bool
		tr   func() obs.Tracer
	}{
		{"off", false, nil},
		{"registry", true, nil},
		{"registry+tracer", true, func() obs.Tracer { return obs.NopTracer{} }},
		{"registry+slowlog", true, func() obs.Tracer {
			return &obs.SlowLogger{Threshold: time.Hour, Logf: func(string, ...any) {}}
		}},
		{"registry+recorder", true, func() obs.Tracer { return obs.NewFlightRecorder(16, 0) }},
	} {
		b.Run(m.name, func(b *testing.B) {
			d := Open()
			if err := d.CreateRelation("r", "A", "B"); err != nil {
				b.Fatal(err)
			}
			if err := d.CreateView("v", ViewSpec{From: []string{"r"}, Where: "A < 1000000"}, WithFilter()); err != nil {
				b.Fatal(err)
			}
			if m.reg {
				var tr obs.Tracer
				if m.tr != nil {
					tr = m.tr()
				}
				d.Instrument(obs.NewRegistry(), tr)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Exec(Insert("r", int64(i), int64(i%7))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- C-SNAP: deferred snapshot refresh amortization ----------

func BenchmarkSnapshotRefresh(b *testing.B) {
	// A fixed workload of 100 small transactions over R(A,B), with a
	// select view A < 500. Immediate maintains per transaction;
	// deferred composes and refreshes once.
	db := benchDB(b)
	bound := mustBind(b, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}},
		Where:    pred.MustParse("A < 500"),
	}, db)
	g := workload.New(41)
	base, err := g.Relation(schema.MustScheme("A", "B"), 50_000, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	const nTx = 100
	m, err := diffeval.NewMaintainer(bound, diffeval.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate the per-transaction updates.
	txUps := make([]delta.Update, nTx)
	state := base.Clone()
	for i := range txUps {
		ins, err := g.FreshTuples(state, 5, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		insRel, _ := relation.FromTuples(state.Scheme(), ins...)
		dels := g.Sample(state, 3)
		delRel, _ := relation.FromTuples(state.Scheme(), dels...)
		txUps[i] = delta.Update{Rel: "R", Inserts: insRel, Deletes: delRel}
		if err := txUps[i].Apply(state); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("immediate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur := base.Clone()
			for _, u := range txUps {
				if _, err := m.ComputeDelta([]*relation.Relation{cur}, []delta.Update{u}); err != nil {
					b.Fatal(err)
				}
				if err := u.Apply(cur); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("deferred", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp := txUps[0]
			for _, u := range txUps[1:] {
				var err error
				comp, err = delta.Compose(comp, u)
				if err != nil {
					b.Fatal(err)
				}
			}
			if _, err := m.ComputeDelta([]*relation.Relation{base}, []delta.Update{comp}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- C-PAR: parallel view maintenance inside one commit ----------

// sleepTracer adds a fixed blocking latency to every per-view delta
// computation (the diffeval.compute span), standing in for per-view
// work that waits rather than burns CPU — a remote trace sink, an
// audit write, future IO. It lets the worker-pool benchmark show
// overlap even on a single-core host, where CPU-bound maintenance
// cannot speed up.
type sleepTracer struct{ d time.Duration }

func (s sleepTracer) Start(name string, kv ...obs.KV) obs.Span {
	if name == "diffeval.compute" {
		time.Sleep(s.d)
	}
	return obs.NopTracer{}.Start(name)
}

func (s sleepTracer) Event(string, ...obs.KV) {}

// BenchmarkParallelCommit commits one transaction touching 8
// independent join views (vi = Ri ⋈ S) with the phase-1 fan-out on 1,
// 4, and GOMAXPROCS workers. The cpu variant is pure computation; the
// overlap variant adds 200µs of blocking latency per view delta via
// the tracer, the regime the pool is for.
//
// On a GOMAXPROCS=1 host the cpu rows are skipped rather than
// reported: with a single P the runtime cannot execute workers
// concurrently (and the pool deliberately inlines at one worker — see
// forEachParallel), so a "no speedup" row there would measure the
// scheduler, not the fan-out.
func BenchmarkParallelCommit(b *testing.B) {
	const nviews = 8
	workerRows := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		workerRows = append(workerRows, p)
	}
	for _, variant := range []struct {
		name string
		lat  time.Duration
	}{
		{"cpu", 0},
		{"overlap200us", 200 * time.Microsecond},
	} {
		for _, workers := range workerRows {
			b.Run(fmt.Sprintf("%s/workers=%d", variant.name, workers), func(b *testing.B) {
				if variant.lat == 0 && workers > 1 && runtime.GOMAXPROCS(0) == 1 {
					b.Skipf("cpu variant needs >1 P for %d workers; GOMAXPROCS=1 runs them sequentially", workers)
				}
				e := db.New(db.WithMaintWorkers(workers))
				for i := 0; i < nviews; i++ {
					if err := e.CreateRelation(fmt.Sprintf("R%d", i), "A", "B"); err != nil {
						b.Fatal(err)
					}
				}
				if err := e.CreateRelation("S", "B", "C"); err != nil {
					b.Fatal(err)
				}
				var seed delta.Tx
				for i := 0; i < nviews; i++ {
					for j := 0; j < 1000; j++ {
						seed.Insert(fmt.Sprintf("R%d", i), tuple.New(int64(j), int64(j%50)))
					}
				}
				for j := 0; j < 50; j++ {
					seed.Insert("S", tuple.New(int64(j), int64(100+j)))
				}
				if _, err := e.Execute(&seed); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < nviews; i++ {
					v, err := expr.NaturalJoin(fmt.Sprintf("v%d", i), e.Scheme(),
						fmt.Sprintf("R%d", i), "S")
					if err != nil {
						b.Fatal(err)
					}
					if err := e.CreateView(v, db.ViewConfig{}); err != nil {
						b.Fatal(err)
					}
				}
				if variant.lat > 0 {
					e.SetObs(nil, sleepTracer{d: variant.lat})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var tx delta.Tx
					for r := 0; r < nviews; r++ {
						rel := fmt.Sprintf("R%d", r)
						if i%2 == 0 {
							tx.Insert(rel, tuple.New(9999, 1))
						} else {
							tx.Delete(rel, tuple.New(9999, 1))
						}
					}
					if _, err := e.Execute(&tx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------- C-SNAP: lock-free snapshot reads ----------

// BenchmarkSnapshotReads measures view read throughput under 4
// concurrent writers. "snapshot" is the production path — View hands
// out the current immutable copy-on-write snapshot without taking the
// engine lock. "locked_clone" is the pre-snapshot discipline kept for
// comparison: acquire the lock, clone the materialization, release.
func BenchmarkSnapshotReads(b *testing.B) {
	for _, mode := range []string{"snapshot", "locked_clone"} {
		b.Run(mode, func(b *testing.B) {
			e := db.New()
			if err := e.CreateRelation("R", "A", "B"); err != nil {
				b.Fatal(err)
			}
			var seed delta.Tx
			for i := 0; i < 2000; i++ {
				seed.Insert("R", tuple.New(int64(i), int64(i%50)))
			}
			if _, err := e.Execute(&seed); err != nil {
				b.Fatal(err)
			}
			v := expr.View{Name: "v", Operands: []expr.Operand{{Rel: "R"}},
				Where: pred.MustParse("A < 1000")}
			if err := e.CreateView(v, db.ViewConfig{}); err != nil {
				b.Fatal(err)
			}

			// 4 writers keep committing view-relevant changes (each
			// insert is later deleted, so the view stays ~1000 rows).
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int64) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						var tx delta.Tx
						n := int64((i / 2) % 500)
						if i%2 == 0 {
							tx.Insert("R", tuple.New(n, id))
						} else {
							tx.Delete("R", tuple.New(n, id))
						}
						if _, err := e.Execute(&tx); err != nil {
							b.Error(err)
							return
						}
					}
				}(int64(w))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					var c *relation.Counted
					var err error
					if mode == "snapshot" {
						c, err = e.View("v")
					} else {
						c, err = e.ViewCloneLocked("v")
					}
					if err != nil {
						b.Error(err)
						return
					}
					if c.Len() == 0 {
						b.Error("empty view")
						return
					}
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// ---------- C-GROUP: group commit throughput ----------

// snapshotCounter reads one counter series from a registry snapshot.
func snapshotCounter(reg *obs.Registry, name string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// BenchmarkGroupCommit measures durable commit throughput with the
// fsync discipline that motivates group commit: every acknowledged
// transaction is on disk (SetLogSync true). Serial mode pays one fsync
// per transaction; group mode coalesces concurrent writers into one
// batched append + fsync, one composed maintenance pass, and one
// snapshot publish per group. The fsyncs/op metric (from
// mview_wal_fsyncs_total) drops below 1 exactly when groups form.
func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 4, 16} {
		for _, mode := range []string{"serial", "group"} {
			b.Run(fmt.Sprintf("writers=%d/%s", writers, mode), func(b *testing.B) {
				d, err := OpenDurable(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				d.SetLogSync(true)
				reg := obs.NewRegistry()
				d.Instrument(reg, nil)
				if err := d.CreateRelation("r", "A", "B"); err != nil {
					b.Fatal(err)
				}
				if err := d.CreateView("v", ViewSpec{From: []string{"r"}, Where: "A < 1000000000"}, WithFilter()); err != nil {
					b.Fatal(err)
				}
				if mode == "group" {
					d.EnableGroupCommit(0, 2*time.Millisecond)
				}
				fsync0 := snapshotCounter(reg, "mview_wal_fsyncs_total")
				var next atomic.Int64
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							if _, err := d.Exec(Insert("r", i, i%7)); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				fsyncs := snapshotCounter(reg, "mview_wal_fsyncs_total") - fsync0
				b.ReportMetric(fsyncs/float64(b.N), "fsyncs/op")
				for _, s := range reg.Snapshot() {
					if s.Name == "mview_group_wait_seconds" && s.Count > 0 {
						b.ReportMetric(s.Sum/float64(s.Count)*1e6, "waitus/group")
						b.ReportMetric(float64(s.Count), "groups")
					}
				}
			})
		}
	}
}

// ---------- C-SHARD: hash-sharded base relations ----------

// BenchmarkShardedCommit measures commit latency against a fleet of
// range-partitioned selection views as the base relation's hash shard
// count grows. Each commit writes a 256-tuple delta through the public
// API (Open(WithShards(n))).
//
// "hot" concentrates the delta in one view's key range: with shards,
// the §4 checker prunes every (shard, view) task whose key bounds
// cannot satisfy the view's condition, so the 7 irrelevant views cost
// n range probes instead of 8×|δ| tuple evaluations — throughput
// improves with any shard count and prunes/op goes positive. "spread"
// scatters the delta across every view's range so nothing can be
// pruned; it bounds the fan-out overhead (tasks/op grows with n, and
// on a single-P host the extra scheduling is pure cost — multi-core
// hosts recover it as shard-parallel speedup).
func BenchmarkShardedCommit(b *testing.B) {
	const (
		nviews    = 8
		span      = 1 << 20 // keys per view's range
		deltaRows = 256
	)
	for _, variant := range []string{"hot", "spread"} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", variant, shards), func(b *testing.B) {
				var opts []Option
				if shards > 1 {
					opts = append(opts, WithShards(shards))
				}
				d := Open(opts...)
				if err := d.CreateRelation("r", "A", "B"); err != nil {
					b.Fatal(err)
				}
				for v := 0; v < nviews; v++ {
					spec := ViewSpec{From: []string{"r"},
						Where: fmt.Sprintf("A >= %d && A < %d", v*span, (v+1)*span)}
					if err := d.CreateView(fmt.Sprintf("v%d", v), spec); err != nil {
						b.Fatal(err)
					}
				}
				rng := rand.New(rand.NewSource(7))
				var seed []Op
				for i := 0; i < 4096; i++ {
					seed = append(seed, Insert("r", int64(rng.Intn(nviews*span)), int64(i%97)))
				}
				if _, err := d.Exec(seed...); err != nil {
					b.Fatal(err)
				}
				// The per-commit delta: B=1e9+j keeps it disjoint from the
				// seed, and each insert batch is deleted by the next
				// iteration so the relation stays at its seeded size.
				keys := make([]int64, deltaRows)
				for j := range keys {
					if variant == "hot" {
						keys[j] = int64(j * 4093 % span)
					} else {
						keys[j] = int64((j*4093*nviews + j) % (nviews * span))
					}
				}
				batch := func(del bool) []Op {
					ops := make([]Op, deltaRows)
					for j, k := range keys {
						if del {
							ops[j] = Delete("r", k, int64(1e9)+int64(j))
						} else {
							ops[j] = Insert("r", k, int64(1e9)+int64(j))
						}
					}
					return ops
				}
				shardStats := func() (tasks, pruned int) {
					for v := 0; v < nviews; v++ {
						s, err := d.Stats(fmt.Sprintf("v%d", v))
						if err != nil {
							b.Fatal(err)
						}
						tasks += s.ShardTasks
						pruned += s.ShardsPruned
					}
					return tasks, pruned
				}
				tasks0, pruned0 := shardStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := d.Exec(batch(i%2 == 1)...); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				tasks, pruned := shardStats()
				b.ReportMetric(float64(tasks-tasks0)/float64(b.N), "tasks/op")
				b.ReportMetric(float64(pruned-pruned0)/float64(b.N), "pruned/op")
			})
		}
	}
}

// ---------- C-FLAT: flat arena tuple storage + compiled predicates ----------

// BenchmarkFlatEval measures the commit-heavy eval hot path end to
// end through the public API: per-tuple §4 satisfiability checks,
// differential truth-table rows over tagged operands, §5.2 counted
// folds into the stored views, and the COW clones behind every
// snapshot publish.
//
// "select" commits 256-row deltas against 8 filtered range views over
// one base relation (every delta tuple passes through 8 compiled
// predicates and 8 irrelevance checkers); "join" commits order+item
// deltas against an orders ⋈ items view (tagged truth-table joins
// dominate). Run with -benchmem: the flat-arena + compiled-predicate
// storage layer is judged on ns/op and allocs/op here, and
// scripts/allocguard.sh pins the allocs/op budget in CI.
func BenchmarkFlatEval(b *testing.B) {
	b.Run("select", func(b *testing.B) {
		const (
			nviews = 8
			span   = 1 << 20
			rows   = 256
		)
		d := Open()
		if err := d.CreateRelation("r", "A", "B"); err != nil {
			b.Fatal(err)
		}
		for v := 0; v < nviews; v++ {
			spec := ViewSpec{From: []string{"r"},
				Where: fmt.Sprintf("A >= %d && A < %d", v*span, (v+1)*span)}
			if err := d.CreateView(fmt.Sprintf("v%d", v), spec, WithFilter()); err != nil {
				b.Fatal(err)
			}
		}
		var seed []Op
		for i := 0; i < 4096; i++ {
			seed = append(seed, Insert("r", int64(i*4093%(nviews*span)), int64(i%97)))
		}
		if _, err := d.Exec(seed...); err != nil {
			b.Fatal(err)
		}
		// Each batch scatters across every view's range; B=1e9+j keeps
		// it disjoint from the seed, and each insert batch is deleted by
		// the next iteration so the relation stays at its seeded size.
		batch := func(del bool) []Op {
			ops := make([]Op, rows)
			for j := 0; j < rows; j++ {
				k := int64((j*4093*nviews + j) % (nviews * span))
				if del {
					ops[j] = Delete("r", k, int64(1e9)+int64(j))
				} else {
					ops[j] = Insert("r", k, int64(1e9)+int64(j))
				}
			}
			return ops
		}
		ins, del := batch(false), batch(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops := ins
			if i%2 == 1 {
				ops = del
			}
			if _, err := d.Exec(ops...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("join", func(b *testing.B) {
		const (
			orders    = 4096
			perOrder  = 2
			newOrders = 64
		)
		d := Open()
		if err := d.CreateRelation("orders", "OID", "CUST", "REGION"); err != nil {
			b.Fatal(err)
		}
		if err := d.CreateRelation("items", "OID", "SKU", "QTY"); err != nil {
			b.Fatal(err)
		}
		spec := ViewSpec{
			From:   []string{"orders", "items"},
			Where:  "orders.OID = items.OID && REGION = 2 && QTY >= 40",
			Select: []string{"orders.OID", "CUST", "SKU", "QTY"},
		}
		if err := d.CreateView("hot", spec, WithFilter()); err != nil {
			b.Fatal(err)
		}
		var seed []Op
		for o := 0; o < orders; o++ {
			seed = append(seed, Insert("orders", int64(o), int64(o%500), int64(o%4)))
			for l := 0; l < perOrder; l++ {
				seed = append(seed, Insert("items", int64(o), int64(o*perOrder+l), int64((o*7+l*13)%100)))
			}
		}
		if _, err := d.Exec(seed...); err != nil {
			b.Fatal(err)
		}
		// Each batch books 64 new orders with 2 lines each (half in the
		// view's region, half the QTY lines above threshold), deleted by
		// the next iteration.
		batch := func(del bool) []Op {
			var ops []Op
			mk := func(rel string, vals ...int64) Op {
				if del {
					return Delete(rel, vals...)
				}
				return Insert(rel, vals...)
			}
			for o := 0; o < newOrders; o++ {
				oid := int64(1_000_000 + o)
				ops = append(ops, mk("orders", oid, int64(o%500), int64(o%2)*2))
				for l := 0; l < perOrder; l++ {
					ops = append(ops, mk("items", oid, oid*perOrder+int64(l), int64((o*17+l*29)%100)))
				}
			}
			return ops
		}
		ins, del := batch(false), batch(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops := ins
			if i%2 == 1 {
				ops = del
			}
			if _, err := d.Exec(ops...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- C-REPL: differential replication ----------

// benchReplWorkload drives writers concurrent committers through b.N
// transactions on the leader (the C-GROUP shape: an atomic counter
// hands out work, group commit composes whatever collides).
func benchReplWorkload(b *testing.B, d *DB, writers int) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				if _, err := d.Exec(Insert("r", i%1000, i)); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// benchReplWait blocks until the follower has applied through lsn.
func benchReplWait(b *testing.B, f *DB, lsn uint64) {
	b.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for f.follower.applied.Load() < lsn {
		if time.Now().After(deadline) {
			b.Fatalf("follower stuck at %d, want %d", f.follower.applied.Load(), lsn)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// benchReplLeader opens a durable group-commit leader with the C-REPL
// schema (a base relation and a selection view over it) and a tuned
// replication server.
func benchReplLeader(b *testing.B) (*DB, *repl.Server) {
	b.Helper()
	d, err := OpenDurable(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	if err := d.CreateRelation("r", "A", "B"); err != nil {
		b.Fatal(err)
	}
	if err := d.CreateView("v", ViewSpec{From: []string{"r"}, Where: "A < 500"}); err != nil {
		b.Fatal(err)
	}
	d.EnableGroupCommit(0, 2*time.Millisecond)
	srv, err := d.ReplicationServer()
	if err != nil {
		b.Fatal(err)
	}
	srv.Poll = 200 * time.Microsecond
	srv.Heartbeat = 5 * time.Millisecond
	return d, srv
}

// benchReplHTTP fronts a replication server with the three wire routes
// on a real TCP listener — the same handlers mviewd registers, minus
// the unrelated API surface (importing the HTTP layer here would cycle).
func benchReplHTTP(b *testing.B, srv *repl.Server) *httptest.Server {
	b.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/snapshot", func(w http.ResponseWriter, r *http.Request) {
		_, _ = srv.Snapshot(w)
	})
	mux.HandleFunc("GET /v1/replication/stream", func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		_ = srv.StreamTo(r.Context(), r.URL.Query().Get("id"), from, w)
	})
	mux.HandleFunc("POST /v1/replication/ack", func(w http.ResponseWriter, r *http.Request) {
		lsn, _ := strconv.ParseUint(r.URL.Query().Get("lsn"), 10, 64)
		srv.Ack(r.URL.Query().Get("id"), lsn)
	})
	ts := httptest.NewServer(mux)
	b.Cleanup(ts.Close)
	return ts
}

// BenchmarkReplication measures the differential replication pipeline.
//
// ship/* is end-to-end shipped-commit cost: the timer covers b.N
// leader commits (4 writers, group commit) plus the wait for one
// follower to apply everything — so ns/op bounds leader maintenance +
// wire + follower re-composed apply per transaction. "off" is the
// no-follower baseline; "local" adds an in-process follower (mock
// wire); "http" ships the same frames over a real TCP socket. The §6
// claim under test: shipping composed deltas keeps follower apply
// within ~2x of leader maintenance, because the follower replays one
// maintenance pass per commit group rather than per transaction.
func BenchmarkReplication(b *testing.B) {
	for _, transport := range []string{"off", "local", "http"} {
		b.Run("ship/"+transport, func(b *testing.B) {
			d, srv := benchReplLeader(b)
			var f *DB
			switch transport {
			case "local":
				var err error
				f, err = openFollowerTransport(repl.LocalTransport{S: srv}, "bench-local")
				if err != nil {
					b.Fatal(err)
				}
			case "http":
				ts := benchReplHTTP(b, srv)
				var err error
				f, err = OpenFollower(ts.URL, "bench-http")
				if err != nil {
					b.Fatal(err)
				}
			}
			if f != nil {
				defer f.Close()
				benchReplWait(b, f, d.wal.LastLSN()) // bootstrap before timing
			}
			b.ResetTimer()
			benchReplWorkload(b, d, 4)
			if f != nil {
				benchReplWait(b, f, d.wal.LastLSN())
			}
			b.StopTimer()
			if f != nil {
				st, _ := f.FollowerStatus()
				b.ReportMetric(float64(st.Resyncs), "resyncs")
			}
		})
	}

	// read_scaleout/* is the horizontal story: total view-read cost per
	// op with readers spread round-robin over n caught-up followers
	// while a writer keeps the stream busy. Per-read cost holding ~flat
	// as n grows means aggregate read throughput scales ~linearly with
	// replica count (each follower serves its own lock-free snapshots;
	// nothing is shared but the stream).
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("read_scaleout/followers=%d", n), func(b *testing.B) {
			d, srv := benchReplLeader(b)
			var seed []Op
			for i := int64(0); i < 2000; i++ {
				seed = append(seed, Insert("r", i%1000, i))
			}
			if _, err := d.Exec(seed...); err != nil {
				b.Fatal(err)
			}
			followers := make([]*DB, n)
			for i := range followers {
				f, err := openFollowerTransport(repl.LocalTransport{S: srv}, fmt.Sprintf("bench-f%d", i))
				if err != nil {
					b.Fatal(err)
				}
				defer f.Close()
				followers[i] = f
				benchReplWait(b, f, d.wal.LastLSN())
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // background writes keep every stream applying
				defer wg.Done()
				for i := int64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if i%2 == 0 {
						_, _ = d.Exec(Insert("r", i%500, -1))
					} else {
						_, _ = d.Exec(Delete("r", i%500, -1))
					}
				}
			}()
			var rr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				f := followers[int(rr.Add(1))%n]
				for pb.Next() {
					c, err := f.engine().View("v")
					if err != nil {
						b.Error(err)
						return
					}
					if c.Len() == 0 {
						b.Error("empty view")
						return
					}
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// ---------- C-POLICY: refresh policies on a write-heavy workload ----------

// BenchmarkRefreshPolicy measures per-commit cost under each refresh
// policy on a write-only stream against a join view. On-commit pays
// differential maintenance inside every Exec; MaxStaleness (bound far
// beyond the bench) and on-demand only stage backlog, so their commit
// path is an append — the policy spectrum's write-side saving. The
// deferred variants still owe one refresh at the end; drainns/op is
// that cost amortized per commit, keeping the comparison honest.
func BenchmarkRefreshPolicy(b *testing.B) {
	policies := []struct {
		name string
		opt  ViewOption
	}{
		{"oncommit", OnCommit()},
		{"maxstale", MaxStaleness(time.Hour)},
		{"ondemand", OnDemand()},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			d := Open()
			if err := d.CreateRelation("r", "A", "B"); err != nil {
				b.Fatal(err)
			}
			if err := d.CreateRelation("s", "B", "C"); err != nil {
				b.Fatal(err)
			}
			for j := int64(0); j < 256; j++ {
				if _, err := d.Exec(Insert("s", j, j*3)); err != nil {
					b.Fatal(err)
				}
			}
			if err := d.CreateJoinView("v", []string{"r", "s"}, p.opt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Exec(Insert("r", int64(i), int64(i%256))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			start := time.Now()
			if err := d.RefreshAll(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(time.Since(start).Seconds()/float64(b.N)*1e9, "drainns/op")
			rows, err := d.View("v")
			if err != nil || len(rows) != b.N {
				b.Fatalf("converged view has %d rows, want %d (%v)", len(rows), b.N, err)
			}
		})
	}
}
