#!/usr/bin/env bash
# allocguard: run the C-FLAT eval benchmarks with -benchmem and fail if
# allocs/op regresses past the checked-in budget.
#
# allocs/op is deterministic for a fixed workload (unlike ns/op, which
# drifts with machine load), so it is the one benchmark axis a CI box
# can gate on. The budgets in scripts/allocguard.budget carry ~10%
# headroom over the measured numbers; after an intentional change,
# re-measure with `make bench BENCH=FlatEval` and update the budget in
# the same commit.
set -euo pipefail
cd "$(dirname "$0")/.."

budget=scripts/allocguard.budget
out=$(go test -run=NONE -bench='FlatEval' -benchmem -count=1 .)
echo "$out"

fail=0
while read -r name limit; do
	case "$name" in '' | \#*) continue ;; esac
	got=$(echo "$out" | awk -v n="^BenchmarkFlatEval/${name}(-[0-9]+)?\$" \
		'$1 ~ n && $NF == "allocs/op" {print $(NF-1); exit}')
	if [ -z "$got" ]; then
		echo "allocguard: no benchmark result for $name" >&2
		fail=1
	elif [ "$got" -gt "$limit" ]; then
		echo "allocguard: FAIL $name at $got allocs/op, budget $limit" >&2
		fail=1
	else
		echo "allocguard: ok   $name at $got allocs/op, budget $limit"
	fi
done <"$budget"
exit $fail
