#!/bin/sh
# bench-json: run the C-* quantitative-shape benchmarks and emit one
# JSON object per benchmark line on stdout, so the perf trajectory
# behind bench_results.txt is machine-trackable across PRs:
#
#   {"benchmark":"BenchmarkGroupCommit/writers=16/group","iterations":2000,
#    "metrics":{"ns/op":70123,"fsyncs/op":0.06}}
#
# Every -benchmem and ReportMetric column becomes a metrics key. Raw
# `go test -bench` output passes through on stderr for humans.
#
# Usage: scripts/bench-json.sh [bench-regex] [benchtime]
#   default regex covers the C-* system benchmarks; default benchtime
#   100x keeps a full sweep tractable in CI.
set -eu

BENCH="${1:-ParallelCommit|SnapshotReads|GroupCommit|ShardedCommit|Checkpoint|FlatEval|Replication|RefreshPolicy}"
BENCHTIME="${2:-100x}"

go test -run=NONE -bench="$BENCH" -benchtime="$BENCHTIME" -benchmem . |
	tee /dev/stderr |
	awk '
		/^Benchmark/ {
			n = split($0, f, /[ \t]+/)
			printf "{\"benchmark\":\"%s\",\"iterations\":%s,\"metrics\":{", f[1], f[2]
			sep = ""
			# Fields alternate value unit from the third column on.
			for (i = 3; i + 1 <= n; i += 2) {
				printf "%s\"%s\":%s", sep, f[i+1], f[i]
				sep = ","
			}
			print "}}"
		}
	'
