#!/bin/sh
# trace-smoke: boot mviewd with the flight recorder on, drive one
# commit through the HTTP API, and assert /v1/debug/traces captured
# it. Catches wiring regressions between the daemon flags, the
# tracer composition in cmd/mviewd, and the httpapi debug routes
# that unit tests (which build their own handlers) cannot see.
#
# Usage: scripts/trace-smoke.sh [port]   (default 18080)
set -eu

PORT="${1:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/mviewd"
PID=""

cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null || true
	rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/mviewd
"$BIN" -addr "127.0.0.1:$PORT" -trace-ring 16 -group-commit &
PID=$!

# Wait for the daemon to accept connections (up to ~5s).
i=0
until curl -fsS "$BASE/debug/stats" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "trace-smoke: daemon did not come up on $BASE" >&2
		exit 1
	fi
	sleep 0.1
done

curl -fsS -X POST "$BASE/v1/relations" \
	-d '{"name":"r","attrs":["A","B"]}' >/dev/null
curl -fsS -X POST "$BASE/v1/views" \
	-d '{"name":"v","from":["r"],"where":"A < 10"}' >/dev/null
curl -fsS -X POST "$BASE/v1/exec" \
	-d '{"ops":[{"op":"insert","rel":"r","values":[1,2]},{"op":"insert","rel":"r","values":[3,4]}]}' >/dev/null

TRACES="$(curl -fsS "$BASE/v1/debug/traces")"
case "$TRACES" in
*'"total":0'*)
	echo "trace-smoke: flight recorder captured no traces: $TRACES" >&2
	exit 1
	;;
*'db.commit'*) ;;
*)
	echo "trace-smoke: no db.commit trace in ring: $TRACES" >&2
	exit 1
	;;
esac

# Every listed trace must be retrievable in full, with spans.
ID="$(printf '%s' "$TRACES" | sed -n 's/.*"id":\([0-9]*\).*/\1/p' | head -1)"
FULL="$(curl -fsS "$BASE/v1/debug/traces/$ID")"
case "$FULL" in
*'"spans":['*'"critical_path":'*) ;;
*)
	echo "trace-smoke: trace $ID missing spans/critical_path: $FULL" >&2
	exit 1
	;;
esac

echo "trace-smoke: OK (trace $ID recorded with spans and critical path)"
