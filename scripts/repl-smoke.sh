#!/bin/sh
# repl-smoke: boot a durable leader mviewd with -replicate and a
# follower mviewd with -follow, commit through the leader's HTTP API,
# and assert the follower converges to identical view contents and
# that replication is observable on both sides (leader status route +
# lag gauges, follower client state). Catches wiring regressions
# between the daemon flags, the /v1/replication routes, and the
# follower bootstrap that unit tests (which build their own handlers
# and transports) cannot see.
#
# Usage: scripts/repl-smoke.sh [leader-port] [follower-port]
set -eu

LPORT="${1:-18090}"
FPORT="${2:-18091}"
LEADER="http://127.0.0.1:$LPORT"
FOLLOWER="http://127.0.0.1:$FPORT"
TMP="$(mktemp -d)"
BIN="$TMP/mviewd"
LPID=""
FPID=""

cleanup() {
	[ -n "$FPID" ] && kill "$FPID" 2>/dev/null || true
	[ -n "$LPID" ] && kill "$LPID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/mviewd

"$BIN" -addr "127.0.0.1:$LPORT" -data "$TMP/leader" -group-commit -replicate &
LPID=$!

waitup() {
	i=0
	until curl -fsS "$1/debug/stats" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "repl-smoke: daemon did not come up on $1" >&2
			exit 1
		fi
		sleep 0.1
	done
}
waitup "$LEADER"

# Schema plus data committed BEFORE the follower exists (exercises the
# bootstrap snapshot), then more after it connects (exercises the
# stream).
curl -fsS -X POST "$LEADER/v1/relations" \
	-d '{"name":"r","attrs":["A","B"]}' >/dev/null
curl -fsS -X POST "$LEADER/v1/views" \
	-d '{"name":"v","from":["r"],"where":"A < 10"}' >/dev/null
curl -fsS -X POST "$LEADER/v1/exec" \
	-d '{"ops":[{"op":"insert","rel":"r","values":[1,2]},{"op":"insert","rel":"r","values":[50,60]}]}' >/dev/null

"$BIN" -addr "127.0.0.1:$FPORT" -follow "$LEADER" -follower-id smoke-f1 &
FPID=$!
waitup "$FOLLOWER"

curl -fsS -X POST "$LEADER/v1/exec" \
	-d '{"ops":[{"op":"insert","rel":"r","values":[3,4]},{"op":"delete","rel":"r","values":[1,2]}]}' >/dev/null

# Converge: the follower's view must become byte-identical to the
# leader's (the view ends up holding exactly [[3,4]]).
WANT="$(curl -fsS "$LEADER/v1/views/v")"
i=0
while :; do
	GOT="$(curl -fsS "$FOLLOWER/v1/views/v" 2>/dev/null || true)"
	[ "$GOT" = "$WANT" ] && [ -n "$GOT" ] && break
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "repl-smoke: follower never converged: leader=$WANT follower=$GOT" >&2
		exit 1
	fi
	sleep 0.1
done

# Writes to the follower must be refused as read-only (HTTP 403).
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$FOLLOWER/v1/exec" \
	-d '{"ops":[{"op":"insert","rel":"r","values":[9,9]}]}')"
if [ "$CODE" != "403" ]; then
	echo "repl-smoke: follower accepted a write (HTTP $CODE, want 403)" >&2
	exit 1
fi

# Policy DDL replicates: change v's refresh policy on the leader and
# the follower must converge to the same spec on its policy route.
curl -fsS -X PUT "$LEADER/v1/views/v/policy" \
	-d '{"policy":"maxstale=500ms"}' >/dev/null
i=0
while :; do
	FPOL="$(curl -fsS "$FOLLOWER/v1/views/v/policy" 2>/dev/null || true)"
	case "$FPOL" in
	*'"maxstale=500ms"'*) break ;;
	esac
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "repl-smoke: follower never saw the policy change: $FPOL" >&2
		exit 1
	fi
	sleep 0.1
done

# Policy writes to the follower must be refused as read-only (403).
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X PUT "$FOLLOWER/v1/views/v/policy" \
	-d '{"policy":"oncommit"}')"
if [ "$CODE" != "403" ]; then
	echo "repl-smoke: follower accepted a policy write (HTTP $CODE, want 403)" >&2
	exit 1
fi

# Leader-side observability: the follower appears on the status route
# and the per-follower lag gauges render on /metrics.
STATUS="$(curl -fsS "$LEADER/v1/replication/status")"
case "$STATUS" in
*'"smoke-f1"'*) ;;
*)
	echo "repl-smoke: follower missing from leader status: $STATUS" >&2
	exit 1
	;;
esac
METRICS="$(curl -fsS "$LEADER/metrics")"
case "$METRICS" in
*'mview_repl_lag_lsn{follower="smoke-f1"}'*) ;;
*)
	echo "repl-smoke: leader /metrics lacks per-follower lag gauge" >&2
	exit 1
	;;
esac

# Follower-side observability: its /debug/stats reports the client
# streaming with zero lag.
FSTATS="$(curl -fsS "$FOLLOWER/debug/stats")"
case "$FSTATS" in
*'"replication_client"'*'"state":"streaming"'*) ;;
*)
	echo "repl-smoke: follower /debug/stats lacks streaming client state: $FSTATS" >&2
	exit 1
	;;
esac

echo "repl-smoke: OK (follower converged, writes and policy changes refused with 403, policy DDL replicated, lag gauges live)"
