// Command mviewcli is an interactive shell over the mview engine:
// create relations and materialized views, run transactions, inspect
// view contents and maintenance statistics, and test updates for
// §4 irrelevance.
//
// Usage:
//
//	mviewcli                 # interactive prompt, in-memory database
//	mviewcli -data ./mydb    # durable database (commit log + checkpoints)
//	mviewcli -maint-workers 4  # bound the parallel maintenance pool
//	mviewcli -shards 8       # hash-shard base relations for shard-parallel maintenance
//	mviewcli -group-commit [-group-max N] [-group-window 2ms]  # commit-group scheduler
//	mviewcli < script        # batch mode
//
// Type "help" at the prompt for the command language.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"mview"
	"mview/internal/cli"
)

func main() {
	data := flag.String("data", "", "durable database directory (empty = in-memory)")
	workers := flag.Int("maint-workers", 0, "per-view maintenance worker pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "hash shards per base relation (1 = monolithic)")
	groupCommit := flag.Bool("group-commit", false, "coalesce concurrent transactions into commit groups")
	groupMax := flag.Int("group-max", 0, "maximum transactions per commit group (0 = default)")
	groupWindow := flag.Duration("group-window", 2*time.Millisecond, "group leader's wait for followers under concurrency (0 = no wait)")
	segBytes := flag.Int64("wal-segment-bytes", 0, "commit-log segment rotation threshold in bytes (0 = 64 MiB default; durable mode only)")
	flag.Parse()

	var opts []mview.Option
	if *workers > 0 {
		opts = append(opts, mview.WithMaintWorkers(*workers))
	}
	if *shards > 1 {
		opts = append(opts, mview.WithShards(*shards))
	}
	if *groupCommit {
		opts = append(opts, mview.WithGroupCommit(*groupMax, *groupWindow))
	}
	if *segBytes > 0 {
		opts = append(opts, mview.WithSegmentSize(*segBytes))
	}

	interactive := isTerminal()
	var s *cli.Session
	if *data != "" {
		var err error
		s, err = cli.NewDurableSession(*data, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mviewcli: %v\n", err)
			os.Exit(1)
		}
	} else {
		s = cli.NewSession(opts...)
	}
	defer s.Close()
	if interactive {
		fmt.Println("mview — materialized views with efficient differential maintenance (SIGMOD 1986)")
		fmt.Println("type 'help' for the command language")
	}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for {
		if interactive {
			fmt.Print("mview> ")
		}
		if !in.Scan() {
			break
		}
		out, done := s.Exec(in.Text())
		if out != "" {
			fmt.Println(out)
		}
		if done {
			return
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "mviewcli: %v\n", err)
		os.Exit(1)
	}
}

// isTerminal reports whether stdin looks interactive (char device).
func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
