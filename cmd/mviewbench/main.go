// Command mviewbench regenerates every experiment table indexed in
// DESIGN.md §4 / EXPERIMENTS.md: the paper's worked examples (P-*) and
// its quantitative claims (C-*).
//
// Usage:
//
//	mviewbench              # run everything at full scale
//	mviewbench -quick       # smaller datasets, fewer timing iterations
//	mviewbench -exp C-SEL   # run one experiment
//	mviewbench -list        # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"mview/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "run only the experiment with this id (e.g. P-4.1, C-SEL)")
		quick = flag.Bool("quick", false, "run with reduced dataset sizes and timing effort")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp != "" {
		e, ok := bench.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mviewbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		if err := bench.RunOne(os.Stdout, e, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "mviewbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := bench.RunAll(os.Stdout, *quick); err != nil {
		fmt.Fprintf(os.Stderr, "mviewbench: %v\n", err)
		os.Exit(1)
	}
}
