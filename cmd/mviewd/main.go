// Command mviewd serves the mview engine over a JSON/HTTP API.
//
// Usage:
//
//	mviewd [-addr :8080] [-data ./mydb] [-metrics=true] [-slowlog 100ms] [-maint-workers N] [-shards N]
//	       [-checkpoint-interval 5m] [-wal-segment-bytes N] [-group-commit] [-group-max N] [-group-window 2ms]
//	       [-trace-ring N] [-trace-slow 250ms] [-pprof] [-replicate] [-follow URL] [-follower-id ID]
//	       [-default-policy SPEC]
//
// See package mview/internal/httpapi for the endpoint reference. A
// minimal session:
//
//	curl -XPOST localhost:8080/relations -d '{"name":"r","attrs":["A","B"]}'
//	curl -XPOST localhost:8080/views -d '{"name":"v","from":["r"],"where":"A < 10"}'
//	curl -XPOST localhost:8080/exec -d '{"ops":[{"op":"insert","rel":"r","values":[1,2]}]}'
//	curl localhost:8080/views/v
//	curl -N localhost:8080/views/v/watch   # SSE change stream
//	curl localhost:8080/metrics            # Prometheus exposition
//	curl localhost:8080/debug/stats        # JSON snapshot
//	curl localhost:8080/v1/debug/traces    # flight-recorder catalog
//
// -slowlog enables a structured log line ("slow span=db.refresh
// dur=... view=v ...") for any commit, view refresh, or HTTP request
// slower than the given threshold; 0 disables it.
//
// -trace-ring keeps the last N complete commit traces in an in-memory
// flight recorder, served at /v1/debug/traces (the catalog) and
// /v1/debug/traces/{id} (one hierarchical trace with per-stage spans
// and its computed critical path). Traces slower than -trace-slow are
// pinned so one slow outlier survives the ring cycling past it.
// -trace-ring 0 disables the recorder. The default (64 traces) costs
// a few hundred kilobytes and a few microseconds per commit.
//
// -pprof mounts Go's net/http/pprof profiling endpoints at
// /debug/pprof/ on the same listener — CPU and heap profiles, goroutine
// dumps, and execution traces for drilling into whatever the flight
// recorder attributes (see README "Profiling").
//
// -maint-workers bounds the worker pool that computes per-view
// maintenance concurrently inside each commit (0 = GOMAXPROCS, the
// default).
//
// -shards hash-partitions every base relation into N shards so one
// transaction's maintenance fans out shard-parallel tasks onto that
// pool, and the §4 irrelevance checker can prune whole shards whose
// key bounds cannot satisfy a view's condition. 1 (the default) keeps
// relations monolithic. The shard count is engine configuration, not
// persisted state: restarting with a different -shards value reshards
// the recovered database.
//
// -checkpoint-interval makes a durable server checkpoint periodically,
// bounding recovery replay time. Checkpoints are incremental (only
// shards dirtied since the last one are rewritten) and run concurrently
// with commits — the commit fence is held only to capture the cut and
// swap the manifest — so a background interval does not stall traffic.
// It requires -data; 0 (the default) leaves checkpointing to the
// operator.
//
// -wal-segment-bytes sets the commit-log segment rotation threshold:
// once the active commit.log.<n> segment exceeds this size, the next
// append seals it and starts a new one, and checkpoints reclaim
// covered segments by whole-file deletion. 0 selects the default
// (64 MiB).
//
// -group-commit coalesces concurrent POST /exec transactions into
// commit groups: one batched commit-log fsync, one composed
// maintenance pass, and one snapshot publish cover the whole group,
// while each request keeps its own atomicity and per-transaction SSE
// notifications. -group-max caps the group size and -group-window sets
// how long a leader waits for followers once writers are observed to
// be concurrent (solo writers never wait).
//
// -replicate exposes the leader-side replication routes under
// /v1/replication (requires -data: the segmented commit log is the
// stream's source of truth). Followers connect with -follow.
//
// -follow runs this server as a read-only follower of the leader at
// the given base URL: it bootstraps from a leader snapshot, applies
// the composed-delta stream through the same maintenance pipeline a
// leader runs, and serves every read route (views, watch streams,
// metrics) from its own local snapshots — horizontal read scale-out
// with no leader round-trip per read. Write routes answer 403.
// -follower-id names this replica in the leader's lag metrics
// (mview_repl_lag_lsn{follower=...}) and defaults to the listen
// address; give each follower a stable, unique id. -follow excludes
// -data, -group-commit, and -replicate.
//
// -default-policy sets the refresh policy given to views created
// without one (oncommit | ondemand | every=<dur> | maxstale=<dur> |
// autopolicy; the built-in default is oncommit). The chosen policy is
// materialized into each view's logged definition, so a durable
// database replays its views unchanged if the daemon restarts with a
// different default. Any view's policy can still be changed at runtime
// via PUT /v1/views/{name}/policy.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get a grace period, SSE watchers are disconnected, and the
// commit log is closed so every acknowledged transaction is on disk.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mview"
	"mview/internal/httpapi"
	"mview/internal/obs"
)

// config carries every flag; one struct so run stays callable from
// tests without a twelve-argument signature.
type config struct {
	addr        string
	data        string
	metrics     bool
	slowlog     time.Duration
	workers     int
	shards      int
	ckptEvery   time.Duration
	segBytes    int64
	groupCommit bool
	groupMax    int
	groupWindow time.Duration
	traceRing   int
	traceSlow   time.Duration
	pprof       bool
	replicate   bool
	follow      string
	followerID  string
	defPolicy   string
}

func main() {
	var c config
	flag.StringVar(&c.addr, "addr", ":8080", "listen address")
	flag.StringVar(&c.data, "data", "", "durable database directory (empty = in-memory)")
	flag.BoolVar(&c.metrics, "metrics", true, "serve /metrics and /debug/stats")
	flag.DurationVar(&c.slowlog, "slowlog", 0, "log spans (commits, refreshes, requests) slower than this; 0 disables")
	flag.IntVar(&c.workers, "maint-workers", 0, "per-view maintenance worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&c.shards, "shards", 1, "hash shards per base relation (1 = monolithic)")
	flag.DurationVar(&c.ckptEvery, "checkpoint-interval", 0, "checkpoint a durable database this often (0 disables; requires -data)")
	flag.Int64Var(&c.segBytes, "wal-segment-bytes", 0, "commit-log segment rotation threshold in bytes (0 = default 64 MiB; requires -data)")
	flag.BoolVar(&c.groupCommit, "group-commit", false, "coalesce concurrent transactions into commit groups (one fsync, one maintenance pass, one snapshot publish per group)")
	flag.IntVar(&c.groupMax, "group-max", 0, "maximum transactions per commit group (0 = default)")
	flag.DurationVar(&c.groupWindow, "group-window", 2*time.Millisecond, "how long a group leader waits for followers once writers are concurrent (0 = no wait)")
	flag.IntVar(&c.traceRing, "trace-ring", 64, "commit traces kept in the flight recorder at /v1/debug/traces (0 disables)")
	flag.DurationVar(&c.traceSlow, "trace-slow", 250*time.Millisecond, "pin traces slower than this so the ring cannot evict them")
	flag.BoolVar(&c.pprof, "pprof", false, "serve net/http/pprof profiling endpoints at /debug/pprof/")
	flag.BoolVar(&c.replicate, "replicate", false, "serve the leader-side replication stream under /v1/replication (requires -data)")
	flag.StringVar(&c.follow, "follow", "", "run as a read-only follower of the leader at this base URL (e.g. http://leader:8080)")
	flag.StringVar(&c.followerID, "follower-id", "", "stable follower name in the leader's lag metrics (default: the listen address)")
	flag.StringVar(&c.defPolicy, "default-policy", "", "refresh policy for views created without one: oncommit | ondemand | every=<dur> | maxstale=<dur> | autopolicy (empty = oncommit)")
	flag.Parse()

	if err := run(c); err != nil {
		log.Fatal(err)
	}
}

func run(c config) error {
	var reg *obs.Registry
	var fr *obs.FlightRecorder
	var tracers obs.MultiTracer
	if c.slowlog > 0 {
		tracers = append(tracers, &obs.SlowLogger{Threshold: c.slowlog, Logf: log.Printf})
	}
	if c.traceRing > 0 {
		fr = obs.NewFlightRecorder(c.traceRing, c.traceSlow)
		tracers = append(tracers, fr)
	}
	var tr obs.Tracer
	switch len(tracers) {
	case 0:
	case 1:
		tr = tracers[0]
	default:
		tr = tracers
	}
	if c.metrics {
		reg = obs.NewRegistry()
	}

	var dbOpts []mview.Option
	if c.workers > 0 {
		dbOpts = append(dbOpts, mview.WithMaintWorkers(c.workers))
	}
	if c.shards > 1 {
		dbOpts = append(dbOpts, mview.WithShards(c.shards))
	}
	if c.groupCommit {
		dbOpts = append(dbOpts, mview.WithGroupCommit(c.groupMax, c.groupWindow))
	}
	if c.segBytes > 0 {
		dbOpts = append(dbOpts, mview.WithSegmentSize(c.segBytes))
	}
	if reg != nil || tr != nil {
		dbOpts = append(dbOpts, mview.WithObs(reg, tr))
	}
	if c.defPolicy != "" {
		p, err := mview.ParseViewOption(c.defPolicy)
		if err != nil {
			return err
		}
		dbOpts = append(dbOpts, mview.WithDefaultPolicy(p))
	}

	var db *mview.DB
	switch {
	case c.follow != "":
		if c.data != "" || c.groupCommit || c.replicate {
			return errors.New("mviewd: -follow excludes -data, -group-commit, and -replicate")
		}
		id := c.followerID
		if id == "" {
			id = c.addr
		}
		var err error
		if db, err = mview.OpenFollower(c.follow, id, dbOpts...); err != nil {
			return err
		}
		log.Printf("mviewd: following %s as %q", c.follow, id)
	case c.data != "":
		var err error
		if db, err = mview.OpenDurable(c.data, dbOpts...); err != nil {
			return err
		}
		log.Printf("mviewd: recovered durable database in %s", c.data)
	default:
		db = mview.Open(dbOpts...)
	}
	defer db.Close()

	var opts []httpapi.Option
	if reg != nil || tr != nil {
		opts = append(opts, httpapi.WithObs(reg, tr))
	} else {
		opts = append(opts, httpapi.WithoutObs())
	}
	if fr != nil {
		opts = append(opts, httpapi.WithFlightRecorder(fr))
	}
	if c.replicate {
		replSrv, err := db.ReplicationServer()
		if err != nil {
			return err
		}
		opts = append(opts, httpapi.WithReplication(replSrv))
	}
	var handler http.Handler = httpapi.NewWith(db, opts...)
	if c.pprof {
		// The API mux stays the default; pprof mounts beside it on the
		// same listener (unversioned, an operational endpoint like
		// /metrics). Explicit registrations — the package's init only
		// touches http.DefaultServeMux, which is not served here.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	// The signal context doubles as the base context of every request,
	// so long-lived SSE watch streams observe r.Context().Done() and
	// drain when shutdown starts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpointing bounds commit-log growth and recovery
	// replay. The goroutine is joined before db.Close so a checkpoint
	// never races the log teardown.
	var ckptWG sync.WaitGroup
	if c.ckptEvery > 0 {
		if c.data == "" {
			return errors.New("mviewd: -checkpoint-interval requires -data")
		}
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			tick := time.NewTicker(c.ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := db.Checkpoint(); err != nil {
						log.Printf("mviewd: checkpoint: %v", err)
					}
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              c.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	log.Printf("mviewd listening on %s (data=%q metrics=%v slowlog=%v trace-ring=%d pprof=%v maint-workers=%d shards=%d group-commit=%v)",
		c.addr, c.data, c.metrics, c.slowlog, c.traceRing, c.pprof, db.MaintWorkers(), db.Shards(), db.GroupCommitEnabled())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process immediately
	log.Printf("mviewd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("mviewd: shutdown: %v", err)
	}
	ckptWG.Wait()
	if err := db.Close(); err != nil {
		return err
	}
	if reg != nil {
		log.Printf("mviewd: final stats\n%s", reg.Dump())
	}
	log.Printf("mviewd: bye")
	return nil
}
