// Command mviewd serves the mview engine over a JSON/HTTP API.
//
// Usage:
//
//	mviewd [-addr :8080] [-data ./mydb] [-metrics=true] [-slowlog 100ms] [-maint-workers N] [-shards N]
//	       [-checkpoint-interval 5m] [-group-commit] [-group-max N] [-group-window 2ms]
//
// See package mview/internal/httpapi for the endpoint reference. A
// minimal session:
//
//	curl -XPOST localhost:8080/relations -d '{"name":"r","attrs":["A","B"]}'
//	curl -XPOST localhost:8080/views -d '{"name":"v","from":["r"],"where":"A < 10"}'
//	curl -XPOST localhost:8080/exec -d '{"ops":[{"op":"insert","rel":"r","values":[1,2]}]}'
//	curl localhost:8080/views/v
//	curl -N localhost:8080/views/v/watch   # SSE change stream
//	curl localhost:8080/metrics            # Prometheus exposition
//	curl localhost:8080/debug/stats        # JSON snapshot
//
// -slowlog enables a structured log line ("slow span=db.refresh
// dur=... view=v ...") for any commit, view refresh, or HTTP request
// slower than the given threshold; 0 disables it.
//
// -maint-workers bounds the worker pool that computes per-view
// maintenance concurrently inside each commit (0 = GOMAXPROCS, the
// default).
//
// -shards hash-partitions every base relation into N shards so one
// transaction's maintenance fans out shard-parallel tasks onto that
// pool, and the §4 irrelevance checker can prune whole shards whose
// key bounds cannot satisfy a view's condition. 1 (the default) keeps
// relations monolithic. The shard count is engine configuration, not
// persisted state: restarting with a different -shards value reshards
// the recovered database.
//
// -checkpoint-interval makes a durable server checkpoint periodically
// (snapshot + commit-log truncate), bounding recovery replay time. It
// requires -data; 0 (the default) leaves checkpointing to the operator.
//
// -group-commit coalesces concurrent POST /exec transactions into
// commit groups: one batched commit-log fsync, one composed
// maintenance pass, and one snapshot publish cover the whole group,
// while each request keeps its own atomicity and per-transaction SSE
// notifications. -group-max caps the group size and -group-window sets
// how long a leader waits for followers once writers are observed to
// be concurrent (solo writers never wait).
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get a grace period, SSE watchers are disconnected, and the
// commit log is closed so every acknowledged transaction is on disk.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mview"
	"mview/internal/httpapi"
	"mview/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "durable database directory (empty = in-memory)")
	metrics := flag.Bool("metrics", true, "serve /metrics and /debug/stats")
	slowlog := flag.Duration("slowlog", 0, "log spans (commits, refreshes, requests) slower than this; 0 disables")
	workers := flag.Int("maint-workers", 0, "per-view maintenance worker pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "hash shards per base relation (1 = monolithic)")
	ckptEvery := flag.Duration("checkpoint-interval", 0, "checkpoint a durable database this often (0 disables; requires -data)")
	groupCommit := flag.Bool("group-commit", false, "coalesce concurrent transactions into commit groups (one fsync, one maintenance pass, one snapshot publish per group)")
	groupMax := flag.Int("group-max", 0, "maximum transactions per commit group (0 = default)")
	groupWindow := flag.Duration("group-window", 2*time.Millisecond, "how long a group leader waits for followers once writers are concurrent (0 = no wait)")
	flag.Parse()

	if err := run(*addr, *data, *metrics, *slowlog, *workers, *shards, *ckptEvery, *groupCommit, *groupMax, *groupWindow); err != nil {
		log.Fatal(err)
	}
}

func run(addr, data string, metrics bool, slowlog time.Duration, workers, shards int, ckptEvery time.Duration, groupCommit bool, groupMax int, groupWindow time.Duration) error {
	var reg *obs.Registry
	var tr obs.Tracer
	if slowlog > 0 {
		tr = &obs.SlowLogger{Threshold: slowlog, Logf: log.Printf}
	}
	if metrics {
		reg = obs.NewRegistry()
	}

	var dbOpts []mview.Option
	if workers > 0 {
		dbOpts = append(dbOpts, mview.WithMaintWorkers(workers))
	}
	if shards > 1 {
		dbOpts = append(dbOpts, mview.WithShards(shards))
	}
	if groupCommit {
		dbOpts = append(dbOpts, mview.WithGroupCommit(groupMax, groupWindow))
	}
	if reg != nil || tr != nil {
		dbOpts = append(dbOpts, mview.WithObs(reg, tr))
	}

	var db *mview.DB
	if data != "" {
		var err error
		if db, err = mview.OpenDurable(data, dbOpts...); err != nil {
			return err
		}
		log.Printf("mviewd: recovered durable database in %s", data)
	} else {
		db = mview.Open(dbOpts...)
	}
	defer db.Close()

	var opts []httpapi.Option
	if reg != nil || tr != nil {
		opts = append(opts, httpapi.WithObs(reg, tr))
	} else {
		opts = append(opts, httpapi.WithoutObs())
	}
	handler := httpapi.NewWith(db, opts...)

	// The signal context doubles as the base context of every request,
	// so long-lived SSE watch streams observe r.Context().Done() and
	// drain when shutdown starts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpointing bounds commit-log growth and recovery
	// replay. The goroutine is joined before db.Close so a checkpoint
	// never races the log teardown.
	var ckptWG sync.WaitGroup
	if ckptEvery > 0 {
		if data == "" {
			return errors.New("mviewd: -checkpoint-interval requires -data")
		}
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			tick := time.NewTicker(ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := db.Checkpoint(); err != nil {
						log.Printf("mviewd: checkpoint: %v", err)
					}
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	log.Printf("mviewd listening on %s (data=%q metrics=%v slowlog=%v maint-workers=%d shards=%d group-commit=%v)",
		addr, data, metrics, slowlog, db.MaintWorkers(), db.Shards(), db.GroupCommitEnabled())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process immediately
	log.Printf("mviewd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("mviewd: shutdown: %v", err)
	}
	ckptWG.Wait()
	if err := db.Close(); err != nil {
		return err
	}
	if reg != nil {
		log.Printf("mviewd: final stats\n%s", reg.Dump())
	}
	log.Printf("mviewd: bye")
	return nil
}
