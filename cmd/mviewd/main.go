// Command mviewd serves the mview engine over a JSON/HTTP API.
//
// Usage:
//
//	mviewd [-addr :8080] [-data ./mydb]
//
// See package mview/internal/httpapi for the endpoint reference. A
// minimal session:
//
//	curl -XPOST localhost:8080/relations -d '{"name":"r","attrs":["A","B"]}'
//	curl -XPOST localhost:8080/views -d '{"name":"v","from":["r"],"where":"A < 10"}'
//	curl -XPOST localhost:8080/exec -d '{"ops":[{"op":"insert","rel":"r","values":[1,2]}]}'
//	curl localhost:8080/views/v
//	curl -N localhost:8080/views/v/watch   # SSE change stream
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"mview"
	"mview/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "durable database directory (empty = in-memory)")
	flag.Parse()

	handler := httpapi.New()
	if *data != "" {
		db, err := mview.OpenDurable(*data)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		handler = httpapi.NewWith(db)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("mviewd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
