package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"mview/internal/wal"
)

// Transport is the wire between a follower and its leader. The real
// implementation is HTTPTransport; LocalTransport runs against an
// in-process Server so oracle tests and benchmarks replicate without a
// second process (mock-vs-real split: the Client's reconnect, re-sync,
// dedupe, and ack logic is identical over both).
type Transport interface {
	// Snapshot opens a bootstrap snapshot stream.
	Snapshot(ctx context.Context) (io.ReadCloser, error)
	// Stream opens a frame stream resuming after LSN from.
	Stream(ctx context.Context, id string, from uint64) (io.ReadCloser, error)
	// Ack reports the follower's applied position to the leader.
	Ack(ctx context.Context, id string, lsn uint64) error
}

// Applier is the follower database's apply surface; the root mview
// package implements it. All three methods are called from the
// client's single run loop, never concurrently.
type Applier interface {
	// Bootstrap replaces the follower's state from a leader snapshot
	// stream and returns the WAL position the snapshot reflects.
	Bootstrap(r io.Reader) (uint64, error)
	// Apply applies records in order (LSNs strictly sequential from
	// AppliedLSN()+1; noop continuity records included). Any error
	// means the replica has diverged and must re-sync.
	Apply(recs []wal.Record) error
	// AppliedLSN is the last applied position (0 before bootstrap).
	AppliedLSN() uint64
}

// ClientStatus is a follower's view of its own replication state,
// exported on the follower's /debug/stats.
type ClientStatus struct {
	State       string  `json:"state"` // bootstrapping | streaming | reconnecting
	AppliedLSN  uint64  `json:"applied_lsn"`
	LeaderLSN   uint64  `json:"leader_lsn"` // from the last heartbeat or batch
	LagLSN      uint64  `json:"lag_lsn"`
	Resyncs     uint64  `json:"resyncs"`
	Reconnects  uint64  `json:"reconnects"`
	LastContact float64 `json:"last_contact_seconds"` // since any frame
	LastError   string  `json:"last_error,omitempty"` // most recent stream/bootstrap failure
}

// Client drives one follower: bootstrap, stream, apply, ack, and the
// two recovery motions — reconnect with resume after a dropped stream
// (leader restart) and full re-sync after a gap or apply divergence.
type Client struct {
	id string
	t  Transport
	a  Applier

	// RetryMin/RetryMax bound the reconnect backoff. AckEvery caps how
	// many applied records may pass between acks (a heartbeat always
	// acks). Zero values select defaults.
	RetryMin time.Duration
	RetryMax time.Duration
	AckEvery int

	mu          sync.Mutex
	state       string
	leaderLSN   uint64
	lastContact time.Time
	resyncs     uint64
	reconnects  uint64
	lastErr     string
}

// NewClient builds a follower client. id must be stable across
// restarts of the follower process (it names the leader-side lag
// series).
func NewClient(id string, t Transport, a Applier) *Client {
	return &Client{
		id:       id,
		t:        t,
		a:        a,
		RetryMin: 50 * time.Millisecond,
		RetryMax: 2 * time.Second,
		AckEvery: 1,
	}
}

// Status reports the follower's replication state.
func (c *Client) Status() ClientStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	applied := c.a.AppliedLSN()
	st := ClientStatus{
		State:      c.state,
		AppliedLSN: applied,
		LeaderLSN:  c.leaderLSN,
		Resyncs:    c.resyncs,
		Reconnects: c.reconnects,
		LastError:  c.lastErr,
	}
	if c.leaderLSN > applied {
		st.LagLSN = c.leaderLSN - applied
	}
	if !c.lastContact.IsZero() {
		st.LastContact = time.Since(c.lastContact).Seconds()
	}
	return st
}

func (c *Client) setState(s string) {
	c.mu.Lock()
	c.state = s
	c.mu.Unlock()
}

func (c *Client) noteContact(leaderLSN uint64) {
	c.mu.Lock()
	if leaderLSN > c.leaderLSN {
		c.leaderLSN = leaderLSN
	}
	c.lastContact = time.Now()
	c.mu.Unlock()
}

// errResync forces a bootstrap on the next loop iteration.
var errResync = errors.New("repl: re-sync required")

// Run replicates until ctx is cancelled. It returns ctx.Err() on
// cancellation; transient failures (dropped streams, refused
// connections, gaps) are handled internally with backoff, re-sync, or
// both — a follower keeps serving its last applied state throughout.
func (c *Client) Run(ctx context.Context) error {
	backoff := c.RetryMin
	needBootstrap := c.a.AppliedLSN() == 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if needBootstrap {
			c.setState("bootstrapping")
			if err := c.bootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				c.noteError(err)
				backoff = c.sleep(ctx, backoff)
				continue
			}
			needBootstrap = false
			backoff = c.RetryMin
		}
		c.setState("streaming")
		err := c.stream(ctx)
		if err != nil {
			c.noteError(err)
		}
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, errResync):
			needBootstrap = true
			c.mu.Lock()
			c.resyncs++
			c.mu.Unlock()
		default:
			// Dropped stream (leader restart, network): resume from the
			// applied position after a backoff.
			c.setState("reconnecting")
			c.mu.Lock()
			c.reconnects++
			c.mu.Unlock()
			backoff = c.sleep(ctx, backoff)
		}
	}
}

func (c *Client) noteError(err error) {
	c.mu.Lock()
	c.lastErr = err.Error()
	c.mu.Unlock()
}

func (c *Client) sleep(ctx context.Context, backoff time.Duration) time.Duration {
	select {
	case <-ctx.Done():
		return backoff
	case <-time.After(backoff):
	}
	next := backoff * 2
	if next > c.RetryMax {
		next = c.RetryMax
	}
	return next
}

func (c *Client) bootstrap(ctx context.Context) error {
	rc, err := c.t.Snapshot(ctx)
	if err != nil {
		return err
	}
	defer rc.Close()
	lsn, err := c.a.Bootstrap(rc)
	if err != nil {
		return err
	}
	c.noteContact(lsn)
	_ = c.t.Ack(ctx, c.id, lsn)
	return nil
}

// stream consumes one frame stream until it drops (returns the
// transport error), the context cancels (returns nil), or the leader
// reports a gap / apply diverges (returns errResync).
func (c *Client) stream(ctx context.Context) error {
	from := c.a.AppliedLSN()
	rc, err := c.t.Stream(ctx, c.id, from)
	if err != nil {
		return err
	}
	defer rc.Close()
	sinceAck := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		typ, payload, err := readFrame(rc)
		if err != nil {
			return err
		}
		switch typ {
		case frameRecords:
			recs, err := decodeRecords(payload)
			if err != nil {
				return err
			}
			applied := c.a.AppliedLSN()
			// Dedupe after a resumed stream: drop what we already have;
			// a forward jump is a protocol violation → re-sync rather
			// than risk silent divergence.
			fresh := recs[:0]
			for _, r := range recs {
				if r.LSN <= applied {
					continue
				}
				if r.LSN != applied+1 {
					return fmt.Errorf("repl: record LSN %d after applied %d: %w", r.LSN, applied, errResync)
				}
				fresh = append(fresh, r)
				applied = r.LSN
			}
			if len(fresh) == 0 {
				continue
			}
			if err := c.a.Apply(fresh); err != nil {
				return fmt.Errorf("repl: apply after %d: %v: %w", from, err, errResync)
			}
			c.noteContact(c.a.AppliedLSN())
			sinceAck += len(fresh)
			if sinceAck >= c.AckEvery {
				_ = c.t.Ack(ctx, c.id, c.a.AppliedLSN())
				sinceAck = 0
			}
		case frameHeartbeat:
			hb, err := decodeHeartbeat(payload)
			if err != nil {
				return err
			}
			c.noteContact(hb.LastLSN)
			_ = c.t.Ack(ctx, c.id, c.a.AppliedLSN())
			sinceAck = 0
		case frameGap:
			gap, err := decodeGap(payload)
			if err != nil {
				return err
			}
			return fmt.Errorf("repl: leader reclaimed records after %d (oldest retained %d): %w",
				c.a.AppliedLSN(), gap.Oldest, errResync)
		default:
			return fmt.Errorf("repl: unknown frame type %d", typ)
		}
	}
}

// LocalTransport connects a Client to an in-process Server over
// io.Pipe — the stream and snapshot bytes are identical to the HTTP
// wire, only the transport differs.
type LocalTransport struct {
	S *Server
}

func (lt LocalTransport) Snapshot(ctx context.Context) (io.ReadCloser, error) {
	pr, pw := io.Pipe()
	go func() {
		_, err := lt.S.Snapshot(pw)
		pw.CloseWithError(err)
	}()
	return pr, nil
}

func (lt LocalTransport) Stream(ctx context.Context, id string, from uint64) (io.ReadCloser, error) {
	pr, pw := io.Pipe()
	go func() {
		err := lt.S.StreamTo(ctx, id, from, pw)
		if err == nil {
			err = io.EOF
		}
		pw.CloseWithError(err)
	}()
	return pr, nil
}

func (lt LocalTransport) Ack(ctx context.Context, id string, lsn uint64) error {
	lt.S.Ack(id, lsn)
	return nil
}

// HTTPTransport talks to a leader's /v1/replication routes.
type HTTPTransport struct {
	// Base is the leader's base URL, e.g. "http://leader:7171".
	Base string
	// Client defaults to a streaming-friendly client (no overall
	// timeout — the stream is long-lived; dial failures surface fast).
	Client *http.Client
}

func (ht HTTPTransport) client() *http.Client {
	if ht.Client != nil {
		return ht.Client
	}
	return http.DefaultClient
}

func (ht HTTPTransport) get(ctx context.Context, path string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ht.Base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := ht.client().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("repl: GET %s: %s: %s", path, resp.Status, body)
	}
	return resp.Body, nil
}

func (ht HTTPTransport) Snapshot(ctx context.Context) (io.ReadCloser, error) {
	return ht.get(ctx, "/v1/replication/snapshot")
}

func (ht HTTPTransport) Stream(ctx context.Context, id string, from uint64) (io.ReadCloser, error) {
	return ht.get(ctx, "/v1/replication/stream?id="+url.QueryEscape(id)+"&from="+strconv.FormatUint(from, 10))
}

func (ht HTTPTransport) Ack(ctx context.Context, id string, lsn uint64) error {
	u := ht.Base + "/v1/replication/ack?id=" + url.QueryEscape(id) + "&lsn=" + strconv.FormatUint(lsn, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := ht.client().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: ack: %s", resp.Status)
	}
	return nil
}
