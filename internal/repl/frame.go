// Package repl ships committed transactions from a leader database to
// read-only followers: the leader tails its segmented WAL (wal.Tail)
// and streams the records — the same §6-composable units its own group
// commit produced — over a byte-stream transport; followers apply them
// through the engine's batch maintenance pipeline and publish their own
// COW snapshots, serving the leader's lock-free read path horizontally.
//
// The wire is a sequence of CRC-framed messages over any ordered byte
// stream (an HTTP chunked response body in production, an in-process
// pipe in tests and benchmarks):
//
//	u8 type | u32 payloadLen | payload | u32 crc32(type..payload)
//
// Three message types exist: records (a batch of WAL records, each
// re-framed as u64 LSN | u8 kind | u32 len | bytes), heartbeat (the
// leader's durable high-water LSN plus its clock, sent when the stream
// is idle so followers can measure lag), and gap (the records the
// follower needs were reclaimed by a checkpoint; it must re-sync from
// a fresh leader snapshot — the stream never silently skips LSNs).
package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"mview/internal/wal"
)

// Frame types.
const (
	frameRecords   uint8 = 1
	frameHeartbeat uint8 = 2
	frameGap       uint8 = 3
)

// maxFramePayload bounds one frame (64 MiB) so a corrupt length field
// cannot drive a giant allocation. Batches are soft-capped well below
// this by the server's BatchBytes.
const maxFramePayload = 64 << 20

const frameHeaderLen = 1 + 4
const frameCRCLen = 4

// writeFrame emits one framed message.
func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	buf := make([]byte, 0, frameHeaderLen+len(payload)+frameCRCLen)
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// readFrame reads and CRC-verifies one framed message. io.EOF at a
// frame boundary is a clean end of stream; any torn or corrupt frame is
// an error (the transport is expected to be reliable — corruption means
// a bug or a truncated proxy body, and the client reconnects).
func readFrame(r io.Reader) (uint8, []byte, error) {
	var header [frameHeaderLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("repl: torn frame header: %w", err)
		}
		return 0, nil, err
	}
	typ := header[0]
	plen := binary.BigEndian.Uint32(header[1:5])
	if plen > maxFramePayload {
		return 0, nil, fmt.Errorf("repl: frame payload %d exceeds limit", plen)
	}
	body := make([]byte, int(plen)+frameCRCLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("repl: torn frame body: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(header[:])
	crc.Write(body[:plen])
	if crc.Sum32() != binary.BigEndian.Uint32(body[plen:]) {
		return 0, nil, fmt.Errorf("repl: frame checksum mismatch")
	}
	return typ, body[:plen], nil
}

// encodeRecords packs a batch of WAL records into a records payload:
// u32 count, then per record u64 LSN | u8 kind | u32 len | bytes.
func encodeRecords(recs []wal.Record) []byte {
	size := 4
	for _, r := range recs {
		size += 8 + 1 + 4 + len(r.Payload)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		buf = binary.BigEndian.AppendUint64(buf, r.LSN)
		buf = append(buf, r.Kind)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Payload)))
		buf = append(buf, r.Payload...)
	}
	return buf
}

// decodeRecords unpacks a records payload.
func decodeRecords(p []byte) ([]wal.Record, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("repl: short records payload")
	}
	n := binary.BigEndian.Uint32(p)
	p = p[4:]
	recs := make([]wal.Record, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(p) < 8+1+4 {
			return nil, fmt.Errorf("repl: truncated record %d", i)
		}
		lsn := binary.BigEndian.Uint64(p)
		kind := p[8]
		plen := binary.BigEndian.Uint32(p[9:13])
		p = p[13:]
		if uint32(len(p)) < plen {
			return nil, fmt.Errorf("repl: truncated record %d payload", i)
		}
		recs = append(recs, wal.Record{LSN: lsn, Kind: kind, Payload: p[:plen:plen]})
		p = p[plen:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("repl: %d trailing bytes after records", len(p))
	}
	return recs, nil
}

// Heartbeat reports the leader's durable position on an idle stream.
type Heartbeat struct {
	LastLSN  uint64 // leader's durable high-water LSN
	UnixNano int64  // leader's clock when sent
}

func encodeHeartbeat(h Heartbeat) []byte {
	buf := make([]byte, 0, 16)
	buf = binary.BigEndian.AppendUint64(buf, h.LastLSN)
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.UnixNano))
	return buf
}

func decodeHeartbeat(p []byte) (Heartbeat, error) {
	if len(p) != 16 {
		return Heartbeat{}, fmt.Errorf("repl: heartbeat payload length %d", len(p))
	}
	return Heartbeat{
		LastLSN:  binary.BigEndian.Uint64(p),
		UnixNano: int64(binary.BigEndian.Uint64(p[8:])),
	}, nil
}

// Gap tells a follower its resume position was reclaimed: the oldest
// retained LSN is Oldest (0 = nothing retained) and it must re-sync
// from a fresh snapshot.
type Gap struct {
	Oldest uint64
}

func encodeGap(g Gap) []byte {
	return binary.BigEndian.AppendUint64(nil, g.Oldest)
}

func decodeGap(p []byte) (Gap, error) {
	if len(p) != 8 {
		return Gap{}, fmt.Errorf("repl: gap payload length %d", len(p))
	}
	return Gap{Oldest: binary.BigEndian.Uint64(p)}, nil
}
