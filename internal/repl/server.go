package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mview/internal/obs"
	"mview/internal/wal"
)

// Source is the leader database's replication surface: the live WAL
// window, a tail over it, and a consistent snapshot stream for
// follower bootstrap. The root mview package implements it.
type Source interface {
	// Bounds is the WAL's retained window (oldest retained LSN, next
	// LSN); oldest == next means nothing retained.
	Bounds() (oldest, next uint64)
	// LastLSN is the durable high-water mark: every record at or below
	// it is fully written and fsynced, and will never be rolled back.
	LastLSN() uint64
	// OpenTail opens a WAL tail positioned after LSN from. It returns
	// *wal.GapError when from's successor was reclaimed.
	OpenTail(from uint64) (*wal.Tail, error)
	// WriteSnapshot streams a consistent snapshot paired with the WAL
	// position it reflects (also embedded in the stream itself).
	WriteSnapshot(w io.Writer) (lsn uint64, err error)
}

// streamWriteHook, when set, runs before every frame write on every
// stream, letting the failover test kill a leader mid-stream at a
// frame boundary of its choosing. Atomic because tests arm it while
// streams are live.
var streamWriteHook atomic.Pointer[func(followerID string) error]

// SetStreamWriteHook installs (or, with nil, clears) the stream fault
// hook. A hook returning an error aborts the stream with it.
func SetStreamWriteHook(fn func(followerID string) error) {
	if fn == nil {
		streamWriteHook.Store(nil)
		return
	}
	streamWriteHook.Store(&fn)
}

// FollowerStatus is one follower's replication position as the leader
// sees it, exported on /v1/replication/status and /debug/stats.
type FollowerStatus struct {
	ID         string  `json:"id"`
	AckLSN     uint64  `json:"ack_lsn"`
	LagLSN     uint64  `json:"lag_lsn"`
	LagSeconds float64 `json:"lag_seconds"`
	Streams    int     `json:"streams"`
	AckAgeSecs float64 `json:"ack_age_seconds"`
}

type followerInfo struct {
	ackLSN  uint64
	ackAt   time.Time
	streams int
}

// Server streams WAL records to followers and tracks their positions.
// One Server fronts one leader database; it is safe for concurrent use
// (each follower stream runs on its own goroutine, typically an HTTP
// handler).
type Server struct {
	src Source

	// BatchMax caps records per frame; BatchBytes soft-caps frame
	// payload bytes. Poll is the idle re-check interval when a stream
	// is caught up; Heartbeat is the maximum quiet time before an idle
	// stream emits a heartbeat frame. Zero values select defaults.
	BatchMax   int
	BatchBytes int
	Poll       time.Duration
	Heartbeat  time.Duration

	mu        sync.Mutex
	followers map[string]*followerInfo
	reg       *obs.Registry
}

// NewServer wraps a leader's replication source.
func NewServer(src Source) *Server {
	return &Server{
		src:        src,
		BatchMax:   256,
		BatchBytes: 1 << 20,
		Poll:       2 * time.Millisecond,
		Heartbeat:  500 * time.Millisecond,
		followers:  make(map[string]*followerInfo),
	}
}

// SetObs attaches a metrics registry: per-follower gauges
// mview_repl_lag_lsn and mview_repl_lag_seconds (labelled follower=ID)
// plus the stream counters. Call RefreshMetrics before scraping to
// bring the lag gauges up to now.
func (s *Server) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
}

const (
	lagLSNName = "mview_repl_lag_lsn"
	lagLSNHelp = "Replication lag in LSNs per follower (leader durable LSN minus last acknowledged)."
	lagSecName = "mview_repl_lag_seconds"
	lagSecHelp = "Replication lag in seconds per follower (0 when caught up, else age of the last acknowledgement)."
	ackLSNName = "mview_repl_follower_ack_lsn"
	ackLSNHelp = "Last LSN each follower acknowledged as applied."
)

// Ack records a follower's applied position. Followers post it after
// every applied batch and on every heartbeat, so an idle-but-alive
// follower keeps its lag at zero.
func (s *Server) Ack(id string, lsn uint64) {
	now := time.Now()
	s.mu.Lock()
	f := s.follower(id)
	if lsn > f.ackLSN {
		f.ackLSN = lsn
	}
	f.ackAt = now
	reg := s.reg
	ack := f.ackLSN
	s.mu.Unlock()
	if reg != nil {
		last := s.src.LastLSN()
		lbl := obs.Labels{"follower": id}
		reg.Gauge(ackLSNName, ackLSNHelp, lbl).Set(float64(ack))
		reg.Gauge(lagLSNName, lagLSNHelp, lbl).Set(float64(lagLSN(last, ack)))
		reg.Gauge(lagSecName, lagSecHelp, lbl).Set(0)
	}
}

// follower returns (creating if needed) the registry entry; s.mu held.
func (s *Server) follower(id string) *followerInfo {
	f, ok := s.followers[id]
	if !ok {
		f = &followerInfo{}
		s.followers[id] = f
	}
	return f
}

func lagLSN(last, ack uint64) uint64 {
	if ack >= last {
		return 0
	}
	return last - ack
}

// RefreshMetrics re-computes the lag gauges against the leader's
// current position — lag grows while a follower is silent, which a
// Set-on-ack gauge alone would miss. The metrics endpoints call it
// before rendering.
func (s *Server) RefreshMetrics() {
	s.mu.Lock()
	reg := s.reg
	type ent struct {
		id string
		f  followerInfo
	}
	var ents []ent
	for id, f := range s.followers {
		ents = append(ents, ent{id, *f})
	}
	s.mu.Unlock()
	if reg == nil {
		return
	}
	last := s.src.LastLSN()
	now := time.Now()
	for _, e := range ents {
		lbl := obs.Labels{"follower": e.id}
		lag := lagLSN(last, e.f.ackLSN)
		reg.Gauge(lagLSNName, lagLSNHelp, lbl).Set(float64(lag))
		sec := 0.0
		if lag > 0 && !e.f.ackAt.IsZero() {
			sec = now.Sub(e.f.ackAt).Seconds()
		}
		reg.Gauge(lagSecName, lagSecHelp, lbl).Set(sec)
	}
}

// Status lists every follower the leader has heard from, sorted by ID.
func (s *Server) Status() []FollowerStatus {
	last := s.src.LastLSN()
	now := time.Now()
	s.mu.Lock()
	out := make([]FollowerStatus, 0, len(s.followers))
	for id, f := range s.followers {
		st := FollowerStatus{
			ID:      id,
			AckLSN:  f.ackLSN,
			LagLSN:  lagLSN(last, f.ackLSN),
			Streams: f.streams,
		}
		if !f.ackAt.IsZero() {
			st.AckAgeSecs = now.Sub(f.ackAt).Seconds()
			if st.LagLSN > 0 {
				st.LagSeconds = st.AckAgeSecs
			}
		}
		out = append(out, st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Forget drops a follower from the registry and deletes its gauges
// (used when an operator retires a replica; a reconnect re-registers).
func (s *Server) Forget(id string) {
	s.mu.Lock()
	delete(s.followers, id)
	reg := s.reg
	s.mu.Unlock()
	if reg != nil {
		lbl := obs.Labels{"follower": id}
		reg.Delete(lagLSNName, lbl)
		reg.Delete(lagSecName, lbl)
		reg.Delete(ackLSNName, lbl)
	}
}

// Snapshot streams a bootstrap snapshot to w, returning the WAL
// position it reflects.
func (s *Server) Snapshot(w io.Writer) (uint64, error) {
	return s.src.WriteSnapshot(w)
}

// LeaderLSN exposes the source's durable high-water mark.
func (s *Server) LeaderLSN() uint64 { return s.src.LastLSN() }

// StreamTo streams frames to w from LSN from until ctx is cancelled or
// the writer fails (a follower that disconnects surfaces as a write
// error; a slow follower blocks the write and thereby backpressures its
// own stream — no buffering beyond the transport's own). When the
// requested position has been reclaimed it sends one gap frame and
// returns nil: re-syncing is the follower's move.
//
// w is flushed after every frame when it implements http.Flusher, so a
// chunked HTTP response delivers each frame immediately.
func (s *Server) StreamTo(ctx context.Context, id string, from uint64, w io.Writer) error {
	s.mu.Lock()
	f := s.follower(id)
	f.streams++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		f.streams--
		s.mu.Unlock()
	}()

	flusher, _ := w.(http.Flusher)
	emit := func(typ uint8, payload []byte) error {
		if h := streamWriteHook.Load(); h != nil {
			if err := (*h)(id); err != nil {
				return err
			}
		}
		if err := writeFrame(w, typ, payload); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// gapAt reports whether position pos can continue on this WAL: its
	// successor must still be retained (pos+1 >= oldest; when nothing
	// is retained oldest == next, so any lagging pos is a gap), and pos
	// must not be ahead of the leader (a follower of a previous
	// incarnation whose history this leader does not have).
	gapAt := func(pos uint64) (Gap, bool) {
		oldest, next := s.src.Bounds()
		if pos+1 < oldest || pos >= next {
			return Gap{Oldest: oldest}, true
		}
		return Gap{}, false
	}

	// A reclaimed resume position is answered explicitly, never by
	// silently streaming the surviving suffix.
	if gap, ok := gapAt(from); ok {
		return emit(frameGap, encodeGap(gap))
	}

	// The disk-level gap detection inside OpenTail/Tail.Next is a
	// backstop that cannot tell "everything before from was reclaimed"
	// from "the chain holds no records at all right now" — the latter
	// happens whenever a checkpoint reclaims every sealed segment while
	// the freshly-rotated active segment is still empty, with the
	// follower exactly caught up. Bounds is authoritative in-process, so
	// a disk-level GapError is honored only when gapAt agrees; otherwise
	// the stream waits for the next append and retries.
	var tail *wal.Tail
	defer func() {
		if tail != nil {
			tail.Close()
		}
	}()

	lastSent := time.Now()
	idle := func() error {
		if time.Since(lastSent) >= s.Heartbeat {
			hb := Heartbeat{LastLSN: s.src.LastLSN(), UnixNano: time.Now().UnixNano()}
			if err := emit(frameHeartbeat, encodeHeartbeat(hb)); err != nil {
				return err
			}
			lastSent = time.Now()
		}
		select {
		case <-ctx.Done():
		case <-time.After(s.Poll):
		}
		return nil
	}
	pos := from
	for {
		if err := ctx.Err(); err != nil {
			return nil // clean shutdown
		}
		if tail != nil {
			pos = tail.Pos()
		}
		// Bounds is the authoritative in-process gap check: the tail's
		// own detection can lag reclamation by one poll.
		if gap, ok := gapAt(pos); ok {
			return emit(frameGap, encodeGap(gap))
		}
		if tail == nil {
			t, err := s.src.OpenTail(pos)
			if err != nil {
				var gap *wal.GapError
				if !errors.As(err, &gap) {
					return fmt.Errorf("repl: opening tail at %d: %w", pos, err)
				}
				// gapAt(pos) said serveable above, so this is the
				// transient empty-chain case: idle until records appear.
				if err := idle(); err != nil {
					return err
				}
				continue
			}
			t.MaxBytes = s.BatchBytes
			tail = t
		}
		recs, err := tail.Next(s.BatchMax, s.src.LastLSN())
		if err != nil {
			var gap *wal.GapError
			if errors.As(err, &gap) {
				if g, ok := gapAt(tail.Pos()); ok {
					return emit(frameGap, encodeGap(g))
				}
				// Disk raced reclamation mid-stream; reopen from the
				// last delivered position.
				tail.Close()
				tail = nil
				if err := idle(); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("repl: tailing after %d: %w", tail.Pos(), err)
		}
		if len(recs) > 0 {
			if err := emit(frameRecords, encodeRecords(recs)); err != nil {
				return err
			}
			lastSent = time.Now()
			continue
		}
		// Caught up: idle-wait, heartbeating so the follower can tell a
		// quiet leader from a dead one (and keep its lag metrics fresh).
		if err := idle(); err != nil {
			return err
		}
	}
}
