package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mview/internal/obs"
	"mview/internal/wal"
)

// walSource backs a Server with a real segmented WAL; its snapshot
// stream is a trivial encoding of "state up to LSN n" (the root
// package supplies the real snapshot codec — the protocol does not
// care what the bytes are).
type walSource struct {
	l *wal.Log
	p string

	mu      sync.Mutex
	snapLSN uint64 // position WriteSnapshot reports
}

func newWalSource(t *testing.T) *walSource {
	t.Helper()
	p := filepath.Join(t.TempDir(), "wal.log")
	l, err := wal.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	l.Sync = false
	t.Cleanup(func() { l.Close() })
	return &walSource{l: l, p: p}
}

func (s *walSource) Bounds() (uint64, uint64) { return s.l.Bounds() }
func (s *walSource) LastLSN() uint64          { return s.l.LastLSN() }
func (s *walSource) OpenTail(from uint64) (*wal.Tail, error) {
	return wal.OpenTail(s.p, from)
}
func (s *walSource) WriteSnapshot(w io.Writer) (uint64, error) {
	s.mu.Lock()
	lsn := s.snapLSN
	s.mu.Unlock()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(lsn >> (56 - 8*i))
	}
	_, err := w.Write(buf[:])
	return lsn, err
}

// setSnapshotLSN simulates a checkpoint at the given position.
func (s *walSource) setSnapshotLSN(lsn uint64) {
	s.mu.Lock()
	s.snapLSN = lsn
	s.mu.Unlock()
}

// memApplier accumulates applied records; Bootstrap resets to the
// snapshot position from the walSource's 8-byte stream.
type memApplier struct {
	mu      sync.Mutex
	applied uint64
	recs    []wal.Record
	boots   int
	failOn  uint64 // Apply fails when it sees this LSN (divergence sim)
}

func (a *memApplier) Bootstrap(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	var lsn uint64
	for _, b := range buf {
		lsn = lsn<<8 | uint64(b)
	}
	a.mu.Lock()
	a.applied = lsn
	a.recs = nil
	a.boots++
	a.mu.Unlock()
	return lsn, nil
}

func (a *memApplier) Apply(recs []wal.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range recs {
		if a.failOn != 0 && r.LSN == a.failOn {
			return errors.New("injected apply failure")
		}
		if r.LSN != a.applied+1 {
			return fmt.Errorf("out-of-order record %d after %d", r.LSN, a.applied)
		}
		p := append([]byte(nil), r.Payload...)
		a.recs = append(a.recs, wal.Record{LSN: r.LSN, Kind: r.Kind, Payload: p})
		a.applied = r.LSN
	}
	return nil
}

func (a *memApplier) AppliedLSN() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

func (a *memApplier) snapshot() (uint64, []wal.Record, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied, append([]wal.Record(nil), a.recs...), a.boots
}

func fastServer(src Source) *Server {
	s := NewServer(src)
	s.Poll = 200 * time.Microsecond
	s.Heartbeat = 5 * time.Millisecond
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestFrameRoundTrip(t *testing.T) {
	recs := []wal.Record{
		{LSN: 1, Kind: 1, Payload: []byte("alpha")},
		{LSN: 2, Kind: 0, Payload: nil},
		{LSN: 3, Kind: 7, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameRecords, encodeRecords(recs)); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frameHeartbeat, encodeHeartbeat(Heartbeat{LastLSN: 42, UnixNano: 99})); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frameGap, encodeGap(Gap{Oldest: 17})); err != nil {
		t.Fatal(err)
	}

	typ, p, err := readFrame(&buf)
	if err != nil || typ != frameRecords {
		t.Fatalf("frame 1 = (%d, %v)", typ, err)
	}
	got, err := decodeRecords(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].LSN != 1 || string(got[0].Payload) != "alpha" || got[2].LSN != 3 || len(got[2].Payload) != 1000 {
		t.Fatalf("decoded records = %+v", got)
	}
	typ, p, err = readFrame(&buf)
	if err != nil || typ != frameHeartbeat {
		t.Fatalf("frame 2 = (%d, %v)", typ, err)
	}
	hb, err := decodeHeartbeat(p)
	if err != nil || hb.LastLSN != 42 || hb.UnixNano != 99 {
		t.Fatalf("heartbeat = %+v, %v", hb, err)
	}
	typ, p, err = readFrame(&buf)
	if err != nil || typ != frameGap {
		t.Fatalf("frame 3 = (%d, %v)", typ, err)
	}
	gap, err := decodeGap(p)
	if err != nil || gap.Oldest != 17 {
		t.Fatalf("gap = %+v, %v", gap, err)
	}
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameRecords, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[frameHeaderLen] ^= 0xFF // flip a payload byte
	if _, _, err := readFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt frame passed CRC")
	}
	// Torn frame: cut the stream mid-body.
	if _, _, err := readFrame(bytes.NewReader(buf.Bytes()[:4])); err == nil {
		t.Fatal("torn header passed")
	}
}

// TestStreamDeliversAndFollowsAppends: a client over LocalTransport
// receives existing records, then live appends, and acks its position.
func TestStreamDeliversAndFollowsAppends(t *testing.T) {
	src := newWalSource(t)
	for i := 1; i <= 3; i++ {
		if _, err := src.l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	srv := fastServer(src)
	app := &memApplier{applied: 0}
	// Pretend a bootstrap already happened at LSN 0 (valid from-scratch
	// stream) by seeding applied via a snapshot at 0.
	cl := NewClient("f1", LocalTransport{S: srv}, app)
	cl.RetryMin = time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); cl.Run(ctx) }()

	waitFor(t, "initial catch-up", func() bool { return app.AppliedLSN() == 3 })
	for i := 4; i <= 6; i++ {
		if _, err := src.l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "live records", func() bool { return app.AppliedLSN() == 6 })
	waitFor(t, "ack to reach server", func() bool {
		sts := srv.Status()
		return len(sts) == 1 && sts[0].AckLSN == 6 && sts[0].LagLSN == 0
	})
	_, recs, boots := app.snapshot()
	if len(recs) != 6 {
		t.Fatalf("applied %d records, want 6", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, []byte{byte(i + 1)}) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if boots != 1 {
		t.Fatalf("bootstraps = %d, want 1 (initial only)", boots)
	}
	cancel()
	<-done
}

// TestGapForcesResync: reclaiming segments a follower still needs
// produces a gap frame and the client re-syncs from a snapshot — never
// a silent skip.
func TestGapForcesResync(t *testing.T) {
	src := newWalSource(t)
	srv := fastServer(src)
	app := &memApplier{}
	cl := NewClient("f1", LocalTransport{S: srv}, app)
	cl.RetryMin = time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go cl.Run(ctx)

	for i := 1; i <= 2; i++ {
		if _, err := src.l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "catch-up to 2", func() bool { return app.AppliedLSN() == 2 })

	// Leader checkpoints at 6 and reclaims 1-6 while the follower's
	// stream was... somewhere else. Simulate by stopping the follower
	// first (cancel), moving the log, then restarting a fresh client at
	// the stale position.
	cancel()
	for i := 3; i <= 6; i++ {
		if _, err := src.l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.l.Append(1, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.l.DropThrough(6); err != nil {
		t.Fatal(err)
	}
	src.setSnapshotLSN(6) // checkpoint covers through 6

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done := make(chan struct{})
	go func() { defer close(done); cl.Run(ctx2) }()

	waitFor(t, "resync + catch-up", func() bool {
		applied, _, boots := app.snapshot()
		return boots >= 1 && applied == 7
	})
	applied, recs, _ := app.snapshot()
	if applied != 7 {
		t.Fatalf("applied = %d, want 7", applied)
	}
	// Post-resync the applier holds only records after the snapshot.
	if len(recs) != 1 || recs[0].LSN != 7 {
		t.Fatalf("post-resync records = %+v, want just LSN 7", recs)
	}
	st := cl.Status()
	if st.Resyncs == 0 {
		t.Fatalf("status reports no resyncs: %+v", st)
	}
	cancel2()
	<-done
}

// TestApplyDivergenceForcesResync: an apply error triggers a fresh
// bootstrap rather than continuing on a diverged replica.
func TestApplyDivergenceForcesResync(t *testing.T) {
	src := newWalSource(t)
	srv := fastServer(src)
	app := &memApplier{failOn: 2}
	cl := NewClient("f1", LocalTransport{S: srv}, app)
	cl.RetryMin = time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go cl.Run(ctx)

	// Let the initial bootstrap land at snapLSN 0 and record 1 apply
	// before arming the rest, so the divergence at LSN 2 is guaranteed
	// to ship through the stream.
	if _, err := src.l.Append(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "record 1 applied", func() bool { return app.AppliedLSN() == 1 })
	// The apply of LSN 2 fails; the resync bootstraps at snapLSN 3
	// (simulating the leader having checkpointed meanwhile) and streams
	// cleanly from there.
	src.setSnapshotLSN(3)
	for i := 2; i <= 3; i++ {
		if _, err := src.l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "resync after divergence", func() bool {
		applied, _, boots := app.snapshot()
		return boots >= 2 && applied >= 3
	})
	if st := cl.Status(); st.Resyncs == 0 {
		t.Fatalf("no resync recorded: %+v", st)
	}
	cancel()
}

// TestStreamWriteHookDropsStreamAndClientResumes: the failover fault
// hook kills the stream mid-flight; the client reconnects and resumes
// from its applied position with no loss or duplication.
func TestStreamWriteHookDropsStreamAndClientResumes(t *testing.T) {
	src := newWalSource(t)
	srv := fastServer(src)
	app := &memApplier{}
	cl := NewClient("f1", LocalTransport{S: srv}, app)
	cl.RetryMin = time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go cl.Run(ctx)

	for i := 1; i <= 2; i++ {
		if _, err := src.l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "catch-up", func() bool { return app.AppliedLSN() == 2 })

	// Kill every stream write once; the active stream dies on its next
	// frame (heartbeat or records).
	var once sync.Once
	tripped := make(chan struct{})
	SetStreamWriteHook(func(id string) error {
		var err error
		once.Do(func() {
			err = errors.New("injected stream failure")
			close(tripped)
		})
		return err
	})
	defer SetStreamWriteHook(nil)
	<-tripped

	for i := 3; i <= 5; i++ {
		if _, err := src.l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "resume after drop", func() bool { return app.AppliedLSN() == 5 })
	_, recs, boots := app.snapshot()
	if boots != 1 {
		t.Fatalf("reconnect caused %d bootstraps, want 1 (resume, not resync)", boots)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d LSN = %d (loss or duplication)", i, r.LSN)
		}
	}
	if st := cl.Status(); st.Reconnects == 0 {
		t.Fatalf("no reconnect recorded: %+v", st)
	}
	cancel()
}

// TestLagMetricsAndForget: acks drive the per-follower gauges;
// RefreshMetrics ages lag for silent followers; Forget deletes the
// series.
func TestLagMetricsAndForget(t *testing.T) {
	src := newWalSource(t)
	srv := fastServer(src)
	reg := obs.NewRegistry()
	srv.SetObs(reg)

	for i := 1; i <= 4; i++ {
		if _, err := src.l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Ack("f1", 2)
	srv.RefreshMetrics()
	lbl := obs.Labels{"follower": "f1"}
	if v := reg.Gauge("mview_repl_lag_lsn", "", lbl).Value(); v != 2 {
		t.Fatalf("lag_lsn = %v, want 2", v)
	}
	srv.Ack("f1", 4)
	srv.RefreshMetrics()
	if v := reg.Gauge("mview_repl_lag_lsn", "", lbl).Value(); v != 0 {
		t.Fatalf("lag_lsn after full ack = %v, want 0", v)
	}
	if v := reg.Gauge("mview_repl_lag_seconds", "", lbl).Value(); v != 0 {
		t.Fatalf("lag_seconds while caught up = %v, want 0", v)
	}
	sts := srv.Status()
	if len(sts) != 1 || sts[0].ID != "f1" || sts[0].AckLSN != 4 {
		t.Fatalf("status = %+v", sts)
	}

	srv.Forget("f1")
	if len(srv.Status()) != 0 {
		t.Fatal("follower survived Forget")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`follower="f1"`)) {
		t.Fatalf("forgotten follower still in exposition:\n%s", buf.String())
	}
}
