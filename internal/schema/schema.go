// Package schema defines relation schemes and database schemes for the
// mview engine: named attributes, ordered attribute lists, and the
// variable-resolution helpers needed by SPJ view definitions.
//
// The model follows Blakeley, Larson & Tompa (SIGMOD 1986): a database
// scheme is a set of relation schemes; every attribute is defined on a
// discrete, countable domain mapped to the integers.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute is the name of a column within a relation scheme.
// Attribute names are case-sensitive and must be non-empty.
type Attribute string

// Qualified returns the attribute qualified by a relation name, in the
// form "R.A". Qualified names are how view conditions refer to columns
// of specific operands of a cross product.
func (a Attribute) Qualified(rel string) string {
	return rel + "." + string(a)
}

// Scheme is an ordered list of distinct attributes describing the
// columns of a relation. The zero value is an empty scheme.
type Scheme struct {
	attrs []Attribute
	index map[Attribute]int
}

// NewScheme builds a scheme from the given attributes.
// It returns an error if any attribute is empty or duplicated.
func NewScheme(attrs ...Attribute) (*Scheme, error) {
	s := &Scheme{
		attrs: make([]Attribute, 0, len(attrs)),
		index: make(map[Attribute]int, len(attrs)),
	}
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("schema: empty attribute name")
		}
		if strings.ContainsAny(string(a), " \t\n") {
			return nil, fmt.Errorf("schema: invalid attribute name %q", a)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("schema: duplicate attribute %q", a)
		}
		s.index[a] = len(s.attrs)
		s.attrs = append(s.attrs, a)
	}
	return s, nil
}

// MustScheme is like NewScheme but panics on error. It is intended for
// tests, examples, and statically known schemes.
func MustScheme(attrs ...Attribute) *Scheme {
	s, err := NewScheme(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes in the scheme.
func (s *Scheme) Arity() int { return len(s.attrs) }

// Attributes returns the attributes in declaration order.
// The caller must not modify the returned slice.
func (s *Scheme) Attributes() []Attribute { return s.attrs }

// Attr returns the attribute at position i.
func (s *Scheme) Attr(i int) Attribute { return s.attrs[i] }

// Pos returns the position of attribute a and whether it is present.
func (s *Scheme) Pos(a Attribute) (int, bool) {
	i, ok := s.index[a]
	return i, ok
}

// Has reports whether the scheme contains attribute a.
func (s *Scheme) Has(a Attribute) bool {
	_, ok := s.index[a]
	return ok
}

// Positions maps each attribute in attrs to its position in s.
// It returns an error naming the first attribute not in the scheme.
func (s *Scheme) Positions(attrs []Attribute) ([]int, error) {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := s.index[a]
		if !ok {
			return nil, fmt.Errorf("schema: attribute %q not in scheme %s", a, s)
		}
		pos[i] = p
	}
	return pos, nil
}

// Common returns the attributes shared by s and t, in s's order.
// It is the join set of a natural join between the two schemes.
func (s *Scheme) Common(t *Scheme) []Attribute {
	var common []Attribute
	for _, a := range s.attrs {
		if t.Has(a) {
			common = append(common, a)
		}
	}
	return common
}

// Equal reports whether the two schemes have identical attributes in
// identical order.
func (s *Scheme) Equal(t *Scheme) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for i, a := range s.attrs {
		if t.attrs[i] != a {
			return false
		}
	}
	return true
}

// Project returns a new scheme containing only attrs, in the given
// order. Every attribute must belong to s.
func (s *Scheme) Project(attrs []Attribute) (*Scheme, error) {
	for _, a := range attrs {
		if !s.Has(a) {
			return nil, fmt.Errorf("schema: cannot project on %q: not in scheme %s", a, s)
		}
	}
	return NewScheme(attrs...)
}

// Concat returns the scheme of a cross product: s's attributes followed
// by t's. It fails if the schemes share an attribute name; callers that
// need overlapping names must qualify them first (see Qualify).
func (s *Scheme) Concat(t *Scheme) (*Scheme, error) {
	out := make([]Attribute, 0, len(s.attrs)+len(t.attrs))
	out = append(out, s.attrs...)
	out = append(out, t.attrs...)
	return NewScheme(out...)
}

// Qualify returns a copy of the scheme with every attribute renamed to
// "rel.A". It never fails: qualification cannot introduce duplicates
// when the input scheme is valid.
func (s *Scheme) Qualify(rel string) *Scheme {
	out := make([]Attribute, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = Attribute(a.Qualified(rel))
	}
	q, err := NewScheme(out...)
	if err != nil {
		// Unreachable for a valid receiver: qualification preserves
		// distinctness and non-emptiness.
		panic(err)
	}
	return q
}

// String renders the scheme as "(A, B, C)".
func (s *Scheme) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = string(a)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// RelScheme is a named relation scheme within a database scheme.
type RelScheme struct {
	Name   string
	Scheme *Scheme
	// Key optionally lists a candidate key (a subset of the scheme's
	// attributes). A nil Key means the full scheme is the key, i.e.
	// the relation is a pure set of tuples, which is the paper's model.
	Key []Attribute
}

// Validate checks internal consistency of the relation scheme.
func (r *RelScheme) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("schema: relation with empty name")
	}
	if r.Scheme == nil || r.Scheme.Arity() == 0 {
		return fmt.Errorf("schema: relation %q has no attributes", r.Name)
	}
	for _, k := range r.Key {
		if !r.Scheme.Has(k) {
			return fmt.Errorf("schema: relation %q key attribute %q not in scheme", r.Name, k)
		}
	}
	return nil
}

// Database is a database scheme: a set of named relation schemes.
type Database struct {
	rels  map[string]*RelScheme
	order []string
}

// NewDatabase builds a database scheme from relation schemes.
func NewDatabase(rels ...*RelScheme) (*Database, error) {
	db := &Database{rels: make(map[string]*RelScheme, len(rels))}
	for _, r := range rels {
		if err := db.Add(r); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Add inserts one relation scheme, rejecting duplicates and invalid
// schemes.
func (db *Database) Add(r *RelScheme) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := db.rels[r.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %q", r.Name)
	}
	db.rels[r.Name] = r
	db.order = append(db.order, r.Name)
	return nil
}

// Clone returns a copy of the database scheme sharing the (immutable)
// relation schemes. DDL copies-on-write through Clone so previously
// published read snapshots keep an unchanging scheme.
func (db *Database) Clone() *Database {
	out := &Database{
		rels:  make(map[string]*RelScheme, len(db.rels)),
		order: append([]string(nil), db.order...),
	}
	for name, r := range db.rels {
		out.rels[name] = r
	}
	return out
}

// Rel returns the relation scheme with the given name.
func (db *Database) Rel(name string) (*RelScheme, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Names returns the relation names in insertion order.
func (db *Database) Names() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// SortedNames returns the relation names in lexicographic order.
func (db *Database) SortedNames() []string {
	out := db.Names()
	sort.Strings(out)
	return out
}

// Len returns the number of relations in the database scheme.
func (db *Database) Len() int { return len(db.order) }
