package schema

import (
	"strings"
	"testing"
)

func TestNewSchemeValid(t *testing.T) {
	s, err := NewScheme("A", "B", "C")
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	if got := s.Arity(); got != 3 {
		t.Errorf("Arity = %d, want 3", got)
	}
	if got := s.String(); got != "(A, B, C)" {
		t.Errorf("String = %q", got)
	}
}

func TestNewSchemeRejectsDuplicates(t *testing.T) {
	if _, err := NewScheme("A", "B", "A"); err == nil {
		t.Fatal("want error for duplicate attribute")
	}
}

func TestNewSchemeRejectsEmptyAndInvalid(t *testing.T) {
	cases := [][]Attribute{
		{""},
		{"A", ""},
		{"A B"},
		{"A\tB"},
	}
	for _, attrs := range cases {
		if _, err := NewScheme(attrs...); err == nil {
			t.Errorf("NewScheme(%v): want error", attrs)
		}
	}
}

func TestMustSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustScheme did not panic on duplicate")
		}
	}()
	MustScheme("A", "A")
}

func TestPosAndHas(t *testing.T) {
	s := MustScheme("A", "B")
	if p, ok := s.Pos("B"); !ok || p != 1 {
		t.Errorf("Pos(B) = %d,%v want 1,true", p, ok)
	}
	if _, ok := s.Pos("Z"); ok {
		t.Error("Pos(Z) should be absent")
	}
	if !s.Has("A") || s.Has("Z") {
		t.Error("Has misbehaves")
	}
}

func TestPositions(t *testing.T) {
	s := MustScheme("A", "B", "C")
	pos, err := s.Positions([]Attribute{"C", "A"})
	if err != nil {
		t.Fatalf("Positions: %v", err)
	}
	if pos[0] != 2 || pos[1] != 0 {
		t.Errorf("Positions = %v, want [2 0]", pos)
	}
	if _, err := s.Positions([]Attribute{"Z"}); err == nil {
		t.Error("want error for unknown attribute")
	}
}

func TestCommon(t *testing.T) {
	r := MustScheme("A", "B")
	s := MustScheme("B", "C")
	common := r.Common(s)
	if len(common) != 1 || common[0] != "B" {
		t.Errorf("Common = %v, want [B]", common)
	}
	if got := r.Common(MustScheme("X", "Y")); got != nil {
		t.Errorf("disjoint Common = %v, want nil", got)
	}
}

func TestEqual(t *testing.T) {
	a := MustScheme("A", "B")
	b := MustScheme("A", "B")
	c := MustScheme("B", "A")
	if !a.Equal(b) {
		t.Error("identical schemes should be Equal")
	}
	if a.Equal(c) {
		t.Error("order matters: (A,B) != (B,A)")
	}
	if a.Equal(MustScheme("A")) {
		t.Error("different arity should not be Equal")
	}
}

func TestProject(t *testing.T) {
	s := MustScheme("A", "B", "C")
	p, err := s.Project([]Attribute{"C", "A"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.String() != "(C, A)" {
		t.Errorf("Project = %s", p)
	}
	if _, err := s.Project([]Attribute{"Z"}); err == nil {
		t.Error("want error projecting unknown attribute")
	}
}

func TestConcatAndQualify(t *testing.T) {
	r := MustScheme("A", "B")
	s := MustScheme("B", "C")
	if _, err := r.Concat(s); err == nil {
		t.Error("Concat with shared attribute should fail")
	}
	rq := r.Qualify("R")
	sq := s.Qualify("S")
	c, err := rq.Concat(sq)
	if err != nil {
		t.Fatalf("Concat qualified: %v", err)
	}
	want := "(R.A, R.B, S.B, S.C)"
	if c.String() != want {
		t.Errorf("Concat = %s, want %s", c, want)
	}
}

func TestQualified(t *testing.T) {
	if got := Attribute("A").Qualified("R"); got != "R.A" {
		t.Errorf("Qualified = %q", got)
	}
}

func TestRelSchemeValidate(t *testing.T) {
	good := &RelScheme{Name: "R", Scheme: MustScheme("A", "B"), Key: []Attribute{"A"}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
	bad := []*RelScheme{
		{Name: "", Scheme: MustScheme("A")},
		{Name: "R", Scheme: nil},
		{Name: "R", Scheme: MustScheme("A"), Key: []Attribute{"Z"}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestDatabase(t *testing.T) {
	db, err := NewDatabase(
		&RelScheme{Name: "R", Scheme: MustScheme("A", "B")},
		&RelScheme{Name: "S", Scheme: MustScheme("B", "C")},
	)
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
	if _, ok := db.Rel("R"); !ok {
		t.Error("Rel(R) missing")
	}
	if _, ok := db.Rel("Z"); ok {
		t.Error("Rel(Z) should be absent")
	}
	if got := strings.Join(db.Names(), ","); got != "R,S" {
		t.Errorf("Names = %s", got)
	}
	if err := db.Add(&RelScheme{Name: "R", Scheme: MustScheme("X")}); err == nil {
		t.Error("duplicate Add should fail")
	}
}

func TestDatabaseSortedNames(t *testing.T) {
	db, _ := NewDatabase(
		&RelScheme{Name: "Z", Scheme: MustScheme("A")},
		&RelScheme{Name: "M", Scheme: MustScheme("B")},
	)
	got := db.SortedNames()
	if got[0] != "M" || got[1] != "Z" {
		t.Errorf("SortedNames = %v", got)
	}
	// Names must stay in insertion order.
	names := db.Names()
	if names[0] != "Z" {
		t.Errorf("Names = %v, insertion order broken", names)
	}
}
