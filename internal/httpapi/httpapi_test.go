package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mview"
)

func do(t *testing.T, h http.Handler, method, path, body string) (int, map[string]any) {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code, out
}

func setup(t *testing.T) *Handler {
	t.Helper()
	h := New()
	if code, _ := do(t, h, "POST", "/relations", `{"name":"r","attrs":["A","B"]}`); code != http.StatusCreated {
		t.Fatalf("create r: %d", code)
	}
	if code, _ := do(t, h, "POST", "/relations", `{"name":"s","attrs":["C","D"]}`); code != http.StatusCreated {
		t.Fatalf("create s: %d", code)
	}
	body := `{"name":"v","from":["r","s"],"where":"A < 10 && C > 5 && B = C","select":["A","D"],"options":["filtered"]}`
	if code, resp := do(t, h, "POST", "/views", body); code != http.StatusCreated {
		t.Fatalf("create v: %d %v", code, resp)
	}
	return h
}

func TestFullFlow(t *testing.T) {
	h := setup(t)
	code, resp := do(t, h, "POST", "/exec",
		`{"ops":[{"op":"insert","rel":"r","values":[9,10]},{"op":"insert","rel":"s","values":[10,20]}]}`)
	if code != http.StatusOK {
		t.Fatalf("exec: %d %v", code, resp)
	}
	if resp["Inserted"].(float64) != 2 {
		t.Errorf("exec resp = %v", resp)
	}

	code, resp = do(t, h, "GET", "/views/v", "")
	if code != http.StatusOK {
		t.Fatalf("get view: %d", code)
	}
	if resp["count"].(float64) != 1 {
		t.Errorf("view = %v", resp)
	}
	schema := resp["schema"].([]any)
	if schema[0] != "r.A" || schema[1] != "s.D" {
		t.Errorf("schema = %v", schema)
	}

	code, resp = do(t, h, "GET", "/views/v/relevant?rel=r&values=11,10", "")
	if code != http.StatusOK || resp["relevant"] != false {
		t.Errorf("relevant(11,10) = %d %v", code, resp)
	}
	code, resp = do(t, h, "GET", "/views/v/relevant?rel=r&values=9,10", "")
	if code != http.StatusOK || resp["relevant"] != true {
		t.Errorf("relevant(9,10) = %d %v", code, resp)
	}

	code, resp = do(t, h, "GET", "/views/v/stats", "")
	if code != http.StatusOK || resp["Refreshes"].(float64) < 1 {
		t.Errorf("stats = %d %v", code, resp)
	}

	code, resp = do(t, h, "GET", "/views/v/explain", "")
	if code != http.StatusOK || !strings.Contains(resp["explain"].(string), "view v") {
		t.Errorf("explain = %d %v", code, resp)
	}
	if code, _ := do(t, h, "GET", "/views/zzz/explain", ""); code != http.StatusNotFound {
		t.Errorf("explain unknown = %d", code)
	}

	code, resp = do(t, h, "GET", "/relations/r", "")
	if code != http.StatusOK || resp["count"].(float64) != 1 {
		t.Errorf("relation r = %d %v", code, resp)
	}

	code, resp = do(t, h, "GET", "/catalog", "")
	if code != http.StatusOK {
		t.Fatalf("catalog: %d", code)
	}
	if len(resp["relations"].([]any)) != 2 || len(resp["views"].([]any)) != 1 {
		t.Errorf("catalog = %v", resp)
	}
}

func TestDeferredRefresh(t *testing.T) {
	h := New()
	do(t, h, "POST", "/relations", `{"name":"r","attrs":["A"]}`)
	do(t, h, "POST", "/views", `{"name":"v","from":["r"],"where":"A > 0","options":["deferred"]}`)
	do(t, h, "POST", "/exec", `{"ops":[{"op":"insert","rel":"r","values":[5]}]}`)
	_, resp := do(t, h, "GET", "/views/v", "")
	if resp["count"].(float64) != 0 {
		t.Errorf("deferred view should be stale: %v", resp)
	}
	code, _ := do(t, h, "POST", "/views/v/refresh", "")
	if code != http.StatusOK {
		t.Fatalf("refresh: %d", code)
	}
	_, resp = do(t, h, "GET", "/views/v", "")
	if resp["count"].(float64) != 1 {
		t.Errorf("after refresh: %v", resp)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	// In-memory handler: 409.
	h := New()
	if code, _ := do(t, h, "POST", "/checkpoint", ""); code != http.StatusConflict {
		t.Errorf("in-memory checkpoint = %d", code)
	}
	// Durable handler: 200.
	db, err := mview.OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	hd := NewWith(db)
	do(t, hd, "POST", "/relations", `{"name":"r","attrs":["A"]}`)
	do(t, hd, "POST", "/exec", `{"ops":[{"op":"insert","rel":"r","values":[1]}]}`)
	if code, resp := do(t, hd, "POST", "/checkpoint", ""); code != http.StatusOK {
		t.Errorf("durable checkpoint = %d %v", code, resp)
	}
}

func TestErrors(t *testing.T) {
	h := setup(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/relations", `{"name":"r","attrs":["A"]}`, http.StatusBadRequest}, // duplicate
		{"POST", "/relations", `not json`, http.StatusBadRequest},
		{"POST", "/relations", `{"name":"x","attrs":["A"],"bogus":1}`, http.StatusBadRequest},
		{"POST", "/views", `{"name":"v2","from":["zzz"]}`, http.StatusBadRequest},
		{"POST", "/views", `{"name":"v2","from":["r"],"options":["bogus"]}`, http.StatusBadRequest},
		{"GET", "/views/zzz", "", http.StatusNotFound},
		{"GET", "/views/zzz/stats", "", http.StatusNotFound},
		{"POST", "/views/zzz/refresh", "", http.StatusNotFound},
		{"GET", "/relations/zzz", "", http.StatusNotFound},
		{"GET", "/views/v/relevant", "", http.StatusBadRequest},
		{"GET", "/views/v/relevant?rel=r&values=x", "", http.StatusBadRequest},
		{"GET", "/views/v/relevant?rel=zzz&values=1,2", "", http.StatusBadRequest},
		{"POST", "/exec", `{"ops":[{"op":"upsert","rel":"r","values":[1]}]}`, http.StatusBadRequest},
		{"POST", "/exec", `{"ops":[{"op":"insert","rel":"zzz","values":[1]}]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		code, resp := do(t, h, c.method, c.path, c.body)
		if code != c.want {
			t.Errorf("%s %s: code = %d, want %d (%v)", c.method, c.path, code, c.want, resp)
		}
		if resp["error"] == "" {
			t.Errorf("%s %s: missing error body", c.method, c.path)
		}
	}
}

// TestExecRidesGroupCommit runs concurrent POST /exec requests against
// a database with the group-commit scheduler enabled: every request
// must be answered individually (its own TxInfo), the view must end up
// with every row, and /debug/stats must report the scheduler active.
func TestExecRidesGroupCommit(t *testing.T) {
	db := mview.Open()
	db.EnableGroupCommit(8, 2*time.Millisecond)
	defer db.DisableGroupCommit()
	h := NewWith(db)
	if code, _ := do(t, h, "POST", "/relations", `{"name":"r","attrs":["A","B"]}`); code != http.StatusCreated {
		t.Fatal("create r")
	}
	if code, _ := do(t, h, "POST", "/views", `{"name":"v","from":["r"],"where":"B = 10"}`); code != http.StatusCreated {
		t.Fatal("create v")
	}

	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"ops":[{"op":"insert","rel":"r","values":[%d,10]}]}`, i)
			code, resp := do(t, h, "POST", "/exec", body)
			if code != http.StatusOK {
				t.Errorf("writer %d: code %d %v", i, code, resp)
				return
			}
			if resp["Inserted"].(float64) != 1 {
				t.Errorf("writer %d: resp %v", i, resp)
			}
		}(i)
	}
	wg.Wait()

	code, resp := do(t, h, "GET", "/views/v", "")
	if code != http.StatusOK || resp["count"].(float64) != writers {
		t.Fatalf("view after group commits: %d %v", code, resp)
	}
	code, resp = do(t, h, "GET", "/debug/stats", "")
	if code != http.StatusOK || resp["group_commit"] != true {
		t.Fatalf("debug/stats: %d group_commit=%v", code, resp["group_commit"])
	}
}
