package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mview"
)

func raw(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestV1AndLegacyRoutesIdentical drives every read route through both
// its canonical /v1 path and its legacy alias: the JSON bodies must be
// byte-identical, the legacy response must carry the deprecation
// headers, and the canonical one must not.
func TestV1AndLegacyRoutesIdentical(t *testing.T) {
	h := setup(t) // r(A,B), s(C,D), view v — created via legacy routes
	if code, _ := do(t, h, "POST", "/v1/exec",
		`{"ops":[{"op":"insert","rel":"r","values":[9,10]},{"op":"insert","rel":"s","values":[10,20]}]}`); code != http.StatusOK {
		t.Fatalf("v1 exec: %d", code)
	}

	gets := []struct {
		path string
		code int
	}{
		{"/relations/r", http.StatusOK},
		{"/views/v", http.StatusOK},
		{"/views/v/stats", http.StatusOK},
		{"/views/v/explain", http.StatusOK},
		{"/views/v/relevant?rel=r&values=9,10", http.StatusOK},
		{"/catalog", http.StatusOK},
		{"/relations/nope", http.StatusNotFound},
	}
	for _, g := range gets {
		legacy := raw(t, h, "GET", g.path, "")
		v1 := raw(t, h, "GET", "/v1"+g.path, "")
		if legacy.Code != g.code || v1.Code != g.code {
			t.Errorf("%s: codes legacy=%d v1=%d, want %d", g.path, legacy.Code, v1.Code, g.code)
		}
		if legacy.Body.String() != v1.Body.String() {
			t.Errorf("%s: bodies diverge:\n legacy: %s\n v1:     %s", g.path, legacy.Body, v1.Body)
		}
		if legacy.Header().Get("Deprecation") != "true" {
			t.Errorf("%s: legacy route lacks Deprecation header", g.path)
		}
		wantLink := `</v1` + strings.SplitN(g.path, "?", 2)[0] + `>; rel="successor-version"`
		if got := legacy.Header().Get("Link"); got != wantLink {
			t.Errorf("%s: Link = %q, want %q", g.path, got, wantLink)
		}
		if v1.Header().Get("Deprecation") != "" {
			t.Errorf("%s: canonical /v1 route carries Deprecation header", g.path)
		}
	}
}

// TestV1WriteRoutes pins the canonical write paths end to end: DDL,
// exec, refresh all work under /v1, and the legacy POST /exec alias
// still commits (with the deprecation header).
func TestV1WriteRoutes(t *testing.T) {
	h := New()
	if code, _ := do(t, h, "POST", "/v1/relations", `{"name":"r","attrs":["A","B"]}`); code != http.StatusCreated {
		t.Fatalf("v1 create relation: %d", code)
	}
	body := `{"name":"v","from":["r"],"where":"A < 10","options":["deferred"]}`
	if code, _ := do(t, h, "POST", "/v1/views", body); code != http.StatusCreated {
		t.Fatalf("v1 create view: %d", code)
	}
	if code, _ := do(t, h, "POST", "/v1/exec", `{"ops":[{"op":"insert","rel":"r","values":[1,2]}]}`); code != http.StatusOK {
		t.Fatalf("v1 exec: %d", code)
	}
	rec := raw(t, h, "POST", "/exec", `{"ops":[{"op":"insert","rel":"r","values":[3,4]}]}`)
	if rec.Code != http.StatusOK || rec.Header().Get("Deprecation") != "true" {
		t.Fatalf("legacy exec: code %d, Deprecation %q", rec.Code, rec.Header().Get("Deprecation"))
	}
	if code, _ := do(t, h, "POST", "/v1/views/v/refresh", ""); code != http.StatusOK {
		t.Fatal("v1 refresh failed")
	}
	code, resp := do(t, h, "GET", "/v1/views/v", "")
	if code != http.StatusOK || resp["count"].(float64) != 2 {
		t.Errorf("v1 view read = %d %v, want both committed rows", code, resp)
	}
}

// TestDebugStatsReportsShards pins the operational endpoint additions:
// shards in /debug/stats, and no /v1 alias or deprecation for it.
func TestDebugStatsReportsShards(t *testing.T) {
	h := NewWith(mviewOpenSharded())
	code, resp := do(t, h, "GET", "/debug/stats", "")
	if code != http.StatusOK {
		t.Fatalf("debug/stats: %d", code)
	}
	if resp["shards"].(float64) != 4 {
		t.Errorf("shards = %v, want 4", resp["shards"])
	}
	if rec := raw(t, h, "GET", "/debug/stats", ""); rec.Header().Get("Deprecation") != "" {
		t.Error("/debug/stats must not be deprecated")
	}
	if rec := raw(t, h, "GET", "/v1/debug/stats", ""); rec.Code != http.StatusNotFound {
		t.Errorf("/v1/debug/stats = %d, want 404 (operational endpoints stay unversioned)", rec.Code)
	}
}

func mviewOpenSharded() *mview.DB { return mview.Open(mview.WithShards(4)) }
