package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mview"
	"mview/internal/obs"
)

// doJSON issues one request against the handler and fails the test on
// an unexpected status.
func doJSON(t *testing.T, h http.Handler, method, path, body string, wantStatus int) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s = %d, want %d: %s", method, path, rec.Code, wantStatus, rec.Body.String())
	}
	return rec
}

// seedTraffic creates a relation, two views (immediate differential
// with the §4 filter, deferred), and runs a few transactions.
func seedTraffic(t *testing.T, h http.Handler) {
	t.Helper()
	doJSON(t, h, "POST", "/relations", `{"name":"r","attrs":["A","B"]}`, http.StatusCreated)
	doJSON(t, h, "POST", "/views", `{"name":"small","from":["r"],"where":"A < 10","options":["filtered"]}`, http.StatusCreated)
	doJSON(t, h, "POST", "/views", `{"name":"lazy","from":["r"],"where":"B > 0","options":["deferred"]}`, http.StatusCreated)
	doJSON(t, h, "POST", "/exec", `{"ops":[{"op":"insert","rel":"r","values":[1,2]}]}`, http.StatusOK)
	doJSON(t, h, "POST", "/exec", `{"ops":[{"op":"insert","rel":"r","values":[50,3]}]}`, http.StatusOK)
	doJSON(t, h, "POST", "/views/lazy/refresh", "", http.StatusOK)
}

func TestMetricsEndpointExposition(t *testing.T) {
	h := New()
	seedTraffic(t, h)

	rec := doJSON(t, h, "GET", "/metrics", "", http.StatusOK)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		// Engine-wide commit metrics.
		"# TYPE mview_commits_total counter",
		"mview_commits_total 2",
		"# TYPE mview_commit_seconds histogram",
		"mview_commit_seconds_count 2",
		// Per-view refresh latency split by decision.
		"# TYPE mview_view_refresh_seconds histogram",
		`mview_view_refresh_seconds_count{decision="differential",view="small"} 2`,
		`mview_view_refresh_seconds_count{decision="differential",view="lazy"} 1`,
		// §4 filter counters: (50,3) is provably irrelevant to A < 10.
		`mview_filter_discarded_total{view="small"} 1`,
		`mview_filter_passed_total{view="small"} 1`,
		// Deferred backlog gauge, drained by the refresh.
		`mview_view_pending_tx{view="lazy"} 0`,
		// HTTP middleware.
		"# TYPE mview_http_requests_total counter",
		`mview_http_requests_total{code="200",endpoint="POST /exec"} 2`,
		`mview_http_request_seconds_count{endpoint="POST /exec"} 2`,
		"# TYPE mview_http_in_flight gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

func TestDebugStatsShape(t *testing.T) {
	h := New()
	seedTraffic(t, h)

	rec := doJSON(t, h, "GET", "/debug/stats", "", http.StatusOK)
	var payload struct {
		UptimeSeconds float64                `json:"uptime_seconds"`
		Metrics       []obs.SeriesSnapshot   `json:"metrics"`
		Views         map[string]mview.Stats `json:"views"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("decoding /debug/stats: %v\n%s", err, rec.Body.String())
	}
	if payload.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %v", payload.UptimeSeconds)
	}
	if len(payload.Views) != 2 {
		t.Errorf("views = %v, want small and lazy", payload.Views)
	}
	if st := payload.Views["small"]; st.Refreshes != 2 || st.FilteredOut != 1 {
		t.Errorf("small stats = %+v, want 2 refreshes and 1 filtered", st)
	}
	byName := make(map[string]obs.SeriesSnapshot)
	for _, s := range payload.Metrics {
		key := s.Name
		for _, lk := range []string{"view", "endpoint"} {
			if v, ok := s.Labels[lk]; ok {
				key += "|" + v
			}
		}
		byName[key] = s
	}
	if s, ok := byName["mview_commits_total"]; !ok || s.Type != "counter" || s.Value != 2 {
		t.Errorf("mview_commits_total snapshot = %+v", s)
	}
	cs, ok := byName["mview_commit_seconds"]
	if !ok || cs.Type != "histogram" || cs.Count != 2 || len(cs.Buckets) == 0 {
		t.Errorf("mview_commit_seconds snapshot = %+v", cs)
	}
	if len(cs.Buckets) > 0 && cs.Buckets[len(cs.Buckets)-1].LE != "+Inf" {
		t.Errorf("last bucket = %+v, want +Inf", cs.Buckets[len(cs.Buckets)-1])
	}
}

func TestSharedRegistryAndTracer(t *testing.T) {
	reg := obs.NewRegistry()
	tr := &obs.CollectingTracer{}
	db := mview.Open()
	db.Instrument(reg, tr)
	h := NewWith(db, WithObs(reg, tr))
	seedTraffic(t, h)

	// HTTP and engine metrics land in the one shared registry.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mview_commits_total 2", `endpoint="POST /exec"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("shared registry missing %q", want)
		}
	}
	// The tracer saw both http.request and db.commit spans.
	seen := map[string]bool{}
	for _, s := range tr.Spans {
		seen[s.Name] = true
	}
	for _, want := range []string{"http.request", "db.commit", "db.refresh", "diffeval.compute"} {
		if !seen[want] {
			t.Errorf("tracer missing span %q (saw %v)", want, seen)
		}
	}
}

func TestWithoutObsDisablesSurface(t *testing.T) {
	h := New(WithoutObs())
	doJSON(t, h, "POST", "/relations", `{"name":"r","attrs":["A"]}`, http.StatusCreated)
	doJSON(t, h, "GET", "/metrics", "", http.StatusNotFound)
	doJSON(t, h, "GET", "/debug/stats", "", http.StatusNotFound)
}
