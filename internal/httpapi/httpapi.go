// Package httpapi exposes the mview engine over a small JSON/HTTP
// API, used by cmd/mviewd. One handler serves one database.
//
// The canonical routes live under the /v1 prefix:
//
//	POST /v1/relations              {"name":"r","attrs":["A","B"]}
//	GET  /v1/relations/{name}       base relation contents
//	POST /v1/views                  {"name":"v","from":["r","s"],"where":"...","select":["A"],"options":["deferred"]}
//	GET  /v1/views/{name}           view contents (with counters, policy, staleness)
//	GET  /v1/views/{name}/stats     maintenance statistics
//	GET  /v1/views/{name}/explain   definition and maintenance plan
//	GET  /v1/views/{name}/watch     change stream (SSE; the ready event carries the current rows)
//	POST /v1/views/{name}/refresh   snapshot refresh (§6)
//	GET  /v1/views/{name}/policy    refresh policy + current staleness
//	PUT  /v1/views/{name}/policy    {"policy":"maxstale=500ms"} → change it at runtime
//	GET  /v1/views/{name}/relevant  ?rel=r&values=9,10 → §4 verdict
//	POST /v1/exec                   {"ops":[{"op":"insert","rel":"r","values":[1,2]}, ...]}
//	GET  /v1/catalog                relation and view names
//	POST /v1/checkpoint             durable mode: snapshot + truncate the commit log
//	GET  /v1/views/{name}/analyze   explain + measured timings of the last maintenance
//	GET  /v1/debug/traces           flight-recorder summaries (WithFlightRecorder)
//	GET  /v1/debug/traces/{id}      one full trace: hierarchical spans + critical path
//	GET  /v1/replication/status     leader LSN + per-follower ack/lag (WithReplication)
//	GET  /v1/replication/snapshot   bootstrap snapshot stream for followers
//	GET  /v1/replication/stream     ?id=f1&from=LSN → framed WAL record stream
//	POST /v1/replication/ack        ?id=f1&lsn=LSN → follower applied-position report
//	GET  /metrics                   Prometheus text exposition of all registered metrics
//	GET  /debug/stats               JSON snapshot: uptime, every metric series, per-view stats,
//	                                critical-path attribution, per-view staleness and policies
//
// Every seed-era API route is also served at its historical
// unversioned path (POST /exec, GET /views/{name}, …) with
// byte-identical responses plus an RFC 9745 `Deprecation: true`
// header and a `Link: </v1/...>; rel="successor-version"` pointing at
// the canonical route. Routes added after versioning (the analyze and
// debug/traces family) exist only under /v1 — no alias to deprecate.
// /metrics and /debug/stats are operational endpoints, not API: they
// stay unversioned by Prometheus convention and carry no deprecation.
//
// POST /exec honors request cancellation: a client that disconnects
// while its transaction waits in a commit group abandons the wait and
// releases the slot (mview.ExecContext semantics).
//
// # Observability
//
// Unless disabled (WithoutObs), the handler owns a metrics registry —
// its own by default, or a shared one via WithObs — instruments the
// database with it (DB.Instrument), and wraps every endpoint in
// middleware recording per-endpoint counters and latencies:
//
//	mview_http_requests_total{endpoint,code}   requests by route and status
//	mview_http_request_seconds{endpoint}       latency histogram by route
//	mview_http_in_flight                       gauge of running requests
//
// Engine metrics use a `view` label and, for refresh latency, a
// `decision` label naming what ran and who chose it (differential,
// recompute, adaptive_differential, adaptive_recompute). GET /metrics
// serves the registry in Prometheus text format; GET /debug/stats
// serves the same data as JSON plus per-view maintenance statistics.
// A tracer passed via WithObs (typically an obs.SlowLogger, wired to
// mviewd's -slowlog flag) receives an `http.request` span per call,
// so slow requests and slow refreshes land in one structured log.
//
// # Group commit
//
// When the database runs with group commit (mviewd -group-commit),
// concurrent POST /exec requests coalesce into commit groups — one
// commit-log fsync, one composed maintenance pass, one snapshot
// publish — while each request is answered with its own TxInfo and
// error. SSE watch streams keep per-transaction granularity: every
// member of a group that changes a watched view produces its own
// change event (a subscribed view pinned to recompute is the one
// exception — it notifies once per group, with the group's combined
// diff). GET /debug/stats reports whether group commit is active
// ("group_commit") alongside the mview_group_commit_size,
// mview_group_wait_seconds, and mview_wal_fsyncs_total series.
//
// # Replication
//
// A leader passes its replication server (DB.ReplicationServer) via
// WithReplication to expose the /v1/replication routes above; /metrics
// then carries the per-follower mview_repl_lag_lsn and
// mview_repl_lag_seconds gauges (refreshed at scrape time), and
// /debug/stats grows a "replication" section. A handler over a
// follower database (mview.OpenFollower) serves the same read routes
// from the replica's local snapshots; its write routes answer 403 with
// the read-only error, and /debug/stats reports the follower's own
// applied position and lag under "replication_client".
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mview"
	"mview/internal/obs"
	"mview/internal/repl"
)

// Handler serves the API for one database.
type Handler struct {
	db    *mview.DB
	mux   *http.ServeMux
	start time.Time

	// Observability; reg is nil only under WithoutObs.
	reg      *obs.Registry
	tr       obs.Tracer
	fr       *obs.FlightRecorder
	inflight *obs.Gauge
	noObs    bool
	ownObs   bool // registry defaulted here → this handler instruments the DB

	// Leader-side replication server (WithReplication); nil otherwise.
	repl *repl.Server
}

// Option configures a Handler.
type Option func(*Handler)

// WithObs makes the handler record into reg and emit request spans to
// tr (either may be nil). The handler instruments the database with
// the same pair unless the caller already did.
func WithObs(reg *obs.Registry, tr obs.Tracer) Option {
	return func(h *Handler) { h.reg, h.tr = reg, tr }
}

// WithoutObs disables instrumentation entirely: no middleware
// recording, and /metrics and /debug/stats answer 404.
func WithoutObs() Option {
	return func(h *Handler) { h.noObs = true }
}

// WithReplication exposes the leader's replication server on the
// /v1/replication routes: follower bootstrap snapshots, the framed WAL
// record stream, position acknowledgements, and a status view. The
// handler attaches its metrics registry to the server, so per-follower
// lag gauges appear on /metrics without further wiring.
func WithReplication(srv *repl.Server) Option {
	return func(h *Handler) { h.repl = srv }
}

// WithFlightRecorder lets /v1/debug/traces serve fr's contents. The
// recorder must also be wired into the database's tracer (typically as
// one member of the obs.MultiTracer passed to WithObs or Instrument) —
// this option only tells the handler where to read traces from.
func WithFlightRecorder(fr *obs.FlightRecorder) Option {
	return func(h *Handler) { h.fr = fr }
}

// New returns a handler over a fresh database.
func New(opts ...Option) *Handler { return NewWith(mview.Open(), opts...) }

// NewWith returns a handler over an existing database.
func NewWith(db *mview.DB, opts ...Option) *Handler {
	h := &Handler{db: db, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range opts {
		o(h)
	}
	if h.noObs {
		h.reg, h.tr = nil, nil
	} else if h.reg == nil {
		if h.reg = db.Metrics(); h.reg == nil {
			h.reg = obs.NewRegistry()
		}
		h.ownObs = true
	}
	if h.reg != nil {
		h.inflight = h.reg.Gauge("mview_http_in_flight", "HTTP requests currently being served.", nil)
		if db.Metrics() == nil {
			db.Instrument(h.reg, h.tr)
		}
	}
	// Each API route is registered twice: canonically under /v1, and at
	// its historical unversioned path as a deprecated alias. /metrics
	// and /debug/stats are operational endpoints and stay unversioned.
	routes := []struct {
		method, path string
		fn           http.HandlerFunc
	}{
		{"POST", "/relations", h.createRelation},
		{"GET", "/relations/{name}", h.getRelation},
		{"POST", "/views", h.createView},
		{"GET", "/views/{name}", h.getView},
		{"GET", "/views/{name}/stats", h.getStats},
		{"GET", "/views/{name}/explain", h.explain},
		{"GET", "/views/{name}/watch", h.watch},
		{"POST", "/views/{name}/refresh", h.refresh},
		{"GET", "/views/{name}/relevant", h.relevant},
		{"POST", "/exec", h.exec},
		{"GET", "/catalog", h.catalog},
		{"POST", "/checkpoint", h.checkpoint},
	}
	for _, rt := range routes {
		h.handle(rt.method+" /v1"+rt.path, rt.fn)
		h.handle(rt.method+" "+rt.path, deprecatedAlias(rt.fn))
	}
	// Post-versioning routes: canonical /v1 only, no legacy alias.
	h.handle("GET /v1/views/{name}/analyze", h.explainAnalyze)
	h.handle("GET /v1/views/{name}/policy", h.getPolicy)
	h.handle("PUT /v1/views/{name}/policy", h.putPolicy)
	h.handle("GET /v1/debug/traces", h.listTraces)
	h.handle("GET /v1/debug/traces/{id}", h.getTrace)
	if h.repl != nil {
		if h.reg != nil {
			h.repl.SetObs(h.reg)
		}
		h.handle("GET /v1/replication/status", h.replStatus)
		h.handle("GET /v1/replication/snapshot", h.replSnapshot)
		h.handle("GET /v1/replication/stream", h.replStream)
		h.handle("POST /v1/replication/ack", h.replAck)
	}
	if h.reg != nil {
		h.handle("GET /metrics", h.metrics)
		h.handle("GET /debug/stats", h.debugStats)
	}
	return h
}

// deprecatedAlias serves a legacy unversioned route: identical
// behavior and body, plus the RFC 9745 deprecation header and a Link
// to the canonical /v1 path.
func deprecatedAlias(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		fn(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// statusWriter records the response code for metrics without hiding
// the Flusher the SSE watch endpoint needs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers an endpoint, wrapped in the metrics/tracing
// middleware. The route pattern is the `endpoint` label, so
// cardinality stays bounded by the route table, not by request paths.
func (h *Handler) handle(pattern string, fn http.HandlerFunc) {
	if h.reg == nil && h.tr == nil {
		h.mux.HandleFunc(pattern, fn)
		return
	}
	hist := h.reg.Histogram("mview_http_request_seconds",
		"HTTP request latency by endpoint.", nil, obs.Labels{"endpoint": pattern})
	h.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		if h.inflight != nil {
			h.inflight.Add(1)
			defer h.inflight.Add(-1)
		}
		var span obs.Span
		if h.tr != nil {
			span = h.tr.Start("http.request", obs.KV{K: "endpoint", V: pattern})
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		hist.ObserveDuration(time.Since(t0))
		h.reg.Counter("mview_http_requests_total",
			"HTTP requests by endpoint and status code.",
			obs.Labels{"endpoint": pattern, "code": strconv.Itoa(sw.code)}).Inc()
		if span != nil {
			span.End(obs.KV{K: "code", V: sw.code})
		}
	})
}

// metrics serves the Prometheus text exposition. Staleness() runs
// first so the per-view mview_view_staleness_seconds gauges are
// current as of this scrape.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	h.db.Staleness()
	if h.repl != nil {
		h.repl.RefreshMetrics() // lag gauges current as of this scrape
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = h.reg.WritePrometheus(w)
}

// debugStats serves a JSON snapshot of every registered metric plus
// per-view maintenance statistics, per-view staleness, and the
// cumulative critical-path attribution of commit time.
func (h *Handler) debugStats(w http.ResponseWriter, r *http.Request) {
	views := make(map[string]mview.Stats)
	policies := make(map[string]map[string]any)
	for _, name := range h.db.Views() {
		if st, err := h.db.Stats(name); err == nil {
			views[name] = st
		}
		if p, err := h.db.Policy(name); err == nil {
			policies[name] = policyBody(p)
		}
	}
	staleness := h.db.Staleness() // also refreshes the gauges below
	stats := map[string]any{
		"policies":             policies,
		"uptime_seconds":       time.Since(h.start).Seconds(),
		"group_commit":         h.db.GroupCommitEnabled(),
		"shards":               h.db.Shards(),
		"snapshot_age_seconds": h.db.SnapshotAge().Seconds(),
		"critical_path":        h.db.CriticalPath(),
		"staleness":            staleness,
		"metrics":              h.reg.Snapshot(),
		"views":                views,
	}
	if h.repl != nil {
		h.repl.RefreshMetrics()
		stats["replication"] = map[string]any{
			"leader_lsn": h.repl.LeaderLSN(),
			"followers":  h.repl.Status(),
		}
	}
	if st, ok := h.db.FollowerStatus(); ok {
		stats["replication_client"] = st
	}
	writeJSON(w, http.StatusOK, stats)
}

// replStatus serves the leader's view of its followers.
func (h *Handler) replStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"leader_lsn": h.repl.LeaderLSN(),
		"followers":  h.repl.Status(),
	})
}

// replSnapshot streams a bootstrap snapshot. The body starts
// immediately, so a capture or write failure surfaces to the follower
// as a truncated stream, not an HTTP error status.
func (h *Handler) replSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = h.repl.Snapshot(w)
}

// replStream serves the framed WAL record stream, resuming after the
// follower's applied LSN. It runs until the client disconnects; a slow
// reader backpressures through the response writer.
func (h *Handler) replStream(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("need id query parameter"))
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad from LSN %q", r.URL.Query().Get("from")))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_ = h.repl.StreamTo(r.Context(), id, from, w)
}

// replAck records a follower's applied position.
func (h *Handler) replAck(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("need id query parameter"))
		return
	}
	lsn, err := strconv.ParseUint(r.URL.Query().Get("lsn"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad lsn %q", r.URL.Query().Get("lsn")))
		return
	}
	h.repl.Ack(id, lsn)
	writeJSON(w, http.StatusOK, map[string]any{"acked": lsn})
}

// explainAnalyze serves Explain annotated with the measured stage
// timings of the view's most recent maintenance pass.
func (h *Handler) explainAnalyze(w http.ResponseWriter, r *http.Request) {
	out, err := h.db.ExplainAnalyze(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explain": out})
}

// listTraces serves the flight recorder's catalog: one summary per
// retained trace, newest first, plus the lifetime count of completed
// traces (so a scraper can tell "quiet" from "ring cycled").
func (h *Handler) listTraces(w http.ResponseWriter, r *http.Request) {
	if h.fr == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no flight recorder attached (mviewd: enable with -trace-ring)"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  h.fr.Total(),
		"traces": h.fr.Summaries(),
	})
}

// getTrace serves one complete trace: the hierarchical span tree with
// offsets and attributes, and the computed critical path.
func (h *Handler) getTrace(w http.ResponseWriter, r *http.Request) {
	if h.fr == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no flight recorder attached (mviewd: enable with -trace-ring)"))
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad trace id %q", r.PathValue("id")))
		return
	}
	t, ok := h.fr.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("trace %d not in the recorder (evicted or never completed)", id))
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errCode maps database errors to HTTP statuses that fallback doesn't
// cover: writes rejected by a read-only replica are 403.
func errCode(err error, fallback int) int {
	if errors.Is(err, mview.ErrReadOnlyReplica) {
		return http.StatusForbidden
	}
	return fallback
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

type createRelationReq struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

func (h *Handler) createRelation(w http.ResponseWriter, r *http.Request) {
	var req createRelationReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := h.db.CreateRelation(req.Name, req.Attrs...); err != nil {
		writeErr(w, errCode(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"created": req.Name})
}

func (h *Handler) getRelation(w http.ResponseWriter, r *http.Request) {
	rows, err := h.db.Rows(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": rows, "count": len(rows)})
}

type createViewReq struct {
	Name    string   `json:"name"`
	From    []string `json:"from"`
	Where   string   `json:"where"`
	Select  []string `json:"select"`
	Options []string `json:"options"`
}

func viewOptions(names []string) ([]mview.ViewOption, error) {
	var opts []mview.ViewOption
	for _, o := range names {
		// ParseViewOption is the single source of truth for option
		// names, so the HTTP surface accepts exactly what the WAL and
		// the CLI do — refresh policies (oncommit, every=250ms, ...)
		// included.
		opt, err := mview.ParseViewOption(strings.ToLower(o))
		if err != nil {
			return nil, err
		}
		opts = append(opts, opt)
	}
	return opts, nil
}

func (h *Handler) createView(w http.ResponseWriter, r *http.Request) {
	var req createViewReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opts, err := viewOptions(req.Options)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec := mview.ViewSpec{From: req.From, Where: req.Where, Select: req.Select}
	if err := h.db.CreateView(req.Name, spec, opts...); err != nil {
		writeErr(w, errCode(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"created": req.Name})
}

func (h *Handler) getView(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rows, err := h.db.View(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	attrs, err := h.db.ViewSchema(name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	body := map[string]any{"schema": attrs, "rows": rows, "count": len(rows)}
	if p, err := h.db.Policy(name); err == nil {
		body["policy"] = p.Spec
		body["staleness_seconds"] = p.Staleness.Seconds()
	}
	writeJSON(w, http.StatusOK, body)
}

// policyBody renders one view's policy the way both policy routes
// answer: the stable spec string, the effective commit-time mode, and
// the current staleness.
func policyBody(p mview.PolicyInfo) map[string]any {
	return map[string]any{
		"policy":            p.Spec,
		"immediate":         p.Immediate,
		"staleness_seconds": p.Staleness.Seconds(),
	}
}

func (h *Handler) getPolicy(w http.ResponseWriter, r *http.Request) {
	p, err := h.db.Policy(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, policyBody(p))
}

type putPolicyReq struct {
	Policy string `json:"policy"`
}

func (h *Handler) putPolicy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req putPolicyReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opt, err := mview.ParseViewOption(strings.ToLower(strings.TrimSpace(req.Policy)))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := h.db.SetPolicy(name, opt); err != nil {
		writeErr(w, errCode(err, http.StatusBadRequest), err)
		return
	}
	p, err := h.db.Policy(name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, policyBody(p))
}

func (h *Handler) getStats(w http.ResponseWriter, r *http.Request) {
	st, err := h.db.Stats(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *Handler) explain(w http.ResponseWriter, r *http.Request) {
	out, err := h.db.Explain(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explain": out})
}

// watch streams a view's changes as Server-Sent Events. The opening
// `ready` event carries the view's current rows (read from the
// lock-free snapshot after the subscription is registered, so nothing
// between the two is lost — a commit racing the handshake may appear
// both in the initial rows and as a change event, i.e. delivery is
// at-least-once). After that, one `data:
// {"View":…,"Inserts":…,"Deletes":…}` event follows per refresh that
// changed the view. Slow consumers are tolerated by dropping events
// past a small buffer rather than stalling commits.
func (h *Handler) watch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	ch := make(chan mview.Change, 16)
	cancel, err := h.db.Subscribe(name, func(c mview.Change) {
		select {
		case ch <- c:
		default: // consumer too slow: drop rather than stall commits
		}
	})
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer cancel()

	// Initial state: subscribed first, then read, so no change can fall
	// between the snapshot and the stream. Keys are lowercase to stay
	// distinguishable from the Change events that follow.
	rows, err := h.db.View(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	attrs, err := h.db.ViewSchema(name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	ready, err := json.Marshal(map[string]any{"view": name, "schema": attrs, "rows": rows})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: ready\ndata: %s\n\n", ready)
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case c := <-ch:
			data, err := json.Marshal(c)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			flusher.Flush()
		}
	}
}

func (h *Handler) refresh(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := h.db.Refresh(name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"refreshed": name})
}

func (h *Handler) relevant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rel := r.URL.Query().Get("rel")
	valsParam := r.URL.Query().Get("values")
	if rel == "" || valsParam == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("need rel and values query parameters"))
		return
	}
	var vals []int64
	for _, p := range strings.Split(valsParam, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad value %q", p))
			return
		}
		vals = append(vals, v)
	}
	ok, err := h.db.Relevant(name, rel, vals...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"relevant": ok})
}

type execOp struct {
	Op     string  `json:"op"` // "insert" | "delete"
	Rel    string  `json:"rel"`
	Values []int64 `json:"values"`
}

type execReq struct {
	Ops []execOp `json:"ops"`
}

func (h *Handler) exec(w http.ResponseWriter, r *http.Request) {
	var req execReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ops := make([]mview.Op, 0, len(req.Ops))
	for _, o := range req.Ops {
		switch strings.ToLower(o.Op) {
		case "insert":
			ops = append(ops, mview.Insert(o.Rel, o.Values...))
		case "delete":
			ops = append(ops, mview.Delete(o.Rel, o.Values...))
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown op %q", o.Op))
			return
		}
	}
	// The request context rides into the commit: a client that
	// disconnects while queued in a commit group abandons the wait.
	info, err := h.db.ExecContext(r.Context(), ops...)
	if err != nil {
		writeErr(w, errCode(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *Handler) checkpoint(w http.ResponseWriter, r *http.Request) {
	if err := h.db.Checkpoint(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "checkpointed"})
}

func (h *Handler) catalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"relations": h.db.Relations(),
		"views":     h.db.Views(),
	})
}
