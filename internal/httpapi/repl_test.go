package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"mview"
)

// TestReplicationOverHTTP runs the production replication path end to
// end: a durable leader behind a real HTTP server, a follower opened
// with mview.OpenFollower against its URL — snapshot bootstrap, frame
// streaming, acks, and the leader-side status and metrics routes all
// over the actual wire (the oracle tests cover the same client logic
// over LocalTransport; this proves the two transports are equivalent).
func TestReplicationOverHTTP(t *testing.T) {
	leader, err := mview.OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	srv, err := leader.ReplicationServer()
	if err != nil {
		t.Fatal(err)
	}
	srv.Poll = 200 * time.Microsecond
	srv.Heartbeat = 5 * time.Millisecond

	if err := leader.CreateRelation("r", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := leader.CreateView("v", mview.ViewSpec{From: []string{"r"}, Where: "A < 100"}); err != nil {
		t.Fatal(err)
	}
	// Pre-connect data exercises the bootstrap snapshot.
	for i := int64(0); i < 20; i++ {
		if _, err := leader.Exec(mview.Insert("r", i, i*2)); err != nil {
			t.Fatal(err)
		}
	}

	h := NewWith(leader, WithReplication(srv))
	ts := httptest.NewServer(h)
	defer ts.Close()

	follower, err := mview.OpenFollower(ts.URL, "http-f1")
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	waitCaughtUp := func() {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			st, ok := follower.FollowerStatus()
			if !ok {
				t.Fatal("follower reports no replication status")
			}
			if st.State == "streaming" && st.AppliedLSN >= srv.LeaderLSN() {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower never caught up: %+v (leader %d)", st, srv.LeaderLSN())
			}
			time.Sleep(time.Millisecond)
		}
	}
	mustEqual := func() {
		t.Helper()
		lr, err := leader.Rows("r")
		if err != nil {
			t.Fatal(err)
		}
		fr, err := follower.Rows("r")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lr, fr) {
			t.Fatalf("relation r diverged: leader %v, follower %v", lr, fr)
		}
		lv, err := leader.View("v")
		if err != nil {
			t.Fatal(err)
		}
		fv, err := follower.View("v")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lv, fv) {
			t.Fatalf("view v diverged: leader %v, follower %v", lv, fv)
		}
	}

	waitCaughtUp()
	mustEqual()

	// Post-connect traffic exercises the stream, including a delete and
	// DDL shipped mid-stream.
	for i := int64(20); i < 40; i++ {
		if _, err := leader.Exec(mview.Insert("r", i, i*2), mview.Delete("r", i-20, (i-20)*2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.CreateView("v2", mview.ViewSpec{From: []string{"r"}, Where: "B >= 50"}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp()
	mustEqual()
	fv2, err := follower.View("v2")
	if err != nil {
		t.Fatalf("mid-stream DDL did not reach the follower: %v", err)
	}
	lv2, _ := leader.View("v2")
	if !reflect.DeepEqual(lv2, fv2) {
		t.Fatalf("view v2 diverged: leader %v, follower %v", lv2, fv2)
	}

	// Leader-side observability: the follower must appear in the status
	// route and the lag gauges in /metrics.
	resp, err := http.Get(ts.URL + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		LeaderLSN uint64 `json:"leader_lsn"`
		Followers []struct {
			ID     string `json:"id"`
			AckLSN uint64 `json:"ack_lsn"`
		} `json:"followers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Followers) != 1 || status.Followers[0].ID != "http-f1" {
		t.Fatalf("status route: %+v", status)
	}
	if status.Followers[0].AckLSN == 0 {
		t.Fatal("follower never acked over HTTP")
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `mview_repl_lag_lsn{follower="http-f1"}`) {
		t.Fatalf("metrics lack per-follower lag gauge:\n%s", body)
	}

	// Writes against the follower's own HTTP handler must be refused
	// with 403, while reads serve locally.
	fh := NewWith(follower)
	rec := raw(t, fh, "POST", "/v1/exec", `{"ops":[{"op":"insert","rel":"r","values":[1,2]}]}`)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("follower exec = %d, want 403", rec.Code)
	}
	rec = raw(t, fh, "GET", "/v1/views/v", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("follower view read = %d: %s", rec.Code, rec.Body)
	}
}
