package httpapi

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"mview"
	"mview/internal/obs"
)

// tracedHandler builds a handler whose database traces into a flight
// recorder served at /v1/debug/traces, with r(A,B), s(C,D), and an
// immediate join view v already created.
func tracedHandler(t *testing.T, fr *obs.FlightRecorder) *Handler {
	t.Helper()
	db := mview.Open()
	h := NewWith(db, WithObs(obs.NewRegistry(), fr), WithFlightRecorder(fr))
	for _, req := range []string{
		`{"name":"r","attrs":["A","B"]}`,
		`{"name":"s","attrs":["C","D"]}`,
	} {
		if code, _ := do(t, h, "POST", "/v1/relations", req); code != http.StatusCreated {
			t.Fatalf("create relation: %d", code)
		}
	}
	body := `{"name":"v","from":["r","s"],"where":"B = C"}`
	if code, resp := do(t, h, "POST", "/v1/views", body); code != http.StatusCreated {
		t.Fatalf("create view: %d %v", code, resp)
	}
	return h
}

// TestTracesEndpointShape pins the JSON contract of the debug/traces
// family: the catalog's summaries, one full trace's hierarchical span
// tree (root db.commit, commit.<stage> children on the same trace),
// the critical path, and the error answers for bad or unknown ids.
func TestTracesEndpointShape(t *testing.T) {
	fr := obs.NewFlightRecorder(8, 0)
	h := tracedHandler(t, fr)
	if code, _ := do(t, h, "POST", "/v1/exec",
		`{"ops":[{"op":"insert","rel":"r","values":[1,2]},{"op":"insert","rel":"s","values":[2,5]}]}`); code != http.StatusOK {
		t.Fatalf("exec failed")
	}

	code, resp := do(t, h, "GET", "/v1/debug/traces", "")
	if code != http.StatusOK {
		t.Fatalf("traces list: %d %v", code, resp)
	}
	if resp["total"].(float64) < 1 {
		t.Errorf("total = %v, want >= 1", resp["total"])
	}
	traces := resp["traces"].([]any)
	if len(traces) == 0 {
		t.Fatalf("no trace summaries")
	}
	sum := traces[0].(map[string]any)
	for _, k := range []string{"id", "name", "start", "seconds", "spans"} {
		if _, ok := sum[k]; !ok {
			t.Errorf("summary missing %q: %v", k, sum)
		}
	}

	// Fetch the newest trace in full: the commit's span tree.
	id := uint64(sum["id"].(float64))
	code, tr := do(t, h, "GET", fmt.Sprintf("/v1/debug/traces/%d", id), "")
	if code != http.StatusOK {
		t.Fatalf("trace %d: %d %v", id, code, tr)
	}
	if tr["name"].(string) != "db.commit" {
		t.Errorf("trace name = %v, want db.commit", tr["name"])
	}
	spans := tr["spans"].([]any)
	var rootID float64
	byName := map[string]map[string]any{}
	for _, s := range spans {
		sp := s.(map[string]any)
		byName[sp["name"].(string)] = sp
		if sp["parent"] == nil {
			rootID = sp["id"].(float64)
		}
	}
	for _, stage := range []string{"commit.net", "commit.compose", "commit.maint", "commit.validate", "commit.install", "commit.publish"} {
		sp, ok := byName[stage]
		if !ok {
			t.Fatalf("trace missing span %s (have %v)", stage, tr["spans"])
		}
		if sp["parent"].(float64) != rootID {
			t.Errorf("%s parent = %v, want root %v", stage, sp["parent"], rootID)
		}
	}
	// Stage durations must be consistent with the trace's wall time:
	// each offset+duration fits inside the root, and the critical path
	// sums to no more than the total.
	wall := tr["seconds"].(float64)
	for name, sp := range byName {
		if end := sp["offset_seconds"].(float64) + sp["seconds"].(float64); end > wall*1.001+1e-9 {
			t.Errorf("span %s ends at %v, past wall time %v", name, end, wall)
		}
	}
	var critSum float64
	for _, c := range tr["critical_path"].([]any) {
		critSum += c.(map[string]any)["seconds"].(float64)
	}
	if critSum <= 0 || critSum > wall*1.001+1e-9 {
		t.Errorf("critical path sums to %v, want within (0, %v]", critSum, wall)
	}

	// Errors: malformed id, evicted/unknown id, and no legacy alias.
	if code, _ := do(t, h, "GET", "/v1/debug/traces/bogus", ""); code != http.StatusBadRequest {
		t.Errorf("bad id: %d, want 400", code)
	}
	if code, _ := do(t, h, "GET", "/v1/debug/traces/999999999", ""); code != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", code)
	}
	if rec := raw(t, h, "GET", "/debug/traces", ""); rec.Code != http.StatusNotFound {
		t.Errorf("legacy /debug/traces: %d, want 404 (v1-only route)", rec.Code)
	}
}

// TestTracesSlowPin drives commits through a recorder whose ring holds
// a single trace but whose slow threshold pins everything: earlier
// commits must survive the ring cycling past them, marked pinned.
func TestTracesSlowPin(t *testing.T) {
	fr := obs.NewFlightRecorder(1, time.Nanosecond)
	h := tracedHandler(t, fr)
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"ops":[{"op":"insert","rel":"r","values":[%d,2]}]}`, i)
		if code, _ := do(t, h, "POST", "/v1/exec", body); code != http.StatusOK {
			t.Fatalf("exec %d failed", i)
		}
	}
	code, resp := do(t, h, "GET", "/v1/debug/traces", "")
	if code != http.StatusOK {
		t.Fatalf("traces list: %d", code)
	}
	traces := resp["traces"].([]any)
	if len(traces) < 3 {
		t.Fatalf("recorder retained %d traces, want >= 3 (pins must outlive the 1-slot ring)", len(traces))
	}
	pinned := 0
	for _, s := range traces {
		if p, _ := s.(map[string]any)["pinned"].(bool); p {
			pinned++
		}
	}
	if pinned < 2 {
		t.Errorf("%d pinned traces, want >= 2", pinned)
	}
}

// TestTracesWithoutRecorder: the route exists but answers 404 when no
// recorder was attached.
func TestTracesWithoutRecorder(t *testing.T) {
	h := New()
	code, resp := do(t, h, "GET", "/v1/debug/traces", "")
	if code != http.StatusNotFound {
		t.Fatalf("traces without recorder: %d, want 404", code)
	}
	if resp["error"] == nil {
		t.Errorf("404 body missing error field: %v", resp)
	}
}

// TestDebugStatsCriticalPathAndStaleness pins the /debug/stats
// additions: critical-path attribution, per-view staleness, and
// snapshot age — and the staleness gauge reaching /metrics.
func TestDebugStatsCriticalPathAndStaleness(t *testing.T) {
	h := setup(t)
	body := `{"name":"d","from":["r"],"options":["deferred"]}`
	if code, _ := do(t, h, "POST", "/v1/views", body); code != http.StatusCreated {
		t.Fatalf("create deferred view failed")
	}
	if code, _ := do(t, h, "POST", "/v1/exec", `{"ops":[{"op":"insert","rel":"r","values":[1,2]}]}`); code != http.StatusOK {
		t.Fatalf("exec failed")
	}
	time.Sleep(2 * time.Millisecond)

	code, resp := do(t, h, "GET", "/debug/stats", "")
	if code != http.StatusOK {
		t.Fatalf("debug/stats: %d", code)
	}
	cp := resp["critical_path"].(map[string]any)
	if cp["batches"].(float64) < 1 {
		t.Errorf("critical_path batches = %v, want >= 1", cp["batches"])
	}
	stages := cp["stages"].(map[string]any)
	for _, stage := range []string{"queue_wait", "net", "compose", "slowest_task", "validate", "fsync", "install", "publish"} {
		if _, ok := stages[stage]; !ok {
			t.Errorf("critical_path missing stage %q: %v", stage, stages)
		}
	}
	if _, ok := stages["maint"]; ok {
		t.Errorf("critical_path must exclude the maint fan-out wall")
	}
	stale := resp["staleness"].(map[string]any)
	if stale["d"].(float64) <= 0 {
		t.Errorf("deferred view staleness = %v, want > 0", stale["d"])
	}
	if stale["v"].(float64) != 0 {
		t.Errorf("immediate view staleness = %v, want 0", stale["v"])
	}
	if _, ok := resp["snapshot_age_seconds"].(float64); !ok {
		t.Errorf("debug/stats missing snapshot_age_seconds")
	}

	rec := raw(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	for _, want := range []string{
		`mview_view_staleness_seconds{view="d"}`,
		`mview_commit_stage_seconds`,
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
