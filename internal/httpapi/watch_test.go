package httpapi

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mview"
)

// TestWatchStreamsChanges drives the SSE endpoint end to end: a
// subscriber connects, a transaction commits, and the change event
// arrives on the stream.
func TestWatchStreamsChanges(t *testing.T) {
	db := mview.Open()
	if err := db.CreateRelation("r", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("low", mview.ViewSpec{From: []string{"r"}, Where: "A < 5"}); err != nil {
		t.Fatal(err)
	}
	// Pre-existing state must arrive with the ready event, so a
	// subscriber needs no separate racy GET to catch up.
	if _, err := db.Exec(mview.Insert("r", 1, 10)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWith(db))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/views/low/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	reader := bufio.NewReader(resp.Body)

	// The ready handshake arrives first, carrying the current rows.
	line, err := reader.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "event: ready") {
		t.Fatalf("handshake = %q, %v", line, err)
	}
	line, err = reader.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "data: ") {
		t.Fatalf("ready payload = %q, %v", line, err)
	}
	if !strings.Contains(line, `"view":"low"`) || !strings.Contains(line, `[1,10]`) {
		t.Fatalf("ready payload missing initial state: %q", line)
	}

	// Commit a relevant change once the subscriber is attached.
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec(mview.Insert("r", 3, 30))
		done <- err
	}()

	deadline := time.After(5 * time.Second)
	var data string
	for data == "" {
		select {
		case <-deadline:
			t.Fatal("no event within deadline")
		default:
		}
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if strings.HasPrefix(line, "data: {\"View\"") {
			data = strings.TrimSpace(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, `"View":"low"`) || !strings.Contains(data, `"Values":[3,30]`) {
		t.Errorf("event payload = %s", data)
	}
}

// TestWatchSlowConsumerDropsEvents: a watcher that stays connected but
// stops reading must not stall commits — events past the stream buffer
// are dropped, and the stream keeps working once the consumer resumes.
func TestWatchSlowConsumerDropsEvents(t *testing.T) {
	db := mview.Open()
	if err := db.CreateRelation("r", "A"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v", mview.ViewSpec{From: []string{"r"}}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWith(db))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/views/v/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reader := bufio.NewReader(resp.Body)
	if line, err := reader.ReadString('\n'); err != nil || !strings.HasPrefix(line, "event: ready") {
		t.Fatalf("handshake = %q, %v", line, err)
	}

	// The consumer now reads nothing. Push far more events than the
	// watch buffer (16) holds; every commit must complete promptly.
	const commits = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < commits; i++ {
			if _, err := db.Exec(mview.Insert("r", int64(i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("commits stalled behind a slow watch consumer")
	}

	// Resuming the read still yields events (the buffered head of the
	// stream); the dropped middle is the documented trade-off.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no event readable after consumer resumed")
		default:
		}
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read after resume: %v", err)
		}
		if strings.HasPrefix(line, "data: {\"View\"") {
			if !strings.Contains(line, `"View":"v"`) {
				t.Fatalf("unexpected event %q", line)
			}
			return
		}
	}
}

func TestWatchUnknownView(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/views/zzz/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

// TestWatchDisconnectUnsubscribes: closing the client connection must
// release the subscription so later commits do not block or leak.
func TestWatchDisconnectUnsubscribes(t *testing.T) {
	db := mview.Open()
	_ = db.CreateRelation("r", "A")
	_ = db.CreateView("v", mview.ViewSpec{From: []string{"r"}})
	srv := httptest.NewServer(NewWith(db))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/views/v/watch")
	if err != nil {
		t.Fatal(err)
	}
	reader := bufio.NewReader(resp.Body)
	if _, err := reader.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // client goes away

	// Commits keep working; eventually the handler notices the dead
	// context. Fill well past the channel buffer to prove commits
	// never block on the dead consumer.
	for i := 0; i < 64; i++ {
		if _, err := db.Exec(mview.Insert("r", int64(i))); err != nil {
			t.Fatalf("commit %d after disconnect: %v", i, err)
		}
	}
}
