package eval

import (
	"math/rand"
	"testing"

	"mview/internal/expr"
	"mview/internal/pred"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

func testDB(t *testing.T) *schema.Database {
	t.Helper()
	db, err := schema.NewDatabase(
		&schema.RelScheme{Name: "R", Scheme: schema.MustScheme("A", "B")},
		&schema.RelScheme{Name: "S", Scheme: schema.MustScheme("C", "D")},
		&schema.RelScheme{Name: "T", Scheme: schema.MustScheme("E", "F")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func bindView(t *testing.T, db *schema.Database, v expr.View) *expr.Bound {
	t.Helper()
	b, err := expr.Bind(v, db)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// naiveMaterialize is the oracle: brute-force cross product, condition
// evaluation via the interpreter, counted projection.
func naiveMaterialize(t *testing.T, b *expr.Bound, insts []*relation.Relation) *relation.Counted {
	t.Helper()
	cross := relation.NewTagged(b.Joint)
	var rec func(prefix tuple.Tuple, i int)
	rec = func(prefix tuple.Tuple, i int) {
		if i == len(insts) {
			if err := cross.Set(prefix, tuple.TagOld); err != nil {
				t.Fatal(err)
			}
			return
		}
		insts[i].Each(func(tu tuple.Tuple) {
			rec(prefix.Concat(tu), i+1)
		})
	}
	rec(tuple.New(), 0)
	filtered := relation.SelectTagged(cross, func(tu tuple.Tuple) bool {
		ok, err := b.Where.Eval(pred.BindTuple(b.Joint, tu))
		if err != nil {
			t.Fatal(err)
		}
		return ok
	})
	out, err := filtered.CountAll(b.Project)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMaterializeExample41 evaluates the paper's Example 4.1 view:
// v = π_{A,D}(σ_{A<10 ∧ C>5 ∧ B=C}(r × s)) over the paper's instances,
// expecting v = {(1,20), (2,15)} … the paper lists (5,10)? No: the
// paper's printed view contains (5, 20)-style rows; we verify against
// the brute-force oracle and spot-check membership computed by hand.
func TestMaterializeExample41(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("A < 10 && C > 5 && B = C"),
		Project:  []schema.Attribute{"A", "D"},
	})
	r := relation.MustFromTuples(schema.MustScheme("A", "B"),
		tuple.New(1, 2), tuple.New(5, 10), tuple.New(10, 20))
	s := relation.MustFromTuples(schema.MustScheme("C", "D"),
		tuple.New(2, 10), tuple.New(10, 20), tuple.New(12, 15))

	got, err := Materialize(b, []*relation.Relation{r, s}, Options{Greedy: true})
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	// Hand check: (1,2)×(2,10) fails C>5; (5,10)×(10,20) passes → (5,20);
	// (10,…) fails A<10; (1,2)×(12,15), (5,10)×(12,15) fail B=C.
	if got.Len() != 1 || got.Count(tuple.New(5, 20)) != 1 {
		t.Errorf("view = %v, want {(5, 20)×1}", got)
	}
	want := naiveMaterialize(t, b, []*relation.Relation{r, s})
	if !got.Equal(want) {
		t.Errorf("materialize = %v, oracle = %v", got, want)
	}
}

func TestMaterializeSingleOperandSelectProject(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}},
		Where:    pred.MustParse("A >= 2"),
		Project:  []schema.Attribute{"B"},
	})
	r := relation.MustFromTuples(schema.MustScheme("A", "B"),
		tuple.New(1, 10), tuple.New(2, 10), tuple.New(3, 10), tuple.New(4, 20))
	got, err := Materialize(b, []*relation.Relation{r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count(tuple.New(10)) != 2 || got.Count(tuple.New(20)) != 1 {
		t.Errorf("view = %v", got)
	}
}

func TestMaterializeDisjunctionNoDoubleCount(t *testing.T) {
	db := testDB(t)
	// A tuple satisfying both disjuncts must count once.
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}},
		Where:    pred.MustParse("A > 0 || B > 0"),
		Project:  []schema.Attribute{"A", "B"},
	})
	r := relation.MustFromTuples(schema.MustScheme("A", "B"),
		tuple.New(1, 1), tuple.New(1, -5), tuple.New(-5, -5))
	got, err := Materialize(b, []*relation.Relation{r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count(tuple.New(1, 1)) != 1 {
		t.Errorf("double-counted disjuncts: %v", got)
	}
	if got.Len() != 2 {
		t.Errorf("view = %v", got)
	}
}

func TestMaterializeCrossOperandInequality(t *testing.T) {
	db := testDB(t)
	// A non-equality cross-operand atom cannot be a hash join; it must
	// be applied as a post-join filter.
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("A < C"),
	})
	r := relation.MustFromTuples(schema.MustScheme("A", "B"), tuple.New(1, 0), tuple.New(5, 0))
	s := relation.MustFromTuples(schema.MustScheme("C", "D"), tuple.New(3, 0))
	got, err := Materialize(b, []*relation.Relation{r, s}, Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has(tuple.New(1, 0, 3, 0)) {
		t.Errorf("view = %v", got)
	}
}

func TestMaterializeEquiJoinWithOffsetAtom(t *testing.T) {
	db := testDB(t)
	// B = C + 5 has a nonzero offset: applied as filter, not join key.
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("B = C + 5"),
	})
	r := relation.MustFromTuples(schema.MustScheme("A", "B"), tuple.New(1, 15))
	s := relation.MustFromTuples(schema.MustScheme("C", "D"), tuple.New(10, 0), tuple.New(11, 0))
	got, err := Materialize(b, []*relation.Relation{r, s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has(tuple.New(1, 15, 10, 0)) {
		t.Errorf("view = %v", got)
	}
}

func TestMaterializeThreeWayJoin(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}, {Rel: "T"}},
		Where:    pred.MustParse("B = C && D = E"),
		Project:  []schema.Attribute{"A", "F"},
	})
	r := relation.MustFromTuples(schema.MustScheme("A", "B"), tuple.New(1, 100), tuple.New(2, 200))
	s := relation.MustFromTuples(schema.MustScheme("C", "D"), tuple.New(100, 7), tuple.New(200, 8))
	tt := relation.MustFromTuples(schema.MustScheme("E", "F"), tuple.New(7, 70), tuple.New(9, 90))
	for _, greedy := range []bool{false, true} {
		got, err := Materialize(b, []*relation.Relation{r, s, tt}, Options{Greedy: greedy})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 1 || got.Count(tuple.New(1, 70)) != 1 {
			t.Errorf("greedy=%v view = %v", greedy, got)
		}
	}
}

func TestBuildPlanBadOrder(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
	})
	conj := b.Where.Conjuncts[0]
	if _, err := BuildPlan(b, conj, []int{0}); err == nil {
		t.Error("short order must fail")
	}
	if _, err := BuildPlan(b, conj, []int{0, 0}); err == nil {
		t.Error("non-permutation must fail")
	}
	if _, err := BuildPlan(b, conj, []int{0, 2}); err == nil {
		t.Error("out-of-range order must fail")
	}
}

func TestEvaluateInstanceCountMismatch(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{Name: "v", Operands: []expr.Operand{{Rel: "R"}}})
	if _, err := Evaluate(b, nil, Options{}); err == nil {
		t.Error("missing instances must fail")
	}
	if _, err := Materialize(b, nil, Options{}); err == nil {
		t.Error("missing instances must fail")
	}
}

func TestMaterializeSchemeMismatch(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{Name: "v", Operands: []expr.Operand{{Rel: "R"}}})
	wrong := relation.New(schema.MustScheme("X"))
	if _, err := Materialize(b, []*relation.Relation{wrong}, Options{}); err == nil {
		t.Error("wrong instance scheme must fail")
	}
}

func TestGreedyOrderPrefersSmallConnected(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}, {Rel: "T"}},
		Where:    pred.MustParse("B = C && D = E"),
	})
	conj := b.Where.Conjuncts[0]
	// S is smallest; R connects to S; T connects to S.
	order := GreedyOrder(b, conj, []int{100, 1, 50})
	if order[0] != 1 {
		t.Errorf("order = %v, want S first", order)
	}
	// All three must appear.
	if len(order) != 3 {
		t.Errorf("order = %v", order)
	}
	// Single operand short-circuits.
	b1 := bindView(t, db, expr.View{Name: "v1", Operands: []expr.Operand{{Rel: "R"}}})
	if got := GreedyOrder(b1, b1.Where.Conjuncts[0], []int{5}); len(got) != 1 || got[0] != 0 {
		t.Errorf("single-operand order = %v", got)
	}
}

// TestMaterializeAgainstOracleRandom fuzzes random instances and
// conditions, comparing the planned evaluator with the brute-force
// oracle — with and without the greedy join order.
func TestMaterializeAgainstOracleRandom(t *testing.T) {
	db := testDB(t)
	rng := rand.New(rand.NewSource(2026))
	conds := []string{
		"B = C",
		"B = C && A < D",
		"A < 3 || D > 7",
		"B = C && (A < 2 || D >= 5)",
		"A <= C + 2",
		"true",
		"A > 5 && A < 3",
		"A != D && B = C",
	}
	for trial := 0; trial < 60; trial++ {
		cond := conds[trial%len(conds)]
		b := bindView(t, db, expr.View{
			Name:     "v",
			Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
			Where:    pred.MustParse(cond),
			Project:  []schema.Attribute{"A", "D"},
		})
		mk := func(n int) *relation.Relation {
			r := relation.New(schema.MustScheme("A", "B"))
			for i := 0; i < n; i++ {
				_ = r.Insert(tuple.New(int64(rng.Intn(8)), int64(rng.Intn(8))))
			}
			return r
		}
		mkS := func(n int) *relation.Relation {
			r := relation.New(schema.MustScheme("C", "D"))
			for i := 0; i < n; i++ {
				_ = r.Insert(tuple.New(int64(rng.Intn(8)), int64(rng.Intn(8))))
			}
			return r
		}
		r, s := mk(rng.Intn(12)), mkS(rng.Intn(12))
		want := naiveMaterialize(t, b, []*relation.Relation{r, s})
		for _, greedy := range []bool{false, true} {
			got, err := Materialize(b, []*relation.Relation{r, s}, Options{Greedy: greedy})
			if err != nil {
				t.Fatalf("cond %q: %v", cond, err)
			}
			if !got.Equal(want) {
				t.Fatalf("cond %q greedy=%v:\n got %v\nwant %v\nr=%v s=%v", cond, greedy, got, want, r, s)
			}
		}
	}
}
