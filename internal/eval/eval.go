// Package eval evaluates bound SPJ view expressions over relation
// instances. It serves two masters:
//
//   - complete re-evaluation of a view (the paper's baseline, and the
//     initial materialization), via Materialize; and
//   - evaluation of individual truth-table rows during differential
//     re-evaluation (§5.3–5.4), via Plan, whose step-at-a-time API lets
//     the differential evaluator reuse partial joins across rows.
//
// Evaluation works over tagged relations throughout, so a single engine
// covers both cases: full evaluation tags everything "old", while
// differential rows mix old and delta slots and rely on the §5.3 tag
// algebra inside the joins.
//
// Each conjunct of the (DNF) selection condition is planned separately:
// single-operand atoms are pushed down to scans, cross-operand
// equalities become hash-join keys, and everything else is applied as
// soon as its variables are available. A greedy smallest-first,
// connected-next heuristic chooses the join order (the paper's §5.3
// remark that "a good order for execution of the joins" further reduces
// cost).
package eval

import (
	"fmt"

	"mview/internal/expr"
	"mview/internal/pred"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

// Plan is a compiled left-deep evaluation pipeline for one conjunct of
// a view's selection condition, over a fixed operand order.
type Plan struct {
	bound *expr.Bound
	order []int
	steps []step
	// jointIdentity is true when the final intermediate scheme already
	// equals the bound view's joint scheme, making Finish a no-op.
	jointIdentity bool
}

type step struct {
	opIdx      int
	scanFilter func(tuple.Tuple) bool // on the operand's qualified scheme; may be nil
	lpos, rpos []int                  // hash-join positions; empty means cross product
	postFilter func(tuple.Tuple) bool // on the intermediate scheme after the join; may be nil
	scheme     *schema.Scheme         // intermediate scheme after this step
}

// BuildPlan compiles one conjunct over the bound view using the given
// operand order (a permutation of operand indexes; nil means the order
// the view was written in).
func BuildPlan(b *expr.Bound, conj pred.Conjunction, order []int) (*Plan, error) {
	n := len(b.Operands)
	if order == nil {
		order = identityOrder(n)
	}
	if err := checkPermutation(order, n); err != nil {
		return nil, err
	}
	p := &Plan{bound: b, order: order}

	used := make([]bool, len(conj.Atoms))
	varsIn := func(s *schema.Scheme, a pred.Atom) bool {
		if !s.Has(schema.Attribute(a.Left)) {
			return false
		}
		return !a.HasRightVar() || s.Has(schema.Attribute(a.Right))
	}
	compileSubset := func(s *schema.Scheme, pick func(pred.Atom) bool) (func(tuple.Tuple) bool, error) {
		var atoms []pred.Atom
		for i, a := range conj.Atoms {
			if !used[i] && pick(a) {
				atoms = append(atoms, a)
				used[i] = true
			}
		}
		if len(atoms) == 0 {
			return nil, nil
		}
		return pred.Or(pred.And(atoms...)).Compile(s)
	}

	// Step 0: scan of the first operand.
	first := b.Operands[order[0]]
	scan0, err := compileSubset(first.QScheme, func(a pred.Atom) bool { return varsIn(first.QScheme, a) })
	if err != nil {
		return nil, err
	}
	cur := first.QScheme
	p.steps = append(p.steps, step{opIdx: order[0], scanFilter: scan0, scheme: cur})

	for _, oi := range order[1:] {
		op := b.Operands[oi]
		st := step{opIdx: oi}

		st.scanFilter, err = compileSubset(op.QScheme, func(a pred.Atom) bool { return varsIn(op.QScheme, a) })
		if err != nil {
			return nil, err
		}

		// Equality atoms linking the current intermediate to this
		// operand become hash-join keys.
		for i, a := range conj.Atoms {
			if used[i] || a.Op != pred.OpEQ || !a.HasRightVar() || a.C != 0 {
				continue
			}
			l, r := schema.Attribute(a.Left), schema.Attribute(a.Right)
			var lp, rp int
			var ok bool
			switch {
			case cur.Has(l) && op.QScheme.Has(r):
				lp, _ = cur.Pos(l)
				rp, _ = op.QScheme.Pos(r)
				ok = true
			case cur.Has(r) && op.QScheme.Has(l):
				lp, _ = cur.Pos(r)
				rp, _ = op.QScheme.Pos(l)
				ok = true
			}
			if ok {
				st.lpos = append(st.lpos, lp)
				st.rpos = append(st.rpos, rp)
				used[i] = true
			}
		}

		next, err := cur.Concat(op.QScheme)
		if err != nil {
			return nil, fmt.Errorf("eval: plan for view %q: %w", b.Name, err)
		}
		st.postFilter, err = compileSubset(next, func(a pred.Atom) bool { return varsIn(next, a) })
		if err != nil {
			return nil, err
		}
		st.scheme = next
		cur = next
		p.steps = append(p.steps, st)
	}

	for i, u := range used {
		if !u {
			return nil, fmt.Errorf("eval: plan for view %q: atom %q never became evaluable", b.Name, conj.Atoms[i])
		}
	}
	p.jointIdentity = cur.Equal(b.Joint)
	return p, nil
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("eval: order has %d entries for %d operands", len(order), n)
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("eval: order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[i] = true
	}
	return nil
}

// Steps returns the number of pipeline steps (= number of operands).
func (p *Plan) Steps() int { return len(p.steps) }

// OperandAt returns the operand index consumed at step i.
func (p *Plan) OperandAt(i int) int { return p.steps[i].opIdx }

// Scan produces the step-0 intermediate from the first operand's
// instance (applying its pushed-down filter).
func (p *Plan) Scan(inst *relation.Tagged) *relation.Tagged {
	if f := p.steps[0].scanFilter; f != nil {
		return relation.SelectTagged(inst, f)
	}
	return inst
}

// RunStep joins the intermediate cur (the result of steps 0..i-1) with
// the instance of the operand at step i ≥ 1.
func (p *Plan) RunStep(cur *relation.Tagged, i int, inst *relation.Tagged) (*relation.Tagged, error) {
	st := p.steps[i]
	rhs := inst
	if st.scanFilter != nil {
		rhs = relation.SelectTagged(rhs, st.scanFilter)
	}
	next, err := relation.JoinOn(cur, rhs, st.lpos, st.rpos)
	if err != nil {
		return nil, err
	}
	if st.postFilter != nil {
		next = relation.SelectTagged(next, st.postFilter)
	}
	return next, nil
}

// Finish reorders the final intermediate into the bound view's joint
// scheme order.
func (p *Plan) Finish(cur *relation.Tagged) (*relation.Tagged, error) {
	if p.jointIdentity {
		return cur, nil
	}
	return cur.Reorder(p.bound.Joint.Attributes())
}

// Run evaluates the whole pipeline over the given operand instances
// (indexed by operand position in the bound view), returning the
// σ-filtered full-width result in joint scheme order.
func (p *Plan) Run(insts []*relation.Tagged) (*relation.Tagged, error) {
	if len(insts) != len(p.bound.Operands) {
		return nil, fmt.Errorf("eval: %d instances for %d operands", len(insts), len(p.bound.Operands))
	}
	cur := p.Scan(insts[p.steps[0].opIdx])
	for i := 1; i < len(p.steps); i++ {
		var err error
		cur, err = p.RunStep(cur, i, insts[p.steps[i].opIdx])
		if err != nil {
			return nil, err
		}
	}
	return p.Finish(cur)
}

// GreedyOrder chooses an operand order for one conjunct: start with
// the smallest instance, then repeatedly take the smallest operand
// connected to the chosen set by an equality atom, falling back to the
// smallest unconnected operand (a cross product) when none is.
func GreedyOrder(b *expr.Bound, conj pred.Conjunction, sizes []int) []int {
	n := len(b.Operands)
	if n == 1 {
		return []int{0}
	}
	// adj[i][j] reports an equality atom links operands i and j.
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	opOf := func(v pred.Var) int {
		ops := b.OperandsOf(v)
		if len(ops) == 1 {
			return ops[0]
		}
		return -1
	}
	for _, a := range conj.Atoms {
		if a.Op != pred.OpEQ || !a.HasRightVar() || a.C != 0 {
			continue
		}
		i, j := opOf(a.Left), opOf(a.Right)
		if i >= 0 && j >= 0 && i != j {
			adj[i][j], adj[j][i] = true, true
		}
	}

	chosen := make([]bool, n)
	order := make([]int, 0, n)
	pick := func(connectedOnly bool) int {
		best := -1
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			if connectedOnly {
				conn := false
				for _, j := range order {
					if adj[i][j] {
						conn = true
						break
					}
				}
				if !conn {
					continue
				}
			}
			if best < 0 || sizes[i] < sizes[best] {
				best = i
			}
		}
		return best
	}
	first := pick(false)
	chosen[first] = true
	order = append(order, first)
	for len(order) < n {
		next := pick(true)
		if next < 0 {
			next = pick(false)
		}
		chosen[next] = true
		order = append(order, next)
	}
	return order
}

// Options tunes evaluation.
type Options struct {
	// Greedy enables the smallest-first connected join-order heuristic;
	// otherwise operands are joined in the order the view lists them.
	Greedy bool
}

// Evaluate computes the σ-filtered full-width tagged result of the
// view over the given instances (one per operand, in operand order).
// Each DNF conjunct is planned and run separately; results merge
// set-wise (a tuple satisfying several conjuncts appears once).
func Evaluate(b *expr.Bound, insts []*relation.Tagged, opts Options) (*relation.Tagged, error) {
	if len(insts) != len(b.Operands) {
		return nil, fmt.Errorf("eval: %d instances for %d operands", len(insts), len(b.Operands))
	}
	out := relation.NewTagged(b.Joint)
	for _, conj := range b.Where.Conjuncts {
		var order []int
		if opts.Greedy {
			sizes := make([]int, len(insts))
			for i, r := range insts {
				sizes[i] = r.Len()
			}
			order = GreedyOrder(b, conj, sizes)
		}
		p, err := BuildPlan(b, conj, order)
		if err != nil {
			return nil, err
		}
		res, err := p.Run(insts)
		if err != nil {
			return nil, err
		}
		if err := out.Merge(res); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Materialize evaluates the view from scratch over base relation
// instances — the paper's "complete re-evaluation" — returning the
// counted view π_X(σ_C(r1 × … × rp)) with §5.2 multiplicity counters.
func Materialize(b *expr.Bound, insts []*relation.Relation, opts Options) (*relation.Counted, error) {
	tagged := make([]*relation.Tagged, len(insts))
	for i, r := range insts {
		if !r.Scheme().Equal(b.Operands[i].Scheme) {
			return nil, fmt.Errorf("eval: instance %d has scheme %s, operand %q wants %s",
				i, r.Scheme(), b.Operands[i].Alias, b.Operands[i].Scheme)
		}
		g, err := relation.TagRelationAs(r, b.Operands[i].QScheme, tuple.TagOld)
		if err != nil {
			return nil, err
		}
		tagged[i] = g
	}
	full, err := Evaluate(b, tagged, opts)
	if err != nil {
		return nil, err
	}
	return full.CountAll(b.Project)
}
