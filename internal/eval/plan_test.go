package eval

import (
	"testing"

	"mview/internal/expr"
	"mview/internal/pred"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

// TestPlanStepAPI drives Scan / RunStep / Finish directly, the way the
// differential evaluator does.
func TestPlanStepAPI(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("B = C && A < 100"),
	})
	conj := b.Where.Conjuncts[0]
	p, err := BuildPlan(b, conj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps() != 2 {
		t.Fatalf("Steps = %d", p.Steps())
	}
	if p.OperandAt(0) != 0 || p.OperandAt(1) != 1 {
		t.Errorf("operand order = %d,%d", p.OperandAt(0), p.OperandAt(1))
	}

	r := relation.MustFromTuples(schema.MustScheme("A", "B"),
		tuple.New(1, 7), tuple.New(500, 7)) // second fails A < 100 at scan
	s := relation.MustFromTuples(schema.MustScheme("C", "D"), tuple.New(7, 9))
	gr, err := relation.TagRelationAs(r, b.Operands[0].QScheme, tuple.TagOld)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := relation.TagRelationAs(s, b.Operands[1].QScheme, tuple.TagInsert)
	if err != nil {
		t.Fatal(err)
	}

	cur := p.Scan(gr)
	if cur.Len() != 1 {
		t.Fatalf("scan filter not pushed down: %v", cur)
	}
	cur, err = p.RunStep(cur, 1, gs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Finish(cur)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("result = %v", out)
	}
	tag, ok := out.Get(tuple.New(1, 7, 7, 9))
	if !ok || tag != tuple.TagInsert {
		t.Errorf("tag = %v, ok = %v (old ⋈ insert must be insert)", tag, ok)
	}
	if !out.Scheme().Equal(b.Joint) {
		t.Errorf("Finish must return joint order: %s", out.Scheme())
	}
}

// TestPlanFinishReorders checks that a non-identity operand order is
// mapped back to the joint scheme.
func TestPlanFinishReorders(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("B = C"),
	})
	p, err := BuildPlan(b, b.Where.Conjuncts[0], []int{1, 0}) // S first
	if err != nil {
		t.Fatal(err)
	}
	r := relation.MustFromTuples(schema.MustScheme("A", "B"), tuple.New(1, 7))
	s := relation.MustFromTuples(schema.MustScheme("C", "D"), tuple.New(7, 9))
	gr, _ := relation.TagRelationAs(r, b.Operands[0].QScheme, tuple.TagOld)
	gs, _ := relation.TagRelationAs(s, b.Operands[1].QScheme, tuple.TagOld)
	out, err := p.Run([]*relation.Tagged{gr, gs})
	if err != nil {
		t.Fatal(err)
	}
	// Joint order is (R.A, R.B, S.C, S.D) even though S was scanned
	// first.
	if _, ok := out.Get(tuple.New(1, 7, 7, 9)); !ok {
		t.Errorf("result = %v", out)
	}
}

func TestPlanRunInstanceCount(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
	})
	p, err := BuildPlan(b, b.Where.Conjuncts[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil); err == nil {
		t.Error("Run with missing instances must fail")
	}
}

// TestGreedyOrderDisconnected: operands with no equality links fall
// back to smallest-first cross products.
func TestGreedyOrderDisconnected(t *testing.T) {
	db := testDB(t)
	b := bindView(t, db, expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}, {Rel: "T"}},
		Where:    pred.MustParse("A < 10"), // no joins at all
	})
	order := GreedyOrder(b, b.Where.Conjuncts[0], []int{30, 10, 20})
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v, want smallest-first [1 2 0]", order)
	}
}
