package expr

import (
	"strings"
	"testing"

	"mview/internal/pred"
	"mview/internal/schema"
)

func testDB(t *testing.T) *schema.Database {
	t.Helper()
	db, err := schema.NewDatabase(
		&schema.RelScheme{Name: "R", Scheme: schema.MustScheme("A", "B")},
		&schema.RelScheme{Name: "S", Scheme: schema.MustScheme("C", "D")},
		&schema.RelScheme{Name: "T", Scheme: schema.MustScheme("B", "C")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBindExample41View(t *testing.T) {
	db := testDB(t)
	v := View{
		Name:     "v",
		Operands: []Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("A < 10 && C > 5 && B = C"),
		Project:  []schema.Attribute{"A", "D"},
	}
	b, err := Bind(v, db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if got := b.Joint.String(); got != "(R.A, R.B, S.C, S.D)" {
		t.Errorf("Joint = %s", got)
	}
	if got := b.Where.String(); got != "R.A < 10 && S.C > 5 && R.B = S.C" {
		t.Errorf("Where = %s", got)
	}
	if b.Project[0] != "R.A" || b.Project[1] != "S.D" {
		t.Errorf("Project = %v", b.Project)
	}
	if b.ProjPos[0] != 0 || b.ProjPos[1] != 3 {
		t.Errorf("ProjPos = %v", b.ProjPos)
	}
	out, err := b.OutScheme()
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "(R.A, S.D)" {
		t.Errorf("OutScheme = %s", out)
	}
}

func TestBindQualifiedNamesPassThrough(t *testing.T) {
	db := testDB(t)
	v := View{
		Name:     "v",
		Operands: []Operand{{Rel: "R", Alias: "x"}, {Rel: "R", Alias: "y"}},
		Where:    pred.MustParse("x.A = y.A"),
		Project:  []schema.Attribute{"x.B", "y.B"},
	}
	b, err := Bind(v, db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if b.Where.String() != "x.A = y.A" {
		t.Errorf("Where = %s", b.Where)
	}
}

func TestBindSelfJoinWithoutAliasFails(t *testing.T) {
	db := testDB(t)
	v := View{Name: "v", Operands: []Operand{{Rel: "R"}, {Rel: "R"}}}
	if _, err := Bind(v, db); err == nil {
		t.Error("duplicate alias must fail")
	}
}

func TestBindAmbiguousAttribute(t *testing.T) {
	db := testDB(t)
	// B appears in both R and T.
	v := View{
		Name:     "v",
		Operands: []Operand{{Rel: "R"}, {Rel: "T"}},
		Where:    pred.MustParse("B = 1"),
	}
	if _, err := Bind(v, db); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("want ambiguity error, got %v", err)
	}
}

func TestBindUnknownAttribute(t *testing.T) {
	db := testDB(t)
	v := View{
		Name:     "v",
		Operands: []Operand{{Rel: "R"}},
		Where:    pred.MustParse("Z = 1"),
	}
	if _, err := Bind(v, db); err == nil {
		t.Error("unknown condition attribute must fail")
	}
	v = View{
		Name:     "v",
		Operands: []Operand{{Rel: "R"}},
		Project:  []schema.Attribute{"Z"},
	}
	if _, err := Bind(v, db); err == nil {
		t.Error("unknown projection attribute must fail")
	}
}

func TestBindUnknownRelationAndEmpty(t *testing.T) {
	db := testDB(t)
	if _, err := Bind(View{Name: "v", Operands: []Operand{{Rel: "NOPE"}}}, db); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := Bind(View{Name: "v"}, db); err == nil {
		t.Error("no operands must fail")
	}
	if _, err := Bind(View{Operands: []Operand{{Rel: "R"}}}, db); err == nil {
		t.Error("empty name must fail")
	}
}

func TestBindEmptyProjectionMeansAll(t *testing.T) {
	db := testDB(t)
	b, err := Bind(View{Name: "v", Operands: []Operand{{Rel: "R"}}}, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Project) != 2 || b.Project[0] != "R.A" {
		t.Errorf("Project = %v", b.Project)
	}
}

func TestBindDuplicateProjectionFails(t *testing.T) {
	db := testDB(t)
	v := View{
		Name:     "v",
		Operands: []Operand{{Rel: "R"}},
		Project:  []schema.Attribute{"A", "A"},
	}
	if _, err := Bind(v, db); err == nil {
		t.Error("duplicate projection attribute must fail")
	}
}

func TestOperandIndexAndOperandsOf(t *testing.T) {
	db := testDB(t)
	b, err := Bind(View{
		Name:     "v",
		Operands: []Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("B = C"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := b.OperandIndex("S"); !ok || i != 1 {
		t.Errorf("OperandIndex(S) = %d,%v", i, ok)
	}
	if _, ok := b.OperandIndex("zzz"); ok {
		t.Error("unknown alias should miss")
	}
	ops := b.OperandsOf("R.B")
	if len(ops) != 1 || ops[0] != 0 {
		t.Errorf("OperandsOf(R.B) = %v", ops)
	}
	if got := b.OperandsOf("nope"); got != nil {
		t.Errorf("OperandsOf(nope) = %v", got)
	}
}

func TestOperandOffsets(t *testing.T) {
	db := testDB(t)
	b, err := Bind(View{Name: "v", Operands: []Operand{{Rel: "R"}, {Rel: "S"}, {Rel: "T"}}}, db)
	if err != nil {
		t.Fatal(err)
	}
	if b.Operands[0].Offset != 0 || b.Operands[1].Offset != 2 || b.Operands[2].Offset != 4 {
		t.Errorf("offsets = %d,%d,%d", b.Operands[0].Offset, b.Operands[1].Offset, b.Operands[2].Offset)
	}
}

func TestNaturalJoinDesugaring(t *testing.T) {
	db := testDB(t)
	// R(A,B) ⋈ T(B,C) ⋈ S(C,D): shared B and C.
	v, err := NaturalJoin("j", db, "R", "T", "S")
	if err != nil {
		t.Fatalf("NaturalJoin: %v", err)
	}
	b, err := Bind(v, db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if got := b.Where.String(); got != "R.B = T.B && T.C = S.C" {
		t.Errorf("Where = %q", got)
	}
	want := []schema.Attribute{"R.A", "R.B", "T.C", "S.D"}
	if len(b.Project) != len(want) {
		t.Fatalf("Project = %v", b.Project)
	}
	for i := range want {
		if b.Project[i] != want[i] {
			t.Errorf("Project[%d] = %v, want %v", i, b.Project[i], want[i])
		}
	}
}

func TestNaturalJoinSelfJoinAliases(t *testing.T) {
	db := testDB(t)
	v, err := NaturalJoin("jj", db, "R", "R")
	if err != nil {
		t.Fatal(err)
	}
	if v.Operands[0].Alias == v.Operands[1].Alias {
		t.Errorf("self-join aliases collide: %v", v.Operands)
	}
	if _, err := Bind(v, db); err != nil {
		t.Errorf("Bind self-join: %v", err)
	}
}

func TestNaturalJoinNoShared(t *testing.T) {
	db := testDB(t)
	v, err := NaturalJoin("cross", db, "R", "S")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(v, db)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerates to cross product: condition must be Always.
	if len(b.Where.Conjuncts) != 1 || len(b.Where.Conjuncts[0].Atoms) != 0 {
		t.Errorf("Where = %v, want Always", b.Where)
	}
}

func TestBindSimplifiesCondition(t *testing.T) {
	db := testDB(t)
	// Redundant atom removed; dead conjunct dropped.
	b, err := Bind(View{
		Name:     "v",
		Operands: []Operand{{Rel: "R"}},
		Where:    pred.MustParse("(A < 5 && A < 10) || (A < 0 && A > 0)"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Where.String(); got != "R.A < 5" {
		t.Errorf("simplified Where = %q", got)
	}
	// All conjuncts dead → a legitimately always-empty view.
	b, err = Bind(View{
		Name:     "dead",
		Operands: []Operand{{Rel: "R"}},
		Where:    pred.MustParse("A < 0 && A > 0"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Where.Conjuncts) != 0 {
		t.Errorf("dead condition should simplify to Never: %s", b.Where)
	}
}

func TestNaturalJoinErrors(t *testing.T) {
	db := testDB(t)
	if _, err := NaturalJoin("x", db); err == nil {
		t.Error("zero relations must fail")
	}
	if _, err := NaturalJoin("x", db, "NOPE"); err == nil {
		t.Error("unknown relation must fail")
	}
}
