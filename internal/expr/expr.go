// Package expr defines SPJ view expressions — the class of views the
// paper supports: V = π_X(σ_C(R1 × R2 × … × Rp)) — and binds them
// against a database scheme.
//
// Operand relations are referred to by alias; attributes inside the
// selection condition and the projection list may be written qualified
// ("r.A") or unqualified ("A") when unambiguous. Binding resolves all
// names, producing the joint (qualified) scheme of the cross product,
// a fully qualified condition, and the projection positions.
//
// Natural-join views (§5.3) are provided as sugar: NaturalJoin builds
// the cross product, equality conditions on the shared attribute
// names, and a projection emitting each shared attribute once.
package expr

import (
	"fmt"

	"mview/internal/pred"
	"mview/internal/schema"
)

// Operand references one base relation of the view's cross product.
type Operand struct {
	Rel   string // base relation name in the database scheme
	Alias string // unique within the view; defaults to Rel
}

// View is an unresolved SPJ view definition.
type View struct {
	Name     string
	Operands []Operand
	Where    pred.DNF           // selection condition C(Y)
	Project  []schema.Attribute // projection list X (empty = all attributes)
}

// BoundOperand is an operand resolved against the database scheme.
type BoundOperand struct {
	Rel     string
	Alias   string
	Scheme  *schema.Scheme // the base relation's scheme
	QScheme *schema.Scheme // the scheme qualified by the alias
	Offset  int            // position of this operand's first column in the joint scheme
}

// Bound is a view resolved against a database scheme: every attribute
// reference is qualified and validated.
type Bound struct {
	Name     string
	Operands []BoundOperand
	Joint    *schema.Scheme     // concatenation of all qualified schemes
	Where    pred.DNF           // fully qualified condition
	Project  []schema.Attribute // fully qualified projection list
	ProjPos  []int              // positions of Project in Joint

	byAlias map[string]int
}

// Bind resolves the view against a database scheme.
func Bind(v View, db *schema.Database) (*Bound, error) {
	if v.Name == "" {
		return nil, fmt.Errorf("expr: view with empty name")
	}
	if len(v.Operands) == 0 {
		return nil, fmt.Errorf("expr: view %q has no operands", v.Name)
	}

	b := &Bound{Name: v.Name, byAlias: make(map[string]int, len(v.Operands))}
	var jointAttrs []schema.Attribute
	for _, op := range v.Operands {
		alias := op.Alias
		if alias == "" {
			alias = op.Rel
		}
		if _, dup := b.byAlias[alias]; dup {
			return nil, fmt.Errorf("expr: view %q: duplicate operand alias %q", v.Name, alias)
		}
		rs, ok := db.Rel(op.Rel)
		if !ok {
			return nil, fmt.Errorf("expr: view %q: unknown relation %q", v.Name, op.Rel)
		}
		bo := BoundOperand{
			Rel:     op.Rel,
			Alias:   alias,
			Scheme:  rs.Scheme,
			QScheme: rs.Scheme.Qualify(alias),
			Offset:  len(jointAttrs),
		}
		b.byAlias[alias] = len(b.Operands)
		b.Operands = append(b.Operands, bo)
		jointAttrs = append(jointAttrs, bo.QScheme.Attributes()...)
	}
	joint, err := schema.NewScheme(jointAttrs...)
	if err != nil {
		return nil, fmt.Errorf("expr: view %q: %w", v.Name, err)
	}
	b.Joint = joint

	resolve, err := b.resolver()
	if err != nil {
		return nil, err
	}

	// Qualify the condition. A zero-value condition (no conjuncts)
	// means "no selection" and is normalized to Always; an explicit
	// never-true view has no use and cannot be expressed.
	where := v.Where
	if len(where.Conjuncts) == 0 {
		where = pred.Always()
	}
	var resolveErr error
	b.Where = where.Rename(func(x pred.Var) pred.Var {
		q, err := resolve(x)
		if err != nil && resolveErr == nil {
			resolveErr = fmt.Errorf("expr: view %q: condition: %w", v.Name, err)
		}
		return q
	})
	if resolveErr != nil {
		return nil, resolveErr
	}
	// Statically dead conjuncts contribute no tuples in any database
	// state; drop them and remove redundant atoms from the survivors
	// (satisfiability-based minimization, cf. the §5.4 observation on
	// minimizing view expressions at definition time). A condition
	// whose every conjunct is dead yields a legitimately always-empty
	// view.
	b.Where, _ = pred.SimplifyDNF(b.Where)

	// Qualify the projection list; empty means all joint attributes.
	if len(v.Project) == 0 {
		b.Project = joint.Attributes()
	} else {
		b.Project = make([]schema.Attribute, len(v.Project))
		for i, a := range v.Project {
			q, err := resolve(pred.Var(a))
			if err != nil {
				return nil, fmt.Errorf("expr: view %q: projection: %w", v.Name, err)
			}
			b.Project[i] = schema.Attribute(q)
		}
	}
	pos, err := joint.Positions(b.Project)
	if err != nil {
		return nil, fmt.Errorf("expr: view %q: %w", v.Name, err)
	}
	b.ProjPos = pos
	// Reject duplicate projection targets: the output scheme must be
	// valid.
	if _, err := joint.Project(b.Project); err != nil {
		return nil, fmt.Errorf("expr: view %q: %w", v.Name, err)
	}
	return b, nil
}

// resolver returns a function mapping possibly-unqualified attribute
// names to qualified ones, erroring on unknown or ambiguous names.
func (b *Bound) resolver() (func(pred.Var) (pred.Var, error), error) {
	// owners maps an unqualified attribute to the qualified names that
	// carry it.
	owners := make(map[schema.Attribute][]schema.Attribute)
	for _, op := range b.Operands {
		for _, a := range op.Scheme.Attributes() {
			owners[a] = append(owners[a], schema.Attribute(a.Qualified(op.Alias)))
		}
	}
	return func(x pred.Var) (pred.Var, error) {
		if b.Joint.Has(schema.Attribute(x)) {
			return x, nil // already qualified
		}
		qs := owners[schema.Attribute(x)]
		switch len(qs) {
		case 1:
			return pred.Var(qs[0]), nil
		case 0:
			return x, fmt.Errorf("unknown attribute %q", x)
		default:
			return x, fmt.Errorf("ambiguous attribute %q (in %v)", x, qs)
		}
	}, nil
}

// OperandIndex returns the index of the operand with the given alias.
func (b *Bound) OperandIndex(alias string) (int, bool) {
	i, ok := b.byAlias[alias]
	return i, ok
}

// OutScheme returns the scheme of the view's result.
func (b *Bound) OutScheme() (*schema.Scheme, error) {
	return b.Joint.Project(b.Project)
}

// OperandsOf returns the indexes of operands whose qualified scheme
// contains the variable, used to locate Y1 during irrelevance testing.
func (b *Bound) OperandsOf(v pred.Var) []int {
	var out []int
	for i, op := range b.Operands {
		if op.QScheme.Has(schema.Attribute(v)) {
			out = append(out, i)
		}
	}
	return out
}

// NaturalJoin builds the SPJ desugaring of R1 ⋈ R2 ⋈ … ⋈ Rp: a cross
// product of the named relations, equality conditions linking every
// later occurrence of a shared attribute name to its first occurrence,
// and a projection emitting each attribute name once. The result
// matches the paper's join views.
func NaturalJoin(name string, db *schema.Database, rels ...string) (View, error) {
	if len(rels) == 0 {
		return View{}, fmt.Errorf("expr: natural join %q needs at least one relation", name)
	}
	seen := make(map[schema.Attribute]string) // attribute → first alias
	var atoms []pred.Atom
	var project []schema.Attribute
	var operands []Operand
	aliasCount := make(map[string]int)
	for _, rel := range rels {
		rs, ok := db.Rel(rel)
		if !ok {
			return View{}, fmt.Errorf("expr: natural join %q: unknown relation %q", name, rel)
		}
		alias := rel
		aliasCount[rel]++
		if aliasCount[rel] > 1 {
			alias = fmt.Sprintf("%s_%d", rel, aliasCount[rel])
		}
		operands = append(operands, Operand{Rel: rel, Alias: alias})
		for _, a := range rs.Scheme.Attributes() {
			q := schema.Attribute(a.Qualified(alias))
			if first, dup := seen[a]; dup {
				atoms = append(atoms, pred.VarVar(
					pred.Var(a.Qualified(first)), pred.OpEQ, pred.Var(q), 0))
			} else {
				seen[a] = alias
				project = append(project, q)
			}
		}
	}
	where := pred.Always()
	if len(atoms) > 0 {
		where = pred.Or(pred.And(atoms...))
	}
	return View{Name: name, Operands: operands, Where: where, Project: project}, nil
}
