package workload

import (
	"testing"

	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

func TestDeterministicPerSeed(t *testing.T) {
	a := New(7).Tuple(3, 100)
	b := New(7).Tuple(3, 100)
	if !a.Equal(b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	c := New(8).Tuple(3, 100)
	if a.Equal(c) {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestTuplesDistinct(t *testing.T) {
	g := New(1)
	ts, err := g.Tuples(2, 500, 100)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, tu := range ts {
		if seen[tu.Key()] {
			t.Fatal("duplicate tuple")
		}
		seen[tu.Key()] = true
		for _, v := range tu {
			if v < 0 || v >= 100 {
				t.Fatalf("value %d outside domain", v)
			}
		}
	}
	if _, err := g.Tuples(1, 200, 100); err == nil {
		t.Error("impossible distinctness must fail")
	}
}

func TestRelationGeneration(t *testing.T) {
	g := New(2)
	s := schema.MustScheme("A", "B")
	r, err := g.Relation(s, 50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 50 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(3)
	vals := g.Zipf(5000, 1000, 1.5)
	counts := make(map[tuple.Value]int)
	for _, v := range vals {
		if v < 0 || v >= 1000 {
			t.Fatalf("value %d outside domain", v)
		}
		counts[v]++
	}
	// Zipf must concentrate mass: the most frequent value should be
	// far above uniform expectation (5 per value).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Errorf("max frequency %d too small for skewed data", max)
	}
	// Skew below 1 is clamped rather than panicking.
	_ = New(4).Zipf(10, 100, 0.5)
}

func TestSampleAndFresh(t *testing.T) {
	g := New(4)
	s := schema.MustScheme("A")
	r := relation.MustFromTuples(s, tuple.New(1), tuple.New(2), tuple.New(3))
	got := g.Sample(r, 2)
	if len(got) != 2 {
		t.Errorf("Sample = %v", got)
	}
	all := g.Sample(r, 10)
	if len(all) != 3 {
		t.Errorf("oversample = %v", all)
	}
	fresh, err := g.FreshTuples(r, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range fresh {
		if r.Has(tu) {
			t.Errorf("fresh tuple %v already present", tu)
		}
	}
	if _, err := g.FreshTuples(relation.MustFromTuples(s, tuple.New(0), tuple.New(1)), 5, 2); err == nil {
		t.Error("exhausted domain must fail")
	}
}

func TestThresholdStream(t *testing.T) {
	g := New(5)
	ts := g.ThresholdStream(2, 2000, 50, 100, 0.25)
	below := 0
	for _, tu := range ts {
		if tu[0] < 50 {
			below++
		}
	}
	frac := float64(below) / 2000
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("relevant fraction = %.3f, want ≈ 0.25", frac)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad threshold must panic")
		}
	}()
	g.ThresholdStream(2, 1, 100, 100, 0.5)
}

func TestChainJoinEvaluates(t *testing.T) {
	g := New(6)
	c, err := g.Chain(3, 40, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Names) != 3 || len(c.Insts) != 3 {
		t.Fatalf("chain = %+v", c)
	}
	b, err := expr.Bind(c.View, c.DB)
	if err != nil {
		t.Fatal(err)
	}
	v, err := eval.Materialize(b, c.Insts, eval.Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	// With rows≈domain the chain join is expected to be non-empty.
	if v.Len() == 0 {
		t.Error("chain join unexpectedly empty; check generator fan-out")
	}
	if _, err := g.Chain(0, 1, 1); err == nil {
		t.Error("p=0 must fail")
	}
}

func TestOrdersScenario(t *testing.T) {
	g := New(7)
	w, err := g.Orders(100, 3, 10, 4, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w.Orders.Len() != 100 {
		t.Errorf("orders = %d", w.Orders.Len())
	}
	if w.Items.Len() < 100 {
		t.Errorf("items = %d, want ≥ 100", w.Items.Len())
	}
	// The natural join on OID must cover every item row.
	v, err := expr.NaturalJoin("oi", w.DB, "orders", "items")
	if err != nil {
		t.Fatal(err)
	}
	b, err := expr.Bind(v, w.DB)
	if err != nil {
		t.Fatal(err)
	}
	j, err := eval.Materialize(b, []*relation.Relation{w.Orders, w.Items}, eval.Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != w.Items.Len() {
		t.Errorf("join = %d rows, items = %d", j.Len(), w.Items.Len())
	}
}
