// Package workload generates synthetic relations, view definitions,
// and update streams for the benchmark harness and the examples.
//
// The 1986 paper reports no machine experiments; its claims are
// algorithmic (who wins, by what factor, where crossovers fall). The
// generators here produce the controlled sweeps that expose those
// shapes: base relation size, delta size, join fan-out, number of
// modified relations, and the fraction of updates that are irrelevant
// to a view.
package workload

import (
	"fmt"
	"math/rand"

	"mview/internal/expr"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

// Gen is a seeded generator; all output is deterministic per seed.
type Gen struct {
	rng *rand.Rand
}

// New returns a generator with the given seed.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Int returns a uniform value in [0, domain).
func (g *Gen) Int(domain int64) tuple.Value {
	return tuple.Value(g.rng.Int63n(domain))
}

// Tuple returns a uniform random tuple of the given arity.
func (g *Gen) Tuple(arity int, domain int64) tuple.Tuple {
	t := make(tuple.Tuple, arity)
	for i := range t {
		t[i] = g.Int(domain)
	}
	return t
}

// Tuples returns n distinct uniform random tuples. It errors when the
// domain is too small to yield n distinct tuples.
func (g *Gen) Tuples(arity, n int, domain int64) ([]tuple.Tuple, error) {
	cap64 := float64(1)
	for i := 0; i < arity; i++ {
		cap64 *= float64(domain)
		if cap64 >= float64(n)*2 {
			break
		}
	}
	if cap64 < float64(n) {
		return nil, fmt.Errorf("workload: domain %d^%d cannot hold %d distinct tuples", domain, arity, n)
	}
	seen := make(map[string]bool, n)
	out := make([]tuple.Tuple, 0, n)
	for len(out) < n {
		t := g.Tuple(arity, domain)
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out, nil
}

// Relation returns a relation with n distinct uniform random tuples.
func (g *Gen) Relation(s *schema.Scheme, n int, domain int64) (*relation.Relation, error) {
	ts, err := g.Tuples(s.Arity(), n, domain)
	if err != nil {
		return nil, err
	}
	return relation.FromTuples(s, ts...)
}

// Zipf returns n values drawn from a Zipf(s=skew, v=1) distribution
// over [0, domain).
func (g *Gen) Zipf(n int, domain int64, skew float64) []tuple.Value {
	if skew <= 1.0 {
		skew = 1.01
	}
	z := rand.NewZipf(g.rng, skew, 1, uint64(domain-1))
	out := make([]tuple.Value, n)
	for i := range out {
		out[i] = tuple.Value(z.Uint64())
	}
	return out
}

// Sample returns k distinct tuples drawn from the relation (or all of
// them when k ≥ Len).
func (g *Gen) Sample(r *relation.Relation, k int) []tuple.Tuple {
	all := r.Tuples()
	g.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// FreshTuples returns n distinct tuples NOT present in r, for use as
// net inserts.
func (g *Gen) FreshTuples(r *relation.Relation, n int, domain int64) ([]tuple.Tuple, error) {
	out := make([]tuple.Tuple, 0, n)
	seen := make(map[string]bool, n)
	arity := r.Scheme().Arity()
	for attempts := 0; len(out) < n; attempts++ {
		if attempts > 50*n+1000 {
			return nil, fmt.Errorf("workload: could not find %d fresh tuples in domain %d", n, domain)
		}
		t := g.Tuple(arity, domain)
		k := t.Key()
		if seen[k] || r.Has(t) {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out, nil
}

// ThresholdStream generates n update tuples for a scheme whose first
// attribute is guarded by a view condition "attr < threshold": a
// relevantFrac fraction fall below the threshold (relevant), the rest
// at or above it (provably irrelevant). It is the workload for the
// §4 filtering experiments.
func (g *Gen) ThresholdStream(arity, n int, threshold, domain int64, relevantFrac float64) []tuple.Tuple {
	if threshold <= 0 || threshold >= domain {
		panic(fmt.Sprintf("workload: threshold %d outside (0, %d)", threshold, domain))
	}
	out := make([]tuple.Tuple, n)
	for i := range out {
		t := g.Tuple(arity, domain)
		if g.rng.Float64() < relevantFrac {
			t[0] = tuple.Value(g.rng.Int63n(threshold))
		} else {
			t[0] = threshold + tuple.Value(g.rng.Int63n(domain-threshold))
		}
		out[i] = t
	}
	return out
}

// Chain is a p-relation chain-join database: R1(C0,C1), R2(C1,C2), …,
// Rp(C{p-1},Cp), with the natural-join view over all of them.
type Chain struct {
	DB    *schema.Database
	Names []string
	Insts []*relation.Relation
	View  expr.View
}

// Chain builds a chain-join workload. Every relation holds rows
// distinct tuples over [0, domain)²; join selectivity is governed by
// rows/domain (expected matches per tuple ≈ rows/domain).
func (g *Gen) Chain(p, rows int, domain int64) (*Chain, error) {
	if p < 1 {
		return nil, fmt.Errorf("workload: chain needs p ≥ 1, got %d", p)
	}
	c := &Chain{}
	var rels []*schema.RelScheme
	for i := 0; i < p; i++ {
		name := fmt.Sprintf("R%d", i+1)
		s, err := schema.NewScheme(
			schema.Attribute(fmt.Sprintf("C%d", i)),
			schema.Attribute(fmt.Sprintf("C%d", i+1)),
		)
		if err != nil {
			return nil, err
		}
		rels = append(rels, &schema.RelScheme{Name: name, Scheme: s})
		c.Names = append(c.Names, name)
	}
	db, err := schema.NewDatabase(rels...)
	if err != nil {
		return nil, err
	}
	c.DB = db
	for _, rs := range rels {
		inst, err := g.Relation(rs.Scheme, rows, domain)
		if err != nil {
			return nil, err
		}
		c.Insts = append(c.Insts, inst)
	}
	v, err := expr.NaturalJoin("chain", db, c.Names...)
	if err != nil {
		return nil, err
	}
	c.View = v
	return c, nil
}

// Orders is a small order-processing scenario used by the examples and
// the SPJ benchmarks: orders(OID, CUST, REGION) and items(OID, SKU,
// QTY), joined on OID.
type Orders struct {
	DB     *schema.Database
	Orders *relation.Relation
	Items  *relation.Relation
}

// Orders generates nOrders orders with ~itemsPer items each, over
// nCust customers, nRegion regions, nSKU distinct SKUs, and quantities
// in [1, maxQty].
func (g *Gen) Orders(nOrders, itemsPer, nCust, nRegion, nSKU, maxQty int) (*Orders, error) {
	oScheme := schema.MustScheme("OID", "CUST", "REGION")
	iScheme := schema.MustScheme("OID", "SKU", "QTY")
	db, err := schema.NewDatabase(
		&schema.RelScheme{Name: "orders", Scheme: oScheme, Key: []schema.Attribute{"OID"}},
		&schema.RelScheme{Name: "items", Scheme: iScheme},
	)
	if err != nil {
		return nil, err
	}
	w := &Orders{DB: db, Orders: relation.New(oScheme), Items: relation.New(iScheme)}
	for oid := 0; oid < nOrders; oid++ {
		err := w.Orders.Insert(tuple.New(
			int64(oid),
			int64(g.rng.Intn(nCust)),
			int64(g.rng.Intn(nRegion)),
		))
		if err != nil {
			return nil, err
		}
		k := 1 + g.rng.Intn(2*itemsPer-1)
		for li := 0; li < k; li++ {
			err := w.Items.Insert(tuple.New(
				int64(oid),
				int64(g.rng.Intn(nSKU)),
				int64(1+g.rng.Intn(maxQty)),
			))
			if err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}
