// Package obs is the engine's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges, and
// bucketed latency histograms with a Prometheus-text exposition
// writer) plus a lightweight tracing interface (Tracer) that the
// engine, the durability path, and the HTTP surface emit spans and
// structured events into.
//
// Everything here is stdlib-only and safe for concurrent use. The hot
// paths (Counter.Add, Gauge.Set, Histogram.Observe) are lock-free;
// only series creation takes the registry lock, so callers cache
// handles.
//
// Metric naming follows Prometheus conventions: `mview_` prefix,
// `_total` suffix on counters, `_seconds` on latency histograms, and
// lower-snake label keys (`view`, `decision`, `endpoint`, `code`).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimensions to a metric series. A nil map means an
// unlabeled series.
type Labels map[string]string

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored so a
// counter can never decrease).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Values are float64 so
// gauges can carry durations in seconds.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets is the default latency histogram layout: exponential-ish
// bounds from 1µs to 10s, matching the spread between a delta=1
// differential refresh (~µs) and a full recompute (~100ms).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Observations are float64
// (seconds, for latency histograms). The last implicit bucket is +Inf.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending
	counts  []atomic.Int64
	inf     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric type tags, also used in snapshots and exposition.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	labels Labels
	key    string // rendered, sorted label string (no braces)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	typ    string
	series map[string]*series
	order  []string // insertion-independent: sorted at exposition
}

// Registry holds metric families and hands out series handles.
// A nil *Registry is valid: all lookups return handles that record
// into nowhere-registered metrics, so callers may instrument
// unconditionally.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders labels sorted by key, e.g. `a="1",b="2"`.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, escapeLabel(l[k]))
	}
	return sb.String()
}

// escapeLabel escapes backslash and newline per the exposition format
// (double quotes are handled by %q above — note %q also escapes
// backslashes, so we only normalize newlines here).
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookup returns the series for (name, labels), creating family and
// series as needed. Panics when name is reused with a different type —
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help, typ string, labels Labels, buckets []float64) *series {
	key := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[key]; ok {
			t := f.typ
			r.mu.RUnlock()
			if t != typ {
				panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, t, typ))
			}
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: cloneLabels(labels), key: key}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = newHistogram(buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

func cloneLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter returns (creating if needed) the counter series for
// (name, labels). On a nil registry it returns a detached counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.lookup(name, help, typeCounter, labels, nil).c
}

// Gauge returns (creating if needed) the gauge series for
// (name, labels). On a nil registry it returns a detached gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.lookup(name, help, typeGauge, labels, nil).g
}

// Delete removes the series for (name, labels) from the registry, so
// it stops appearing in /metrics and /debug/stats. Handles previously
// returned for the series keep working but are detached; a later
// Counter/Gauge/Histogram call re-creates the series fresh. Deleting a
// series that does not exist is a no-op. The family itself remains
// registered (its help text and type are sticky), which keeps the
// type-mismatch panic meaningful across delete/re-create cycles.
//
// The replication server uses this to retire the per-follower lag
// gauges of a replica an operator has forgotten (repl.Server.Forget).
func (r *Registry) Delete(name string, labels Labels) {
	if r == nil {
		return
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return
	}
	if _, ok := f.series[key]; !ok {
		return
	}
	delete(f.series, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Histogram returns (creating if needed) the histogram series for
// (name, labels). buckets is used only on first creation; nil means
// DefBuckets. On a nil registry it returns a detached histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return newHistogram(buckets)
	}
	return r.lookup(name, help, typeHistogram, labels, buckets).h
}

// formatFloat renders a value the way Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedFamilies snapshots family pointers in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		out = append(out, r.families[n])
	}
	return out
}

// seriesSorted snapshots a family's series in label-key order. The
// registry lock must not be required for reading counts: handles are
// atomic, and series maps only grow, so we copy under the lock.
func (r *Registry) seriesSorted(f *family) []*series {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range r.seriesSorted(f) {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	braced := func(extra string) string {
		switch {
		case s.key == "" && extra == "":
			return ""
		case s.key == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + s.key + "}"
		}
		return "{" + s.key + "," + extra + "}"
	}
	switch f.typ {
	case typeCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced(""), s.c.Value())
		return err
	case typeGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced(""), formatFloat(s.g.Value()))
		return err
	case typeHistogram:
		h := s.h
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, braced(`le="`+formatFloat(b)+`"`), cum); err != nil {
				return err
			}
		}
		cum += h.inf.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, braced(`le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(""), h.Count())
		return err
	}
	return fmt.Errorf("obs: unknown metric type %q", f.typ)
}

// Bucket is one histogram bucket in a snapshot. LE is the upper bound
// rendered as a string ("+Inf" for the last bucket) because JSON has
// no infinity literal. Count is cumulative, as in the exposition
// format.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// SeriesSnapshot is one metric series in a point-in-time snapshot.
type SeriesSnapshot struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`   // counter, gauge
	Count   int64             `json:"count,omitempty"`   // histogram
	Sum     float64           `json:"sum,omitempty"`     // histogram
	Buckets []Bucket          `json:"buckets,omitempty"` // histogram
}

// Snapshot returns every registered series, sorted by name then
// labels. Safe to call concurrently with writers; values are read
// atomically per series (not as a global atomic cut).
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	var out []SeriesSnapshot
	for _, f := range r.sortedFamilies() {
		for _, s := range r.seriesSorted(f) {
			ss := SeriesSnapshot{Name: f.name, Type: f.typ, Labels: s.labels}
			switch f.typ {
			case typeCounter:
				ss.Value = float64(s.c.Value())
			case typeGauge:
				ss.Value = s.g.Value()
			case typeHistogram:
				h := s.h
				ss.Count = h.Count()
				ss.Sum = h.Sum()
				var cum int64
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					ss.Buckets = append(ss.Buckets, Bucket{LE: formatFloat(b), Count: cum})
				}
				cum += h.inf.Load()
				ss.Buckets = append(ss.Buckets, Bucket{LE: "+Inf", Count: cum})
			}
			out = append(out, ss)
		}
	}
	return out
}

// MarshalJSON lets a *Registry be embedded directly in JSON payloads
// (it renders as the Snapshot list).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// Dump pretty-prints the registry for humans (the CLI `stats`
// command): one line per series, histograms summarized as
// count/sum/avg.
func (r *Registry) Dump() string {
	if r == nil {
		return "(no metrics registry attached)"
	}
	var sb strings.Builder
	for _, f := range r.sortedFamilies() {
		for _, s := range r.seriesSorted(f) {
			name := f.name
			if s.key != "" {
				name += "{" + s.key + "}"
			}
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&sb, "%-64s %d\n", name, s.c.Value())
			case typeGauge:
				fmt.Fprintf(&sb, "%-64s %s\n", name, formatFloat(s.g.Value()))
			case typeHistogram:
				h := s.h
				n := h.Count()
				avg := time.Duration(0)
				if n > 0 {
					avg = time.Duration(h.Sum() / float64(n) * float64(time.Second))
				}
				fmt.Fprintf(&sb, "%-64s count=%d sum=%s avg=%s\n",
					name, n, time.Duration(h.Sum()*float64(time.Second)), avg)
			}
		}
	}
	if sb.Len() == 0 {
		return "(no metrics recorded yet)"
	}
	return strings.TrimRight(sb.String(), "\n")
}
