package obs

import (
	"testing"
	"time"
)

// commit records one synthetic trace with a child span and returns its
// trace id.
func commit(f *FlightRecorder, d time.Duration) uint64 {
	root, rctx := StartRoot(f, "db.commit")
	child, _ := StartChild(f, rctx, "commit.fsync")
	if d > 0 {
		time.Sleep(d)
	}
	child.End()
	root.End(KV{K: "err", V: false})
	return rctx.Trace
}

func TestFlightRecorderRingAndGet(t *testing.T) {
	f := NewFlightRecorder(2, 0)
	ids := []uint64{commit(f, 0), commit(f, 0), commit(f, 0)}

	if got := f.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	ts := f.Traces()
	if len(ts) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(ts))
	}
	// Newest first; the first commit was evicted.
	if ts[0].ID != ids[2] || ts[1].ID != ids[1] {
		t.Errorf("ring order = %d,%d want %d,%d", ts[0].ID, ts[1].ID, ids[2], ids[1])
	}
	if _, ok := f.Get(ids[0]); ok {
		t.Errorf("evicted trace still retrievable")
	}
	tr, ok := f.Get(ids[2])
	if !ok {
		t.Fatalf("latest trace not retrievable")
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Parent != 0 || tr.Spans[1].Parent != tr.Spans[0].ID {
		t.Errorf("span hierarchy broken: %+v", tr.Spans)
	}
	if tr.Spans[0].Attrs["err"] != false {
		t.Errorf("root attrs missing: %+v", tr.Spans[0].Attrs)
	}
	if len(tr.Critical) == 0 {
		t.Errorf("trace has no critical path")
	}
}

func TestFlightRecorderPinsSlowTraces(t *testing.T) {
	f := NewFlightRecorder(1, time.Millisecond)
	slow := commit(f, 3*time.Millisecond)
	fast := commit(f, 0)
	_ = fast
	// The fast commit overwrote the one-slot ring, but the slow trace
	// stays pinned.
	tr, ok := f.Get(slow)
	if !ok {
		t.Fatalf("slow trace was not pinned")
	}
	if !tr.Pinned {
		t.Errorf("retained slow trace not marked pinned")
	}
	sums := f.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d entries, want 2 (ring latest + pinned)", len(sums))
	}
}

func TestFlightRecorderPinnedSetBounded(t *testing.T) {
	f := NewFlightRecorder(1, time.Nanosecond)
	for i := 0; i < defaultPinnedCap+10; i++ {
		commit(f, 0)
	}
	f.mu.Lock()
	n := len(f.pinned)
	f.mu.Unlock()
	if n > defaultPinnedCap {
		t.Fatalf("pinned set grew to %d, cap is %d", n, defaultPinnedCap)
	}
}

func TestFlightRecorderBoundsSpansAndActive(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	root, rctx := StartRoot(f, "db.commit")
	for i := 0; i < defaultSpanCap+50; i++ {
		sp, _ := StartChild(f, rctx, "commit.x")
		sp.End()
	}
	root.End()
	tr, ok := f.Get(rctx.Trace)
	if !ok {
		t.Fatalf("trace not recorded")
	}
	if len(tr.Spans) != defaultSpanCap {
		t.Errorf("span cap not enforced: %d spans", len(tr.Spans))
	}
	if tr.Dropped != 51 {
		t.Errorf("dropped = %d, want 51", tr.Dropped)
	}

	// Roots that never end must not leak: the active table evicts.
	for i := 0; i < defaultActiveCap+20; i++ {
		StartRoot(f, "abandoned")
	}
	f.mu.Lock()
	n := len(f.active)
	f.mu.Unlock()
	if n > defaultActiveCap {
		t.Fatalf("active table grew to %d, cap is %d", n, defaultActiveCap)
	}
}

func TestFlightRecorderIgnoresFlatSpans(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	f.Start("diffeval.compute").End()
	if got := f.Total(); got != 0 {
		t.Fatalf("flat span recorded a trace: total=%d", got)
	}
}

// TestComputeCriticalPath builds the canonical commit-pipeline shape
// by hand — sequential stages with a parallel maintenance fan-out —
// and checks that the path picks every sequential stage plus only the
// slowest parallel task.
func TestComputeCriticalPath(t *testing.T) {
	ms := func(v float64) float64 { return v / 1e3 }
	spans := []RecordedSpan{
		{ID: 1, Name: "db.commit_group", Offset: 0, Seconds: ms(100)},
		{ID: 2, Parent: 1, Name: "commit.net", Offset: 0, Seconds: ms(10)},
		{ID: 3, Parent: 1, Name: "commit.compose", Offset: ms(10), Seconds: ms(5)},
		{ID: 4, Parent: 1, Name: "commit.maint", Offset: ms(15), Seconds: ms(50)},
		{ID: 5, Parent: 4, Name: "maint.task", Offset: ms(15), Seconds: ms(20)},
		{ID: 6, Parent: 4, Name: "maint.task", Offset: ms(15), Seconds: ms(45)},
		{ID: 7, Parent: 1, Name: "commit.validate", Offset: ms(65), Seconds: ms(5)},
		{ID: 8, Parent: 1, Name: "commit.fsync", Offset: ms(70), Seconds: ms(10)},
		{ID: 9, Parent: 1, Name: "commit.install", Offset: ms(80), Seconds: ms(10)},
		{ID: 10, Parent: 1, Name: "commit.publish", Offset: ms(90), Seconds: ms(10)},
	}
	got := ComputeCriticalPath(spans)
	want := []StageCost{
		{Name: "commit.net", Seconds: ms(10), Span: 2},
		{Name: "commit.compose", Seconds: ms(5), Span: 3},
		{Name: "maint.task", Seconds: ms(45), Span: 6}, // slowest parallel task, not the fan-out wall
		{Name: "commit.validate", Seconds: ms(5), Span: 7},
		{Name: "commit.fsync", Seconds: ms(10), Span: 8},
		{Name: "commit.install", Seconds: ms(10), Span: 9},
		{Name: "commit.publish", Seconds: ms(10), Span: 10},
	}
	if len(got) != len(want) {
		t.Fatalf("critical path has %d steps, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestComputeCriticalPathLeafRoot(t *testing.T) {
	spans := []RecordedSpan{{ID: 1, Name: "db.commit", Seconds: 0.5}}
	got := ComputeCriticalPath(spans)
	if len(got) != 1 || got[0].Name != "db.commit" {
		t.Fatalf("leaf root path = %+v", got)
	}
	if ComputeCriticalPath(nil) != nil {
		t.Fatalf("empty input should yield nil")
	}
}
