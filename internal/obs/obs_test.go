package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "a counter", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("t_total", "a counter", nil); again != c {
		t.Fatal("same (name, labels) must return the same handle")
	}

	g := r.Gauge("t_gauge", "a gauge", Labels{"k": "v"})
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("t_seconds", "a histogram", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // lands in +Inf
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() < 5.59 || h.Sum() > 5.61 {
		t.Fatalf("sum = %v, want ~5.6", h.Sum())
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "", nil).Inc()
	r.Gauge("x", "", nil).Set(1)
	r.Histogram("x_seconds", "", nil, nil).Observe(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", sb.String(), err)
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_commits_total", "Committed transactions.", nil).Add(3)
	r.Gauge("m_pending", "Pending.", Labels{"view": "v1"}).Set(2)
	h := r.Histogram("m_commit_seconds", "Commit latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP m_commits_total Committed transactions.\n",
		"# TYPE m_commits_total counter\n",
		"m_commits_total 3\n",
		"# TYPE m_pending gauge\n",
		`m_pending{view="v1"} 2` + "\n",
		"# TYPE m_commit_seconds histogram\n",
		`m_commit_seconds_bucket{le="0.1"} 2` + "\n",
		`m_commit_seconds_bucket{le="1"} 2` + "\n",
		`m_commit_seconds_bucket{le="+Inf"} 3` + "\n",
		"m_commit_seconds_sum 3.1\n",
		"m_commit_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "m_commit_seconds") > strings.Index(out, "m_commits_total") {
		t.Error("families not sorted by name")
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "", Labels{"a": "1"}).Add(7)
	r.Histogram("s_seconds", "", []float64{1}, nil).Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	// Sorted by name: s_seconds before s_total.
	if snap[0].Name != "s_seconds" || snap[0].Type != "histogram" {
		t.Fatalf("snap[0] = %+v", snap[0])
	}
	if snap[0].Count != 1 || len(snap[0].Buckets) != 2 || snap[0].Buckets[1].LE != "+Inf" {
		t.Fatalf("histogram snapshot = %+v", snap[0])
	}
	if snap[1].Name != "s_total" || snap[1].Value != 7 || snap[1].Labels["a"] != "1" {
		t.Fatalf("snap[1] = %+v", snap[1])
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mix", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter-vs-gauge name reuse")
		}
	}()
	r.Gauge("mix", "", nil)
}

// TestConcurrentRegistry exercises handle creation, recording, and
// exposition from many goroutines; run with -race.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			labels := Labels{"worker": string(rune('a' + id%4))}
			for i := 0; i < iters; i++ {
				r.Counter("c_total", "c", labels).Inc()
				r.Gauge("g", "g", labels).Add(1)
				r.Histogram("h_seconds", "h", nil, labels).Observe(float64(i) / 1000)
				if i%50 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("exposition: %v", err)
						return
					}
					_ = r.Snapshot()
					_ = r.Dump()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, s := range r.Snapshot() {
		if s.Name == "c_total" {
			total += int64(s.Value)
		}
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
}

func TestSlowLoggerThreshold(t *testing.T) {
	var lines []string
	l := &SlowLogger{Threshold: time.Millisecond, Logf: func(f string, a ...any) {
		lines = append(lines, fmt.Sprintf(f, a...))
	}}
	l.Start("fast.op").End() // under threshold: dropped
	sp := l.Start("slow.op", KV{"view", "v"})
	time.Sleep(3 * time.Millisecond)
	sp.End(KV{"rows", 7})
	if len(lines) != 1 {
		t.Fatalf("logged %d lines, want 1: %v", len(lines), lines)
	}
	line := lines[0]
	for _, want := range []string{"slow span=slow.op", "dur=", "view=v", "rows=7"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log line %q missing %q", line, want)
		}
	}
}

func TestCollectingAndMultiTracer(t *testing.T) {
	a, b := &CollectingTracer{}, &CollectingTracer{}
	tr := MultiTracer{a, b}
	tr.Start("op", KV{"k", 1}).End(KV{"k2", 2})
	tr.Event("ev")
	for _, c := range []*CollectingTracer{a, b} {
		if len(c.Spans) != 1 || c.Spans[0].Name != "op" || len(c.Spans[0].KVs) != 2 {
			t.Fatalf("spans = %+v", c.Spans)
		}
		if len(c.Events) != 1 || c.Events[0].Name != "ev" {
			t.Fatalf("events = %+v", c.Events)
		}
	}
}
