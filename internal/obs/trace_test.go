package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestStartChildIdentity(t *testing.T) {
	c := &CollectingTracer{}
	root, rctx := StartRoot(c, "db.commit", KV{K: "txs", V: 2})
	if !rctx.Valid() || rctx.Span == 0 {
		t.Fatalf("root context not populated: %+v", rctx)
	}
	child, cctx := StartChild(c, rctx, "commit.fsync")
	if cctx.Trace != rctx.Trace {
		t.Fatalf("child trace %d != root trace %d", cctx.Trace, rctx.Trace)
	}
	if cctx.Span == rctx.Span {
		t.Fatalf("child span id not unique")
	}
	child.End()
	root.End()

	if len(c.Spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(c.Spans))
	}
	// Spans end child-first.
	if c.Spans[0].Parent != rctx.Span {
		t.Errorf("child parent = %d, want %d", c.Spans[0].Parent, rctx.Span)
	}
	if c.Spans[1].Parent != 0 {
		t.Errorf("root parent = %d, want 0", c.Spans[1].Parent)
	}
	if c.Spans[0].Trace != c.Spans[1].Trace {
		t.Errorf("trace ids differ: %d vs %d", c.Spans[0].Trace, c.Spans[1].Trace)
	}
}

func TestStartChildNilAndFlatTracers(t *testing.T) {
	sp, ctx := StartChild(nil, SpanContext{}, "x")
	sp.End()
	if ctx.Valid() {
		t.Fatalf("nil tracer produced a valid context")
	}

	// A flat tracer still gets a Start call and a populated context.
	var logged []string
	l := &SlowLogger{Threshold: 0, Logf: func(f string, a ...any) {
		logged = append(logged, fmt.Sprintf(f, a...))
	}}
	sp, ctx = StartRoot(l, "db.commit")
	sp.End()
	if !ctx.Valid() {
		t.Fatalf("flat tracer context not populated")
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "trace=") {
		t.Fatalf("slow logger missed trace id: %q", logged)
	}
}

func TestSlowLoggerSkipsWithoutSink(t *testing.T) {
	l := &SlowLogger{Threshold: 0}
	if _, ok := l.Start("x").(nopSpan); !ok {
		t.Fatalf("SlowLogger without Logf should return nopSpan")
	}
}

func TestMultiTracerHierarchy(t *testing.T) {
	a, b := &CollectingTracer{}, &CollectingTracer{}
	m := MultiTracer{a, b}
	root, rctx := StartRoot(m, "db.commit")
	child, _ := StartChild(m, rctx, "commit.fsync")
	child.End()
	root.End()
	for i, c := range []*CollectingTracer{a, b} {
		if len(c.Spans) != 2 {
			t.Fatalf("tracer %d collected %d spans, want 2", i, len(c.Spans))
		}
		if c.Spans[0].Trace != rctx.Trace || c.Spans[1].Trace != rctx.Trace {
			t.Errorf("tracer %d: members disagree on trace id", i)
		}
	}
	if _, ok := (MultiTracer{}).Start("x").(nopSpan); !ok {
		t.Errorf("empty MultiTracer should return nopSpan")
	}
}

func TestSlowLoggerPooledSpanAllocs(t *testing.T) {
	l := &SlowLogger{Threshold: time.Hour, Logf: func(string, ...any) {}}
	kv := []KV{{K: "view", V: "v"}}
	allocs := testing.AllocsPerRun(1000, func() {
		l.Start("db.commit", kv...).End()
	})
	if allocs > 0.1 {
		t.Errorf("pooled slowSpan allocates %.1f/op, want 0", allocs)
	}
}

func TestMultiTracerPooledSpanAllocs(t *testing.T) {
	m := MultiTracer{NopTracer{}, NopTracer{}}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Start("db.commit").End()
	})
	if allocs > 0.1 {
		t.Errorf("pooled multiSpan allocates %.1f/op, want 0", allocs)
	}
}
