package obs

// Hierarchical tracing on top of the flat Tracer interface.
//
// PR 1's Tracer gives spans no identity: Start/End pairs are disjoint
// observations, so a sink cannot reconstruct which maintenance task
// ran inside which commit, or which commit a slow fsync belonged to.
// This file adds trace identity without changing Tracer:
//
//   - SpanContext names one span inside one trace (two uint64 IDs).
//   - HierarchicalTracer is an optional extension interface; sinks
//     that implement it (FlightRecorder, SlowLogger, MultiTracer,
//     CollectingTracer) receive the IDs and the parent link.
//   - StartRoot/StartChild are the producer-side helpers: they
//     allocate IDs, detect HierarchicalTracer, and degrade to the
//     flat Start call for legacy sinks — so instrumented code is
//     written once and works against any Tracer.
//
// IDs are allocated from package-level atomics so that every member
// of a MultiTracer sees the same IDs for the same span, and IDs stay
// unique across engines in one process.

import "sync/atomic"

// SpanContext identifies one span within one trace. The zero value is
// "no context": a root StartChild call with a zero parent begins a new
// trace.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context names a real trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

var (
	traceIDs atomic.Uint64
	spanIDs  atomic.Uint64
)

// HierarchicalTracer is the optional extension a Tracer implements to
// receive trace/span identity and parent links. StartSpan is Start
// plus identity: ctx names the new span, parent is the enclosing span
// (zero for a trace root). Implementations must be safe for
// concurrent use.
type HierarchicalTracer interface {
	Tracer
	StartSpan(ctx, parent SpanContext, name string, kv ...KV) Span
}

// StartRoot begins a new trace rooted at a span with the given name.
// It returns the span and the context children should be parented to.
// tr may be nil or a flat Tracer; both degrade gracefully (nil returns
// a no-op span and a zero context).
func StartRoot(tr Tracer, name string, kv ...KV) (Span, SpanContext) {
	return StartChild(tr, SpanContext{}, name, kv...)
}

// StartChild begins a span under parent. With a zero parent it begins
// a new trace (equivalent to StartRoot). Flat tracers receive a plain
// Start call; the returned context is still populated so instrumented
// code can keep propagating it.
func StartChild(tr Tracer, parent SpanContext, name string, kv ...KV) (Span, SpanContext) {
	if tr == nil {
		return nopSpan{}, SpanContext{}
	}
	ctx := SpanContext{Trace: parent.Trace, Span: spanIDs.Add(1)}
	if ctx.Trace == 0 {
		ctx.Trace = traceIDs.Add(1)
	}
	if h, ok := tr.(HierarchicalTracer); ok {
		return h.StartSpan(ctx, parent, name, kv...), ctx
	}
	return tr.Start(name, kv...), ctx
}
