package obs

// FlightRecorder keeps the last N complete traces in memory — a
// "flight recorder" for the commit pipeline. Traces are assembled
// from hierarchical spans (StartSpan); when a trace's root span ends
// the trace is finalized: span offsets are fixed relative to the root,
// the critical path is computed, and the trace is inserted into a
// fixed-size ring. Traces slower than a pin threshold are additionally
// copied into a bounded pinned set so one burst of fast commits cannot
// evict the interesting outliers.
//
// Memory is bounded on every axis: ring size, pinned-set size, spans
// per trace, and concurrently-active (unfinished) traces. When a cap
// is hit the recorder drops spans or evicts the oldest active trace
// and counts what it dropped rather than growing.
//
// The recorder ignores flat Start calls (they carry no trace identity,
// so they would produce single-span junk traces); pair it with a
// SlowLogger in a MultiTracer if flat spans should still be observed.

import (
	"sort"
	"sync"
	"time"
)

// RecordedSpan is one finished (or root-truncated) span inside a
// recorded Trace. Offset is the span's start relative to the trace
// root's start.
type RecordedSpan struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Offset  float64        `json:"offset_seconds"`
	Seconds float64        `json:"seconds"`
	Attrs   map[string]any `json:"attrs,omitempty"`

	start, end time.Time
}

// StageCost is one step of a trace's critical path: the dominant span
// of one sequential segment of the root's timeline.
type StageCost struct {
	Name    string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Span    uint64  `json:"span,omitempty"`
}

// Trace is one complete recorded trace.
type Trace struct {
	ID       uint64         `json:"id"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Seconds  float64        `json:"seconds"`
	Pinned   bool           `json:"pinned,omitempty"`
	Dropped  int            `json:"dropped_spans,omitempty"`
	Spans    []RecordedSpan `json:"spans"`
	Critical []StageCost    `json:"critical_path,omitempty"`
}

// TraceSummary is the list-view projection of a Trace (no span tree).
type TraceSummary struct {
	ID      uint64    `json:"id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"`
	Spans   int       `json:"spans"`
	Pinned  bool      `json:"pinned,omitempty"`
}

const (
	defaultSpanCap   = 512 // spans kept per trace before dropping
	defaultActiveCap = 128 // unfinished traces tracked at once
	defaultPinnedCap = 32  // slow traces pinned alongside the ring
)

// FlightRecorder implements HierarchicalTracer. Use NewFlightRecorder;
// the zero value is not usable.
type FlightRecorder struct {
	slow time.Duration // traces at least this slow are pinned; 0 pins nothing

	mu     sync.Mutex
	ring   []*Trace // fixed capacity, oldest overwritten
	next   int      // ring write cursor
	total  uint64   // completed traces ever recorded
	pinned []*Trace
	active map[uint64]*activeTrace
}

type activeTrace struct {
	mu      sync.Mutex
	id      uint64
	name    string
	start   time.Time
	rootID  uint64
	spans   []RecordedSpan
	dropped int
	done    bool
}

// NewFlightRecorder returns a recorder keeping the last ringSize
// complete traces (minimum 1) plus up to defaultPinnedCap traces whose
// total duration is at least slowThreshold. A zero slowThreshold
// disables pinning.
func NewFlightRecorder(ringSize int, slowThreshold time.Duration) *FlightRecorder {
	if ringSize < 1 {
		ringSize = 1
	}
	return &FlightRecorder{
		slow:   slowThreshold,
		ring:   make([]*Trace, ringSize),
		active: make(map[uint64]*activeTrace),
	}
}

// Start implements Tracer. Flat spans carry no trace identity, so the
// recorder ignores them (see the package comment).
func (f *FlightRecorder) Start(string, ...KV) Span { return nopSpan{} }

// Event implements Tracer. Point events are not recorded.
func (f *FlightRecorder) Event(string, ...KV) {}

// StartSpan implements HierarchicalTracer.
func (f *FlightRecorder) StartSpan(ctx, parent SpanContext, name string, kv ...KV) Span {
	if !ctx.Valid() {
		return nopSpan{}
	}
	now := time.Now()
	isRoot := parent.Span == 0

	f.mu.Lock()
	at := f.active[ctx.Trace]
	if at == nil {
		// First span of this trace (normally the root). Evict the
		// oldest active trace if the table is full — an abandoned
		// trace whose root never ended must not leak.
		if len(f.active) >= defaultActiveCap {
			var oldest *activeTrace
			for _, a := range f.active {
				if oldest == nil || a.start.Before(oldest.start) {
					oldest = a
				}
			}
			delete(f.active, oldest.id)
		}
		at = &activeTrace{id: ctx.Trace, name: name, start: now}
		f.active[ctx.Trace] = at
	}
	f.mu.Unlock()

	at.mu.Lock()
	if isRoot && at.rootID == 0 {
		at.rootID = ctx.Span
		at.name = name
		at.start = now
	}
	if len(at.spans) >= defaultSpanCap {
		at.dropped++
		at.mu.Unlock()
		return nopSpan{}
	}
	at.spans = append(at.spans, RecordedSpan{
		ID:     ctx.Span,
		Parent: parent.Span,
		Name:   name,
		start:  now,
	})
	idx := len(at.spans) - 1
	at.mu.Unlock()

	return &recSpan{f: f, at: at, idx: idx, id: ctx.Span, startKV: kv, root: isRoot}
}

type recSpan struct {
	f       *FlightRecorder
	at      *activeTrace
	idx     int
	id      uint64
	startKV []KV
	root    bool
}

func (s *recSpan) End(kv ...KV) {
	now := time.Now()
	s.at.mu.Lock()
	if s.idx < len(s.at.spans) && s.at.spans[s.idx].ID == s.id {
		sp := &s.at.spans[s.idx]
		sp.end = now
		if len(s.startKV)+len(kv) > 0 {
			sp.Attrs = kvMap(s.startKV, kv)
		}
	}
	if !s.root || s.at.done {
		s.at.mu.Unlock()
		return
	}
	s.at.done = true
	t := finalize(s.at, now)
	s.at.mu.Unlock()

	s.f.mu.Lock()
	delete(s.f.active, s.at.id)
	s.f.ring[s.f.next] = t
	s.f.next = (s.f.next + 1) % len(s.f.ring)
	s.f.total++
	if s.f.slow > 0 && t.Seconds >= s.f.slow.Seconds() {
		s.f.pin(t)
	}
	s.f.mu.Unlock()
}

// pin adds t to the pinned set, evicting the fastest pinned trace if
// the set is full and t is slower. Caller holds f.mu.
func (f *FlightRecorder) pin(t *Trace) {
	t.Pinned = true
	if len(f.pinned) < defaultPinnedCap {
		f.pinned = append(f.pinned, t)
		return
	}
	fastest := 0
	for i, p := range f.pinned {
		if p.Seconds < f.pinned[fastest].Seconds {
			fastest = i
		}
	}
	if t.Seconds > f.pinned[fastest].Seconds {
		f.pinned[fastest] = t
	}
}

// finalize turns an active trace into an immutable Trace. Caller holds
// at.mu. Spans whose End never ran are truncated at the root's end.
func finalize(at *activeTrace, rootEnd time.Time) *Trace {
	spans := make([]RecordedSpan, len(at.spans))
	copy(spans, at.spans)
	for i := range spans {
		sp := &spans[i]
		if sp.end.IsZero() || sp.end.After(rootEnd) {
			sp.end = rootEnd
		}
		if sp.end.Before(sp.start) {
			sp.end = sp.start
		}
		sp.Offset = sp.start.Sub(at.start).Seconds()
		sp.Seconds = sp.end.Sub(sp.start).Seconds()
	}
	t := &Trace{
		ID:      at.id,
		Name:    at.name,
		Start:   at.start,
		Seconds: rootEnd.Sub(at.start).Seconds(),
		Dropped: at.dropped,
		Spans:   spans,
	}
	t.Critical = ComputeCriticalPath(spans)
	return t
}

// Get returns the recorded trace with the given ID, searching the ring
// and the pinned set.
func (f *FlightRecorder) Get(id uint64) (*Trace, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, t := range f.ring {
		if t != nil && t.ID == id {
			return t, true
		}
	}
	for _, t := range f.pinned {
		if t.ID == id {
			return t, true
		}
	}
	return nil, false
}

// Traces returns every retained trace (ring plus pinned, deduplicated),
// newest first.
func (f *FlightRecorder) Traces() []*Trace {
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[uint64]bool, len(f.ring)+len(f.pinned))
	out := make([]*Trace, 0, len(f.ring)+len(f.pinned))
	for _, t := range f.ring {
		if t != nil && !seen[t.ID] {
			seen[t.ID] = true
			out = append(out, t)
		}
	}
	for _, t := range f.pinned {
		if !seen[t.ID] {
			seen[t.ID] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Summaries returns list-view summaries of every retained trace,
// newest first.
func (f *FlightRecorder) Summaries() []TraceSummary {
	ts := f.Traces()
	out := make([]TraceSummary, len(ts))
	for i, t := range ts {
		out[i] = TraceSummary{
			ID:      t.ID,
			Name:    t.Name,
			Start:   t.Start,
			Seconds: t.Seconds,
			Spans:   len(t.Spans),
			Pinned:  t.Pinned,
		}
	}
	return out
}

// Total reports how many traces have completed since the recorder was
// created (including ones since evicted from the ring).
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// ComputeCriticalPath walks a span tree and returns the sequence of
// spans that dominates the root's wall time: at each level, children
// are grouped into overlapping-in-time clusters; sequential clusters
// all lie on the critical path, and within a cluster of parallel spans
// only the longest does. The walk recurses into each chosen span, so a
// parallel maintenance fan-out contributes its slowest task rather
// than the fan-out wall. Spans are identified by RecordedSpan.Offset
// and Seconds; the root is the first span with Parent == 0.
func ComputeCriticalPath(spans []RecordedSpan) []StageCost {
	if len(spans) == 0 {
		return nil
	}
	children := make(map[uint64][]int)
	root := -1
	for i := range spans {
		if spans[i].Parent == 0 {
			if root < 0 {
				root = i
			}
			continue
		}
		children[spans[i].Parent] = append(children[spans[i].Parent], i)
	}
	if root < 0 {
		return nil
	}
	var out []StageCost
	var walk func(i int)
	walk = func(i int) {
		kids := children[spans[i].ID]
		if len(kids) == 0 {
			out = append(out, StageCost{Name: spans[i].Name, Seconds: spans[i].Seconds, Span: spans[i].ID})
			return
		}
		sort.SliceStable(kids, func(a, b int) bool { return spans[kids[a]].Offset < spans[kids[b]].Offset })
		// Sweep the sorted children, clustering overlaps; the longest
		// member of each cluster is the critical one.
		best := kids[0]
		clusterEnd := spans[best].Offset + spans[best].Seconds
		for _, k := range kids[1:] {
			if spans[k].Offset < clusterEnd {
				if spans[k].Seconds > spans[best].Seconds {
					best = k
				}
				if e := spans[k].Offset + spans[k].Seconds; e > clusterEnd {
					clusterEnd = e
				}
				continue
			}
			walk(best)
			best = k
			clusterEnd = spans[k].Offset + spans[k].Seconds
		}
		walk(best)
	}
	walk(root)
	return out
}

// kvMap flattens start- and end-time KVs into one attribute map.
func kvMap(a, b []KV) map[string]any {
	m := make(map[string]any, len(a)+len(b))
	for _, f := range a {
		m[f.K] = kvValue(f.V)
	}
	for _, f := range b {
		m[f.K] = kvValue(f.V)
	}
	return m
}

// kvValue converts attribute values to JSON-stable types; durations
// become seconds.
func kvValue(v any) any {
	if d, ok := v.(time.Duration); ok {
		return d.Seconds()
	}
	return v
}
