package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// KV is one structured key/value attached to a span or event.
type KV struct {
	K string
	V any
}

// Span is an in-flight traced operation. End closes it; extra KVs are
// appended to those given at Start. End must be called at most once.
type Span interface {
	End(kv ...KV)
}

// Tracer receives span-style Start/End pairs and point-in-time
// structured events from the engine, the durability path, and the
// HTTP surface. Implementations must be safe for concurrent use.
//
// Span names are dotted, stable identifiers: `db.commit`,
// `db.refresh`, `diffeval.compute`, `http.request`. Events use the
// same convention (`diffeval.operand_delta`). Tracers that also
// implement HierarchicalTracer (see trace.go) additionally receive
// trace/span identity and parent links from instrumented code that
// uses StartRoot/StartChild.
type Tracer interface {
	Start(name string, kv ...KV) Span
	Event(name string, kv ...KV)
}

// NopTracer discards everything. The engine also accepts a nil Tracer
// and skips all tracing work entirely; NopTracer exists for callers
// that want a non-nil placeholder (and for overhead benchmarks).
type NopTracer struct{}

type nopSpan struct{}

func (nopSpan) End(...KV) {}

// Start implements Tracer.
func (NopTracer) Start(string, ...KV) Span { return nopSpan{} }

// Event implements Tracer.
func (NopTracer) Event(string, ...KV) {}

// formatKVs renders KVs as a logfmt-style suffix: `k=v k2="v 2"`.
func formatKVs(kv []KV) string {
	if len(kv) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, f := range kv {
		sb.WriteByte(' ')
		v := fmt.Sprint(f.V)
		if strings.ContainsAny(v, " \t\"") {
			v = fmt.Sprintf("%q", v)
		}
		sb.WriteString(f.K)
		sb.WriteByte('=')
		sb.WriteString(v)
	}
	return sb.String()
}

// SlowLogger is a Tracer that logs only spans whose duration meets a
// threshold — the slow-refresh / slow-request structured log. Lines
// are logfmt-style:
//
//	slow span=db.refresh dur=312.4ms view=big decision=recompute
//
// Hierarchical spans add a trace=<id> field so a slow line can be
// cross-referenced against the flight recorder. Logf is typically
// log.Printf. Events are ignored; a SlowLogger is for latency
// outliers, not the full event firehose.
type SlowLogger struct {
	Threshold time.Duration
	Logf      func(format string, args ...any)
}

// slowSpan instances are pooled: commits emit a dozen spans each, and
// almost none cross the slow threshold, so the steady state is
// get → End(below threshold) → put with zero allocations. The kv
// backing array is reused across lives.
type slowSpan struct {
	l     *SlowLogger
	name  string
	start time.Time
	trace uint64
	kv    []KV
}

var slowSpanPool = sync.Pool{New: func() any { return new(slowSpan) }}

func (l *SlowLogger) start(name string, trace uint64, kv []KV) Span {
	if l.Logf == nil {
		return nopSpan{} // no sink: skip span and KV capture entirely
	}
	s := slowSpanPool.Get().(*slowSpan)
	s.l, s.name, s.start, s.trace = l, name, time.Now(), trace
	s.kv = append(s.kv[:0], kv...)
	return s
}

// Start implements Tracer.
func (l *SlowLogger) Start(name string, kv ...KV) Span {
	return l.start(name, 0, kv)
}

// StartSpan implements HierarchicalTracer.
func (l *SlowLogger) StartSpan(ctx, _ SpanContext, name string, kv ...KV) Span {
	return l.start(name, ctx.Trace, kv)
}

// Event implements Tracer.
func (l *SlowLogger) Event(string, ...KV) {}

func (s *slowSpan) End(kv ...KV) {
	d := time.Since(s.start)
	if d >= s.l.Threshold {
		all := append(s.kv, kv...)
		if s.trace != 0 {
			s.l.Logf("slow span=%s dur=%s trace=%d%s", s.name, d.Round(time.Microsecond), s.trace, formatKVs(all))
		} else {
			s.l.Logf("slow span=%s dur=%s%s", s.name, d.Round(time.Microsecond), formatKVs(all))
		}
		s.kv = all
	}
	s.l = nil
	clear(s.kv) // drop KV references so pooled spans don't pin values
	slowSpanPool.Put(s)
}

// MultiTracer fans out to several tracers. Hierarchical context is
// forwarded to members that understand it and flattened for the rest.
type MultiTracer []Tracer

// multiSpan instances are pooled; the spans backing array is reused.
type multiSpan struct {
	spans []Span
}

var multiSpanPool = sync.Pool{New: func() any { return new(multiSpan) }}

func (m *multiSpan) End(kv ...KV) {
	for _, s := range m.spans {
		s.End(kv...)
	}
	clear(m.spans)
	m.spans = m.spans[:0]
	multiSpanPool.Put(m)
}

// Start implements Tracer.
func (m MultiTracer) Start(name string, kv ...KV) Span {
	switch len(m) {
	case 0:
		return nopSpan{}
	case 1:
		return m[0].Start(name, kv...)
	}
	ms := multiSpanPool.Get().(*multiSpan)
	for _, t := range m {
		ms.spans = append(ms.spans, t.Start(name, kv...))
	}
	return ms
}

// StartSpan implements HierarchicalTracer.
func (m MultiTracer) StartSpan(ctx, parent SpanContext, name string, kv ...KV) Span {
	switch len(m) {
	case 0:
		return nopSpan{}
	case 1:
		return startSpanOn(m[0], ctx, parent, name, kv)
	}
	ms := multiSpanPool.Get().(*multiSpan)
	for _, t := range m {
		ms.spans = append(ms.spans, startSpanOn(t, ctx, parent, name, kv))
	}
	return ms
}

// startSpanOn delivers a hierarchical span to one tracer, degrading to
// the flat call for tracers without StartSpan.
func startSpanOn(t Tracer, ctx, parent SpanContext, name string, kv []KV) Span {
	if h, ok := t.(HierarchicalTracer); ok {
		return h.StartSpan(ctx, parent, name, kv...)
	}
	return t.Start(name, kv...)
}

// Event implements Tracer.
func (m MultiTracer) Event(name string, kv ...KV) {
	for _, t := range m {
		t.Event(name, kv...)
	}
}

// CollectingTracer records spans and events in memory, for tests.
// The zero value is ready to use.
type CollectingTracer struct {
	mu     sync.Mutex
	Spans  []CollectedSpan
	Events []CollectedEvent
}

// CollectedSpan is one finished span. Trace/Span/Parent are zero for
// spans started through the flat Start call.
type CollectedSpan struct {
	Name   string
	Dur    time.Duration
	KVs    []KV
	Trace  uint64
	Span   uint64
	Parent uint64
}

// CollectedEvent is one recorded event.
type CollectedEvent struct {
	Name string
	KVs  []KV
}

type collectSpan struct {
	c      *CollectingTracer
	name   string
	start  time.Time
	kv     []KV
	ctx    SpanContext
	parent uint64
}

// Start implements Tracer.
func (c *CollectingTracer) Start(name string, kv ...KV) Span {
	return &collectSpan{c: c, name: name, start: time.Now(), kv: kv}
}

// StartSpan implements HierarchicalTracer.
func (c *CollectingTracer) StartSpan(ctx, parent SpanContext, name string, kv ...KV) Span {
	return &collectSpan{c: c, name: name, start: time.Now(), kv: kv, ctx: ctx, parent: parent.Span}
}

// Event implements Tracer.
func (c *CollectingTracer) Event(name string, kv ...KV) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Events = append(c.Events, CollectedEvent{Name: name, KVs: kv})
}

func (s *collectSpan) End(kv ...KV) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.c.Spans = append(s.c.Spans, CollectedSpan{
		Name:   s.name,
		Dur:    time.Since(s.start),
		KVs:    append(append([]KV{}, s.kv...), kv...),
		Trace:  s.ctx.Trace,
		Span:   s.ctx.Span,
		Parent: s.parent,
	})
}
