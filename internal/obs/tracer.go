package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// KV is one structured key/value attached to a span or event.
type KV struct {
	K string
	V any
}

// Span is an in-flight traced operation. End closes it; extra KVs are
// appended to those given at Start.
type Span interface {
	End(kv ...KV)
}

// Tracer receives span-style Start/End pairs and point-in-time
// structured events from the engine, the durability path, and the
// HTTP surface. Implementations must be safe for concurrent use.
//
// Span names are dotted, stable identifiers: `db.commit`,
// `db.refresh`, `diffeval.compute`, `http.request`. Events use the
// same convention (`diffeval.operand_delta`).
type Tracer interface {
	Start(name string, kv ...KV) Span
	Event(name string, kv ...KV)
}

// NopTracer discards everything. The engine also accepts a nil Tracer
// and skips all tracing work entirely; NopTracer exists for callers
// that want a non-nil placeholder (and for overhead benchmarks).
type NopTracer struct{}

type nopSpan struct{}

func (nopSpan) End(...KV) {}

// Start implements Tracer.
func (NopTracer) Start(string, ...KV) Span { return nopSpan{} }

// Event implements Tracer.
func (NopTracer) Event(string, ...KV) {}

// formatKVs renders KVs as a logfmt-style suffix: `k=v k2="v 2"`.
func formatKVs(kv []KV) string {
	if len(kv) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, f := range kv {
		sb.WriteByte(' ')
		v := fmt.Sprint(f.V)
		if strings.ContainsAny(v, " \t\"") {
			v = fmt.Sprintf("%q", v)
		}
		sb.WriteString(f.K)
		sb.WriteByte('=')
		sb.WriteString(v)
	}
	return sb.String()
}

// SlowLogger is a Tracer that logs only spans whose duration meets a
// threshold — the slow-refresh / slow-request structured log. Lines
// are logfmt-style:
//
//	slow span=db.refresh dur=312.4ms view=big decision=recompute
//
// Logf is typically log.Printf. Events are ignored; a SlowLogger is
// for latency outliers, not the full event firehose.
type SlowLogger struct {
	Threshold time.Duration
	Logf      func(format string, args ...any)
}

type slowSpan struct {
	l     *SlowLogger
	name  string
	start time.Time
	kv    []KV
}

// Start implements Tracer.
func (l *SlowLogger) Start(name string, kv ...KV) Span {
	return &slowSpan{l: l, name: name, start: time.Now(), kv: kv}
}

// Event implements Tracer.
func (l *SlowLogger) Event(string, ...KV) {}

func (s *slowSpan) End(kv ...KV) {
	d := time.Since(s.start)
	if d < s.l.Threshold || s.l.Logf == nil {
		return
	}
	all := append(append([]KV{}, s.kv...), kv...)
	s.l.Logf("slow span=%s dur=%s%s", s.name, d.Round(time.Microsecond), formatKVs(all))
}

// MultiTracer fans out to several tracers.
type MultiTracer []Tracer

type multiSpan []Span

func (m multiSpan) End(kv ...KV) {
	for _, s := range m {
		s.End(kv...)
	}
}

// Start implements Tracer.
func (m MultiTracer) Start(name string, kv ...KV) Span {
	spans := make(multiSpan, len(m))
	for i, t := range m {
		spans[i] = t.Start(name, kv...)
	}
	return spans
}

// Event implements Tracer.
func (m MultiTracer) Event(name string, kv ...KV) {
	for _, t := range m {
		t.Event(name, kv...)
	}
}

// CollectingTracer records spans and events in memory, for tests.
// The zero value is ready to use.
type CollectingTracer struct {
	mu     sync.Mutex
	Spans  []CollectedSpan
	Events []CollectedEvent
}

// CollectedSpan is one finished span.
type CollectedSpan struct {
	Name string
	Dur  time.Duration
	KVs  []KV
}

// CollectedEvent is one recorded event.
type CollectedEvent struct {
	Name string
	KVs  []KV
}

type collectSpan struct {
	c     *CollectingTracer
	name  string
	start time.Time
	kv    []KV
}

// Start implements Tracer.
func (c *CollectingTracer) Start(name string, kv ...KV) Span {
	return &collectSpan{c: c, name: name, start: time.Now(), kv: kv}
}

// Event implements Tracer.
func (c *CollectingTracer) Event(name string, kv ...KV) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Events = append(c.Events, CollectedEvent{Name: name, KVs: kv})
}

func (s *collectSpan) End(kv ...KV) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.c.Spans = append(s.c.Spans, CollectedSpan{
		Name: s.name,
		Dur:  time.Since(s.start),
		KVs:  append(append([]KV{}, s.kv...), kv...),
	})
}
