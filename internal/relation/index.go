package relation

import (
	"fmt"

	"mview/internal/tuple"
)

// Index is a persistent single-column hash index over a base relation,
// maintained incrementally as transactions commit. Differential view
// maintenance probes these indexes with delta tuples, turning each
// truth-table row into work proportional to the delta rather than to
// the base relation (the production-grade counterpart of the paper's
// observation that "one only needs to compute the contribution of the
// new tuples to the join").
type Index struct {
	pos int
	m   map[tuple.Value][]tuple.Tuple
	n   int
}

// NewIndex returns an empty index on column pos of the indexed
// relation's scheme.
func NewIndex(pos int) *Index {
	return &Index{pos: pos, m: make(map[tuple.Value][]tuple.Tuple)}
}

// BuildIndex indexes every tuple of r on column pos.
func BuildIndex(r *Relation, pos int) (*Index, error) {
	if pos < 0 || pos >= r.Scheme().Arity() {
		return nil, fmt.Errorf("relation: index position %d outside scheme %s", pos, r.Scheme())
	}
	ix := NewIndex(pos)
	r.Each(ix.Add)
	return ix, nil
}

// Pos returns the indexed column position.
func (ix *Index) Pos() int { return ix.pos }

// Len returns the number of indexed tuples.
func (ix *Index) Len() int { return ix.n }

// Add indexes t. The caller must not mutate t afterwards.
func (ix *Index) Add(t tuple.Tuple) {
	k := t[ix.pos]
	ix.m[k] = append(ix.m[k], t)
	ix.n++
}

// Remove un-indexes t (matching by full tuple equality). Removing an
// absent tuple is a no-op.
func (ix *Index) Remove(t tuple.Tuple) {
	k := t[ix.pos]
	bucket := ix.m[k]
	for i, u := range bucket {
		if u.Equal(t) {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(ix.m, k)
			} else {
				ix.m[k] = bucket
			}
			ix.n--
			return
		}
	}
}

// Probe returns the tuples whose indexed column equals v. The caller
// must not mutate the returned slice or its tuples.
func (ix *Index) Probe(v tuple.Value) []tuple.Tuple {
	return ix.m[v]
}
