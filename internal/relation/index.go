package relation

import (
	"fmt"

	"mview/internal/tuple"
)

// Index is a persistent single-column hash index over a base relation,
// maintained incrementally as transactions commit. Differential view
// maintenance probes these indexes with delta tuples, turning each
// truth-table row into work proportional to the delta rather than to
// the base relation (the production-grade counterpart of the paper's
// observation that "one only needs to compute the contribution of the
// new tuples to the join").
type Index struct {
	pos int
	m   map[tuple.Value]ixBucket
	n   int
}

// ixBucket holds the tuples sharing one indexed value. The first two
// tuples are stored inline: unique and low-fanout columns (keys,
// foreign keys with a couple of children) dominate index usage, so the
// common small bucket costs a map entry and no slice allocation.
type ixBucket struct {
	one  tuple.Tuple   // first tuple; nil only in the zero value
	two  tuple.Tuple   // second tuple; nil when the bucket holds one
	rest []tuple.Tuple // overflow beyond the first two
}

// NewIndex returns an empty index on column pos of the indexed
// relation's scheme.
func NewIndex(pos int) *Index {
	return &Index{pos: pos, m: make(map[tuple.Value]ixBucket)}
}

// BuildIndex indexes every tuple of r on column pos.
func BuildIndex(r *Relation, pos int) (*Index, error) {
	if pos < 0 || pos >= r.Scheme().Arity() {
		return nil, fmt.Errorf("relation: index position %d outside scheme %s", pos, r.Scheme())
	}
	ix := NewIndex(pos)
	r.Each(ix.Add)
	return ix, nil
}

// Pos returns the indexed column position.
func (ix *Index) Pos() int { return ix.pos }

// Len returns the number of indexed tuples.
func (ix *Index) Len() int { return ix.n }

// Add indexes t. The caller must not mutate t afterwards.
func (ix *Index) Add(t tuple.Tuple) {
	k := t[ix.pos]
	b := ix.m[k]
	switch {
	case b.one == nil:
		b.one = t
	case b.two == nil:
		b.two = t
	default:
		b.rest = append(b.rest, t)
	}
	ix.m[k] = b
	ix.n++
}

// Remove un-indexes t (matching by full tuple equality). Removing an
// absent tuple is a no-op.
func (ix *Index) Remove(t tuple.Tuple) {
	k := t[ix.pos]
	b, ok := ix.m[k]
	if !ok {
		return
	}
	switch {
	case b.one.Equal(t):
		b.one = b.two
		b.two = nil
	case b.two != nil && b.two.Equal(t):
		b.two = nil
	default:
		for i, u := range b.rest {
			if u.Equal(t) {
				b.rest[i] = b.rest[len(b.rest)-1]
				b.rest = b.rest[:len(b.rest)-1]
				ix.m[k] = b
				ix.n--
				return
			}
		}
		return
	}
	// An inline slot was vacated: backfill from the overflow so the
	// inline slots stay the densely packed prefix of the bucket.
	if b.two == nil && len(b.rest) > 0 {
		b.two = b.rest[len(b.rest)-1]
		b.rest = b.rest[:len(b.rest)-1]
	}
	if b.one == nil {
		delete(ix.m, k)
	} else {
		ix.m[k] = b
	}
	ix.n--
}

// EachMatch calls f for every indexed tuple whose indexed column equals
// v. It is the allocation-free probe used by the delta-join hot path.
func (ix *Index) EachMatch(v tuple.Value, f func(tuple.Tuple)) {
	b, ok := ix.m[v]
	if !ok {
		return
	}
	f(b.one)
	if b.two != nil {
		f(b.two)
	}
	for _, u := range b.rest {
		f(u)
	}
}

// Probe returns the tuples whose indexed column equals v, nil when
// none. The returned slice is freshly allocated; hot paths iterate with
// EachMatch instead. The caller must not mutate the tuples.
func (ix *Index) Probe(v tuple.Value) []tuple.Tuple {
	b, ok := ix.m[v]
	if !ok {
		return nil
	}
	out := make([]tuple.Tuple, 0, 2+len(b.rest))
	out = append(out, b.one)
	if b.two != nil {
		out = append(out, b.two)
	}
	return append(out, b.rest...)
}
