package relation

import (
	"testing"

	"mview/internal/schema"
	"mview/internal/tuple"
)

func TestTaggedSetGet(t *testing.T) {
	g := NewTagged(ts("A"))
	if err := g.Set(tuple.New(1), tuple.TagInsert); err != nil {
		t.Fatalf("Set: %v", err)
	}
	tag, ok := g.Get(tuple.New(1))
	if !ok || tag != tuple.TagInsert {
		t.Errorf("Get = %v,%v", tag, ok)
	}
	if _, ok := g.Get(tuple.New(2)); ok {
		t.Error("absent tuple reported present")
	}
	if err := g.Set(tuple.New(1, 2), tuple.TagOld); err == nil {
		t.Error("want arity error")
	}
}

func TestTagRelation(t *testing.T) {
	r := MustFromTuples(ts("A"), tuple.New(1), tuple.New(2))
	g := TagRelation(r, tuple.TagDelete)
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	g.Each(func(_ tuple.Tuple, tag tuple.Tag) {
		if tag != tuple.TagDelete {
			t.Errorf("tag = %v, want delete", tag)
		}
	})
}

func TestTaggedMerge(t *testing.T) {
	a := NewTagged(ts("A"))
	_ = a.Set(tuple.New(1), tuple.TagInsert)
	b := NewTagged(ts("A"))
	_ = b.Set(tuple.New(2), tuple.TagDelete)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}

	// Conflicting tags on the same tuple must be detected.
	c := NewTagged(ts("A"))
	_ = c.Set(tuple.New(1), tuple.TagDelete)
	if err := a.Merge(c); err == nil {
		t.Error("conflicting tag merge should fail")
	}
	// Merging the same tag is fine (idempotent).
	d := NewTagged(ts("A"))
	_ = d.Set(tuple.New(1), tuple.TagInsert)
	if err := a.Merge(d); err != nil {
		t.Errorf("idempotent merge failed: %v", err)
	}
}

func TestSelectTaggedPreservesTags(t *testing.T) {
	g := NewTagged(ts("A"))
	_ = g.Set(tuple.New(1), tuple.TagInsert)
	_ = g.Set(tuple.New(10), tuple.TagDelete)
	got := SelectTagged(g, func(t tuple.Tuple) bool { return t[0] >= 10 })
	if got.Len() != 1 {
		t.Fatalf("Len = %d", got.Len())
	}
	tag, _ := got.Get(tuple.New(10))
	if tag != tuple.TagDelete {
		t.Errorf("tag = %v, want delete (§5.3 unary table)", tag)
	}
}

// TestExample54Cases reproduces the six cases of the paper's Example
// 5.4 for V = R ⋈ S with R(A,B), S(B,C).
func TestExample54Cases(t *testing.T) {
	rs, ss := ts("A", "B"), ts("B", "C")
	cases := []struct {
		name    string
		rTag    tuple.Tag
		sTag    tuple.Tag
		want    tuple.Tag
		emerges bool
	}{
		{"case1 i_r⋈i_s → insert", tuple.TagInsert, tuple.TagInsert, tuple.TagInsert, true},
		{"case2 i_r⋈d_s → ignore", tuple.TagInsert, tuple.TagDelete, tuple.TagIgnore, false},
		{"case3 i_r⋈s → insert", tuple.TagInsert, tuple.TagOld, tuple.TagInsert, true},
		{"case4 d_r⋈d_s → delete", tuple.TagDelete, tuple.TagDelete, tuple.TagDelete, true},
		{"case5 d_r⋈s → delete", tuple.TagDelete, tuple.TagOld, tuple.TagDelete, true},
		{"case6 r⋈s → old", tuple.TagOld, tuple.TagOld, tuple.TagOld, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewTagged(rs)
			_ = r.Set(tuple.New(1, 2), c.rTag)
			s := NewTagged(ss)
			_ = s.Set(tuple.New(2, 3), c.sTag)
			j, err := NaturalJoinTagged(r, s)
			if err != nil {
				t.Fatalf("join: %v", err)
			}
			if !c.emerges {
				if j.Len() != 0 {
					t.Fatalf("ignored tuple emerged: %v", j)
				}
				return
			}
			tag, ok := j.Get(tuple.New(1, 2, 3))
			if !ok {
				t.Fatalf("joined tuple missing, got %v", j)
			}
			if tag != c.want {
				t.Errorf("tag = %v, want %v", tag, c.want)
			}
		})
	}
}

func TestCrossTagged(t *testing.T) {
	a := NewTagged(ts("A"))
	_ = a.Set(tuple.New(1), tuple.TagInsert)
	b := NewTagged(ts("B"))
	_ = b.Set(tuple.New(2), tuple.TagOld)
	_ = b.Set(tuple.New(3), tuple.TagDelete)
	got, err := CrossTagged(a, b)
	if err != nil {
		t.Fatalf("CrossTagged: %v", err)
	}
	// insert×old emerges as insert; insert×delete is discarded.
	if got.Len() != 1 {
		t.Fatalf("Len = %d, want 1: %v", got.Len(), got)
	}
	tag, ok := got.Get(tuple.New(1, 2))
	if !ok || tag != tuple.TagInsert {
		t.Errorf("Get = %v,%v", tag, ok)
	}
}

func TestDeltasSplitsAndCounts(t *testing.T) {
	g := NewTagged(ts("A", "B"))
	_ = g.Set(tuple.New(1, 10), tuple.TagInsert)
	_ = g.Set(tuple.New(2, 10), tuple.TagInsert)
	_ = g.Set(tuple.New(3, 20), tuple.TagDelete)
	_ = g.Set(tuple.New(4, 30), tuple.TagOld) // must not contribute

	ins, del, err := g.Deltas([]schema.Attribute{"B"})
	if err != nil {
		t.Fatalf("Deltas: %v", err)
	}
	if ins.Count(tuple.New(10)) != 2 {
		t.Errorf("insert count(10) = %d, want 2", ins.Count(tuple.New(10)))
	}
	if del.Count(tuple.New(20)) != 1 {
		t.Errorf("delete count(20) = %d, want 1", del.Count(tuple.New(20)))
	}
	if ins.Has(tuple.New(30)) || del.Has(tuple.New(30)) {
		t.Error("old tuples must not reach deltas")
	}
	if _, _, err := g.Deltas([]schema.Attribute{"Z"}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestTaggedTuplesSortedAndString(t *testing.T) {
	g := NewTagged(ts("A"))
	_ = g.Set(tuple.New(2), tuple.TagDelete)
	_ = g.Set(tuple.New(1), tuple.TagInsert)
	tt := g.Tuples()
	if len(tt) != 2 || !tt[0].Tuple.Equal(tuple.New(1)) {
		t.Errorf("Tuples = %v", tt)
	}
	if got := g.String(); got != "{(1):insert, (2):delete}" {
		t.Errorf("String = %q", got)
	}
}

func TestTaggedClone(t *testing.T) {
	g := NewTagged(ts("A"))
	_ = g.Set(tuple.New(1), tuple.TagInsert)
	c := g.Clone()
	_ = c.Set(tuple.New(1), tuple.TagDelete)
	if tag, _ := g.Get(tuple.New(1)); tag != tuple.TagInsert {
		t.Error("Clone aliases map")
	}
}
