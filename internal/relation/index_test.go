package relation

import (
	"testing"

	"mview/internal/tuple"
)

func TestBuildIndexAndProbe(t *testing.T) {
	r := MustFromTuples(ts("A", "B"),
		tuple.New(1, 10), tuple.New(2, 10), tuple.New(3, 20))
	ix, err := BuildIndex(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Pos() != 1 || ix.Len() != 3 {
		t.Errorf("Pos=%d Len=%d", ix.Pos(), ix.Len())
	}
	if got := ix.Probe(10); len(got) != 2 {
		t.Errorf("Probe(10) = %v", got)
	}
	if got := ix.Probe(99); got != nil {
		t.Errorf("Probe(99) = %v", got)
	}
	if _, err := BuildIndex(r, 5); err == nil {
		t.Error("out-of-range position must fail")
	}
}

func TestIndexAddRemove(t *testing.T) {
	ix := NewIndex(0)
	ix.Add(tuple.New(1, 5))
	ix.Add(tuple.New(1, 6))
	ix.Remove(tuple.New(1, 5))
	if got := ix.Probe(1); len(got) != 1 || !got[0].Equal(tuple.New(1, 6)) {
		t.Errorf("Probe = %v", got)
	}
	ix.Remove(tuple.New(1, 6))
	if got := ix.Probe(1); got != nil {
		t.Errorf("empty bucket should be deleted: %v", got)
	}
	if ix.Len() != 0 {
		t.Errorf("Len = %d", ix.Len())
	}
	// Removing an absent tuple is a no-op.
	ix.Remove(tuple.New(9, 9))
	if ix.Len() != 0 {
		t.Error("no-op remove changed size")
	}
}
