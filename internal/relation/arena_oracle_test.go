package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// mapOracle is the reference implementation the flat-arena storage is
// checked against: a plain Go map from encoded key to tuple, with none
// of the arena's handle indirection, liveness bitmaps, or
// copy-on-write sharing.
type mapOracle map[string]tuple.Tuple

func (o mapOracle) insert(t tuple.Tuple) { o[t.Key()] = t.Clone() }
func (o mapOracle) delete_(t tuple.Tuple) {
	delete(o, t.Key())
}
func (o mapOracle) clone() mapOracle {
	c := make(mapOracle, len(o))
	for k, t := range o {
		c[k] = t
	}
	return c
}

// checkAgainst asserts the relation and the oracle hold exactly the
// same tuple set.
func (o mapOracle) checkAgainst(t *testing.T, label string, r *Relation) {
	t.Helper()
	if r.Len() != len(o) {
		t.Fatalf("%s: Len = %d, oracle has %d", label, r.Len(), len(o))
	}
	seen := 0
	r.Each(func(tu tuple.Tuple) {
		seen++
		if _, ok := o[tu.Key()]; !ok {
			t.Errorf("%s: relation holds %v, oracle does not", label, tu)
		}
	})
	if seen != len(o) {
		t.Fatalf("%s: Each visited %d tuples, oracle has %d", label, seen, len(o))
	}
	for _, tu := range o {
		if !r.Has(tu) {
			t.Errorf("%s: oracle holds %v, relation does not", label, tu)
		}
	}
}

// saveLoad round-trips r through the keyed entry codec — the same
// surface the durable checkpoint writer and loader use — into a fresh
// relation with the same shard layout.
func saveLoad(t *testing.T, r *Relation) *Relation {
	t.Helper()
	var loaded *Relation
	if r.Shards() > 1 {
		var err error
		loaded, err = NewSharded(r.Scheme(), r.ShardKey(), r.Shards())
		if err != nil {
			t.Fatal(err)
		}
	} else {
		loaded = New(r.Scheme())
	}
	r.EachEntry(func(k string, tu tuple.Tuple) {
		if err := loaded.InsertKeyed(k, tu); err != nil {
			t.Fatalf("InsertKeyed(%v): %v", tu, err)
		}
	})
	return loaded
}

// TestArenaMatchesOracleAcrossShards drives the flat-arena storage
// through a randomized Insert/Delete/Clone/COW-mutation/Save/Load
// workload at 1, 2, 4, and 8 shards, checking it against the
// map-backed oracle after every phase. Inserts repeat keys (overwrite)
// and deletes target both present and absent tuples, so the arena's
// dead-handle and liveness paths are exercised, not just the happy
// path.
func TestArenaMatchesOracleAcrossShards(t *testing.T) {
	s := schema.MustScheme("A", "B", "C")
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(shards) * 7919))
			var r *Relation
			if shards == 1 {
				r = New(s)
			} else {
				var err error
				r, err = NewSharded(s, 0, shards)
				if err != nil {
					t.Fatal(err)
				}
			}
			oracle := make(mapOracle)

			// Clones taken mid-run, each paired with a frozen copy of
			// the oracle; mutated and re-checked at the end to pin
			// copy-on-write isolation in both directions.
			type held struct {
				r *Relation
				o mapOracle
			}
			var clones []held

			randTuple := func() tuple.Tuple {
				// Small value domain to force key collisions; a few
				// extreme values to stress the codec inside the arena.
				v := func() int64 {
					switch rng.Intn(12) {
					case 0:
						return int64(-1) << 62
					case 1:
						return int64(1)<<62 - 1
					default:
						return int64(rng.Intn(20) - 10)
					}
				}
				return tuple.New(v(), v(), v())
			}

			for step := 0; step < 2000; step++ {
				tu := randTuple()
				switch op := rng.Intn(10); {
				case op < 6: // insert
					if err := r.Insert(tu); err != nil {
						t.Fatal(err)
					}
					oracle.insert(tu)
				case op < 9: // delete (often absent)
					r.Delete(tu)
					oracle.delete_(tu)
				default: // clone, and keep both sides
					clones = append(clones, held{r.Clone(), oracle.clone()})
				}
				if step%250 == 249 {
					oracle.checkAgainst(t, fmt.Sprintf("step %d", step), r)
				}
			}
			oracle.checkAgainst(t, "final", r)

			// COW: mutate the original heavily after each clone was
			// taken — the clones must still match their frozen
			// oracles — then mutate each clone and re-check the
			// original is unaffected.
			for i, c := range clones {
				c.o.checkAgainst(t, fmt.Sprintf("clone %d before mutation", i), c.r)
			}
			snapshot := oracle.clone()
			for i, c := range clones {
				for j := 0; j < 100; j++ {
					tu := randTuple()
					if j%3 == 0 {
						c.r.Delete(tu)
						c.o.delete_(tu)
					} else {
						if err := c.r.Insert(tu); err != nil {
							t.Fatal(err)
						}
						c.o.insert(tu)
					}
				}
				c.o.checkAgainst(t, fmt.Sprintf("clone %d after mutation", i), c.r)
			}
			snapshot.checkAgainst(t, "original after clone mutations", r)

			// Save/Load: the keyed-entry round-trip must reproduce the
			// exact tuple set, and keep matching the oracle after
			// further mutation.
			loaded := saveLoad(t, r)
			oracle.checkAgainst(t, "after save/load", loaded)
			if !loaded.Equal(r) {
				t.Fatal("save/load round trip diverged from source")
			}
			for j := 0; j < 200; j++ {
				tu := randTuple()
				if j%3 == 0 {
					loaded.Delete(tu)
					oracle.delete_(tu)
				} else {
					if err := loaded.Insert(tu); err != nil {
						t.Fatal(err)
					}
					oracle.insert(tu)
				}
			}
			oracle.checkAgainst(t, "loaded after mutation", loaded)
		})
	}
}
