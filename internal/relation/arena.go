package relation

import (
	"maps"
	"slices"
	"sync/atomic"

	"mview/internal/tuple"
)

// rowArena is the flat storage unit shared by all three relation
// representations: tuple values live back-to-back in one []int64 row
// arena addressed by small-int handles, and the only per-tuple map
// state is a string-keyed handle index (tuple key → int32). Compared
// to the seed's map[string]tuple.Tuple, a full scan walks one
// contiguous array instead of chasing a boxed allocation per tuple,
// and the per-tuple containers (Counted counts, Tagged tags) become
// dense side slices indexed by handle.
//
// Two invariants make zero-copy reads safe:
//
//   - Rows are append-only: a stored row is never overwritten in
//     place. Deletion only marks the handle dead (the row is reclaimed
//     by the next compaction, which builds a fresh arena — the old
//     backing array, and any outstanding alias into it, stays intact).
//     Row slices handed out by each/row therefore behave like the
//     immutable tuples they replace, and may be retained by indexes,
//     tagged lifts, or snapshot readers.
//   - Handles are never reused. The next handle is always n, so side
//     slices (counts, tags) indexed by handle stay aligned by plain
//     appends.
//
// Copy-on-write (cloneShared) is O(pending changes), not O(rows): the
// clone shares the base index map outright, both sides route
// subsequent insertions through a small private overlay map (over)
// that folds back into a private base once it outgrows a fraction of
// the live set, and deletions flip a bit in a dense private liveness
// bitmap (liveBits, copied per clone at one word per 64 rows). A
// commit therefore pays for the tuples it touches plus an amortized
// fold, never for the full container — the difference between
// O(|delta|) and O(|view|) maintenance that §5's differential
// re-evaluation is about. Scans stay linear regardless: dead rows cost
// a bit test, not a map lookup.
//
// Key encoding is the tuple codec (tuple.AppendKey); mutating callers
// pass a scratch buffer so lookups use the compiler's zero-allocation
// map[string(bytes)] form and a key string is only materialized when a
// row is actually inserted.
type rowArena struct {
	arity int
	n     int32   // rows ever appended = next handle
	live  int32   // rows currently live
	rows  []int64 // row-major values; append-only
	dead  int32   // appended rows no longer live

	// liveBits holds one bit per handle; a clear bit marks a dead row.
	// Always private to this arena (cloneShared copies it), so deletes
	// mutate it freely.
	liveBits []uint64

	// idx maps tuple key → handle. When idxShared is set the map is
	// referenced by another arena (a cloneShared sibling) and must not
	// be written; insertions go to over instead, whose entries override
	// idx. Deletions never touch a shared idx at all — the stale entry
	// stays and is filtered by its dead liveness bit. A key re-added
	// after deletion lands in over (or overwrites in a private idx), so
	// at most one of an entry's (idx, over) handles is ever live.
	idx       map[string]int32
	idxShared bool
	over      map[string]int32

	// tail tracks which arena owns the spare append capacity of the
	// rows backing array. nil means the backing is unaliased and this
	// arena owns it implicitly (the common case for intermediates that
	// are never cloned — no token allocation). cloneShared materializes
	// the token and hands the tail to the clone (the typical flow
	// freezes the source and keeps mutating the clone) by winning a
	// compare-and-swap on the shared cell; a loser — or an arena whose
	// ownership was claimed by a later clone — reallocates on its next
	// append. The cell is touched only by mutators and cloners, never
	// by readers, so published arenas stay bit-for-bit frozen.
	tail *tailOwner
}

// tailOwner is shared by every arena aliasing one rows backing array;
// at any moment at most one of them (the owner) may append in place.
type tailOwner struct {
	owner atomic.Pointer[rowArena]
}

func newTailOwner(a *rowArena) *tailOwner {
	t := &tailOwner{}
	t.owner.Store(a)
	return t
}

// newRowArena returns an empty arena. The index map is allocated
// lazily on first insert — empty relations (a delta's untouched side,
// scratch outputs) are common enough that the map alloc shows up.
func newRowArena(arity int) *rowArena {
	return &rowArena{arity: arity}
}

func newRowArenaCap(arity, n int) *rowArena {
	if n == 0 {
		return &rowArena{arity: arity}
	}
	return &rowArena{
		arity: arity,
		rows:  make([]int64, 0, n*arity),
		idx:   make(map[string]int32, n),
	}
}

// len returns the number of live rows.
func (a *rowArena) len() int { return int(a.live) }

// row returns handle h's values. The full slice expression pins the
// capacity so a stray append on a retained alias cannot clobber the
// next row.
func (a *rowArena) row(h int32) tuple.Tuple {
	off := int(h) * a.arity
	return a.rows[off : off+a.arity : off+a.arity]
}

// isLive reports whether handle h's row is still live.
func (a *rowArena) isLive(h int32) bool {
	return a.liveBits[h>>6]&(1<<(uint(h)&63)) != 0
}

// find looks a key up without allocating.
func (a *rowArena) find(k []byte) (int32, bool) {
	if a.over != nil {
		if h, ok := a.over[string(k)]; ok {
			return h, a.isLive(h)
		}
	}
	h, ok := a.idx[string(k)]
	if ok && !a.isLive(h) {
		return 0, false
	}
	return h, ok
}

// findKey looks an existing key string up.
func (a *rowArena) findKey(k string) (int32, bool) {
	if a.over != nil {
		if h, ok := a.over[k]; ok {
			return h, a.isLive(h)
		}
	}
	h, ok := a.idx[k]
	if ok && !a.isLive(h) {
		return 0, false
	}
	return h, ok
}

// link records key k → handle h in the writable index layer.
func (a *rowArena) link(k string, h int32) {
	if a.idxShared {
		if a.over == nil {
			// Presized for a typical commit's worth of writes: overlay
			// maps are recreated every copy-on-write cycle, so growth
			// retables would recur per commit.
			a.over = make(map[string]int32, 32)
		}
		a.over[k] = h
		a.maybeFold()
		return
	}
	if a.idx == nil {
		a.idx = make(map[string]int32, 8)
	}
	a.idx[k] = h
}

// grow appends the concatenation of parts as a new live row and
// returns its handle.
func (a *rowArena) grow(parts ...[]int64) int32 {
	h := a.n
	a.n++
	a.live++
	if a.tail != nil && a.tail.owner.Load() != a {
		// The spare capacity was claimed by a clone: clamp our own
		// alias so append reallocates instead of clobbering rows the
		// owner appended after the clone point.
		a.rows = a.rows[:len(a.rows):len(a.rows)]
	}
	before := cap(a.rows)
	for _, p := range parts {
		a.rows = append(a.rows, p...)
	}
	if cap(a.rows) != before {
		// append moved to a fresh, unaliased backing array: implicit
		// self-ownership, no token needed until the next cloneShared.
		a.tail = nil
	}
	if int(h>>6) == len(a.liveBits) {
		a.liveBits = append(a.liveBits, 0)
	}
	a.liveBits[h>>6] |= 1 << (uint(h) & 63)
	return h
}

// add appends the concatenation of parts as a new row under key k
// (copied into a fresh string — the one unavoidable allocation of an
// insert) and returns its handle. The caller has checked absence.
func (a *rowArena) add(k []byte, parts ...[]int64) int32 {
	h := a.grow(parts...)
	a.link(string(k), h)
	return h
}

// addKeyed is add for a key that already exists as a string (copied
// from another arena's index): the string is shared, not re-allocated.
func (a *rowArena) addKeyed(k string, parts ...[]int64) int32 {
	h := a.grow(parts...)
	a.link(k, h)
	return h
}

// remove marks key k's row dead. It reports the unlinked handle. No
// allocation: a delete against a shared index just clears the liveness
// bit and leaves the stale entry to be filtered on lookup.
func (a *rowArena) remove(k []byte) (int32, bool) {
	h, ok := a.find(k)
	if !ok {
		return 0, false
	}
	a.liveBits[h>>6] &^= 1 << (uint(h) & 63)
	if !a.idxShared {
		delete(a.idx, string(k))
	}
	delete(a.over, string(k))
	a.dead++
	a.live--
	return h, true
}

// maybeFold merges the overlay into a fresh private base index once it
// outgrows a quarter of the live set, bounding the per-clone overlay
// copy and the double lookup on reads. Amortized cost per insertion is
// O(1) map work. Only ever called on a writable (unpublished) arena —
// published arenas are frozen by the engine's snapshot discipline and
// never mutate, so their idx stays shared.
func (a *rowArena) maybeFold() {
	if len(a.over) <= 32 || 4*len(a.over) <= int(a.live) {
		return
	}
	// A bucket-level map clone plus the overlay entries: much cheaper
	// than a per-entry rebuild. Stale dead-handle entries ride along
	// harmlessly (their liveness bits filter them) until compaction.
	idx := maps.Clone(a.idx)
	if idx == nil {
		idx = make(map[string]int32, len(a.over))
	}
	for k, h := range a.over {
		idx[k] = h
	}
	a.idx = idx
	a.idxShared = false
	a.over = nil
}

// each calls f for every live row. The walk is always a straight pass
// over the flat arena; dead rows cost a bit test. The callback must
// not mutate the row (retaining is safe — rows are immutable once
// stored).
func (a *rowArena) each(f func(tuple.Tuple)) {
	if a.arity == 0 {
		for h := int32(0); h < a.n; h++ {
			if a.dead == 0 || a.isLive(h) {
				f(nil)
			}
		}
		return
	}
	if a.dead == 0 {
		for off := 0; off < len(a.rows); off += a.arity {
			f(a.rows[off : off+a.arity : off+a.arity])
		}
		return
	}
	for h := int32(0); h < a.n; h++ {
		if a.isLive(h) {
			off := int(h) * a.arity
			f(a.rows[off : off+a.arity : off+a.arity])
		}
	}
}

// eachEntry calls f for every live (key, handle) pair. At most one of
// a key's (idx, over) entries is live, so the two maps are walked
// independently with a liveness filter and no cross-lookups. The key
// string may be shared (stored in another map) — strings are
// immutable.
func (a *rowArena) eachEntry(f func(k string, h int32)) {
	if a.dead == 0 && len(a.over) == 0 {
		for k, h := range a.idx {
			f(k, h)
		}
		return
	}
	for k, h := range a.idx {
		if a.isLive(h) {
			f(k, h)
		}
	}
	for k, h := range a.over {
		if a.isLive(h) {
			f(k, h)
		}
	}
}

// tooManyDead reports whether dead rows dominate the arena enough to
// warrant compaction; the slack keeps small relations from compacting
// on every delete.
func (a *rowArena) tooManyDead() bool {
	return a.dead > 64 && a.dead > a.live
}

// clone returns a compacted deep copy: live rows packed into a fresh
// arena (handles renumbered), key strings shared with the source. remap,
// when non-nil, is called once per live row with the old and new
// handles so callers can carry side slices (counts, tags) over.
func (a *rowArena) clone(remap func(old, new int32)) *rowArena {
	out := newRowArenaCap(a.arity, a.len())
	a.eachEntry(func(k string, h int32) {
		nh := out.addKeyed(k, a.row(h))
		if remap != nil {
			remap(h, nh)
		}
	})
	return out
}

// cloneShared returns a copy preserving handle numbering at
// O(pending changes) cost: the base index map is shared outright (both
// sides switch to overlay writes), the liveness bitmap is copied (one
// word per 64 rows), and the row storage backing is shared. The spare
// append capacity beyond the current length transfers to the clone
// when the source still owns it — the typical flow is "freeze the
// source as a published snapshot, keep mutating the clone", so the
// clone appends in place into the tail no reader of the source will
// ever scan (readers stop at the source's length). Ownership moves by
// compare-and-swap on the backing's shared tail cell: a second clone
// of the same source loses the race, receives a capacity-clamped
// alias, and reallocates on its first append — the source itself is
// never written, so clones are race-free against concurrent snapshot
// readers of the source.
//
// This is the commit-path copy-on-write primitive: cloning a
// 100k-tuple view costs a bitmap memmove plus a copy of the (small,
// regularly folded) overlay, not 100k map inserts or a row-storage
// copy.
func (a *rowArena) cloneShared() *rowArena {
	a.idxShared = true
	c := &rowArena{
		arity:     a.arity,
		n:         a.n,
		live:      a.live,
		dead:      a.dead,
		rows:      a.rows[:len(a.rows):len(a.rows)],
		liveBits:  slices.Clone(a.liveBits),
		idx:       a.idx,
		idxShared: true,
		over:      maps.Clone(a.over),
	}
	if a.tail == nil {
		// Unaliased backing, implicitly ours: materialize the token
		// with the clone as owner and hand over the full capacity.
		t := newTailOwner(c)
		a.tail, c.tail = t, t
		c.rows = a.rows
	} else if a.tail.owner.CompareAndSwap(a, c) {
		c.rows = a.rows
		c.tail = a.tail
	}
	return c
}

// handleIndex buckets row references by a projection key for hash
// joins. Refs are opaque int64s (plain handles, or shard<<32|handle
// for sharded relations). Buckets are singly-linked lists threaded
// through one pooled node slice, so building the index costs two
// amortized slice appends per row plus one key-string allocation per
// distinct join key — never a per-bucket slice. The map is assigned
// only for first-seen keys (map assignment, unlike lookup, cannot
// elide the string([]byte) conversion); list heads live in a dense
// side slice so repeat keys touch no map state.
type handleIndex struct {
	slots map[string]int32 // key → slot, assigned once per distinct key
	heads []int32          // slot → index of newest node in pool, -1 none
	pool  []refNode
}

type refNode struct {
	ref  int64
	next int32 // pool index of the next ref with this key, -1 ends
}

func newHandleIndex(sizeHint int) *handleIndex {
	if sizeHint == 0 {
		return &handleIndex{}
	}
	return &handleIndex{
		slots: make(map[string]int32, sizeHint),
		heads: make([]int32, 0, sizeHint),
		pool:  make([]refNode, 0, sizeHint),
	}
}

func (ix *handleIndex) add(k []byte, ref int64) {
	s, ok := ix.slots[string(k)]
	if !ok {
		if ix.slots == nil {
			ix.slots = make(map[string]int32, 8)
		}
		s = int32(len(ix.heads))
		ix.heads = append(ix.heads, -1)
		ix.slots[string(k)] = s
	}
	ix.pool = append(ix.pool, refNode{ref: ref, next: ix.heads[s]})
	ix.heads[s] = int32(len(ix.pool) - 1)
}

// eachRef calls f for every ref stored under k (in reverse insertion
// order, which joins don't care about).
func (ix *handleIndex) eachRef(k []byte, f func(int64)) {
	s, ok := ix.slots[string(k)]
	if !ok {
		return
	}
	for n := ix.heads[s]; n >= 0; n = ix.pool[n].next {
		f(ix.pool[n].ref)
	}
}
