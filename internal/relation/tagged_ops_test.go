package relation

import (
	"testing"

	"mview/internal/schema"
	"mview/internal/tuple"
)

func TestTagRelationAs(t *testing.T) {
	r := MustFromTuples(ts("A", "B"), tuple.New(1, 2))
	q := schema.MustScheme("x.A", "x.B")
	g, err := TagRelationAs(r, q, tuple.TagDelete)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Scheme().Equal(q) || g.Len() != 1 {
		t.Errorf("g = %v over %s", g, g.Scheme())
	}
	tag, ok := g.Get(tuple.New(1, 2))
	if !ok || tag != tuple.TagDelete {
		t.Errorf("Get = %v, %v", tag, ok)
	}
	if _, err := TagRelationAs(r, schema.MustScheme("X"), tuple.TagOld); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestJoinOnDirect(t *testing.T) {
	l := NewTagged(ts("A", "B"))
	_ = l.Set(tuple.New(1, 7), tuple.TagInsert)
	_ = l.Set(tuple.New(2, 8), tuple.TagOld)
	r := NewTagged(ts("C", "D"))
	_ = r.Set(tuple.New(7, 10), tuple.TagOld)
	_ = r.Set(tuple.New(8, 20), tuple.TagDelete)

	// Equi-join B = C.
	out, err := JoinOn(l, r, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("JoinOn = %v", out)
	}
	tag, _ := out.Get(tuple.New(1, 7, 7, 10))
	if tag != tuple.TagInsert {
		t.Errorf("insert⋈old = %v", tag)
	}
	tag, _ = out.Get(tuple.New(2, 8, 8, 20))
	if tag != tuple.TagDelete {
		t.Errorf("old⋈delete = %v", tag)
	}

	// Empty positions = cross product.
	cross, err := JoinOn(l, r, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cross.Len() != 3 { // 4 pairs minus the insert⋈delete (ignored)
		t.Errorf("cross = %v", cross)
	}

	// Mismatched position lists.
	if _, err := JoinOn(l, r, []int{0}, nil); err == nil {
		t.Error("mismatched positions must fail")
	}
	// Overlapping schemes.
	if _, err := JoinOn(l, l, nil, nil); err == nil {
		t.Error("overlapping schemes must fail")
	}
}

func TestReorderDirect(t *testing.T) {
	g := NewTagged(ts("A", "B", "C"))
	_ = g.Set(tuple.New(1, 2, 3), tuple.TagInsert)
	out, err := g.Reorder([]schema.Attribute{"C", "A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	tag, ok := out.Get(tuple.New(3, 1, 2))
	if !ok || tag != tuple.TagInsert {
		t.Errorf("reordered = %v", out)
	}
	if _, err := g.Reorder([]schema.Attribute{"A"}); err == nil {
		t.Error("short attribute list must fail")
	}
	if _, err := g.Reorder([]schema.Attribute{"A", "B", "Z"}); err == nil {
		t.Error("unknown attribute must fail")
	}
	// Non-permutation (duplicate) collapses and must be rejected.
	if _, err := g.Reorder([]schema.Attribute{"A", "A", "B"}); err == nil {
		t.Error("duplicate attribute must fail")
	}
}

func TestCountAllDirect(t *testing.T) {
	g := NewTagged(ts("A", "B"))
	_ = g.Set(tuple.New(1, 10), tuple.TagOld)
	_ = g.Set(tuple.New(2, 10), tuple.TagInsert)
	_ = g.Set(tuple.New(3, 20), tuple.TagDelete)
	c, err := g.CountAll([]schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	// CountAll is tag-agnostic: both B=10 derivations count.
	if c.Count(tuple.New(10)) != 2 || c.Count(tuple.New(20)) != 1 {
		t.Errorf("CountAll = %v", c)
	}
	if _, err := g.CountAll([]schema.Attribute{"Z"}); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestCountedAccessors(t *testing.T) {
	c := NewCounted(ts("A"))
	if !c.Scheme().Equal(ts("A")) {
		t.Error("Scheme accessor broken")
	}
	_ = c.Add(tuple.New(1), 2)
	_ = c.Add(tuple.New(2), 1)
	sum := int64(0)
	c.Each(func(_ tuple.Tuple, n int64) { sum += n })
	if sum != 3 {
		t.Errorf("Each sum = %d", sum)
	}
}
