package relation

import (
	"testing"

	"mview/internal/schema"
	"mview/internal/tuple"
)

func TestShardOf(t *testing.T) {
	if got := ShardOf(42, 1); got != 0 {
		t.Errorf("ShardOf(42, 1) = %d, want 0", got)
	}
	if got := ShardOf(42, 0); got != 0 {
		t.Errorf("ShardOf(42, 0) = %d, want 0", got)
	}
	counts := make([]int, 8)
	for v := int64(-500); v < 500; v++ {
		s := ShardOf(v, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%d, 8) = %d, out of range", v, s)
		}
		if s != ShardOf(v, 8) {
			t.Fatalf("ShardOf(%d, 8) not deterministic", v)
		}
		counts[s]++
	}
	// The finalizer mix must not degenerate: with 1000 sequential keys
	// over 8 shards no shard should be empty.
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d got no keys out of 1000 sequential values", s)
		}
	}
}

func TestNewShardedValidation(t *testing.T) {
	s := schema.MustScheme("A", "B")
	if _, err := NewSharded(s, 0, 0); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := NewSharded(s, 2, 4); err == nil {
		t.Error("key out of range must fail")
	}
	if _, err := NewSharded(s, -1, 4); err == nil {
		t.Error("negative key must fail")
	}
	r, err := NewSharded(s, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 4 || r.ShardKey() != 0 {
		t.Errorf("Shards/ShardKey = %d/%d, want 4/0", r.Shards(), r.ShardKey())
	}
}

// TestShardedOpsMatchMonolithic runs the full operator set over a
// sharded and a monolithic copy of the same contents: every derived
// relation must be equal.
func TestShardedOpsMatchMonolithic(t *testing.T) {
	s := schema.MustScheme("A", "B")
	mono := New(s)
	shrd, err := NewSharded(s, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		tu := tuple.New(i, i%5)
		mono.Insert(tu)
		shrd.Insert(tu)
	}
	for i := int64(0); i < 30; i += 3 {
		tu := tuple.New(i, i%5)
		mono.Delete(tu)
		shrd.Delete(tu)
	}
	if !mono.Equal(shrd) || !shrd.Equal(mono) || mono.Len() != shrd.Len() {
		t.Fatalf("contents diverged: mono %v, sharded %v", mono, shrd)
	}

	sum := 0
	for i := 0; i < shrd.Shards(); i++ {
		sum += shrd.ShardLen(i)
		shrd.EachShard(i, func(tu tuple.Tuple) {
			if ShardOf(tu[0], shrd.Shards()) != i {
				t.Errorf("tuple %v in wrong shard %d", tu, i)
			}
		})
	}
	if sum != shrd.Len() {
		t.Errorf("shard lengths sum to %d, Len = %d", sum, shrd.Len())
	}

	other := New(schema.MustScheme("B", "C"))
	for i := int64(0); i < 5; i++ {
		other.Insert(tuple.New(i, 100+i))
	}
	even := func(tu tuple.Tuple) bool { return tu[1] == 2 }
	proj := []schema.Attribute{"B"}
	pairs := []struct {
		name       string
		from, want *Relation
	}{
		{"Select", Select(shrd, even), Select(mono, even)},
		{"Project", mustRel(Project(shrd, proj)), mustRel(Project(mono, proj))},
		{"Union", mustRel(Union(shrd, mono)), mustRel(Union(mono, shrd))},
		{"Diff", mustRel(Diff(shrd, mono)), New(s)},
		{"Intersect", mustRel(Intersect(shrd, mono)), mono},
		{"NaturalJoin", mustRel(NaturalJoin(shrd, other)), mustRel(NaturalJoin(mono, other))},
	}
	for _, p := range pairs {
		if !p.from.Equal(p.want) {
			t.Errorf("%s diverged on sharded operand:\n got: %v\n want: %v", p.name, p.from, p.want)
		}
	}
}

func mustRel(r *Relation, err error) *Relation {
	if err != nil {
		panic(err)
	}
	return r
}

// TestShardedCloneCOW pins per-shard copy-on-write: mutating one shard
// of a clone leaves the original and the clone's other shards
// untouched and still structurally shared.
func TestShardedCloneCOW(t *testing.T) {
	s := schema.MustScheme("A", "B")
	orig, err := NewSharded(s, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		orig.Insert(tuple.New(i, i))
	}
	frozen := orig.Clone()
	want := frozen.Len()

	// Mutate the original: the clone must not move.
	orig.Insert(tuple.New(1000, 1))
	orig.Delete(tuple.New(3, 3))
	if frozen.Len() != want {
		t.Fatalf("clone changed under original's mutation: len %d, want %d", frozen.Len(), want)
	}
	if !frozen.Has(tuple.New(3, 3)) || frozen.Has(tuple.New(1000, 1)) {
		t.Error("clone observed the original's mutation")
	}

	// Mutate the clone: the original must not move either.
	before := orig.Len()
	frozen.Insert(tuple.New(2000, 2))
	if orig.Len() != before || orig.Has(tuple.New(2000, 2)) {
		t.Error("original observed the clone's mutation")
	}
}
