package relation

import (
	"testing"

	"mview/internal/schema"
	"mview/internal/tuple"
)

func TestCountedAddAndRemoveAtZero(t *testing.T) {
	c := NewCounted(ts("A"))
	if err := c.Add(tuple.New(1), 2); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if got := c.Count(tuple.New(1)); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if err := c.Add(tuple.New(1), -1); err != nil {
		t.Fatalf("Add -1: %v", err)
	}
	if !c.Has(tuple.New(1)) {
		t.Error("tuple should remain at count 1")
	}
	if err := c.Add(tuple.New(1), -1); err != nil {
		t.Fatalf("Add -1: %v", err)
	}
	if c.Has(tuple.New(1)) || c.Len() != 0 {
		t.Error("tuple with zero counter must be removed (§5.2)")
	}
	if c.Total() != 0 {
		t.Errorf("Total = %d, want 0", c.Total())
	}
}

func TestCountedNegativeCounterRejected(t *testing.T) {
	c := NewCounted(ts("A"))
	if err := c.Add(tuple.New(1), -1); err == nil {
		t.Error("negative counter must be rejected")
	}
	_ = c.Add(tuple.New(2), 1)
	if err := c.Add(tuple.New(2), -5); err == nil {
		t.Error("underflow must be rejected")
	}
}

func TestCountedAddZeroNoop(t *testing.T) {
	c := NewCounted(ts("A"))
	if err := c.Add(tuple.New(1), 0); err != nil {
		t.Fatalf("Add 0: %v", err)
	}
	if c.Len() != 0 {
		t.Error("Add 0 must not create a tuple")
	}
}

func TestCountedArity(t *testing.T) {
	c := NewCounted(ts("A", "B"))
	if err := c.Add(tuple.New(1), 1); err == nil {
		t.Error("want arity error")
	}
}

func TestFromRelationAndToRelation(t *testing.T) {
	r := MustFromTuples(ts("A"), tuple.New(1), tuple.New(2))
	c := FromRelation(r)
	if c.Total() != 2 || c.Count(tuple.New(1)) != 1 {
		t.Errorf("FromRelation: %v", c)
	}
	back := c.ToRelation()
	if !back.Equal(r) {
		t.Errorf("ToRelation = %v, want %v", back, r)
	}
}

func TestCountedMergeSubtract(t *testing.T) {
	a := NewCounted(ts("A"))
	_ = a.Add(tuple.New(1), 1)
	_ = a.Add(tuple.New(2), 2)
	b := NewCounted(ts("A"))
	_ = b.Add(tuple.New(2), 1)
	_ = b.Add(tuple.New(3), 1)

	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count(tuple.New(2)) != 3 || a.Count(tuple.New(3)) != 1 {
		t.Errorf("after Merge: %v", a)
	}
	if err := a.Subtract(b); err != nil {
		t.Fatalf("Subtract: %v", err)
	}
	if a.Count(tuple.New(2)) != 2 || a.Has(tuple.New(3)) {
		t.Errorf("after Subtract: %v", a)
	}
	if err := a.Merge(NewCounted(ts("Z"))); err == nil {
		t.Error("Merge across schemes should fail")
	}
	if err := a.Subtract(NewCounted(ts("Z"))); err == nil {
		t.Error("Subtract across schemes should fail")
	}
}

func TestCountedEqualAndClone(t *testing.T) {
	a := NewCounted(ts("A"))
	_ = a.Add(tuple.New(1), 2)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not Equal")
	}
	_ = b.Add(tuple.New(1), 1)
	if a.Equal(b) {
		t.Error("Equal must compare counts")
	}
	if a.Count(tuple.New(1)) != 2 {
		t.Error("Clone aliases map")
	}
}

func TestSelectCounted(t *testing.T) {
	c := NewCounted(ts("A"))
	_ = c.Add(tuple.New(1), 3)
	_ = c.Add(tuple.New(10), 2)
	got := SelectCounted(c, func(t tuple.Tuple) bool { return t[0] < 5 })
	if got.Count(tuple.New(1)) != 3 || got.Has(tuple.New(10)) {
		t.Errorf("SelectCounted = %v", got)
	}
	if got.Total() != 3 {
		t.Errorf("Total = %d, want 3", got.Total())
	}
}

// TestExample51 reproduces the paper's Example 5.1: the project view
// π_B(r) over r = {(1,10), (2,10), (3,20)}. Deleting (3,20) removes 20
// from the view, but deleting (1,10) must NOT remove 10, because (2,10)
// still contributes it. Counters make both cases uniform.
func TestExample51(t *testing.T) {
	r := MustFromTuples(ts("A", "B"),
		tuple.New(1, 10), tuple.New(2, 10), tuple.New(3, 20))
	v, err := ProjectCounted(FromRelation(r), []schema.Attribute{"B"})
	if err != nil {
		t.Fatalf("ProjectCounted: %v", err)
	}
	if v.Count(tuple.New(10)) != 2 || v.Count(tuple.New(20)) != 1 {
		t.Fatalf("initial view = %v", v)
	}

	// delete(R, {(3,20)}): view loses 20.
	del1, _ := ProjectCounted(FromRelation(MustFromTuples(ts("A", "B"), tuple.New(3, 20))), []schema.Attribute{"B"})
	if err := v.Subtract(del1); err != nil {
		t.Fatalf("Subtract: %v", err)
	}
	if v.Has(tuple.New(20)) {
		t.Error("20 should leave the view")
	}

	// delete(R, {(1,10)}): view must keep 10 with count 1.
	del2, _ := ProjectCounted(FromRelation(MustFromTuples(ts("A", "B"), tuple.New(1, 10))), []schema.Attribute{"B"})
	if err := v.Subtract(del2); err != nil {
		t.Fatalf("Subtract: %v", err)
	}
	if v.Count(tuple.New(10)) != 1 {
		t.Errorf("10 should survive with count 1, view = %v", v)
	}
}

// TestProjectDistributesOverDifference checks the §5.2 claim that the
// counted projection distributes over difference:
// π(r1 ⊖ r2) = π(r1) ⊖ π(r2).
func TestProjectDistributesOverDifference(t *testing.T) {
	s := ts("A", "B")
	r1 := MustFromTuples(s, tuple.New(1, 10), tuple.New(2, 10), tuple.New(3, 20), tuple.New(4, 30))
	r2 := MustFromTuples(s, tuple.New(1, 10), tuple.New(3, 20))

	diff, _ := Diff(r1, r2)
	left, _ := ProjectCounted(FromRelation(diff), []schema.Attribute{"B"})

	right, _ := ProjectCounted(FromRelation(r1), []schema.Attribute{"B"})
	sub, _ := ProjectCounted(FromRelation(r2), []schema.Attribute{"B"})
	if err := right.Subtract(sub); err != nil {
		t.Fatalf("Subtract: %v", err)
	}
	if !left.Equal(right) {
		t.Errorf("π(r1−r2) = %v, π(r1)⊖π(r2) = %v", left, right)
	}
}

func TestProjectCountedSums(t *testing.T) {
	c := NewCounted(ts("A", "B"))
	_ = c.Add(tuple.New(1, 10), 2)
	_ = c.Add(tuple.New(2, 10), 3)
	got, err := ProjectCounted(c, []schema.Attribute{"B"})
	if err != nil {
		t.Fatalf("ProjectCounted: %v", err)
	}
	if got.Count(tuple.New(10)) != 5 {
		t.Errorf("counter sum = %d, want 5", got.Count(tuple.New(10)))
	}
	if _, err := ProjectCounted(c, []schema.Attribute{"Z"}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

// TestNaturalJoinCountedMultiplies checks the §5.2 redefined join:
// t(N) = u(N) * v(N).
func TestNaturalJoinCountedMultiplies(t *testing.T) {
	a := NewCounted(ts("A", "B"))
	_ = a.Add(tuple.New(1, 2), 2)
	b := NewCounted(ts("B", "C"))
	_ = b.Add(tuple.New(2, 3), 3)
	got, err := NaturalJoinCounted(a, b)
	if err != nil {
		t.Fatalf("NaturalJoinCounted: %v", err)
	}
	if got.Count(tuple.New(1, 2, 3)) != 6 {
		t.Errorf("joined count = %d, want 6", got.Count(tuple.New(1, 2, 3)))
	}
	if got.Total() != 6 {
		t.Errorf("Total = %d, want 6", got.Total())
	}
}

func TestCrossCounted(t *testing.T) {
	a := NewCounted(ts("A"))
	_ = a.Add(tuple.New(1), 2)
	b := NewCounted(ts("B"))
	_ = b.Add(tuple.New(5), 3)
	got, err := CrossCounted(a, b)
	if err != nil {
		t.Fatalf("CrossCounted: %v", err)
	}
	if got.Count(tuple.New(1, 5)) != 6 {
		t.Errorf("count = %d, want 6", got.Count(tuple.New(1, 5)))
	}
	if _, err := CrossCounted(a, a); err == nil {
		t.Error("cross with shared scheme should fail")
	}
}

func TestCountedString(t *testing.T) {
	c := NewCounted(ts("A"))
	_ = c.Add(tuple.New(2), 1)
	_ = c.Add(tuple.New(1), 3)
	if got := c.String(); got != "{(1)×3, (2)×1}" {
		t.Errorf("String = %q", got)
	}
}
