package relation

import (
	"fmt"
	"sort"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// Tagged is a relation whose tuples carry the old/insert/delete tags of
// §5.3. During differential re-evaluation the operands of each
// truth-table row are tagged relations, and tags propagate through the
// operators: joins combine tags by the paper's tag table (dropping
// "ignore" results), while select and project preserve them.
type Tagged struct {
	scheme *schema.Scheme
	m      map[string]tentry
}

type tentry struct {
	t   tuple.Tuple
	tag tuple.Tag
}

// TaggedTuple pairs a tuple with its tag for deterministic iteration.
type TaggedTuple struct {
	Tuple tuple.Tuple
	Tag   tuple.Tag
}

// NewTagged returns an empty tagged relation over the given scheme.
func NewTagged(s *schema.Scheme) *Tagged {
	return &Tagged{scheme: s, m: make(map[string]tentry)}
}

// TagRelation lifts a set relation to a tagged relation with every
// tuple carrying the given tag.
func TagRelation(r *Relation, tag tuple.Tag) *Tagged {
	g := NewTagged(r.scheme)
	r.Each(func(t tuple.Tuple) {
		g.m[t.Key()] = tentry{t: t, tag: tag}
	})
	return g
}

// TagRelationAs lifts a set relation to a tagged relation over the
// given scheme (same arity, possibly different attribute names — the
// usual case is qualifying base attributes with an operand alias),
// with every tuple carrying the given tag.
func TagRelationAs(r *Relation, s *schema.Scheme, tag tuple.Tag) (*Tagged, error) {
	if s.Arity() != r.scheme.Arity() {
		return nil, fmt.Errorf("relation: cannot rebind %s as %s: arity mismatch", r.scheme, s)
	}
	g := NewTagged(s)
	r.Each(func(t tuple.Tuple) {
		g.m[t.Key()] = tentry{t: t, tag: tag}
	})
	return g, nil
}

// Scheme returns the relation's scheme.
func (g *Tagged) Scheme() *schema.Scheme { return g.scheme }

// Len returns the number of tuples.
func (g *Tagged) Len() int { return len(g.m) }

// Set records t with the given tag, replacing any previous tag.
func (g *Tagged) Set(t tuple.Tuple, tag tuple.Tag) error {
	if len(t) != g.scheme.Arity() {
		return fmt.Errorf("relation: tagged tuple %v has arity %d, scheme %s has arity %d",
			t, len(t), g.scheme, g.scheme.Arity())
	}
	g.m[t.Key()] = tentry{t: t.Clone(), tag: tag}
	return nil
}

// Get returns t's tag and whether t is present.
func (g *Tagged) Get(t tuple.Tuple) (tuple.Tag, bool) {
	e, ok := g.m[t.Key()]
	return e.tag, ok
}

// Each calls f for every (tuple, tag) pair in unspecified order.
func (g *Tagged) Each(f func(tuple.Tuple, tuple.Tag)) {
	for _, e := range g.m {
		f(e.t, e.tag)
	}
}

// Tuples returns all tagged tuples sorted lexicographically.
func (g *Tagged) Tuples() []TaggedTuple {
	out := make([]TaggedTuple, 0, len(g.m))
	for _, e := range g.m {
		out = append(out, TaggedTuple{Tuple: e.t, Tag: e.tag})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Less(out[j].Tuple) })
	return out
}

// Clone returns a deep copy.
func (g *Tagged) Clone() *Tagged {
	out := NewTagged(g.scheme)
	for k, e := range g.m {
		out.m[k] = e
	}
	return out
}

// Merge adds every tuple of o into g. A tuple present in both must
// carry the same tag; differential rows are disjoint regions of the
// product space, so a clash indicates a maintenance bug.
func (g *Tagged) Merge(o *Tagged) error {
	if err := sameScheme("tagged merge", g.scheme, o.scheme); err != nil {
		return err
	}
	for k, e := range o.m {
		if prev, ok := g.m[k]; ok && prev.tag != e.tag {
			return fmt.Errorf("relation: tuple %v tagged both %v and %v", e.t, prev.tag, e.tag)
		}
		g.m[k] = e
	}
	return nil
}

// String renders the relation as "{(1, 2):insert, …}" in sorted order.
func (g *Tagged) String() string {
	s := "{"
	for i, tt := range g.Tuples() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s:%s", tt.Tuple, tt.Tag)
	}
	return s + "}"
}

// SelectTagged returns σ_pred(g); per §5.3's unary tag table, the tag
// of every surviving tuple is preserved.
func SelectTagged(g *Tagged, pred func(tuple.Tuple) bool) *Tagged {
	out := NewTagged(g.scheme)
	for k, e := range g.m {
		if pred(e.t) {
			out.m[k] = e
		}
	}
	return out
}

// CrossTagged returns the tagged cross product a × b. Tags combine by
// the paper's table; result tuples tagged "ignore" are discarded ("they
// do not emerge from the join").
func CrossTagged(a, b *Tagged) (*Tagged, error) {
	cs, err := a.scheme.Concat(b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewTagged(cs)
	for _, ea := range a.m {
		for _, eb := range b.m {
			tag := tuple.JoinTags(ea.tag, eb.tag)
			if tag == tuple.TagIgnore {
				continue
			}
			t := ea.t.Concat(eb.t)
			out.m[t.Key()] = tentry{t: t, tag: tag}
		}
	}
	return out, nil
}

// NaturalJoinTagged returns a ⋈ b with tag propagation, discarding
// "ignore" results.
func NaturalJoinTagged(a, b *Tagged) (*Tagged, error) {
	p, err := planNaturalJoin(a.scheme, b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewTagged(p.out)
	idx := make(map[string][]tentry, len(b.m))
	for _, eb := range b.m {
		k := eb.t.Project(p.rightPos).Key()
		idx[k] = append(idx[k], eb)
	}
	for _, ea := range a.m {
		k := ea.t.Project(p.leftPos).Key()
		for _, eb := range idx[k] {
			tag := tuple.JoinTags(ea.tag, eb.tag)
			if tag == tuple.TagIgnore {
				continue
			}
			t := p.combine(ea.t, eb.t)
			out.m[t.Key()] = tentry{t: t, tag: tag}
		}
	}
	return out, nil
}

// JoinOn returns the equi-join of a and b on the given aligned
// position lists (a's lpos values must equal b's rpos values), with
// result tuples formed by concatenation. Tags combine by the paper's
// table; "ignore" results are discarded. Empty position lists yield
// the cross product. The schemes must be disjoint.
func JoinOn(a, b *Tagged, lpos, rpos []int) (*Tagged, error) {
	if len(lpos) != len(rpos) {
		return nil, fmt.Errorf("relation: JoinOn with %d left and %d right positions", len(lpos), len(rpos))
	}
	cs, err := a.scheme.Concat(b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewTagged(cs)
	idx := make(map[string][]tentry, len(b.m))
	for _, eb := range b.m {
		k := eb.t.Project(rpos).Key()
		idx[k] = append(idx[k], eb)
	}
	for _, ea := range a.m {
		k := ea.t.Project(lpos).Key()
		for _, eb := range idx[k] {
			tag := tuple.JoinTags(ea.tag, eb.tag)
			if tag == tuple.TagIgnore {
				continue
			}
			t := ea.t.Concat(eb.t)
			out.m[t.Key()] = tentry{t: t, tag: tag}
		}
	}
	return out, nil
}

// Reorder returns the tagged relation with columns permuted to the
// given attribute order, which must be a permutation of the scheme's
// attributes (so the mapping is bijective and tags are preserved).
func (g *Tagged) Reorder(attrs []schema.Attribute) (*Tagged, error) {
	if len(attrs) != g.scheme.Arity() {
		return nil, fmt.Errorf("relation: Reorder with %d of %d attributes", len(attrs), g.scheme.Arity())
	}
	pos, err := g.scheme.Positions(attrs)
	if err != nil {
		return nil, err
	}
	ps, err := g.scheme.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := NewTagged(ps)
	for _, e := range g.m {
		t := e.t.Project(pos)
		out.m[t.Key()] = tentry{t: t, tag: e.tag}
	}
	if out.Len() != g.Len() {
		return nil, fmt.Errorf("relation: Reorder collapsed tuples; attribute list is not a permutation")
	}
	return out, nil
}

// CountAll projects the tagged relation onto attrs with §5.2 counting,
// counting every tuple regardless of tag. It is used to materialize a
// view from scratch (all tuples tagged old).
func (g *Tagged) CountAll(attrs []schema.Attribute) (*Counted, error) {
	pos, err := g.scheme.Positions(attrs)
	if err != nil {
		return nil, err
	}
	ps, err := g.scheme.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := NewCounted(ps)
	for _, e := range g.m {
		if err := out.Add(e.t.Project(pos), 1); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Deltas projects the tagged relation onto attrs with §5.2 counting and
// splits the result by tag: inserted derivations and deleted
// derivations. Tuples tagged old or ignore contribute to neither.
//
// The returned counted relations are what Algorithm 5.1 applies to the
// stored view: v' = v ⊎ ins ⊖ del.
func (g *Tagged) Deltas(attrs []schema.Attribute) (ins, del *Counted, err error) {
	pos, err := g.scheme.Positions(attrs)
	if err != nil {
		return nil, nil, err
	}
	ps, err := g.scheme.Project(attrs)
	if err != nil {
		return nil, nil, err
	}
	ins, del = NewCounted(ps), NewCounted(ps)
	for _, e := range g.m {
		var target *Counted
		switch e.tag {
		case tuple.TagInsert:
			target = ins
		case tuple.TagDelete:
			target = del
		default:
			continue
		}
		if err := target.Add(e.t.Project(pos), 1); err != nil {
			return nil, nil, err
		}
	}
	return ins, del, nil
}
