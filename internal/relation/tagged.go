package relation

import (
	"fmt"
	"sort"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// Tagged is a relation whose tuples carry the old/insert/delete tags of
// §5.3. During differential re-evaluation the operands of each
// truth-table row are tagged relations, and tags propagate through the
// operators: joins combine tags by the paper's tag table (dropping
// "ignore" results), while select and project preserve them.
//
// Storage is one flat row arena plus a dense tags slice indexed by
// handle. Tagged has no removal operation, so the arena never holds
// dead rows and Each is a straight linear walk.
type Tagged struct {
	scheme *schema.Scheme
	a      *rowArena
	tags   []tuple.Tag
	kbuf   []byte // key scratch; mutation paths only (serialized), never cloned
}

// TaggedTuple pairs a tuple with its tag for deterministic iteration.
type TaggedTuple struct {
	Tuple tuple.Tuple
	Tag   tuple.Tag
}

// NewTagged returns an empty tagged relation over the given scheme.
func NewTagged(s *schema.Scheme) *Tagged {
	return &Tagged{scheme: s, a: newRowArena(s.Arity())}
}

// NewTaggedCap returns an empty tagged relation presized for n tuples.
func NewTaggedCap(s *schema.Scheme, n int) *Tagged {
	return &Tagged{
		scheme: s,
		a:      newRowArenaCap(s.Arity(), n),
		tags:   make([]tuple.Tag, 0, n),
	}
}

// TagRelation lifts a set relation to a tagged relation with every
// tuple carrying the given tag (key strings are shared with r).
func TagRelation(r *Relation, tag tuple.Tag) *Tagged {
	g := NewTagged(r.scheme)
	g.liftFrom(r, tag)
	return g
}

// TagRelationAs lifts a set relation to a tagged relation over the
// given scheme (same arity, possibly different attribute names — the
// usual case is qualifying base attributes with an operand alias),
// with every tuple carrying the given tag.
func TagRelationAs(r *Relation, s *schema.Scheme, tag tuple.Tag) (*Tagged, error) {
	if s.Arity() != r.scheme.Arity() {
		return nil, fmt.Errorf("relation: cannot rebind %s as %s: arity mismatch", r.scheme, s)
	}
	g := NewTagged(s)
	g.liftFrom(r, tag)
	return g, nil
}

// MergeRelation adds every tuple of r tagged tag, sharing r's key
// strings. A tuple already present has its tag overwritten.
func (g *Tagged) MergeRelation(r *Relation, tag tuple.Tag) error {
	if r.Scheme().Arity() != g.scheme.Arity() {
		return fmt.Errorf("relation: cannot merge %s into tagged %s: arity mismatch", r.Scheme(), g.scheme)
	}
	r.eachEntry(func(k string, t tuple.Tuple) {
		g.setKeyed(k, t, tag)
	})
	return nil
}

func (g *Tagged) liftFrom(r *Relation, tag tuple.Tag) {
	g.a = newRowArenaCap(g.scheme.Arity(), r.Len())
	g.tags = make([]tuple.Tag, 0, r.Len())
	r.eachEntry(func(k string, t tuple.Tuple) {
		g.a.addKeyed(k, t)
		g.tags = append(g.tags, tag)
	})
}

// Scheme returns the relation's scheme.
func (g *Tagged) Scheme() *schema.Scheme { return g.scheme }

// Len returns the number of tuples.
func (g *Tagged) Len() int { return g.a.len() }

// Set records t with the given tag, replacing any previous tag.
func (g *Tagged) Set(t tuple.Tuple, tag tuple.Tag) error {
	if len(t) != g.scheme.Arity() {
		return fmt.Errorf("relation: tagged tuple %v has arity %d, scheme %s has arity %d",
			t, len(t), g.scheme, g.scheme.Arity())
	}
	g.kbuf = tuple.AppendKey(g.kbuf[:0], t)
	if h, ok := g.a.find(g.kbuf); ok {
		g.tags[h] = tag
		return nil
	}
	g.a.add(g.kbuf, t)
	g.tags = append(g.tags, tag)
	return nil
}

// SetPair records the concatenation a ++ b with the given tag, without
// materializing the concatenated tuple: the two halves are appended
// straight into the arena. It is the indexed-probe fast path of
// differential join evaluation.
func (g *Tagged) SetPair(a, b tuple.Tuple, tag tuple.Tag) error {
	if len(a)+len(b) != g.scheme.Arity() {
		return fmt.Errorf("relation: tagged pair has arity %d+%d, scheme %s has arity %d",
			len(a), len(b), g.scheme, g.scheme.Arity())
	}
	g.kbuf = tuple.AppendKey(tuple.AppendKey(g.kbuf[:0], a), b)
	if h, ok := g.a.find(g.kbuf); ok {
		g.tags[h] = tag
		return nil
	}
	g.a.add(g.kbuf, a, b)
	g.tags = append(g.tags, tag)
	return nil
}

// setKeyed records t under an existing key string, sharing it.
func (g *Tagged) setKeyed(k string, t tuple.Tuple, tag tuple.Tag) {
	if h, ok := g.a.findKey(k); ok {
		g.tags[h] = tag
		return
	}
	g.a.addKeyed(k, t)
	g.tags = append(g.tags, tag)
}

// Get returns t's tag and whether t is present. Safe for concurrent
// readers (per-call key buffer).
func (g *Tagged) Get(t tuple.Tuple) (tuple.Tag, bool) {
	if len(t) != g.scheme.Arity() {
		return 0, false
	}
	var buf [keyBufSize]byte
	h, ok := g.a.find(tuple.AppendKey(buf[:0], t))
	if !ok {
		return 0, false
	}
	return g.tags[h], true
}

// Each calls f for every (tuple, tag) pair in unspecified order (a
// linear arena walk — Tagged never has dead rows).
func (g *Tagged) Each(f func(tuple.Tuple, tuple.Tag)) {
	for h := int32(0); h < g.a.n; h++ {
		f(g.a.row(h), g.tags[h])
	}
}

// Tuples returns all tagged tuples sorted lexicographically.
func (g *Tagged) Tuples() []TaggedTuple {
	out := make([]TaggedTuple, 0, g.a.len())
	g.Each(func(t tuple.Tuple, tag tuple.Tag) {
		out = append(out, TaggedTuple{Tuple: t, Tag: tag})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Less(out[j].Tuple) })
	return out
}

// Clone returns an independent copy (handle-preserving; key strings
// and row storage shared until either side appends).
func (g *Tagged) Clone() *Tagged {
	return &Tagged{
		scheme: g.scheme,
		a:      g.a.cloneShared(),
		tags:   append([]tuple.Tag(nil), g.tags...),
	}
}

// RebindScheme returns g viewed under scheme ps, which must have the
// same arity (the usual case is renaming qualified attributes to the
// view's output order when the column order already matches). Storage
// is shared, not copied: the result is a read-only alias — mutating
// either relation afterwards is undefined. Callers that need an
// independent copy use Clone.
func (g *Tagged) RebindScheme(ps *schema.Scheme) (*Tagged, error) {
	if ps.Arity() != g.scheme.Arity() {
		return nil, fmt.Errorf("relation: cannot rebind tagged %s as %s: arity mismatch", g.scheme, ps)
	}
	return &Tagged{scheme: ps, a: g.a, tags: g.tags}, nil
}

// Merge adds every tuple of o into g. A tuple present in both must
// carry the same tag; differential rows are disjoint regions of the
// product space, so a clash indicates a maintenance bug.
func (g *Tagged) Merge(o *Tagged) error {
	if err := sameScheme("tagged merge", g.scheme, o.scheme); err != nil {
		return err
	}
	var firstErr error
	o.a.eachEntry(func(k string, oh int32) {
		if firstErr != nil {
			return
		}
		t, tag := o.a.row(oh), o.tags[oh]
		if h, ok := g.a.findKey(k); ok {
			if g.tags[h] != tag {
				firstErr = fmt.Errorf("relation: tuple %v tagged both %v and %v", t, g.tags[h], tag)
				return
			}
			return
		}
		g.a.addKeyed(k, t)
		g.tags = append(g.tags, tag)
	})
	return firstErr
}

// String renders the relation as "{(1, 2):insert, …}" in sorted order.
func (g *Tagged) String() string {
	s := "{"
	for i, tt := range g.Tuples() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s:%s", tt.Tuple, tt.Tag)
	}
	return s + "}"
}

// SelectTagged returns σ_pred(g); per §5.3's unary tag table, the tag
// of every surviving tuple is preserved.
func SelectTagged(g *Tagged, pred func(tuple.Tuple) bool) *Tagged {
	out := &Tagged{scheme: g.scheme, a: newRowArenaCap(g.scheme.Arity(), g.a.len())}
	out.tags = make([]tuple.Tag, 0, g.a.len())
	g.a.eachEntry(func(k string, h int32) {
		t := g.a.row(h)
		if pred(t) {
			out.a.addKeyed(k, t)
			out.tags = append(out.tags, g.tags[h])
		}
	})
	return out
}

// CrossTagged returns the tagged cross product a × b. Tags combine by
// the paper's table; result tuples tagged "ignore" are discarded ("they
// do not emerge from the join").
func CrossTagged(a, b *Tagged) (*Tagged, error) {
	cs, err := a.scheme.Concat(b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewTagged(cs)
	a.Each(func(ta tuple.Tuple, ga tuple.Tag) {
		b.Each(func(tb tuple.Tuple, gb tuple.Tag) {
			tag := tuple.JoinTags(ga, gb)
			if tag == tuple.TagIgnore {
				return
			}
			out.SetPair(ta, tb, tag)
		})
	})
	return out, nil
}

// NaturalJoinTagged returns a ⋈ b with tag propagation, discarding
// "ignore" results.
func NaturalJoinTagged(a, b *Tagged) (*Tagged, error) {
	p, err := planNaturalJoin(a.scheme, b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewTagged(p.out)
	ix := newHandleIndex(b.a.len())
	var kb []byte
	pbuf := make(tuple.Tuple, len(p.rightPos))
	b.a.eachEntry(func(_ string, h int32) {
		t := b.a.row(h)
		for i, pos := range p.rightPos {
			pbuf[i] = t[pos]
		}
		kb = tuple.AppendKey(kb[:0], pbuf)
		ix.add(kb, int64(h))
	})
	lbuf := make(tuple.Tuple, len(p.leftPos))
	obuf := make(tuple.Tuple, 0, p.out.Arity())
	a.Each(func(ta tuple.Tuple, ga tuple.Tag) {
		for i, pos := range p.leftPos {
			lbuf[i] = ta[pos]
		}
		kb = tuple.AppendKey(kb[:0], lbuf)
		ix.eachRef(kb, func(ref int64) {
			h := int32(ref)
			tag := tuple.JoinTags(ga, b.tags[h])
			if tag == tuple.TagIgnore {
				return
			}
			obuf = p.appendCombine(obuf[:0], ta, b.a.row(h))
			out.Set(obuf, tag)
		})
	})
	return out, nil
}

// JoinOn returns the equi-join of a and b on the given aligned
// position lists (a's lpos values must equal b's rpos values), with
// result tuples formed by concatenation. Tags combine by the paper's
// table; "ignore" results are discarded. Empty position lists yield
// the cross product. The schemes must be disjoint.
func JoinOn(a, b *Tagged, lpos, rpos []int) (*Tagged, error) {
	cs, err := a.scheme.Concat(b.scheme)
	if err != nil {
		return nil, err
	}
	return JoinOnScheme(a, b, lpos, rpos, cs)
}

// JoinOnScheme is JoinOn with the concatenated output scheme supplied
// by the caller (it must equal a.Scheme().Concat(b.Scheme())), so
// repeated joins over the same operand shapes can reuse one scheme.
func JoinOnScheme(a, b *Tagged, lpos, rpos []int, cs *schema.Scheme) (*Tagged, error) {
	if len(lpos) != len(rpos) {
		return nil, fmt.Errorf("relation: JoinOn with %d left and %d right positions", len(lpos), len(rpos))
	}
	out := NewTaggedCap(cs, a.a.len())
	ix := newHandleIndex(b.a.len())
	var kb []byte
	pbuf := make(tuple.Tuple, len(rpos))
	b.a.eachEntry(func(_ string, h int32) {
		t := b.a.row(h)
		for i, pos := range rpos {
			pbuf[i] = t[pos]
		}
		kb = tuple.AppendKey(kb[:0], pbuf)
		ix.add(kb, int64(h))
	})
	lbuf := make(tuple.Tuple, len(lpos))
	a.Each(func(ta tuple.Tuple, ga tuple.Tag) {
		for i, pos := range lpos {
			lbuf[i] = ta[pos]
		}
		kb = tuple.AppendKey(kb[:0], lbuf)
		ix.eachRef(kb, func(ref int64) {
			h := int32(ref)
			tag := tuple.JoinTags(ga, b.tags[h])
			if tag == tuple.TagIgnore {
				return
			}
			out.SetPair(ta, b.a.row(h), tag)
		})
	})
	return out, nil
}

// Reorder returns the tagged relation with columns permuted to the
// given attribute order, which must be a permutation of the scheme's
// attributes (so the mapping is bijective and tags are preserved).
func (g *Tagged) Reorder(attrs []schema.Attribute) (*Tagged, error) {
	if len(attrs) != g.scheme.Arity() {
		return nil, fmt.Errorf("relation: Reorder with %d of %d attributes", len(attrs), g.scheme.Arity())
	}
	pos, err := g.scheme.Positions(attrs)
	if err != nil {
		return nil, err
	}
	ps, err := g.scheme.Project(attrs)
	if err != nil {
		return nil, err
	}
	return g.ReorderPlanned(pos, ps)
}

// ReorderPlanned is Reorder with the position map and target scheme
// precomputed (g.Scheme().Positions(attrs) and g.Scheme().Project
// (attrs)); callers that repeatedly permute to a fixed attribute order
// cache the plan instead of re-deriving it per call.
func (g *Tagged) ReorderPlanned(pos []int, ps *schema.Scheme) (*Tagged, error) {
	if len(pos) != g.scheme.Arity() || ps.Arity() != g.scheme.Arity() {
		return nil, fmt.Errorf("relation: Reorder plan with %d of %d attributes", len(pos), g.scheme.Arity())
	}
	if isIdentity(pos, g.scheme.Arity()) {
		// Already in order (the common case for select-shaped views):
		// rebind the scheme over a cheap handle-preserving clone.
		out := g.Clone()
		out.scheme = ps
		return out, nil
	}
	out := NewTaggedCap(ps, g.Len())
	buf := make(tuple.Tuple, len(pos))
	g.Each(func(t tuple.Tuple, tag tuple.Tag) {
		for i, p := range pos {
			buf[i] = t[p]
		}
		out.Set(buf, tag)
	})
	if out.Len() != g.Len() {
		return nil, fmt.Errorf("relation: Reorder collapsed tuples; attribute list is not a permutation")
	}
	return out, nil
}

// CountAll projects the tagged relation onto attrs with §5.2 counting,
// counting every tuple regardless of tag. It is used to materialize a
// view from scratch (all tuples tagged old).
func (g *Tagged) CountAll(attrs []schema.Attribute) (*Counted, error) {
	pos, err := g.scheme.Positions(attrs)
	if err != nil {
		return nil, err
	}
	ps, err := g.scheme.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := NewCountedCap(ps, g.Len())
	if isIdentity(pos, g.scheme.Arity()) {
		g.a.eachEntry(func(k string, h int32) {
			out.bumpKeyed(k, g.a.row(h), 1)
		})
		return out, nil
	}
	buf := make(tuple.Tuple, len(pos))
	g.Each(func(t tuple.Tuple, _ tuple.Tag) {
		for i, p := range pos {
			buf[i] = t[p]
		}
		out.bump(buf, 1)
	})
	return out, nil
}

// isIdentity reports whether projecting onto pos reproduces a tuple of
// the given arity unchanged — in which case projection outputs can
// share the operand's key strings.
func isIdentity(pos []int, arity int) bool {
	if len(pos) != arity {
		return false
	}
	for i, p := range pos {
		if p != i {
			return false
		}
	}
	return true
}

// Deltas projects the tagged relation onto attrs with §5.2 counting and
// splits the result by tag: inserted derivations and deleted
// derivations. Tuples tagged old or ignore contribute to neither.
//
// The returned counted relations are what Algorithm 5.1 applies to the
// stored view: v' = v ⊎ ins ⊖ del.
func (g *Tagged) Deltas(attrs []schema.Attribute) (ins, del *Counted, err error) {
	pos, err := g.scheme.Positions(attrs)
	if err != nil {
		return nil, nil, err
	}
	ps, err := g.scheme.Project(attrs)
	if err != nil {
		return nil, nil, err
	}
	return g.DeltasPlanned(pos, ps)
}

// DeltasPlanned is Deltas with the projection plan precomputed
// (g.Scheme().Positions(attrs) and g.Scheme().Project(attrs));
// maintainers that split the same joint relation every commit cache
// the plan instead of re-deriving two schemes per transaction.
func (g *Tagged) DeltasPlanned(pos []int, ps *schema.Scheme) (ins, del *Counted, err error) {
	ins, del = NewCountedCap(ps, g.Len()), NewCountedCap(ps, g.Len())
	if isIdentity(pos, g.scheme.Arity()) {
		// Select-shaped views project every column: the delta tuples
		// keep their keys, so share the strings instead of re-encoding.
		g.a.eachEntry(func(k string, h int32) {
			switch g.tags[h] {
			case tuple.TagInsert:
				ins.bumpKeyed(k, g.a.row(h), 1)
			case tuple.TagDelete:
				del.bumpKeyed(k, g.a.row(h), 1)
			}
		})
		return ins, del, nil
	}
	buf := make(tuple.Tuple, len(pos))
	g.Each(func(t tuple.Tuple, tag tuple.Tag) {
		var target *Counted
		switch tag {
		case tuple.TagInsert:
			target = ins
		case tuple.TagDelete:
			target = del
		default:
			return
		}
		for i, p := range pos {
			buf[i] = t[p]
		}
		target.bump(buf, 1)
	})
	return ins, del, nil
}
