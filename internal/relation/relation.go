// Package relation implements the three relation representations used
// by the mview engine and the relational operators over them:
//
//   - Relation: a set of tuples (the paper's model for base relations).
//   - Counted: a relation whose tuples carry the multiplicity counter
//     introduced in §5.2 to make projection distribute over difference.
//     Materialized views are Counted relations.
//   - Tagged: a relation whose tuples carry the old/insert/delete tags
//     of §5.3, used while differentially re-evaluating join views.
//
// All operators are pure: they allocate fresh results and never mutate
// their operands, except for the explicitly mutating methods (Insert,
// Delete, Add, Apply).
package relation

import (
	"fmt"
	"sort"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// Relation is a set of tuples over a fixed scheme.
type Relation struct {
	scheme *schema.Scheme
	m      map[string]tuple.Tuple
}

// New returns an empty relation over the given scheme.
func New(s *schema.Scheme) *Relation {
	return &Relation{scheme: s, m: make(map[string]tuple.Tuple)}
}

// FromTuples builds a relation from the given tuples, ignoring
// duplicates. It returns an error if any tuple's arity does not match
// the scheme.
func FromTuples(s *schema.Scheme, ts ...tuple.Tuple) (*Relation, error) {
	r := New(s)
	for _, t := range ts {
		if err := r.Insert(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustFromTuples is FromTuples for statically known data; it panics on
// arity mismatch.
func MustFromTuples(s *schema.Scheme, ts ...tuple.Tuple) *Relation {
	r, err := FromTuples(s, ts...)
	if err != nil {
		panic(err)
	}
	return r
}

// Scheme returns the relation's scheme.
func (r *Relation) Scheme() *schema.Scheme { return r.scheme }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.m) }

// Has reports whether t is in the relation.
func (r *Relation) Has(t tuple.Tuple) bool {
	_, ok := r.m[t.Key()]
	return ok
}

func (r *Relation) checkArity(t tuple.Tuple) error {
	if len(t) != r.scheme.Arity() {
		return fmt.Errorf("relation: tuple %v has arity %d, scheme %s has arity %d",
			t, len(t), r.scheme, r.scheme.Arity())
	}
	return nil
}

// Insert adds t to the relation. Inserting a present tuple is a no-op
// (set semantics). It returns an error on arity mismatch.
func (r *Relation) Insert(t tuple.Tuple) error {
	if err := r.checkArity(t); err != nil {
		return err
	}
	k := t.Key()
	if _, ok := r.m[k]; !ok {
		r.m[k] = t.Clone()
	}
	return nil
}

// Delete removes t; removing an absent tuple is a no-op.
func (r *Relation) Delete(t tuple.Tuple) {
	delete(r.m, t.Key())
}

// Each calls f for every tuple in unspecified order. The callback must
// not retain or mutate the tuple.
func (r *Relation) Each(f func(tuple.Tuple)) {
	for _, t := range r.m {
		f(t)
	}
}

// Tuples returns all tuples sorted lexicographically, for deterministic
// iteration and display.
func (r *Relation) Tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(r.m))
	for _, t := range r.m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := New(r.scheme)
	for k, t := range r.m {
		out.m[k] = t
	}
	return out
}

// Equal reports whether two relations have equal schemes and tuple
// sets.
func (r *Relation) Equal(o *Relation) bool {
	if !r.scheme.Equal(o.scheme) || len(r.m) != len(o.m) {
		return false
	}
	for k := range r.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

// String renders the relation as "{(1, 2), (3, 4)}" in sorted order.
func (r *Relation) String() string {
	ts := r.Tuples()
	s := "{"
	for i, t := range ts {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + "}"
}

func sameScheme(op string, a, b *schema.Scheme) error {
	if !a.Equal(b) {
		return fmt.Errorf("relation: %s over mismatched schemes %s and %s", op, a, b)
	}
	return nil
}

// Union returns r ∪ o. The schemes must be equal.
func Union(r, o *Relation) (*Relation, error) {
	if err := sameScheme("union", r.scheme, o.scheme); err != nil {
		return nil, err
	}
	out := r.Clone()
	for k, t := range o.m {
		out.m[k] = t
	}
	return out, nil
}

// Diff returns r − o. The schemes must be equal.
func Diff(r, o *Relation) (*Relation, error) {
	if err := sameScheme("difference", r.scheme, o.scheme); err != nil {
		return nil, err
	}
	out := New(r.scheme)
	for k, t := range r.m {
		if _, drop := o.m[k]; !drop {
			out.m[k] = t
		}
	}
	return out, nil
}

// Intersect returns r ∩ o. The schemes must be equal.
func Intersect(r, o *Relation) (*Relation, error) {
	if err := sameScheme("intersection", r.scheme, o.scheme); err != nil {
		return nil, err
	}
	out := New(r.scheme)
	for k, t := range r.m {
		if _, keep := o.m[k]; keep {
			out.m[k] = t
		}
	}
	return out, nil
}

// Select returns σ_pred(r).
func Select(r *Relation, pred func(tuple.Tuple) bool) *Relation {
	out := New(r.scheme)
	for k, t := range r.m {
		if pred(t) {
			out.m[k] = t
		}
	}
	return out
}

// Project returns the set projection π_attrs(r) (duplicates collapse).
// Use ProjectCounted when multiplicities matter (§5.2).
func Project(r *Relation, attrs []schema.Attribute) (*Relation, error) {
	pos, err := r.scheme.Positions(attrs)
	if err != nil {
		return nil, err
	}
	ps, err := r.scheme.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := New(ps)
	for _, t := range r.m {
		pt := t.Project(pos)
		out.m[pt.Key()] = pt
	}
	return out, nil
}

// Cross returns the cross product r × o. The schemes must be disjoint;
// qualify them first if they are not (schema.Scheme.Qualify).
func Cross(r, o *Relation) (*Relation, error) {
	cs, err := r.scheme.Concat(o.scheme)
	if err != nil {
		return nil, err
	}
	out := New(cs)
	for _, a := range r.m {
		for _, b := range o.m {
			t := a.Concat(b)
			out.m[t.Key()] = t
		}
	}
	return out, nil
}

// joinPlan precomputes the shapes of a natural join between two
// schemes: positions of the shared attributes on both sides, positions
// of the right-side attributes that are not shared, and the output
// scheme (left attributes followed by right-only attributes).
type joinPlan struct {
	leftPos, rightPos []int // shared attributes, aligned
	rightRest         []int // right positions excluded from output
	out               *schema.Scheme
}

func planNaturalJoin(l, r *schema.Scheme) (*joinPlan, error) {
	common := l.Common(r)
	p := &joinPlan{}
	for _, a := range common {
		lp, _ := l.Pos(a)
		rp, _ := r.Pos(a)
		p.leftPos = append(p.leftPos, lp)
		p.rightPos = append(p.rightPos, rp)
	}
	attrs := append([]schema.Attribute{}, l.Attributes()...)
	for i, a := range r.Attributes() {
		if !l.Has(a) {
			attrs = append(attrs, a)
			p.rightRest = append(p.rightRest, i)
		}
	}
	out, err := schema.NewScheme(attrs...)
	if err != nil {
		return nil, fmt.Errorf("relation: natural join scheme: %w", err)
	}
	p.out = out
	return p, nil
}

func (p *joinPlan) combine(a, b tuple.Tuple) tuple.Tuple {
	t := make(tuple.Tuple, 0, len(a)+len(p.rightRest))
	t = append(t, a...)
	for _, i := range p.rightRest {
		t = append(t, b[i])
	}
	return t
}

// NaturalJoin returns l ⋈ r: tuples agreeing on all shared attributes,
// with shared columns emitted once. With no shared attributes it
// degenerates to the cross product, per the standard definition.
func NaturalJoin(l, r *Relation) (*Relation, error) {
	p, err := planNaturalJoin(l.scheme, r.scheme)
	if err != nil {
		return nil, err
	}
	out := New(p.out)
	// Hash join: build on the smaller side conceptually; here build on r.
	idx := make(map[string][]tuple.Tuple, len(r.m))
	for _, b := range r.m {
		k := b.Project(p.rightPos).Key()
		idx[k] = append(idx[k], b)
	}
	for _, a := range l.m {
		k := a.Project(p.leftPos).Key()
		for _, b := range idx[k] {
			t := p.combine(a, b)
			out.m[t.Key()] = t
		}
	}
	return out, nil
}
