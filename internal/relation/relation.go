// Package relation implements the three relation representations used
// by the mview engine and the relational operators over them:
//
//   - Relation: a set of tuples (the paper's model for base relations),
//     internally split into hash shards (see shard.go).
//   - Counted: a relation whose tuples carry the multiplicity counter
//     introduced in §5.2 to make projection distribute over difference.
//     Materialized views are Counted relations.
//   - Tagged: a relation whose tuples carry the old/insert/delete tags
//     of §5.3, used while differentially re-evaluating join views.
//
// All three store their tuples in flat row arenas (arena.go): values
// live back-to-back in one []int64 per shard, the maps hold only
// int32 handles, and per-tuple payloads (counts, tags) are dense side
// slices indexed by handle. The representation is invisible behind the
// package-level ops.
//
// All operators are pure: they allocate fresh results and never mutate
// their operands, except for the explicitly mutating methods (Insert,
// Delete, Add, Apply).
package relation

import (
	"fmt"
	"sort"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// keyBufSize is the stack scratch used by concurrent read paths (Has,
// Count, Get): tuples of up to 8 attributes encode without heap
// allocation; wider tuples spill, which is correct and merely slower.
const keyBufSize = 64

// Relation is a set of tuples over a fixed scheme, stored as one or
// more hash-sharded row arenas keyed on one attribute. Clone shares
// the shard arenas copy-on-write; concurrent readers of a published
// relation are safe as long as all mutation happens on clones under
// the engine's write lock (the snapshot discipline in internal/db).
type Relation struct {
	scheme *schema.Scheme
	key    int // shard-key attribute position
	parts  []*rowArena
	shared []bool // parts[i] is also referenced by a clone or snapshot
	n      int
	kbuf   []byte // key scratch; mutation paths only (serialized), never cloned
}

// New returns an empty unsharded relation over the given scheme.
func New(s *schema.Scheme) *Relation {
	return &Relation{
		scheme: s,
		parts:  []*rowArena{newRowArena(s.Arity())},
		shared: make([]bool, 1),
	}
}

// NewCap returns an empty unsharded relation presized for n tuples.
func NewCap(s *schema.Scheme, n int) *Relation {
	return &Relation{
		scheme: s,
		parts:  []*rowArena{newRowArenaCap(s.Arity(), n)},
		shared: make([]bool, 1),
	}
}

// FromTuples builds a relation from the given tuples, ignoring
// duplicates. It returns an error if any tuple's arity does not match
// the scheme.
func FromTuples(s *schema.Scheme, ts ...tuple.Tuple) (*Relation, error) {
	r := New(s)
	for _, t := range ts {
		if err := r.Insert(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustFromTuples is FromTuples for statically known data; it panics on
// arity mismatch.
func MustFromTuples(s *schema.Scheme, ts ...tuple.Tuple) *Relation {
	r, err := FromTuples(s, ts...)
	if err != nil {
		panic(err)
	}
	return r
}

// Scheme returns the relation's scheme.
func (r *Relation) Scheme() *schema.Scheme { return r.scheme }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Has reports whether t is in the relation. Safe for concurrent
// readers of a published relation (uses a per-call key buffer).
func (r *Relation) Has(t tuple.Tuple) bool {
	if len(t) != r.scheme.Arity() {
		return false
	}
	var buf [keyBufSize]byte
	k := tuple.AppendKey(buf[:0], t)
	_, ok := r.parts[r.part(t)].find(k)
	return ok
}

func (r *Relation) checkArity(t tuple.Tuple) error {
	if len(t) != r.scheme.Arity() {
		return fmt.Errorf("relation: tuple %v has arity %d, scheme %s has arity %d",
			t, len(t), r.scheme, r.scheme.Arity())
	}
	return nil
}

// Insert adds t to the relation. Inserting a present tuple is a no-op
// (set semantics). It returns an error on arity mismatch.
func (r *Relation) Insert(t tuple.Tuple) error {
	if err := r.checkArity(t); err != nil {
		return err
	}
	r.put(t)
	return nil
}

// Delete removes t; removing an absent tuple is a no-op.
func (r *Relation) Delete(t tuple.Tuple) {
	if len(t) != r.scheme.Arity() {
		return
	}
	p := r.part(t)
	r.kbuf = tuple.AppendKey(r.kbuf[:0], t)
	if _, ok := r.parts[p].find(r.kbuf); !ok {
		return
	}
	a := r.writable(p)
	a.remove(r.kbuf)
	r.n--
	if a.tooManyDead() {
		r.parts[p] = a.clone(nil)
	}
}

// Each calls f for every tuple in unspecified order. The callback must
// not mutate the tuple; retaining it is safe (arena rows are immutable
// once stored).
func (r *Relation) Each(f func(tuple.Tuple)) {
	for _, a := range r.parts {
		a.each(f)
	}
}

// EachShard calls f for every tuple of shard i, in unspecified order.
func (r *Relation) EachShard(i int, f func(tuple.Tuple)) {
	r.parts[i].each(f)
}

// Tuples returns all tuples sorted lexicographically, for deterministic
// iteration and display.
func (r *Relation) Tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, r.n)
	r.Each(func(t tuple.Tuple) { out = append(out, t) })
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a copy sharing all shard arenas copy-on-write: the
// copy costs O(#shards), and a subsequent mutation of either side
// copies only the shard it touches. Callers must serialize Clone with
// other mutations of r (it marks r's parts shared).
func (r *Relation) Clone() *Relation {
	out := &Relation{
		scheme: r.scheme,
		key:    r.key,
		parts:  append([]*rowArena(nil), r.parts...),
		shared: make([]bool, len(r.parts)),
		n:      r.n,
	}
	for i := range r.parts {
		r.shared[i] = true
		out.shared[i] = true
	}
	return out
}

// Equal reports whether two relations have equal schemes and tuple
// sets; shard layout does not participate.
func (r *Relation) Equal(o *Relation) bool {
	if !r.scheme.Equal(o.scheme) || r.n != o.n {
		return false
	}
	eq := true
	for _, a := range r.parts {
		a.eachEntry(func(k string, h int32) {
			if !eq {
				return
			}
			t := a.row(h)
			if _, ok := o.parts[o.part(t)].findKey(k); !ok {
				eq = false
			}
		})
	}
	return eq
}

// String renders the relation as "{(1, 2), (3, 4)}" in sorted order.
func (r *Relation) String() string {
	ts := r.Tuples()
	s := "{"
	for i, t := range ts {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + "}"
}

func sameScheme(op string, a, b *schema.Scheme) error {
	if !a.Equal(b) {
		return fmt.Errorf("relation: %s over mismatched schemes %s and %s", op, a, b)
	}
	return nil
}

// eachEntry calls f for every (key, tuple) pair across all shards,
// letting same-scheme derivations share the key strings instead of
// re-encoding them.
func (r *Relation) eachEntry(f func(k string, t tuple.Tuple)) {
	for _, a := range r.parts {
		a.eachEntry(func(k string, h int32) { f(k, a.row(h)) })
	}
}

// EachEntry calls f for every (key, tuple) pair in unspecified order,
// where key is the tuple's codec key (tuple.Tuple.Key). Passing the
// key back into InsertKeyed of a same-arity container shares the
// string instead of re-encoding it; this is how delta pipelines keep
// one key allocation per tuple end to end.
func (r *Relation) EachEntry(f func(k string, t tuple.Tuple)) { r.eachEntry(f) }

// InsertKeyed is Insert for a tuple whose codec key is already known:
// k must equal t.Key(). The key string is shared, not re-encoded.
func (r *Relation) InsertKeyed(k string, t tuple.Tuple) error {
	if err := r.checkArity(t); err != nil {
		return err
	}
	r.putKeyed(k, t)
	return nil
}

// Union returns r ∪ o. The schemes must be equal.
func Union(r, o *Relation) (*Relation, error) {
	if err := sameScheme("union", r.scheme, o.scheme); err != nil {
		return nil, err
	}
	out := r.Clone()
	o.eachEntry(out.putKeyed)
	return out, nil
}

// Diff returns r − o. The schemes must be equal.
func Diff(r, o *Relation) (*Relation, error) {
	if err := sameScheme("difference", r.scheme, o.scheme); err != nil {
		return nil, err
	}
	out := New(r.scheme)
	r.eachEntry(func(k string, t tuple.Tuple) {
		if !o.Has(t) {
			out.putKeyed(k, t)
		}
	})
	return out, nil
}

// Intersect returns r ∩ o. The schemes must be equal.
func Intersect(r, o *Relation) (*Relation, error) {
	if err := sameScheme("intersection", r.scheme, o.scheme); err != nil {
		return nil, err
	}
	out := New(r.scheme)
	r.eachEntry(func(k string, t tuple.Tuple) {
		if o.Has(t) {
			out.putKeyed(k, t)
		}
	})
	return out, nil
}

// Select returns σ_pred(r).
func Select(r *Relation, pred func(tuple.Tuple) bool) *Relation {
	out := New(r.scheme)
	r.eachEntry(func(k string, t tuple.Tuple) {
		if pred(t) {
			out.putKeyed(k, t)
		}
	})
	return out
}

// Project returns the set projection π_attrs(r) (duplicates collapse).
// Use ProjectCounted when multiplicities matter (§5.2).
func Project(r *Relation, attrs []schema.Attribute) (*Relation, error) {
	pos, err := r.scheme.Positions(attrs)
	if err != nil {
		return nil, err
	}
	ps, err := r.scheme.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := New(ps)
	buf := make(tuple.Tuple, len(pos))
	r.Each(func(t tuple.Tuple) {
		for i, p := range pos {
			buf[i] = t[p]
		}
		out.put(buf)
	})
	return out, nil
}

// Cross returns the cross product r × o. The schemes must be disjoint;
// qualify them first if they are not (schema.Scheme.Qualify).
func Cross(r, o *Relation) (*Relation, error) {
	cs, err := r.scheme.Concat(o.scheme)
	if err != nil {
		return nil, err
	}
	out := New(cs)
	buf := make(tuple.Tuple, 0, cs.Arity())
	r.Each(func(a tuple.Tuple) {
		o.Each(func(b tuple.Tuple) {
			buf = append(append(buf[:0], a...), b...)
			out.put(buf)
		})
	})
	return out, nil
}

// joinPlan precomputes the shapes of a natural join between two
// schemes: positions of the shared attributes on both sides, positions
// of the right-side attributes that are not shared, and the output
// scheme (left attributes followed by right-only attributes).
type joinPlan struct {
	leftPos, rightPos []int // shared attributes, aligned
	rightRest         []int // right positions excluded from output
	out               *schema.Scheme
}

func planNaturalJoin(l, r *schema.Scheme) (*joinPlan, error) {
	common := l.Common(r)
	p := &joinPlan{}
	for _, a := range common {
		lp, _ := l.Pos(a)
		rp, _ := r.Pos(a)
		p.leftPos = append(p.leftPos, lp)
		p.rightPos = append(p.rightPos, rp)
	}
	attrs := append([]schema.Attribute{}, l.Attributes()...)
	for i, a := range r.Attributes() {
		if !l.Has(a) {
			attrs = append(attrs, a)
			p.rightRest = append(p.rightRest, i)
		}
	}
	out, err := schema.NewScheme(attrs...)
	if err != nil {
		return nil, fmt.Errorf("relation: natural join scheme: %w", err)
	}
	p.out = out
	return p, nil
}

// appendCombine appends the join of a and b (a followed by b's
// non-shared columns) to dst and returns it, so callers can reuse one
// scratch tuple across rows.
func (p *joinPlan) appendCombine(dst, a, b tuple.Tuple) tuple.Tuple {
	dst = append(dst, a...)
	for _, i := range p.rightRest {
		dst = append(dst, b[i])
	}
	return dst
}

// NaturalJoin returns l ⋈ r: tuples agreeing on all shared attributes,
// with shared columns emitted once. With no shared attributes it
// degenerates to the cross product, per the standard definition.
func NaturalJoin(l, r *Relation) (*Relation, error) {
	p, err := planNaturalJoin(l.scheme, r.scheme)
	if err != nil {
		return nil, err
	}
	out := New(p.out)
	// Hash join: build a handle index on r (refs pack shard and
	// handle), probe with l's rows.
	ix := newHandleIndex(r.n)
	var kb []byte
	pbuf := make(tuple.Tuple, len(p.rightPos))
	for pi, a := range r.parts {
		a.eachEntry(func(_ string, h int32) {
			b := a.row(h)
			for i, pos := range p.rightPos {
				pbuf[i] = b[pos]
			}
			kb = tuple.AppendKey(kb[:0], pbuf)
			ix.add(kb, int64(pi)<<32|int64(h))
		})
	}
	lbuf := make(tuple.Tuple, len(p.leftPos))
	obuf := make(tuple.Tuple, 0, p.out.Arity())
	l.Each(func(a tuple.Tuple) {
		for i, pos := range p.leftPos {
			lbuf[i] = a[pos]
		}
		kb = tuple.AppendKey(kb[:0], lbuf)
		ix.eachRef(kb, func(ref int64) {
			b := r.parts[ref>>32].row(int32(ref))
			obuf = p.appendCombine(obuf[:0], a, b)
			out.put(obuf)
		})
	})
	return out, nil
}
