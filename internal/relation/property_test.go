package relation

// Algebraic property tests over randomly generated relations, using
// testing/quick. These pin the laws the differential machinery relies
// on: distributivity of join over union/difference, counter exactness,
// and the §5.2 redefinitions.

import (
	"testing"
	"testing/quick"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// relGen decodes a byte string into a small relation over (A, B) with
// values in [0, 8).
func relGen(data []byte, s *schema.Scheme) *Relation {
	r := New(s)
	for i := 0; i+1 < len(data); i += 2 {
		_ = r.Insert(tuple.New(int64(data[i]%8), int64(data[i+1]%8)))
	}
	return r
}

var (
	abScheme = schema.MustScheme("A", "B")
	bcScheme = schema.MustScheme("B", "C")
)

func TestUnionCommutativeAssociative(t *testing.T) {
	f := func(a, b, c []byte) bool {
		ra, rb, rc := relGen(a, abScheme), relGen(b, abScheme), relGen(c, abScheme)
		ab, _ := Union(ra, rb)
		ba, _ := Union(rb, ra)
		if !ab.Equal(ba) {
			return false
		}
		abc1, _ := Union(ab, rc)
		bc, _ := Union(rb, rc)
		abc2, _ := Union(ra, bc)
		return abc1.Equal(abc2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffLaws(t *testing.T) {
	f := func(a, b []byte) bool {
		ra, rb := relGen(a, abScheme), relGen(b, abScheme)
		// (a − b) ∩ b = ∅
		d, _ := Diff(ra, rb)
		i, _ := Intersect(d, rb)
		if i.Len() != 0 {
			return false
		}
		// (a − b) ∪ (a ∩ b) = a
		ab, _ := Intersect(ra, rb)
		u, _ := Union(d, ab)
		return u.Equal(ra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestJoinDistributesOverUnion pins the §5.3 foundation:
// (a ∪ b) ⋈ c = (a ⋈ c) ∪ (b ⋈ c).
func TestJoinDistributesOverUnion(t *testing.T) {
	f := func(a, b, c []byte) bool {
		ra, rb := relGen(a, abScheme), relGen(b, abScheme)
		rc := relGen(c, bcScheme)
		u, _ := Union(ra, rb)
		left, _ := NaturalJoin(u, rc)
		ja, _ := NaturalJoin(ra, rc)
		jb, _ := NaturalJoin(rb, rc)
		right, _ := Union(ja, jb)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestJoinDistributesOverDifference pins the delete-side §5.3
// foundation: (a − d) ⋈ c = (a ⋈ c) − (d ⋈ c), for d ⊆ a.
func TestJoinDistributesOverDifference(t *testing.T) {
	f := func(a, dSel []byte) bool {
		ra := relGen(a, abScheme)
		// Build d ⊆ a by selecting a pseudo-random subset.
		d := New(abScheme)
		i := 0
		ra.Each(func(tu tuple.Tuple) {
			if len(dSel) > 0 && dSel[i%len(dSel)]%2 == 0 {
				_ = d.Insert(tu)
			}
			i++
		})
		rc := relGen(a, bcScheme) // any instance works
		diff, _ := Diff(ra, d)
		left, _ := NaturalJoin(diff, rc)
		ja, _ := NaturalJoin(ra, rc)
		jd, _ := NaturalJoin(d, rc)
		right, _ := Diff(ja, jd)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCountedProjectMatchesDerivationCount: π with counters counts
// exactly the derivations of each output tuple.
func TestCountedProjectMatchesDerivationCount(t *testing.T) {
	f := func(a []byte) bool {
		ra := relGen(a, abScheme)
		pc, err := ProjectCounted(FromRelation(ra), []schema.Attribute{"B"})
		if err != nil {
			return false
		}
		// Oracle: count manually.
		counts := make(map[int64]int64)
		ra.Each(func(tu tuple.Tuple) { counts[tu[1]]++ })
		if int64(len(counts)) != int64(pc.Len()) {
			return false
		}
		for v, n := range counts {
			if pc.Count(tuple.New(v)) != n {
				return false
			}
		}
		return pc.Total() == int64(ra.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCountedMergeSubtractInverse: (c ⊎ d) ⊖ d = c.
func TestCountedMergeSubtractInverse(t *testing.T) {
	f := func(a, b []byte) bool {
		c := FromRelation(relGen(a, abScheme))
		d := FromRelation(relGen(b, abScheme))
		orig := c.Clone()
		if err := c.Merge(d); err != nil {
			return false
		}
		if err := c.Subtract(d); err != nil {
			return false
		}
		return c.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTaggedJoinMatchesSetJoin: with all-old tags, the tagged join
// computes exactly the set natural join.
func TestTaggedJoinMatchesSetJoin(t *testing.T) {
	f := func(a, b []byte) bool {
		ra, rb := relGen(a, abScheme), relGen(b, bcScheme)
		want, _ := NaturalJoin(ra, rb)
		ta := TagRelation(ra, tuple.TagOld)
		tb := TagRelation(rb, tuple.TagOld)
		got, err := NaturalJoinTagged(ta, tb)
		if err != nil {
			return false
		}
		if got.Len() != want.Len() {
			return false
		}
		ok := true
		got.Each(func(tu tuple.Tuple, tag tuple.Tag) {
			if tag != tuple.TagOld || !want.Has(tu) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIndexMatchesScan: probing an index returns exactly the matching
// tuples, under arbitrary add/remove interleavings.
func TestIndexMatchesScan(t *testing.T) {
	f := func(ops []byte) bool {
		r := New(abScheme)
		ix := NewIndex(1)
		for i := 0; i+2 < len(ops); i += 3 {
			tu := tuple.New(int64(ops[i]%8), int64(ops[i+1]%8))
			if ops[i+2]%3 == 0 && r.Has(tu) {
				r.Delete(tu)
				ix.Remove(tu)
			} else if !r.Has(tu) {
				_ = r.Insert(tu)
				ix.Add(tu.Clone())
			}
		}
		for v := int64(0); v < 8; v++ {
			want := Select(r, func(tu tuple.Tuple) bool { return tu[1] == v })
			got := ix.Probe(v)
			if len(got) != want.Len() {
				return false
			}
			for _, tu := range got {
				if !want.Has(tu) {
					return false
				}
			}
		}
		return ix.Len() == r.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
