package relation

import (
	"fmt"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// Hash sharding of base relations. A Relation is internally a list of
// parts (hash-sharded row arenas); tuples are routed by hashing one
// designated shard-key attribute (the first attribute by default).
// Sharding is a representation property only: every operator and
// accessor observes identical set semantics at any shard count. It
// exists so that
//
//   - commit-time pre-clones are O(#shards), not O(#tuples): Clone
//     shares the part arenas copy-on-write and a mutation copies only
//     the one part it lands in (per-shard dirty tracking), and
//   - differential maintenance can split a delta by shard and fan the
//     per-shard sub-deltas out onto the worker pool, merging the
//     partial view deltas with the §5 counted operators.
//
// Both are safe because the paper's §4 irrelevance test and §5 counted
// differentials are tuple-local: a disjoint partition of the delta
// yields disjoint derivation sets whose ⊎-merge is exact.

// ShardOf returns the shard a key value hashes to among n shards. The
// mix is the splitmix64/murmur3 finalizer, so consecutive key values
// spread uniformly. n <= 1 always yields shard 0.
func ShardOf(v tuple.Value, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(v)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// NewSharded returns an empty relation over the given scheme split into
// n hash shards keyed on the attribute at position key.
func NewSharded(s *schema.Scheme, key, n int) (*Relation, error) {
	if n < 1 {
		return nil, fmt.Errorf("relation: shard count %d < 1", n)
	}
	if key < 0 || key >= s.Arity() {
		return nil, fmt.Errorf("relation: shard key position %d outside scheme %s", key, s)
	}
	r := &Relation{
		scheme: s,
		key:    key,
		parts:  make([]*rowArena, n),
		shared: make([]bool, n),
	}
	for i := range r.parts {
		r.parts[i] = newRowArena(s.Arity())
	}
	return r, nil
}

// Shards returns the number of hash shards (1 for unsharded relations).
func (r *Relation) Shards() int { return len(r.parts) }

// ShardKey returns the position of the shard-key attribute.
func (r *Relation) ShardKey() int { return r.key }

// ShardLen returns the number of tuples in shard i.
func (r *Relation) ShardLen(i int) int { return r.parts[i].len() }

// part returns the shard index tuple t routes to.
func (r *Relation) part(t tuple.Tuple) int {
	if len(r.parts) == 1 {
		return 0
	}
	return ShardOf(t[r.key], len(r.parts))
}

// writable returns part i's arena, first cloning it if it is shared
// with a clone or a published snapshot (copy-on-write: an update pays
// only for the shards it touches). The cheap handle-preserving clone
// is used unless dead rows dominate, in which case the copy compacts.
func (r *Relation) writable(i int) *rowArena {
	if r.shared[i] {
		if r.parts[i].tooManyDead() {
			r.parts[i] = r.parts[i].clone(nil)
		} else {
			r.parts[i] = r.parts[i].cloneShared()
		}
		r.shared[i] = false
	}
	return r.parts[i]
}

// put inserts t without arity checking; the arena copies t's values,
// so callers may pass scratch tuples. Present tuples are left
// untouched (set semantics).
func (r *Relation) put(t tuple.Tuple) {
	p := r.part(t)
	r.kbuf = tuple.AppendKey(r.kbuf[:0], t)
	if _, ok := r.parts[p].find(r.kbuf); ok {
		return
	}
	r.writable(p).add(r.kbuf, t)
	r.n++
}

// putKeyed is put for a tuple whose key string already exists (taken
// from another container's index): the string is shared, not
// re-encoded.
func (r *Relation) putKeyed(k string, t tuple.Tuple) {
	p := r.part(t)
	if _, ok := r.parts[p].findKey(k); ok {
		return
	}
	r.writable(p).addKeyed(k, t)
	r.n++
}
