package relation

import (
	"fmt"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// Hash sharding of base relations. A Relation is internally a list of
// parts (hash shards); tuples are routed by hashing one designated
// shard-key attribute (the first attribute by default). Sharding is a
// representation property only: every operator and accessor observes
// identical set semantics at any shard count. It exists so that
//
//   - commit-time pre-clones are O(#shards), not O(#tuples): Clone
//     shares the part maps copy-on-write and a mutation copies only
//     the one part it lands in (per-shard dirty tracking), and
//   - differential maintenance can split a delta by shard and fan the
//     per-shard sub-deltas out onto the worker pool, merging the
//     partial view deltas with the §5 counted operators.
//
// Both are safe because the paper's §4 irrelevance test and §5 counted
// differentials are tuple-local: a disjoint partition of the delta
// yields disjoint derivation sets whose ⊎-merge is exact.

// ShardOf returns the shard a key value hashes to among n shards. The
// mix is the splitmix64/murmur3 finalizer, so consecutive key values
// spread uniformly. n <= 1 always yields shard 0.
func ShardOf(v tuple.Value, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(v)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// NewSharded returns an empty relation over the given scheme split into
// n hash shards keyed on the attribute at position key.
func NewSharded(s *schema.Scheme, key, n int) (*Relation, error) {
	if n < 1 {
		return nil, fmt.Errorf("relation: shard count %d < 1", n)
	}
	if key < 0 || key >= s.Arity() {
		return nil, fmt.Errorf("relation: shard key position %d outside scheme %s", key, s)
	}
	r := &Relation{
		scheme: s,
		key:    key,
		parts:  make([]map[string]tuple.Tuple, n),
		shared: make([]bool, n),
	}
	for i := range r.parts {
		r.parts[i] = make(map[string]tuple.Tuple)
	}
	return r, nil
}

// Shards returns the number of hash shards (1 for unsharded relations).
func (r *Relation) Shards() int { return len(r.parts) }

// ShardKey returns the position of the shard-key attribute.
func (r *Relation) ShardKey() int { return r.key }

// ShardLen returns the number of tuples in shard i.
func (r *Relation) ShardLen(i int) int { return len(r.parts[i]) }

// part returns the shard index tuple t routes to.
func (r *Relation) part(t tuple.Tuple) int {
	if len(r.parts) == 1 {
		return 0
	}
	return ShardOf(t[r.key], len(r.parts))
}

// writable returns part i's map, first copying it if it is shared with
// a clone or a published snapshot (copy-on-write: an update pays only
// for the shards it touches).
func (r *Relation) writable(i int) map[string]tuple.Tuple {
	if r.shared[i] {
		cp := make(map[string]tuple.Tuple, len(r.parts[i]))
		for k, t := range r.parts[i] {
			cp[k] = t
		}
		r.parts[i] = cp
		r.shared[i] = false
	}
	return r.parts[i]
}

// put inserts t without arity checking or defensive cloning; callers
// guarantee both. Present tuples are left untouched (set semantics).
func (r *Relation) put(t tuple.Tuple) {
	p := r.part(t)
	k := t.Key()
	if _, ok := r.parts[p][k]; ok {
		return
	}
	r.writable(p)[k] = t
	r.n++
}
