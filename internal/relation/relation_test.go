package relation

import (
	"testing"

	"mview/internal/schema"
	"mview/internal/tuple"
)

func ts(attrs ...schema.Attribute) *schema.Scheme { return schema.MustScheme(attrs...) }

func TestInsertDeleteHasLen(t *testing.T) {
	r := New(ts("A", "B"))
	if err := r.Insert(tuple.New(1, 2)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := r.Insert(tuple.New(1, 2)); err != nil {
		t.Fatalf("duplicate Insert: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1 (set semantics)", r.Len())
	}
	if !r.Has(tuple.New(1, 2)) {
		t.Error("Has(1,2) = false")
	}
	r.Delete(tuple.New(1, 2))
	if r.Len() != 0 || r.Has(tuple.New(1, 2)) {
		t.Error("Delete did not remove tuple")
	}
	r.Delete(tuple.New(9, 9)) // absent: no-op
}

func TestInsertArityMismatch(t *testing.T) {
	r := New(ts("A", "B"))
	if err := r.Insert(tuple.New(1)); err == nil {
		t.Error("want arity error")
	}
}

func TestInsertClonesTuple(t *testing.T) {
	r := New(ts("A"))
	mut := tuple.New(7)
	_ = r.Insert(mut)
	mut[0] = 8
	if !r.Has(tuple.New(7)) {
		t.Error("Insert must store a copy, not alias caller memory")
	}
}

func TestTuplesSorted(t *testing.T) {
	r := MustFromTuples(ts("A"), tuple.New(3), tuple.New(1), tuple.New(2))
	got := r.Tuples()
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("Tuples not sorted: %v", got)
		}
	}
}

func TestCloneEqual(t *testing.T) {
	r := MustFromTuples(ts("A", "B"), tuple.New(1, 2), tuple.New(3, 4))
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone not Equal")
	}
	c.Delete(tuple.New(1, 2))
	if r.Equal(c) {
		t.Error("Equal after divergence")
	}
	if r.Len() != 2 {
		t.Error("Clone aliases map")
	}
	if r.Equal(MustFromTuples(ts("X", "Y"), tuple.New(1, 2), tuple.New(3, 4))) {
		t.Error("Equal must compare schemes")
	}
}

func TestUnionDiffIntersect(t *testing.T) {
	s := ts("A")
	a := MustFromTuples(s, tuple.New(1), tuple.New(2))
	b := MustFromTuples(s, tuple.New(2), tuple.New(3))

	u, err := Union(a, b)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if u.Len() != 3 {
		t.Errorf("Union Len = %d, want 3", u.Len())
	}

	d, err := Diff(a, b)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if d.Len() != 1 || !d.Has(tuple.New(1)) {
		t.Errorf("Diff = %v", d)
	}

	i, err := Intersect(a, b)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if i.Len() != 1 || !i.Has(tuple.New(2)) {
		t.Errorf("Intersect = %v", i)
	}

	if _, err := Union(a, MustFromTuples(ts("Z"), tuple.New(1))); err == nil {
		t.Error("Union across schemes should fail")
	}
	if _, err := Diff(a, New(ts("A", "B"))); err == nil {
		t.Error("Diff across schemes should fail")
	}
	if _, err := Intersect(a, New(ts("Q"))); err == nil {
		t.Error("Intersect across schemes should fail")
	}
}

func TestSelect(t *testing.T) {
	r := MustFromTuples(ts("A"), tuple.New(1), tuple.New(5), tuple.New(10))
	got := Select(r, func(t tuple.Tuple) bool { return t[0] >= 5 })
	if got.Len() != 2 || got.Has(tuple.New(1)) {
		t.Errorf("Select = %v", got)
	}
}

func TestProjectSetCollapsesDuplicates(t *testing.T) {
	r := MustFromTuples(ts("A", "B"), tuple.New(1, 10), tuple.New(2, 10), tuple.New(3, 20))
	got, err := Project(r, []schema.Attribute{"B"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if got.Len() != 2 {
		t.Errorf("Project Len = %d, want 2", got.Len())
	}
	if _, err := Project(r, []schema.Attribute{"Z"}); err == nil {
		t.Error("Project on unknown attribute should fail")
	}
}

func TestCross(t *testing.T) {
	a := MustFromTuples(ts("A"), tuple.New(1), tuple.New(2))
	b := MustFromTuples(ts("B"), tuple.New(10))
	got, err := Cross(a, b)
	if err != nil {
		t.Fatalf("Cross: %v", err)
	}
	if got.Len() != 2 || !got.Has(tuple.New(1, 10)) || !got.Has(tuple.New(2, 10)) {
		t.Errorf("Cross = %v", got)
	}
	if _, err := Cross(a, MustFromTuples(ts("A"), tuple.New(1))); err == nil {
		t.Error("Cross with shared attribute should fail")
	}
}

func TestNaturalJoin(t *testing.T) {
	r := MustFromTuples(ts("A", "B"), tuple.New(1, 2), tuple.New(2, 10))
	s := MustFromTuples(ts("B", "C"), tuple.New(2, 10), tuple.New(10, 20), tuple.New(12, 15))
	got, err := NaturalJoin(r, s)
	if err != nil {
		t.Fatalf("NaturalJoin: %v", err)
	}
	want := MustFromTuples(ts("A", "B", "C"), tuple.New(1, 2, 10), tuple.New(2, 10, 20))
	if !got.Equal(want) {
		t.Errorf("NaturalJoin = %v, want %v", got, want)
	}
}

func TestNaturalJoinNoCommonIsCross(t *testing.T) {
	a := MustFromTuples(ts("A"), tuple.New(1))
	b := MustFromTuples(ts("B"), tuple.New(2), tuple.New(3))
	got, err := NaturalJoin(a, b)
	if err != nil {
		t.Fatalf("NaturalJoin: %v", err)
	}
	if got.Len() != 2 {
		t.Errorf("degenerate join Len = %d, want 2", got.Len())
	}
}

func TestStringDeterministic(t *testing.T) {
	r := MustFromTuples(ts("A"), tuple.New(2), tuple.New(1))
	if got := r.String(); got != "{(1), (2)}" {
		t.Errorf("String = %q", got)
	}
}
