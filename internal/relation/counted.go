package relation

import (
	"fmt"
	"sort"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// Counted is a relation whose tuples carry the multiplicity counter of
// §5.2. The counter records how many operand tuples contribute to each
// view tuple, which restores the distributive property of projection
// over difference: π(r1 − r2) = π(r1) ⊖ π(r2).
//
// Base relations have an implicit counter of one on every tuple (the
// paper: "for base relations, this attribute need not be explicitly
// stored since its value in every tuple is always one").
type Counted struct {
	scheme *schema.Scheme
	m      map[string]centry
	total  int64 // sum of all counts, maintained incrementally
}

type centry struct {
	t tuple.Tuple
	n int64
}

// CountedTuple pairs a tuple with its multiplicity, for iteration in
// deterministic order.
type CountedTuple struct {
	Tuple tuple.Tuple
	Count int64
}

// NewCounted returns an empty counted relation over the given scheme.
func NewCounted(s *schema.Scheme) *Counted {
	return &Counted{scheme: s, m: make(map[string]centry)}
}

// FromRelation lifts a set relation to a counted relation with every
// count equal to one.
func FromRelation(r *Relation) *Counted {
	c := NewCounted(r.scheme)
	r.Each(func(t tuple.Tuple) {
		c.m[t.Key()] = centry{t: t, n: 1}
	})
	c.total = int64(r.Len())
	return c
}

// Scheme returns the relation's scheme.
func (c *Counted) Scheme() *schema.Scheme { return c.scheme }

// Len returns the number of distinct tuples.
func (c *Counted) Len() int { return len(c.m) }

// Total returns the sum of all multiplicities.
func (c *Counted) Total() int64 { return c.total }

// Count returns the multiplicity of t (zero when absent).
func (c *Counted) Count(t tuple.Tuple) int64 {
	return c.m[t.Key()].n
}

// Has reports whether t has a positive count.
func (c *Counted) Has(t tuple.Tuple) bool { return c.Count(t) > 0 }

// Add adjusts t's counter by n (n may be negative). The tuple is
// removed when its counter reaches zero. It returns an error if the
// counter would become negative, which indicates an inconsistent
// maintenance sequence, or on arity mismatch.
func (c *Counted) Add(t tuple.Tuple, n int64) error {
	if len(t) != c.scheme.Arity() {
		return fmt.Errorf("relation: counted tuple %v has arity %d, scheme %s has arity %d",
			t, len(t), c.scheme, c.scheme.Arity())
	}
	if n == 0 {
		return nil
	}
	k := t.Key()
	e := c.m[k]
	next := e.n + n
	switch {
	case next < 0:
		return fmt.Errorf("relation: counter for %v would become negative (%d%+d)", t, e.n, n)
	case next == 0:
		delete(c.m, k)
	default:
		if e.t == nil {
			e.t = t.Clone()
		}
		e.n = next
		c.m[k] = e
	}
	c.total += n
	return nil
}

// Each calls f for every (tuple, count) pair in unspecified order.
func (c *Counted) Each(f func(tuple.Tuple, int64)) {
	for _, e := range c.m {
		f(e.t, e.n)
	}
}

// Tuples returns all counted tuples sorted lexicographically.
func (c *Counted) Tuples() []CountedTuple {
	out := make([]CountedTuple, 0, len(c.m))
	for _, e := range c.m {
		out = append(out, CountedTuple{Tuple: e.t, Count: e.n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Less(out[j].Tuple) })
	return out
}

// Clone returns a deep copy.
func (c *Counted) Clone() *Counted {
	out := NewCounted(c.scheme)
	for k, e := range c.m {
		out.m[k] = e
	}
	out.total = c.total
	return out
}

// Equal reports whether two counted relations have equal schemes,
// tuples, and multiplicities. It is the correctness oracle used to
// compare differential maintenance against full re-evaluation.
func (c *Counted) Equal(o *Counted) bool {
	if !c.scheme.Equal(o.scheme) || len(c.m) != len(o.m) {
		return false
	}
	for k, e := range c.m {
		if o.m[k].n != e.n {
			return false
		}
	}
	return true
}

// ToRelation collapses multiplicities, returning the underlying set.
func (c *Counted) ToRelation() *Relation {
	out := New(c.scheme)
	for _, e := range c.m {
		out.put(e.t)
	}
	return out
}

// String renders the relation as "{(1, 2)×3, (4, 5)×1}" in sorted
// order.
func (c *Counted) String() string {
	s := "{"
	for i, ct := range c.Tuples() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s×%d", ct.Tuple, ct.Count)
	}
	return s + "}"
}

// Merge adds every counted tuple of o into c (the ⊎ operator). It
// mutates c and returns an error on scheme mismatch.
func (c *Counted) Merge(o *Counted) error {
	if err := sameScheme("counted merge", c.scheme, o.scheme); err != nil {
		return err
	}
	for _, e := range o.m {
		if err := c.Add(e.t, e.n); err != nil {
			return err
		}
	}
	return nil
}

// Subtract removes every counted tuple of o from c (the ⊖ operator),
// erroring if any counter would go negative.
func (c *Counted) Subtract(o *Counted) error {
	if err := sameScheme("counted subtract", c.scheme, o.scheme); err != nil {
		return err
	}
	for _, e := range o.m {
		if err := c.Add(e.t, -e.n); err != nil {
			return err
		}
	}
	return nil
}

// SelectCounted returns σ_pred(c); selection leaves counters untouched
// (§5.2: "the select operation is not affected").
func SelectCounted(c *Counted, pred func(tuple.Tuple) bool) *Counted {
	out := NewCounted(c.scheme)
	for k, e := range c.m {
		if pred(e.t) {
			out.m[k] = e
			out.total += e.n
		}
	}
	return out
}

// ProjectCounted returns π_attrs(c) under the §5.2 redefinition: the
// counter of an output tuple is the sum of the counters of the operand
// tuples that project onto it.
func ProjectCounted(c *Counted, attrs []schema.Attribute) (*Counted, error) {
	pos, err := c.scheme.Positions(attrs)
	if err != nil {
		return nil, err
	}
	ps, err := c.scheme.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := NewCounted(ps)
	for _, e := range c.m {
		pt := e.t.Project(pos)
		k := pt.Key()
		oe := out.m[k]
		if oe.t == nil {
			oe.t = pt
		}
		oe.n += e.n
		out.m[k] = oe
	}
	out.total = c.total
	return out, nil
}

// CrossCounted returns the cross product with counters multiplied
// (the §5.2 redefinition of join specialized to an empty join set).
func CrossCounted(a, b *Counted) (*Counted, error) {
	cs, err := a.scheme.Concat(b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewCounted(cs)
	for _, ea := range a.m {
		for _, eb := range b.m {
			t := ea.t.Concat(eb.t)
			out.m[t.Key()] = centry{t: t, n: ea.n * eb.n}
			out.total += ea.n * eb.n
		}
	}
	return out, nil
}

// NaturalJoinCounted returns a ⋈ b under the §5.2 redefinition: the
// counter of a joined tuple is the product u(N) * v(N) of the operand
// counters.
func NaturalJoinCounted(a, b *Counted) (*Counted, error) {
	p, err := planNaturalJoin(a.scheme, b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewCounted(p.out)
	idx := make(map[string][]centry, len(b.m))
	for _, eb := range b.m {
		k := eb.t.Project(p.rightPos).Key()
		idx[k] = append(idx[k], eb)
	}
	for _, ea := range a.m {
		k := ea.t.Project(p.leftPos).Key()
		for _, eb := range idx[k] {
			t := p.combine(ea.t, eb.t)
			tk := t.Key()
			oe := out.m[tk]
			if oe.t == nil {
				oe.t = t
			}
			oe.n += ea.n * eb.n
			out.m[tk] = oe
			out.total += ea.n * eb.n
		}
	}
	return out, nil
}
