package relation

import (
	"fmt"
	"sort"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// Counted is a relation whose tuples carry the multiplicity counter of
// §5.2. The counter records how many operand tuples contribute to each
// view tuple, which restores the distributive property of projection
// over difference: π(r1 − r2) = π(r1) ⊖ π(r2).
//
// Base relations have an implicit counter of one on every tuple (the
// paper: "for base relations, this attribute need not be explicitly
// stored since its value in every tuple is always one").
//
// Storage is one flat row arena plus a dense counts slice indexed by
// handle. Live entries always have a positive count, so counts[h] == 0
// doubles as the dead-row marker and Each can walk the arena linearly.
type Counted struct {
	scheme *schema.Scheme
	a      *rowArena
	counts []int64 // by handle; 0 marks a dead (removed) row
	total  int64   // sum of all counts, maintained incrementally
	kbuf   []byte  // key scratch; mutation paths only (serialized), never cloned
}

// CountedTuple pairs a tuple with its multiplicity, for iteration in
// deterministic order.
type CountedTuple struct {
	Tuple tuple.Tuple
	Count int64
}

// NewCounted returns an empty counted relation over the given scheme.
func NewCounted(s *schema.Scheme) *Counted {
	return &Counted{scheme: s, a: newRowArena(s.Arity())}
}

// NewCountedCap returns an empty counted relation presized for n
// distinct tuples, so producers with a known (or bounding) output size
// skip the incremental map and slice growth of the accumulation loop.
func NewCountedCap(s *schema.Scheme, n int) *Counted {
	if n == 0 {
		return NewCounted(s)
	}
	return &Counted{
		scheme: s,
		a:      newRowArenaCap(s.Arity(), n),
		counts: make([]int64, 0, n),
	}
}

// FromRelation lifts a set relation to a counted relation with every
// count equal to one (key strings are shared with r's index).
func FromRelation(r *Relation) *Counted {
	c := NewCounted(r.scheme)
	c.a = newRowArenaCap(r.scheme.Arity(), r.Len())
	c.counts = make([]int64, 0, r.Len())
	r.eachEntry(func(k string, t tuple.Tuple) {
		c.a.addKeyed(k, t)
		c.counts = append(c.counts, 1)
	})
	c.total = int64(r.Len())
	return c
}

// Scheme returns the relation's scheme.
func (c *Counted) Scheme() *schema.Scheme { return c.scheme }

// Len returns the number of distinct tuples.
func (c *Counted) Len() int { return c.a.len() }

// Total returns the sum of all multiplicities.
func (c *Counted) Total() int64 { return c.total }

// Count returns the multiplicity of t (zero when absent). Safe for
// concurrent readers of a published view (per-call key buffer).
func (c *Counted) Count(t tuple.Tuple) int64 {
	if len(t) != c.scheme.Arity() {
		return 0
	}
	var buf [keyBufSize]byte
	h, ok := c.a.find(tuple.AppendKey(buf[:0], t))
	if !ok {
		return 0
	}
	return c.counts[h]
}

// Has reports whether t has a positive count.
func (c *Counted) Has(t tuple.Tuple) bool { return c.Count(t) > 0 }

// Add adjusts t's counter by n (n may be negative). The tuple is
// removed when its counter reaches zero. It returns an error if the
// counter would become negative, which indicates an inconsistent
// maintenance sequence, or on arity mismatch.
func (c *Counted) Add(t tuple.Tuple, n int64) error {
	if len(t) != c.scheme.Arity() {
		return fmt.Errorf("relation: counted tuple %v has arity %d, scheme %s has arity %d",
			t, len(t), c.scheme, c.scheme.Arity())
	}
	if n == 0 {
		return nil
	}
	c.kbuf = tuple.AppendKey(c.kbuf[:0], t)
	h, ok := c.a.find(c.kbuf)
	var cur int64
	if ok {
		cur = c.counts[h]
	}
	next := cur + n
	switch {
	case next < 0:
		return fmt.Errorf("relation: counter for %v would become negative (%d%+d)", t, cur, n)
	case next == 0:
		c.a.remove(c.kbuf)
		c.counts[h] = 0
		c.maybeCompact()
	default:
		if ok {
			c.counts[h] = next
		} else {
			c.a.add(c.kbuf, t)
			c.counts = append(c.counts, next)
		}
	}
	c.total += n
	return nil
}

// bump adds n (> 0) to t's counter without the error path, for
// operators that only ever accumulate positive counts.
func (c *Counted) bump(t tuple.Tuple, n int64) {
	c.kbuf = tuple.AppendKey(c.kbuf[:0], t)
	if h, ok := c.a.find(c.kbuf); ok {
		c.counts[h] += n
	} else {
		c.a.add(c.kbuf, t)
		c.counts = append(c.counts, n)
	}
	c.total += n
}

// bumpKeyed is bump for a tuple whose key string already exists.
func (c *Counted) bumpKeyed(k string, t tuple.Tuple, n int64) {
	if h, ok := c.a.findKey(k); ok {
		c.counts[h] += n
	} else {
		c.a.addKeyed(k, t)
		c.counts = append(c.counts, n)
	}
	c.total += n
}

// maybeCompact rebuilds the arena once dead rows dominate, carrying
// the counts over to the renumbered handles.
func (c *Counted) maybeCompact() {
	if !c.a.tooManyDead() {
		return
	}
	nc := make([]int64, c.a.len())
	old := c.counts
	c.a = c.a.clone(func(o, n int32) { nc[n] = old[o] })
	c.counts = nc
}

// Each calls f for every (tuple, count) pair in unspecified order. The
// walk is linear over the arena; dead rows are skipped by their zero
// count.
func (c *Counted) Each(f func(tuple.Tuple, int64)) {
	for h := int32(0); h < c.a.n; h++ {
		if n := c.counts[h]; n != 0 {
			f(c.a.row(h), n)
		}
	}
}

// eachEntry calls f for every (key, handle) pair of a live row.
func (c *Counted) eachEntry(f func(k string, h int32)) {
	c.a.eachEntry(f)
}

// Tuples returns all counted tuples sorted lexicographically.
func (c *Counted) Tuples() []CountedTuple {
	out := make([]CountedTuple, 0, c.a.len())
	c.Each(func(t tuple.Tuple, n int64) {
		out = append(out, CountedTuple{Tuple: t, Count: n})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Less(out[j].Tuple) })
	return out
}

// Clone returns an independent copy. The common case preserves handle
// numbering and costs O(map buckets + counts memmove) via the arena's
// shared-row clone; once dead rows dominate, the copy compacts
// instead.
func (c *Counted) Clone() *Counted {
	out := &Counted{scheme: c.scheme, total: c.total}
	if c.a.tooManyDead() {
		out.counts = make([]int64, c.a.len())
		old := c.counts
		out.a = c.a.clone(func(o, n int32) { out.counts[n] = old[o] })
		return out
	}
	out.a = c.a.cloneShared()
	out.counts = append([]int64(nil), c.counts...)
	return out
}

// Equal reports whether two counted relations have equal schemes,
// tuples, and multiplicities. It is the correctness oracle used to
// compare differential maintenance against full re-evaluation.
func (c *Counted) Equal(o *Counted) bool {
	if !c.scheme.Equal(o.scheme) || c.a.len() != o.a.len() {
		return false
	}
	eq := true
	c.a.eachEntry(func(k string, h int32) {
		if !eq {
			return
		}
		oh, ok := o.a.findKey(k)
		if !ok || o.counts[oh] != c.counts[h] {
			eq = false
		}
	})
	return eq
}

// ToRelation collapses multiplicities, returning the underlying set.
func (c *Counted) ToRelation() *Relation {
	out := New(c.scheme)
	c.a.eachEntry(func(k string, h int32) {
		out.putKeyed(k, c.a.row(h))
	})
	return out
}

// String renders the relation as "{(1, 2)×3, (4, 5)×1}" in sorted
// order.
func (c *Counted) String() string {
	s := "{"
	for i, ct := range c.Tuples() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s×%d", ct.Tuple, ct.Count)
	}
	return s + "}"
}

// Merge adds every counted tuple of o into c (the ⊎ operator). It
// mutates c and returns an error on scheme mismatch.
func (c *Counted) Merge(o *Counted) error {
	if err := sameScheme("counted merge", c.scheme, o.scheme); err != nil {
		return err
	}
	// Counts are positive on both sides, so no counter can go negative.
	o.a.eachEntry(func(k string, h int32) {
		c.bumpKeyed(k, o.a.row(h), o.counts[h])
	})
	return nil
}

// Subtract removes every counted tuple of o from c (the ⊖ operator),
// erroring if any counter would go negative.
func (c *Counted) Subtract(o *Counted) error {
	if err := sameScheme("counted subtract", c.scheme, o.scheme); err != nil {
		return err
	}
	var firstErr error
	o.Each(func(t tuple.Tuple, n int64) {
		if firstErr != nil {
			return
		}
		firstErr = c.Add(t, -n)
	})
	return firstErr
}

// SelectCounted returns σ_pred(c); selection leaves counters untouched
// (§5.2: "the select operation is not affected").
func SelectCounted(c *Counted, pred func(tuple.Tuple) bool) *Counted {
	out := NewCountedCap(c.scheme, c.Len())
	c.a.eachEntry(func(k string, h int32) {
		t := c.a.row(h)
		if pred(t) {
			out.bumpKeyed(k, t, c.counts[h])
		}
	})
	return out
}

// ProjectCounted returns π_attrs(c) under the §5.2 redefinition: the
// counter of an output tuple is the sum of the counters of the operand
// tuples that project onto it.
func ProjectCounted(c *Counted, attrs []schema.Attribute) (*Counted, error) {
	pos, err := c.scheme.Positions(attrs)
	if err != nil {
		return nil, err
	}
	ps, err := c.scheme.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := NewCounted(ps)
	buf := make(tuple.Tuple, len(pos))
	c.Each(func(t tuple.Tuple, n int64) {
		for i, p := range pos {
			buf[i] = t[p]
		}
		out.bump(buf, n)
	})
	return out, nil
}

// CrossCounted returns the cross product with counters multiplied
// (the §5.2 redefinition of join specialized to an empty join set).
func CrossCounted(a, b *Counted) (*Counted, error) {
	cs, err := a.scheme.Concat(b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewCounted(cs)
	buf := make(tuple.Tuple, 0, cs.Arity())
	a.Each(func(ta tuple.Tuple, na int64) {
		b.Each(func(tb tuple.Tuple, nb int64) {
			buf = append(append(buf[:0], ta...), tb...)
			out.bump(buf, na*nb)
		})
	})
	return out, nil
}

// NaturalJoinCounted returns a ⋈ b under the §5.2 redefinition: the
// counter of a joined tuple is the product u(N) * v(N) of the operand
// counters.
func NaturalJoinCounted(a, b *Counted) (*Counted, error) {
	p, err := planNaturalJoin(a.scheme, b.scheme)
	if err != nil {
		return nil, err
	}
	out := NewCountedCap(p.out, a.Len())
	ix := newHandleIndex(b.a.len())
	var kb []byte
	pbuf := make(tuple.Tuple, len(p.rightPos))
	b.a.eachEntry(func(_ string, h int32) {
		t := b.a.row(h)
		for i, pos := range p.rightPos {
			pbuf[i] = t[pos]
		}
		kb = tuple.AppendKey(kb[:0], pbuf)
		ix.add(kb, int64(h))
	})
	lbuf := make(tuple.Tuple, len(p.leftPos))
	obuf := make(tuple.Tuple, 0, p.out.Arity())
	a.Each(func(ta tuple.Tuple, na int64) {
		for i, pos := range p.leftPos {
			lbuf[i] = ta[pos]
		}
		kb = tuple.AppendKey(kb[:0], lbuf)
		ix.eachRef(kb, func(ref int64) {
			h := int32(ref)
			obuf = p.appendCombine(obuf[:0], ta, b.a.row(h))
			out.bump(obuf, na*b.counts[h])
		})
	})
	return out, nil
}
