package tuple

import (
	"math"
	"testing"
)

// FuzzKeyRoundTrip checks the single key codec (AppendKey/DecodeValue
// behind Key/FromKey) over fuzzed values, including negatives and the
// int64 bounds: every tuple must survive Key → FromKey unchanged, and
// keys must order-embed tuple equality.
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), int64(0), uint8(0))
	f.Add(int64(1), int64(-1), int64(2), int64(-2), uint8(4))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), int64(-1), int64(math.MaxInt64), uint8(4))
	f.Add(int64(math.MinInt64), int64(math.MinInt64+1), int64(math.MaxInt64-1), int64(0), uint8(3))
	f.Fuzz(func(t *testing.T, a, b, c, d int64, n uint8) {
		vals := []int64{a, b, c, d}
		tu := New(vals[:int(n)%5]...)
		got, err := FromKey(tu.Key(), len(tu))
		if err != nil {
			t.Fatalf("FromKey(Key(%v)): %v", tu, err)
		}
		if !got.Equal(tu) {
			t.Fatalf("round trip = %v, want %v", got, tu)
		}
		if got.Key() != tu.Key() {
			t.Fatalf("re-encoded key differs for %v", tu)
		}
	})
}

// FuzzFromKeyBytes feeds arbitrary bytes to FromKey: it must never
// panic, must reject length mismatches, and any accepted key must
// re-encode to the identical bytes (the codec is a bijection on
// well-formed keys).
func FuzzFromKeyBytes(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte("abc"), 2)
	f.Add(make([]byte, 16), 2)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 1)
	f.Fuzz(func(t *testing.T, raw []byte, arity int) {
		tu, err := FromKey(string(raw), arity)
		if arity < 0 || len(raw) != arity*8 {
			if err == nil {
				t.Fatalf("FromKey accepted %d bytes at arity %d", len(raw), arity)
			}
			return
		}
		if err != nil {
			t.Fatalf("FromKey rejected well-formed %d-byte key: %v", len(raw), err)
		}
		if tu.Key() != string(raw) {
			t.Fatalf("accepted key did not re-encode identically (arity %d)", arity)
		}
	})
}
