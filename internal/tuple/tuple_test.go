package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEqual(t *testing.T) {
	a := New(1, 2, 3)
	b := New(1, 2, 3)
	c := New(1, 2, 4)
	if !a.Equal(b) {
		t.Error("equal tuples reported unequal")
	}
	if a.Equal(c) {
		t.Error("unequal tuples reported equal")
	}
	if a.Equal(New(1, 2)) {
		t.Error("different arity reported equal")
	}
}

func TestClone(t *testing.T) {
	a := New(1, 2)
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases underlying array")
	}
}

func TestLess(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want bool
	}{
		{New(1, 2), New(1, 3), true},
		{New(1, 3), New(1, 2), false},
		{New(1, 2), New(1, 2), false},
		{New(1), New(1, 0), true},
		{New(-5), New(3), true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := []Tuple{
		New(),
		New(0),
		New(1, 2, 3),
		New(-1, math.MaxInt64, math.MinInt64),
	}
	for _, tu := range cases {
		got, err := FromKey(tu.Key(), len(tu))
		if err != nil {
			t.Fatalf("FromKey(%v): %v", tu, err)
		}
		if !got.Equal(tu) {
			t.Errorf("round trip = %v, want %v", got, tu)
		}
	}
	if _, err := FromKey("abc", 2); err == nil {
		t.Error("FromKey with bad length should fail")
	}
}

func TestKeyInjective(t *testing.T) {
	f := func(a, b []int64) bool {
		ta, tb := Tuple(a), Tuple(b)
		if len(ta) != len(tb) {
			return true // injectivity only promised per arity
		}
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectAndConcat(t *testing.T) {
	tu := New(10, 20, 30)
	if got := tu.Project([]int{2, 0}); !got.Equal(New(30, 10)) {
		t.Errorf("Project = %v", got)
	}
	if got := New(1).Concat(New(2, 3)); !got.Equal(New(1, 2, 3)) {
		t.Errorf("Concat = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := New(1, -2).String(); got != "(1, -2)" {
		t.Errorf("String = %q", got)
	}
}

// TestJoinTagsTable checks every row of the paper's §5.3 tag table.
func TestJoinTagsTable(t *testing.T) {
	cases := []struct {
		a, b, want Tag
	}{
		{TagInsert, TagInsert, TagInsert},
		{TagInsert, TagDelete, TagIgnore},
		{TagInsert, TagOld, TagInsert},
		{TagDelete, TagInsert, TagIgnore},
		{TagDelete, TagDelete, TagDelete},
		{TagDelete, TagOld, TagDelete},
		{TagOld, TagInsert, TagInsert},
		{TagOld, TagDelete, TagDelete},
		{TagOld, TagOld, TagOld},
	}
	for _, c := range cases {
		if got := JoinTags(c.a, c.b); got != c.want {
			t.Errorf("JoinTags(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJoinTagsIgnoreAbsorbs(t *testing.T) {
	for _, g := range []Tag{TagOld, TagInsert, TagDelete, TagIgnore} {
		if JoinTags(TagIgnore, g) != TagIgnore || JoinTags(g, TagIgnore) != TagIgnore {
			t.Errorf("Ignore must absorb %v", g)
		}
	}
}

func TestJoinTagsCommutative(t *testing.T) {
	tags := []Tag{TagOld, TagInsert, TagDelete, TagIgnore}
	for _, a := range tags {
		for _, b := range tags {
			if JoinTags(a, b) != JoinTags(b, a) {
				t.Errorf("JoinTags not commutative on (%v, %v)", a, b)
			}
		}
	}
}

func TestUnaryTagIdentity(t *testing.T) {
	for _, g := range []Tag{TagOld, TagInsert, TagDelete, TagIgnore} {
		if UnaryTag(g) != g {
			t.Errorf("UnaryTag(%v) = %v", g, UnaryTag(g))
		}
	}
}

func TestTagString(t *testing.T) {
	if TagOld.String() != "old" || TagInsert.String() != "insert" ||
		TagDelete.String() != "delete" || TagIgnore.String() != "ignore" {
		t.Error("tag names do not match the paper's vocabulary")
	}
	if Tag(42).String() == "" {
		t.Error("unknown tag should still render")
	}
}
