// Package tuple provides the value and tuple representation used by the
// mview engine, plus the update tags of Blakeley, Larson & Tompa §5.3.
//
// Following the paper, all attribute values are integers: "all
// attributes are defined on discrete and finite domains. Since such a
// domain can be mapped to a subset of natural numbers, we use integer
// values in all examples." Symbolic data is supported one level up via
// a string dictionary (internal/dict).
package tuple

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a single attribute value.
type Value = int64

// Tuple is an ordered list of values conforming to some relation
// scheme. Tuples are treated as immutable once stored in a relation.
type Tuple []Value

// New builds a tuple from the given values.
func New(vals ...Value) Tuple { return Tuple(vals) }

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have identical arity and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i, v := range t {
		if u[i] != v {
			return false
		}
	}
	return true
}

// Less orders tuples lexicographically; it is used for deterministic
// iteration and output.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return len(t) < len(u)
}

// The key codec: tuples map to strings injectively (for tuples of the
// same arity) as fixed 8-byte big-endian two's complement per value.
// AppendKey and DecodeValue are the single encoder/decoder pair; Key
// and FromKey are conveniences over them. Hot paths (the relation
// arenas) call AppendKey with a reused scratch buffer and look maps up
// with the zero-allocation string([]byte) conversion, so no key string
// is materialized unless a tuple is actually inserted.

// AppendKey appends t's key encoding to dst and returns the extended
// slice.
func AppendKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = append(dst,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return dst
}

// DecodeValue decodes the i-th value of a key produced by AppendKey,
// indexing the string directly (no []byte conversion or copy). The
// caller guarantees len(key) >= (i+1)*8.
func DecodeValue(key string, i int) Value {
	o := i * 8
	return int64(uint64(key[o])<<56 | uint64(key[o+1])<<48 |
		uint64(key[o+2])<<40 | uint64(key[o+3])<<32 |
		uint64(key[o+4])<<24 | uint64(key[o+5])<<16 |
		uint64(key[o+6])<<8 | uint64(key[o+7]))
}

// Key encodes the tuple into a string usable as a map key. The
// encoding is injective for tuples of the same arity.
func (t Tuple) Key() string {
	return string(AppendKey(make([]byte, 0, len(t)*8), t))
}

// FromKey decodes a key produced by Key back into a tuple of the given
// arity. It returns an error if the key length does not match.
func FromKey(key string, arity int) (Tuple, error) {
	if arity < 0 || arity != len(key)/8 || len(key)%8 != 0 {
		return nil, fmt.Errorf("tuple: key length %d does not match arity %d", len(key), arity)
	}
	t := make(Tuple, arity)
	for i := 0; i < arity; i++ {
		t[i] = DecodeValue(key, i)
	}
	return t, nil
}

// Project returns the tuple restricted to the given positions, in that
// order.
func (t Tuple) Project(pos []int) Tuple {
	out := make(Tuple, len(pos))
	for i, p := range pos {
		out[i] = t[p]
	}
	return out
}

// Concat returns the concatenation t ++ u (the tuple of a cross
// product).
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// String renders the tuple as "(1, 2, 3)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tag classifies a tuple during differential re-evaluation (§5.3).
//
// Old marks tuples present at the latest materialization and untouched
// by the current transaction; Insert and Delete mark the transaction's
// net insertions and deletions; Ignore marks combinations that must not
// emerge from a join (an inserted tuple matched with a deleted one).
type Tag uint8

// Tag values. TagOld is the zero value so untagged tuples default to
// "already in the view".
const (
	TagOld Tag = iota
	TagInsert
	TagDelete
	TagIgnore
)

// String returns the lower-case tag name used in the paper's tables.
func (g Tag) String() string {
	switch g {
	case TagOld:
		return "old"
	case TagInsert:
		return "insert"
	case TagDelete:
		return "delete"
	case TagIgnore:
		return "ignore"
	default:
		return fmt.Sprintf("tag(%d)", uint8(g))
	}
}

// JoinTags combines the tags of two operand tuples of a join according
// to the paper's table in §5.3:
//
//	r1      r2      r1 ⋈ r2
//	insert  insert  insert
//	insert  delete  ignore
//	insert  old     insert
//	delete  insert  ignore
//	delete  delete  delete
//	delete  old     delete
//	old     insert  insert
//	old     delete  delete
//	old     old     old
//
// Any operand already tagged Ignore stays Ignore.
func JoinTags(a, b Tag) Tag {
	if a == TagIgnore || b == TagIgnore {
		return TagIgnore
	}
	switch {
	case a == TagOld:
		return b
	case b == TagOld:
		return a
	case a == b:
		return a
	default: // one Insert, one Delete
		return TagIgnore
	}
}

// UnaryTag propagates a tag through a select or project operator. Per
// the paper's second table in §5.3, select and project preserve the
// operand tuple's tag (insert → insert, delete → delete, old → old).
func UnaryTag(a Tag) Tag { return a }
