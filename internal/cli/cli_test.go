package cli

import (
	"strings"
	"testing"
)

// run executes commands in sequence, failing the test on any "error:"
// output unless the command is expected to fail.
func run(t *testing.T, s *Session, cmds ...string) string {
	t.Helper()
	var last string
	for _, c := range cmds {
		out, done := s.Exec(c)
		if done {
			t.Fatalf("unexpected termination on %q", c)
		}
		if strings.HasPrefix(out, "error:") {
			t.Fatalf("command %q failed: %s", c, out)
		}
		last = out
	}
	return last
}

func expectErr(t *testing.T, s *Session, cmd string) string {
	t.Helper()
	out, _ := s.Exec(cmd)
	if !strings.HasPrefix(out, "error:") {
		t.Fatalf("command %q should fail, got %q", cmd, out)
	}
	return out
}

func TestEndToEndFlow(t *testing.T) {
	s := NewSession()
	out := run(t, s,
		"create relation r(A, B)",
		"create relation s(C, D)",
		"create view v from r, s where A < 10 && C > 5 && B = C select A, D options filtered",
		"insert r (9, 10)",
		"insert s (10, 20)",
		"show v",
	)
	if !strings.Contains(out, "[9 20]") || !strings.Contains(out, "1 row(s)") {
		t.Errorf("show v = %q", out)
	}
	out = run(t, s, "relevant v r (11, 10)")
	if !strings.Contains(out, "irrelevant") {
		t.Errorf("relevant = %q", out)
	}
	out = run(t, s, "relevant v r (9, 9)")
	if !strings.Contains(out, "relevant: ") {
		t.Errorf("relevant = %q", out)
	}
	out = run(t, s, "stats v")
	if !strings.Contains(out, "Refreshes:") {
		t.Errorf("stats = %q", out)
	}
	out = run(t, s, "schema v")
	if out != "r.A, s.D" {
		t.Errorf("schema = %q", out)
	}
}

func TestTransactions(t *testing.T) {
	s := NewSession()
	run(t, s,
		"create relation r(A)",
		"create view v from r where A > 0",
		"begin",
		"insert r (1)",
		"insert r (2)",
		"delete r (1)",
	)
	// Nothing visible before commit.
	out := run(t, s, "show v")
	if !strings.Contains(out, "0 row(s)") {
		t.Errorf("pre-commit view = %q", out)
	}
	out = run(t, s, "commit")
	if !strings.Contains(out, "committed") {
		t.Errorf("commit = %q", out)
	}
	out = run(t, s, "show v")
	if !strings.Contains(out, "[2]") || !strings.Contains(out, "1 row(s)") {
		t.Errorf("post-commit view = %q", out)
	}
	expectErr(t, s, "commit")
	run(t, s, "begin", "insert r (9)")
	run(t, s, "abort")
	out = run(t, s, "show r")
	if strings.Contains(out, "[9]") {
		t.Errorf("aborted insert visible: %q", out)
	}
	expectErr(t, s, "abort")
	run(t, s, "begin")
	expectErr(t, s, "begin")
	run(t, s, "abort")
}

func TestJoinViewAndDeferred(t *testing.T) {
	s := NewSession()
	run(t, s,
		"create relation r(A, B)",
		"create relation s(B, C)",
		"create join view j from r, s options deferred",
		"insert r (1, 2)",
		"insert s (2, 3)",
	)
	out := run(t, s, "show j")
	if !strings.Contains(out, "0 row(s)") {
		t.Errorf("deferred view refreshed early: %q", out)
	}
	run(t, s, "refresh j")
	out = run(t, s, "show j")
	if !strings.Contains(out, "[1 2 3]") {
		t.Errorf("after refresh: %q", out)
	}
	run(t, s, "refresh all")
}

func TestShowBaseRelationAndLists(t *testing.T) {
	s := NewSession()
	run(t, s, "create relation r(A)", "insert r (5)")
	out := run(t, s, "show r")
	if !strings.Contains(out, "[5]") {
		t.Errorf("show r = %q", out)
	}
	if got := run(t, s, "relations"); got != "r" {
		t.Errorf("relations = %q", got)
	}
	run(t, s, "create view v from r")
	if got := run(t, s, "views"); got != "v" {
		t.Errorf("views = %q", got)
	}
	if got := s.Catalog(); got != "r v" {
		t.Errorf("Catalog = %q", got)
	}
}

func TestErrorsAndNoise(t *testing.T) {
	s := NewSession()
	for _, cmd := range []string{
		"bogus",
		"create table x(A)",
		"create relation r",
		"create relation (A)",
		"insert r 1, 2",
		"insert r (x)",
		"insert r ()",
		"show zzz",
		"stats zzz",
		"schema zzz",
		"refresh zzz",
		"relevant v",
		"relevant v r 1",
		"create view v from",
		"create view v where A < 1",
		"create view v from r options bogus",
	} {
		expectErr(t, s, cmd)
	}
	// Blank lines and comments are silent.
	for _, cmd := range []string{"", "   ", "# comment", "-- comment"} {
		if out, done := s.Exec(cmd); out != "" || done {
			t.Errorf("noise %q produced %q", cmd, out)
		}
	}
}

func TestQuitAndHelp(t *testing.T) {
	s := NewSession()
	out, done := s.Exec("help")
	if done || !strings.Contains(out, "create relation") {
		t.Errorf("help = %q", out)
	}
	out, done = s.Exec("quit")
	if !done || out != "bye" {
		t.Errorf("quit = %q, %v", out, done)
	}
	_, done = s.Exec("exit")
	if !done {
		t.Error("exit should terminate")
	}
}

func TestUpdateCommand(t *testing.T) {
	s := NewSession()
	run(t, s,
		"create relation r(A, B)",
		"create view v from r where A < 10",
		"insert r (1, 2)",
		"update r (1, 2) to (1, 3)",
	)
	out := run(t, s, "show v")
	if !strings.Contains(out, "[1 3]") || strings.Contains(out, "[1 2]") {
		t.Errorf("after update: %q", out)
	}
	// Inside a transaction the pair stays atomic.
	run(t, s, "begin", "update r (1, 3) to (5, 5)")
	out = run(t, s, "show r")
	if !strings.Contains(out, "[1 3]") {
		t.Errorf("update applied before commit: %q", out)
	}
	run(t, s, "commit")
	out = run(t, s, "show r")
	if !strings.Contains(out, "[5 5]") {
		t.Errorf("after commit: %q", out)
	}
	for _, bad := range []string{
		"update r 1 to (2)",
		"update r (1",
		"update r (1, 2) (3, 4)",
		"update r (1, 2) to 3, 4",
		"update r (1, 2) to (x)",
		"update r (x) to (1)",
	} {
		expectErr(t, s, bad)
	}
}

func TestExplainCommand(t *testing.T) {
	s := NewSession()
	run(t, s,
		"create relation r(A, B)",
		"create view v from r where A < 10 options adaptive",
	)
	out := run(t, s, "explain v")
	if !strings.Contains(out, "view v") || !strings.Contains(out, "adaptive") {
		t.Errorf("explain = %q", out)
	}
	expectErr(t, s, "explain zzz")
}

func TestDurableSession(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	run(t, s,
		"create relation r(A)",
		"insert r (42)",
	)
	out := run(t, s, "checkpoint")
	if !strings.Contains(out, "checkpointed") {
		t.Errorf("checkpoint = %q", out)
	}
	run(t, s, "insert r (43)")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewDurableSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	out = run(t, s2, "show r")
	if !strings.Contains(out, "[42]") || !strings.Contains(out, "[43]") {
		t.Errorf("recovered r = %q", out)
	}
	// In-memory sessions refuse checkpoint.
	s3 := NewSession()
	expectErr(t, s3, "checkpoint")
	if err := s3.Close(); err != nil {
		t.Errorf("in-memory Close: %v", err)
	}
	// Bad directory.
	if _, err := NewDurableSession("/dev/null/impossible"); err == nil {
		t.Error("bad dir must fail")
	}
}

func TestSaveLoadCommands(t *testing.T) {
	path := t.TempDir() + "/snap.mview"
	s := NewSession()
	run(t, s,
		"create relation r(A, B)",
		"create view v from r where A < 10 select B options filtered",
		"insert r (1, 7)",
		"save "+path,
	)
	s2 := NewSession()
	run(t, s2, "load "+path)
	out := run(t, s2, "show v")
	if !strings.Contains(out, "[7]") {
		t.Errorf("restored view = %q", out)
	}
	// Errors.
	expectErr(t, s2, "save ")
	expectErr(t, s2, "load ")
	expectErr(t, s2, "load /nonexistent/zzz")
	expectErr(t, s2, "save /nonexistent-dir/zzz/file")
	run(t, s2, "begin")
	expectErr(t, s2, "load "+path)
	run(t, s2, "abort")
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	s := NewSession()
	run(t, s,
		"CREATE RELATION r(A, B)",
		"CREATE VIEW v FROM r WHERE A < 5 SELECT B",
		"INSERT r (1, 7)",
	)
	out := run(t, s, "show v")
	if !strings.Contains(out, "[7]") {
		t.Errorf("show = %q", out)
	}
}

func TestWorkersCommand(t *testing.T) {
	s := NewSession()
	defer s.Close()
	if out := run(t, s, "workers 3"); out != "maintenance workers: 3" {
		t.Errorf("workers 3 = %q", out)
	}
	if out := run(t, s, "workers"); out != "maintenance workers: 3" {
		t.Errorf("workers = %q", out)
	}
	// 0 restores the GOMAXPROCS default; just confirm it is accepted
	// and reports a positive pool.
	if out := run(t, s, "workers 0"); !strings.HasPrefix(out, "maintenance workers: ") {
		t.Errorf("workers 0 = %q", out)
	}
	expectErr(t, s, "workers -1")
	expectErr(t, s, "workers many")
}

func TestSelectCommand(t *testing.T) {
	s := NewSession()
	run(t, s,
		"create relation r(A, B)",
		"create relation s(C, D)",
		"insert r (1, 5)",
		"insert r (9, 5)",
		"insert s (5, 20)",
	)
	out := run(t, s, "select A, D from r, s where B = C && A < 5")
	if !strings.Contains(out, "[1 20]") || !strings.Contains(out, "1 row(s)") {
		t.Errorf("select = %q", out)
	}
	// "*" keeps every attribute of the join.
	out = run(t, s, "select * from r where A > 5")
	if !strings.Contains(out, "[9 5]") || !strings.Contains(out, "1 row(s)") {
		t.Errorf("select * = %q", out)
	}
	// A query registers nothing in the catalog.
	if out := run(t, s, "views"); strings.TrimSpace(out) != "" {
		t.Errorf("ad-hoc select leaked a view: %q", out)
	}
	expectErr(t, s, "select A, B")
	expectErr(t, s, "select A from nosuch")
}

func TestTraceCommand(t *testing.T) {
	s := NewSession()
	if out := run(t, s, "trace"); !strings.Contains(out, "no traces recorded yet") {
		t.Errorf("empty recorder listing = %q", out)
	}
	run(t, s,
		"create relation r(A, B)",
		"create relation s(B, C)",
		"create join view v from r, s",
		"insert r (1, 2)",
	)
	list := run(t, s, "trace")
	if !strings.Contains(list, "db.commit") {
		t.Fatalf("trace listing missing db.commit:\n%s", list)
	}
	// Pull the newest trace's id off the first listing row and render it.
	var id string
	for _, line := range strings.Split(list, "\n") {
		fields := strings.Fields(line)
		if len(fields) > 1 && fields[1] == "db.commit" {
			id = fields[0]
			break
		}
	}
	if id == "" {
		t.Fatalf("no trace id in listing:\n%s", list)
	}
	tree := run(t, s, "trace "+id)
	for _, want := range []string{"trace " + id, "db.commit", "commit.install", "critical path:"} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace tree missing %q:\n%s", want, tree)
		}
	}
	expectErr(t, s, "trace bogus")
	expectErr(t, s, "trace 999999999")
}

func TestExplainAnalyzeCommand(t *testing.T) {
	s := NewSession()
	run(t, s,
		"create relation r(A, B)",
		"create relation s(B, C)",
		"create join view v from r, s",
		"insert r (1, 2)",
		"insert s (2, 5)",
	)
	out := run(t, s, "explain analyze v")
	for _, want := range []string{"analyze:", "counters:", "last maintenance", "trace="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain analyze missing %q:\n%s", want, out)
		}
	}
	// Plain explain still works and stays un-annotated.
	if out := run(t, s, "explain v"); strings.Contains(out, "analyze:") {
		t.Errorf("plain explain grew an analyze section:\n%s", out)
	}
	expectErr(t, s, "explain analyze nope")
}
