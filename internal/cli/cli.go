// Package cli implements the interactive command interpreter behind
// cmd/mviewcli. It is a thin, line-oriented shell over the public
// mview API, factored out of the command so it can be tested.
package cli

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mview"
	"mview/internal/obs"
)

// Session interprets commands against one database.
type Session struct {
	db *mview.DB
	// reg collects engine metrics for the bare "stats" command.
	reg *obs.Registry
	// fr records every commit's span tree for the "trace" command.
	fr *obs.FlightRecorder
	// pending batches operations between "begin" and "commit".
	pending []mview.Op
	inTx    bool
}

// NewSession returns a session over a fresh in-memory database.
// Construction options (mview.WithShards, mview.WithMaintWorkers, ...)
// are forwarded to mview.Open.
func NewSession(opts ...mview.Option) *Session {
	return newSession(mview.Open(opts...))
}

// SetMaintWorkers forwards to mview.DB.SetMaintWorkers (the
// -maint-workers flag of cmd/mviewcli; interactively, the "workers"
// command).
func (s *Session) SetMaintWorkers(n int) { s.db.SetMaintWorkers(n) }

// EnableGroupCommit coalesces concurrent transactions into commit
// groups (one log fsync, one maintenance pass, one snapshot publish
// per group). The shell itself is single-writer, so this mostly
// matters when a script is replayed while other clients share the
// database; it is exposed for parity with mviewd.
func (s *Session) EnableGroupCommit(maxBatch int, window time.Duration) {
	s.db.EnableGroupCommit(maxBatch, window)
}

// NewDurableSession returns a session over a durable database rooted
// at dir (created or recovered via its commit log and checkpoints).
// Construction options are forwarded to mview.OpenDurable, so e.g.
// mview.WithShards reshards the recovered state.
func NewDurableSession(dir string, opts ...mview.Option) (*Session, error) {
	db, err := mview.OpenDurable(dir, opts...)
	if err != nil {
		return nil, err
	}
	return newSession(db), nil
}

func newSession(db *mview.DB) *Session {
	// Threshold 0: the shell is single-user, so nothing needs pinning —
	// the ring alone holds the last 64 commits.
	s := &Session{db: db, reg: obs.NewRegistry(), fr: obs.NewFlightRecorder(64, 0)}
	db.Instrument(s.reg, s.fr)
	return s
}

// Close releases the database (flushes and closes a durable commit
// log; no-op for in-memory sessions).
func (s *Session) Close() error { return s.db.Close() }

// Help describes the command language.
const Help = `commands:
  create relation <name>(<attr>, ...)      define a base relation
  create view <name> from <rel>[ <alias>], ...
       [where <condition>] [select <attr>, ...] [options <opt>,...]
                                            define a materialized SPJ view
       options: oncommit | ondemand | every=<dur> | maxstale=<dur> | autopolicy
                | recompute | adaptive | filtered | rowbyrow
  create join view <name> from <rel>, ...  natural-join view (§5.3)
  insert <rel> (<v>, ...)                  insert a tuple (auto-commits unless in a tx)
  delete <rel> (<v>, ...)                  delete a tuple
  update <rel> (<old>, ...) to (<new>, ...)  modify a tuple in place
  begin | commit | abort                   group updates into one transaction
  show <name>                              print a relation or view
  select <attrs|*> from <rel>, ... [where <condition>]
                                           one-shot query over the current snapshot
  schema <view>                            print a view's output attributes
  stats [<view>]                           maintenance statistics (bare: all engine metrics)
  explain <view>                           describe definition and maintenance plan
  explain analyze <view>                   the plan plus measured timings of the last maintenance
  trace [<id>]                             flight recorder: list recent commit traces, or show
                                           one trace's span tree and critical path
  refresh <view> | refresh all             bring deferred views up to date (§6)
  policy <view> [<spec>]                   show or change a view's refresh policy
                                           (oncommit | ondemand | every=<dur> | maxstale=<dur> | autopolicy)
  relevant <view> <rel> (<v>, ...)         §4 irrelevance test for an update
  save <file> | load <file>                snapshot the database / restore one
  checkpoint                               durable mode: snapshot + truncate the commit log
  relations | views                        list catalog entries
  workers [<n>]                            show or set the maintenance worker pool (0 = GOMAXPROCS)
  help                                     this text
  quit | exit                              leave`

// Exec interprets one command line and returns its output. The second
// result is true when the session should terminate.
func (s *Session) Exec(line string) (string, bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
		return "", false
	}
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	var out string
	var err error
	switch cmd {
	case "quit", "exit":
		return "bye", true
	case "help":
		return Help, false
	case "create":
		out, err = s.create(rest)
	case "insert":
		err = s.update(rest, false)
	case "delete":
		err = s.update(rest, true)
	case "update":
		err = s.updateInPlace(rest)
	case "begin":
		err = s.begin()
	case "commit":
		out, err = s.commit()
	case "abort":
		err = s.abort()
	case "show":
		out, err = s.show(rest)
	case "select":
		out, err = s.query(rest)
	case "schema":
		out, err = s.schema(rest)
	case "stats":
		out, err = s.stats(rest)
	case "explain":
		out, err = s.explain(rest)
	case "trace":
		out, err = s.trace(rest)
	case "refresh":
		out, err = s.refresh(rest)
	case "policy":
		out, err = s.policy(rest)
	case "relevant":
		out, err = s.relevant(rest)
	case "save":
		out, err = s.save(rest)
	case "load":
		out, err = s.load(rest)
	case "checkpoint":
		if err = s.db.Checkpoint(); err == nil {
			out = "checkpointed (snapshot written, commit log truncated)"
		}
	case "relations":
		out = strings.Join(s.db.Relations(), "\n")
	case "views":
		out = strings.Join(s.db.Views(), "\n")
	case "workers":
		out, err = s.workers(rest)
	default:
		err = fmt.Errorf("unknown command %q (try help)", cmd)
	}
	if err != nil {
		return "error: " + err.Error(), false
	}
	return out, false
}

func (s *Session) create(rest string) (string, error) {
	lower := strings.ToLower(rest)
	switch {
	case strings.HasPrefix(lower, "relation "):
		return s.createRelation(strings.TrimSpace(rest[len("relation "):]))
	case strings.HasPrefix(lower, "join view "):
		return s.createJoinView(strings.TrimSpace(rest[len("join view "):]))
	case strings.HasPrefix(lower, "view "):
		return s.createView(strings.TrimSpace(rest[len("view "):]))
	default:
		return "", fmt.Errorf("expected 'create relation', 'create view', or 'create join view'")
	}
}

// createRelation parses "<name>(<attr>, ...)".
func (s *Session) createRelation(spec string) (string, error) {
	open := strings.Index(spec, "(")
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return "", fmt.Errorf("expected <name>(<attr>, ...)")
	}
	name := strings.TrimSpace(spec[:open])
	attrs := splitList(spec[open+1 : len(spec)-1])
	if name == "" || len(attrs) == 0 {
		return "", fmt.Errorf("expected <name>(<attr>, ...)")
	}
	if err := s.db.CreateRelation(name, attrs...); err != nil {
		return "", err
	}
	return fmt.Sprintf("created relation %s(%s)", name, strings.Join(attrs, ", ")), nil
}

// viewClauses splits "<name> from ... [where ...] [select ...]
// [options ...]" on its keywords.
func viewClauses(spec string) (name string, clauses map[string]string, err error) {
	fields := strings.Fields(spec)
	if len(fields) < 3 || !strings.EqualFold(fields[1], "from") {
		return "", nil, fmt.Errorf("expected <name> from <relations> ...")
	}
	name = fields[0]
	rest := strings.TrimSpace(spec[len(fields[0]):])
	// rest begins with "from".
	clauses = make(map[string]string)
	order := []string{"from", "where", "select", "options"}
	lowerRest := strings.ToLower(rest)
	pos := make(map[string]int)
	for _, kw := range order {
		pos[kw] = indexWord(lowerRest, kw)
	}
	for i, kw := range order {
		start := pos[kw]
		if start < 0 {
			continue
		}
		end := len(rest)
		for _, kw2 := range order[i+1:] {
			if pos[kw2] > start && pos[kw2] < end {
				end = pos[kw2]
			}
		}
		clauses[kw] = strings.TrimSpace(rest[start+len(kw) : end])
	}
	if clauses["from"] == "" {
		return "", nil, fmt.Errorf("empty from clause")
	}
	return name, clauses, nil
}

// indexWord finds kw as a whole word in lower-cased s.
func indexWord(s, kw string) int {
	from := 0
	for {
		i := strings.Index(s[from:], kw)
		if i < 0 {
			return -1
		}
		i += from
		before := i == 0 || s[i-1] == ' '
		after := i+len(kw) >= len(s) || s[i+len(kw)] == ' '
		if before && after {
			return i
		}
		from = i + len(kw)
	}
}

func parseOptions(spec string) ([]mview.ViewOption, error) {
	var opts []mview.ViewOption
	for _, o := range splitList(spec) {
		if o == "" {
			continue
		}
		// ParseViewOption is the single source of truth for option
		// names, shared with the WAL and the HTTP API — refresh
		// policies (oncommit, every=250ms, maxstale=1s, ...) included.
		opt, err := mview.ParseViewOption(strings.ToLower(o))
		if err != nil {
			return nil, err
		}
		opts = append(opts, opt)
	}
	return opts, nil
}

func (s *Session) createView(spec string) (string, error) {
	name, clauses, err := viewClauses(spec)
	if err != nil {
		return "", err
	}
	opts, err := parseOptions(clauses["options"])
	if err != nil {
		return "", err
	}
	vs := mview.ViewSpec{
		From:   splitList(clauses["from"]),
		Where:  clauses["where"],
		Select: splitList(clauses["select"]),
	}
	if err := s.db.CreateView(name, vs, opts...); err != nil {
		return "", err
	}
	return "created view " + name, nil
}

func (s *Session) createJoinView(spec string) (string, error) {
	name, clauses, err := viewClauses(spec)
	if err != nil {
		return "", err
	}
	opts, err := parseOptions(clauses["options"])
	if err != nil {
		return "", err
	}
	if err := s.db.CreateJoinView(name, splitList(clauses["from"]), opts...); err != nil {
		return "", err
	}
	return "created join view " + name, nil
}

// update parses "<rel> (<v>, ...)" and queues or executes it.
func (s *Session) update(rest string, del bool) error {
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return fmt.Errorf("expected <rel> (<v>, ...)")
	}
	rel := strings.TrimSpace(rest[:open])
	vals, err := parseValues(rest[open+1 : len(rest)-1])
	if err != nil {
		return err
	}
	op := mview.Insert(rel, vals...)
	if del {
		op = mview.Delete(rel, vals...)
	}
	if s.inTx {
		s.pending = append(s.pending, op)
		return nil
	}
	_, err = s.db.Exec(op)
	return err
}

// updateInPlace parses "<rel> (<old>, ...) to (<new>, ...)".
func (s *Session) updateInPlace(rest string) error {
	open := strings.Index(rest, "(")
	if open < 0 {
		return fmt.Errorf("expected <rel> (<old>, ...) to (<new>, ...)")
	}
	rel := strings.TrimSpace(rest[:open])
	closeOld := strings.Index(rest, ")")
	if closeOld < 0 {
		return fmt.Errorf("unterminated old tuple")
	}
	oldVals, err := parseValues(rest[open+1 : closeOld])
	if err != nil {
		return err
	}
	tail := strings.TrimSpace(rest[closeOld+1:])
	lower := strings.ToLower(tail)
	if !strings.HasPrefix(lower, "to ") && !strings.HasPrefix(lower, "to(") {
		return fmt.Errorf("expected 'to (<new>, ...)' after old tuple")
	}
	tail = strings.TrimSpace(tail[2:])
	if !strings.HasPrefix(tail, "(") || !strings.HasSuffix(tail, ")") {
		return fmt.Errorf("expected (<new>, ...)")
	}
	newVals, err := parseValues(tail[1 : len(tail)-1])
	if err != nil {
		return err
	}
	ops := mview.Update(rel, oldVals, newVals)
	if s.inTx {
		s.pending = append(s.pending, ops...)
		return nil
	}
	_, err = s.db.Exec(ops...)
	return err
}

func (s *Session) begin() error {
	if s.inTx {
		return fmt.Errorf("already in a transaction")
	}
	s.inTx = true
	s.pending = nil
	return nil
}

func (s *Session) commit() (string, error) {
	if !s.inTx {
		return "", fmt.Errorf("no transaction in progress")
	}
	ops := s.pending
	s.inTx, s.pending = false, nil
	info, err := s.db.Exec(ops...)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("committed: %+v", info), nil
}

func (s *Session) abort() error {
	if !s.inTx {
		return fmt.Errorf("no transaction in progress")
	}
	s.inTx, s.pending = false, nil
	return nil
}

func (s *Session) show(name string) (string, error) {
	name = strings.TrimSpace(name)
	for _, v := range s.db.Views() {
		if v == name {
			rows, err := s.db.View(name)
			if err != nil {
				return "", err
			}
			attrs, err := s.db.ViewSchema(name)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "%s (%s):\n", name, strings.Join(attrs, ", "))
			for _, r := range rows {
				fmt.Fprintf(&sb, "  %v ×%d\n", r.Values, r.Count)
			}
			fmt.Fprintf(&sb, "%d row(s)", len(rows))
			return sb.String(), nil
		}
	}
	rows, err := s.db.Rows(name)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", name)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %v\n", r)
	}
	fmt.Fprintf(&sb, "%d row(s)", len(rows))
	return sb.String(), nil
}

// query runs a one-shot ad-hoc query against the current read
// snapshot: "select <attrs|*> from <rel>, ... [where <condition>]".
// Nothing is materialized or registered in the catalog.
func (s *Session) query(rest string) (string, error) {
	lower := strings.ToLower(rest)
	fromPos := indexWord(lower, "from")
	if fromPos < 0 {
		return "", fmt.Errorf("expected <attrs|*> from <relations> [where <condition>]")
	}
	attrs := strings.TrimSpace(rest[:fromPos])
	tail := rest[fromPos+len("from"):]
	wherePos := indexWord(strings.ToLower(tail), "where")
	from := tail
	var where string
	if wherePos >= 0 {
		where = strings.TrimSpace(tail[wherePos+len("where"):])
		from = tail[:wherePos]
	}
	spec := mview.ViewSpec{From: splitList(from), Where: where}
	if attrs != "" && attrs != "*" {
		spec.Select = splitList(attrs)
	}
	rows, err := s.db.Query(spec)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %v ×%d\n", r.Values, r.Count)
	}
	fmt.Fprintf(&sb, "%d row(s)", len(rows))
	return sb.String(), nil
}

func (s *Session) schema(name string) (string, error) {
	attrs, err := s.db.ViewSchema(strings.TrimSpace(name))
	if err != nil {
		return "", err
	}
	return strings.Join(attrs, ", "), nil
}

func (s *Session) stats(name string) (string, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return strings.TrimRight(s.reg.Dump(), "\n"), nil
	}
	st, err := s.db.Stats(name)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%+v", st), nil
}

// explain handles "explain <view>" and "explain analyze <view>".
func (s *Session) explain(rest string) (string, error) {
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(strings.ToLower(rest), "analyze ") {
		return s.db.ExplainAnalyze(strings.TrimSpace(rest[len("analyze "):]))
	}
	return s.db.Explain(rest)
}

// trace lists the flight recorder's contents ("trace") or renders one
// recorded commit ("trace <id>"): the hierarchical span tree with
// per-stage offsets and durations, then the computed critical path.
func (s *Session) trace(rest string) (string, error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		sums := s.fr.Summaries()
		if len(sums) == 0 {
			return "no traces recorded yet (commit something first)", nil
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d trace(s) retained, newest first (%d completed since open):\n",
			len(sums), s.fr.Total())
		for _, t := range sums {
			pin := ""
			if t.Pinned {
				pin = "  [pinned: slow]"
			}
			fmt.Fprintf(&sb, "  %6d  %-16s %10s  %d span(s)%s\n",
				t.ID, t.Name, fdur(t.Seconds), t.Spans, pin)
		}
		sb.WriteString("trace <id> shows one span tree")
		return sb.String(), nil
	}
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return "", fmt.Errorf("trace wants a numeric id, got %q", rest)
	}
	t, ok := s.fr.Get(id)
	if !ok {
		return "", fmt.Errorf("trace %d not in the recorder (evicted or never completed)", id)
	}
	return renderTrace(t), nil
}

// renderTrace pretty-prints one trace: the span tree (children
// indented under their parents, in start order) and the critical path.
func renderTrace(t *obs.Trace) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %d  %s  %s  (%s ago)\n",
		t.ID, t.Name, fdur(t.Seconds), time.Since(t.Start).Round(time.Millisecond))
	kids := make(map[uint64][]obs.RecordedSpan)
	var root *obs.RecordedSpan
	for i := range t.Spans {
		sp := t.Spans[i]
		if sp.Parent == 0 {
			root = &t.Spans[i]
			continue
		}
		kids[sp.Parent] = append(kids[sp.Parent], sp)
	}
	var walk func(sp obs.RecordedSpan, depth int)
	walk = func(sp obs.RecordedSpan, depth int) {
		fmt.Fprintf(&sb, "  %s%s  +%s %s%s\n", strings.Repeat("  ", depth),
			sp.Name, fdur(sp.Offset), fdur(sp.Seconds), fattrs(sp.Attrs))
		for _, c := range kids[sp.ID] {
			walk(c, depth+1)
		}
	}
	if root != nil {
		walk(*root, 0)
	}
	if len(t.Critical) > 0 {
		sb.WriteString("critical path:\n")
		for _, c := range t.Critical {
			var share float64
			if t.Seconds > 0 {
				share = c.Seconds / t.Seconds * 100
			}
			fmt.Fprintf(&sb, "  %-18s %10s  %5.1f%%\n", c.Name, fdur(c.Seconds), share)
		}
	}
	if t.Dropped > 0 {
		fmt.Fprintf(&sb, "(%d span(s) dropped past the per-trace cap)\n", t.Dropped)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// fdur renders a span duration in seconds at microsecond precision.
func fdur(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}

// fattrs renders span attributes as sorted " k=v" pairs.
func fattrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%v", k, attrs[k])
	}
	return sb.String()
}

func (s *Session) refresh(rest string) (string, error) {
	rest = strings.TrimSpace(rest)
	if strings.EqualFold(rest, "all") {
		if err := s.db.RefreshAll(); err != nil {
			return "", err
		}
		return "refreshed all views", nil
	}
	if err := s.db.Refresh(rest); err != nil {
		return "", err
	}
	return "refreshed " + rest, nil
}

// policy shows ("policy <view>") or changes ("policy <view> <spec>") a
// view's refresh policy at runtime.
func (s *Session) policy(rest string) (string, error) {
	fields := strings.Fields(rest)
	switch len(fields) {
	case 1:
		// Show only.
	case 2:
		opt, err := mview.ParseViewOption(strings.ToLower(fields[1]))
		if err != nil {
			return "", err
		}
		if err := s.db.SetPolicy(fields[0], opt); err != nil {
			return "", err
		}
	default:
		return "", fmt.Errorf("usage: policy <view> [oncommit | ondemand | every=<dur> | maxstale=<dur> | autopolicy]")
	}
	p, err := s.db.Policy(fields[0])
	if err != nil {
		return "", err
	}
	mode := "deferred"
	if p.Immediate {
		mode = "immediate"
	}
	return fmt.Sprintf("%s: policy=%s mode=%s staleness=%s",
		fields[0], p.Spec, mode, p.Staleness.Round(time.Millisecond)), nil
}

// workers shows ("workers") or sets ("workers <n>") the maintenance
// worker-pool size; 0 restores the GOMAXPROCS default.
func (s *Session) workers(rest string) (string, error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return fmt.Sprintf("maintenance workers: %d", s.db.MaintWorkers()), nil
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return "", fmt.Errorf("workers wants a non-negative integer, got %q", rest)
	}
	s.db.SetMaintWorkers(n)
	return fmt.Sprintf("maintenance workers: %d", s.db.MaintWorkers()), nil
}

// relevant parses "<view> <rel> (<v>, ...)".
func (s *Session) relevant(rest string) (string, error) {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return "", fmt.Errorf("expected <view> <rel> (<v>, ...)")
	}
	view, rel := fields[0], fields[1]
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("expected <view> <rel> (<v>, ...)")
	}
	vals, err := parseValues(rest[open+1 : len(rest)-1])
	if err != nil {
		return "", err
	}
	ok, err := s.db.Relevant(view, rel, vals...)
	if err != nil {
		return "", err
	}
	if ok {
		return "relevant: the update may affect the view", nil
	}
	return "irrelevant: provably cannot affect the view in any database state (Thm 4.1)", nil
}

func (s *Session) save(rest string) (string, error) {
	path := strings.TrimSpace(rest)
	if path == "" {
		return "", fmt.Errorf("expected a file path")
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := s.db.Save(f); err != nil {
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return "saved to " + path, nil
}

func (s *Session) load(rest string) (string, error) {
	path := strings.TrimSpace(rest)
	if path == "" {
		return "", fmt.Errorf("expected a file path")
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	db, err := mview.Load(f)
	if err != nil {
		return "", err
	}
	if s.inTx {
		return "", fmt.Errorf("cannot load inside a transaction")
	}
	s.db = db
	db.Instrument(s.reg, s.fr)
	return "loaded " + path, nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func parseValues(s string) ([]int64, error) {
	parts := splitList(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty tuple")
	}
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

// Catalog returns a sorted summary of the database for the prompt.
func (s *Session) Catalog() string {
	names := append(s.db.Relations(), s.db.Views()...)
	sort.Strings(names)
	return strings.Join(names, " ")
}
