package db

// Shard-parallel maintenance (the commit pipeline's phase-1 fan-out).
//
// With WithShards(n), every base relation is split into n hash shards
// keyed on its first attribute (internal/relation). At commit, a view
// whose composed delta modifies exactly one operand fans out one
// maintenance task per non-empty shard of that operand's delta instead
// of one task per view: the §5 differential operators are linear in
// the delta when a single operand changed, so the disjoint per-shard
// sub-deltas yield disjoint derivations and diffeval.MergeDeltas
// ⊎-merges the partial results exactly. Before a shard task runs, the
// §4 checker probes the shard's observed key range
// (irrelevance.RangeRelevant); an unsatisfiable range prunes the whole
// shard without scanning a tuple.
//
// Views whose transaction touches several operands — or the same
// relation under several aliases (self-joins) — fall back to a single
// unsharded task: cross-terms between two delta slots would otherwise
// be computed by no shard or by several. Deferred refreshes and the
// per-transaction subscriber deltas inside a group also stay
// unsharded; both are off the phase-1 critical path.

import (
	"time"

	"mview/internal/delta"
	"mview/internal/diffeval"
)

// WithShards partitions every base relation into n hash shards on its
// first attribute and fans per-shard maintenance tasks onto the worker
// pool. n <= 1 keeps relations monolithic. Shard count is engine
// configuration, not persisted state: Save output is
// shard-independent, and Load re-shards to the configured count.
func WithShards(n int) Option {
	return func(e *Engine) {
		if n > 1 {
			e.shards = n
		}
	}
}

// Shards reports the configured shard count (1 when unsharded).
func (e *Engine) Shards() int {
	if e.shards <= 1 {
		return 1
	}
	return e.shards
}

// shardableOperand returns the index of the single operand eligible
// for shard fan-out, or -1 when the view must run as one task: the
// engine is unsharded, several operand slots are modified (including a
// touched self-join), or the touched relation is monolithic.
func (e *Engine) shardableOperand(st *viewState, composedTouched map[string]bool) int {
	if e.shards <= 1 {
		return -1
	}
	idx := -1
	for i, op := range st.bound.Operands {
		if !composedTouched[op.Rel] {
			continue
		}
		if idx != -1 {
			return -1
		}
		idx = i
	}
	if idx >= 0 && e.base[st.bound.Operands[idx].Rel].Shards() <= 1 {
		return -1
	}
	return idx
}

// commitTask is one unit of phase-1 work on the pool: either a whole
// view's delta computation (part < 0) or one shard's sub-delta for a
// fanned-out view. Each task owns its result slots, so the pool
// writes race-free; the lock holder folds tasks back into their views
// after the pool drains.
type commitTask struct {
	w     *refreshed
	upd   []delta.Update
	part  int  // index into w.parts; -1 = unsharded task, result to w.d
	clone bool // this task also pre-clones the view's COW copy

	d    *diffeval.ViewDelta
	err  error
	dur  time.Duration
	wait time.Duration
}

// planShardTasks expands one differential view into its phase-1 tasks,
// splitting the composed delta by shard (once per relation per batch,
// memoized in splits) and pruning shards whose key range is
// unsatisfiable. It appends to tasks and returns the extended slice.
// Pruning is conservative: a checker error keeps the shard.
func (e *Engine) planShardTasks(w *refreshed, composed []delta.Update,
	composedTouched map[string]bool, splits map[string][]delta.ShardUpdate,
	tasks []*commitTask) []*commitTask {
	opIdx := e.shardableOperand(w.st, composedTouched)
	if opIdx < 0 {
		return append(tasks, &commitTask{w: w, upd: composed, part: -1, clone: true})
	}
	rel := w.st.bound.Operands[opIdx].Rel
	sus, ok := splits[rel]
	if !ok {
		base := e.base[rel]
		for _, u := range composed {
			if u.Rel == rel {
				sus = delta.SplitUpdate(u, base.ShardKey(), base.Shards())
				break
			}
		}
		splits[rel] = sus
	}
	for _, su := range sus {
		if ck, err := w.st.ck.get(opIdx); err == nil {
			if relevant, err := ck.RangeRelevant(su.KeyPos, su.KeyLo, su.KeyHi); err == nil && !relevant {
				w.shardsPruned++
				continue
			}
		}
		w.parts = append(w.parts, nil)
		tasks = append(tasks, &commitTask{
			w:     w,
			upd:   []delta.Update{su.Update},
			part:  len(w.parts) - 1,
			clone: len(w.parts) == 1,
		})
	}
	w.shardTasks = len(w.parts)
	if len(w.parts) == 0 {
		// Every shard pruned (or the composed update was empty): the §4
		// range test proved the whole delta irrelevant, so the view's
		// delta is empty without computing anything. The install path
		// still counts the refresh, matching the unsharded pipeline.
		w.d = w.st.maint.EmptyDelta()
	}
	return tasks
}
