package db

// MVCC-lite read snapshots.
//
// The engine publishes an immutable Snapshot — database scheme, base
// relation contents, and every view's materialization and counters —
// at the end of each commit, refresh, and DDL statement, via a single
// atomic pointer swap. Read paths (View, Relation, Query, Relevant,
// Explain, ViewStats) load the pointer and never take the engine
// lock, so read traffic cannot throttle the commit pipeline and a
// reader iterating a result can never observe a concurrent commit.
//
// Publishing is copy-on-write with structural sharing: the snapshot
// references the engine's live objects instead of copying them, and
// the shared flags (Engine.baseShared, viewState.dataShared) make the
// next writer clone an object before mutating it in place. A commit
// that touches two of a hundred views therefore pays two clones; the
// other ninety-eight cost one carried-over pointer each.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mview/internal/expr"
	"mview/internal/irrelevance"
	"mview/internal/relation"
	"mview/internal/schema"
)

// Snapshot is one immutable, consistent cut of the database: the
// state exactly as of some committed transaction (plus any refreshes
// and DDL). All contained objects are frozen — writers copy before
// mutating — so a Snapshot may be read from any goroutine forever.
type Snapshot struct {
	seq       uint64
	created   time.Time
	scheme    *schema.Database
	base      map[string]*relation.Relation
	views     map[string]*snapView
	viewOrder []string
	// indexed records which base columns carried a persistent hash
	// index at publish time ("rel" → position set), for Explain.
	indexed map[string]map[int]bool
	// shards is the engine's configured hash-shard count, for Explain
	// and the debug endpoints.
	shards int
}

// Seq returns the snapshot's publish sequence number (0 for the empty
// engine's initial snapshot). Two reads returning the same Seq saw
// the identical database state.
func (s *Snapshot) Seq() uint64 { return s.seq }

// snapView is one view's frozen state within a snapshot: definition,
// materialization, and a publish-time copy of the maintenance
// counters (so ViewStats never races with maintenance workers).
type snapView struct {
	name  string
	bound *expr.Bound
	cfg   ViewConfig
	data  *relation.Counted
	stats ViewStats
	ck    *checkerCache
	// pendingSince and lastMaint are publish-time copies of the view's
	// staleness clock and most recent maintenance record, read lock-free
	// by Staleness and ExplainAnalyze (trace.go).
	pendingSince time.Time
	lastMaint    maintRecord
	// reads is shared with the live viewState (not a copy): the
	// lock-free read path bumps it so the adaptive when-policy can see
	// the view's read rate.
	reads *atomic.Int64
}

// checkerCache lazily builds and caches one §4 irrelevance checker
// per view operand (the Prepare step is O(n³) per conjunct and must
// not run per Relevant call). A view's bound definition and filter
// options never change, so the cache is shared by the live viewState
// and every snapshot of the view: checkers built once serve all later
// snapshots, and Relevant needs no engine lock.
type checkerCache struct {
	mu       sync.Mutex
	bound    *expr.Bound
	cfg      ViewConfig
	checkers []*irrelevance.Checker
}

func newCheckerCache(bound *expr.Bound, cfg ViewConfig) *checkerCache {
	return &checkerCache{bound: bound, cfg: cfg}
}

func (c *checkerCache) get(opIdx int) (*irrelevance.Checker, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.checkers == nil {
		c.checkers = make([]*irrelevance.Checker, len(c.bound.Operands))
	}
	if c.checkers[opIdx] == nil {
		ck, err := irrelevance.NewChecker(c.bound, opIdx, c.cfg.Maint.FilterOptions)
		if err != nil {
			return nil, err
		}
		c.checkers[opIdx] = ck
	}
	return c.checkers[opIdx], nil
}

// publishLocked builds a new snapshot from the engine's current state
// and installs it with one atomic store. Callers hold the write lock.
//
// The snapshot shares the live objects (no deep copy); marking every
// base relation shared and every view's data shared makes the next
// in-place mutation clone first, which is what freezes this snapshot.
// A view whose data, stats, and backlog did not change since the last
// publish (snapDirty unset) reuses its previous snapView wholesale.
func (e *Engine) publishLocked() {
	o := e.o.Load()
	var t0 time.Time
	if o != nil {
		t0 = time.Now()
	}
	prev := e.snap.Load()
	s := &Snapshot{
		created:   time.Now(),
		scheme:    e.scheme,
		base:      make(map[string]*relation.Relation, len(e.base)),
		views:     make(map[string]*snapView, len(e.views)),
		viewOrder: append([]string(nil), e.viewOrder...),
		shards:    e.Shards(),
	}
	if prev != nil {
		s.seq = prev.seq + 1
	}
	for name, r := range e.base {
		s.base[name] = r
		e.baseShared[name] = true
	}
	for _, name := range e.viewOrder {
		st := e.views[name]
		var sv *snapView
		if prev != nil && !st.snapDirty {
			sv = prev.views[name]
		}
		if sv == nil {
			sv = &snapView{
				name:         name,
				bound:        st.bound,
				cfg:          st.cfg,
				data:         st.data,
				stats:        st.stats,
				ck:           st.ck,
				pendingSince: st.pendingSince,
				lastMaint:    st.lastMaint,
				reads:        st.reads,
			}
		}
		st.dataShared = true
		st.snapDirty = false
		s.views[name] = sv
	}
	if len(e.indexes) > 0 {
		s.indexed = make(map[string]map[int]bool, len(e.indexes))
		for rel, m := range e.indexes {
			pm := make(map[int]bool, len(m))
			for pos := range m {
				pm[pos] = true
			}
			s.indexed[rel] = pm
		}
	}
	e.snap.Store(s)
	if o != nil {
		o.snapPublish.ObserveDuration(time.Since(t0))
		o.snapAge.Set(0)
	}
}

// currentSnapshot returns the published snapshot, counting the read
// and refreshing the staleness gauge. Never nil: New publishes an
// initial empty snapshot before the engine escapes its constructor.
func (e *Engine) currentSnapshot() *Snapshot {
	s := e.snap.Load()
	if o := e.o.Load(); o != nil {
		o.snapReads.Inc()
		o.snapAge.Set(time.Since(s.created).Seconds())
	}
	return s
}

// CurrentSnapshot returns the engine's published read snapshot. All
// reads against one Snapshot see a single consistent cut of the
// database regardless of concurrent commits.
func (e *Engine) CurrentSnapshot() *Snapshot { return e.currentSnapshot() }

// operandInstances gathers the snapshot's base instances for a bound
// view expression.
func (s *Snapshot) operandInstances(b *expr.Bound) []*relation.Relation {
	insts := make([]*relation.Relation, len(b.Operands))
	for i, op := range b.Operands {
		insts[i] = s.base[op.Rel]
	}
	return insts
}

// ViewCloneLocked returns a deep clone of a view's materialization
// taken under the engine's read lock — the seed's read path, retained
// only as the baseline that BenchmarkSnapshotReads compares the
// lock-free snapshot path against.
func (e *Engine) ViewCloneLocked(name string) (*relation.Counted, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.views[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	return st.data.Clone(), nil
}
