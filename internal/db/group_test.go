package db

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"mview/internal/delta"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/obs"
	"mview/internal/relation"
	"mview/internal/tuple"
)

// buildGroupFleet creates an engine with one relation and one R_i ⋈ S
// view per writer (mixed modes/policies) plus a shared, read-only S.
// Per-writer relations keep concurrent streams commutative, so a
// serial oracle replaying the same transactions in any order must
// produce identical state.
func buildGroupFleet(t *testing.T, writers int, opts ...Option) (*Engine, []expr.View) {
	t.Helper()
	e := New(opts...)
	defs := make([]expr.View, writers)
	for i := 0; i < writers; i++ {
		if err := e.CreateRelation(fmt.Sprintf("R%d", i), "A", "B"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CreateRelation("S", "B", "C"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writers; i++ {
		v, err := expr.NaturalJoin(fmt.Sprintf("v%d", i), e.Scheme(), fmt.Sprintf("R%d", i), "S")
		if err != nil {
			t.Fatal(err)
		}
		defs[i] = v
		cfg := ViewConfig{}
		switch i % 3 {
		case 1:
			cfg.Mode = Deferred
		case 2:
			cfg.Policy = PolicyAdaptive
		}
		if err := e.CreateView(v, cfg); err != nil {
			t.Fatal(err)
		}
	}
	var seed delta.Tx
	for b := 0; b < 6; b++ {
		seed.Insert("S", tuple.New(int64(b), int64(100+b)))
	}
	exec(t, e, &seed)
	return e, defs
}

// genStreams builds per-writer transaction streams with churn: tuples
// inserted early are deleted later, so batches formed at commit time
// exercise §6 insert/delete cancellation.
func genStreams(writers, rounds int) [][]*delta.Tx {
	streams := make([][]*delta.Tx, writers)
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		rel := fmt.Sprintf("R%d", w)
		var live []tuple.Tuple
		for r := 0; r < rounds; r++ {
			tx := &delta.Tx{}
			seen := make(map[string]bool)
			for n := 1 + rng.Intn(3); n > 0; n-- {
				if len(live) > 0 && rng.Intn(10) < 4 {
					i := rng.Intn(len(live))
					tu := live[i]
					if seen[tu.Key()] {
						continue
					}
					seen[tu.Key()] = true
					tx.Delete(rel, tu)
					live = append(live[:i], live[i+1:]...)
					continue
				}
				tu := tuple.New(int64(rng.Intn(40)), int64(rng.Intn(6)))
				dup := seen[tu.Key()]
				for _, x := range live {
					if x.Key() == tu.Key() {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seen[tu.Key()] = true
				tx.Insert(rel, tu)
				live = append(live, tu)
			}
			if tx.Len() > 0 {
				streams[w] = append(streams[w], tx)
			}
		}
	}
	return streams
}

// TestGroupCommitMatchesSerialOracle drives N concurrent writers
// through the group-commit scheduler and replays the identical streams
// serially on an oracle engine: final base relations, view contents,
// and the touch counters (Transactions, PendingTx) must agree, and
// every view must equal a full recompute. Run with -race.
func TestGroupCommitMatchesSerialOracle(t *testing.T) {
	const writers, rounds = 8, 40
	grp, defs := buildGroupFleet(t, writers)
	oracle, _ := buildGroupFleet(t, writers)
	reg := obs.NewRegistry()
	grp.SetObs(reg, nil)
	grp.EnableGroupCommit(writers, 2*time.Millisecond, nil)
	defer grp.DisableGroupCommit()

	streams := genStreams(writers, rounds)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, tx := range streams[w] {
				if _, err := grp.Execute(tx); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		for _, tx := range streams[w] {
			if _, err := oracle.Execute(tx); err != nil {
				t.Fatalf("oracle writer %d: %v", w, err)
			}
		}
	}

	for w := 0; w < writers; w++ {
		rel := fmt.Sprintf("R%d", w)
		rg, _ := grp.Relation(rel)
		ro, _ := oracle.Relation(rel)
		if !rg.Equal(ro) {
			t.Errorf("%s diverged:\n group: %v\n oracle: %v", rel, rg, ro)
		}
	}
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("v%d", w)
		sg, _ := grp.ViewStats(name)
		so, _ := oracle.ViewStats(name)
		if sg.Transactions != so.Transactions {
			t.Errorf("%s Transactions = %d, oracle %d", name, sg.Transactions, so.Transactions)
		}
		if sg.PendingTx != so.PendingTx {
			t.Errorf("%s PendingTx = %d, oracle %d", name, sg.PendingTx, so.PendingTx)
		}
	}
	if err := grp.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("v%d", w)
		vg, _ := grp.View(name)
		vo, _ := oracle.View(name)
		if !vg.Equal(vo) {
			t.Errorf("%s diverged:\n group: %v\n oracle: %v", name, vg, vo)
		}
		rec, err := grp.Query(defs[w], eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !vg.Equal(rec) {
			t.Errorf("%s diverged from recompute oracle:\n view: %v\n oracle: %v", name, vg, rec)
		}
	}

	// The whole point: at least one batch actually coalesced.
	for _, s := range reg.Snapshot() {
		if s.Name == "mview_group_commit_size" {
			var solo int64
			for _, b := range s.Buckets {
				if b.LE == "1" {
					solo = b.Count
				}
			}
			if s.Count == 0 {
				t.Error("mview_group_commit_size never observed a batch")
			} else if solo == s.Count {
				t.Logf("warning: all %d batches were solo; concurrency never coalesced", s.Count)
			}
			return
		}
	}
	t.Error("mview_group_commit_size not in registry snapshot")
}

// TestGroupBatchExcludesFailingTx pins per-transaction atomicity
// inside a group, deterministically (white-box: the batch runner is
// driven directly). One member's delete cannot validate against a
// corrupted view; the shared maintenance pass fails, the scheduler
// retries each member solo, and only the poisoned transaction errors.
func TestGroupBatchExcludesFailingTx(t *testing.T) {
	e := newEngine(t) // R, S
	if err := e.CreateRelation("T", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "good"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	bad, err := expr.NaturalJoin("bad", e.Scheme(), "T", "S")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(bad, ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	var seed delta.Tx
	seed.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 10)).Insert("T", tuple.New(7, 2))
	exec(t, e, &seed)
	// Corrupt "bad" so the delete of (7,2) cannot fold.
	if err := e.views["bad"].data.Add(tuple.New(7, 2, 10), -1); err != nil {
		t.Fatal(err)
	}

	okTx, badTx, unknownTx := &delta.Tx{}, &delta.Tx{}, &delta.Tx{}
	okTx.Insert("R", tuple.New(3, 2))
	badTx.Delete("T", tuple.New(7, 2))
	unknownTx.Insert("NOPE", tuple.New(1, 1))

	g := &group{e: e, maxBatch: 8}
	reqs := []*groupReq{
		{tx: okTx, done: make(chan struct{})},
		{tx: badTx, done: make(chan struct{})},
		{tx: unknownTx, done: make(chan struct{})},
	}
	g.run(reqs, 0)

	if reqs[0].err != nil {
		t.Errorf("healthy tx failed: %v", reqs[0].err)
	}
	if reqs[1].err == nil || !strings.Contains(reqs[1].err.Error(), "derivations") {
		t.Errorf("poisoned tx err = %v, want delta validation failure", reqs[1].err)
	}
	if reqs[2].err == nil || !strings.Contains(reqs[2].err.Error(), "unknown relation") {
		t.Errorf("unknown-relation tx err = %v", reqs[2].err)
	}

	// The healthy member committed: base applied, view refreshed.
	r, _ := e.Relation("R")
	if !r.Has(tuple.New(3, 2)) {
		t.Errorf("healthy tx not applied to R: %v", r)
	}
	v, _ := e.View("good")
	if !v.Has(tuple.New(3, 2, 10)) {
		t.Errorf("healthy tx not reflected in view: %v", v)
	}
	// The poisoned member did not: T unchanged.
	tr, _ := e.Relation("T")
	if !tr.Has(tuple.New(7, 2)) {
		t.Errorf("poisoned tx mutated T: %v", tr)
	}
}

// TestGroupCommitPerTxNotifications verifies subscriber granularity:
// with group commit coalescing many concurrent single-insert
// transactions, a subscriber still receives one alert per transaction
// whose delta reaches the view — never one blended alert per group.
func TestGroupCommitPerTxNotifications(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	var seed delta.Tx
	seed.Insert("S", tuple.New(2, 10))
	exec(t, e, &seed)

	var mu sync.Mutex
	var alerts int
	total := 0
	if _, err := e.Subscribe("v", func(view string, ins, del *relation.Counted) {
		mu.Lock()
		alerts++
		total += ins.Len() - del.Len()
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	e.EnableGroupCommit(16, 2*time.Millisecond, nil)
	defer e.DisableGroupCommit()

	const writers, per = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx := &delta.Tx{}
				tx.Insert("R", tuple.New(int64(w*100+i), 2))
				if _, err := e.Execute(tx); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if alerts != writers*per {
		t.Errorf("subscriber got %d alerts for %d transactions, want per-tx granularity", alerts, writers*per)
	}
	if total != writers*per {
		t.Errorf("folded alert payloads sum to %d net inserts, want %d", total, writers*per)
	}
	v, _ := e.View("v")
	if v.Len() != writers*per {
		t.Errorf("view has %d rows, want %d", v.Len(), writers*per)
	}
}

// TestDisableGroupCommitDrains: disabling the scheduler commits every
// queued transaction before returning, and later Executes go serial.
func TestDisableGroupCommitDrains(t *testing.T) {
	e := newEngine(t)
	var seed delta.Tx
	seed.Insert("S", tuple.New(2, 10))
	exec(t, e, &seed)
	e.EnableGroupCommit(4, 50*time.Millisecond, nil)

	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := &delta.Tx{}
			tx.Insert("R", tuple.New(int64(i), 2))
			if _, err := e.Execute(tx); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	e.DisableGroupCommit()
	wg.Wait()

	if e.GroupCommitEnabled() {
		t.Error("scheduler still enabled after DisableGroupCommit")
	}
	tx := &delta.Tx{}
	tx.Insert("R", tuple.New(1000, 2))
	exec(t, e, tx)
	r, _ := e.Relation("R")
	if r.Len() != n+1 {
		t.Errorf("R has %d rows after drain + serial commit, want %d", r.Len(), n+1)
	}
}
