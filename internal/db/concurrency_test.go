package db

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mview/internal/delta"
	"mview/internal/eval"
	"mview/internal/tuple"
)

// TestConcurrentReadersAndWriter hammers the engine with one writer
// and several readers; run with -race. The writer's view must always
// be internally consistent (readers may observe any committed state).
func TestConcurrentReadersAndWriter(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "snap"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}

	const nTx = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0:
					if _, err := e.View("v"); err != nil {
						t.Errorf("View: %v", err)
						return
					}
				case 1:
					if _, err := e.Relation("R"); err != nil {
						t.Errorf("Relation: %v", err)
						return
					}
				case 2:
					if _, err := e.ViewStats("v"); err != nil {
						t.Errorf("ViewStats: %v", err)
						return
					}
				case 3:
					_ = e.Views()
				}
				if i%16 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(r)
	}

	// One refresher for the deferred view. The pause keeps the
	// write-lock acquisitions from ping-ponging with the readers,
	// which would stretch the test without exercising anything new.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.RefreshView("snap"); err != nil {
				t.Errorf("RefreshView: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Writer.
	for i := 0; i < nTx; i++ {
		var tx delta.Tx
		tx.Insert("R", tuple.New(int64(i), int64(i%7)))
		tx.Insert("S", tuple.New(int64(i%7), int64(i)))
		if i%3 == 0 {
			tx.Delete("R", tuple.New(int64(i/2), int64((i/2)%7)))
		}
		if _, err := e.Execute(&tx); err != nil {
			t.Fatalf("Execute: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// Final consistency: the differential view equals an ad-hoc query.
	if err := e.RefreshView("snap"); err != nil {
		t.Fatal(err)
	}
	got, _ := e.View("v")
	snap, _ := e.View("snap")
	if !got.Equal(snap) {
		t.Error("immediate and deferred copies diverged")
	}
	want, err := e.Query(joinViewDef(t, e, fmt.Sprintf("q%d", nTx)), eval.Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("view diverged from query:\n got %v\nwant %v", got, want)
	}
}
