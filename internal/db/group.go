// Group commit: concurrent Execute callers enqueue their transactions
// and a single scheduler goroutine drains the queue in batches. Each
// batch pays ONE log fsync (wal.Log.AppendBatch via the logBatch
// callback), ONE composed 3-phase maintenance pass (§6 composition
// cancels insert/delete churn before it reaches the views), and ONE
// snapshot publish, then fans the per-transaction results back out to
// the waiting callers.
//
// The serial path is the same pipeline with a batch of one:
// executeLocked wraps executeBatchLocked, so group-on and group-off
// share every invariant (atomicity, COW discipline, §4 filtering).
package db

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/obs"
	"mview/internal/relation"
)

// DefaultGroupMaxBatch bounds a group when EnableGroupCommit is given
// a non-positive size.
const DefaultGroupMaxBatch = 64

// groupReq is one caller's transaction riding a group.
type groupReq struct {
	tx       *delta.Tx
	payload  []byte    // pre-encoded commit-log record; nil when not durable
	enqueued time.Time // when submit queued the request (queue_wait stage)

	// Filled by the pipeline.
	touched    map[string]bool                // relations in this tx's net effect
	viewDeltas map[string]*diffeval.ViewDelta // per-tx deltas for subscribed views
	res        TxResult
	err        error
	done       chan struct{} // closed when res/err are final
}

// group is the scheduler state. One goroutine (loop) owns batching;
// callers only append to the queue and wait.
type group struct {
	e        *Engine
	maxBatch int
	window   time.Duration
	logBatch func(payloads [][]byte) error // one fsync per call; nil when not durable

	mu       sync.Mutex
	queue    []*groupReq
	lastSize int  // size of the last batch: evidence of concurrency
	closing  bool // reject new submissions; drain what is queued

	wake    chan struct{} // cap 1: queue went non-empty
	full    chan struct{} // cap 1: queue reached maxBatch, cut the window short
	stop    chan struct{}
	stopped chan struct{}
}

// EnableGroupCommit starts the group-commit scheduler: Execute calls
// enqueue and a leader goroutine commits batches of up to maxBatch
// transactions (non-positive: DefaultGroupMaxBatch), waiting up to
// window for stragglers only when there is evidence of concurrency — a
// solo writer never pays the window. logBatch, when non-nil, must
// persist all payloads with a single fsync (wal.Log.AppendBatch);
// it is called before the batch becomes visible.
func (e *Engine) EnableGroupCommit(maxBatch int, window time.Duration, logBatch func([][]byte) error) {
	e.DisableGroupCommit()
	if maxBatch <= 0 {
		maxBatch = DefaultGroupMaxBatch
	}
	if window < 0 {
		window = 0
	}
	g := &group{
		e:        e,
		maxBatch: maxBatch,
		window:   window,
		logBatch: logBatch,
		wake:     make(chan struct{}, 1),
		full:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	e.group.Store(g)
	go g.loop()
}

// DisableGroupCommit stops the scheduler after draining queued
// transactions; later Execute calls take the serial path. No-op when
// group commit is off.
func (e *Engine) DisableGroupCommit() {
	g := e.group.Swap(nil)
	if g == nil {
		return
	}
	g.mu.Lock()
	g.closing = true
	g.mu.Unlock()
	close(g.stop)
	<-g.stopped
}

// GroupCommitEnabled reports whether the scheduler is running.
func (e *Engine) GroupCommitEnabled() bool { return e.group.Load() != nil }

// submit enqueues a transaction and blocks until its group commits.
// ok=false means the scheduler is shutting down and the caller must
// take the serial path.
func (g *group) submit(tx *delta.Tx, payload []byte) (TxResult, error, bool) {
	return g.submitCtx(context.Background(), tx, payload)
}

// submitCtx is submit with cancellation while queued: if ctx ends
// before a leader claims the request, the transaction is withdrawn and
// ctx's error returned. Once a leader has popped the request the
// commit is in flight and its outcome stands — cancellation can skip
// the wait for a batch, never tear a committed member back out.
func (g *group) submitCtx(ctx context.Context, tx *delta.Tx, payload []byte) (TxResult, error, bool) {
	req := &groupReq{tx: tx, payload: payload, enqueued: time.Now(), done: make(chan struct{})}
	g.mu.Lock()
	if g.closing {
		g.mu.Unlock()
		return TxResult{}, nil, false
	}
	g.queue = append(g.queue, req)
	n := len(g.queue)
	target := g.lastSize
	g.mu.Unlock()
	if n == 1 {
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
	// Cut the leader's window short once the expected cohort is in:
	// writers released by one group re-enqueue together, so the last
	// batch size predicts how many are coming. Without the cut every
	// group would pay the full window; with it the steady-state wait is
	// just the cohort's re-arrival time (microseconds).
	if n >= g.maxBatch || (target > 1 && n >= target) {
		select {
		case g.full <- struct{}{}:
		default:
		}
	}
	if done := ctx.Done(); done != nil {
		select {
		case <-req.done:
		case <-done:
			if g.tryRemove(req) {
				return TxResult{}, ctx.Err(), true
			}
			// A leader already claimed the request: await its verdict.
			<-req.done
		}
	} else {
		<-req.done
	}
	return req.res, req.err, true
}

// tryRemove withdraws a still-queued request; false means a leader has
// already taken it.
func (g *group) tryRemove(req *groupReq) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, r := range g.queue {
		if r == req {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			return true
		}
	}
	return false
}

func (g *group) loop() {
	defer close(g.stopped)
	for {
		select {
		case <-g.wake:
			g.drainAdaptive()
		case <-g.stop:
			g.drain()
			return
		}
	}
}

// drainAdaptive processes batches until the queue is empty. The window
// wait runs only with evidence of concurrency (more than one queued,
// or the previous batch had more than one member): a lone writer
// commits immediately, a burst accumulates into one fsync.
func (g *group) drainAdaptive() {
	for {
		g.mu.Lock()
		n, last := len(g.queue), g.lastSize
		g.mu.Unlock()
		if n == 0 {
			return
		}
		// Wait only with evidence that more members are coming: either
		// the previous batch was concurrent and its cohort has not fully
		// re-arrived (n < last), or concurrency just appeared (n > 1
		// after a serial batch). A lone writer never waits, and once the
		// expected cohort is in, neither does anyone else — submit's
		// early-wake on g.full ends the window immediately, so the
		// window is a straggler ceiling, not a tax.
		var waited time.Duration
		if g.window > 0 && n < g.maxBatch && ((last > 1 && n < last) || (last <= 1 && n > 1)) {
			t := time.NewTimer(g.window)
			start := time.Now()
			select {
			case <-g.full:
			case <-t.C:
			case <-g.stop:
				// Shutting down: commit what is queued without waiting.
			}
			t.Stop()
			waited = time.Since(start)
		}
		batch := g.pop()
		if len(batch) == 0 {
			continue
		}
		if o := g.e.o.Load(); o != nil && o.groupSize != nil {
			o.groupSize.Observe(float64(len(batch)))
			o.groupWait.ObserveDuration(waited)
		}
		g.run(batch, waited)
	}
}

// drain commits everything queued with no window waits (shutdown).
func (g *group) drain() {
	for {
		batch := g.pop()
		if len(batch) == 0 {
			return
		}
		g.run(batch, 0)
	}
}

// pop takes up to maxBatch requests off the queue.
func (g *group) pop() []*groupReq {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(g.queue)
	if n > g.maxBatch {
		n = g.maxBatch
	}
	batch := g.queue[:n:n]
	g.queue = append([]*groupReq(nil), g.queue[n:]...)
	g.lastSize = n
	select {
	case <-g.full: // consume a stale early-wake from the served burst
	default:
	}
	return batch
}

// run commits one batch and releases its callers. window is how long
// the leader held the batch open waiting for stragglers.
func (g *group) run(batch []*groupReq, window time.Duration) {
	g.runOnce(batch, window)
	for _, r := range batch {
		close(r.done)
	}
}

// runOnce runs the batch pipeline under its own commit trace
// (db.commit_group). A shared-phase failure in a batch of several
// transactions cannot be attributed to one member, so each remaining
// member retries solo — per-transaction atomicity holds and one
// poisoned transaction never takes the group down with it; each retry
// is its own pipeline run with its own trace. A solo run's shared
// failure IS attributable and lands on the request.
func (g *group) runOnce(batch []*groupReq, window time.Duration) {
	var queueWait time.Duration
	now := time.Now()
	for _, r := range batch {
		if r.enqueued.IsZero() {
			continue
		}
		if w := now.Sub(r.enqueued); w > queueWait {
			queueWait = w
		}
	}
	ct := g.e.newGroupTrace(len(batch), queueWait, window)
	ns, err := g.e.executeBatchLocked(batch, g.logBatch, ct)
	ct.close(err)
	if err != nil {
		if len(batch) == 1 {
			if batch[0].err == nil {
				batch[0].err = err
			}
			return
		}
		for _, r := range batch {
			if r.err != nil {
				continue // per-tx failure already attributed in the failed run
			}
			r.res, r.viewDeltas, r.touched = TxResult{}, nil, nil
			g.runOnce([]*groupReq{r}, 0)
		}
		return
	}
	fire(ns)
}

// executeBatchLocked is the commit pipeline, generalized from one
// transaction to an ordered group. Per-transaction failures (unknown
// relation, arity, a failing per-tx view delta) are recorded on the
// request and the transaction is excluded from the group; a failure in
// a shared phase returns an error with the engine untouched — nothing
// is installed until every delta is validated and the whole batch is
// durably logged.
//
// Phases:
//  1. net effects: each transaction's delta.Tx.Net runs against an
//     overlay of cloned base relations that accumulates the earlier
//     members' effects, so later members see their predecessors.
//  2. composition (§6): delta.ComposeTxs folds the per-tx nets into
//     one net delta per relation; intra-group churn cancels here and
//     never reaches maintenance.
//  3. maintenance: ONE 3-phase pass over the composed delta — the
//     serial pipeline's classify / compute-on-pool / validate, with
//     recomputes materialized from the overlay post-state.
//  4. log: all payloads appended with a single fsync (logBatch).
//  5. install + publish: bases swap to the overlay clones, indexes
//     advance by the composed delta, view states install, ONE COW
//     snapshot publishes. Nothing in this phase can fail.
//
// ct (nil when obs is detached) times every phase as a pipeline stage
// and, with a tracer attached, emits the stage and fan-out spans that
// the flight recorder assembles into the commit's trace (trace.go).
func (e *Engine) executeBatchLocked(reqs []*groupReq, logBatch func([][]byte) error, ct *commitTrace) ([]notification, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	batchMode := len(reqs) > 1

	// Phase 1: per-tx net effects against the evolving overlay. e.base
	// stays frozen at the pre-group state B0 — maintenance deltas and
	// the persistent indexes are defined against it.
	work := make(map[string]*relation.Relation)
	lookup := func(name string) (*relation.Relation, bool) {
		if r, ok := work[name]; ok {
			return r, true
		}
		r, ok := e.base[name]
		return r, ok
	}
	overlayInst := func(b *expr.Bound) []*relation.Relation {
		insts := make([]*relation.Relation, len(b.Operands))
		for i, op := range b.Operands {
			r, _ := lookup(op.Rel)
			insts[i] = r
		}
		return insts
	}

	se := ct.begin(stageNet)
	live := make([]*groupReq, 0, len(reqs))
	nets := make([][]delta.Update, 0, len(reqs))
	for _, r := range reqs {
		updates, err := r.tx.Net(lookup)
		if err != nil {
			r.err = err
			continue
		}
		r.res = TxResult{Updates: updates, Trace: ct.traceID()}
		r.touched = make(map[string]bool, len(updates))
		for _, u := range updates {
			r.touched[u.Rel] = true
		}
		// Per-tx view deltas for subscribed views (batch only): each
		// subscriber sees one alert per transaction, not one per group.
		// Computed against the overlay BEFORE this tx applies; indexes
		// are only consulted for relations still at their pre-group
		// state (dirty ones fall back to scans).
		if batchMode {
			if err := e.perTxViewDeltas(r, updates, overlayInst, work); err != nil {
				r.err = err
				continue
			}
		}
		for _, u := range updates {
			if _, ok := work[u.Rel]; !ok {
				work[u.Rel] = e.base[u.Rel].Clone()
			}
			if err := u.Apply(work[u.Rel]); err != nil {
				// Unreachable: Net guarantees disjointness against the
				// very state the update applies to. Poison the batch
				// rather than risk a torn overlay.
				se.end(obs.KV{K: "err", V: true})
				return nil, fmt.Errorf("db: internal: overlay apply failed: %w", err)
			}
		}
		live = append(live, r)
		nets = append(nets, updates)
	}
	if se.span != nil {
		se.end(obs.KV{K: "txs", V: len(reqs)}, obs.KV{K: "live", V: len(live)})
	} else {
		se.end()
	}
	if len(live) == 0 {
		return nil, nil
	}

	// Phase 2: §6 composition of the group's net effects.
	se = ct.begin(stageCompose)
	composed, err := delta.ComposeTxs(nets)
	if err != nil {
		se.end(obs.KV{K: "err", V: true})
		return nil, err
	}
	if se.span != nil {
		se.end(obs.KV{K: "relations", V: len(composed)})
	} else {
		se.end()
	}
	composedTouched := make(map[string]bool, len(composed))
	for _, u := range composed {
		composedTouched[u.Rel] = true
	}
	unionTouched := make(map[string]bool)
	for _, r := range live {
		for rel := range r.touched {
			unionTouched[rel] = true
		}
	}

	// Phase 3: classify the touched views. Counters follow the per-tx
	// touch union so ViewStats.Transactions and PendingTx match the
	// serial path even when composition cancels the data change.
	var work3 []*refreshed
	var diff []*refreshed
	var recs []*refreshed
	for _, name := range e.viewOrder {
		st := e.views[name]
		if !e.viewTouched(st, unionTouched) {
			continue
		}
		touchCount := 0
		for _, r := range live {
			if e.viewTouched(st, r.touched) {
				touchCount++
			}
		}
		if st.cfg.Mode == Deferred {
			pend := e.stagePending(st, composed)
			work3 = append(work3, &refreshed{st: st, deferred: true, pend: pend, touchCount: touchCount})
			continue
		}
		if batchMode && perTxView(st) {
			w := &refreshed{st: st, perTx: true, touchCount: touchCount,
				decision: decisionLabel(st.cfg, PolicyDifferential)}
			work3 = append(work3, w)
			continue
		}
		if !e.viewTouched(st, composedTouched) {
			// The group's churn cancelled before reaching this view: no
			// data change, but the touch counters still advance.
			work3 = append(work3, &refreshed{st: st, noop: true, touchCount: touchCount})
			continue
		}
		policy := st.cfg.Policy
		if policy == PolicyAdaptive {
			policy = e.chooseAdaptive(st, composed)
		}
		switch policy {
		case PolicyRecompute:
			w := &refreshed{st: st, touchCount: touchCount, decision: decisionLabel(st.cfg, PolicyRecompute)}
			work3 = append(work3, w)
			recs = append(recs, w)
		default:
			w := &refreshed{st: st, touchCount: touchCount, insts: e.operandInstances(st.bound),
				decision: decisionLabel(st.cfg, PolicyDifferential)}
			work3 = append(work3, w)
			diff = append(diff, w)
		}
	}

	// Differential deltas of the composed net change, computed against
	// the frozen pre-group state on the worker pool (same contract as
	// the serial phase 1). With sharding, an eligible view expands into
	// one task per surviving shard of its modified operand's delta
	// (shard.go); the composed delta is split by shard once per
	// relation for the whole group, and the per-shard partial deltas
	// are ⊎-merged after the pool drains.
	//
	// The whole fan-out — differential tasks and recompute shadows — is
	// the maint stage; each unit of pool work gets its own child span,
	// and the longest one is the slowest_task critical-path component.
	maintSE := ct.begin(stageMaint)
	var maxTask time.Duration
	if len(diff) > 0 {
		splits := make(map[string][]delta.ShardUpdate)
		var tasks []*commitTask
		for _, w := range diff {
			tasks = e.planShardTasks(w, composed, composedTouched, splits, tasks)
		}
		prov := provider{e: e}
		submit := time.Now()
		e.forEachParallel(len(tasks), func(i int) {
			t := tasks[i]
			var sp obs.Span
			if ct.tracing() {
				sp = ct.task(maintSE.ctx, "maint.task",
					obs.KV{K: "view", V: t.w.st.name}, obs.KV{K: "shard", V: t.part})
			}
			start := time.Now()
			t.wait = start.Sub(submit)
			t.d, t.err = t.w.st.maint.ComputeDeltaWith(t.w.insts, t.upd, prov)
			if t.err == nil && t.clone && t.w.st.dataShared {
				t.w.cow = t.w.st.data.Clone()
			}
			t.dur = time.Since(start)
			if sp != nil {
				sp.End(obs.KV{K: "err", V: t.err != nil})
			}
		})
		for _, t := range tasks {
			if t.err != nil {
				maintSE.end(obs.KV{K: "err", V: true})
				return nil, t.err
			}
			if t.dur > maxTask {
				maxTask = t.dur
			}
			w := t.w
			if t.part < 0 {
				w.d, w.computeDur, w.wait = t.d, t.dur, t.wait
				continue
			}
			w.parts[t.part] = t.d
			w.computeDur += t.dur
			if t.part == 0 || t.wait < w.wait {
				w.wait = t.wait
			}
		}
		for _, w := range diff {
			if w.d == nil {
				var err error
				if w.d, err = diffeval.MergeDeltas(w.parts); err != nil {
					maintSE.end(obs.KV{K: "err", V: true})
					return nil, err
				}
			}
		}
		if o := e.o.Load(); o != nil && len(tasks) > 1 {
			if wall := time.Since(submit); wall > 0 {
				var sum time.Duration
				for _, t := range tasks {
					sum += t.dur
				}
				o.speedup.Observe(sum.Seconds() / wall.Seconds())
			}
		}
	}

	// Recompute shadows materialize from the overlay post-state (the
	// serial pipeline applied the bases first for the same effect).
	for _, w := range recs {
		w.insts = overlayInst(w.st.bound)
	}
	e.forEachParallel(len(recs), func(i int) {
		w := recs[i]
		var sp obs.Span
		if ct.tracing() {
			sp = ct.task(maintSE.ctx, "maint.recompute", obs.KV{K: "view", V: w.st.name})
		}
		start := time.Now()
		w.vc, w.err = eval.Materialize(w.st.bound, w.insts, w.st.cfg.EvalOpt)
		w.computeDur = time.Since(start)
		if sp != nil {
			sp.End(obs.KV{K: "err", V: w.err != nil})
		}
	})
	for _, w := range recs {
		if w.computeDur > maxTask {
			maxTask = w.computeDur
		}
	}
	if maintSE.span != nil {
		maintSE.end(obs.KV{K: "differential", V: len(diff)}, obs.KV{K: "recompute", V: len(recs)})
	} else {
		maintSE.end()
	}
	ct.note(stageSlowestTask, maxTask)

	// Validate every delta before anything becomes visible. Per-tx
	// delta chains fold onto a private clone, each step re-validated by
	// diffeval.Apply; the clone becomes the view's next state.
	se = ct.begin(stageValidate)
	for _, w := range work3 {
		if w.err == nil && w.d != nil {
			w.err = diffeval.Validate(w.st.data, w.d)
		}
		if w.err == nil && w.perTx {
			w.cow = w.st.data.Clone()
			for _, r := range live {
				if d := r.viewDeltas[w.st.name]; d != nil {
					if err := diffeval.Apply(w.cow, d); err != nil {
						w.err = err
						break
					}
				}
			}
		}
		if w.err != nil {
			se.end(obs.KV{K: "err", V: true})
			return nil, w.err
		}
	}
	se.end()

	// Phase 4: durably log the whole group with one fsync, before any
	// of it becomes visible. A log failure aborts with the engine
	// untouched (AppendBatch truncates a torn batch back out).
	logged := false
	if logBatch != nil {
		payloads := make([][]byte, 0, len(live))
		for _, r := range live {
			if r.payload != nil {
				payloads = append(payloads, r.payload)
			}
		}
		if len(payloads) > 0 {
			logged = true
			se = ct.begin(stageFsync, obs.KV{K: "payloads", V: len(payloads)})
			err := logBatch(payloads)
			se.end(obs.KV{K: "err", V: err != nil})
			if err != nil {
				return nil, err
			}
		}
	}
	if !logged {
		ct.note(stageFsync, 0) // in-memory batch: keep stage counts aligned
	}

	// Phase 5: install. Nothing below can fail.
	se = ct.begin(stageInstall)
	for rel, r := range work {
		e.base[rel] = r
		e.baseShared[rel] = false
	}
	for _, u := range composed {
		e.applyToIndexes(u)
		e.markCheckpointDirtyLocked(u)
	}
	var ns []notification
	wentStale := false
	for _, w := range work3 {
		name := w.st.name
		w.st.stats.Transactions += w.touchCount
		w.st.snapDirty = true
		if w.deferred {
			if w.st.stats.PendingTx == 0 && w.touchCount > 0 {
				// 0→nonzero backlog: the view just went stale; its
				// staleness clock starts at this commit.
				w.st.pendingSince = e.now()
				wentStale = true
			}
			e.installPending(w.st, w.pend)
			w.st.stats.PendingTx += w.touchCount
			if w.st.vo != nil {
				w.st.vo.pending.Set(float64(w.st.stats.PendingTx))
			}
			continue
		}
		if w.noop {
			continue
		}
		t0 := time.Now()
		switch {
		case w.perTx:
			w.st.data = w.cow
			w.st.dataShared = false
			for _, r := range live {
				if d := r.viewDeltas[name]; d != nil {
					w.st.noteDelta(d)
				}
			}
		case w.d != nil:
			if w.st.dataShared {
				if w.cow == nil {
					w.cow = w.st.data.Clone()
				}
				w.st.data = w.cow
				w.st.dataShared = false
			}
			if err := diffeval.Apply(w.st.data, w.d); err != nil {
				// Unreachable: validated above and Apply re-validates
				// before mutating, so the view is intact.
				return nil, fmt.Errorf("db: internal: staged delta failed to install on %q: %w", name, err)
			}
			w.st.noteDelta(w.d)
			if w.shardTasks > 0 || w.shardsPruned > 0 {
				w.st.stats.ShardTasks += w.shardTasks
				w.st.stats.ShardsPruned += w.shardsPruned
				if w.st.vo != nil {
					w.st.vo.shardTasks.Add(int64(w.shardTasks))
					w.st.vo.shardPruned.Add(int64(w.shardsPruned))
				}
			}
			ns = append(ns, w.st.notifications(name, w.d.Inserts, w.d.Deletes)...)
		default:
			if len(w.st.subscribers) > 0 {
				ins, del := countedDiff(w.st.data, w.vc)
				ns = append(ns, w.st.notifications(name, ins, del)...)
			}
			w.st.data = w.vc
			w.st.dataShared = false
			w.st.stats.Recomputes++
		}
		w.st.lastMaint = maintRecord{
			At:           time.Now(),
			Decision:     w.decision,
			Wait:         w.wait,
			Compute:      w.computeDur,
			Install:      time.Since(t0),
			ShardTasks:   w.shardTasks,
			ShardsPruned: w.shardsPruned,
			Trace:        ct.traceID(),
		}
		if w.d != nil {
			w.st.lastMaint.Inserts = w.d.Stats.DeltaInserts
			w.st.lastMaint.Deletes = w.d.Stats.DeltaDeletes
		} else if w.perTx {
			for _, r := range live {
				if d := r.viewDeltas[name]; d != nil {
					w.st.lastMaint.Inserts += d.Stats.DeltaInserts
					w.st.lastMaint.Deletes += d.Stats.DeltaDeletes
				}
			}
		}
		if w.st.vo != nil {
			w.st.vo.refreshHist(w.decision).ObserveDuration(w.computeDur + time.Since(t0))
			if w.d != nil {
				w.st.vo.computeWait.ObserveDuration(w.wait)
			}
		}
	}
	// Per-tx subscriber notifications, transaction-major: subscribers
	// observe the same per-transaction alert stream the serial path
	// produces (batch mode only; a batch of one rode the w.d path).
	if batchMode {
		for _, r := range live {
			for _, w := range work3 {
				if !w.perTx {
					continue
				}
				if d := r.viewDeltas[w.st.name]; d != nil {
					ns = append(ns, w.st.notifications(w.st.name, d.Inserts, d.Deletes)...)
				}
			}
		}
	}

	// Per-request view counters follow each transaction's own touch
	// set, exactly as if it had committed alone.
	for _, r := range live {
		for _, w := range work3 {
			if !e.viewTouched(w.st, r.touched) {
				continue
			}
			if w.deferred {
				r.res.ViewsDeferred++
			} else {
				r.res.ViewsRefreshed++
			}
		}
	}
	if se.span != nil {
		se.end(obs.KV{K: "views", V: len(work3)})
	} else {
		se.end()
	}

	se = ct.begin(stagePublish)
	if len(work) > 0 || len(work3) > 0 {
		e.publishLocked()
	}
	se.end()
	if wentStale {
		// A deferred view just started a backlog: wake the scheduler so
		// a MaxStaleness SLO deadline is planned against it immediately.
		e.sched.poke()
	}
	return ns, nil
}

// perTxView reports whether a view gets per-transaction differential
// deltas inside a batch: it has subscribers, refreshes immediately,
// and is not pinned to recompute (a pinned-recompute subscribed view
// notifies once per group via the recompute diff — documented in
// ARCHITECTURE.md). Adaptive views commit to differential here so the
// alert stream stays per-transaction.
func perTxView(st *viewState) bool {
	return len(st.subscribers) > 0 && st.cfg.Mode == Immediate && st.cfg.Policy != PolicyRecompute
}

// perTxViewDeltas computes r's differential deltas for every
// subscribed view it touches, against the overlay state BEFORE r
// applies. Indexes reflect the pre-group state, so the provider blanks
// them for relations already dirtied by earlier group members.
func (e *Engine) perTxViewDeltas(r *groupReq, updates []delta.Update,
	overlayInst func(*expr.Bound) []*relation.Relation, work map[string]*relation.Relation) error {
	for _, name := range e.viewOrder {
		st := e.views[name]
		if !perTxView(st) || !e.viewTouched(st, r.touched) {
			continue
		}
		dirty := make(map[string]bool, len(work))
		for rel := range work {
			dirty[rel] = true
		}
		d, err := st.maint.ComputeDeltaWith(overlayInst(st.bound), updates, batchProvider{e: e, dirty: dirty})
		if err != nil {
			return err
		}
		if r.viewDeltas == nil {
			r.viewDeltas = make(map[string]*diffeval.ViewDelta)
		}
		r.viewDeltas[name] = d
	}
	return nil
}

// batchProvider serves persistent indexes only for relations still at
// their pre-group state; relations already modified by earlier group
// members return nil (diffeval falls back to scans for them).
type batchProvider struct {
	e     *Engine
	dirty map[string]bool
}

func (p batchProvider) Index(rel string, pos int) *relation.Index {
	if p.dirty[rel] {
		return nil
	}
	return provider{e: p.e}.Index(rel, pos)
}
