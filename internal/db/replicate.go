package db

import (
	"fmt"

	"mview/internal/delta"
)

// ExecuteReplicated applies a batch of leader-committed transactions
// through the commit pipeline: one §6-composed maintenance pass and one
// COW snapshot publish per batch, mirroring the cost profile of the
// leader's group commit. It bypasses the group-commit leader (the batch
// boundary is fixed by the wire, not by a commit window) and logs
// nothing — a follower keeps no WAL of its own and re-bootstraps from
// the leader after a restart.
//
// The transactions already committed on the leader, so ANY failure —
// shared-phase or per-transaction — means this replica has diverged
// from the leader's state. ExecuteReplicated reports it as an error and
// makes no attempt to salvage the batch; the caller must discard the
// engine and re-sync from a checkpoint. (A per-tx failure is detected
// after the surviving members installed, which is fine: the engine is
// about to be thrown away.)
//
// Notifications still fire, so watch subscribers on a follower receive
// the same per-transaction alerts as on the leader.
func (e *Engine) ExecuteReplicated(txs []*delta.Tx) error {
	if len(txs) == 0 {
		return nil
	}
	reqs := make([]*groupReq, len(txs))
	for i, tx := range txs {
		reqs[i] = &groupReq{tx: tx}
	}
	ct := e.newGroupTrace(len(reqs), 0, 0)
	ns, err := e.executeBatchLocked(reqs, nil, ct)
	ct.close(err)
	if err != nil {
		return fmt.Errorf("db: replicated batch failed (replica diverged): %w", err)
	}
	for _, r := range reqs {
		if r.err != nil {
			return fmt.Errorf("db: replicated tx rejected (replica diverged): %w", r.err)
		}
	}
	fire(ns)
	return nil
}
