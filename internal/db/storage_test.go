package db

import (
	"bytes"
	"strings"
	"testing"

	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/tuple"
)

func populatedEngine(t *testing.T) *Engine {
	t.Helper()
	e := newEngine(t)
	var tx delta.Tx
	for i := int64(0); i < 50; i++ {
		tx.Insert("R", tuple.New(i, i%7))
		tx.Insert("S", tuple.New(i%7, i*2))
	}
	exec(t, e, &tx)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{
		Maint: diffeval.Options{Filter: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "snap"), ViewConfig{
		Mode: Deferred, Policy: PolicyAdaptive, AdaptiveThreshold: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := populatedEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Base relations restored exactly.
	for _, name := range []string{"R", "S"} {
		a, _ := e.Relation(name)
		b, _ := got.Relation(name)
		if !a.Equal(b) {
			t.Errorf("relation %s diverged", name)
		}
	}
	// Views re-materialized to the same contents.
	for _, name := range []string{"v", "snap"} {
		a, _ := e.View(name)
		b, _ := got.View(name)
		if !a.Equal(b) {
			t.Errorf("view %s diverged:\n%v\n%v", name, a, b)
		}
	}
	// The restored engine keeps maintaining correctly.
	var tx delta.Tx
	tx.Insert("R", tuple.New(1000, 3)).Insert("S", tuple.New(3, 999))
	if _, err := got.Execute(&tx); err != nil {
		t.Fatal(err)
	}
	v, _ := got.View("v")
	if !v.Has(tuple.New(1000, 3, 999)) {
		t.Error("restored view not maintained")
	}
	// Config survived: the snap view is still deferred.
	st, _ := got.ViewStats("snap")
	if st.PendingTx != 1 {
		t.Errorf("snap should have deferred the tx: %+v", st)
	}
}

func TestSaveLoadEmptyEngine(t *testing.T) {
	e := New()
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Relations()) != 0 || len(got.Views()) != 0 {
		t.Error("empty engine did not round-trip empty")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"hello world",
		"\x00\x00\x00\x08NOTMAGIC",
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load(%q) should fail", in)
		}
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	e := populatedEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate at several points; every prefix must fail cleanly, not
	// panic.
	for _, n := range []int{1, 10, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncated at %d/%d bytes: want error", n, len(full))
		}
	}
}

func TestLoadRejectsHugeLengths(t *testing.T) {
	// A header claiming a gigantic string must not allocate blindly.
	var buf bytes.Buffer
	e := New()
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the relation-count field (right after the magic string).
	off := 4 + len(storageMagic)
	b[off] = 0xFF
	b[off+1] = 0xFF
	b[off+2] = 0xFF
	b[off+3] = 0xFF
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("huge relation count must fail")
	}
}

func TestSaveDeterministic(t *testing.T) {
	e := populatedEngine(t)
	var a, b bytes.Buffer
	if err := e.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Save is not deterministic")
	}
}
