package db

// Incremental checkpoint support: per-shard dirty tracking and the
// segmented snapshot format.
//
// The durable layer checkpoints by writing one small catalog segment
// (scheme + view definitions) plus one data segment per dirty,
// non-empty shard of each base relation, then swapping a manifest that
// lists them. Dirty tracking extends the snapshot COW discipline
// (snapshot.go) to per-shard granularity: every commit marks exactly
// the shards its net delta touched, so a checkpoint rewrites only
// those and re-references the previous checkpoint's segments for the
// rest. The bitmaps are guarded by Engine.mu like the rest of the
// commit bookkeeping.
//
// Loading mirrors saving: BeginSegmentedLoad restores the catalog
// (relations created empty, view definitions parsed but deferred),
// LoadShardSegment streams tuples back in — shard assignment is
// recomputed, so the configured shard count may differ from the one
// the segments were written under — and CompleteSegmentedLoad
// materializes the views from the restored bases.

import (
	"bufio"
	"fmt"
	"io"

	"mview/internal/delta"
	"mview/internal/expr"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

// Segment format magics; the trailing digit is the version. Catalog
// version 2 appended the refresh when-policy to each view definition
// (see writeViewDef); version-1 catalogs still load.
const (
	catalogMagic   = "MVIEWCAT2"
	catalogMagicV1 = "MVIEWCAT1"
	segmentMagic   = "MVIEWSEG1"
)

// initCheckpointDirtyLocked sizes a fresh all-dirty bitmap for a newly
// created relation. Callers hold e.mu.
func (e *Engine) initCheckpointDirtyLocked(name string) {
	r := e.base[name]
	bits := make([]bool, r.Shards())
	for i := range bits {
		bits[i] = true
	}
	e.ckptDirty[name] = bits
}

// markCheckpointDirtyLocked records which shards a committed net delta
// touched. Callers hold e.mu; the update has already been installed,
// so the live relation's shard layout routes the tuples.
func (e *Engine) markCheckpointDirtyLocked(u delta.Update) {
	bits := e.ckptDirty[u.Rel]
	if bits == nil {
		return // relation unknown (cannot happen after validation)
	}
	r := e.base[u.Rel]
	n := r.Shards()
	if n <= 1 {
		if !u.IsEmpty() {
			bits[0] = true
		}
		return
	}
	key := r.ShardKey()
	mark := func(t tuple.Tuple) { bits[relation.ShardOf(t[key], n)] = true }
	if u.Inserts != nil {
		u.Inserts.Each(mark)
	}
	if u.Deletes != nil {
		u.Deletes.Each(mark)
	}
}

// TakeCheckpointDirty atomically snapshots the per-relation dirty-shard
// bitmaps and resets them all clean, marking the start of a checkpoint
// interval. The caller must hold the commit fence while calling (so
// the returned bitmaps correspond exactly to the WAL position it
// captures); if the checkpoint later fails, RestoreCheckpointDirty
// merges the taken bits back so the next checkpoint rewrites them.
func (e *Engine) TakeCheckpointDirty() map[string][]bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	taken := e.ckptDirty
	e.ckptDirty = make(map[string][]bool, len(taken))
	for name, bits := range taken {
		e.ckptDirty[name] = make([]bool, len(bits))
	}
	return taken
}

// RestoreCheckpointDirty ORs previously taken dirty bits back into the
// live bitmaps after a failed checkpoint, so nothing the failed run
// was responsible for persisting is ever skipped by the next one.
func (e *Engine) RestoreCheckpointDirty(taken map[string][]bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, bits := range taken {
		live := e.ckptDirty[name]
		if live == nil || len(live) != len(bits) {
			continue // relation re-created meanwhile; its bitmap is already all-dirty
		}
		for i, d := range bits {
			if d {
				live[i] = true
			}
		}
	}
}

// SetCheckpointClean marks every shard of rel clean — the durable
// layer calls it after a segmented load whose segments exactly match
// the relation's current shard layout, so the first checkpoint after
// recovery stays incremental.
func (e *Engine) SetCheckpointClean(rel string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if bits := e.ckptDirty[rel]; bits != nil {
		for i := range bits {
			bits[i] = false
		}
	}
}

// MarkAllCheckpointDirty forces the next checkpoint to rewrite every
// shard of every relation (after a legacy-layout load or a reshard).
func (e *Engine) MarkAllCheckpointDirty() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, bits := range e.ckptDirty {
		for i := range bits {
			bits[i] = true
		}
	}
}

// Relations lists the snapshot's base relation names in scheme order.
func (s *Snapshot) Relations() []string { return s.scheme.Names() }

// RelationShards reports the shard count of a base relation as frozen
// in the snapshot (0 for an unknown relation).
func (s *Snapshot) RelationShards(rel string) int {
	r, ok := s.base[rel]
	if !ok {
		return 0
	}
	return r.Shards()
}

// ShardLen reports how many tuples one shard of a base relation holds,
// so the checkpoint can skip writing segments for empty shards.
func (s *Snapshot) ShardLen(rel string, shard int) int {
	r, ok := s.base[rel]
	if !ok {
		return 0
	}
	return r.ShardLen(shard)
}

// WriteCatalog writes the snapshot's catalog segment: the database
// scheme (relation names and attributes, no tuples) and every view
// definition with its configuration. Together with the data segments
// it replaces the monolithic Save stream for checkpoints.
func (s *Snapshot) WriteCatalog(out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.str(catalogMagic)
	names := s.scheme.Names()
	w.u32(uint32(len(names)))
	for _, name := range names {
		rs, _ := s.scheme.Rel(name)
		w.str(name)
		attrs := rs.Scheme.Attributes()
		w.u32(uint32(len(attrs)))
		for _, a := range attrs {
			w.str(string(a))
		}
	}
	w.u32(uint32(len(s.viewOrder)))
	for _, name := range s.viewOrder {
		sv := s.views[name]
		writeViewDef(w, name, sv.bound, sv.cfg)
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// WriteShard writes one data segment: every tuple in one shard of one
// base relation. Segments are self-describing (relation name, written
// shard index and arity) so recovery can sanity-check the manifest.
func (s *Snapshot) WriteShard(out io.Writer, rel string, shard int) error {
	r, ok := s.base[rel]
	if !ok {
		return fmt.Errorf("db: unknown relation %q", rel)
	}
	if shard < 0 || shard >= r.Shards() {
		return fmt.Errorf("db: relation %q has no shard %d", rel, shard)
	}
	w := &writer{w: bufio.NewWriter(out)}
	w.str(segmentMagic)
	w.str(rel)
	w.u32(uint32(shard))
	arity := r.Scheme().Arity()
	w.u32(uint32(arity))
	w.u32(uint32(r.ShardLen(shard)))
	r.EachShard(shard, func(t tuple.Tuple) {
		for _, v := range t {
			w.i64(v)
		}
	})
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// PendingViews carries the view definitions parsed by
// BeginSegmentedLoad until CompleteSegmentedLoad materializes them
// (views must be created after the base tuples are back).
type PendingViews struct {
	defs []pendingViewDef
}

type pendingViewDef struct {
	view expr.View
	cfg  ViewConfig
}

// BeginSegmentedLoad reads a catalog segment and returns a fresh
// engine with every relation created (empty) plus the parsed view
// definitions. Stream the data segments through LoadShardSegment, then
// call CompleteSegmentedLoad.
func BeginSegmentedLoad(in io.Reader, opts ...Option) (*Engine, *PendingViews, error) {
	r := &reader{r: bufio.NewReader(in)}
	switch magic := r.str(); {
	case r.err != nil:
		return nil, nil, fmt.Errorf("db: reading catalog header: %w", r.err)
	case magic == catalogMagic:
		r.ver = 2
	case magic == catalogMagicV1:
		r.ver = 1
	default:
		return nil, nil, fmt.Errorf("db: not an mview catalog segment (magic %q)", magic)
	}
	e := New(opts...)
	nRel := r.u32()
	if nRel > maxStr {
		return nil, nil, fmt.Errorf("db: corrupt catalog: %d relations", nRel)
	}
	for i := uint32(0); i < nRel; i++ {
		name := r.str()
		nAttr := r.u32()
		if r.err != nil || nAttr > maxStr {
			return nil, nil, fmt.Errorf("db: corrupt catalog: relation %q", name)
		}
		attrs := make([]schema.Attribute, nAttr)
		for j := range attrs {
			attrs[j] = schema.Attribute(r.str())
		}
		if r.err != nil {
			return nil, nil, r.err
		}
		if err := e.CreateRelation(name, attrs...); err != nil {
			return nil, nil, err
		}
	}
	nView := r.u32()
	if r.err != nil || nView > maxStr {
		return nil, nil, fmt.Errorf("db: corrupt catalog: %d views", nView)
	}
	pending := &PendingViews{defs: make([]pendingViewDef, 0, nView)}
	for i := uint32(0); i < nView; i++ {
		v, cfg, err := readViewDef(r)
		if err != nil {
			return nil, nil, err
		}
		pending.defs = append(pending.defs, pendingViewDef{view: v, cfg: cfg})
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return e, pending, nil
}

// LoadShardSegment streams one data segment's tuples back into the
// named relation. Shard routing is recomputed on insert, so segments
// written under any shard count load correctly under any other.
func (e *Engine) LoadShardSegment(in io.Reader) error {
	r := &reader{r: bufio.NewReader(in)}
	if magic := r.str(); r.err != nil || magic != segmentMagic {
		if r.err != nil {
			return fmt.Errorf("db: reading segment header: %w", r.err)
		}
		return fmt.Errorf("db: not an mview data segment (magic %q)", magic)
	}
	rel := r.str()
	r.u32() // written shard index: informational
	arity := r.u32()
	nTup := r.u32()
	if r.err != nil {
		return fmt.Errorf("db: corrupt segment header for %q: %w", rel, r.err)
	}
	e.mu.Lock()
	inst, ok := e.base[rel]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("db: segment references unknown relation %q", rel)
	}
	if int(arity) != inst.Scheme().Arity() {
		return fmt.Errorf("db: segment arity %d does not match relation %q (%d)", arity, rel, inst.Scheme().Arity())
	}
	for j := uint32(0); j < nTup && r.err == nil; j++ {
		t := make(tuple.Tuple, arity)
		for k := range t {
			t[k] = r.i64()
		}
		if r.err != nil {
			break
		}
		if err := inst.Insert(t); err != nil {
			return err
		}
	}
	if r.err != nil {
		return fmt.Errorf("db: corrupt segment for %q: %w", rel, r.err)
	}
	return nil
}

// CompleteSegmentedLoad materializes the deferred views against the
// restored base relations and publishes the final snapshot. The engine
// is ready for commits afterwards.
func (e *Engine) CompleteSegmentedLoad(pending *PendingViews) error {
	for _, d := range pending.defs {
		if err := e.CreateView(d.view, d.cfg); err != nil {
			return fmt.Errorf("db: restoring view %q: %w", d.view.Name, err)
		}
	}
	e.mu.Lock()
	e.publishLocked()
	e.mu.Unlock()
	return nil
}
