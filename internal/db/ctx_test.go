package db

import (
	"context"
	"errors"
	"testing"
	"time"

	"mview/internal/delta"
	"mview/internal/tuple"
)

// TestExecuteCtxPreCancelled pins the entry gate on both commit paths:
// a dead context commits nothing.
func TestExecuteCtxPreCancelled(t *testing.T) {
	for _, grouped := range []bool{false, true} {
		e := newEngine(t)
		if grouped {
			e.EnableGroupCommit(4, 0, nil)
			defer e.DisableGroupCommit()
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var tx delta.Tx
		tx.Insert("R", tuple.New(1, 2))
		if _, err := e.ExecuteCtx(ctx, &tx); !errors.Is(err, context.Canceled) {
			t.Errorf("grouped=%v: err = %v, want context.Canceled", grouped, err)
		}
		if r, _ := e.Relation("R"); r.Len() != 0 {
			t.Errorf("grouped=%v: cancelled transaction committed: %v", grouped, r)
		}
	}
}

// TestExecuteCtxQueuedCancellation deterministically cancels a
// transaction while it waits in the group queue: the leader is wedged
// on the engine lock processing an earlier batch, so the second
// submission is still queued when its context dies. It must withdraw
// with ctx.Err() and leave no trace; the wedged transaction commits
// normally once the lock is released.
func TestExecuteCtxQueuedCancellation(t *testing.T) {
	e := newEngine(t)
	e.EnableGroupCommit(8, 0, nil)
	defer e.DisableGroupCommit()
	g := e.group.Load()

	// Wedge the leader: it pops transaction A immediately (no window)
	// and then blocks acquiring the engine lock we hold.
	e.mu.Lock()
	aDone := make(chan error, 1)
	go func() {
		var tx delta.Tx
		tx.Insert("R", tuple.New(1, 1))
		_, err := e.Execute(&tx)
		aDone <- err
	}()
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		// lastSize flips to 1 when the leader pops its first batch: A is
		// claimed and the leader is now wedged on the engine lock.
		// Checking the queue alone would race with A's enqueue.
		return g.lastSize == 1 && len(g.queue) == 0
	})

	// B enqueues behind the wedged batch and then dies.
	ctx, cancel := context.WithCancel(context.Background())
	bDone := make(chan error, 1)
	go func() {
		var tx delta.Tx
		tx.Insert("R", tuple.New(2, 2))
		_, err := e.ExecuteCtx(ctx, &tx)
		bDone <- err
	}()
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.queue) == 1
	})
	cancel()
	if err := <-bDone; !errors.Is(err, context.Canceled) {
		t.Errorf("queued cancellation: err = %v, want context.Canceled", err)
	}
	g.mu.Lock()
	if len(g.queue) != 0 {
		t.Errorf("cancelled request left in queue (len %d)", len(g.queue))
	}
	g.mu.Unlock()

	e.mu.Unlock()
	if err := <-aDone; err != nil {
		t.Fatalf("wedged transaction failed: %v", err)
	}
	r, _ := e.Relation("R")
	if !r.Has(tuple.New(1, 1)) || r.Has(tuple.New(2, 2)) {
		t.Errorf("final state wrong: %v (want A committed, B absent)", r)
	}
}

// TestExecuteCtxClaimedRunsToVerdict pins the other side of the race:
// a context that dies after a leader claimed the request must still
// return the commit's verdict, not ctx.Err().
func TestExecuteCtxClaimedRunsToVerdict(t *testing.T) {
	e := newEngine(t)
	e.EnableGroupCommit(8, 0, nil)
	defer e.DisableGroupCommit()
	g := e.group.Load()

	e.mu.Lock()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		var tx delta.Tx
		tx.Insert("R", tuple.New(3, 3))
		_, err := e.ExecuteCtx(ctx, &tx)
		done <- err
	}()
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.lastSize == 1 && len(g.queue) == 0 // claimed by the leader
	})
	cancel()
	e.mu.Unlock()
	if err := <-done; err != nil {
		t.Errorf("claimed transaction returned %v, want committed", err)
	}
	r, _ := e.Relation("R")
	if !r.Has(tuple.New(3, 3)) {
		t.Errorf("claimed transaction did not commit: %v", r)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
