package db

// Durable snapshots of the engine: a versioned, deterministic binary
// format holding the database scheme, every base relation's contents,
// and every view definition with its configuration. Loading rebuilds
// the engine and re-materializes the views from the restored base
// relations (so a loaded engine is always internally consistent;
// deferred views come back fresh).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"mview/internal/diffeval"
	"mview/internal/expr"
	"mview/internal/pred"
	"mview/internal/satgraph"
	"mview/internal/schema"
	"mview/internal/tuple"
)

func diffevalStrategy(v uint8) diffeval.Strategy { return diffeval.Strategy(v) }

func satMethod(v uint8) satgraph.Method { return satgraph.Method(v) }

// storageMagic identifies the format; the trailing digit is the
// version. Version 2 appended the refresh when-policy (RefreshSpec)
// to each view definition; version-1 snapshots still load, with the
// policy derived from the legacy mode byte.
const (
	storageMagic   = "MVIEWDB2"
	storageMagicV1 = "MVIEWDB1"
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	if w.err == nil {
		_, w.err = w.w.Write(b[:])
	}
}

func (w *writer) i64(v int64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	if w.err == nil {
		_, w.err = w.w.Write(b[:])
	}
}

func (w *writer) f64(v float64) { w.i64(int64(math.Float64bits(v))) }

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
	// ver is the format version of the stream being read, set from the
	// magic by Load/BeginSegmentedLoad; readViewDef uses it to skip
	// fields the writer's format predates.
	ver int
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.fail(err)
	return b
}

func (r *reader) u32() uint32 {
	var b [4]byte
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.fail(err)
		return 0
	}
	return binary.BigEndian.Uint32(b[:])
}

func (r *reader) i64() int64 {
	var b [8]byte
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.fail(err)
		return 0
	}
	return int64(binary.BigEndian.Uint64(b[:]))
}

func (r *reader) f64() float64 { return math.Float64frombits(uint64(r.i64())) }

// maxStr bounds string lengths so corrupt input cannot trigger huge
// allocations.
const maxStr = 1 << 20

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxStr {
		r.fail(fmt.Errorf("db: corrupt snapshot: string length %d", n))
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail(err)
		return ""
	}
	return string(b)
}

func (r *reader) bool() bool { return r.u8() != 0 }

// Save writes a snapshot of the engine: scheme, base relation
// contents, and view definitions with their configurations. Deferred
// views are persisted by definition only; on load they re-materialize
// fresh.
func (e *Engine) Save(out io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()

	w := &writer{w: bufio.NewWriter(out)}
	w.str(storageMagic)

	names := e.scheme.Names()
	w.u32(uint32(len(names)))
	for _, name := range names {
		rs, _ := e.scheme.Rel(name)
		w.str(name)
		attrs := rs.Scheme.Attributes()
		w.u32(uint32(len(attrs)))
		for _, a := range attrs {
			w.str(string(a))
		}
		inst := e.base[name]
		w.u32(uint32(inst.Len()))
		for _, t := range inst.Tuples() {
			for _, v := range t {
				w.i64(v)
			}
		}
	}

	w.u32(uint32(len(e.viewOrder)))
	for _, name := range e.viewOrder {
		st := e.views[name]
		writeViewDef(w, name, st.bound, st.cfg)
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// writeViewDef encodes one view definition (operands, predicate,
// projection, configuration) — the unit shared by the monolithic Save
// stream and the checkpoint catalog segment.
func writeViewDef(w *writer, name string, b *expr.Bound, cfg ViewConfig) {
	w.str(name)
	w.u32(uint32(len(b.Operands)))
	for _, op := range b.Operands {
		w.str(op.Rel)
		w.str(op.Alias)
	}
	writeDNF(w, b.Where)
	w.u32(uint32(len(b.Project)))
	for _, a := range b.Project {
		w.str(string(a))
	}
	w.u8(uint8(cfg.Mode))
	w.u8(uint8(cfg.Policy))
	w.f64(cfg.AdaptiveThreshold)
	w.u8(uint8(cfg.Maint.Strategy))
	w.bool(cfg.Maint.Filter)
	w.u8(uint8(cfg.Maint.FilterOptions.Method))
	w.i64(int64(cfg.Maint.FilterOptions.NELimit))
	w.bool(cfg.EvalOpt.Greedy)
	// Version 2: the refresh when-policy. Without it a checkpoint or
	// reopen would silently demote every scheduled view to the legacy
	// mode byte.
	w.u8(uint8(cfg.When.Kind))
	w.i64(int64(cfg.When.Interval))
	w.i64(int64(cfg.When.Bound))
}

// readViewDef decodes one view definition written by writeViewDef.
func readViewDef(r *reader) (expr.View, ViewConfig, error) {
	name := r.str()
	nOp := r.u32()
	if r.err != nil || nOp > maxStr {
		return expr.View{}, ViewConfig{}, fmt.Errorf("db: corrupt snapshot: view %q", name)
	}
	v := expr.View{Name: name}
	for j := uint32(0); j < nOp; j++ {
		rel := r.str()
		alias := r.str()
		v.Operands = append(v.Operands, expr.Operand{Rel: rel, Alias: alias})
	}
	v.Where = readDNF(r)
	nProj := r.u32()
	if r.err != nil || nProj > maxStr {
		return expr.View{}, ViewConfig{}, fmt.Errorf("db: corrupt snapshot: view %q projection", name)
	}
	for j := uint32(0); j < nProj; j++ {
		v.Project = append(v.Project, schema.Attribute(r.str()))
	}
	var cfg ViewConfig
	cfg.Mode = RefreshMode(r.u8())
	cfg.Policy = Policy(r.u8())
	cfg.AdaptiveThreshold = r.f64()
	cfg.Maint.Strategy = diffevalStrategy(r.u8())
	cfg.Maint.Filter = r.bool()
	cfg.Maint.FilterOptions.Method = satMethod(r.u8())
	cfg.Maint.FilterOptions.NELimit = int(r.i64())
	cfg.EvalOpt.Greedy = r.bool()
	if r.ver >= 2 {
		cfg.When.Kind = RefreshKind(r.u8())
		cfg.When.Interval = time.Duration(r.i64())
		cfg.When.Bound = time.Duration(r.i64())
	}
	// Version 1 streams carry no when-policy; CreateView's
	// normalizeWhen maps a deferred mode byte to RefreshOnDemand.
	if r.err != nil {
		return expr.View{}, ViewConfig{}, fmt.Errorf("db: corrupt snapshot: view %q config: %w", name, r.err)
	}
	return v, cfg, nil
}

func writeDNF(w *writer, d pred.DNF) {
	w.u32(uint32(len(d.Conjuncts)))
	for _, c := range d.Conjuncts {
		w.u32(uint32(len(c.Atoms)))
		for _, a := range c.Atoms {
			w.str(string(a.Left))
			w.u8(uint8(a.Op))
			w.bool(a.HasRightVar())
			if a.HasRightVar() {
				w.str(string(a.Right))
			}
			w.i64(a.C)
		}
	}
}

func readDNF(r *reader) pred.DNF {
	nc := r.u32()
	if r.err != nil || nc > maxStr {
		r.fail(fmt.Errorf("db: corrupt snapshot: %d conjuncts", nc))
		return pred.DNF{}
	}
	d := pred.DNF{Conjuncts: make([]pred.Conjunction, 0, nc)}
	for i := uint32(0); i < nc && r.err == nil; i++ {
		na := r.u32()
		if na > maxStr {
			r.fail(fmt.Errorf("db: corrupt snapshot: %d atoms", na))
			return pred.DNF{}
		}
		atoms := make([]pred.Atom, 0, na)
		for j := uint32(0); j < na && r.err == nil; j++ {
			left := pred.Var(r.str())
			op := pred.Op(r.u8())
			hasRight := r.bool()
			var right pred.Var
			if hasRight {
				right = pred.Var(r.str())
			}
			c := r.i64()
			if hasRight {
				atoms = append(atoms, pred.VarVar(left, op, right, c))
			} else {
				atoms = append(atoms, pred.VarConst(left, op, c))
			}
		}
		d.Conjuncts = append(d.Conjuncts, pred.Conjunction{Atoms: atoms})
	}
	return d
}

// Load reads a snapshot produced by Save and returns a fresh engine
// with all relations restored and all views re-materialized. The
// snapshot format is shard-independent (Save writes plain tuple sets),
// so the options — notably WithShards — configure the fresh engine and
// the restored relations re-shard to the configured count.
func Load(in io.Reader, opts ...Option) (*Engine, error) {
	r := &reader{r: bufio.NewReader(in)}
	switch magic := r.str(); {
	case r.err != nil:
		return nil, fmt.Errorf("db: reading snapshot header: %w", r.err)
	case magic == storageMagic:
		r.ver = 2
	case magic == storageMagicV1:
		r.ver = 1
	default:
		return nil, fmt.Errorf("db: not an mview snapshot (magic %q)", magic)
	}

	e := New(opts...)
	nRel := r.u32()
	if nRel > maxStr {
		return nil, fmt.Errorf("db: corrupt snapshot: %d relations", nRel)
	}
	for i := uint32(0); i < nRel; i++ {
		name := r.str()
		nAttr := r.u32()
		if r.err != nil || nAttr > maxStr {
			return nil, fmt.Errorf("db: corrupt snapshot: relation %q", name)
		}
		attrs := make([]schema.Attribute, nAttr)
		for j := range attrs {
			attrs[j] = schema.Attribute(r.str())
		}
		if r.err != nil {
			return nil, r.err
		}
		if err := e.CreateRelation(name, attrs...); err != nil {
			return nil, err
		}
		nTup := r.u32()
		inst := e.base[name]
		for j := uint32(0); j < nTup && r.err == nil; j++ {
			t := make(tuple.Tuple, nAttr)
			for k := range t {
				t[k] = r.i64()
			}
			if err := inst.Insert(t); err != nil {
				return nil, err
			}
		}
	}

	nView := r.u32()
	if nView > maxStr {
		return nil, fmt.Errorf("db: corrupt snapshot: %d views", nView)
	}
	for i := uint32(0); i < nView; i++ {
		v, cfg, err := readViewDef(r)
		if err != nil {
			return nil, err
		}
		if err := e.CreateView(v, cfg); err != nil {
			return nil, fmt.Errorf("db: restoring view %q: %w", v.Name, err)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	// The tuple loads above inserted directly into relations that the
	// interim snapshots (published by CreateRelation/CreateView)
	// already reference; no readers exist while Load owns the engine,
	// so republishing here is enough to freeze the final state.
	e.mu.Lock()
	e.publishLocked()
	e.mu.Unlock()
	return e, nil
}
