package db

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"mview/internal/delta"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/obs"
	"mview/internal/tuple"
)

// TestCommitAtomicOnInjectedFailure proves the all-or-nothing commit:
// when one view's staged delta fails validation, the bases, the
// indexes, every other view, and every deferred backlog are exactly as
// they were before Execute.
func TestCommitAtomicOnInjectedFailure(t *testing.T) {
	e := newEngine(t)
	for _, name := range []string{"v", "bad"} {
		if err := e.CreateView(joinViewDef(t, e, name), ViewConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CreateView(joinViewDef(t, e, "dfr"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	var seed delta.Tx
	seed.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 10)).
		Insert("R", tuple.New(3, 4)).Insert("S", tuple.New(4, 20))
	exec(t, e, &seed)
	if err := e.RefreshView("dfr"); err != nil {
		t.Fatal(err)
	}

	// Corrupt "bad" so the delta of a delete tx cannot fold: the view
	// no longer holds the derivation (1,2,10) the delta will remove.
	if err := e.views["bad"].data.Add(tuple.New(1, 2, 10), -1); err != nil {
		t.Fatal(err)
	}

	rBefore, _ := e.Relation("R")
	vBefore, _ := e.View("v")
	vStats, _ := e.ViewStats("v")

	var del delta.Tx
	del.Delete("R", tuple.New(1, 2))
	if _, err := e.Execute(&del); err == nil {
		t.Fatal("Execute with corrupted view succeeded, want validation error")
	} else if !strings.Contains(err.Error(), "derivations") {
		t.Errorf("Execute error = %v, want delta validation failure", err)
	}

	// Base relations rolled back.
	rAfter, _ := e.Relation("R")
	if !rAfter.Equal(rBefore) {
		t.Errorf("base R changed by failed commit: %v vs %v", rAfter, rBefore)
	}
	// The healthy immediate view is untouched, including its counters.
	vAfter, _ := e.View("v")
	if !vAfter.Equal(vBefore) {
		t.Errorf("view v changed by failed commit: %v vs %v", vAfter, vBefore)
	}
	if st, _ := e.ViewStats("v"); st != vStats {
		t.Errorf("view v stats changed by failed commit: %+v vs %+v", st, vStats)
	}
	// The deferred view queued nothing.
	if st, _ := e.ViewStats("dfr"); st.PendingTx != 0 {
		t.Errorf("deferred view queued %d pending tx during failed commit", st.PendingTx)
	}
	if n := len(e.views["dfr"].pending); n != 0 {
		t.Errorf("deferred backlog has %d staged relations after failed commit", n)
	}

	// Repairing the corruption makes the same transaction commit, and
	// the engine was left consistent enough for it to succeed cleanly.
	if err := e.views["bad"].data.Add(tuple.New(1, 2, 10), 1); err != nil {
		t.Fatal(err)
	}
	var retry delta.Tx
	retry.Delete("R", tuple.New(1, 2))
	exec(t, e, &retry)
	v, _ := e.View("v")
	if v.Has(tuple.New(1, 2, 10)) {
		t.Errorf("view v still holds deleted derivation: %v", v)
	}
	if st, _ := e.ViewStats("dfr"); st.PendingTx != 1 {
		t.Errorf("deferred view PendingTx = %d after successful commit, want 1", st.PendingTx)
	}
}

// TestChooseAdaptiveCountsSelfJoinOnce pins the adaptive cost model on
// a self-join at a threshold boundary: R appears twice in the view, so
// double-counting its delta AND its base size would turn an 8/40 = 0.2
// ratio into 16/60 ≈ 0.267 and wrongly flip a sub-threshold update to
// recompute.
func TestChooseAdaptiveCountsSelfJoinOnce(t *testing.T) {
	e := newEngine(t)
	var seed delta.Tx
	for i := 0; i < 20; i++ {
		seed.Insert("R", tuple.New(int64(i), int64(i)))
		seed.Insert("S", tuple.New(int64(i), int64(100+i)))
	}
	exec(t, e, &seed)
	sj, err := expr.NaturalJoin("sj", e.Scheme(), "R", "R", "S")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(sj, ViewConfig{Policy: PolicyAdaptive}); err != nil {
		t.Fatal(err)
	}

	// 8 inserts, |R| = |S| = 20: ratio 8/(20+20) = 0.2 < 0.25.
	var tx delta.Tx
	for i := 0; i < 8; i++ {
		tx.Insert("R", tuple.New(int64(1000+i), int64(1000+i)))
	}
	exec(t, e, &tx)
	st, _ := e.ViewStats("sj")
	if st.Refreshes != 1 || st.Recomputes != 0 {
		t.Errorf("sub-threshold self-join update: refreshes=%d recomputes=%d, want differential",
			st.Refreshes, st.Recomputes)
	}

	// 15 inserts, |R| = 28, |S| = 20: ratio 15/48 ≈ 0.31 > 0.25 — the
	// dedup must not stop the threshold from flipping when warranted.
	var tx2 delta.Tx
	for i := 0; i < 15; i++ {
		tx2.Insert("R", tuple.New(int64(2000+i), int64(2000+i)))
	}
	exec(t, e, &tx2)
	st, _ = e.ViewStats("sj")
	if st.Refreshes != 1 || st.Recomputes != 1 {
		t.Errorf("super-threshold self-join update: refreshes=%d recomputes=%d, want recompute",
			st.Refreshes, st.Recomputes)
	}
}

// TestRefreshPeriodicallySurvivesErrors pins the §6 periodic-refresh
// contract: refresh errors are reported through onErr and do NOT stop
// the ticker — after the fault clears, refreshes resume on their own.
func TestRefreshPeriodicallySurvivesErrors(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "snap"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 64)
	stop, err := e.RefreshPeriodically("snap", 2*time.Millisecond, func(err error) {
		select {
		case errc <- err:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Induce a persistent failure: the named view disappears.
	if err := e.DropView("snap"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for got := 0; got < 2; {
		select {
		case err := <-errc:
			if !strings.Contains(err.Error(), "unknown view") {
				t.Fatalf("onErr got %v, want unknown-view error", err)
			}
			got++
		case <-deadline:
			t.Fatal("ticker stopped reporting errors; loop died after first failure")
		}
	}

	// Clear the fault: recreate the view and give it a backlog. The
	// same ticker must pick it up without being restarted.
	if err := e.CreateView(joinViewDef(t, e, "snap"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 10))
	exec(t, e, &tx)
	for {
		v, err := e.View("snap")
		if err != nil {
			t.Fatal(err)
		}
		if v.Has(tuple.New(1, 2, 10)) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("ticker never refreshed the recreated view; snap = %v", v)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestParallelCommitMatchesSerialAcrossWorkers drives identical random
// transaction streams through a serial engine (1 worker) and a
// parallel one (4 workers) over 8 views with mixed modes and policies,
// then checks every view against the other engine AND against a full
// recompute oracle. Run with -race to exercise the phase-1/phase-3a
// fan-out.
func TestParallelCommitMatchesSerialAcrossWorkers(t *testing.T) {
	const nviews = 8
	defs := make([]expr.View, nviews)
	build := func(workers int) *Engine {
		e := New(WithMaintWorkers(workers))
		for i := 0; i < nviews; i++ {
			if err := e.CreateRelation(fmt.Sprintf("R%d", i), "A", "B"); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.CreateRelation("S", "B", "C"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nviews; i++ {
			v, err := expr.NaturalJoin(fmt.Sprintf("v%d", i), e.Scheme(), fmt.Sprintf("R%d", i), "S")
			if err != nil {
				t.Fatal(err)
			}
			defs[i] = v
			cfg := ViewConfig{}
			switch i % 3 {
			case 1:
				cfg.Mode = Deferred
			case 2:
				cfg.Policy = PolicyAdaptive
			}
			if err := e.CreateView(v, cfg); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	serial, par := build(1), build(4)

	rels := make([]string, 0, nviews+1)
	for i := 0; i < nviews; i++ {
		rels = append(rels, fmt.Sprintf("R%d", i))
	}
	rels = append(rels, "S")
	live := make(map[string][]tuple.Tuple) // mirror of base contents
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 60; round++ {
		var tx delta.Tx
		seen := make(map[string]bool)
		for n := 1 + rng.Intn(4); n > 0; n-- {
			rel := rels[rng.Intn(len(rels))]
			if len(live[rel]) > 0 && rng.Intn(10) < 3 {
				i := rng.Intn(len(live[rel]))
				tu := live[rel][i]
				if seen[rel+tu.Key()] {
					continue
				}
				seen[rel+tu.Key()] = true
				tx.Delete(rel, tu)
				live[rel] = append(live[rel][:i], live[rel][i+1:]...)
				continue
			}
			tu := tuple.New(int64(rng.Intn(12)), int64(rng.Intn(6)))
			if seen[rel+tu.Key()] {
				continue
			}
			dup := false
			for _, x := range live[rel] {
				if x.Key() == tu.Key() {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[rel+tu.Key()] = true
			tx.Insert(rel, tu)
			live[rel] = append(live[rel], tu)
		}
		if tx.Len() == 0 {
			continue
		}
		if _, err := serial.Execute(&tx); err != nil {
			t.Fatalf("round %d: serial: %v", round, err)
		}
		if _, err := par.Execute(&tx); err != nil {
			t.Fatalf("round %d: parallel: %v", round, err)
		}
	}
	if err := serial.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if err := par.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nviews; i++ {
		name := fmt.Sprintf("v%d", i)
		vs, _ := serial.View(name)
		vp, _ := par.View(name)
		if !vs.Equal(vp) {
			t.Errorf("%s diverged between 1 and 4 workers:\n serial: %v\n parallel: %v", name, vs, vp)
		}
		oracle, err := par.Query(defs[i], eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !vp.Equal(oracle) {
			t.Errorf("%s diverged from recompute oracle:\n view: %v\n oracle: %v", name, vp, oracle)
		}
	}
}

// TestRefreshAllParallelAndErrorKeepsBacklog checks RefreshAll's error
// contract under the parallel pool: healthy views install, the failing
// view keeps its backlog, and the first error is returned — then a
// repaired view refreshes on retry.
func TestRefreshAllParallelAndErrorKeepsBacklog(t *testing.T) {
	e := New(WithMaintWorkers(4))
	if err := e.CreateRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateRelation("S", "B", "C"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"d1", "d2", "d3"} {
		if err := e.CreateView(joinViewDef(t, e, name), ViewConfig{Mode: Deferred}); err != nil {
			t.Fatal(err)
		}
	}
	var seed delta.Tx
	seed.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 10))
	exec(t, e, &seed)
	if err := e.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"d1", "d2", "d3"} {
		v, _ := e.View(name)
		if !v.Has(tuple.New(1, 2, 10)) {
			t.Fatalf("%s not refreshed by RefreshAll: %v", name, v)
		}
	}

	var del delta.Tx
	del.Delete("R", tuple.New(1, 2))
	exec(t, e, &del)
	// Corrupt d2 so its pending delete cannot fold.
	if err := e.views["d2"].data.Add(tuple.New(1, 2, 10), -1); err != nil {
		t.Fatal(err)
	}
	if err := e.RefreshAll(); err == nil {
		t.Fatal("RefreshAll with corrupted d2 succeeded, want error")
	} else if !strings.Contains(err.Error(), "derivations") {
		t.Errorf("RefreshAll error = %v", err)
	}
	for _, name := range []string{"d1", "d3"} {
		v, _ := e.View(name)
		if v.Has(tuple.New(1, 2, 10)) {
			t.Errorf("%s kept deleted derivation after RefreshAll: %v", name, v)
		}
		if st, _ := e.ViewStats(name); st.PendingTx != 0 {
			t.Errorf("%s PendingTx = %d after successful refresh, want 0", name, st.PendingTx)
		}
	}
	if st, _ := e.ViewStats("d2"); st.PendingTx != 1 {
		t.Errorf("d2 PendingTx = %d after failed refresh, want backlog kept", st.PendingTx)
	}

	// Repair and retry: the kept backlog folds cleanly.
	if err := e.views["d2"].data.Add(tuple.New(1, 2, 10), 1); err != nil {
		t.Fatal(err)
	}
	if err := e.RefreshAll(); err != nil {
		t.Fatalf("RefreshAll after repair: %v", err)
	}
	v, _ := e.View("d2")
	if v.Has(tuple.New(1, 2, 10)) {
		t.Errorf("d2 still holds deleted derivation after retry: %v", v)
	}
}

// TestMaintWorkersKnob covers the pool-size configuration surface: the
// GOMAXPROCS default, the option, the setter (including the n <= 0
// reset), and the mview_maint_workers gauge.
func TestMaintWorkersKnob(t *testing.T) {
	def := runtime.GOMAXPROCS(0)
	if got := New().MaintWorkers(); got != def {
		t.Errorf("default MaintWorkers() = %d, want GOMAXPROCS %d", got, def)
	}
	e := New(WithMaintWorkers(3))
	if got := e.MaintWorkers(); got != 3 {
		t.Errorf("WithMaintWorkers(3): MaintWorkers() = %d", got)
	}
	e.SetMaintWorkers(0)
	if got := e.MaintWorkers(); got != def {
		t.Errorf("SetMaintWorkers(0): MaintWorkers() = %d, want default %d", got, def)
	}
	e.SetMaintWorkers(-7)
	if got := e.MaintWorkers(); got != def {
		t.Errorf("SetMaintWorkers(-7): MaintWorkers() = %d, want default %d", got, def)
	}
	e.SetMaintWorkers(2)
	if got := e.MaintWorkers(); got != 2 {
		t.Errorf("SetMaintWorkers(2): MaintWorkers() = %d", got)
	}

	reg := obs.NewRegistry()
	e.SetObs(reg, nil)
	gauge := func() float64 {
		for _, s := range reg.Snapshot() {
			if s.Name == "mview_maint_workers" {
				return s.Value
			}
		}
		t.Fatal("mview_maint_workers not in registry snapshot")
		return 0
	}
	if got := gauge(); got != 2 {
		t.Errorf("gauge after SetObs = %v, want 2", got)
	}
	e.SetMaintWorkers(5)
	if got := gauge(); got != 5 {
		t.Errorf("gauge after SetMaintWorkers(5) = %v", got)
	}
}
