package db

import (
	"testing"

	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/expr"
	"mview/internal/obs"
	"mview/internal/pred"
	"mview/internal/schema"
	"mview/internal/tuple"
)

// series finds one snapshot entry by name and labels (nil matches the
// unlabeled series).
func series(t *testing.T, reg *obs.Registry, name string, labels map[string]string) obs.SeriesSnapshot {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
			}
		}
		if match {
			return s
		}
	}
	t.Fatalf("no series %s%v in snapshot", name, labels)
	return obs.SeriesSnapshot{}
}

func refreshCount(t *testing.T, reg *obs.Registry, view, decision string) int64 {
	t.Helper()
	return series(t, reg, "mview_view_refresh_seconds",
		map[string]string{"view": view, "decision": decision}).Count
}

// TestMetricsAdvanceAcrossPolicies drives one engine with an
// immediate filtered view, a deferred view, and an adaptive view, and
// checks that commit, refresh-latency, filter, and pending-backlog
// metrics all advance with the right labels.
func TestMetricsAdvanceAcrossPolicies(t *testing.T) {
	e := newEngine(t)
	reg := obs.NewRegistry()
	e.SetObs(reg, nil)

	sel := expr.View{
		Name:     "imm",
		Operands: []expr.Operand{{Rel: "R"}},
		Where:    pred.Or(pred.And(pred.VarConst("R.A", pred.OpLT, 10))),
		Project:  []schema.Attribute{"R.A", "R.B"},
	}
	if err := e.CreateView(sel, ViewConfig{Maint: diffeval.Options{Filter: true}}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "def"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "adap"),
		ViewConfig{Policy: PolicyAdaptive, AdaptiveThreshold: 0.75}); err != nil {
		t.Fatal(err)
	}

	// Tx 1: both base relations empty, so the adaptive view must pick
	// full recomputation; R.A=1 passes the imm filter.
	var tx1 delta.Tx
	tx1.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 5))
	exec(t, e, &tx1)
	// Tx 2: provably irrelevant to imm (A=50 ≥ 10); small against a
	// non-empty base, so the adaptive view now goes differential.
	var tx2 delta.Tx
	tx2.Insert("R", tuple.New(50, 7))
	exec(t, e, &tx2)

	if got := series(t, reg, "mview_commits_total", nil).Value; got != 2 {
		t.Errorf("mview_commits_total = %v, want 2", got)
	}
	if got := series(t, reg, "mview_commit_seconds", nil).Count; got != 2 {
		t.Errorf("mview_commit_seconds count = %v, want 2", got)
	}
	if got := refreshCount(t, reg, "imm", "differential"); got != 2 {
		t.Errorf("imm differential refreshes = %d, want 2", got)
	}
	if got := refreshCount(t, reg, "adap", "adaptive_recompute"); got != 1 {
		t.Errorf("adap recompute refreshes = %d, want 1", got)
	}
	if got := refreshCount(t, reg, "adap", "adaptive_differential"); got != 1 {
		t.Errorf("adap differential refreshes = %d, want 1", got)
	}
	immLabels := map[string]string{"view": "imm"}
	if got := series(t, reg, "mview_filter_discarded_total", immLabels).Value; got != 1 {
		t.Errorf("filter discarded = %v, want 1 (the A=50 insert)", got)
	}
	if got := series(t, reg, "mview_filter_passed_total", immLabels).Value; got != 1 {
		t.Errorf("filter passed = %v, want 1 (the A=1 insert)", got)
	}
	// The §4 counter agrees with the per-view stats surface.
	st, err := e.ViewStats("imm")
	if err != nil {
		t.Fatal(err)
	}
	if st.FilteredOut != 1 {
		t.Errorf("ViewStats.FilteredOut = %d, want 1", st.FilteredOut)
	}

	// The deferred view queued both transactions without refreshing;
	// RefreshView drains the backlog and records one differential
	// refresh.
	defLabels := map[string]string{"view": "def"}
	if got := series(t, reg, "mview_view_pending_tx", defLabels).Value; got != 2 {
		t.Errorf("pending gauge = %v, want 2", got)
	}
	if err := e.RefreshView("def"); err != nil {
		t.Fatal(err)
	}
	if got := series(t, reg, "mview_view_pending_tx", defLabels).Value; got != 0 {
		t.Errorf("pending gauge after refresh = %v, want 0", got)
	}
	if got := refreshCount(t, reg, "def", "differential"); got != 1 {
		t.Errorf("def differential refreshes = %d, want 1", got)
	}
}

// TestSetObsWiresExistingAndNewViews attaches the registry after one
// view exists and before another is created; both must report.
func TestSetObsWiresExistingAndNewViews(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "before"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := &obs.CollectingTracer{}
	e.SetObs(reg, tr)
	if err := e.CreateView(joinViewDef(t, e, "after"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 5))
	exec(t, e, &tx)
	for _, view := range []string{"before", "after"} {
		if got := refreshCount(t, reg, view, "differential"); got != 1 {
			t.Errorf("view %s refreshes = %d, want 1", view, got)
		}
	}
	// The maintenance tracer fired for both views' delta computations.
	var computes int
	for _, s := range tr.Spans {
		if s.Name == "diffeval.compute" {
			computes++
		}
	}
	if computes != 2 {
		t.Errorf("diffeval.compute spans = %d, want 2", computes)
	}

	// Detaching stops the counters without disturbing maintenance.
	e.SetObs(nil, nil)
	var tx2 delta.Tx
	tx2.Insert("R", tuple.New(3, 2))
	exec(t, e, &tx2)
	if got := series(t, reg, "mview_commits_total", nil).Value; got != 1 {
		t.Errorf("commits after detach = %v, want 1", got)
	}
	v, err := e.View("before")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("view rows after detach = %d, want 2", v.Len())
	}
}
