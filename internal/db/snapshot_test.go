package db

import (
	"fmt"
	"sync"
	"testing"

	"mview/internal/delta"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/obs"
	"mview/internal/pred"
	"mview/internal/schema"
	"mview/internal/tuple"
)

// TestSnapshotIsolation: a View/Relation result is one immutable cut;
// commits after the read publish new snapshots and never mutate it.
func TestSnapshotIsolation(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 10))
	exec(t, e, &tx)

	v0, _ := e.View("v")
	r0, _ := e.Relation("R")
	s0 := e.CurrentSnapshot()

	var tx2 delta.Tx
	tx2.Insert("R", tuple.New(3, 2)).Delete("R", tuple.New(1, 2))
	exec(t, e, &tx2)

	if v0.Len() != 1 || !v0.Has(tuple.New(1, 2, 10)) {
		t.Errorf("old View result changed under a commit: %v", v0)
	}
	if r0.Len() != 1 || !r0.Has(tuple.New(1, 2)) {
		t.Errorf("old Relation result changed under a commit: %v", r0)
	}
	v1, _ := e.View("v")
	if v1.Len() != 1 || !v1.Has(tuple.New(3, 2, 10)) {
		t.Errorf("fresh View read missed the commit: %v", v1)
	}
	if s1 := e.CurrentSnapshot(); s1.Seq() <= s0.Seq() {
		t.Errorf("commit did not advance the snapshot: %d -> %d", s0.Seq(), s1.Seq())
	}
}

// TestSnapshotSharing: publishing is copy-on-write — a commit that
// does not touch a view carries that view's snapView (and data)
// into the next snapshot by pointer, and untouched base relations
// stay shared too.
func TestSnapshotSharing(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateRelation("T", "X", "Y"); err != nil {
		t.Fatal(err)
	}
	// vR depends only on R, vT only on T.
	vR := expr.View{Name: "vR", Operands: []expr.Operand{{Rel: "R"}},
		Where: pred.MustParse("A < 100")}
	vT := expr.View{Name: "vT", Operands: []expr.Operand{{Rel: "T"}},
		Where: pred.MustParse("X < 100")}
	if err := e.CreateView(vR, ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(vT, ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 1)).Insert("T", tuple.New(2, 2))
	exec(t, e, &tx)

	before := e.CurrentSnapshot()
	var tx2 delta.Tx
	tx2.Insert("R", tuple.New(3, 3))
	exec(t, e, &tx2)
	after := e.CurrentSnapshot()

	if before == after {
		t.Fatal("commit did not publish a new snapshot")
	}
	if before.views["vT"] != after.views["vT"] {
		t.Error("untouched view was rebuilt instead of shared")
	}
	if before.base["T"] != after.base["T"] {
		t.Error("untouched base relation was copied instead of shared")
	}
	if before.base["S"] != after.base["S"] {
		t.Error("untouched base relation S was copied instead of shared")
	}
	if before.views["vR"] == after.views["vR"] {
		t.Error("touched view's snapView must be rebuilt")
	}
	if before.views["vR"].data == after.views["vR"].data {
		t.Error("touched view's data must be a copy-on-write clone")
	}
	if before.base["R"] == after.base["R"] {
		t.Error("touched base relation must be a copy-on-write clone")
	}
}

// TestSnapshotConcurrentReaders hammers every lock-free read path
// while writers commit, refresh, and run DDL. Run under -race this
// proves the copy-on-write discipline: published snapshots are never
// mutated in place.
func TestSnapshotConcurrentReaders(t *testing.T) {
	e := newEngine(t)
	reg := obs.NewRegistry()
	e.SetObs(reg, nil)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	def := expr.View{
		Name:     "vdef",
		Operands: []expr.Operand{{Rel: "R"}},
		Where:    pred.MustParse("A < 1000"),
		Project:  []schema.Attribute{"A"},
	}
	if err := e.CreateView(def, ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}

	const writers, readers, txPerWriter = 4, 4, 50
	var wgW, wgR sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(id int) {
			defer wgW.Done()
			for i := 0; i < txPerWriter; i++ {
				n := int64(id*txPerWriter + i)
				var tx delta.Tx
				tx.Insert("R", tuple.New(n%500, n%7)).Insert("S", tuple.New(n%7, n))
				if _, err := e.Execute(&tx); err != nil {
					t.Error(err)
					return
				}
				if i%20 == 0 {
					if err := e.RefreshView("vdef"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wgR.Add(1)
		go func(id int) {
			defer wgR.Done()
			q := expr.View{
				Name:     "(q)",
				Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
				Where:    pred.MustParse("R.B = S.B && R.A < 5"),
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v, err := e.View("v")
				if err != nil {
					t.Error(err)
					return
				}
				sum := 0
				v.Each(func(tp tuple.Tuple, n int64) { sum += len(tp) })
				if _, err := e.ViewStats("v"); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Query(q, eval.Options{}); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Explain("v"); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Relevant("vdef", "R", tuple.New(int64(i%2000), 0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	// DDL churn alongside: create and drop throwaway views.
	wgW.Add(1)
	go func() {
		defer wgW.Done()
		for i := 0; i < 25; i++ {
			name := fmt.Sprintf("tmp%d", i)
			v := expr.View{Name: name, Operands: []expr.Operand{{Rel: "R"}},
				Where: pred.MustParse("A < 10")}
			if err := e.CreateView(v, ViewConfig{}); err != nil {
				t.Error(err)
				return
			}
			if err := e.DropView(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wgW.Wait() // writers and DDL finish on their own
	close(stop)
	wgR.Wait()

	// Final consistency check: a fresh read sees all committed state.
	if err := e.RefreshView("vdef"); err != nil {
		t.Fatal(err)
	}
	r, err := e.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	vd, err := e.View("vdef")
	if err != nil {
		t.Fatal(err)
	}
	if vd.Len() == 0 || r.Len() == 0 {
		t.Errorf("final state empty: |R|=%d |vdef|=%d", r.Len(), vd.Len())
	}
}
