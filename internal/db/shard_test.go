package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/pred"
	"mview/internal/tuple"
)

// buildShardFleet creates R(A,B), S(B,C) and a mix of views chosen to
// cover every shard-eligibility path: a single-operand selection
// (always fans out when R changes), a join (fans out only when one
// side changed), a self-join (never fans out), a deferred join, and an
// adaptive filtered selection.
func buildShardFleet(t *testing.T, opts ...Option) (*Engine, []expr.View) {
	t.Helper()
	e := New(opts...)
	if err := e.CreateRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateRelation("S", "B", "C"); err != nil {
		t.Fatal(err)
	}
	join, err := expr.NaturalJoin("join", e.Scheme(), "R", "S")
	if err != nil {
		t.Fatal(err)
	}
	dfr, err := expr.NaturalJoin("dfr", e.Scheme(), "R", "S")
	if err != nil {
		t.Fatal(err)
	}
	defs := []expr.View{
		{Name: "sel", Operands: []expr.Operand{{Rel: "R"}}, Where: pred.MustParse("R.A <= 20")},
		join,
		{Name: "self", Operands: []expr.Operand{{Rel: "R", Alias: "x"}, {Rel: "R", Alias: "y"}},
			Where: pred.MustParse("x.B = y.A")},
		dfr,
		{Name: "filt", Operands: []expr.Operand{{Rel: "R"}}, Where: pred.MustParse("R.A < 15")},
	}
	cfgs := []ViewConfig{
		{},
		{},
		{},
		{Mode: Deferred},
		{Policy: PolicyAdaptive, Maint: diffeval.Options{Filter: true}},
	}
	for i, v := range defs {
		if err := e.CreateView(v, cfgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return e, defs
}

// churn appends n inserts/deletes for rel to tx, keeping *live the set
// of tuples present so the stream never duplicates an insert or
// deletes an absent tuple.
func churn(tx *delta.Tx, rel string, live *[]tuple.Tuple, rng *rand.Rand, n, aMax, bMax int) {
	seen := make(map[string]bool)
	for ; n > 0; n-- {
		if len(*live) > 0 && rng.Intn(10) < 4 {
			i := rng.Intn(len(*live))
			tu := (*live)[i]
			if seen[tu.Key()] {
				continue
			}
			seen[tu.Key()] = true
			tx.Delete(rel, tu)
			*live = append((*live)[:i], (*live)[i+1:]...)
			continue
		}
		tu := tuple.New(int64(rng.Intn(aMax)), int64(rng.Intn(bMax)))
		dup := seen[tu.Key()]
		for _, x := range *live {
			if x.Key() == tu.Key() {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[tu.Key()] = true
		tx.Insert(rel, tu)
		*live = append(*live, tu)
	}
}

// genShardTxs builds one serial transaction stream over R and S: most
// transactions touch only R (join views fan out on one operand), some
// touch both (multi-operand fallback).
func genShardTxs(rounds int, seed int64) []*delta.Tx {
	rng := rand.New(rand.NewSource(seed))
	var liveR, liveS []tuple.Tuple
	var txs []*delta.Tx
	for r := 0; r < rounds; r++ {
		tx := &delta.Tx{}
		churn(tx, "R", &liveR, rng, 1+rng.Intn(4), 40, 6)
		if rng.Intn(3) == 0 {
			churn(tx, "S", &liveS, rng, 1+rng.Intn(2), 6, 12)
		}
		if tx.Len() > 0 {
			txs = append(txs, tx)
		}
	}
	return txs
}

// semanticStats is the subset of ViewStats that must be identical
// across shard counts. The work-shape counters (RowsEvaluated,
// JoinSteps, FilterChecked/FilteredOut, ShardTasks, ShardsPruned)
// legitimately differ: sharding changes how the work is done, not what
// it computes.
func semanticStats(s ViewStats) [6]int {
	return [6]int{s.Transactions, s.Refreshes, s.Recomputes, s.DeltaInserts, s.DeltaDeletes, s.PendingTx}
}

func compareShardedToOracle(t *testing.T, label string, got, want *Engine, defs []expr.View) {
	t.Helper()
	for _, rel := range []string{"R", "S"} {
		rg, _ := got.Relation(rel)
		ro, _ := want.Relation(rel)
		if !rg.Equal(ro) {
			t.Errorf("%s: relation %s diverged:\n got: %v\n want: %v", label, rel, rg, ro)
		}
	}
	for _, v := range defs {
		sg, _ := got.ViewStats(v.Name)
		so, _ := want.ViewStats(v.Name)
		if semanticStats(sg) != semanticStats(so) {
			t.Errorf("%s: view %s semantic stats = %v, oracle %v", label, v.Name, semanticStats(sg), semanticStats(so))
		}
	}
	if err := got.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if err := want.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	for _, v := range defs {
		vg, _ := got.View(v.Name)
		vo, _ := want.View(v.Name)
		if !vg.Equal(vo) {
			t.Errorf("%s: view %s diverged:\n got: %v\n want: %v", label, v.Name, vg, vo)
		}
		rec, err := got.Query(v, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !vg.Equal(rec) {
			t.Errorf("%s: view %s diverged from recompute oracle:\n view: %v\n oracle: %v", label, v.Name, vg, rec)
		}
	}
}

// TestShardedMatchesUnshardedOracle replays one randomized churn
// stream on an unsharded engine and on engines at 2/4/8 shards: base
// relations, view contents (including a full-recompute cross-check),
// and the semantic stat counters must be identical. Run with -race.
func TestShardedMatchesUnshardedOracle(t *testing.T) {
	txs := genShardTxs(120, 42)
	var defs []expr.View
	var oracle *Engine
	for _, n := range []int{2, 4, 8} {
		// Fresh oracle per shard count: the comparison's RefreshAll
		// mutates it, so it cannot be shared across iterations.
		oracle, defs = buildShardFleet(t)
		for _, tx := range txs {
			if _, err := oracle.Execute(tx); err != nil {
				t.Fatal(err)
			}
		}
		e, _ := buildShardFleet(t, WithShards(n))
		if e.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", e.Shards(), n)
		}
		for _, tx := range txs {
			if _, err := e.Execute(tx); err != nil {
				t.Fatal(err)
			}
		}
		compareShardedToOracle(t, fmt.Sprintf("shards=%d", n), e, oracle, defs)

		// Eligibility paths: the single-operand selection must have
		// fanned out; the self-join must never fan out.
		if st, _ := e.ViewStats("sel"); st.ShardTasks == 0 {
			t.Errorf("shards=%d: view sel never fanned out (ShardTasks = 0)", n)
		}
		if st, _ := e.ViewStats("self"); st.ShardTasks != 0 {
			t.Errorf("shards=%d: self-join fanned out (ShardTasks = %d), must run unsharded", n, st.ShardTasks)
		}
	}
	// The unsharded engine must not report shard work.
	for _, v := range defs {
		if st, _ := oracle.ViewStats(v.Name); st.ShardTasks != 0 || st.ShardsPruned != 0 {
			t.Errorf("unsharded view %s reports shard counters: tasks=%d pruned=%d",
				v.Name, st.ShardTasks, st.ShardsPruned)
		}
	}
}

// TestShardedGroupCommitMatchesSerialOracle runs the concurrent
// group-commit fleet on a sharded engine against an unsharded serial
// oracle: sharding must compose with batch composition. Run with
// -race.
func TestShardedGroupCommitMatchesSerialOracle(t *testing.T) {
	const writers, rounds = 8, 40
	grp, defs := buildGroupFleet(t, writers, WithShards(4))
	oracle, _ := buildGroupFleet(t, writers)
	grp.EnableGroupCommit(writers, 2*time.Millisecond, nil)
	defer grp.DisableGroupCommit()

	streams := genStreams(writers, rounds)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, tx := range streams[w] {
				if _, err := grp.Execute(tx); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		for _, tx := range streams[w] {
			if _, err := oracle.Execute(tx); err != nil {
				t.Fatalf("oracle writer %d: %v", w, err)
			}
		}
	}

	for w := 0; w < writers; w++ {
		rel := fmt.Sprintf("R%d", w)
		rg, _ := grp.Relation(rel)
		ro, _ := oracle.Relation(rel)
		if !rg.Equal(ro) {
			t.Errorf("%s diverged:\n sharded: %v\n oracle: %v", rel, rg, ro)
		}
	}
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("v%d", w)
		sg, _ := grp.ViewStats(name)
		so, _ := oracle.ViewStats(name)
		if sg.Transactions != so.Transactions {
			t.Errorf("%s Transactions = %d, oracle %d", name, sg.Transactions, so.Transactions)
		}
		if sg.PendingTx != so.PendingTx {
			t.Errorf("%s PendingTx = %d, oracle %d", name, sg.PendingTx, so.PendingTx)
		}
	}
	if err := grp.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	var fanned int
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("v%d", w)
		vg, _ := grp.View(name)
		vo, _ := oracle.View(name)
		if !vg.Equal(vo) {
			t.Errorf("%s diverged:\n sharded: %v\n oracle: %v", name, vg, vo)
		}
		rec, err := grp.Query(defs[w], eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !vg.Equal(rec) {
			t.Errorf("%s diverged from recompute oracle", name)
		}
		st, _ := grp.ViewStats(name)
		fanned += st.ShardTasks
	}
	if fanned == 0 {
		t.Error("no view fanned out under group commit (ShardTasks all 0)")
	}
}

// TestShardPruning pins the §4 key-range prune: a view over keys
// >= 1000 must skip every shard of a delta whose keys all fall below,
// install an empty delta while still counting the refresh, and stay
// exact when a later delta mixes relevant and irrelevant keys.
func TestShardPruning(t *testing.T) {
	e := New(WithShards(8))
	if err := e.CreateRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	hot := expr.View{
		Name:     "hot",
		Operands: []expr.Operand{{Rel: "R"}},
		Where:    pred.MustParse("R.A >= 1000"),
	}
	if err := e.CreateView(hot, ViewConfig{}); err != nil {
		t.Fatal(err)
	}

	var cold delta.Tx
	for i := 0; i < 64; i++ {
		cold.Insert("R", tuple.New(int64(i), int64(i%7)))
	}
	exec(t, e, &cold)
	st, _ := e.ViewStats("hot")
	if st.ShardsPruned == 0 {
		t.Errorf("all-cold delta: ShardsPruned = 0, want > 0")
	}
	if st.ShardTasks != 0 {
		t.Errorf("all-cold delta: ShardTasks = %d, want 0 (every shard pruned)", st.ShardTasks)
	}
	if st.Refreshes != 1 {
		t.Errorf("all-cold delta: Refreshes = %d, want 1 (empty delta still refreshes)", st.Refreshes)
	}
	if v, _ := e.View("hot"); v.Len() != 0 {
		t.Errorf("view not empty after all-cold delta: %v", v)
	}

	var mixed delta.Tx
	for i := 64; i < 96; i++ {
		mixed.Insert("R", tuple.New(int64(i), int64(i%7)))
	}
	for i := 0; i < 4; i++ {
		mixed.Insert("R", tuple.New(int64(1000+i), int64(i)))
	}
	exec(t, e, &mixed)
	st, _ = e.ViewStats("hot")
	if st.ShardTasks == 0 {
		t.Error("mixed delta: ShardTasks = 0, want surviving shards to fan out")
	}
	v, _ := e.View("hot")
	if v.Len() != 4 {
		t.Errorf("view has %d tuples after mixed delta, want 4: %v", v.Len(), v)
	}
	rec, err := e.Query(hot, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(rec) {
		t.Errorf("view diverged from recompute after pruning:\n view: %v\n oracle: %v", v, rec)
	}

	if ex, _ := e.Explain("hot"); !strings.Contains(ex, "hash shards") {
		t.Errorf("Explain lacks shard line:\n%s", ex)
	}
}

// TestExplainShardLine pins the unsharded wording too.
func TestExplainShardLine(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain("v")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "monolithic") {
		t.Errorf("unsharded Explain lacks shard line:\n%s", ex)
	}
}

// TestShardedSaveLoadReShards pins that the snapshot format is
// shard-independent: a sharded engine's Save loads into any shard
// count with identical contents.
func TestShardedSaveLoadReShards(t *testing.T) {
	e, defs := buildShardFleet(t, WithShards(4))
	for _, tx := range genShardTxs(40, 7) {
		if _, err := e.Execute(tx); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{nil, {WithShards(8)}} {
		l, err := Load(bytes.NewReader(buf.Bytes()), opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range []string{"R", "S"} {
			rg, _ := l.Relation(rel)
			ro, _ := e.Relation(rel)
			if !rg.Equal(ro) {
				t.Errorf("relation %s diverged after reload", rel)
			}
		}
		if err := l.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		if err := e.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		for _, v := range defs {
			vg, _ := l.View(v.Name)
			vo, _ := e.View(v.Name)
			if !vg.Equal(vo) {
				t.Errorf("view %s diverged after reload", v.Name)
			}
		}
	}
}
