package db

import (
	"bytes"
	"fmt"
	"testing"

	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/relation"
	"mview/internal/tuple"
)

// TestCheckpointDirtyTracksTouchedShards: commits mark exactly the
// shards their net delta landed in; Take resets the interval and
// Restore merges failed-checkpoint bits back.
func TestCheckpointDirtyTracksTouchedShards(t *testing.T) {
	const shards = 4
	e := New(WithShards(shards))
	if err := e.CreateRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}

	// Creation leaves every shard dirty (nothing of R is checkpointed).
	taken := e.TakeCheckpointDirty()
	if got := len(taken["R"]); got != shards {
		t.Fatalf("dirty bitmap has %d shards, want %d", got, shards)
	}
	for i, d := range taken["R"] {
		if !d {
			t.Errorf("shard %d clean after creation", i)
		}
	}

	// One insert dirties exactly the shard its key hashes to.
	key := tuple.Value(42)
	exec(t, e, new(delta.Tx).Insert("R", tuple.Tuple{key, 1}))
	taken = e.TakeCheckpointDirty()
	want := relation.ShardOf(key, shards)
	for i, d := range taken["R"] {
		if d != (i == want) {
			t.Errorf("shard %d dirty=%v, want dirty only on %d", i, d, want)
		}
	}

	// A failed checkpoint restores its bits on top of newer commits.
	key2 := tuple.Value(7)
	exec(t, e, new(delta.Tx).Insert("R", tuple.Tuple{key2, 1}))
	e.RestoreCheckpointDirty(taken)
	merged := e.TakeCheckpointDirty()
	wantDirty := map[int]bool{want: true, relation.ShardOf(key2, shards): true}
	for i, d := range merged["R"] {
		if d != wantDirty[i] {
			t.Errorf("merged shard %d dirty=%v, want %v", i, d, wantDirty[i])
		}
	}

	// Deletes dirty their shard too.
	exec(t, e, new(delta.Tx).Delete("R", tuple.Tuple{key, 1}))
	taken = e.TakeCheckpointDirty()
	if !taken["R"][want] {
		t.Error("delete did not dirty its shard")
	}

	// SetCheckpointClean and MarkAllCheckpointDirty round-trip.
	e.MarkAllCheckpointDirty()
	e.SetCheckpointClean("R")
	for i, d := range e.TakeCheckpointDirty()["R"] {
		if d {
			t.Errorf("shard %d dirty after SetCheckpointClean", i)
		}
	}
}

// TestSegmentedSaveLoadRoundTrip: catalog + per-shard segments restore
// an engine identical to the source — including across a reshard,
// since segments carry plain tuples and routing is recomputed.
func TestSegmentedSaveLoadRoundTrip(t *testing.T) {
	src := New(WithShards(4))
	if err := src.CreateRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := src.CreateRelation("S", "B", "C"); err != nil {
		t.Fatal(err)
	}
	v := joinViewDef(t, src, "V")
	if err := src.CreateView(v, ViewConfig{Maint: diffeval.Options{Filter: true}}); err != nil {
		t.Fatal(err)
	}
	tx := new(delta.Tx)
	for i := int64(0); i < 50; i++ {
		tx.Insert("R", tuple.Tuple{i, i % 7})
		tx.Insert("S", tuple.Tuple{i % 7, i * 3})
	}
	exec(t, src, tx)

	snap := src.CurrentSnapshot()
	var catalog bytes.Buffer
	if err := snap.WriteCatalog(&catalog); err != nil {
		t.Fatal(err)
	}
	var segs []bytes.Buffer
	for _, rel := range snap.Relations() {
		for sh := 0; sh < snap.RelationShards(rel); sh++ {
			if snap.ShardLen(rel, sh) == 0 {
				continue
			}
			var b bytes.Buffer
			if err := snap.WriteShard(&b, rel, sh); err != nil {
				t.Fatal(err)
			}
			segs = append(segs, b)
		}
	}

	for _, reshard := range []int{4, 2, 1, 8} {
		t.Run(fmt.Sprintf("shards=%d", reshard), func(t *testing.T) {
			var opts []Option
			if reshard > 1 {
				opts = append(opts, WithShards(reshard))
			}
			dst, pending, err := BeginSegmentedLoad(bytes.NewReader(catalog.Bytes()), opts...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range segs {
				if err := dst.LoadShardSegment(bytes.NewReader(segs[i].Bytes())); err != nil {
					t.Fatal(err)
				}
			}
			if err := dst.CompleteSegmentedLoad(pending); err != nil {
				t.Fatal(err)
			}
			for _, rel := range []string{"R", "S"} {
				a, _ := src.Relation(rel)
				b, _ := dst.Relation(rel)
				if !a.Equal(b) {
					t.Errorf("relation %s diverged after segmented round trip", rel)
				}
			}
			av, err := src.View("V")
			if err != nil {
				t.Fatal(err)
			}
			bv, err := dst.View("V")
			if err != nil {
				t.Fatal(err)
			}
			if !av.Equal(bv) {
				t.Error("view V diverged after segmented round trip")
			}
		})
	}
}

// TestSegmentedLoadRejectsGarbage pins the header validation.
func TestSegmentedLoadRejectsGarbage(t *testing.T) {
	if _, _, err := BeginSegmentedLoad(bytes.NewReader([]byte("junkjunkjunkjunk"))); err == nil {
		t.Error("garbage catalog accepted")
	}
	e := New()
	if err := e.LoadShardSegment(bytes.NewReader([]byte("junkjunkjunkjunk"))); err == nil {
		t.Error("garbage segment accepted")
	}
	// A valid segment for an unknown relation must fail cleanly.
	src := New()
	if err := src.CreateRelation("R", "A"); err != nil {
		t.Fatal(err)
	}
	exec(t, src, new(delta.Tx).Insert("R", tuple.Tuple{1}))
	var b bytes.Buffer
	if err := src.CurrentSnapshot().WriteShard(&b, "R", 0); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadShardSegment(bytes.NewReader(b.Bytes())); err == nil {
		t.Error("segment for unknown relation accepted")
	}
}
