package db

// The refresh scheduler: one timer wheel per engine driving every
// scheduled when-policy (scheduler.go is the "when", db.go's refresh
// machinery the "how").
//
//   - RefreshEvery views refresh on their interval.
//   - RefreshMaxStaleness views are refreshed proactively before the
//     age of their oldest unapplied change (viewState.pendingSince,
//     the same clock Staleness reads) reaches the SLO bound.
//   - RefreshAdaptive views have their write/read balance re-evaluated
//     periodically and their commit-time Mode flipped between
//     Immediate and Deferred — extending chooseAdaptive's cost model
//     from "how to refresh" to "when to refresh".
//   - RefreshPeriodically registrations ride the same wheel, so a
//     hundred callers cost one goroutine, not a hundred tickers.
//
// The wheel goroutine starts lazily on the first scheduled view or
// periodic registration and sleeps until the earliest deadline; commit
// installs that dirty a deferred view poke it so a fresh MaxStaleness
// deadline is planned immediately. Policy state is read from the
// published snapshot (lock-free); only the engine's own refresh entry
// points take the engine lock, exactly as a user-driven refresh would.
//
// Followers never run policy-driven work: they replay the leader's
// policy DDL so the catalog matches, but maintenance arrives composed
// from the stream (DisablePolicyRefresh). Explicit RefreshPeriodically
// registrations still fire — they are a local, caller-owned contract.

import (
	"sync"
	"time"

	"mview/internal/obs"
)

// schedClock is the scheduler's time source; tests substitute a fake
// so interval firing and SLO deadlines are deterministic.
type schedClock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// realClock backs production engines. Now goes through Engine.now so
// the staleness stamps commits write and the deadlines the scheduler
// plans against come from one clock, fake or real.
type realClock struct{ e *Engine }

func (c realClock) Now() time.Time                         { return c.e.now() }
func (c realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// sloHeadroom is the fraction of a MaxStaleness bound at which the
// scheduler refreshes: firing at 80% leaves the refresh itself room to
// complete before the SLO would be breached.
const (
	sloHeadroomNum = 4
	sloHeadroomDen = 5
)

// adaptiveEvalEvery is how often an adaptive view's write/read balance
// is re-evaluated.
const adaptiveEvalEvery = time.Second

// adaptiveWriteFactor is the flip hysteresis: a view goes deferred
// only once writes outnumber reads by this factor over an evaluation
// window, and returns to on-commit as soon as reads catch back up —
// asymmetric on purpose, since serving a stale read is the costlier
// mistake.
const adaptiveWriteFactor = 2

// periodicEntry is one RefreshPeriodically registration. view,
// interval, and onErr are immutable after creation; next is owned by
// the wheel goroutine under the scheduler lock.
type periodicEntry struct {
	view     string
	interval time.Duration
	onErr    func(error)
	next     time.Time
}

// everyState is the wheel position of one RefreshEvery view. The
// interval is recorded so a SetViewPolicy that changes the period
// restarts the cycle.
type everyState struct {
	next     time.Time
	interval time.Duration
}

// adaptState is the per-view bookkeeping of the adaptive when-policy:
// the counter values at the last evaluation, so each window compares
// traffic deltas rather than lifetime totals.
type adaptState struct {
	next       time.Time
	lastWrites int64
	lastReads  int64
	primed     bool
}

type scheduler struct {
	e     *Engine
	clock schedClock
	// wake (capacity 1) coalesces pokes; the wheel replans against
	// fresh engine state after each wake.
	wake chan struct{}

	// mu guards lifecycle and the periodic registry. The policy maps
	// (every, adapt) are owned by the wheel goroutine and need no lock.
	mu       sync.Mutex
	running  bool
	stopped  bool
	disabled bool
	done     chan struct{}
	exited   chan struct{}
	periodic map[int]*periodicEntry
	nextID   int

	every map[string]everyState
	adapt map[string]*adaptState
}

func newScheduler(e *Engine) *scheduler {
	return &scheduler{
		e:        e,
		clock:    realClock{e},
		wake:     make(chan struct{}, 1),
		periodic: make(map[int]*periodicEntry),
		every:    make(map[string]everyState),
		adapt:    make(map[string]*adaptState),
	}
}

// ensure starts the wheel goroutine on first need; later calls are
// cheap no-ops.
func (s *scheduler) ensure() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLocked()
}

func (s *scheduler) ensureLocked() {
	if s.running || s.stopped {
		return
	}
	s.running = true
	s.done = make(chan struct{})
	s.exited = make(chan struct{})
	go s.run(s.done, s.exited)
}

// poke wakes the wheel so it replans against fresh engine state (a
// commit staged backlog on a MaxStaleness view, a policy changed).
// Nonblocking and lock-free: safe from the commit pipeline.
func (s *scheduler) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// stop terminates the wheel and waits for it to exit; the scheduler
// stays stopped (a closing engine never restarts it). Idempotent.
func (s *scheduler) stop() {
	s.mu.Lock()
	wasStopped := s.stopped
	s.stopped = true
	running := s.running
	done, exited := s.done, s.exited
	s.mu.Unlock()
	if !running {
		return
	}
	if !wasStopped {
		close(done)
	}
	<-exited
}

// disablePolicies turns off policy-driven refreshes (followers: the
// catalog replays the leader's policy DDL, but maintenance arrives
// composed from the stream). Periodic registrations still fire.
func (s *scheduler) disablePolicies() {
	s.mu.Lock()
	s.disabled = true
	s.mu.Unlock()
	s.poke()
}

// addPeriodic registers one RefreshPeriodically caller on the wheel
// and returns its idempotent stop function.
func (s *scheduler) addPeriodic(view string, interval time.Duration, onErr func(error)) (stop func()) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.periodic[id] = &periodicEntry{
		view:     view,
		interval: interval,
		onErr:    onErr,
		next:     s.clock.Now().Add(interval),
	}
	s.ensureLocked()
	s.mu.Unlock()
	s.poke()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.periodic, id)
			s.mu.Unlock()
			s.poke()
		})
	}
}

func (s *scheduler) run(done, exited chan struct{}) {
	defer close(exited)
	for {
		next, ok := s.fireDue()
		var timer <-chan time.Time
		if ok {
			d := next.Sub(s.clock.Now())
			if d < 0 {
				d = 0
			}
			timer = s.clock.After(d)
		}
		select {
		case <-done:
			return
		case <-s.wake:
		case <-timer:
		}
	}
}

// schedAction is one due refresh, gathered first and executed with no
// scheduler lock held (refreshes take the engine lock and fire
// subscriber callbacks, which must be free to call back in).
type schedAction struct {
	view   string
	reason string // metric label: interval | slo | periodic
	onErr  func(error)
}

// fireDue executes everything due now and returns the earliest future
// deadline (ok=false when the wheel has nothing planned and sleeps
// until the next poke).
func (s *scheduler) fireDue() (time.Time, bool) {
	now := s.clock.Now()
	var next time.Time
	earlier := func(t time.Time) {
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}
	var due []schedAction
	var flips []string

	s.mu.Lock()
	disabled := s.disabled
	for _, p := range s.periodic {
		if !p.next.After(now) {
			due = append(due, schedAction{view: p.view, reason: "periodic", onErr: p.onErr})
			p.next = now.Add(p.interval)
		}
		earlier(p.next)
	}
	s.mu.Unlock()

	if !disabled {
		snap := s.e.currentSnapshot()
		seen := make(map[string]bool)
		for name, sv := range snap.views {
			spec := sv.cfg.When
			if spec.scheduled() {
				seen[name] = true
			}
			switch spec.Kind {
			case RefreshEvery:
				if spec.Interval <= 0 {
					continue
				}
				st, ok := s.every[name]
				if !ok || st.interval != spec.Interval {
					st = everyState{next: now.Add(spec.Interval), interval: spec.Interval}
				}
				if !st.next.After(now) {
					due = append(due, schedAction{view: name, reason: "interval"})
					st.next = now.Add(spec.Interval)
				}
				s.every[name] = st
				earlier(st.next)
			case RefreshMaxStaleness:
				if spec.Bound <= 0 || sv.pendingSince.IsZero() {
					continue
				}
				deadline := sv.pendingSince.Add(spec.Bound * sloHeadroomNum / sloHeadroomDen)
				if !deadline.After(now) {
					due = append(due, schedAction{view: name, reason: "slo"})
					// Recheck shortly in case the refresh fails and the
					// backlog survives; a successful refresh clears
					// pendingSince and the recheck is a no-op.
					retry := spec.Bound / 5
					if retry <= 0 {
						retry = time.Millisecond
					}
					earlier(now.Add(retry))
				} else {
					earlier(deadline)
				}
			case RefreshAdaptive:
				ast := s.adapt[name]
				if ast == nil {
					ast = &adaptState{next: now.Add(adaptiveEvalEvery)}
					s.adapt[name] = ast
				}
				if !ast.next.After(now) {
					flips = append(flips, name)
					ast.next = now.Add(adaptiveEvalEvery)
				}
				earlier(ast.next)
			}
		}
		for name := range s.every {
			if !seen[name] {
				delete(s.every, name)
			}
		}
		for name := range s.adapt {
			if !seen[name] {
				delete(s.adapt, name)
			}
		}
	}

	for _, a := range due {
		err := s.e.RefreshView(a.view)
		if o := s.e.o.Load(); o != nil {
			o.reg.Counter("mview_policy_refreshes_total",
				"Scheduler-driven view refreshes by reason.",
				obs.Labels{"reason": a.reason}).Add(1)
		}
		if err != nil && a.onErr != nil {
			a.onErr(err)
		}
	}
	for _, name := range flips {
		s.evalAdaptive(name, s.adapt[name])
	}
	return next, !next.IsZero()
}

// evalAdaptive compares one adaptive view's write and read traffic
// over the window since the last evaluation and flips its commit-time
// Mode when the balance crossed. Flipping back to Immediate drains the
// accumulated backlog under the same lock hold, so a commit can never
// observe an immediate view with stale data.
func (s *scheduler) evalAdaptive(name string, ast *adaptState) {
	e := s.e
	e.mu.Lock()
	st, ok := e.views[name]
	if !ok || st.cfg.When.Kind != RefreshAdaptive {
		e.mu.Unlock()
		return
	}
	w, r := int64(st.stats.Transactions), st.reads.Load()
	dw, dr := w-ast.lastWrites, r-ast.lastReads
	ast.lastWrites, ast.lastReads = w, r
	if !ast.primed {
		// First window: counters just baselined, no traffic observed yet.
		ast.primed = true
		e.mu.Unlock()
		return
	}
	var ns []notification
	switch {
	case st.cfg.Mode == Immediate && dw > adaptiveWriteFactor*dr:
		st.cfg.Mode = Deferred
		st.snapDirty = true
		e.publishLocked()
	case st.cfg.Mode == Deferred && dr >= dw && dr > 0:
		j, err := e.buildRefreshJob(st)
		if err == nil && j != nil {
			j.run()
			ns, err = e.installRefreshJob(j)
		}
		if err != nil {
			e.mu.Unlock() // stay deferred; retried next window
			return
		}
		st.cfg.Mode = Immediate
		st.snapDirty = true
		e.publishLocked()
	default:
		e.mu.Unlock()
		return
	}
	if o := e.o.Load(); o != nil {
		mode := "immediate"
		if st.cfg.Mode == Deferred {
			mode = "deferred"
		}
		o.reg.Counter("mview_policy_adaptive_flips_total",
			"Adaptive when-policy mode flips, labeled by the mode flipped to.",
			obs.Labels{"view": name, "to": mode}).Add(1)
	}
	e.mu.Unlock()
	fire(ns)
}
