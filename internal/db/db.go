// Package db assembles the substrates into a small main-memory
// database engine with incrementally maintained materialized views:
// a catalog of base relations, SPJ view definitions, transaction
// execution, and view refresh in the two regimes the paper discusses —
// immediate maintenance as the last step of each transaction (§5), and
// deferred "snapshot refresh" (§6) in which net changes accumulate and
// the view is brought up to date on demand.
//
// Each view can also be pinned to full re-evaluation instead of
// differential maintenance, which is the paper's baseline and the
// engine's comparison point.
package db

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/irrelevance"
	"mview/internal/obs"
	"mview/internal/pred"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

// RefreshMode says when a view is brought up to date.
type RefreshMode uint8

const (
	// Immediate refreshes the view as part of every transaction commit
	// ("the differential update mechanism is invoked as the last
	// operation within the transaction", §5).
	Immediate RefreshMode = iota
	// Deferred accumulates net changes and refreshes only when
	// RefreshView is called — the snapshot regime of §6.
	Deferred
)

// Policy says how a view is brought up to date.
type Policy uint8

const (
	// PolicyDifferential uses §5's differential re-evaluation.
	PolicyDifferential Policy = iota
	// PolicyRecompute re-evaluates the defining expression from
	// scratch on every refresh — the paper's baseline.
	PolicyRecompute
	// PolicyAdaptive chooses per refresh: differential while the
	// accumulated delta is a small fraction of the base relations,
	// full re-evaluation once it grows past AdaptiveThreshold. This
	// realizes the paper's closing research question — "determine
	// under what circumstances differential re-evaluation is more
	// efficient than complete re-evaluation" — as a simple
	// size-ratio cost model.
	PolicyAdaptive
)

// DefaultAdaptiveThreshold is the delta-to-base size ratio above which
// PolicyAdaptive switches to full re-evaluation.
const DefaultAdaptiveThreshold = 0.25

// ViewConfig configures one materialized view.
type ViewConfig struct {
	Mode    RefreshMode
	Policy  Policy
	Maint   diffeval.Options // differential maintenance options
	EvalOpt eval.Options     // options for full (re-)evaluation
	// AdaptiveThreshold tunes PolicyAdaptive (0 means
	// DefaultAdaptiveThreshold).
	AdaptiveThreshold float64
}

// ViewStats accumulates maintenance counters for one view.
type ViewStats struct {
	Transactions  int // transactions whose updates reached this view
	Refreshes     int // differential refreshes performed
	Recomputes    int // full re-evaluations performed
	RowsEvaluated int // truth-table rows completed (differential)
	JoinSteps     int // join pipeline steps executed (differential)
	FilteredOut   int // update tuples discarded by the §4 filter
	DeltaInserts  int // view tuples inserted by deltas
	DeltaDeletes  int // view tuples deleted by deltas
	PendingTx     int // transactions awaiting a deferred refresh
}

type viewState struct {
	name    string
	bound   *expr.Bound
	cfg     ViewConfig
	maint   *diffeval.Maintainer
	data    *relation.Counted
	pending map[string]delta.Update // composed net updates since last refresh
	stats   ViewStats
	vo      *viewObs // per-view metric handles; nil when obs is off
	// checkers caches one §4 irrelevance checker per operand for the
	// Relevant API (built lazily; the Prepare step is O(n³) per
	// conjunct and must not run per call).
	checkers []*irrelevance.Checker
	// subscribers receive the view's deltas after each refresh — the
	// alerter mechanism of Buneman & Clemons that §1–2 cite as a
	// motivating application: the §4 filter suppresses wake-ups for
	// irrelevant updates, and the differential delta is exactly the
	// alert payload.
	subscribers map[int]Subscriber
	nextSubID   int
}

// Subscriber receives a view's change sets after a refresh touches the
// view. Inserts and deletes are owned by the subscriber. Callbacks run
// synchronously after the commit or refresh completes, with no engine
// lock held, so they may read the engine; they should not write to it.
type Subscriber func(view string, inserts, deletes *relation.Counted)

// notification is a queued subscriber callback, fired after the engine
// lock is released.
type notification struct {
	sub      Subscriber
	view     string
	ins, del *relation.Counted
}

func (st *viewState) notifications(view string, ins, del *relation.Counted) []notification {
	if len(st.subscribers) == 0 || (ins.Len() == 0 && del.Len() == 0) {
		return nil
	}
	ids := make([]int, 0, len(st.subscribers))
	for id := range st.subscribers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]notification, 0, len(ids))
	for _, id := range ids {
		out = append(out, notification{sub: st.subscribers[id], view: view, ins: ins, del: del})
	}
	if st.vo != nil {
		st.vo.notifications.Add(int64(len(out)))
	}
	return out
}

func fire(ns []notification) {
	for _, n := range ns {
		n.sub(n.view, n.ins, n.del)
	}
}

// countedDiff computes the insert and delete sets between two view
// states (used to notify subscribers when a refresh recomputed the
// view instead of producing a differential delta).
func countedDiff(old, new *relation.Counted) (ins, del *relation.Counted) {
	ins, del = relation.NewCounted(new.Scheme()), relation.NewCounted(old.Scheme())
	new.Each(func(t tuple.Tuple, n int64) {
		if diff := n - old.Count(t); diff > 0 {
			_ = ins.Add(t, diff)
		}
	})
	old.Each(func(t tuple.Tuple, n int64) {
		if diff := n - new.Count(t); diff > 0 {
			_ = del.Add(t, diff)
		}
	})
	return ins, del
}

func (st *viewState) checker(opIdx int) (*irrelevance.Checker, error) {
	if st.checkers == nil {
		st.checkers = make([]*irrelevance.Checker, len(st.bound.Operands))
	}
	if st.checkers[opIdx] == nil {
		c, err := irrelevance.NewChecker(st.bound, opIdx, st.cfg.Maint.FilterOptions)
		if err != nil {
			return nil, err
		}
		st.checkers[opIdx] = c
	}
	return st.checkers[opIdx], nil
}

// Engine is a main-memory database with materialized views. All
// methods are safe for concurrent use; writes are serialized.
type Engine struct {
	mu        sync.RWMutex
	scheme    *schema.Database
	base      map[string]*relation.Relation
	views     map[string]*viewState
	viewOrder []string
	// indexes holds persistent single-column hash indexes over base
	// relations, created on the equi-join columns of each view and
	// maintained incrementally at commit. Differential maintenance
	// probes them so per-transaction work scales with the delta.
	indexes map[string]map[int]*relation.Index
	// o carries the attached observability sinks (SetObs). Atomic so
	// the commit hot path can check it without taking the engine lock;
	// nil means instrumentation is off and costs one pointer load.
	o atomic.Pointer[engineObs]
}

// engineObs bundles the engine-wide metric handles, resolved once at
// SetObs so hot paths never take the registry lock. Per-view handles
// live on viewState.vo.
type engineObs struct {
	reg           *obs.Registry
	tr            obs.Tracer
	commits       *obs.Counter
	commitSeconds *obs.Histogram
}

// viewObs holds one view's metric handles. All fields are created
// eagerly except the per-decision refresh histograms, which are cached
// on first use (callers hold the engine lock).
type viewObs struct {
	reg           *obs.Registry
	view          string
	refresh       map[string]*obs.Histogram // decision → latency
	filterOut     *obs.Counter
	filterPass    *obs.Counter
	pending       *obs.Gauge
	rows          *obs.Counter
	joinSteps     *obs.Counter
	notifications *obs.Counter
}

func newViewObs(reg *obs.Registry, view string) *viewObs {
	l := obs.Labels{"view": view}
	return &viewObs{
		reg:     reg,
		view:    view,
		refresh: make(map[string]*obs.Histogram, 4),
		filterOut: reg.Counter("mview_filter_discarded_total",
			"Update tuples discarded by the §4 irrelevance filter.", l),
		filterPass: reg.Counter("mview_filter_passed_total",
			"Update tuples checked by the §4 irrelevance filter and kept.", l),
		pending: reg.Gauge("mview_view_pending_tx",
			"Transactions queued for a deferred (§6) refresh.", l),
		rows: reg.Counter("mview_diffeval_rows_total",
			"Truth-table rows completed by differential maintenance (§5.3).", l),
		joinSteps: reg.Counter("mview_diffeval_join_steps_total",
			"Join steps executed by differential maintenance.", l),
		notifications: reg.Counter("mview_subscriber_notifications_total",
			"Subscriber callbacks fanned out after refreshes.", l),
	}
}

// refreshHist returns the refresh-latency histogram for one
// maintenance decision. Callers hold the engine lock.
func (v *viewObs) refreshHist(decision string) *obs.Histogram {
	h := v.refresh[decision]
	if h == nil {
		h = v.reg.Histogram("mview_view_refresh_seconds",
			"View refresh latency by maintenance decision.", nil,
			obs.Labels{"view": v.view, "decision": decision})
		v.refresh[decision] = h
	}
	return h
}

// decisionLabel names the refresh decision for metrics: what ran
// (differential or recompute) and whether the adaptive cost model
// chose it.
func decisionLabel(cfg ViewConfig, chosen Policy) string {
	s := "differential"
	if chosen == PolicyRecompute {
		s = "recompute"
	}
	if cfg.Policy == PolicyAdaptive {
		return "adaptive_" + s
	}
	return s
}

// SetObs attaches a metrics registry and an optional tracer to the
// engine (either may be nil; both nil detaches). Existing and future
// views get per-view series; the differential maintainers forward
// spans and per-operand delta events to the tracer. With obs detached
// the commit path costs a single atomic pointer load.
func (e *Engine) SetObs(reg *obs.Registry, tr obs.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if reg == nil && tr == nil {
		e.o.Store(nil)
		for _, name := range e.viewOrder {
			e.views[name].vo = nil
			e.views[name].maint.Tracer = nil
		}
		return
	}
	o := &engineObs{
		reg: reg,
		tr:  tr,
		commits: reg.Counter("mview_commits_total",
			"Transactions committed.", nil),
		commitSeconds: reg.Histogram("mview_commit_seconds",
			"End-to-end transaction commit latency (net effects, immediate view refresh, index upkeep).", nil, nil),
	}
	e.o.Store(o)
	for _, name := range e.viewOrder {
		st := e.views[name]
		st.vo = newViewObs(reg, name)
		st.maint.Tracer = tr
	}
}

// New returns an empty engine.
func New() *Engine {
	db, err := schema.NewDatabase()
	if err != nil {
		panic(err) // unreachable: empty database scheme is valid
	}
	return &Engine{
		scheme:  db,
		base:    make(map[string]*relation.Relation),
		views:   make(map[string]*viewState),
		indexes: make(map[string]map[int]*relation.Index),
	}
}

// provider adapts the engine's index map to diffeval.IndexProvider.
// Methods are called with the engine lock already held.
type provider struct{ e *Engine }

// Index returns the persistent index of rel on base column pos.
func (p provider) Index(rel string, pos int) *relation.Index {
	return p.e.indexes[rel][pos]
}

// ensureIndexes creates any missing indexes on the equi-join columns
// of the bound view's condition. Callers hold the engine lock.
func (e *Engine) ensureIndexes(b *expr.Bound) error {
	ensure := func(v pred.Var) error {
		ops := b.OperandsOf(v)
		if len(ops) != 1 {
			return nil
		}
		op := b.Operands[ops[0]]
		pos, ok := op.QScheme.Pos(schema.Attribute(v))
		if !ok {
			return nil
		}
		if e.indexes[op.Rel] == nil {
			e.indexes[op.Rel] = make(map[int]*relation.Index)
		}
		if e.indexes[op.Rel][pos] != nil {
			return nil
		}
		ix, err := relation.BuildIndex(e.base[op.Rel], pos)
		if err != nil {
			return err
		}
		e.indexes[op.Rel][pos] = ix
		return nil
	}
	for _, conj := range b.Where.Conjuncts {
		for _, a := range conj.Atoms {
			if a.Op != pred.OpEQ || !a.HasRightVar() || a.C != 0 {
				continue
			}
			if err := ensure(a.Left); err != nil {
				return err
			}
			if err := ensure(a.Right); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyToIndexes folds one base update into the relation's indexes.
// Callers hold the engine lock.
func (e *Engine) applyToIndexes(u delta.Update) {
	for _, ix := range e.indexes[u.Rel] {
		if u.Deletes != nil {
			u.Deletes.Each(ix.Remove)
		}
		if u.Inserts != nil {
			u.Inserts.Each(func(t tuple.Tuple) { ix.Add(t.Clone()) })
		}
	}
}

// CreateRelation adds a base relation with the given attributes.
func (e *Engine) CreateRelation(name string, attrs ...schema.Attribute) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.views[name]; dup {
		return fmt.Errorf("db: name %q already names a view", name)
	}
	s, err := schema.NewScheme(attrs...)
	if err != nil {
		return err
	}
	rs := &schema.RelScheme{Name: name, Scheme: s}
	if err := e.scheme.Add(rs); err != nil {
		return err
	}
	e.base[name] = relation.New(s)
	return nil
}

// Scheme exposes the database scheme (for binding ad-hoc expressions).
func (e *Engine) Scheme() *schema.Database {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.scheme
}

// Relations returns the base relation names in creation order.
func (e *Engine) Relations() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.scheme.Names()
}

// Views returns the view names in creation order.
func (e *Engine) Views() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, len(e.viewOrder))
	copy(out, e.viewOrder)
	return out
}

// Relation returns a snapshot (clone) of a base relation.
func (e *Engine) Relation(name string) (*relation.Relation, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.base[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown relation %q", name)
	}
	return r.Clone(), nil
}

// CreateView defines and immediately materializes a view.
func (e *Engine) CreateView(v expr.View, cfg ViewConfig) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.views[v.Name]; dup {
		return fmt.Errorf("db: duplicate view %q", v.Name)
	}
	if _, clash := e.base[v.Name]; clash {
		return fmt.Errorf("db: name %q already names a base relation", v.Name)
	}
	bound, err := expr.Bind(v, e.scheme)
	if err != nil {
		return err
	}
	maint, err := diffeval.NewMaintainer(bound, cfg.Maint)
	if err != nil {
		return err
	}
	if err := e.ensureIndexes(bound); err != nil {
		return err
	}
	data, err := eval.Materialize(bound, e.operandInstances(bound), cfg.EvalOpt)
	if err != nil {
		return err
	}
	st := &viewState{
		name:    v.Name,
		bound:   bound,
		cfg:     cfg,
		maint:   maint,
		data:    data,
		pending: make(map[string]delta.Update),
	}
	if o := e.o.Load(); o != nil {
		st.vo = newViewObs(o.reg, v.Name)
		maint.Tracer = o.tr
	}
	e.views[v.Name] = st
	e.viewOrder = append(e.viewOrder, v.Name)
	return nil
}

// DropView removes a view.
func (e *Engine) DropView(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.views[name]; !ok {
		return fmt.Errorf("db: unknown view %q", name)
	}
	delete(e.views, name)
	for i, n := range e.viewOrder {
		if n == name {
			e.viewOrder = append(e.viewOrder[:i], e.viewOrder[i+1:]...)
			break
		}
	}
	return nil
}

// View returns a snapshot (clone) of a view's current materialization.
// For deferred views this may lag the base relations; call RefreshView
// first for an up-to-date answer.
func (e *Engine) View(name string) (*relation.Counted, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.views[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	return st.data.Clone(), nil
}

// ViewStats returns a view's maintenance counters.
func (e *Engine) ViewStats(name string) (ViewStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.views[name]
	if !ok {
		return ViewStats{}, fmt.Errorf("db: unknown view %q", name)
	}
	return st.stats, nil
}

// ViewDef returns the bound definition of a view.
func (e *Engine) ViewDef(name string) (*expr.Bound, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.views[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	return st.bound, nil
}

// operandInstances gathers the live base instances for a bound view.
// Callers hold the engine lock.
func (e *Engine) operandInstances(b *expr.Bound) []*relation.Relation {
	insts := make([]*relation.Relation, len(b.Operands))
	for i, op := range b.Operands {
		insts[i] = e.base[op.Rel]
	}
	return insts
}

// TxResult summarizes one committed transaction.
type TxResult struct {
	Updates        []delta.Update // net effects applied to base relations
	ViewsRefreshed int            // immediate views brought up to date
	ViewsDeferred  int            // deferred views that queued changes
}

// Execute atomically applies a transaction: net effects are computed
// against the pre-state, immediate views are differentially refreshed
// as the last step of the commit, and deferred views accumulate the
// composed net change for a later refresh.
func (e *Engine) Execute(tx *delta.Tx) (TxResult, error) {
	o := e.o.Load()
	var t0 time.Time
	var span obs.Span
	if o != nil {
		t0 = time.Now()
		if o.tr != nil {
			span = o.tr.Start("db.commit")
		}
	}
	res, ns, err := e.executeLocked(tx)
	if o != nil {
		if err == nil {
			o.commits.Inc()
			o.commitSeconds.ObserveDuration(time.Since(t0))
		}
		if span != nil {
			span.End(obs.KV{K: "updates", V: len(res.Updates)},
				obs.KV{K: "views_refreshed", V: res.ViewsRefreshed},
				obs.KV{K: "views_deferred", V: res.ViewsDeferred},
				obs.KV{K: "err", V: err != nil})
		}
	}
	if err != nil {
		return TxResult{}, err
	}
	fire(ns)
	return res, nil
}

func (e *Engine) executeLocked(tx *delta.Tx) (TxResult, []notification, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	updates, err := tx.Net(func(name string) (*relation.Relation, bool) {
		r, ok := e.base[name]
		return r, ok
	})
	if err != nil {
		return TxResult{}, nil, err
	}
	res := TxResult{Updates: updates}
	if len(updates) == 0 {
		return res, nil, nil
	}
	touched := make(map[string]bool, len(updates))
	for _, u := range updates {
		touched[u.Rel] = true
	}

	// Phase 1: compute deltas for immediate differential views against
	// the pre-state (nothing applied yet, so a failure leaves the
	// engine untouched).
	type refreshed struct {
		st         *viewState
		d          *diffeval.ViewDelta
		vc         *relation.Counted // recompute result (PolicyRecompute)
		decision   string            // metrics label; "" when obs is off
		computeDur time.Duration     // phase-1 delta computation time
	}
	var work []refreshed
	for _, name := range e.viewOrder {
		st := e.views[name]
		if !e.viewTouched(st, touched) {
			continue
		}
		st.stats.Transactions++
		if st.cfg.Mode == Deferred {
			if err := e.queuePending(st, updates); err != nil {
				return TxResult{}, nil, err
			}
			st.stats.PendingTx++
			if st.vo != nil {
				st.vo.pending.Set(float64(st.stats.PendingTx))
			}
			res.ViewsDeferred++
			continue
		}
		policy := st.cfg.Policy
		if policy == PolicyAdaptive {
			policy = e.chooseAdaptive(st, updates)
		}
		switch policy {
		case PolicyRecompute:
			// Recompute needs the post-state; defer to phase 3.
			work = append(work, refreshed{st: st, decision: decisionLabel(st.cfg, PolicyRecompute)})
		default:
			var t0 time.Time
			if st.vo != nil {
				t0 = time.Now()
			}
			d, err := st.maint.ComputeDeltaWith(e.operandInstances(st.bound), updates, provider{e: e})
			if err != nil {
				return TxResult{}, nil, err
			}
			w := refreshed{st: st, d: d, decision: decisionLabel(st.cfg, PolicyDifferential)}
			if st.vo != nil {
				w.computeDur = time.Since(t0)
			}
			work = append(work, w)
		}
	}

	// Phase 2: apply base updates (and keep the persistent indexes in
	// step with the base relations).
	for _, u := range updates {
		if err := u.Apply(e.base[u.Rel]); err != nil {
			return TxResult{}, nil, err
		}
		e.applyToIndexes(u)
	}

	// Phase 3: fold deltas into the immediate views (and recompute the
	// full-re-evaluation views from the post-state), queueing
	// subscriber notifications to fire after the lock is released.
	var ns []notification
	for _, w := range work {
		name := w.st.name
		var t0 time.Time
		if w.st.vo != nil {
			t0 = time.Now()
		}
		if w.d != nil {
			if err := diffeval.Apply(w.st.data, w.d); err != nil {
				return TxResult{}, nil, err
			}
			w.st.noteDelta(w.d)
			ns = append(ns, w.st.notifications(name, w.d.Inserts, w.d.Deletes)...)
		} else {
			vc, err := eval.Materialize(w.st.bound, e.operandInstances(w.st.bound), w.st.cfg.EvalOpt)
			if err != nil {
				return TxResult{}, nil, err
			}
			if len(w.st.subscribers) > 0 {
				ins, del := countedDiff(w.st.data, vc)
				ns = append(ns, w.st.notifications(name, ins, del)...)
			}
			w.st.data = vc
			w.st.stats.Recomputes++
		}
		if w.st.vo != nil {
			w.st.vo.refreshHist(w.decision).ObserveDuration(w.computeDur + time.Since(t0))
		}
		res.ViewsRefreshed++
	}
	return res, ns, nil
}

func (st *viewState) noteDelta(d *diffeval.ViewDelta) {
	st.stats.Refreshes++
	st.stats.RowsEvaluated += d.Stats.RowsEvaluated
	st.stats.JoinSteps += d.Stats.JoinSteps
	st.stats.FilteredOut += d.Stats.FilteredOut
	st.stats.DeltaInserts += d.Stats.DeltaInserts
	st.stats.DeltaDeletes += d.Stats.DeltaDeletes
	if st.vo != nil {
		st.vo.rows.Add(int64(d.Stats.RowsEvaluated))
		st.vo.joinSteps.Add(int64(d.Stats.JoinSteps))
		st.vo.filterOut.Add(int64(d.Stats.FilteredOut))
		st.vo.filterPass.Add(int64(d.Stats.FilterChecked - d.Stats.FilteredOut))
	}
}

// chooseAdaptive resolves PolicyAdaptive for one refresh: differential
// while the combined delta is a small fraction of the view's base
// relations, full re-evaluation beyond the threshold — the paper's
// closing question ("under what circumstances differential
// re-evaluation is more efficient than complete re-evaluation")
// answered with a size-ratio cost model. Callers hold the engine lock.
func (e *Engine) chooseAdaptive(st *viewState, updates []delta.Update) Policy {
	threshold := st.cfg.AdaptiveThreshold
	if threshold <= 0 {
		threshold = DefaultAdaptiveThreshold
	}
	deltaSize, baseSize := 0, 0
	for _, op := range st.bound.Operands {
		baseSize += e.base[op.Rel].Len()
		for _, u := range updates {
			if u.Rel == op.Rel {
				deltaSize += u.Size()
			}
		}
	}
	if baseSize == 0 || float64(deltaSize) > threshold*float64(baseSize) {
		return PolicyRecompute
	}
	return PolicyDifferential
}

// viewTouched reports whether any operand's relation is in touched.
func (e *Engine) viewTouched(st *viewState, touched map[string]bool) bool {
	for _, op := range st.bound.Operands {
		if touched[op.Rel] {
			return true
		}
	}
	return false
}

// queuePending composes the transaction's updates into the view's
// pending set. Callers hold the engine lock.
func (e *Engine) queuePending(st *viewState, updates []delta.Update) error {
	for _, u := range updates {
		if !e.relUsedBy(st, u.Rel) {
			continue
		}
		prev, ok := st.pending[u.Rel]
		if !ok {
			st.pending[u.Rel] = cloneUpdate(u)
			continue
		}
		comp, err := delta.Compose(prev, u)
		if err != nil {
			return err
		}
		st.pending[u.Rel] = comp
	}
	return nil
}

func (e *Engine) relUsedBy(st *viewState, rel string) bool {
	for _, op := range st.bound.Operands {
		if op.Rel == rel {
			return true
		}
	}
	return false
}

func cloneUpdate(u delta.Update) delta.Update {
	out := delta.Update{Rel: u.Rel}
	if u.Inserts != nil {
		out.Inserts = u.Inserts.Clone()
	}
	if u.Deletes != nil {
		out.Deletes = u.Deletes.Clone()
	}
	return out
}

// RefreshView brings a deferred view up to date with a single
// differential pass over the composed pending updates (or a full
// recompute under PolicyRecompute), clearing the backlog. Refreshing
// an immediate or already-fresh view is a no-op.
func (e *Engine) RefreshView(name string) error {
	var span obs.Span
	if o := e.o.Load(); o != nil && o.tr != nil {
		span = o.tr.Start("db.refresh", obs.KV{K: "view", V: name})
	}
	ns, err := e.refreshLocked(name)
	if span != nil {
		span.End(obs.KV{K: "err", V: err != nil})
	}
	if err != nil {
		return err
	}
	fire(ns)
	return nil
}

func (e *Engine) refreshLocked(name string) ([]notification, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.views[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	if len(st.pending) == 0 {
		return nil, nil
	}
	var t0 time.Time
	if st.vo != nil {
		t0 = time.Now()
	}
	policy := st.cfg.Policy
	if policy == PolicyAdaptive {
		pend := make([]delta.Update, 0, len(st.pending))
		for _, u := range st.pending {
			pend = append(pend, u)
		}
		policy = e.chooseAdaptive(st, pend)
	}
	if policy == PolicyRecompute {
		vc, err := eval.Materialize(st.bound, e.operandInstances(st.bound), st.cfg.EvalOpt)
		if err != nil {
			return nil, err
		}
		var ns []notification
		if len(st.subscribers) > 0 {
			ins, del := countedDiff(st.data, vc)
			ns = st.notifications(name, ins, del)
		}
		st.data = vc
		st.stats.Recomputes++
		st.pending = make(map[string]delta.Update)
		st.stats.PendingTx = 0
		if st.vo != nil {
			st.vo.pending.Set(0)
			st.vo.refreshHist(decisionLabel(st.cfg, PolicyRecompute)).ObserveDuration(time.Since(t0))
		}
		return ns, nil
	}

	// Reconstruct the pre-refresh state of each touched operand:
	// B0 = B_now − I ∪ D.
	insts := make([]*relation.Relation, len(st.bound.Operands))
	var updates []delta.Update
	seen := make(map[string]bool)
	for i, op := range st.bound.Operands {
		u, touched := st.pending[op.Rel]
		if !touched {
			insts[i] = e.base[op.Rel]
			continue
		}
		pre := e.base[op.Rel].Clone()
		if u.Inserts != nil {
			u.Inserts.Each(func(t tuple.Tuple) { pre.Delete(t) })
		}
		if u.Deletes != nil {
			var insErr error
			u.Deletes.Each(func(t tuple.Tuple) {
				if err := pre.Insert(t); err != nil && insErr == nil {
					insErr = err
				}
			})
			if insErr != nil {
				return nil, insErr
			}
		}
		insts[i] = pre
		if !seen[op.Rel] {
			seen[op.Rel] = true
			updates = append(updates, u)
		}
	}
	// No index provider here: the persistent indexes reflect the
	// CURRENT base state, while this delta is computed against the
	// reconstructed pre-refresh state.
	d, err := st.maint.ComputeDelta(insts, updates)
	if err != nil {
		return nil, err
	}
	if err := diffeval.Apply(st.data, d); err != nil {
		return nil, err
	}
	st.noteDelta(d)
	st.pending = make(map[string]delta.Update)
	st.stats.PendingTx = 0
	if st.vo != nil {
		st.vo.pending.Set(0)
		st.vo.refreshHist(decisionLabel(st.cfg, PolicyDifferential)).ObserveDuration(time.Since(t0))
	}
	return st.notifications(name, d.Inserts, d.Deletes), nil
}

// RefreshAll refreshes every deferred view, in name order.
func (e *Engine) RefreshAll() error {
	for _, name := range e.sortedViewNames() {
		if err := e.RefreshView(name); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) sortedViewNames() []string {
	e.mu.RLock()
	names := make([]string, len(e.viewOrder))
	copy(names, e.viewOrder)
	e.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Relevant applies Theorem 4.1: it reports whether inserting or
// deleting tuple t in base relation rel could affect the named view in
// ANY database state. The per-operand checkers (including their O(n³)
// invariant-graph preparation) are cached on the view.
func (e *Engine) Relevant(view, rel string, t tuple.Tuple) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.views[view]
	if !ok {
		return false, fmt.Errorf("db: unknown view %q", view)
	}
	found := false
	for i, op := range st.bound.Operands {
		if op.Rel != rel {
			continue
		}
		found = true
		c, err := st.checker(i)
		if err != nil {
			return false, err
		}
		relevant, err := c.Relevant(t)
		if err != nil {
			return false, err
		}
		if relevant {
			return true, nil
		}
	}
	if !found {
		return false, fmt.Errorf("db: view %q does not reference relation %q", view, rel)
	}
	return false, nil
}

// Explain describes how a view is defined and maintained: operands,
// condition, projection, refresh mode and policy, strategy, and the
// persistent indexes its equi-join columns can probe.
func (e *Engine) Explain(name string) (string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.views[name]
	if !ok {
		return "", fmt.Errorf("db: unknown view %q", name)
	}
	var sb strings.Builder
	b := st.bound
	fmt.Fprintf(&sb, "view %s\n", name)
	fmt.Fprintf(&sb, "  operands:\n")
	for _, op := range b.Operands {
		fmt.Fprintf(&sb, "    %s = %s%s  (%d tuples)\n", op.Alias, op.Rel, op.Scheme, e.base[op.Rel].Len())
	}
	fmt.Fprintf(&sb, "  where:   %s\n", b.Where)
	proj := make([]string, len(b.Project))
	for i, a := range b.Project {
		proj[i] = string(a)
	}
	fmt.Fprintf(&sb, "  select:  %s\n", strings.Join(proj, ", "))
	mode := "immediate (refreshed at commit)"
	if st.cfg.Mode == Deferred {
		mode = "deferred (snapshot refresh, §6)"
	}
	fmt.Fprintf(&sb, "  refresh: %s\n", mode)
	policy := "differential (§5, Algorithm 5.1)"
	switch st.cfg.Policy {
	case PolicyRecompute:
		policy = "complete re-evaluation"
	case PolicyAdaptive:
		threshold := st.cfg.AdaptiveThreshold
		if threshold <= 0 {
			threshold = DefaultAdaptiveThreshold
		}
		policy = fmt.Sprintf("adaptive (differential while |δ| ≤ %.0f%% of base)", 100*threshold)
	}
	fmt.Fprintf(&sb, "  policy:  %s\n", policy)
	strategy := "auto (indexed delta joins when indexes exist, else prefix-sharing rows)"
	switch st.cfg.Maint.Strategy {
	case diffeval.StrategyPrefixShare:
		strategy = "prefix-sharing truth-table rows"
	case diffeval.StrategyRowByRow:
		strategy = "row-by-row (no prefix sharing)"
	case diffeval.StrategyRowByRowGreedy:
		strategy = "row-by-row with greedy join order"
	case diffeval.StrategyIndexedDelta:
		strategy = "indexed delta joins"
	}
	fmt.Fprintf(&sb, "  rows:    %s\n", strategy)
	fmt.Fprintf(&sb, "  filter:  §4 irrelevance pre-filter %s\n", onOff(st.cfg.Maint.Filter))
	var idx []string
	for _, op := range b.Operands {
		for pos := 0; pos < op.Scheme.Arity(); pos++ {
			if e.indexes[op.Rel][pos] != nil {
				idx = append(idx, fmt.Sprintf("%s.%s", op.Rel, op.Scheme.Attr(pos)))
			}
		}
	}
	sort.Strings(idx)
	idx = dedupeSorted(idx)
	if len(idx) == 0 {
		fmt.Fprintf(&sb, "  indexes: none\n")
	} else {
		fmt.Fprintf(&sb, "  indexes: %s\n", strings.Join(idx, ", "))
	}
	return sb.String(), nil
}

func onOff(b bool) string {
	if b {
		return "ON"
	}
	return "OFF"
}

func dedupeSorted(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// Subscribe registers an alerter on a view (the Buneman–Clemons
// application of §1–2): after every commit or refresh that changes the
// view, the subscriber receives the insert and delete sets. It returns
// a subscription id for Unsubscribe.
func (e *Engine) Subscribe(view string, s Subscriber) (int, error) {
	if s == nil {
		return 0, fmt.Errorf("db: nil subscriber")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.views[view]
	if !ok {
		return 0, fmt.Errorf("db: unknown view %q", view)
	}
	if st.subscribers == nil {
		st.subscribers = make(map[int]Subscriber)
	}
	id := st.nextSubID
	st.nextSubID++
	st.subscribers[id] = s
	return id, nil
}

// Unsubscribe removes a subscription; unknown ids are a no-op.
func (e *Engine) Unsubscribe(view string, id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.views[view]
	if !ok {
		return fmt.Errorf("db: unknown view %q", view)
	}
	delete(st.subscribers, id)
	return nil
}

// RefreshPeriodically refreshes a deferred view on a fixed interval
// until the returned stop function is called — §6's "materialized
// views are updated periodically" regime. Refresh errors terminate the
// loop and are reported through the optional onErr callback.
func (e *Engine) RefreshPeriodically(name string, interval time.Duration, onErr func(error)) (stop func(), err error) {
	e.mu.RLock()
	_, ok := e.views[name]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("db: non-positive refresh interval %v", interval)
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := e.RefreshView(name); err != nil {
					if onErr != nil {
						onErr(err)
					}
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }, nil
}

// Query evaluates an ad-hoc SPJ expression against the current base
// relations without materializing it.
func (e *Engine) Query(v expr.View, opts eval.Options) (*relation.Counted, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	bound, err := expr.Bind(v, e.scheme)
	if err != nil {
		return nil, err
	}
	return eval.Materialize(bound, e.operandInstances(bound), opts)
}
