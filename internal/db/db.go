// Package db assembles the substrates into a small main-memory
// database engine with incrementally maintained materialized views:
// a catalog of base relations, SPJ view definitions, transaction
// execution, and view refresh in the two regimes the paper discusses —
// immediate maintenance as the last step of each transaction (§5), and
// deferred "snapshot refresh" (§6) in which net changes accumulate and
// the view is brought up to date on demand.
//
// Each view can also be pinned to full re-evaluation instead of
// differential maintenance, which is the paper's baseline and the
// engine's comparison point.
package db

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/obs"
	"mview/internal/pred"
	"mview/internal/relation"
	"mview/internal/satgraph"
	"mview/internal/schema"
	"mview/internal/tuple"
)

// RefreshMode says when a view is brought up to date.
type RefreshMode uint8

const (
	// Immediate refreshes the view as part of every transaction commit
	// ("the differential update mechanism is invoked as the last
	// operation within the transaction", §5).
	Immediate RefreshMode = iota
	// Deferred accumulates net changes and refreshes only when
	// RefreshView is called — the snapshot regime of §6.
	Deferred
)

// Policy says how a view is brought up to date.
type Policy uint8

const (
	// PolicyDifferential uses §5's differential re-evaluation.
	PolicyDifferential Policy = iota
	// PolicyRecompute re-evaluates the defining expression from
	// scratch on every refresh — the paper's baseline.
	PolicyRecompute
	// PolicyAdaptive chooses per refresh: differential while the
	// accumulated delta is a small fraction of the base relations,
	// full re-evaluation once it grows past AdaptiveThreshold. This
	// realizes the paper's closing research question — "determine
	// under what circumstances differential re-evaluation is more
	// efficient than complete re-evaluation" — as a simple
	// size-ratio cost model.
	PolicyAdaptive
)

// DefaultAdaptiveThreshold is the delta-to-base size ratio above which
// PolicyAdaptive switches to full re-evaluation.
const DefaultAdaptiveThreshold = 0.25

// RefreshKind names a when-policy: the schedule on which a view's
// maintenance runs. It is the third axis next to RefreshMode (the
// commit-time mechanism the pipeline consults) and Policy (how a
// refresh computes) — every kind resolves to a Mode via RefreshSpec
// and, for the scheduled kinds, registers the view with the engine's
// refresh scheduler (scheduler.go).
type RefreshKind uint8

const (
	// RefreshOnCommit maintains the view inside every commit (§5) —
	// always fresh, full maintenance cost on the write path.
	RefreshOnCommit RefreshKind = iota
	// RefreshOnDemand defers all maintenance to explicit RefreshView
	// calls — the §6 snapshot regime with no schedule at all.
	RefreshOnDemand
	// RefreshEvery defers maintenance and refreshes on a fixed
	// interval driven by the engine's scheduler.
	RefreshEvery
	// RefreshMaxStaleness defers maintenance under a staleness SLO:
	// the scheduler refreshes proactively before the age of the oldest
	// unapplied change reaches the bound.
	RefreshMaxStaleness
	// RefreshAdaptive lets the engine flip the view between on-commit
	// and on-demand from the measured write/read ratio: read-heavy
	// views pay maintenance on the write path to serve fresh reads,
	// write-heavy views shed it into a backlog.
	RefreshAdaptive
)

// RefreshSpec is a complete when-policy: the kind plus its parameter.
type RefreshSpec struct {
	Kind     RefreshKind
	Interval time.Duration // RefreshEvery: the period
	Bound    time.Duration // RefreshMaxStaleness: the SLO bound
}

// mode derives the commit-time refresh mode the pipeline consults.
// RefreshAdaptive starts Immediate (fresh until the workload proves
// write-heavy); the scheduler flips Mode at runtime without touching
// Kind.
func (s RefreshSpec) mode() RefreshMode {
	switch s.Kind {
	case RefreshOnCommit, RefreshAdaptive:
		return Immediate
	default:
		return Deferred
	}
}

// scheduled reports whether the kind needs the engine scheduler.
func (s RefreshSpec) scheduled() bool {
	switch s.Kind {
	case RefreshEvery, RefreshMaxStaleness, RefreshAdaptive:
		return true
	}
	return false
}

// String renders the spec in the stable option-name syntax that
// round-trips through the catalog parsers (oncommit, ondemand,
// every=1s, maxstale=500ms, autopolicy).
func (s RefreshSpec) String() string {
	switch s.Kind {
	case RefreshOnDemand:
		return "ondemand"
	case RefreshEvery:
		return "every=" + s.Interval.String()
	case RefreshMaxStaleness:
		return "maxstale=" + s.Bound.String()
	case RefreshAdaptive:
		return "autopolicy"
	default:
		return "oncommit"
	}
}

// ViewConfig configures one materialized view.
type ViewConfig struct {
	Mode    RefreshMode
	Policy  Policy
	Maint   diffeval.Options // differential maintenance options
	EvalOpt eval.Options     // options for full (re-)evaluation
	// AdaptiveThreshold tunes PolicyAdaptive (0 means
	// DefaultAdaptiveThreshold).
	AdaptiveThreshold float64
	// When is the view's refresh policy — when maintenance runs, as
	// opposed to Policy's how. CreateView keeps Mode consistent with
	// it (normalizeWhen), so legacy callers that set Mode directly
	// keep working.
	When RefreshSpec
}

// normalizeWhen reconciles the legacy Mode field with the when-policy:
// a directly-set Deferred mode under the default on-commit spec means
// the caller used the old API, so it maps to on-demand; otherwise the
// spec is authoritative and Mode is derived from it.
func (c *ViewConfig) normalizeWhen() {
	if c.Mode == Deferred && c.When.Kind == RefreshOnCommit {
		c.When.Kind = RefreshOnDemand
	}
	c.Mode = c.When.mode()
}

// ViewStats accumulates maintenance counters for one view.
type ViewStats struct {
	Transactions  int // transactions whose updates reached this view
	Refreshes     int // differential refreshes performed
	Recomputes    int // full re-evaluations performed
	RowsEvaluated int // truth-table rows completed (differential)
	JoinSteps     int // join pipeline steps executed (differential)
	FilteredOut   int // update tuples discarded by the §4 filter
	DeltaInserts  int // view tuples inserted by deltas
	DeltaDeletes  int // view tuples deleted by deltas
	PendingTx     int // transactions awaiting a deferred refresh
	// Shard fan-out counters (shard.go). ShardTasks counts per-shard
	// maintenance tasks executed on the pool (0 when a refresh ran as
	// one unsharded task); ShardsPruned counts shard sub-deltas skipped
	// entirely by the §4 key-range test.
	ShardTasks   int
	ShardsPruned int
}

type viewState struct {
	name    string
	bound   *expr.Bound
	cfg     ViewConfig
	maint   *diffeval.Maintainer
	data    *relation.Counted
	pending map[string]delta.Update // composed net updates since last refresh
	stats   ViewStats
	vo      *viewObs // per-view metric handles; nil when obs is off
	// ck caches the §4 irrelevance checkers for the Relevant API; it is
	// shared with every published snapshot of the view (see snapshot.go).
	ck *checkerCache
	// dataShared marks data as referenced by a published snapshot:
	// maintenance must clone it before the next in-place mutation
	// (copy-on-write). snapDirty marks any change — data, stats, or
	// backlog — since the last publish; a clean view's snapView is
	// carried into the next snapshot as a single pointer.
	dataShared bool
	snapDirty  bool
	// pendingSince is when the view's oldest unapplied change was
	// staged: set on the 0→nonzero backlog transition, cleared by
	// refresh. Its age is the view's staleness (Staleness, trace.go).
	// lastMaint records the most recent maintenance's actual stage
	// timings, for ExplainAnalyze. Both are guarded by mu and copied
	// into the view's snapView at publish.
	pendingSince time.Time
	lastMaint    maintRecord
	// reads counts snapshot reads of this view since creation. The
	// pointer is shared with every published snapView so the lock-free
	// read path can bump it; the scheduler's adaptive when-policy
	// compares its growth against write traffic to flip Mode.
	reads *atomic.Int64
	// subscribers receive the view's deltas after each refresh — the
	// alerter mechanism of Buneman & Clemons that §1–2 cite as a
	// motivating application: the §4 filter suppresses wake-ups for
	// irrelevant updates, and the differential delta is exactly the
	// alert payload.
	subscribers map[int]Subscriber
	nextSubID   int
}

// Subscriber receives a view's change sets after a refresh touches the
// view. Inserts and deletes are owned by the subscriber. Callbacks run
// synchronously after the commit or refresh completes, with no engine
// lock held, so they may read the engine; they should not write to it.
type Subscriber func(view string, inserts, deletes *relation.Counted)

// notification is a queued subscriber callback, fired after the engine
// lock is released.
type notification struct {
	sub      Subscriber
	view     string
	ins, del *relation.Counted
}

func (st *viewState) notifications(view string, ins, del *relation.Counted) []notification {
	if len(st.subscribers) == 0 || (ins.Len() == 0 && del.Len() == 0) {
		return nil
	}
	ids := make([]int, 0, len(st.subscribers))
	for id := range st.subscribers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]notification, 0, len(ids))
	for _, id := range ids {
		out = append(out, notification{sub: st.subscribers[id], view: view, ins: ins, del: del})
	}
	if st.vo != nil {
		st.vo.notifications.Add(int64(len(out)))
	}
	return out
}

func fire(ns []notification) {
	for _, n := range ns {
		n.sub(n.view, n.ins, n.del)
	}
}

// countedDiff computes the insert and delete sets between two view
// states (used to notify subscribers when a refresh recomputed the
// view instead of producing a differential delta).
func countedDiff(old, new *relation.Counted) (ins, del *relation.Counted) {
	ins, del = relation.NewCounted(new.Scheme()), relation.NewCounted(old.Scheme())
	new.Each(func(t tuple.Tuple, n int64) {
		if diff := n - old.Count(t); diff > 0 {
			_ = ins.Add(t, diff)
		}
	})
	old.Each(func(t tuple.Tuple, n int64) {
		if diff := n - new.Count(t); diff > 0 {
			_ = del.Add(t, diff)
		}
	})
	return ins, del
}

// Engine is a main-memory database with materialized views. All
// methods are safe for concurrent use; writes are serialized. Reads
// are served from an immutable copy-on-write snapshot (snapshot.go)
// and never contend with the commit pipeline.
type Engine struct {
	mu        sync.RWMutex
	scheme    *schema.Database
	base      map[string]*relation.Relation
	views     map[string]*viewState
	viewOrder []string
	// indexes holds persistent single-column hash indexes over base
	// relations, created on the equi-join columns of each view and
	// maintained incrementally at commit. Differential maintenance
	// probes them so per-transaction work scales with the delta.
	indexes map[string]map[int]*relation.Index
	// o carries the attached observability sinks (SetObs). Atomic so
	// the commit hot path can check it without taking the engine lock;
	// nil means instrumentation is off and costs one pointer load.
	o atomic.Pointer[engineObs]
	// snap is the published read snapshot (never nil after New);
	// baseShared marks base relations referenced by it, which phase 2
	// must clone before applying updates in place. Guarded by mu for
	// writes; snap is loaded lock-free by every read path.
	snap       atomic.Pointer[Snapshot]
	baseShared map[string]bool
	// maintWorkers bounds the worker pool that runs per-view
	// maintenance concurrently (phase-1 delta computation and
	// recompute staging at commit, deferred refreshes in RefreshAll).
	// 0 means GOMAXPROCS. Guarded by mu.
	maintWorkers int
	// group is the group-commit scheduler (group.go); nil means every
	// Execute commits solo. Atomic so the Execute hot path routes
	// without taking the engine lock.
	group atomic.Pointer[group]
	// shards is the hash-shard count applied to every base relation at
	// creation (shard.go). Engine configuration, immutable after New;
	// <= 1 means monolithic relations.
	shards int
	// ckptDirty tracks, per base relation, which shards changed since
	// the last checkpoint interval started (checkpoint.go). Guarded by
	// mu; commits mark exactly the shards their net delta touched.
	ckptDirty map[string][]bool
	// crit accumulates per-stage commit time for critical-path
	// attribution (trace.go). Lock-free: written by commitTrace.close,
	// read by CriticalPath.
	crit critAccum
	// sched drives the scheduled when-policies — Every intervals,
	// MaxStaleness SLO deadlines, adaptive mode flips, and every
	// RefreshPeriodically registration — off one timer wheel
	// (scheduler.go). Created at New, its goroutine starts lazily.
	sched *scheduler
	// now is the engine's wall clock (staleness stamps and the
	// scheduler's deadlines); tests substitute a fake. Immutable after
	// construction except by same-package tests before first use.
	now func() time.Time
}

// engineObs bundles the engine-wide metric handles, resolved once at
// SetObs so hot paths never take the registry lock. Per-view handles
// live on viewState.vo.
type engineObs struct {
	reg           *obs.Registry
	tr            obs.Tracer
	commits       *obs.Counter
	commitSeconds *obs.Histogram
	// workers gauges the maintenance worker-pool size; speedup records
	// serialized-over-wall compute time whenever a commit fans two or
	// more view computations out to the pool (1 = no overlap, k = the
	// pool kept k computations in flight).
	workers *obs.Gauge
	speedup *obs.Histogram
	// Read-snapshot instrumentation: reads served lock-free, staleness
	// of the published snapshot at the last read, and publish cost.
	snapReads   *obs.Counter
	snapAge     *obs.Gauge
	snapPublish *obs.Histogram
	// Group commit: transactions per group, and how long the scheduler
	// held a batch open waiting for stragglers.
	groupSize *obs.Histogram
	groupWait *obs.Histogram
	// shards gauges the configured hash-shard count of base relations.
	shards *obs.Gauge
	// stages are the mview_commit_stage_seconds{stage} histograms,
	// indexed by the stage constants in trace.go. Every batch observes
	// every stage (0 when a stage had no work), so per-stage sums give
	// the workload's critical-path attribution.
	stages [numStages]*obs.Histogram
}

// groupSizeBuckets spans the useful batch sizes (DefaultGroupMaxBatch
// is 64; obs.DefBuckets are latency buckets at the wrong scale).
var groupSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// speedupBuckets spans the useful range of the parallel-speedup ratio
// (obs.DefBuckets are latency buckets and stop at the wrong scale).
var speedupBuckets = []float64{0.5, 0.75, 1, 1.5, 2, 3, 4, 6, 8, 12, 16}

// viewObs holds one view's metric handles. All fields are created
// eagerly except the per-decision refresh histograms, which are cached
// on first use (callers hold the engine lock).
type viewObs struct {
	reg           *obs.Registry
	view          string
	refresh       map[string]*obs.Histogram // decision → latency
	filterOut     *obs.Counter
	filterPass    *obs.Counter
	pending       *obs.Gauge
	rows          *obs.Counter
	joinSteps     *obs.Counter
	notifications *obs.Counter
	computeWait   *obs.Histogram
	shardTasks    *obs.Counter
	shardPruned   *obs.Counter
	staleness     *obs.Gauge
	sloBound      *obs.Gauge
}

func newViewObs(reg *obs.Registry, view string) *viewObs {
	l := obs.Labels{"view": view}
	return &viewObs{
		reg:     reg,
		view:    view,
		refresh: make(map[string]*obs.Histogram, 4),
		filterOut: reg.Counter("mview_filter_discarded_total",
			"Update tuples discarded by the §4 irrelevance filter.", l),
		filterPass: reg.Counter("mview_filter_passed_total",
			"Update tuples checked by the §4 irrelevance filter and kept.", l),
		pending: reg.Gauge("mview_view_pending_tx",
			"Transactions queued for a deferred (§6) refresh.", l),
		rows: reg.Counter("mview_diffeval_rows_total",
			"Truth-table rows completed by differential maintenance (§5.3).", l),
		joinSteps: reg.Counter("mview_diffeval_join_steps_total",
			"Join steps executed by differential maintenance.", l),
		notifications: reg.Counter("mview_subscriber_notifications_total",
			"Subscriber callbacks fanned out after refreshes.", l),
		computeWait: reg.Histogram("mview_view_compute_wait_seconds",
			"Queue wait before a view's phase-1 delta computation starts on the maintenance worker pool.", nil, l),
		shardTasks: reg.Counter("mview_shard_tasks_total",
			"Per-shard maintenance tasks executed for this view on the worker pool.", l),
		shardPruned: reg.Counter("mview_shard_pruned_total",
			"Shard sub-deltas skipped entirely by the §4 key-range irrelevance test.", l),
		staleness: reg.Gauge("mview_view_staleness_seconds", stalenessHelp, l),
		sloBound: reg.Gauge("mview_view_staleness_slo_seconds",
			"Configured staleness SLO bound (MaxStaleness policy; 0 = no bound).", l),
	}
}

// refreshHist returns the refresh-latency histogram for one
// maintenance decision. Callers hold the engine lock.
func (v *viewObs) refreshHist(decision string) *obs.Histogram {
	h := v.refresh[decision]
	if h == nil {
		h = v.reg.Histogram("mview_view_refresh_seconds",
			"View refresh latency by maintenance decision.", nil,
			obs.Labels{"view": v.view, "decision": decision})
		v.refresh[decision] = h
	}
	return h
}

// decisionLabel names the refresh decision for metrics: what ran
// (differential or recompute) and whether the adaptive cost model
// chose it.
func decisionLabel(cfg ViewConfig, chosen Policy) string {
	s := "differential"
	if chosen == PolicyRecompute {
		s = "recompute"
	}
	if cfg.Policy == PolicyAdaptive {
		return "adaptive_" + s
	}
	return s
}

// SetObs attaches a metrics registry and an optional tracer to the
// engine (either may be nil; both nil detaches). Existing and future
// views get per-view series; the differential maintainers forward
// spans and per-operand delta events to the tracer. With obs detached
// the commit path costs a single atomic pointer load.
func (e *Engine) SetObs(reg *obs.Registry, tr obs.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if reg == nil && tr == nil {
		e.o.Store(nil)
		for _, name := range e.viewOrder {
			e.views[name].vo = nil
			e.views[name].maint.Tracer = nil
		}
		return
	}
	o := &engineObs{
		reg: reg,
		tr:  tr,
		commits: reg.Counter("mview_commits_total",
			"Transactions committed.", nil),
		commitSeconds: reg.Histogram("mview_commit_seconds",
			"End-to-end transaction commit latency (net effects, immediate view refresh, index upkeep).", nil, nil),
		workers: reg.Gauge("mview_maint_workers",
			"Size of the per-view maintenance worker pool.", nil),
		speedup: reg.Histogram("mview_commit_parallel_speedup",
			"Serialized-over-wall compute time of parallel phase-1 view maintenance (1 = no overlap).",
			speedupBuckets, nil),
		snapReads: reg.Counter("mview_snapshot_reads_total",
			"Reads served from the lock-free copy-on-write snapshot.", nil),
		snapAge: reg.Gauge("mview_snapshot_age_seconds",
			"Age of the published read snapshot at the last read (0 right after a publish).", nil),
		snapPublish: reg.Histogram("mview_snapshot_publish_seconds",
			"Time to build and publish a read snapshot at the end of a commit, refresh, or DDL statement.", nil, nil),
		groupSize: reg.Histogram("mview_group_commit_size",
			"Transactions coalesced into one group commit (one fsync, one maintenance pass, one snapshot publish).",
			groupSizeBuckets, nil),
		groupWait: reg.Histogram("mview_group_wait_seconds",
			"Time the group-commit scheduler held a batch open waiting for stragglers (0 for solo commits).", nil, nil),
		shards: reg.Gauge("mview_shards",
			"Configured hash-shard count of base relations (1 = unsharded).", nil),
	}
	for i := 0; i < numStages; i++ {
		o.stages[i] = reg.Histogram("mview_commit_stage_seconds",
			"Commit pipeline stage latency (trace.go stage taxonomy). Every batch observes every stage, 0 when the stage had no work.",
			nil, obs.Labels{"stage": stageNames[i]})
	}
	o.workers.Set(float64(e.poolSize()))
	o.shards.Set(float64(e.Shards()))
	e.o.Store(o)
	for _, name := range e.viewOrder {
		st := e.views[name]
		st.vo = newViewObs(reg, name)
		st.vo.sloBound.Set(st.cfg.When.Bound.Seconds())
		st.maint.Tracer = tr
	}
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithMaintWorkers bounds the maintenance worker pool at construction;
// see SetMaintWorkers for the semantics.
func WithMaintWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maintWorkers = n
		}
	}
}

// New returns an empty engine.
func New(opts ...Option) *Engine {
	db, err := schema.NewDatabase()
	if err != nil {
		panic(err) // unreachable: empty database scheme is valid
	}
	e := &Engine{
		scheme:     db,
		base:       make(map[string]*relation.Relation),
		views:      make(map[string]*viewState),
		indexes:    make(map[string]map[int]*relation.Index),
		baseShared: make(map[string]bool),
		ckptDirty:  make(map[string][]bool),
		now:        time.Now,
	}
	e.sched = newScheduler(e)
	for _, opt := range opts {
		opt(e)
	}
	e.publishLocked() // the engine is born with an empty snapshot
	return e
}

// SetMaintWorkers bounds the worker pool that parallelizes per-view
// maintenance: phase-1 delta computation and recompute staging inside
// Execute, and deferred refreshes in RefreshAll. Each view's delta
// depends only on the frozen pre-state and the transaction's net
// updates, so independent views compute concurrently while the commit
// lock holder waits on the pool. n <= 0 restores the default,
// GOMAXPROCS. Values above GOMAXPROCS are honored as given: they
// cannot speed up CPU-bound maintenance but let blocking per-view work
// (tracing sinks, future IO) overlap.
func (e *Engine) SetMaintWorkers(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 0 {
		n = 0
	}
	e.maintWorkers = n
	if o := e.o.Load(); o != nil {
		o.workers.Set(float64(e.poolSize()))
	}
}

// MaintWorkers reports the effective maintenance worker-pool size.
func (e *Engine) MaintWorkers() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.poolSize()
}

// poolSize resolves the configured pool size. Callers hold the engine
// lock.
func (e *Engine) poolSize() int {
	if e.maintWorkers > 0 {
		return e.maintWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachParallel runs fn(i) for every i in [0, n) on the maintenance
// worker pool, returning when all calls have finished. With a single
// worker or a single job it runs inline on the caller's goroutine.
// Callers hold the engine lock for the whole call; fn must only read
// engine state (the Maintainer concurrency contract) and write to its
// own per-index result slot.
func (e *Engine) forEachParallel(n int, fn func(int)) {
	w := e.poolSize()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// provider adapts the engine's index map to diffeval.IndexProvider.
// Methods are called with the engine lock already held.
type provider struct{ e *Engine }

// Index returns the persistent index of rel on base column pos.
func (p provider) Index(rel string, pos int) *relation.Index {
	return p.e.indexes[rel][pos]
}

// ensureIndexes creates any missing indexes on the equi-join columns
// of the bound view's condition. Callers hold the engine lock.
func (e *Engine) ensureIndexes(b *expr.Bound) error {
	ensure := func(v pred.Var) error {
		ops := b.OperandsOf(v)
		if len(ops) != 1 {
			return nil
		}
		op := b.Operands[ops[0]]
		pos, ok := op.QScheme.Pos(schema.Attribute(v))
		if !ok {
			return nil
		}
		if e.indexes[op.Rel] == nil {
			e.indexes[op.Rel] = make(map[int]*relation.Index)
		}
		if e.indexes[op.Rel][pos] != nil {
			return nil
		}
		ix, err := relation.BuildIndex(e.base[op.Rel], pos)
		if err != nil {
			return err
		}
		e.indexes[op.Rel][pos] = ix
		return nil
	}
	for _, conj := range b.Where.Conjuncts {
		for _, a := range conj.Atoms {
			if a.Op != pred.OpEQ || !a.HasRightVar() || a.C != 0 {
				continue
			}
			if err := ensure(a.Left); err != nil {
				return err
			}
			if err := ensure(a.Right); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyToIndexes folds one base update into the relation's indexes.
// Callers hold the engine lock.
func (e *Engine) applyToIndexes(u delta.Update) {
	for _, ix := range e.indexes[u.Rel] {
		if u.Deletes != nil {
			u.Deletes.Each(ix.Remove)
		}
		if u.Inserts != nil {
			// Tuples handed out by Each are arena rows, immutable once
			// stored, so the index may retain them directly.
			u.Inserts.Each(ix.Add)
		}
	}
}

// CreateRelation adds a base relation with the given attributes.
func (e *Engine) CreateRelation(name string, attrs ...schema.Attribute) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.views[name]; dup {
		return fmt.Errorf("db: name %q already names a view", name)
	}
	s, err := schema.NewScheme(attrs...)
	if err != nil {
		return err
	}
	rs := &schema.RelScheme{Name: name, Scheme: s}
	// Copy-on-write: published snapshots reference e.scheme, so DDL
	// swaps in an extended clone instead of mutating it.
	next := e.scheme.Clone()
	if err := next.Add(rs); err != nil {
		return err
	}
	e.scheme = next
	if e.shards > 1 && s.Arity() > 0 {
		r, err := relation.NewSharded(s, 0, e.shards)
		if err != nil {
			return err
		}
		e.base[name] = r
	} else {
		e.base[name] = relation.New(s)
	}
	e.initCheckpointDirtyLocked(name)
	e.publishLocked()
	return nil
}

// Scheme exposes the database scheme (for binding ad-hoc
// expressions). The result is the current snapshot's scheme and is
// immutable: DDL copies-on-write, so holding it across a concurrent
// CreateRelation is safe.
func (e *Engine) Scheme() *schema.Database {
	return e.currentSnapshot().scheme
}

// Relations returns the base relation names in creation order.
func (e *Engine) Relations() []string {
	return e.currentSnapshot().scheme.Names()
}

// Views returns the view names in creation order.
func (e *Engine) Views() []string {
	s := e.currentSnapshot()
	out := make([]string, len(s.viewOrder))
	copy(out, s.viewOrder)
	return out
}

// Relation returns a base relation as of the current read snapshot.
// The result is immutable — shared with the snapshot, not cloned —
// and must not be modified; it never changes once returned (writers
// copy-on-write), so iterating it requires no lock.
func (e *Engine) Relation(name string) (*relation.Relation, error) {
	s := e.currentSnapshot()
	r, ok := s.base[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown relation %q", name)
	}
	return r, nil
}

// CreateView defines and immediately materializes a view.
func (e *Engine) CreateView(v expr.View, cfg ViewConfig) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.views[v.Name]; dup {
		return fmt.Errorf("db: duplicate view %q", v.Name)
	}
	if _, clash := e.base[v.Name]; clash {
		return fmt.Errorf("db: name %q already names a base relation", v.Name)
	}
	bound, err := expr.Bind(v, e.scheme)
	if err != nil {
		return err
	}
	cfg.normalizeWhen()
	maint, err := diffeval.NewMaintainer(bound, cfg.Maint)
	if err != nil {
		return err
	}
	if err := e.ensureIndexes(bound); err != nil {
		return err
	}
	data, err := eval.Materialize(bound, e.operandInstances(bound), cfg.EvalOpt)
	if err != nil {
		return err
	}
	st := &viewState{
		name:    v.Name,
		bound:   bound,
		cfg:     cfg,
		maint:   maint,
		data:    data,
		pending: make(map[string]delta.Update),
		ck:      newCheckerCache(bound, cfg),
		reads:   new(atomic.Int64),
	}
	if o := e.o.Load(); o != nil {
		st.vo = newViewObs(o.reg, v.Name)
		st.vo.sloBound.Set(cfg.When.Bound.Seconds())
		maint.Tracer = o.tr
	}
	e.views[v.Name] = st
	e.viewOrder = append(e.viewOrder, v.Name)
	e.publishLocked()
	if cfg.When.scheduled() {
		e.sched.ensure()
	}
	return nil
}

// DropView removes a view.
func (e *Engine) DropView(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.views[name]; !ok {
		return fmt.Errorf("db: unknown view %q", name)
	}
	delete(e.views, name)
	for i, n := range e.viewOrder {
		if n == name {
			e.viewOrder = append(e.viewOrder[:i], e.viewOrder[i+1:]...)
			break
		}
	}
	e.publishLocked()
	return nil
}

// View returns a view's materialization as of the current read
// snapshot. The result is immutable — shared with the snapshot, not
// cloned — and must not be modified; concurrent commits publish new
// snapshots instead of mutating it, so a reader iterating the result
// never observes a commit. For deferred views it may lag the base
// relations; call RefreshView first for an up-to-date answer.
func (e *Engine) View(name string) (*relation.Counted, error) {
	s := e.currentSnapshot()
	sv, ok := s.views[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	if sv.reads != nil {
		sv.reads.Add(1) // feeds the adaptive when-policy's read rate
	}
	return sv.data, nil
}

// ViewStats returns a view's maintenance counters as of the current
// read snapshot — a consistent copy taken at publish time, so it
// cannot race with maintenance mutating the live counters.
func (e *Engine) ViewStats(name string) (ViewStats, error) {
	s := e.currentSnapshot()
	sv, ok := s.views[name]
	if !ok {
		return ViewStats{}, fmt.Errorf("db: unknown view %q", name)
	}
	return sv.stats, nil
}

// ViewDef returns the bound definition of a view.
func (e *Engine) ViewDef(name string) (*expr.Bound, error) {
	s := e.currentSnapshot()
	sv, ok := s.views[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	return sv.bound, nil
}

// operandInstances gathers the live base instances for a bound view.
// Callers hold the engine lock.
func (e *Engine) operandInstances(b *expr.Bound) []*relation.Relation {
	insts := make([]*relation.Relation, len(b.Operands))
	for i, op := range b.Operands {
		insts[i] = e.base[op.Rel]
	}
	return insts
}

// TxResult summarizes one committed transaction.
type TxResult struct {
	Updates        []delta.Update // net effects applied to base relations
	ViewsRefreshed int            // immediate views brought up to date
	ViewsDeferred  int            // deferred views that queued changes
	// Trace is the trace id of the pipeline run that committed this
	// transaction (the group's trace under group commit), 0 when
	// tracing is off. Look it up in the flight recorder.
	Trace uint64
}

// Execute atomically applies a transaction: net effects are computed
// against the pre-state, immediate views are differentially refreshed
// as the last step of the commit, and deferred views accumulate the
// composed net change for a later refresh.
func (e *Engine) Execute(tx *delta.Tx) (TxResult, error) {
	return e.ExecuteLogged(tx, nil)
}

// ExecuteCtx is Execute with cancellation: the context is checked
// before the commit starts, and — under group commit — while the
// transaction waits in the scheduler queue. A transaction a leader
// has claimed always runs to its verdict; cancellation never tears a
// committed member back out of a batch.
func (e *Engine) ExecuteCtx(ctx context.Context, tx *delta.Tx) (TxResult, error) {
	return e.ExecuteLoggedCtx(ctx, tx, nil)
}

// ExecuteLogged is Execute with a pre-encoded commit-log record that
// must become durable before the transaction is visible. With group
// commit enabled the transaction rides a group — its record is
// appended with the whole batch under one fsync; otherwise (or while
// the scheduler is shutting down) it commits solo and the payload is
// ignored: the serial durable path logs after applying, under the
// caller's statement lock, exactly as before.
func (e *Engine) ExecuteLogged(tx *delta.Tx, payload []byte) (TxResult, error) {
	return e.ExecuteLoggedCtx(context.Background(), tx, payload)
}

// ExecuteLoggedCtx is ExecuteLogged with cancellation (see
// ExecuteCtx). The commit itself is not interruptible once started.
func (e *Engine) ExecuteLoggedCtx(ctx context.Context, tx *delta.Tx, payload []byte) (TxResult, error) {
	if err := ctx.Err(); err != nil {
		return TxResult{}, err
	}
	o := e.o.Load()
	var t0 time.Time
	var span obs.Span
	var root obs.SpanContext
	if o != nil {
		t0 = time.Now()
		if o.tr != nil {
			span, root = obs.StartRoot(o.tr, "db.commit")
		}
	}
	var res TxResult
	var ns []notification
	var err error
	grouped := false
	if g := e.group.Load(); g != nil {
		res, err, grouped = g.submitCtx(ctx, tx, payload) // notifications fired by the scheduler
	}
	if !grouped {
		if payload != nil {
			// Unreachable when the caller serializes ExecuteLogged
			// against DisableGroupCommit (the durable layer's gmu):
			// refuse rather than commit without durably logging.
			err = fmt.Errorf("db: group commit stopped mid-transaction")
		} else {
			res, ns, err = e.executeLocked(tx, root)
		}
	}
	if o != nil {
		if err == nil {
			o.commits.Inc()
			o.commitSeconds.ObserveDuration(time.Since(t0))
		}
		if span != nil {
			kvs := []obs.KV{
				{K: "updates", V: len(res.Updates)},
				{K: "views_refreshed", V: res.ViewsRefreshed},
				{K: "views_deferred", V: res.ViewsDeferred},
				{K: "err", V: err != nil},
			}
			if grouped && res.Trace != 0 {
				// The stage tree lives in the group's own trace; link it.
				kvs = append(kvs, obs.KV{K: "group_trace", V: res.Trace})
			}
			span.End(kvs...)
		}
	}
	if err != nil {
		return TxResult{}, err
	}
	fire(ns)
	return res, nil
}

// executeLocked commits one transaction through the batch pipeline
// (group.go): the serial path is a group of one, so both paths share
// every phase — net effects, §6 composition (a no-op for one tx),
// classification, pooled maintenance, validation, install, publish.
// parent is the caller's db.commit span context; the pipeline's stage
// spans become its children.
func (e *Engine) executeLocked(tx *delta.Tx, parent obs.SpanContext) (TxResult, []notification, error) {
	req := &groupReq{tx: tx}
	ct := e.newCommitTrace(parent)
	ns, err := e.executeBatchLocked([]*groupReq{req}, nil, ct)
	ct.close(err)
	if err != nil {
		return TxResult{}, nil, err
	}
	if req.err != nil {
		return TxResult{}, nil, req.err
	}
	return req.res, ns, nil
}

// refreshed carries one touched view through the commit pipeline:
// phase 1 fills d (differential) on the worker pool, phase 3a fills vc
// (recompute shadow) and validates, phase 3b installs — including the
// staged deferred backlogs, so a failed commit queues nothing.
type refreshed struct {
	st         *viewState
	deferred   bool                 // backlog staging only; no computation
	pend       []delta.Update       // staged updates, composed into the backlog at install
	insts      []*relation.Relation // operand instances for the computation
	d          *diffeval.ViewDelta  // differential result
	vc         *relation.Counted    // recompute shadow (PolicyRecompute)
	cow        *relation.Counted    // phase-1 clone for the copy-on-write install
	err        error                // compute/validate failure
	decision   string               // metrics label
	computeDur time.Duration        // delta or recompute computation time
	wait       time.Duration        // queue wait before compute started
	// Group-commit fields (group.go). touchCount is how many of the
	// group's transactions touch this view — the serial-equivalent
	// increment for Transactions/PendingTx. noop marks a view whose
	// composed delta cancelled to nothing; perTx marks a subscribed
	// view whose state installs from folded per-transaction deltas.
	touchCount int
	noop       bool
	perTx      bool
	// Shard fan-out fields (shard.go): per-shard partial deltas merged
	// into d after the pool drains, plus the fan-out counters.
	parts        []*diffeval.ViewDelta
	shardTasks   int
	shardsPruned int
}

// invertUpdate returns the net update that undoes u: the tuples u
// inserted are deleted and vice versa. Because net effects are
// disjoint from the pre-state (delta.Tx.Net), applying the inverse
// right after a successful forward apply restores the relation
// exactly.
func invertUpdate(u delta.Update) delta.Update {
	return delta.Update{Rel: u.Rel, Inserts: u.Deletes, Deletes: u.Inserts}
}

func (st *viewState) noteDelta(d *diffeval.ViewDelta) {
	st.stats.Refreshes++
	st.stats.RowsEvaluated += d.Stats.RowsEvaluated
	st.stats.JoinSteps += d.Stats.JoinSteps
	st.stats.FilteredOut += d.Stats.FilteredOut
	st.stats.DeltaInserts += d.Stats.DeltaInserts
	st.stats.DeltaDeletes += d.Stats.DeltaDeletes
	if st.vo != nil {
		st.vo.rows.Add(int64(d.Stats.RowsEvaluated))
		st.vo.joinSteps.Add(int64(d.Stats.JoinSteps))
		st.vo.filterOut.Add(int64(d.Stats.FilteredOut))
		st.vo.filterPass.Add(int64(d.Stats.FilterChecked - d.Stats.FilteredOut))
	}
}

// chooseAdaptive resolves PolicyAdaptive for one refresh: differential
// while the combined delta is a small fraction of the view's base
// relations, full re-evaluation beyond the threshold — the paper's
// closing question ("under what circumstances differential
// re-evaluation is more efficient than complete re-evaluation")
// answered with a size-ratio cost model. Callers hold the engine lock.
func (e *Engine) chooseAdaptive(st *viewState, updates []delta.Update) Policy {
	threshold := st.cfg.AdaptiveThreshold
	if threshold <= 0 {
		threshold = DefaultAdaptiveThreshold
	}
	deltaSize, baseSize := 0, 0
	counted := make(map[string]bool, len(st.bound.Operands))
	for _, op := range st.bound.Operands {
		// A self-join references the same relation through several
		// operands; the cost model counts each touched relation once —
		// per-occurrence summing would inflate the ratio and flip to
		// recompute below the configured threshold.
		if counted[op.Rel] {
			continue
		}
		counted[op.Rel] = true
		baseSize += e.base[op.Rel].Len()
		for _, u := range updates {
			if u.Rel == op.Rel {
				deltaSize += u.Size()
			}
		}
	}
	if baseSize == 0 || float64(deltaSize) > threshold*float64(baseSize) {
		return PolicyRecompute
	}
	return PolicyDifferential
}

// viewTouched reports whether any operand's relation is in touched.
func (e *Engine) viewTouched(st *viewState, touched map[string]bool) bool {
	for _, op := range st.bound.Operands {
		if touched[op.Rel] {
			return true
		}
	}
	return false
}

// stagePending filters the transaction's updates down to those
// touching st's operands, WITHOUT composing them into st.pending: the
// caller folds the returned entries in (installPending) only once the
// whole commit is known to succeed, so a failed commit queues nothing.
// Callers hold the engine lock.
func (e *Engine) stagePending(st *viewState, updates []delta.Update) []delta.Update {
	var out []delta.Update
	for _, u := range updates {
		if e.relUsedBy(st, u.Rel) {
			out = append(out, u)
		}
	}
	return out
}

// installPending folds staged updates into the view's backlog in
// place: O(|updates|) per commit regardless of how much backlog has
// accumulated, where the old full Compose re-copied the whole backlog
// every time. Runs in commit phase 5 and cannot fail — first-touch
// relations are cloned (COW), and in-place composition only crosses
// same-relation updates. st.pending relations are exclusively owned
// under the engine lock (refresh paths hold it from build through
// install; snapshots copy only pendingSince), so mutating them here is
// safe. Callers hold the engine lock.
func (e *Engine) installPending(st *viewState, updates []delta.Update) {
	for _, u := range updates {
		prev, ok := st.pending[u.Rel]
		if !ok {
			st.pending[u.Rel] = cloneUpdate(u)
			continue
		}
		delta.ComposeInPlace(&prev, u)
		st.pending[u.Rel] = prev
	}
}

func (e *Engine) relUsedBy(st *viewState, rel string) bool {
	for _, op := range st.bound.Operands {
		if op.Rel == rel {
			return true
		}
	}
	return false
}

func cloneUpdate(u delta.Update) delta.Update {
	out := delta.Update{Rel: u.Rel}
	if u.Inserts != nil {
		out.Inserts = u.Inserts.Clone()
	}
	if u.Deletes != nil {
		out.Deletes = u.Deletes.Clone()
	}
	return out
}

// RefreshView brings a deferred view up to date with a single
// differential pass over the composed pending updates (or a full
// recompute under PolicyRecompute), clearing the backlog. Refreshing
// an immediate or already-fresh view is a no-op.
func (e *Engine) RefreshView(name string) error {
	var span obs.Span
	var root obs.SpanContext
	if o := e.o.Load(); o != nil && o.tr != nil {
		span, root = obs.StartRoot(o.tr, "db.refresh", obs.KV{K: "view", V: name})
	}
	ns, err := e.refreshLocked(name, root)
	if span != nil {
		span.End(obs.KV{K: "err", V: err != nil})
	}
	if err != nil {
		return err
	}
	fire(ns)
	return nil
}

func (e *Engine) refreshLocked(name string, parent obs.SpanContext) ([]notification, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.views[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	j, err := e.buildRefreshJob(st)
	if err != nil || j == nil {
		return nil, err
	}
	if o := e.o.Load(); o != nil && o.tr != nil {
		j.tr, j.parent = o.tr, parent
	}
	j.run()
	var sp obs.Span
	if j.tr != nil {
		sp, _ = obs.StartChild(j.tr, parent, "refresh.install", obs.KV{K: "view", V: name})
	}
	ns, err := e.installRefreshJob(j)
	if err != nil {
		if sp != nil {
			sp.End(obs.KV{K: "err", V: true})
		}
		return nil, err
	}
	e.publishLocked()
	if sp != nil {
		sp.End()
	}
	return ns, nil
}

// refreshJob carries one deferred view's refresh through the
// build/compute/install steps shared by RefreshView and RefreshAll.
type refreshJob struct {
	st      *viewState
	policy  Policy               // resolved policy (adaptive already decided)
	insts   []*relation.Relation // operand instances; reconstructed pre-state for differential
	updates []delta.Update       // composed pending net updates (differential)
	t0      time.Time            // refresh start, for latency metrics and lastMaint
	d       *diffeval.ViewDelta
	vc      *relation.Counted
	cow     *relation.Counted // private clone for the copy-on-write install
	err     error
	// tr/parent attach the job to a db.refresh (or db.refresh_all)
	// trace: run emits a refresh.compute child span. computeDur is the
	// pure compute time, for lastMaint.
	tr         obs.Tracer
	parent     obs.SpanContext
	computeDur time.Duration
}

// buildRefreshJob resolves the refresh policy and reconstructs the
// pre-refresh operand state (B0 = B_now − I ∪ D) for one deferred
// view. It returns (nil, nil) when the view has no pending updates.
// Callers hold the engine lock.
func (e *Engine) buildRefreshJob(st *viewState) (*refreshJob, error) {
	if len(st.pending) == 0 {
		return nil, nil
	}
	j := &refreshJob{st: st, t0: time.Now()}
	policy := st.cfg.Policy
	if policy == PolicyAdaptive {
		pend := make([]delta.Update, 0, len(st.pending))
		for _, u := range st.pending {
			pend = append(pend, u)
		}
		policy = e.chooseAdaptive(st, pend)
	}
	j.policy = policy
	if policy == PolicyRecompute {
		j.insts = e.operandInstances(st.bound)
		return j, nil
	}
	// Reconstruct the pre-refresh state of each touched operand.
	insts := make([]*relation.Relation, len(st.bound.Operands))
	var updates []delta.Update
	seen := make(map[string]bool)
	for i, op := range st.bound.Operands {
		u, touched := st.pending[op.Rel]
		if !touched {
			insts[i] = e.base[op.Rel]
			continue
		}
		pre := e.base[op.Rel].Clone()
		if u.Inserts != nil {
			u.Inserts.Each(func(t tuple.Tuple) { pre.Delete(t) })
		}
		if u.Deletes != nil {
			var insErr error
			u.Deletes.Each(func(t tuple.Tuple) {
				if err := pre.Insert(t); err != nil && insErr == nil {
					insErr = err
				}
			})
			if insErr != nil {
				return nil, insErr
			}
		}
		insts[i] = pre
		if !seen[op.Rel] {
			seen[op.Rel] = true
			updates = append(updates, u)
		}
	}
	j.insts, j.updates = insts, updates
	return j, nil
}

// run computes the refresh result. It only reads engine state (the
// reconstructed instances are private clones), so jobs for distinct
// views may run concurrently on the worker pool while the lock holder
// waits — the engine must not be mutated during the call.
func (j *refreshJob) run() {
	var sp obs.Span
	if j.tr != nil {
		sp, _ = obs.StartChild(j.tr, j.parent, "refresh.compute",
			obs.KV{K: "view", V: j.st.name})
	}
	start := time.Now()
	defer func() {
		j.computeDur = time.Since(start)
		if sp != nil {
			sp.End(obs.KV{K: "err", V: j.err != nil})
		}
	}()
	if j.policy == PolicyRecompute {
		j.vc, j.err = eval.Materialize(j.st.bound, j.insts, j.st.cfg.EvalOpt)
		return
	}
	// No index provider here: the persistent indexes reflect the
	// CURRENT base state, while this delta is computed against the
	// reconstructed pre-refresh state.
	j.d, j.err = j.st.maint.ComputeDelta(j.insts, j.updates)
	if j.err == nil && j.st.dataShared {
		// Pre-clone for the copy-on-write install while still on the
		// worker pool (reads frozen view state, writes only this job).
		j.cow = j.st.data.Clone()
	}
}

// installRefreshJob folds a computed refresh into the view and clears
// its backlog; on error the view and its backlog are untouched
// (diffeval.Apply validates before mutating). Callers hold the engine
// lock.
func (e *Engine) installRefreshJob(j *refreshJob) ([]notification, error) {
	st := j.st
	if j.err != nil {
		return nil, j.err
	}
	install := time.Now()
	if j.policy == PolicyRecompute {
		var ns []notification
		if len(st.subscribers) > 0 {
			ins, del := countedDiff(st.data, j.vc)
			ns = st.notifications(st.name, ins, del)
		}
		st.data = j.vc // fresh shadow state, not yet in any snapshot
		st.dataShared = false
		st.snapDirty = true
		st.stats.Recomputes++
		st.pending = make(map[string]delta.Update)
		st.stats.PendingTx = 0
		st.pendingSince = time.Time{}
		st.lastMaint = maintRecord{
			At:       time.Now(),
			Decision: decisionLabel(st.cfg, PolicyRecompute),
			Compute:  j.computeDur,
			Install:  time.Since(install),
			Trace:    j.parent.Trace,
		}
		if st.vo != nil {
			st.vo.pending.Set(0)
			st.vo.staleness.Set(0)
			st.vo.refreshHist(decisionLabel(st.cfg, PolicyRecompute)).ObserveDuration(time.Since(j.t0))
		}
		return ns, nil
	}
	if st.dataShared {
		// Copy-on-write: fold the delta into a private clone (usually
		// pre-built by run on the worker pool) so the published
		// snapshot's view state stays frozen. Apply validates before
		// mutating, so a failure leaves the clone equal to the original
		// and the backlog intact.
		if j.cow == nil {
			j.cow = st.data.Clone()
		}
		st.data = j.cow
		st.dataShared = false
	}
	if err := diffeval.Apply(st.data, j.d); err != nil {
		return nil, err
	}
	st.snapDirty = true
	st.noteDelta(j.d)
	st.pending = make(map[string]delta.Update)
	st.stats.PendingTx = 0
	st.pendingSince = time.Time{}
	st.lastMaint = maintRecord{
		At:       time.Now(),
		Decision: decisionLabel(st.cfg, PolicyDifferential),
		Compute:  j.computeDur,
		Install:  time.Since(install),
		Inserts:  j.d.Stats.DeltaInserts,
		Deletes:  j.d.Stats.DeltaDeletes,
		Trace:    j.parent.Trace,
	}
	if st.vo != nil {
		st.vo.pending.Set(0)
		st.vo.staleness.Set(0)
		st.vo.refreshHist(decisionLabel(st.cfg, PolicyDifferential)).ObserveDuration(time.Since(j.t0))
	}
	return st.notifications(st.name, j.d.Inserts, j.d.Deletes), nil
}

// RefreshAll refreshes every deferred view with pending changes under
// a single lock acquisition, fanning the per-view computations out to
// the maintenance worker pool: each job reconstructs its own
// pre-refresh operand state and only reads the engine, so independent
// views refresh concurrently. Results install in name order; the
// first error is returned after the remaining successful views have
// installed (a failed view keeps its backlog and can be retried).
func (e *Engine) RefreshAll() error {
	var span obs.Span
	var root obs.SpanContext
	if o := e.o.Load(); o != nil && o.tr != nil {
		span, root = obs.StartRoot(o.tr, "db.refresh_all")
	}
	ns, err := e.refreshAllLocked(root)
	if span != nil {
		span.End(obs.KV{K: "err", V: err != nil})
	}
	fire(ns)
	return err
}

func (e *Engine) refreshAllLocked(parent obs.SpanContext) ([]notification, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, len(e.viewOrder))
	copy(names, e.viewOrder)
	sort.Strings(names)
	var jobs []*refreshJob
	for _, name := range names {
		j, err := e.buildRefreshJob(e.views[name])
		if err != nil {
			return nil, err
		}
		if j != nil {
			jobs = append(jobs, j)
		}
	}
	if o := e.o.Load(); o != nil && o.tr != nil {
		for _, j := range jobs {
			j.tr, j.parent = o.tr, parent
		}
	}
	e.forEachParallel(len(jobs), func(i int) { jobs[i].run() })
	var ns []notification
	var firstErr error
	for _, j := range jobs {
		n, err := e.installRefreshJob(j)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ns = append(ns, n...)
	}
	if len(jobs) > 0 {
		e.publishLocked()
	}
	return ns, firstErr
}

// Relevant applies Theorem 4.1: it reports whether inserting or
// deleting tuple t in base relation rel could affect the named view in
// ANY database state. The per-operand checkers (including their O(n³)
// invariant-graph preparation) are cached on the view's checkerCache,
// which is shared with the read snapshot — so Relevant runs lock-free
// and never blocks a commit.
func (e *Engine) Relevant(view, rel string, t tuple.Tuple) (bool, error) {
	s := e.currentSnapshot()
	sv, ok := s.views[view]
	if !ok {
		return false, fmt.Errorf("db: unknown view %q", view)
	}
	found := false
	for i, op := range sv.bound.Operands {
		if op.Rel != rel {
			continue
		}
		found = true
		c, err := sv.ck.get(i)
		if err != nil {
			return false, err
		}
		relevant, err := c.Relevant(t)
		if err != nil {
			return false, err
		}
		if relevant {
			return true, nil
		}
	}
	if !found {
		return false, fmt.Errorf("db: view %q does not reference relation %q", view, rel)
	}
	return false, nil
}

// Explain describes how a view is defined and maintained: operands,
// condition, projection, refresh mode and policy, strategy, and the
// persistent indexes its equi-join columns can probe. It reads the
// current snapshot, so the reported tuple counts are one consistent
// cut.
func (e *Engine) Explain(name string) (string, error) {
	s := e.currentSnapshot()
	st, ok := s.views[name]
	if !ok {
		return "", fmt.Errorf("db: unknown view %q", name)
	}
	var sb strings.Builder
	b := st.bound
	fmt.Fprintf(&sb, "view %s\n", name)
	fmt.Fprintf(&sb, "  operands:\n")
	for _, op := range b.Operands {
		fmt.Fprintf(&sb, "    %s = %s%s  (%d tuples)\n", op.Alias, op.Rel, op.Scheme, s.base[op.Rel].Len())
	}
	fmt.Fprintf(&sb, "  where:   %s\n", b.Where)
	proj := make([]string, len(b.Project))
	for i, a := range b.Project {
		proj[i] = string(a)
	}
	fmt.Fprintf(&sb, "  select:  %s\n", strings.Join(proj, ", "))
	mode := "immediate (refreshed at commit)"
	if st.cfg.Mode == Deferred {
		mode = "deferred (snapshot refresh, §6)"
	}
	fmt.Fprintf(&sb, "  refresh: %s\n", mode)
	var when string
	switch st.cfg.When.Kind {
	case RefreshOnDemand:
		when = "on demand (explicit refresh only)"
	case RefreshEvery:
		when = fmt.Sprintf("every %s (scheduler-driven)", st.cfg.When.Interval)
	case RefreshMaxStaleness:
		when = fmt.Sprintf("staleness SLO %s (scheduler refreshes before the bound)", st.cfg.When.Bound)
	case RefreshAdaptive:
		when = fmt.Sprintf("adaptive (currently %s; flips with the write/read balance)", mode)
	default:
		when = "on commit"
	}
	fmt.Fprintf(&sb, "  when:    %s\n", when)
	policy := "differential (§5, Algorithm 5.1)"
	switch st.cfg.Policy {
	case PolicyRecompute:
		policy = "complete re-evaluation"
	case PolicyAdaptive:
		threshold := st.cfg.AdaptiveThreshold
		if threshold <= 0 {
			threshold = DefaultAdaptiveThreshold
		}
		policy = fmt.Sprintf("adaptive (differential while |δ| ≤ %.0f%% of base)", 100*threshold)
	}
	fmt.Fprintf(&sb, "  policy:  %s\n", policy)
	strategy := "auto (indexed delta joins when indexes exist, else prefix-sharing rows)"
	switch st.cfg.Maint.Strategy {
	case diffeval.StrategyPrefixShare:
		strategy = "prefix-sharing truth-table rows"
	case diffeval.StrategyRowByRow:
		strategy = "row-by-row (no prefix sharing)"
	case diffeval.StrategyRowByRowGreedy:
		strategy = "row-by-row with greedy join order"
	case diffeval.StrategyIndexedDelta:
		strategy = "indexed delta joins"
	}
	fmt.Fprintf(&sb, "  rows:    %s\n", strategy)
	fmt.Fprintf(&sb, "  filter:  §4 irrelevance pre-filter %s\n", onOff(st.cfg.Maint.Filter))
	m := st.cfg.Maint.FilterOptions.Method
	// Largest conjunct decides the detector under MethodAdaptive; +1
	// accounts for the distinguished '0' node of the constraint graph.
	nodes := 1
	for _, c := range b.Where.Conjuncts {
		if n := len(c.Vars()) + 1; n > nodes {
			nodes = n
		}
	}
	if r := m.Resolve(nodes); r != m {
		fmt.Fprintf(&sb, "  sat:     %s (%s at %d vars, threshold %d)\n", m, r, nodes-1, satgraph.AdaptiveSatThreshold)
	} else {
		fmt.Fprintf(&sb, "  sat:     %s negative-cycle detection\n", m)
	}
	var idx []string
	for _, op := range b.Operands {
		for pos := 0; pos < op.Scheme.Arity(); pos++ {
			if s.indexed[op.Rel][pos] {
				idx = append(idx, fmt.Sprintf("%s.%s", op.Rel, op.Scheme.Attr(pos)))
			}
		}
	}
	sort.Strings(idx)
	idx = dedupeSorted(idx)
	if len(idx) == 0 {
		fmt.Fprintf(&sb, "  indexes: none\n")
	} else {
		fmt.Fprintf(&sb, "  indexes: %s\n", strings.Join(idx, ", "))
	}
	if s.shards > 1 {
		fmt.Fprintf(&sb, "  shards:  %d hash shards per base relation (key: first attribute; single-operand deltas fan out per shard with §4 range pruning)\n", s.shards)
	} else {
		fmt.Fprintf(&sb, "  shards:  1 (monolithic base relations)\n")
	}
	return sb.String(), nil
}

func onOff(b bool) string {
	if b {
		return "ON"
	}
	return "OFF"
}

func dedupeSorted(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// Subscribe registers an alerter on a view (the Buneman–Clemons
// application of §1–2): after every commit or refresh that changes the
// view, the subscriber receives the insert and delete sets. It returns
// a subscription id for Unsubscribe.
func (e *Engine) Subscribe(view string, s Subscriber) (int, error) {
	if s == nil {
		return 0, fmt.Errorf("db: nil subscriber")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.views[view]
	if !ok {
		return 0, fmt.Errorf("db: unknown view %q", view)
	}
	if st.subscribers == nil {
		st.subscribers = make(map[int]Subscriber)
	}
	id := st.nextSubID
	st.nextSubID++
	st.subscribers[id] = s
	return id, nil
}

// Unsubscribe removes a subscription; unknown ids are a no-op.
func (e *Engine) Unsubscribe(view string, id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.views[view]
	if !ok {
		return fmt.Errorf("db: unknown view %q", view)
	}
	delete(st.subscribers, id)
	return nil
}

// RefreshPeriodically refreshes a deferred view on a fixed interval
// until the returned stop function is called — §6's "materialized
// views are updated periodically" regime. Refresh errors are reported
// through the optional onErr callback and do NOT terminate the loop:
// a transient failure (the view dropped and re-created, a delta that
// does not fold) must not silently end periodic refresh forever. Only
// stop() ends the schedule.
//
// Deprecated: prefer the RefreshEvery when-policy (SetViewPolicy or a
// RefreshSpec at CreateView), which expresses the schedule as durable
// catalog state instead of a caller-held goroutine handle. This method
// remains supported; registrations now ride the engine's single
// scheduler wheel instead of one ticker goroutine per caller.
func (e *Engine) RefreshPeriodically(name string, interval time.Duration, onErr func(error)) (stop func(), err error) {
	e.mu.RLock()
	_, ok := e.views[name]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("db: unknown view %q", name)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("db: non-positive refresh interval %v", interval)
	}
	return e.sched.addPeriodic(name, interval, onErr), nil
}

// SetViewPolicy changes a view's refresh policy at runtime. Moving to
// an on-commit (or adaptive) policy drains any accumulated backlog
// under the same lock hold, so a commit can never observe an immediate
// view with stale contents. The change is engine state only — durable
// logging and replication are the caller's concern (mview.DB.SetPolicy).
func (e *Engine) SetViewPolicy(name string, spec RefreshSpec) error {
	e.mu.Lock()
	st, ok := e.views[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("db: unknown view %q", name)
	}
	var ns []notification
	if spec.mode() == Immediate && len(st.pending) > 0 {
		j, err := e.buildRefreshJob(st)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		if j != nil {
			if o := e.o.Load(); o != nil && o.tr != nil {
				j.tr = o.tr
			}
			j.run()
			if ns, err = e.installRefreshJob(j); err != nil {
				e.mu.Unlock()
				return err
			}
		}
	}
	st.cfg.When = spec
	st.cfg.Mode = spec.mode()
	if st.vo != nil {
		st.vo.sloBound.Set(spec.Bound.Seconds())
	}
	st.snapDirty = true
	e.publishLocked()
	scheduled := spec.scheduled()
	e.mu.Unlock()
	if scheduled {
		e.sched.ensure()
	}
	e.sched.poke()
	fire(ns)
	return nil
}

// ViewPolicy reports a view's refresh policy and its current
// commit-time mode. The two differ only under RefreshAdaptive, where
// the scheduler flips the mode with the measured write/read balance.
func (e *Engine) ViewPolicy(name string) (RefreshSpec, RefreshMode, error) {
	s := e.currentSnapshot()
	sv, ok := s.views[name]
	if !ok {
		return RefreshSpec{}, Immediate, fmt.Errorf("db: unknown view %q", name)
	}
	return sv.cfg.When, sv.cfg.Mode, nil
}

// ViewStaleness returns the age of the view's oldest unapplied change
// as of the published snapshot (0 = no unapplied changes).
func (e *Engine) ViewStaleness(name string) (time.Duration, error) {
	s := e.currentSnapshot()
	sv, ok := s.views[name]
	if !ok {
		return 0, fmt.Errorf("db: unknown view %q", name)
	}
	if sv.pendingSince.IsZero() {
		return 0, nil
	}
	return e.now().Sub(sv.pendingSince), nil
}

// ViewFresh returns a view's contents no staler than bound: when the
// snapshot's oldest unapplied change is older, the view is refreshed
// synchronously first (bound 0 therefore always serves fresh
// contents). A view exactly as old as the bound is within contract
// and served as is.
func (e *Engine) ViewFresh(name string, bound time.Duration) (*relation.Counted, error) {
	age, err := e.ViewStaleness(name)
	if err != nil {
		return nil, err
	}
	if age > bound {
		if err := e.RefreshView(name); err != nil {
			return nil, err
		}
	}
	return e.View(name)
}

// DisablePolicyRefresh turns off policy-driven scheduling on this
// engine. Followers use it: they replay the leader's policy DDL so the
// catalog matches, but never self-refresh — maintenance arrives
// composed from the replication stream. RefreshPeriodically
// registrations still fire (a local, caller-owned contract).
func (e *Engine) DisablePolicyRefresh() { e.sched.disablePolicies() }

// StopScheduler terminates the refresh scheduler and waits for it; an
// engine being closed or replaced must stop its wheel or the goroutine
// leaks. Idempotent.
func (e *Engine) StopScheduler() { e.sched.stop() }

// Query evaluates an ad-hoc SPJ expression against the current read
// snapshot without materializing it. Binding and evaluation run
// lock-free over one consistent cut of the base relations, so a long
// query neither blocks nor is torn by concurrent commits.
func (e *Engine) Query(v expr.View, opts eval.Options) (*relation.Counted, error) {
	s := e.currentSnapshot()
	bound, err := expr.Bind(v, s.scheme)
	if err != nil {
		return nil, err
	}
	return eval.Materialize(bound, s.operandInstances(bound), opts)
}
