package db

// Commit-pipeline stage instrumentation.
//
// Every run of executeBatchLocked — a group batch or a solo commit —
// is carried by a commitTrace: per-stage wall times feed the
// mview_commit_stage_seconds{stage} histograms and the engine's
// cumulative critical-path accumulators, and (when a tracer is
// attached) each stage becomes a child span of the commit's root span,
// so a hierarchical sink like obs.FlightRecorder reconstructs the full
// tree: root → commit.<stage> → maint.task fan-out.
//
// Stage taxonomy (see ARCHITECTURE.md "Tracing & flight recorder"):
//
//	queue_wait    time the batch's slowest member sat in the group
//	              queue before a leader claimed it (0 for solo commits)
//	net           phase 1: per-tx net effects against the overlay
//	compose       phase 2: §6 composition of the group's net effects
//	maint         phase 3 fan-out wall time (parallel; NOT on the
//	              critical path — slowest_task is its critical component)
//	slowest_task  the longest single (shard × view) maintenance task
//	validate      delta validation before anything becomes visible
//	fsync         phase 4: the batch's single durable log append
//	install       phase 5: base swap, index upkeep, view installs
//	publish       the COW snapshot publish
//
// Every batch observes every stage (0 when a stage had no work), so
// per-stage histogram sums divide a workload's total commit time into
// its critical-path attribution.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"mview/internal/obs"
)

const (
	stageQueueWait = iota
	stageNet
	stageCompose
	stageMaint
	stageSlowestTask
	stageValidate
	stageFsync
	stageInstall
	stagePublish
	numStages
)

var stageNames = [numStages]string{
	"queue_wait", "net", "compose", "maint", "slowest_task",
	"validate", "fsync", "install", "publish",
}

// critAccum is the engine's cumulative critical-path attribution:
// total time per stage across all batches, read by CriticalPath.
type critAccum struct {
	batches atomic.Int64
	nanos   [numStages]atomic.Int64
}

// StageSummary is one stage's cumulative cost in CriticalPathSummary.
// Share is the stage's fraction of the total critical-path time.
type StageSummary struct {
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// CriticalPathSummary attributes the engine's cumulative commit time
// to pipeline stages. Seconds sums the critical-path stages: every
// sequential stage plus the slowest parallel maintenance task — the
// maint fan-out wall is excluded because slowest_task is its critical
// component (the rest of the fan-out overlapped it).
type CriticalPathSummary struct {
	Batches int64                   `json:"batches"`
	Seconds float64                 `json:"seconds"`
	Stages  map[string]StageSummary `json:"stages"`
}

// CriticalPath returns the engine's cumulative per-stage commit-time
// attribution (see CriticalPathSummary). Counters accumulate from
// engine construction; the summary is a lock-free read.
func (e *Engine) CriticalPath() CriticalPathSummary {
	out := CriticalPathSummary{
		Batches: e.crit.batches.Load(),
		Stages:  make(map[string]StageSummary, numStages-1),
	}
	var secs [numStages]float64
	for i := 0; i < numStages; i++ {
		secs[i] = time.Duration(e.crit.nanos[i].Load()).Seconds()
		if i != stageMaint {
			out.Seconds += secs[i]
		}
	}
	for i := 0; i < numStages; i++ {
		if i == stageMaint {
			continue
		}
		s := StageSummary{Seconds: secs[i]}
		if out.Seconds > 0 {
			s.Share = secs[i] / out.Seconds
		}
		out.Stages[stageNames[i]] = s
	}
	return out
}

// commitTrace carries one pipeline run's stage timing and spans. A nil
// *commitTrace is valid and free: every method no-ops, so the
// obs-detached hot path stays a single atomic load.
type commitTrace struct {
	e        *Engine
	o        *engineObs
	tr       obs.Tracer
	root     obs.SpanContext
	rootSpan obs.Span // owned root (group path); nil when the caller owns it
	crit     [numStages]time.Duration
}

// newCommitTrace wraps a solo commit whose root span (db.commit) is
// owned by ExecuteLoggedCtx; parent is that span's context.
func (e *Engine) newCommitTrace(parent obs.SpanContext) *commitTrace {
	o := e.o.Load()
	if o == nil {
		return nil
	}
	ct := &commitTrace{e: e, o: o, tr: o.tr, root: parent}
	ct.note(stageQueueWait, 0)
	return ct
}

// newGroupTrace opens a batch's own root span (db.commit_group).
// queueWait is the batch's slowest member's time in the scheduler
// queue; window is how long the leader held the batch open.
func (e *Engine) newGroupTrace(txs int, queueWait, window time.Duration) *commitTrace {
	o := e.o.Load()
	if o == nil {
		return nil
	}
	ct := &commitTrace{e: e, o: o, tr: o.tr}
	if o.tr != nil {
		ct.rootSpan, ct.root = obs.StartRoot(o.tr, "db.commit_group",
			obs.KV{K: "txs", V: txs},
			obs.KV{K: "queue_wait", V: queueWait},
			obs.KV{K: "window_wait", V: window})
	}
	ct.note(stageQueueWait, queueWait)
	return ct
}

// tracing reports whether this run produces stage spans. Callsites
// use it to skip building span-attribute KVs: a variadic []KV literal
// escapes into the span sink, so building one unconditionally would
// cost the uninstrumented hot path a heap allocation per stage.
func (ct *commitTrace) tracing() bool { return ct != nil && ct.tr != nil }

// traceID returns the trace the pipeline's spans belong to (0 when
// tracing is off).
func (ct *commitTrace) traceID() uint64 {
	if ct == nil {
		return 0
	}
	return ct.root.Trace
}

// note records a stage duration without a span (queue_wait,
// slowest_task, skipped stages).
func (ct *commitTrace) note(idx int, d time.Duration) {
	if ct == nil {
		return
	}
	ct.crit[idx] += d
	if h := ct.o.stages[idx]; h != nil {
		h.ObserveDuration(d)
	}
}

// stageEnd closes one stage opened by begin.
type stageEnd struct {
	ct   *commitTrace
	idx  int
	span obs.Span
	ctx  obs.SpanContext
	t0   time.Time
}

// begin opens a stage: starts its timer and, when a tracer is
// attached, a commit.<stage> child span whose context fan-out tasks
// parent to (stageEnd.ctx).
func (ct *commitTrace) begin(idx int, kv ...obs.KV) stageEnd {
	if ct == nil {
		return stageEnd{}
	}
	se := stageEnd{ct: ct, idx: idx, t0: time.Now()}
	if ct.tr != nil {
		se.span, se.ctx = obs.StartChild(ct.tr, ct.root, "commit."+stageNames[idx], kv...)
	}
	return se
}

// end closes the stage, feeding its histogram and the critical-path
// accumulator, and returns the stage duration.
func (se stageEnd) end(kv ...obs.KV) time.Duration {
	if se.ct == nil {
		return 0
	}
	d := time.Since(se.t0)
	se.ct.note(se.idx, d)
	if se.span != nil {
		se.span.End(kv...)
	}
	return d
}

// task starts one fan-out child span under a stage (maint.task,
// maint.recompute). Returns nil when tracing is off; callers guard.
func (ct *commitTrace) task(parent obs.SpanContext, name string, kv ...obs.KV) obs.Span {
	if ct == nil || ct.tr == nil {
		return nil
	}
	sp, _ := obs.StartChild(ct.tr, parent, name, kv...)
	return sp
}

// close folds the run's stage times into the engine's cumulative
// attribution and ends the owned root span, if any.
func (ct *commitTrace) close(err error) {
	if ct == nil {
		return
	}
	for i, d := range ct.crit {
		if d != 0 {
			ct.e.crit.nanos[i].Add(int64(d))
		}
	}
	ct.e.crit.batches.Add(1)
	if ct.rootSpan != nil {
		ct.rootSpan.End(obs.KV{K: "err", V: err != nil})
	}
}

// maintRecord captures the actual timings of a view's most recent
// maintenance — the numbers ExplainAnalyze annotates the plan with.
// Recorded unconditionally (no registry or tracer required) on every
// immediate install and deferred refresh.
type maintRecord struct {
	At           time.Time
	Decision     string // metrics decision label, or "deferred_refresh" variants
	Wait         time.Duration
	Compute      time.Duration
	Install      time.Duration
	ShardTasks   int
	ShardsPruned int
	Inserts      int
	Deletes      int
	Trace        uint64 // trace id of the carrying commit/refresh, 0 when untraced
}

const stalenessHelp = "Age in seconds of the view's oldest unapplied change (0 = fresh; deferred views go stale between refreshes). Refreshed when Staleness() is called — the HTTP /metrics and /debug/stats handlers do so on every scrape."

// Staleness reports each view's staleness: the age of its oldest
// unapplied (pending) change, 0 for a fresh view. Immediate views are
// always fresh; a deferred view goes stale the moment a commit stages
// backlog for it and snaps back to 0 when refreshed. As a side effect
// the per-view mview_view_staleness_seconds gauges are brought up to
// date, so metric scrape paths call this before exposition.
func (e *Engine) Staleness() map[string]float64 {
	s := e.currentSnapshot()
	out := make(map[string]float64, len(s.viewOrder))
	o := e.o.Load()
	for _, name := range s.viewOrder {
		sv := s.views[name]
		var v float64
		if !sv.pendingSince.IsZero() {
			v = e.now().Sub(sv.pendingSince).Seconds()
		}
		out[name] = v
		if o != nil {
			o.reg.Gauge("mview_view_staleness_seconds", stalenessHelp, obs.Labels{"view": name}).Set(v)
		}
	}
	return out
}

// SnapshotAge reports the age of the published read snapshot — how
// long ago the last commit, refresh, or DDL statement published.
func (e *Engine) SnapshotAge() time.Duration {
	return time.Since(e.snap.Load().created)
}

// ExplainAnalyze is Explain plus an "analyze" section with actual
// numbers: lifetime maintenance counters, current staleness, and the
// stage timings of the view's most recent maintenance (queue wait,
// compute, install, shard fan-out, delta size, and the trace id to
// look the commit up in the flight recorder).
func (e *Engine) ExplainAnalyze(name string) (string, error) {
	base, err := e.Explain(name)
	if err != nil {
		return "", err
	}
	sv := e.currentSnapshot().views[name]
	if sv == nil {
		return base, nil // raced with a concurrent drop; the plan stands
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteString("  analyze:\n")
	st := sv.stats
	fmt.Fprintf(&sb, "    counters: transactions=%d refreshes=%d recomputes=%d pending_tx=%d\n",
		st.Transactions, st.Refreshes, st.Recomputes, st.PendingTx)
	if sv.pendingSince.IsZero() {
		sb.WriteString("    staleness: fresh (no unapplied changes)\n")
	} else {
		fmt.Fprintf(&sb, "    staleness: %s behind (oldest unapplied change)\n",
			time.Since(sv.pendingSince).Round(time.Millisecond))
	}
	lm := sv.lastMaint
	if lm.At.IsZero() {
		sb.WriteString("    last maintenance: none recorded\n")
		return sb.String(), nil
	}
	fmt.Fprintf(&sb, "    last maintenance: %s ago, decision=%s\n",
		time.Since(lm.At).Round(time.Millisecond), lm.Decision)
	fmt.Fprintf(&sb, "      queue_wait=%s compute=%s install=%s",
		lm.Wait.Round(time.Microsecond), lm.Compute.Round(time.Microsecond),
		lm.Install.Round(time.Microsecond))
	if lm.ShardTasks > 0 || lm.ShardsPruned > 0 {
		fmt.Fprintf(&sb, " shard_tasks=%d shards_pruned=%d", lm.ShardTasks, lm.ShardsPruned)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "      delta: +%d/-%d tuples", lm.Inserts, lm.Deletes)
	if lm.Trace != 0 {
		fmt.Fprintf(&sb, " trace=%d", lm.Trace)
	}
	sb.WriteByte('\n')
	return sb.String(), nil
}
