package db

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"mview/internal/delta"
	"mview/internal/diffeval"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/pred"
	"mview/internal/schema"
	"mview/internal/tuple"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if err := e.CreateRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateRelation("S", "B", "C"); err != nil {
		t.Fatal(err)
	}
	return e
}

func joinViewDef(t *testing.T, e *Engine, name string) expr.View {
	t.Helper()
	v, err := expr.NaturalJoin(name, e.Scheme(), "R", "S")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func exec(t *testing.T, e *Engine, tx *delta.Tx) TxResult {
	t.Helper()
	res, err := e.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCreateRelationAndDuplicates(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateRelation("R", "X"); err == nil {
		t.Error("duplicate relation must fail")
	}
	if err := e.CreateRelation("Bad", "A", "A"); err == nil {
		t.Error("bad scheme must fail")
	}
	if got := e.Relations(); len(got) != 2 || got[0] != "R" {
		t.Errorf("Relations = %v", got)
	}
	if _, err := e.Relation("NOPE"); err == nil {
		t.Error("unknown relation must fail")
	}
}

func TestImmediateViewMaintenance(t *testing.T) {
	e := newEngine(t)
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 10))
	exec(t, e, &tx)

	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	v, err := e.View("v")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 || !v.Has(tuple.New(1, 2, 10)) {
		t.Fatalf("initial view = %v", v)
	}

	var tx2 delta.Tx
	tx2.Insert("R", tuple.New(7, 2)).Delete("S", tuple.New(2, 10)).Insert("S", tuple.New(2, 99))
	res := exec(t, e, &tx2)
	if res.ViewsRefreshed != 1 {
		t.Errorf("ViewsRefreshed = %d", res.ViewsRefreshed)
	}
	v, _ = e.View("v")
	want := []tuple.Tuple{tuple.New(1, 2, 99), tuple.New(7, 2, 99)}
	if v.Len() != 2 || !v.Has(want[0]) || !v.Has(want[1]) {
		t.Errorf("view = %v, want %v", v, want)
	}
	st, err := e.ViewStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if st.Transactions != 1 || st.Refreshes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestViewUntouchedByForeignTx(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateRelation("Z", "Q"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("Z", tuple.New(1))
	res := exec(t, e, &tx)
	if res.ViewsRefreshed != 0 || res.ViewsDeferred != 0 {
		t.Errorf("unrelated tx refreshed views: %+v", res)
	}
	st, _ := e.ViewStats("v")
	if st.Transactions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeferredSnapshotRefresh(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "snap"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	// Three transactions accumulate; the view stays stale.
	for i := 0; i < 3; i++ {
		var tx delta.Tx
		tx.Insert("R", tuple.New(int64(i), 2)).Insert("S", tuple.New(2, int64(10+i)))
		res := exec(t, e, &tx)
		if res.ViewsDeferred != 1 || res.ViewsRefreshed != 0 {
			t.Fatalf("tx %d: %+v", i, res)
		}
	}
	v, _ := e.View("snap")
	if v.Len() != 0 {
		t.Fatalf("deferred view refreshed too early: %v", v)
	}
	st, _ := e.ViewStats("snap")
	if st.PendingTx != 3 {
		t.Errorf("PendingTx = %d", st.PendingTx)
	}

	if err := e.RefreshView("snap"); err != nil {
		t.Fatal(err)
	}
	v, _ = e.View("snap")
	// 3 R-tuples × 3 S-tuples, all joining on B=2.
	if v.Len() != 9 {
		t.Errorf("after refresh view = %v", v)
	}
	st, _ = e.ViewStats("snap")
	if st.PendingTx != 0 || st.Refreshes != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Idempotent.
	if err := e.RefreshView("snap"); err != nil {
		t.Fatal(err)
	}
	// Churn that nets out must leave the snapshot unchanged on refresh.
	var tx delta.Tx
	tx.Insert("R", tuple.New(50, 50)).Delete("R", tuple.New(50, 50))
	exec(t, e, &tx)
	if err := e.RefreshView("snap"); err != nil {
		t.Fatal(err)
	}
	v2, _ := e.View("snap")
	if !v2.Equal(v) {
		t.Errorf("no-op churn changed snapshot: %v vs %v", v2, v)
	}
}

func TestDeferredRefreshMatchesRecompute(t *testing.T) {
	e := newEngine(t)
	cond := pred.MustParse("R.B = S.B && S.C > 5")
	vdef := expr.View{
		Name:     "snap",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    cond,
		Project:  []schema.Attribute{"R.A", "S.C"},
	}
	if err := e.CreateView(vdef, ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 25; i++ {
		var tx delta.Tx
		for j := 0; j < 1+rng.Intn(4); j++ {
			tu := tuple.New(int64(rng.Intn(6)), int64(rng.Intn(6)))
			if rng.Intn(3) == 0 {
				tx.Delete("R", tu)
			} else {
				tx.Insert("R", tu)
			}
			su := tuple.New(int64(rng.Intn(6)), int64(rng.Intn(12)))
			if rng.Intn(3) == 0 {
				tx.Delete("S", su)
			} else {
				tx.Insert("S", su)
			}
		}
		exec(t, e, &tx)
		if rng.Intn(4) == 0 {
			if err := e.RefreshView("snap"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.RefreshView("snap"); err != nil {
		t.Fatal(err)
	}
	got, _ := e.View("snap")
	vdef.Name = "oracle"
	want, err := e.Query(vdef, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("snapshot = %v, recompute = %v", got, want)
	}
}

func TestPolicyRecomputeImmediate(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{Policy: PolicyRecompute}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 3))
	exec(t, e, &tx)
	v, _ := e.View("v")
	if v.Len() != 1 {
		t.Errorf("view = %v", v)
	}
	st, _ := e.ViewStats("v")
	if st.Recomputes != 1 || st.Refreshes != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPolicyRecomputeDeferred(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{Mode: Deferred, Policy: PolicyRecompute}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 3))
	exec(t, e, &tx)
	if err := e.RefreshView("v"); err != nil {
		t.Fatal(err)
	}
	v, _ := e.View("v")
	if v.Len() != 1 {
		t.Errorf("view = %v", v)
	}
	st, _ := e.ViewStats("v")
	if st.Recomputes != 1 || st.PendingTx != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPolicyAdaptiveSwitches: small deltas go differential, deltas
// past the threshold trigger recompute — with identical results.
func TestPolicyAdaptiveSwitches(t *testing.T) {
	e := newEngine(t)
	// Seed a reasonably sized base.
	var seed delta.Tx
	for i := int64(0); i < 100; i++ {
		seed.Insert("R", tuple.New(i, i%10))
		seed.Insert("S", tuple.New(i%10, i))
	}
	exec(t, e, &seed)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{Policy: PolicyAdaptive}); err != nil {
		t.Fatal(err)
	}
	// Small transaction: differential.
	var small delta.Tx
	small.Insert("R", tuple.New(500, 3))
	exec(t, e, &small)
	st, _ := e.ViewStats("v")
	if st.Refreshes != 1 || st.Recomputes != 0 {
		t.Errorf("small tx stats = %+v, want differential", st)
	}
	// Bulk transaction (> 25%% of base): recompute.
	var bulk delta.Tx
	for i := int64(1000); i < 1200; i++ {
		bulk.Insert("R", tuple.New(i, i%10))
	}
	exec(t, e, &bulk)
	st, _ = e.ViewStats("v")
	if st.Recomputes != 1 {
		t.Errorf("bulk tx stats = %+v, want a recompute", st)
	}
	// Contents must match a recompute-only twin regardless of path.
	twin := joinViewDef(t, e, "w")
	if err := e.CreateView(twin, ViewConfig{Policy: PolicyRecompute}); err != nil {
		t.Fatal(err)
	}
	a, _ := e.View("v")
	b, _ := e.View("w")
	if !a.Equal(b) {
		t.Error("adaptive view diverged from recompute twin")
	}
}

// TestPolicyAdaptiveDeferred: the deferred path consults the same cost
// model at refresh time.
func TestPolicyAdaptiveDeferred(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{Mode: Deferred, Policy: PolicyAdaptive}); err != nil {
		t.Fatal(err)
	}
	// Base is empty, so any pending delta exceeds the ratio →
	// recompute.
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 3))
	exec(t, e, &tx)
	if err := e.RefreshView("v"); err != nil {
		t.Fatal(err)
	}
	st, _ := e.ViewStats("v")
	if st.Recomputes != 1 {
		t.Errorf("stats = %+v, want recompute on empty base", st)
	}
	v, _ := e.View("v")
	if v.Len() != 1 {
		t.Errorf("view = %v", v)
	}
}

func TestRefreshPeriodically(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "snap"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	stop, err := e.RefreshPeriodically("snap", 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 3))
	exec(t, e, &tx)
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, err := e.View("snap")
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic refresh never caught up")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent

	if _, err := e.RefreshPeriodically("zzz", time.Second, nil); err == nil {
		t.Error("unknown view must fail")
	}
	if _, err := e.RefreshPeriodically("snap", 0, nil); err == nil {
		t.Error("non-positive interval must fail")
	}
}

func TestRelevantCachedCheckers(t *testing.T) {
	e := newEngine(t)
	v := expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("R.B = S.B && R.A < 10"),
	}
	if err := e.CreateView(v, ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	rel, err := e.Relevant("v", "R", tuple.New(5, 1))
	if err != nil || !rel {
		t.Errorf("Relevant(5,1) = %v, %v", rel, err)
	}
	rel, err = e.Relevant("v", "R", tuple.New(50, 1))
	if err != nil || rel {
		t.Errorf("Relevant(50,1) = %v, %v", rel, err)
	}
	// Repeat calls reuse the cached checker (stats accumulate on it).
	for i := 0; i < 10; i++ {
		if _, err := e.Relevant("v", "R", tuple.New(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Relevant("v", "Z", tuple.New(1)); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := e.Relevant("zzz", "R", tuple.New(1, 2)); err == nil {
		t.Error("unknown view must fail")
	}
	if _, err := e.Relevant("v", "R", tuple.New(1)); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestExplain(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{
		Mode: Deferred, Policy: PolicyAdaptive,
		Maint: diffeval.Options{Filter: true},
	}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Explain("v")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"view v",
		"R = R(A, B)",
		"R.B = S.B",
		"deferred",
		"adaptive",
		"pre-filter ON",
		"indexes: R.B, S.B",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	if _, err := e.Explain("zzz"); err == nil {
		t.Error("unknown view must fail")
	}
	// Default config renders too.
	if err := e.CreateView(joinViewDef(t, e, "w"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	out, err = e.Explain("w")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "immediate") || !strings.Contains(out, "auto") {
		t.Errorf("default Explain:\n%s", out)
	}
}

func TestCreateViewErrors(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err == nil {
		t.Error("duplicate view must fail")
	}
	if err := e.CreateView(joinViewDef(t, e, "R"), ViewConfig{}); err == nil {
		t.Error("view shadowing a relation must fail")
	}
	if err := e.CreateRelation("v", "X"); err == nil {
		t.Error("relation shadowing a view must fail")
	}
	bad := expr.View{Name: "w", Operands: []expr.Operand{{Rel: "NOPE"}}}
	if err := e.CreateView(bad, ViewConfig{}); err == nil {
		t.Error("unbindable view must fail")
	}
}

func TestDropView(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := e.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropView("v"); err == nil {
		t.Error("double drop must fail")
	}
	if _, err := e.View("v"); err == nil {
		t.Error("dropped view must be gone")
	}
	if got := e.Views(); len(got) != 0 {
		t.Errorf("Views = %v", got)
	}
}

func TestUnknownViewAccessors(t *testing.T) {
	e := newEngine(t)
	if _, err := e.View("x"); err == nil {
		t.Error("View(x) must fail")
	}
	if _, err := e.ViewStats("x"); err == nil {
		t.Error("ViewStats(x) must fail")
	}
	if _, err := e.ViewDef("x"); err == nil {
		t.Error("ViewDef(x) must fail")
	}
	if err := e.RefreshView("x"); err == nil {
		t.Error("RefreshView(x) must fail")
	}
}

func TestExecuteEmptyAndUnknown(t *testing.T) {
	e := newEngine(t)
	var tx delta.Tx
	res := exec(t, e, &tx)
	if len(res.Updates) != 0 {
		t.Errorf("empty tx: %+v", res)
	}
	var bad delta.Tx
	bad.Insert("NOPE", tuple.New(1))
	if _, err := e.Execute(&bad); err == nil {
		t.Error("unknown relation must fail")
	}
	// Failed transactions must leave state untouched.
	r, _ := e.Relation("R")
	if r.Len() != 0 {
		t.Error("failed tx mutated base relation")
	}
}

func TestRefreshAllAndQueryIsolation(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v1"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "v2"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 3))
	exec(t, e, &tx)
	if err := e.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"v1", "v2"} {
		v, _ := e.View(n)
		if v.Len() != 1 {
			t.Errorf("%s = %v", n, v)
		}
	}
	// View and Relation results are immutable snapshots: a later
	// commit publishes a new snapshot instead of mutating them, so a
	// previously returned result never changes.
	v, _ := e.View("v1")
	r, _ := e.Relation("R")
	var tx2 delta.Tx
	tx2.Insert("R", tuple.New(9, 2)).Insert("S", tuple.New(77, 77))
	exec(t, e, &tx2)
	if err := e.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 {
		t.Errorf("View result mutated by a later commit: %v", v)
	}
	if r.Has(tuple.New(9, 2)) || r.Len() != 1 {
		t.Errorf("Relation result mutated by a later commit: %v", r)
	}
	if v2, _ := e.View("v1"); v2.Len() != 2 {
		t.Errorf("fresh View read missed the commit: %v", v2)
	}
	if r2, _ := e.Relation("R"); !r2.Has(tuple.New(9, 2)) {
		t.Error("fresh Relation read missed the commit")
	}
}

// TestImmediateMatchesRecomputePolicy runs the same workload through a
// differential view and a recompute view and demands identical
// contents after every transaction.
func TestImmediateMatchesRecomputePolicy(t *testing.T) {
	e := newEngine(t)
	vd := expr.View{
		Name:     "vd",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("R.B = S.B && R.A <= S.C + 2"),
		Project:  []schema.Attribute{"R.A", "S.C"},
	}
	vr := vd
	vr.Name = "vr"
	if err := e.CreateView(vd, ViewConfig{Maint: diffeval.Options{Filter: true}}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(vr, ViewConfig{Policy: PolicyRecompute}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(404))
	for i := 0; i < 40; i++ {
		var tx delta.Tx
		for j := 0; j < 1+rng.Intn(5); j++ {
			rel := "R"
			if rng.Intn(2) == 0 {
				rel = "S"
			}
			tu := tuple.New(int64(rng.Intn(7)), int64(rng.Intn(7)))
			if rng.Intn(3) == 0 {
				tx.Delete(rel, tu)
			} else {
				tx.Insert(rel, tu)
			}
		}
		exec(t, e, &tx)
		a, _ := e.View("vd")
		b, _ := e.View("vr")
		if !a.Equal(b) {
			t.Fatalf("tx %d: differential %v != recompute %v", i, a, b)
		}
	}
	st, _ := e.ViewStats("vd")
	if st.Refreshes == 0 {
		t.Error("differential view never refreshed")
	}
}
