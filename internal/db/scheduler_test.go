package db

// Deterministic tests of the refresh scheduler: a fake clock stands in
// for schedClock (and Engine.now), so interval firing, SLO deadlines,
// and adaptive evaluation windows advance only when the test says so.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mview/internal/delta"
	"mview/internal/obs"
	"mview/internal/tuple"
)

// fakeClock is a manually-advanced schedClock. After registers a
// one-shot timer; advance moves the clock and fires every timer whose
// deadline passed. All methods are safe for concurrent use — the wheel
// goroutine reads the clock while the test advances it.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
		return t.ch
	}
	c.timers = append(c.timers, t)
	return t.ch
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	keep := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			keep = append(keep, t)
		}
	}
	c.timers = keep
}

// newFakeClockEngine wires a fake clock into a fresh engine BEFORE any
// view exists, so the wheel goroutine (which starts lazily with the
// first scheduled view) only ever sees the fake.
func newFakeClockEngine(t *testing.T) (*Engine, *fakeClock) {
	t.Helper()
	e := newEngine(t)
	fc := newFakeClock()
	e.now = fc.Now
	e.sched.clock = fc
	return e, fc
}

// waitFor polls cond in real time (the fake clock stays put) until it
// holds or the deadline lapses — the bridge between deterministic fake
// time and the wheel goroutine's asynchronous execution.
func schedWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func stageBacklog(t *testing.T, e *Engine, a, b int64) {
	t.Helper()
	var tx delta.Tx
	tx.Insert("R", tuple.New(a, b)).Insert("S", tuple.New(b, a*10))
	exec(t, e, &tx)
}

func TestSchedulerEveryFires(t *testing.T) {
	e, fc := newFakeClockEngine(t)
	reg := obs.NewRegistry()
	e.SetObs(reg, nil)
	const interval = 50 * time.Millisecond
	cfg := ViewConfig{When: RefreshSpec{Kind: RefreshEvery, Interval: interval}}
	if err := e.CreateView(joinViewDef(t, e, "v"), cfg); err != nil {
		t.Fatal(err)
	}
	stageBacklog(t, e, 1, 2)

	// Fake time has not moved: the interval cannot have elapsed, so the
	// backlog must still be staged no matter how much real time passes.
	time.Sleep(20 * time.Millisecond)
	if v, _ := e.View("v"); v.Len() != 0 {
		t.Fatalf("view refreshed before its interval elapsed: %v", v)
	}
	if st, _ := e.ViewStats("v"); st.PendingTx != 1 {
		t.Fatalf("PendingTx = %d, want 1", st.PendingTx)
	}

	fc.advance(interval)
	schedWait(t, "interval refresh", func() bool {
		v, err := e.View("v")
		return err == nil && v.Len() == 1
	})
	if st := e.Staleness(); st["v"] != 0 {
		t.Errorf("staleness after interval refresh = %v, want 0", st["v"])
	}
	c := series(t, reg, "mview_policy_refreshes_total", map[string]string{"reason": "interval"})
	if c.Value < 1 {
		t.Errorf("interval refresh counter = %v, want >= 1", c.Value)
	}
}

// TestSchedulerSLOBound is the acceptance test for the MaxStaleness
// SLO: with the scheduler firing at 80% of the bound, the observed
// staleness (and the mview_view_staleness_seconds gauge) must never
// exceed the configured bound.
func TestSchedulerSLOBound(t *testing.T) {
	e, fc := newFakeClockEngine(t)
	reg := obs.NewRegistry()
	e.SetObs(reg, nil)
	const bound = 100 * time.Millisecond
	cfg := ViewConfig{When: RefreshSpec{Kind: RefreshMaxStaleness, Bound: bound}}
	if err := e.CreateView(joinViewDef(t, e, "v"), cfg); err != nil {
		t.Fatal(err)
	}
	if g := series(t, reg, "mview_view_staleness_slo_seconds", map[string]string{"view": "v"}); g.Value != bound.Seconds() {
		t.Fatalf("SLO bound gauge = %v, want %v", g.Value, bound.Seconds())
	}

	checkSLO := func() float64 {
		t.Helper()
		st := e.Staleness()["v"] // refreshes the gauge as a side effect
		if st > bound.Seconds() {
			t.Fatalf("staleness %vs exceeded the SLO bound %v", st, bound)
		}
		g := series(t, reg, "mview_view_staleness_seconds", map[string]string{"view": "v"})
		if g.Value > bound.Seconds() {
			t.Fatalf("staleness gauge %vs exceeded the SLO bound %v", g.Value, bound)
		}
		return st
	}

	// Three backlog→proactive-refresh cycles, stepping fake time in
	// 10ms increments and checking the SLO at every step. The deadline
	// fires at 80ms (80% of the bound); the test then waits for the
	// refresh to land before moving time again, exactly the headroom
	// the scheduler reserves for the refresh itself.
	for cycle := int64(0); cycle < 3; cycle++ {
		stageBacklog(t, e, 10+cycle, 20+cycle)
		for step := 0; step < 8; step++ {
			fc.advance(bound / 10)
			checkSLO()
		}
		// 80% of the bound reached: the proactive refresh must bring the
		// view fresh while real time (but not fake time) passes.
		schedWait(t, fmt.Sprintf("SLO refresh in cycle %d", cycle), func() bool {
			return checkSLO() == 0
		})
		// Well past the original deadline, the view stays within bound
		// because the backlog was already cleared.
		fc.advance(bound)
		checkSLO()
	}
	c := series(t, reg, "mview_policy_refreshes_total", map[string]string{"reason": "slo"})
	if c.Value < 3 {
		t.Errorf("slo refresh counter = %v, want >= 3", c.Value)
	}
}

func TestSchedulerAdaptiveFlips(t *testing.T) {
	e, fc := newFakeClockEngine(t)
	reg := obs.NewRegistry()
	e.SetObs(reg, nil)
	cfg := ViewConfig{When: RefreshSpec{Kind: RefreshAdaptive}}
	if err := e.CreateView(joinViewDef(t, e, "v"), cfg); err != nil {
		t.Fatal(err)
	}
	mode := func() RefreshMode {
		_, m, err := e.ViewPolicy("v")
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if mode() != Immediate {
		t.Fatal("adaptive views must start on-commit")
	}

	// Write-heavy windows with zero reads: the first evaluation primes
	// the counters, a later one sees dw > 2*dr and sheds maintenance
	// off the commit path.
	next := int64(0)
	schedWait(t, "flip to deferred under writes", func() bool {
		if mode() == Deferred {
			return true
		}
		stageBacklog(t, e, 100+next, 200+next)
		next++
		fc.advance(adaptiveEvalEvery)
		time.Sleep(time.Millisecond)
		return mode() == Deferred
	})

	// Deferred now: a commit stages backlog instead of refreshing.
	stageBacklog(t, e, 100+next, 200+next)
	next++
	if st, _ := e.ViewStats("v"); st.PendingTx == 0 {
		t.Fatal("deferred adaptive view staged no backlog")
	}

	// Read-heavy windows: dr >= dw flips the view back to on-commit,
	// draining the accumulated backlog under the same lock hold.
	schedWait(t, "flip back to immediate under reads", func() bool {
		if mode() == Immediate {
			return true
		}
		for i := 0; i < 3; i++ {
			if _, err := e.View("v"); err != nil {
				t.Fatal(err)
			}
		}
		fc.advance(adaptiveEvalEvery)
		time.Sleep(time.Millisecond)
		return mode() == Immediate
	})
	st, _ := e.ViewStats("v")
	if st.PendingTx != 0 {
		t.Errorf("backlog survived the flip to immediate: PendingTx = %d", st.PendingTx)
	}
	v, _ := e.View("v")
	if int64(v.Len()) != next {
		t.Errorf("view has %d rows after drain, want %d", v.Len(), next)
	}
	if c := series(t, reg, "mview_policy_adaptive_flips_total", map[string]string{"view": "v", "to": "deferred"}); c.Value < 1 {
		t.Errorf("flip-to-deferred counter = %v, want >= 1", c.Value)
	}
	if c := series(t, reg, "mview_policy_adaptive_flips_total", map[string]string{"view": "v", "to": "immediate"}); c.Value < 1 {
		t.Errorf("flip-to-immediate counter = %v, want >= 1", c.Value)
	}
}

// TestViewFreshBounds pins the boundary semantics of the query-side
// staleness bound: a view exactly as old as the bound is within
// contract and served as is; one instant older is refreshed first.
func TestViewFreshBounds(t *testing.T) {
	e, fc := newFakeClockEngine(t) // no scheduled views: the wheel never starts
	cfg := ViewConfig{When: RefreshSpec{Kind: RefreshOnDemand}}
	if err := e.CreateView(joinViewDef(t, e, "v"), cfg); err != nil {
		t.Fatal(err)
	}
	stageBacklog(t, e, 1, 2)
	fc.advance(50 * time.Millisecond)

	// age == bound: served stale, no refresh.
	v, err := e.ViewFresh("v", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 {
		t.Fatalf("exact-age read refreshed the view: %v", v)
	}
	if st, _ := e.ViewStats("v"); st.Refreshes != 0 {
		t.Fatalf("exact-age read triggered a refresh: %+v", st)
	}

	// age > bound: refreshed before serving.
	v, err = e.ViewFresh("v", 49*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 {
		t.Fatalf("beyond-bound read served stale contents: %v", v)
	}
	if st := e.Staleness(); st["v"] != 0 {
		t.Errorf("staleness after bounded read = %v, want 0", st["v"])
	}

	// bound 0 with any nonzero age: always fresh.
	stageBacklog(t, e, 3, 4)
	fc.advance(time.Nanosecond)
	v, err = e.ViewFresh("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("bound-0 read served stale contents: %v", v)
	}

	if _, err := e.ViewFresh("zzz", 0); err == nil {
		t.Error("unknown view must fail")
	}
}

// TestSetViewPolicyDrains pins the SetViewPolicy contract: moving a
// backlogged view to an on-commit policy drains the backlog in the
// same call, so no commit can observe an immediate view with stale
// contents.
func TestSetViewPolicyDrains(t *testing.T) {
	e := newEngine(t)
	cfg := ViewConfig{When: RefreshSpec{Kind: RefreshOnDemand}}
	if err := e.CreateView(joinViewDef(t, e, "v"), cfg); err != nil {
		t.Fatal(err)
	}
	stageBacklog(t, e, 1, 2)
	if st, _ := e.ViewStats("v"); st.PendingTx != 1 {
		t.Fatalf("PendingTx = %d, want 1", st.PendingTx)
	}

	if err := e.SetViewPolicy("v", RefreshSpec{Kind: RefreshOnCommit}); err != nil {
		t.Fatal(err)
	}
	spec, m, err := e.ViewPolicy("v")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != RefreshOnCommit || m != Immediate {
		t.Fatalf("policy after change = %v mode %v", spec, m)
	}
	v, _ := e.View("v")
	if v.Len() != 1 {
		t.Fatalf("backlog not drained by policy change: %v", v)
	}
	if st, _ := e.ViewStats("v"); st.PendingTx != 0 {
		t.Fatalf("PendingTx = %d after drain, want 0", st.PendingTx)
	}

	if err := e.SetViewPolicy("zzz", RefreshSpec{}); err == nil {
		t.Error("unknown view must fail")
	}
}

// TestSchedulerStopIdempotent pins the lifecycle: StopScheduler is
// idempotent, and a stopped scheduler never restarts (a closing engine
// must not leak a wheel goroutine).
func TestSchedulerStopIdempotent(t *testing.T) {
	e, fc := newFakeClockEngine(t)
	cfg := ViewConfig{When: RefreshSpec{Kind: RefreshEvery, Interval: 10 * time.Millisecond}}
	if err := e.CreateView(joinViewDef(t, e, "v"), cfg); err != nil {
		t.Fatal(err)
	}
	e.StopScheduler()
	e.StopScheduler()

	// The wheel is gone: staging backlog and advancing past the
	// interval must not refresh anything.
	stageBacklog(t, e, 1, 2)
	fc.advance(time.Second)
	time.Sleep(10 * time.Millisecond)
	if v, _ := e.View("v"); v.Len() != 0 {
		t.Fatal("stopped scheduler still refreshed a view")
	}
}

// TestDisablePolicyRefresh pins the follower contract: policy DDL
// stays in the catalog but drives no refreshes, while explicit
// RefreshPeriodically registrations (a local, caller-owned contract)
// still fire.
func TestDisablePolicyRefresh(t *testing.T) {
	e, fc := newFakeClockEngine(t)
	cfg := ViewConfig{When: RefreshSpec{Kind: RefreshEvery, Interval: 10 * time.Millisecond}}
	if err := e.CreateView(joinViewDef(t, e, "pol"), cfg); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "per"), ViewConfig{When: RefreshSpec{Kind: RefreshOnDemand}}); err != nil {
		t.Fatal(err)
	}
	e.DisablePolicyRefresh()
	stop, err := e.RefreshPeriodically("per", 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	stageBacklog(t, e, 1, 2)
	fc.advance(time.Second)
	schedWait(t, "periodic refresh on disabled engine", func() bool {
		v, err := e.View("per")
		return err == nil && v.Len() == 1
	})
	if v, _ := e.View("pol"); v.Len() != 0 {
		t.Fatal("policy-driven refresh fired on a policy-disabled engine")
	}
	if spec, _, err := e.ViewPolicy("pol"); err != nil || spec.Kind != RefreshEvery {
		t.Fatalf("policy DDL lost on disabled engine: %v %v", spec, err)
	}
}
