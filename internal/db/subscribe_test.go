package db

import (
	"testing"

	"mview/internal/delta"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

type capture struct {
	calls int
	ins   []*relation.Counted
	dels  []*relation.Counted
}

func (c *capture) sub(_ string, ins, del *relation.Counted) {
	c.calls++
	c.ins = append(c.ins, ins)
	c.dels = append(c.dels, del)
}

func TestSubscribeImmediateView(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	var c capture
	id, err := e.Subscribe("v", c.sub)
	if err != nil {
		t.Fatal(err)
	}

	// A change that reaches the view fires exactly once.
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 3))
	exec(t, e, &tx)
	if c.calls != 1 {
		t.Fatalf("calls = %d", c.calls)
	}
	if c.ins[0].Len() != 1 || !c.ins[0].Has(tuple.New(1, 2, 3)) {
		t.Errorf("inserts = %v", c.ins[0])
	}
	if c.dels[0].Len() != 0 {
		t.Errorf("deletes = %v", c.dels[0])
	}

	// A base change that does not affect the view must not wake the
	// subscriber.
	var tx2 delta.Tx
	tx2.Insert("R", tuple.New(9, 99)) // no joining S tuple
	exec(t, e, &tx2)
	if c.calls != 1 {
		t.Errorf("no-op change woke the subscriber: calls = %d", c.calls)
	}

	// Deletions arrive on the delete side.
	var tx3 delta.Tx
	tx3.Delete("S", tuple.New(2, 3))
	exec(t, e, &tx3)
	if c.calls != 2 || c.dels[1].Len() != 1 {
		t.Errorf("calls = %d dels = %v", c.calls, c.dels)
	}

	// After unsubscribe, silence.
	if err := e.Unsubscribe("v", id); err != nil {
		t.Fatal(err)
	}
	var tx4 delta.Tx
	tx4.Insert("S", tuple.New(2, 3))
	exec(t, e, &tx4)
	if c.calls != 2 {
		t.Errorf("unsubscribed but woken: calls = %d", c.calls)
	}
}

func TestSubscribeDeferredAndRecompute(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "snap"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "rec"), ViewConfig{Policy: PolicyRecompute}); err != nil {
		t.Fatal(err)
	}
	var cs, cr capture
	if _, err := e.Subscribe("snap", cs.sub); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Subscribe("rec", cr.sub); err != nil {
		t.Fatal(err)
	}

	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 3))
	exec(t, e, &tx)

	// Recompute views notify with the diff of old vs new contents.
	if cr.calls != 1 || cr.ins[0].Len() != 1 {
		t.Errorf("recompute notification: calls=%d ins=%v", cr.calls, cr.ins)
	}
	// Deferred views notify at refresh time, not commit time.
	if cs.calls != 0 {
		t.Fatalf("deferred view notified before refresh")
	}
	if err := e.RefreshView("snap"); err != nil {
		t.Fatal(err)
	}
	if cs.calls != 1 || cs.ins[0].Len() != 1 {
		t.Errorf("deferred notification: calls=%d", cs.calls)
	}
	// Refresh with nothing pending stays silent.
	if err := e.RefreshView("snap"); err != nil {
		t.Fatal(err)
	}
	if cs.calls != 1 {
		t.Errorf("idle refresh woke subscriber")
	}
}

func TestSubscribeReadBackDuringCallback(t *testing.T) {
	// Callbacks run without the engine lock, so reading the engine
	// from inside one must not deadlock.
	e := newEngine(t)
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	read := 0
	if _, err := e.Subscribe("v", func(string, *relation.Counted, *relation.Counted) {
		if _, err := e.View("v"); err != nil {
			t.Errorf("View inside callback: %v", err)
		}
		read++
	}); err != nil {
		t.Fatal(err)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 3))
	exec(t, e, &tx)
	if read != 1 {
		t.Errorf("callback did not run: %d", read)
	}
}

func TestSubscribeErrors(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Subscribe("zzz", func(string, *relation.Counted, *relation.Counted) {}); err == nil {
		t.Error("unknown view must fail")
	}
	if err := e.Unsubscribe("zzz", 0); err == nil {
		t.Error("unknown view must fail")
	}
	if err := e.CreateView(joinViewDef(t, e, "v"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Subscribe("v", nil); err == nil {
		t.Error("nil subscriber must fail")
	}
	if err := e.Unsubscribe("v", 42); err != nil {
		t.Errorf("unknown id should be a no-op: %v", err)
	}
}

func TestCountedDiff(t *testing.T) {
	s := schema.MustScheme("A")
	old := relation.NewCounted(s)
	_ = old.Add(tuple.New(1), 2)
	_ = old.Add(tuple.New(2), 1)
	newC := relation.NewCounted(s)
	_ = newC.Add(tuple.New(1), 3) // +1
	_ = newC.Add(tuple.New(3), 1) // new
	ins, del := countedDiff(old, newC)
	if ins.Count(tuple.New(1)) != 1 || ins.Count(tuple.New(3)) != 1 || ins.Len() != 2 {
		t.Errorf("ins = %v", ins)
	}
	if del.Count(tuple.New(2)) != 1 || del.Len() != 1 {
		t.Errorf("del = %v", del)
	}
}
