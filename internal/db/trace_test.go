package db

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mview/internal/delta"
	"mview/internal/obs"
	"mview/internal/tuple"
)

// TestCommitStageSpansAndHistograms commits one transaction with a
// hierarchical tracer attached and checks the whole observability
// surface at once: the span tree (db.commit root, commit.<stage>
// children, maint.task grandchildren, all on one trace), the
// mview_commit_stage_seconds histograms (every stage observed exactly
// once, including skipped ones at zero), and the engine's cumulative
// critical-path attribution.
func TestCommitStageSpansAndHistograms(t *testing.T) {
	e := newEngine(t)
	reg := obs.NewRegistry()
	tr := &obs.CollectingTracer{}
	e.SetObs(reg, tr)
	if err := e.CreateView(joinViewDef(t, e, "V"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}

	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 5))
	exec(t, e, &tx)

	byName := make(map[string]obs.CollectedSpan)
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	root, ok := byName["db.commit"]
	if !ok || root.Parent != 0 || root.Trace == 0 {
		t.Fatalf("db.commit root missing or malformed: %+v", root)
	}
	for _, stage := range []string{"net", "compose", "maint", "validate", "install", "publish"} {
		s, ok := byName["commit."+stage]
		if !ok {
			t.Fatalf("no commit.%s span (got %v)", stage, names(tr.Spans))
		}
		if s.Trace != root.Trace {
			t.Errorf("commit.%s trace %d != root trace %d", stage, s.Trace, root.Trace)
		}
		if s.Parent != root.Span {
			t.Errorf("commit.%s parent %d != root span %d", stage, s.Parent, root.Span)
		}
	}
	// The solo serial path never fsyncs, so no commit.fsync span — but
	// the stage is still noted at zero (checked below via histograms).
	if _, ok := byName["commit.fsync"]; ok {
		t.Errorf("unexpected commit.fsync span on the unlogged path")
	}
	task, ok := byName["maint.task"]
	if !ok {
		t.Fatalf("no maint.task fan-out span")
	}
	if task.Parent != byName["commit.maint"].Span || task.Trace != root.Trace {
		t.Errorf("maint.task not parented under commit.maint: %+v", task)
	}

	// Every stage's histogram observed exactly one batch, aligned counts.
	for i := 0; i < numStages; i++ {
		s := series(t, reg, "mview_commit_stage_seconds", map[string]string{"stage": stageNames[i]})
		if s.Count != 1 {
			t.Errorf("stage %s count = %d, want 1", stageNames[i], s.Count)
		}
	}

	cp := e.CriticalPath()
	if cp.Batches != 1 {
		t.Fatalf("CriticalPath batches = %d, want 1", cp.Batches)
	}
	if cp.Seconds <= 0 {
		t.Errorf("CriticalPath seconds = %v, want > 0", cp.Seconds)
	}
	if _, ok := cp.Stages["maint"]; ok {
		t.Errorf("maint fan-out wall must be excluded from the critical path")
	}
	var share float64
	for name, st := range cp.Stages {
		if st.Seconds < 0 || st.Share < 0 || st.Share > 1 {
			t.Errorf("stage %s out of range: %+v", name, st)
		}
		share += st.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("stage shares sum to %v, want 1", share)
	}
}

func names(spans []obs.CollectedSpan) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestFlightRecorderGroupedCommitStress hammers the group-commit
// scheduler with a flight recorder attached (run under -race): every
// recorded trace must be well-formed — exactly one root, every child
// parented to a span in the same trace, offsets within the root's
// duration — and the ring stays bounded.
func TestFlightRecorderGroupedCommitStress(t *testing.T) {
	e := newEngine(t)
	fr := obs.NewFlightRecorder(32, 0)
	e.SetObs(obs.NewRegistry(), fr)
	if err := e.CreateView(joinViewDef(t, e, "V"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	e.EnableGroupCommit(8, 200*time.Microsecond, nil)

	const workers, perWorker = 8, 24
	var wg sync.WaitGroup
	var traceMu sync.Mutex
	var firstTrace uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var tx delta.Tx
				tx.Insert("R", tuple.New(int64(w*1000+i), int64(i)))
				res, err := e.Execute(&tx)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if res.Trace != 0 {
					traceMu.Lock()
					firstTrace = res.Trace
					traceMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	e.DisableGroupCommit()

	if firstTrace == 0 {
		t.Fatalf("no grouped commit reported a trace id")
	}
	traces := fr.Traces()
	if len(traces) == 0 || len(traces) > 32 {
		t.Fatalf("recorder holds %d traces, want 1..32", len(traces))
	}
	// The ring mixes the groups' own db.commit_group traces with the
	// per-member db.commit traces that link to them; both must be
	// well-formed, and at least one group trace must survive.
	groups := 0
	for _, tr := range traces {
		switch tr.Name {
		case "db.commit_group":
			groups++
		case "db.commit":
		default:
			t.Errorf("trace %d root = %q, want db.commit or db.commit_group", tr.ID, tr.Name)
		}
		ids := map[uint64]bool{}
		roots := 0
		for _, s := range tr.Spans {
			ids[s.ID] = true
			if s.Parent == 0 {
				roots++
			}
		}
		if roots != 1 {
			t.Errorf("trace %d has %d roots, want 1", tr.ID, roots)
		}
		for _, s := range tr.Spans {
			if s.Parent != 0 && !ids[s.Parent] {
				t.Errorf("trace %d: span %d orphaned (parent %d absent)", tr.ID, s.ID, s.Parent)
			}
			if s.Offset < 0 || s.Offset > tr.Seconds+1e-9 {
				t.Errorf("trace %d: span %d offset %v outside root duration %v",
					tr.ID, s.ID, s.Offset, tr.Seconds)
			}
		}
		if len(tr.Critical) == 0 {
			t.Errorf("trace %d has no critical path", tr.ID)
		}
	}
	if groups == 0 {
		t.Errorf("no db.commit_group trace survived in the ring")
	}
}

// TestStalenessTracksDeferredBacklog checks the per-view staleness
// clock: fresh at creation, ticking once a commit stages backlog,
// fresh again after refresh — with the gauge mirroring each reading.
func TestStalenessTracksDeferredBacklog(t *testing.T) {
	e := newEngine(t)
	reg := obs.NewRegistry()
	e.SetObs(reg, nil)
	if err := e.CreateView(joinViewDef(t, e, "imm"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "def"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}

	if st := e.Staleness(); st["imm"] != 0 || st["def"] != 0 {
		t.Fatalf("fresh views report staleness %v", st)
	}
	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 5))
	exec(t, e, &tx)
	time.Sleep(2 * time.Millisecond)

	st := e.Staleness()
	if st["imm"] != 0 {
		t.Errorf("immediate view went stale: %v", st["imm"])
	}
	if st["def"] <= 0 {
		t.Errorf("deferred view staleness = %v, want > 0", st["def"])
	}
	g := series(t, reg, "mview_view_staleness_seconds", map[string]string{"view": "def"})
	if g.Value <= 0 {
		t.Errorf("staleness gauge = %v, want > 0", g.Value)
	}

	// A second commit must not reset the clock: staleness is the age of
	// the OLDEST unapplied change.
	before := st["def"]
	var tx2 delta.Tx
	tx2.Insert("R", tuple.New(3, 4))
	exec(t, e, &tx2)
	if st := e.Staleness(); st["def"] < before {
		t.Errorf("staleness went backwards after second commit: %v -> %v", before, st["def"])
	}

	if err := e.RefreshView("def"); err != nil {
		t.Fatal(err)
	}
	if st := e.Staleness(); st["def"] != 0 {
		t.Errorf("staleness after refresh = %v, want 0", st["def"])
	}
	g = series(t, reg, "mview_view_staleness_seconds", map[string]string{"view": "def"})
	if g.Value != 0 {
		t.Errorf("staleness gauge after refresh = %v, want 0", g.Value)
	}
}

// TestExplainAnalyze drives one immediate and one deferred view and
// checks the analyze section: counters, staleness wording, and the
// actual stage timings of the last maintenance with its trace id.
func TestExplainAnalyze(t *testing.T) {
	e := newEngine(t)
	e.SetObs(obs.NewRegistry(), obs.NewFlightRecorder(4, 0))
	if err := e.CreateView(joinViewDef(t, e, "imm"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(joinViewDef(t, e, "def"), ViewConfig{Mode: Deferred}); err != nil {
		t.Fatal(err)
	}

	// Before any commit: no maintenance recorded yet.
	out, err := e.ExplainAnalyze("imm")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "last maintenance: none recorded") {
		t.Errorf("pre-commit analyze missing 'none recorded':\n%s", out)
	}

	var tx delta.Tx
	tx.Insert("R", tuple.New(1, 2)).Insert("S", tuple.New(2, 5))
	res := exec(t, e, &tx)

	out, err = e.ExplainAnalyze("imm")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"analyze:", "counters: transactions=1", "staleness: fresh",
		"decision=differential", "compute=", "install=", "delta: +1/-0",
		fmt.Sprintf("trace=%d", res.Trace),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	// The trace id in the plan resolves in the flight recorder... once
	// tracing is hierarchical. The solo path's root is db.commit.
	if res.Trace == 0 {
		t.Errorf("TxResult.Trace = 0 with tracer attached")
	}

	out, err = e.ExplainAnalyze("def")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "behind (oldest unapplied change)") {
		t.Errorf("deferred analyze missing staleness line:\n%s", out)
	}
	if err := e.RefreshView("def"); err != nil {
		t.Fatal(err)
	}
	out, err = e.ExplainAnalyze("def")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "decision=") {
		t.Errorf("refreshed deferred analyze missing decision:\n%s", out)
	}
	if !strings.Contains(out, "staleness: fresh") {
		t.Errorf("refreshed deferred view not fresh:\n%s", out)
	}

	if _, err := e.ExplainAnalyze("nope"); err == nil {
		t.Errorf("ExplainAnalyze of unknown view must fail")
	}
}
