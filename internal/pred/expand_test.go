package pred

import (
	"testing"
	"testing/quick"
)

func TestExpandNENoNE(t *testing.T) {
	c := And(VarConst("A", OpLT, 10))
	out, err := ExpandNE(c, 0)
	if err != nil {
		t.Fatalf("ExpandNE: %v", err)
	}
	if len(out) != 1 || len(out[0].Atoms) != 1 {
		t.Errorf("out = %v", out)
	}
}

func TestExpandNESingle(t *testing.T) {
	c := And(VarVar("A", OpNE, "B", 0), VarConst("A", OpLT, 10))
	out, err := ExpandNE(c, 0)
	if err != nil {
		t.Fatalf("ExpandNE: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 conjuncts, got %v", out)
	}
	for _, conj := range out {
		if conj.HasNE() {
			t.Errorf("residual NE in %v", conj)
		}
		if len(conj.Atoms) != 2 {
			t.Errorf("conjunct %v lost an atom", conj)
		}
	}
}

// TestExpandNEEquivalence checks ∀ bindings: original ⇔ expansion.
func TestExpandNEEquivalence(t *testing.T) {
	c := And(
		VarVar("A", OpNE, "B", 1),
		VarConst("B", OpNE, 0),
		VarVar("A", OpLE, "B", 3),
	)
	out, err := ExpandNE(c, 0)
	if err != nil {
		t.Fatalf("ExpandNE: %v", err)
	}
	if len(out) != 4 {
		t.Fatalf("want 4 conjuncts, got %d", len(out))
	}
	f := func(a, b int8) bool {
		bind := bindMap(map[Var]int64{"A": int64(a), "B": int64(b)})
		want, err := c.Eval(bind)
		if err != nil {
			return false
		}
		got := false
		for _, conj := range out {
			ok, err := conj.Eval(bind)
			if err != nil {
				return false
			}
			got = got || ok
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpandNECap(t *testing.T) {
	atoms := make([]Atom, 6)
	for i := range atoms {
		atoms[i] = VarConst(Var(string(rune('A'+i))), OpNE, int64(i))
	}
	if _, err := ExpandNE(And(atoms...), 16); err == nil {
		t.Error("expected cap error for 2^6 expansion with cap 16")
	}
	out, err := ExpandNE(And(atoms...), 64)
	if err != nil {
		t.Fatalf("cap 64: %v", err)
	}
	if len(out) != 64 {
		t.Errorf("len = %d, want 64", len(out))
	}
}

func TestExpandNEDNF(t *testing.T) {
	d := Or(
		And(VarConst("A", OpNE, 1)),
		And(VarConst("B", OpLT, 5)),
	)
	out, err := ExpandNEDNF(d, 0)
	if err != nil {
		t.Fatalf("ExpandNEDNF: %v", err)
	}
	if len(out.Conjuncts) != 3 {
		t.Errorf("conjuncts = %d, want 3", len(out.Conjuncts))
	}
	if out.HasNE() {
		t.Error("NE survived expansion")
	}
	if _, err := ExpandNEDNF(d, 2); err == nil {
		t.Error("expected total cap to trigger")
	}
}
