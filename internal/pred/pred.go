// Package pred implements the Boolean selection conditions of
// Blakeley, Larson & Tompa §4: conjunctions (and disjunctions of
// conjunctions) of atomic formulae of the forms
//
//	x op y        x op y + c        x op c
//
// where x, y are variables naming attributes, c is an integer constant,
// and op ∈ {=, ≠, <, ≤, >, ≥}. The paper's efficiently decidable class
// (after Rosenkrantz & Hunt) excludes ≠; this package supports ≠ for
// evaluation and offers an optional exact DNF expansion of it
// (ExpandNE) for satisfiability testing.
//
// The package provides evaluation against tuples, the variable
// substitution C(t, Y2) of Definition 4.1, the variant/invariant
// classification of Definition 4.2, normalization to ≤/≥ form for the
// satisfiability graph, and a parser for a small textual syntax.
package pred

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mview/internal/schema"
	"mview/internal/tuple"
)

// Var names an attribute, possibly qualified ("R.A").
type Var = schema.Attribute

// Op is a comparison operator.
type Op uint8

// Comparison operators. OpEQ is the zero value.
const (
	OpEQ Op = iota // =
	OpNE           // ≠
	OpLT           // <
	OpLE           // ≤
	OpGT           // >
	OpGE           // ≥
)

// String returns the ASCII spelling used by the parser.
func (o Op) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Flip returns the operator with its operands exchanged:
// (x op y) ≡ (y Flip(op) x).
func (o Op) Flip() Op {
	switch o {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default: // =, ≠ are symmetric
		return o
	}
}

// Compare applies the operator to two integers.
func (o Op) Compare(a, b int64) bool {
	switch o {
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	default:
		return false
	}
}

// CompareShifted evaluates x op (y + c) exactly, even when y + c
// overflows int64. A naive y + c wraps around and silently inverts the
// comparison (e.g. x < y + c with y, c near MaxInt64); here an
// overflowed sum is treated as the out-of-range value it really is: no
// int64 x equals or exceeds a sum beyond MaxInt64, and none equals or
// undercuts a sum below MinInt64.
func (o Op) CompareShifted(x, y, c int64) bool {
	s := y + c
	if c > 0 && s < y { // y + c > MaxInt64 >= x
		return o == OpNE || o == OpLT || o == OpLE
	}
	if c < 0 && s > y { // y + c < MinInt64 <= x
		return o == OpNE || o == OpGT || o == OpGE
	}
	return o.Compare(x, s)
}

// AddSat returns a + b saturated at the int64 bounds. Substitution
// (Definition 4.1) folds tuple values into atom constants; saturating
// keeps an out-of-range bound at the nearest representable one, which
// over the engine's int64 attribute domain is exact for bounds that
// exclude nothing and conservative (never proving unsatisfiability of
// a satisfiable condition) for bounds that exclude everything.
func AddSat(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return maxInt64
	}
	if b < 0 && s > a {
		return minInt64
	}
	return s
}

// SubSat returns a - b saturated at the int64 bounds.
func SubSat(a, b int64) int64 {
	d := a - b
	if b < 0 && d < a {
		return maxInt64
	}
	if b > 0 && d > a {
		return minInt64
	}
	return d
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)

// Atom is one atomic formula. With Right == "" it reads "Left Op C";
// otherwise it reads "Left Op Right + C" (use C == 0 for "x op y").
type Atom struct {
	Left  Var
	Op    Op
	Right Var
	C     int64
}

// VarVar builds the atom "x op y + c".
func VarVar(x Var, op Op, y Var, c int64) Atom {
	return Atom{Left: x, Op: op, Right: y, C: c}
}

// VarConst builds the atom "x op c".
func VarConst(x Var, op Op, c int64) Atom {
	return Atom{Left: x, Op: op, C: c}
}

// HasRightVar reports whether the atom compares two variables.
func (a Atom) HasRightVar() bool { return a.Right != "" }

// String renders the atom in parser syntax.
func (a Atom) String() string {
	var rhs string
	switch {
	case !a.HasRightVar():
		rhs = strconv.FormatInt(a.C, 10)
	case a.C == 0:
		rhs = string(a.Right)
	case a.C > 0:
		rhs = fmt.Sprintf("%s + %d", a.Right, a.C)
	default:
		rhs = fmt.Sprintf("%s - %d", a.Right, -a.C)
	}
	return fmt.Sprintf("%s %s %s", a.Left, a.Op, rhs)
}

// Rename returns the atom with variables mapped through f.
func (a Atom) Rename(f func(Var) Var) Atom {
	a.Left = f(a.Left)
	if a.HasRightVar() {
		a.Right = f(a.Right)
	}
	return a
}

// Conjunction is the logical AND of its atoms. An empty conjunction is
// true.
type Conjunction struct {
	Atoms []Atom
}

// And builds a conjunction from atoms.
func And(atoms ...Atom) Conjunction { return Conjunction{Atoms: atoms} }

// True is the empty (always satisfied) conjunction.
func True() Conjunction { return Conjunction{} }

// String renders "a && b && c"; the empty conjunction renders "true".
func (c Conjunction) String() string {
	if len(c.Atoms) == 0 {
		return "true"
	}
	parts := make([]string, len(c.Atoms))
	for i, a := range c.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " && ")
}

// Vars returns the sorted set of variables mentioned by the
// conjunction — a(C) in the paper's notation.
func (c Conjunction) Vars() []Var {
	seen := make(map[Var]bool)
	for _, a := range c.Atoms {
		seen[a.Left] = true
		if a.HasRightVar() {
			seen[a.Right] = true
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rename returns the conjunction with all variables mapped through f.
func (c Conjunction) Rename(f func(Var) Var) Conjunction {
	out := make([]Atom, len(c.Atoms))
	for i, a := range c.Atoms {
		out[i] = a.Rename(f)
	}
	return Conjunction{Atoms: out}
}

// HasNE reports whether any atom uses ≠ (outside the
// Rosenkrantz–Hunt class).
func (c Conjunction) HasNE() bool {
	for _, a := range c.Atoms {
		if a.Op == OpNE {
			return true
		}
	}
	return false
}

// DNF is a disjunction of conjunctions, C1 ∨ … ∨ Cm. A DNF with no
// conjuncts is false; Always() is the canonical truth.
type DNF struct {
	Conjuncts []Conjunction
}

// Or builds a DNF from conjuncts.
func Or(cs ...Conjunction) DNF { return DNF{Conjuncts: cs} }

// Always is the always-true condition (one empty conjunct).
func Always() DNF { return DNF{Conjuncts: []Conjunction{True()}} }

// Never is the always-false condition (no conjuncts).
func Never() DNF { return DNF{} }

// String renders "(c1) || (c2)"; false renders "false".
func (d DNF) String() string {
	if len(d.Conjuncts) == 0 {
		return "false"
	}
	if len(d.Conjuncts) == 1 {
		return d.Conjuncts[0].String()
	}
	parts := make([]string, len(d.Conjuncts))
	for i, c := range d.Conjuncts {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " || ")
}

// Vars returns the sorted set of variables mentioned anywhere in the
// DNF.
func (d DNF) Vars() []Var {
	seen := make(map[Var]bool)
	for _, c := range d.Conjuncts {
		for _, v := range c.Vars() {
			seen[v] = true
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rename returns the DNF with all variables mapped through f.
func (d DNF) Rename(f func(Var) Var) DNF {
	out := make([]Conjunction, len(d.Conjuncts))
	for i, c := range d.Conjuncts {
		out[i] = c.Rename(f)
	}
	return DNF{Conjuncts: out}
}

// HasNE reports whether any conjunct contains a ≠ atom.
func (d DNF) HasNE() bool {
	for _, c := range d.Conjuncts {
		if c.HasNE() {
			return true
		}
	}
	return false
}

// Binding resolves a variable to a value. The second result reports
// whether the variable is bound.
type Binding func(Var) (tuple.Value, bool)

// EvalAtom evaluates one atom under a binding. It returns an error for
// unbound variables. The x op y + c form is evaluated with the
// overflow-safe CompareShifted, so values near the int64 bounds
// compare exactly.
func EvalAtom(a Atom, b Binding) (bool, error) {
	lv, ok := b(a.Left)
	if !ok {
		return false, fmt.Errorf("pred: unbound variable %q in %s", a.Left, a)
	}
	if !a.HasRightVar() {
		return a.Op.Compare(lv, a.C), nil
	}
	rv, ok := b(a.Right)
	if !ok {
		return false, fmt.Errorf("pred: unbound variable %q in %s", a.Right, a)
	}
	return a.Op.CompareShifted(lv, rv, a.C), nil
}

// Eval evaluates the conjunction under a binding.
func (c Conjunction) Eval(b Binding) (bool, error) {
	for _, a := range c.Atoms {
		ok, err := EvalAtom(a, b)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Eval evaluates the DNF under a binding.
func (d DNF) Eval(b Binding) (bool, error) {
	for _, c := range d.Conjuncts {
		ok, err := c.Eval(b)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// compiledAtom is one instruction of a Program: an atom with variable
// references resolved to tuple positions for fast evaluation.
type compiledAtom struct {
	op       Op
	leftPos  int32
	rightPos int32 // -1 when the right side is a constant
	c        int64
}

func (ca compiledAtom) eval(t tuple.Tuple) bool {
	if ca.rightPos >= 0 {
		return ca.op.CompareShifted(t[ca.leftPos], t[ca.rightPos], ca.c)
	}
	return ca.op.Compare(t[ca.leftPos], ca.c)
}

// Program is the compiled form of a condition over one scheme: every
// atom resolved to tuple positions, conjuncts flattened into one flat
// instruction table. Eval walks instructions only — no AST, no
// Binding closure, no attribute-name lookups, and no allocation. A
// Program is immutable and safe for concurrent use; compile once per
// (view, relation) pair and reuse it for every tuple (the engine
// caches programs alongside the §4 checkers, which embed them).
type Program struct {
	atoms []compiledAtom
	ends  []int // atoms[ends[i-1]:ends[i]] is conjunct i
}

// NumConjuncts returns the number of compiled conjuncts.
func (p *Program) NumConjuncts() int { return len(p.ends) }

// Eval reports whether the tuple satisfies the compiled condition
// (some conjunct's atoms all hold).
func (p *Program) Eval(t tuple.Tuple) bool {
	start := 0
	for _, end := range p.ends {
		ok := true
		for _, ca := range p.atoms[start:end] {
			if !ca.eval(t) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		start = end
	}
	return false
}

// EvalConjunct reports whether the tuple satisfies conjunct i alone.
func (p *Program) EvalConjunct(i int, t tuple.Tuple) bool {
	start := 0
	if i > 0 {
		start = p.ends[i-1]
	}
	for _, ca := range p.atoms[start:p.ends[i]] {
		if !ca.eval(t) {
			return false
		}
	}
	return true
}

func compileAtom(a Atom, s *schema.Scheme) (compiledAtom, error) {
	lp, ok := s.Pos(a.Left)
	if !ok {
		return compiledAtom{}, fmt.Errorf("pred: variable %q not in scheme %s", a.Left, s)
	}
	rp := -1
	if a.HasRightVar() {
		p, ok := s.Pos(a.Right)
		if !ok {
			return compiledAtom{}, fmt.Errorf("pred: variable %q not in scheme %s", a.Right, s)
		}
		rp = p
	}
	return compiledAtom{op: a.Op, leftPos: int32(lp), rightPos: int32(rp), c: a.C}, nil
}

// CompileProgram resolves the DNF's variables against a scheme. It
// returns an error if any variable is missing from the scheme.
func (d DNF) CompileProgram(s *schema.Scheme) (*Program, error) {
	p := &Program{ends: make([]int, 0, len(d.Conjuncts))}
	for _, c := range d.Conjuncts {
		for _, a := range c.Atoms {
			ca, err := compileAtom(a, s)
			if err != nil {
				return nil, err
			}
			p.atoms = append(p.atoms, ca)
		}
		p.ends = append(p.ends, len(p.atoms))
	}
	return p, nil
}

// CompileAtoms compiles a bare atom list (one conjunct) against a
// scheme, for callers that assemble conjuncts themselves (the §4
// checker's variant-evaluable subexpression, plan filters).
func CompileAtoms(atoms []Atom, s *schema.Scheme) (*Program, error) {
	return DNF{Conjuncts: []Conjunction{{Atoms: atoms}}}.CompileProgram(s)
}

// Compile resolves the DNF's variables against a scheme, returning a
// fast predicate over tuples of that scheme (Program.Eval bound to the
// compiled program). It returns an error if any variable is missing
// from the scheme.
func (d DNF) Compile(s *schema.Scheme) (func(tuple.Tuple) bool, error) {
	p, err := d.CompileProgram(s)
	if err != nil {
		return nil, err
	}
	return p.Eval, nil
}
