package pred

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a selection condition in a small textual syntax and
// returns it in disjunctive normal form.
//
// Grammar (whitespace-insensitive):
//
//	expr  := and ( ("||" | "or")  and )*
//	and   := prim ( ("&&" | "and") prim )*
//	prim  := "(" expr ")" | "true" | "false" | atom
//	atom  := ident op rhs
//	rhs   := ident [ ("+"|"-") int ] | int
//	op    := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//
// Identifiers may be qualified ("R.A"). Nested boolean structure is
// distributed into DNF; the number of resulting conjuncts is capped at
// 4096 to bound pathological inputs.
func Parse(input string) (DNF, error) {
	p := &parser{lex: newLexer(input)}
	if err := p.next(); err != nil {
		return DNF{}, err
	}
	if p.tok.kind == tokEOF {
		return Always(), nil
	}
	node, err := p.parseExpr()
	if err != nil {
		return DNF{}, err
	}
	if p.tok.kind != tokEOF {
		return DNF{}, fmt.Errorf("pred: unexpected %q at end of condition", p.tok.text)
	}
	return node.toDNF()
}

// MustParse is Parse for statically known conditions; it panics on
// error.
func MustParse(input string) DNF {
	d, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}

const maxParsedConjuncts = 4096

type nodeKind uint8

const (
	nodeAtom nodeKind = iota
	nodeAnd
	nodeOr
	nodeTrue
	nodeFalse
)

type node struct {
	kind nodeKind
	atom Atom
	kids []*node
}

// toDNF distributes the boolean tree into disjunctive normal form.
func (n *node) toDNF() (DNF, error) {
	switch n.kind {
	case nodeTrue:
		return Always(), nil
	case nodeFalse:
		return Never(), nil
	case nodeAtom:
		return Or(And(n.atom)), nil
	case nodeOr:
		var out []Conjunction
		for _, k := range n.kids {
			d, err := k.toDNF()
			if err != nil {
				return DNF{}, err
			}
			out = append(out, d.Conjuncts...)
			if len(out) > maxParsedConjuncts {
				return DNF{}, fmt.Errorf("pred: condition expands past %d DNF conjuncts", maxParsedConjuncts)
			}
		}
		return DNF{Conjuncts: out}, nil
	case nodeAnd:
		acc := []Conjunction{True()}
		for _, k := range n.kids {
			d, err := k.toDNF()
			if err != nil {
				return DNF{}, err
			}
			if len(d.Conjuncts) == 0 {
				return Never(), nil // AND with false
			}
			if len(acc)*len(d.Conjuncts) > maxParsedConjuncts {
				return DNF{}, fmt.Errorf("pred: condition expands past %d DNF conjuncts", maxParsedConjuncts)
			}
			next := make([]Conjunction, 0, len(acc)*len(d.Conjuncts))
			for _, a := range acc {
				for _, b := range d.Conjuncts {
					atoms := make([]Atom, 0, len(a.Atoms)+len(b.Atoms))
					atoms = append(atoms, a.Atoms...)
					atoms = append(atoms, b.Atoms...)
					next = append(next, Conjunction{Atoms: atoms})
				}
			}
			acc = next
		}
		return DNF{Conjuncts: acc}, nil
	default:
		return DNF{}, fmt.Errorf("pred: internal: unknown node kind %d", n.kind)
	}
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokOp     // comparison operator
	tokAnd    // && / and
	tokOr     // || / or
	tokLParen // (
	tokRParen // )
	tokPlus   // +
	tokMinus  // -
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	in  string
	pos int
}

func newLexer(in string) *lexer { return &lexer{in: in} }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentRest(c byte) bool {
	return isIdentStart(c) || c == '.' || (c >= '0' && c <= '9')
}

func (l *lexer) lex() (token, error) {
	for l.pos < len(l.in) && (l.in[l.pos] == ' ' || l.in[l.pos] == '\t' || l.in[l.pos] == '\n' || l.in[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF}, nil
	}
	c := l.in[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "("}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")"}, nil
	case c == '+':
		l.pos++
		return token{kind: tokPlus, text: "+"}, nil
	case c == '-':
		l.pos++
		return token{kind: tokMinus, text: "-"}, nil
	case c == '&':
		if strings.HasPrefix(l.in[l.pos:], "&&") {
			l.pos += 2
			return token{kind: tokAnd, text: "&&"}, nil
		}
		return token{}, fmt.Errorf("pred: stray '&' at offset %d", l.pos)
	case c == '|':
		if strings.HasPrefix(l.in[l.pos:], "||") {
			l.pos += 2
			return token{kind: tokOr, text: "||"}, nil
		}
		return token{}, fmt.Errorf("pred: stray '|' at offset %d", l.pos)
	case c == '=', c == '!', c == '<', c == '>':
		for _, op := range []string{"==", "!=", "<>", "<=", ">=", "=", "<", ">"} {
			if strings.HasPrefix(l.in[l.pos:], op) {
				l.pos += len(op)
				return token{kind: tokOp, text: op}, nil
			}
		}
		return token{}, fmt.Errorf("pred: bad operator at offset %d", l.pos)
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.in) && l.in[l.pos] >= '0' && l.in[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tokInt, text: l.in[start:l.pos]}, nil
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.in) && isIdentRest(l.in[l.pos]) {
			l.pos++
		}
		word := l.in[start:l.pos]
		switch strings.ToLower(word) {
		case "and":
			return token{kind: tokAnd, text: word}, nil
		case "or":
			return token{kind: tokOr, text: word}, nil
		}
		return token{kind: tokIdent, text: word}, nil
	default:
		return token{}, fmt.Errorf("pred: unexpected character %q at offset %d", c, l.pos)
	}
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) parseExpr() (*node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []*node{left}
	for p.tok.kind == tokOr {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &node{kind: nodeOr, kids: kids}, nil
}

func (p *parser) parseAnd() (*node, error) {
	left, err := p.parsePrim()
	if err != nil {
		return nil, err
	}
	kids := []*node{left}
	for p.tok.kind == tokAnd {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parsePrim()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &node{kind: nodeAnd, kids: kids}, nil
}

func (p *parser) parsePrim() (*node, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("pred: expected ')', got %q", p.tok.text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return n, nil
	case tokIdent:
		switch strings.ToLower(p.tok.text) {
		case "true":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &node{kind: nodeTrue}, nil
		case "false":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &node{kind: nodeFalse}, nil
		}
		return p.parseAtom()
	default:
		return nil, fmt.Errorf("pred: expected condition, got %q", p.tok.text)
	}
}

func (p *parser) parseOp(text string) (Op, error) {
	switch text {
	case "=", "==":
		return OpEQ, nil
	case "!=", "<>":
		return OpNE, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLE, nil
	case ">":
		return OpGT, nil
	case ">=":
		return OpGE, nil
	default:
		return 0, fmt.Errorf("pred: unknown operator %q", text)
	}
}

func (p *parser) parseInt(neg bool) (int64, error) {
	if p.tok.kind != tokInt {
		return 0, fmt.Errorf("pred: expected integer, got %q", p.tok.text)
	}
	v, err := strconv.ParseInt(p.tok.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("pred: bad integer %q: %w", p.tok.text, err)
	}
	if err := p.next(); err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseAtom() (*node, error) {
	left := Var(p.tok.text)
	if err := p.next(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokOp {
		return nil, fmt.Errorf("pred: expected comparison operator after %q, got %q", left, p.tok.text)
	}
	op, err := p.parseOp(p.tok.text)
	if err != nil {
		return nil, err
	}
	if err := p.next(); err != nil {
		return nil, err
	}

	switch p.tok.kind {
	case tokMinus:
		if err := p.next(); err != nil {
			return nil, err
		}
		c, err := p.parseInt(true)
		if err != nil {
			return nil, err
		}
		return &node{kind: nodeAtom, atom: VarConst(left, op, c)}, nil
	case tokInt:
		c, err := p.parseInt(false)
		if err != nil {
			return nil, err
		}
		return &node{kind: nodeAtom, atom: VarConst(left, op, c)}, nil
	case tokIdent:
		right := Var(p.tok.text)
		if err := p.next(); err != nil {
			return nil, err
		}
		var c int64
		if p.tok.kind == tokPlus || p.tok.kind == tokMinus {
			neg := p.tok.kind == tokMinus
			if err := p.next(); err != nil {
				return nil, err
			}
			v, err := p.parseInt(neg)
			if err != nil {
				return nil, err
			}
			c = v
		}
		return &node{kind: nodeAtom, atom: VarVar(left, op, right, c)}, nil
	default:
		return nil, fmt.Errorf("pred: expected value after operator, got %q", p.tok.text)
	}
}
