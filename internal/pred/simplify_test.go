package pred

import (
	"math/rand"
	"testing"
)

func TestImpliesBasics(t *testing.T) {
	cases := []struct {
		c    string
		a    Atom
		want bool
	}{
		{"A < 5", VarConst("A", OpLT, 10), true},
		{"A < 10", VarConst("A", OpLT, 5), false},
		{"A < 5 && B = A", VarConst("B", OpLT, 5), true},
		{"A <= B && B <= C", VarVar("A", OpLE, "C", 0), true},
		{"A <= B && B <= C", VarVar("A", OpLT, "C", 0), false},
		{"A = 7", VarConst("A", OpGE, 7), true},
		{"A = 7", VarConst("A", OpLE, 7), true},
		{"A = 7", VarConst("A", OpEQ, 8), false},
		// Unsatisfiable premises imply everything.
		{"A < 0 && A > 0", VarConst("Z", OpEQ, 42), true},
		// Unconstrained variable.
		{"A < 5", VarConst("Z", OpLT, 10), false},
	}
	for _, cs := range cases {
		conj := MustParse(cs.c).Conjuncts[0]
		got, err := Implies(conj, cs.a)
		if err != nil {
			t.Fatalf("Implies(%q, %s): %v", cs.c, cs.a, err)
		}
		if got != cs.want {
			t.Errorf("Implies(%q, %s) = %v, want %v", cs.c, cs.a, got, cs.want)
		}
	}
}

func TestImpliesRejectsNE(t *testing.T) {
	conj := MustParse("A != 1").Conjuncts[0]
	if _, err := Implies(conj, VarConst("A", OpLT, 5)); err == nil {
		t.Error("NE premise must error")
	}
	if _, err := Implies(True(), VarConst("A", OpNE, 5)); err == nil {
		t.Error("NE conclusion must error")
	}
}

func TestMinimizeConjunction(t *testing.T) {
	cases := []struct {
		in       string
		maxAtoms int
	}{
		{"A < 5 && A < 10", 1},
		{"A < 5 && A < 10 && A < 7", 1},
		{"A <= B && B <= C && A <= C", 2},
		{"A < 5 && B > 3", 2},            // nothing redundant
		{"A = B && B = C && A = C", 2},   // one equality follows
		{"A != 3 && A != 3 && A < 5", 3}, // NE atoms always kept
	}
	for _, cs := range cases {
		conj := MustParse(cs.in).Conjuncts[0]
		got := MinimizeConjunction(conj)
		if len(got.Atoms) > cs.maxAtoms {
			t.Errorf("Minimize(%q) kept %d atoms (%s), want ≤ %d", cs.in, len(got.Atoms), got, cs.maxAtoms)
		}
	}
}

// TestMinimizeEquivalence: minimization must preserve semantics over
// random assignments.
func TestMinimizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vars := []Var{"A", "B", "C"}
	ops := []Op{OpEQ, OpLT, OpLE, OpGT, OpGE}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		atoms := make([]Atom, n)
		for i := range atoms {
			x := vars[rng.Intn(len(vars))]
			op := ops[rng.Intn(len(ops))]
			if rng.Intn(2) == 0 {
				atoms[i] = VarConst(x, op, int64(rng.Intn(9)-4))
			} else {
				atoms[i] = VarVar(x, op, vars[rng.Intn(len(vars))], int64(rng.Intn(9)-4))
			}
		}
		orig := And(atoms...)
		min := MinimizeConjunction(orig)
		if len(min.Atoms) > len(orig.Atoms) {
			t.Fatalf("minimization grew the conjunction")
		}
		for probe := 0; probe < 200; probe++ {
			bind := bindMap(map[Var]int64{
				"A": int64(rng.Intn(13) - 6),
				"B": int64(rng.Intn(13) - 6),
				"C": int64(rng.Intn(13) - 6),
			})
			a, err := orig.Eval(bind)
			if err != nil {
				t.Fatal(err)
			}
			b, err := min.Eval(bind)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("Minimize changed semantics: %s vs %s", orig, min)
			}
		}
	}
}

func TestSimplifyDNF(t *testing.T) {
	// One dead conjunct, one live redundant one.
	d := MustParse("(A < 0 && A > 5) || (B < 5 && B < 9)")
	out, dropped := SimplifyDNF(d)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if len(out.Conjuncts) != 1 || len(out.Conjuncts[0].Atoms) != 1 {
		t.Errorf("out = %s", out)
	}

	// NE conjunct whose decidable part is dead is still dropped.
	d2 := MustParse("(A != 7 && A < 0 && A > 5) || (B = 1)")
	out2, dropped2 := SimplifyDNF(d2)
	if dropped2 != 1 || len(out2.Conjuncts) != 1 {
		t.Errorf("NE-dead: out = %s, dropped = %d", out2, dropped2)
	}

	// NE conjunct with satisfiable decidable part is kept verbatim.
	d3 := MustParse("A != 7 && A < 100")
	out3, dropped3 := SimplifyDNF(d3)
	if dropped3 != 0 || len(out3.Conjuncts[0].Atoms) != 2 {
		t.Errorf("NE-live: out = %s", out3)
	}

	// All conjuncts dead → Never.
	d4 := MustParse("(A < 0 && A > 0) || (B < 1 && B > 1)")
	out4, dropped4 := SimplifyDNF(d4)
	if dropped4 != 2 || len(out4.Conjuncts) != 0 {
		t.Errorf("all-dead: out = %s, dropped = %d", out4, dropped4)
	}
}

// TestSimplifyDNFEquivalence fuzzes equivalence of SimplifyDNF.
func TestSimplifyDNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	vars := []Var{"A", "B"}
	ops := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	for trial := 0; trial < 200; trial++ {
		nc := 1 + rng.Intn(3)
		var conjs []Conjunction
		for i := 0; i < nc; i++ {
			n := 1 + rng.Intn(4)
			atoms := make([]Atom, n)
			for j := range atoms {
				atoms[j] = VarConst(vars[rng.Intn(2)], ops[rng.Intn(len(ops))], int64(rng.Intn(9)-4))
			}
			conjs = append(conjs, And(atoms...))
		}
		orig := Or(conjs...)
		simp, _ := SimplifyDNF(orig)
		for probe := 0; probe < 150; probe++ {
			bind := bindMap(map[Var]int64{
				"A": int64(rng.Intn(13) - 6),
				"B": int64(rng.Intn(13) - 6),
			})
			a, err := orig.Eval(bind)
			if err != nil {
				t.Fatal(err)
			}
			b, err := simp.Eval(bind)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("SimplifyDNF changed semantics:\n%s\n%s", orig, simp)
			}
		}
	}
}
