package pred

import (
	"strings"
	"testing"
)

func TestParseSimpleConjunction(t *testing.T) {
	d, err := Parse("A < 10 && C > 5 && B = C")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(d.Conjuncts) != 1 {
		t.Fatalf("conjuncts = %d", len(d.Conjuncts))
	}
	atoms := d.Conjuncts[0].Atoms
	if len(atoms) != 3 {
		t.Fatalf("atoms = %v", atoms)
	}
	if atoms[0] != VarConst("A", OpLT, 10) {
		t.Errorf("atom0 = %v", atoms[0])
	}
	if atoms[2] != VarVar("B", OpEQ, "C", 0) {
		t.Errorf("atom2 = %v", atoms[2])
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]Op{
		"A = 1": OpEQ, "A == 1": OpEQ,
		"A != 1": OpNE, "A <> 1": OpNE,
		"A < 1": OpLT, "A <= 1": OpLE,
		"A > 1": OpGT, "A >= 1": OpGE,
	}
	for in, op := range cases {
		d, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := d.Conjuncts[0].Atoms[0].Op; got != op {
			t.Errorf("Parse(%q) op = %v, want %v", in, got, op)
		}
	}
}

func TestParseOffsetsAndNegatives(t *testing.T) {
	d := MustParse("A <= B + 3 && C >= D - 4 && E < -7")
	atoms := d.Conjuncts[0].Atoms
	if atoms[0] != VarVar("A", OpLE, "B", 3) {
		t.Errorf("atom0 = %v", atoms[0])
	}
	if atoms[1] != VarVar("C", OpGE, "D", -4) {
		t.Errorf("atom1 = %v", atoms[1])
	}
	if atoms[2] != VarConst("E", OpLT, -7) {
		t.Errorf("atom2 = %v", atoms[2])
	}
}

func TestParseQualifiedNames(t *testing.T) {
	d := MustParse("R.A = S.B")
	if d.Conjuncts[0].Atoms[0] != VarVar("R.A", OpEQ, "S.B", 0) {
		t.Errorf("atom = %v", d.Conjuncts[0].Atoms[0])
	}
}

func TestParseDisjunction(t *testing.T) {
	d := MustParse("A < 0 || A > 10 || B = 1")
	if len(d.Conjuncts) != 3 {
		t.Fatalf("conjuncts = %d", len(d.Conjuncts))
	}
}

func TestParseDistribution(t *testing.T) {
	// (a || b) && (c || d) must expand to 4 conjuncts.
	d := MustParse("(A = 1 || A = 2) && (B = 1 || B = 2)")
	if len(d.Conjuncts) != 4 {
		t.Fatalf("conjuncts = %d, want 4", len(d.Conjuncts))
	}
	for _, c := range d.Conjuncts {
		if len(c.Atoms) != 2 {
			t.Errorf("conjunct %v should have 2 atoms", c)
		}
	}
}

func TestParseAndOrKeywords(t *testing.T) {
	d := MustParse("A = 1 AND B = 2 or C = 3")
	if len(d.Conjuncts) != 2 {
		t.Fatalf("conjuncts = %d", len(d.Conjuncts))
	}
	if len(d.Conjuncts[0].Atoms) != 2 {
		t.Errorf("first conjunct = %v", d.Conjuncts[0])
	}
}

func TestParseTrueFalseEmpty(t *testing.T) {
	if d := MustParse(""); len(d.Conjuncts) != 1 || len(d.Conjuncts[0].Atoms) != 0 {
		t.Errorf("empty input should be Always, got %v", d)
	}
	if d := MustParse("true"); len(d.Conjuncts) != 1 || len(d.Conjuncts[0].Atoms) != 0 {
		t.Errorf("true should be Always, got %v", d)
	}
	if d := MustParse("false"); len(d.Conjuncts) != 0 {
		t.Errorf("false should be Never, got %v", d)
	}
	// false inside AND annihilates.
	if d := MustParse("A = 1 && false"); len(d.Conjuncts) != 0 {
		t.Errorf("x && false should be Never, got %v", d)
	}
	// true inside AND is identity.
	if d := MustParse("A = 1 && true"); len(d.Conjuncts) != 1 || len(d.Conjuncts[0].Atoms) != 1 {
		t.Errorf("x && true should be x, got %v", d)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"A <",
		"A",
		"< 10",
		"A = 1 &&",
		"A = 1 & B = 2",
		"A = 1 | B = 2",
		"(A = 1",
		"A = 1)",
		"A = 1 extra",
		"A = B + ",
		"A = 99999999999999999999999999",
		"A $ 1",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	inputs := []string{
		"A < 10 && C > 5 && B = C",
		"(A < 0) || (A > 10)",
		"A <= B + 3",
		"A >= B - 2 && C != 7",
	}
	for _, in := range inputs {
		d1 := MustParse(in)
		d2, err := Parse(d1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", d1.String(), err)
		}
		if d1.String() != d2.String() {
			t.Errorf("round trip drifted: %q → %q", d1.String(), d2.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("<<")
}

func TestParseDeepNesting(t *testing.T) {
	// Build a condition whose naive DNF is huge and check the cap trips.
	var sb strings.Builder
	for i := 0; i < 14; i++ {
		if i > 0 {
			sb.WriteString(" && ")
		}
		sb.WriteString("(A = 1 || A = 2 || A = 3)")
	}
	if _, err := Parse(sb.String()); err == nil {
		t.Error("expected DNF explosion cap to trigger")
	}
}
