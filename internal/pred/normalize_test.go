package pred

import (
	"errors"
	"testing"
	"testing/quick"
)

// checkConstraint evaluates a normalized constraint under an
// assignment, treating ZeroVar as 0.
func checkConstraint(c Constraint, val map[Var]int64) bool {
	get := func(v Var) int64 {
		if v == ZeroVar {
			return 0
		}
		return val[v]
	}
	return get(c.X) <= get(c.Y)+c.C
}

// TestNormalizeEquivalence verifies, by exhaustive small-domain
// enumeration, that each atom is logically equivalent to the
// conjunction of its normalized constraints (the core soundness of the
// §4 normalization).
func TestNormalizeEquivalence(t *testing.T) {
	ops := []Op{OpEQ, OpLT, OpLE, OpGT, OpGE}
	for _, op := range ops {
		for c := int64(-2); c <= 2; c++ {
			// Two-variable atom x op y + c.
			a := VarVar("x", op, "y", c)
			cons, err := Normalize(a)
			if err != nil {
				t.Fatalf("Normalize(%s): %v", a, err)
			}
			for x := int64(-3); x <= 3; x++ {
				for y := int64(-3); y <= 3; y++ {
					val := map[Var]int64{"x": x, "y": y}
					want := op.Compare(x, y+c)
					got := true
					for _, cc := range cons {
						got = got && checkConstraint(cc, val)
					}
					if got != want {
						t.Fatalf("%s at x=%d,y=%d: normalized=%v, atom=%v (%v)", a, x, y, got, want, cons)
					}
				}
			}
			// Constant atom x op c.
			b := VarConst("x", op, c)
			cons, err = Normalize(b)
			if err != nil {
				t.Fatalf("Normalize(%s): %v", b, err)
			}
			for x := int64(-3); x <= 3; x++ {
				val := map[Var]int64{"x": x}
				want := op.Compare(x, c)
				got := true
				for _, cc := range cons {
					got = got && checkConstraint(cc, val)
				}
				if got != want {
					t.Fatalf("%s at x=%d: normalized=%v, atom=%v", b, x, got, want)
				}
			}
		}
	}
}

func TestNormalizeRejectsNE(t *testing.T) {
	_, err := Normalize(VarConst("x", OpNE, 1))
	var oc ErrOutsideClass
	if !errors.As(err, &oc) {
		t.Fatalf("want ErrOutsideClass, got %v", err)
	}
	if oc.Error() == "" {
		t.Error("error message empty")
	}
}

func TestNormalizeConjunction(t *testing.T) {
	c := And(VarConst("A", OpLT, 10), VarVar("B", OpEQ, "C", 0))
	cons, err := NormalizeConjunction(c)
	if err != nil {
		t.Fatalf("NormalizeConjunction: %v", err)
	}
	// A<10 → 1 constraint; B=C → 2 constraints.
	if len(cons) != 3 {
		t.Errorf("constraints = %v", cons)
	}
	if _, err := NormalizeConjunction(And(VarConst("A", OpNE, 1))); err == nil {
		t.Error("NE must propagate error")
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{X: "x", Y: ZeroVar, C: 5}
	if got := c.String(); got != "x <= '0' + 5" {
		t.Errorf("String = %q", got)
	}
}

// TestNormalizeEquivalenceQuick extends the equivalence check to
// random 64-bit-ish values via testing/quick.
func TestNormalizeEquivalenceQuick(t *testing.T) {
	f := func(x, y int64, c int32, opIdx uint8) bool {
		// Keep magnitudes moderate to avoid overflow in y+c.
		x, y = x%1_000_000, y%1_000_000
		op := []Op{OpEQ, OpLT, OpLE, OpGT, OpGE}[int(opIdx)%5]
		a := VarVar("x", op, "y", int64(c))
		cons, err := Normalize(a)
		if err != nil {
			return false
		}
		val := map[Var]int64{"x": x, "y": y}
		want := op.Compare(x, y+int64(c))
		got := true
		for _, cc := range cons {
			got = got && checkConstraint(cc, val)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
