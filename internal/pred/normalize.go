package pred

import "fmt"

// ZeroVar is the distinguished node "0" of the Rosenkrantz–Hunt
// construction: a pseudo-variable whose value is the constant zero,
// letting constant bounds x op c be treated as x op ZeroVar + c. The
// name is deliberately unspellable as a real attribute.
const ZeroVar Var = "\x00zero\x00"

// Constraint is a normalized atomic formula x ≤ y + c (a difference
// constraint). Either side may be ZeroVar. A conjunction of
// constraints is satisfiable over the integers iff the corresponding
// weighted digraph has no negative cycle (§4).
type Constraint struct {
	X, Y Var
	C    int64
}

// String renders the constraint as "x <= y + c".
func (c Constraint) String() string {
	return fmt.Sprintf("%s <= %s + %d", displayVar(c.X), displayVar(c.Y), c.C)
}

func displayVar(v Var) string {
	if v == ZeroVar {
		return "'0'"
	}
	return string(v)
}

// ErrOutsideClass reports an atom outside the Rosenkrantz–Hunt class
// (currently: any use of ≠). Callers may fall back to a conservative
// answer or expand the atom via ExpandNE.
type ErrOutsideClass struct {
	Atom Atom
}

func (e ErrOutsideClass) Error() string {
	return fmt.Sprintf("pred: atom %q is outside the Rosenkrantz–Hunt class (operator !=)", e.Atom)
}

// Normalize rewrites one atom into equivalent ≤-constraints, following
// §4's normalization procedure:
//
//	x <  y + c  →  x ≤ y + c − 1
//	x >  y + c  →  y ≤ x − c − 1
//	x =  y + c  →  x ≤ y + c  ∧  y ≤ x − c
//	x ≤  y + c  →  x ≤ y + c
//	x ≥  y + c  →  y ≤ x − c
//
// Constant comparisons x op c are treated as x op ZeroVar + c. The
// paper writes the two constant-edge translations with origin and
// destination exchanged relative to its variable-edge rule; we use one
// consistent convention throughout (cycle weights, and hence the
// satisfiability verdict, are unaffected by the choice).
//
// Normalize returns ErrOutsideClass for ≠.
func Normalize(a Atom) ([]Constraint, error) {
	return AppendNormalize(make([]Constraint, 0, 2), a)
}

// AppendNormalize appends a's normalized constraints to dst and
// returns the extended slice, letting per-tuple callers (the §4
// irrelevance fast path) reuse one scratch buffer instead of paying
// Normalize's slice allocation per atom.
func AppendNormalize(dst []Constraint, a Atom) ([]Constraint, error) {
	x, y, c := a.Left, a.Right, a.C
	if !a.HasRightVar() {
		y = ZeroVar
	}
	switch a.Op {
	case OpLE:
		return append(dst, Constraint{X: x, Y: y, C: c}), nil
	case OpLT:
		return append(dst, Constraint{X: x, Y: y, C: c - 1}), nil
	case OpGE:
		return append(dst, Constraint{X: y, Y: x, C: -c}), nil
	case OpGT:
		return append(dst, Constraint{X: y, Y: x, C: -c - 1}), nil
	case OpEQ:
		return append(dst, Constraint{X: x, Y: y, C: c}, Constraint{X: y, Y: x, C: -c}), nil
	case OpNE:
		return dst, ErrOutsideClass{Atom: a}
	default:
		return dst, fmt.Errorf("pred: cannot normalize unknown operator in %q", a)
	}
}

// NormalizeConjunction rewrites every atom of the conjunction,
// returning the combined constraint list or ErrOutsideClass if any atom
// uses ≠.
func NormalizeConjunction(c Conjunction) ([]Constraint, error) {
	out := make([]Constraint, 0, len(c.Atoms)+len(c.Atoms)/2)
	for _, a := range c.Atoms {
		cs, err := Normalize(a)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
	}
	return out, nil
}
