package pred

// Satisfiability-based condition simplification, after the direction
// the paper's §5.4 observation (i) points at (Aho–Sagiv–Ullman tableau
// minimization extended to inequalities, [KBO]): with the
// Rosenkrantz–Hunt machinery in hand, implication between atoms in the
// decidable class is itself decidable, so conditions can be minimized
// before any plans or checkers are built from them.
//
// These functions live in pred (rather than satgraph) to keep the
// dependency direction substrate → algorithms; they use the
// closure-based implication test below, which mirrors satgraph's
// Floyd–Warshall but needs no graph object.

import "math"

// infWeight mirrors satgraph.Inf; duplicated to avoid an import cycle
// (satgraph depends on pred).
const infWeight int64 = math.MaxInt64 / 4

func saturate(a, b int64) int64 {
	if a >= infWeight || b >= infWeight {
		return infWeight
	}
	s := a + b
	switch {
	case s > infWeight:
		return infWeight
	case s < -infWeight:
		return -infWeight
	default:
		return s
	}
}

// closure computes all-pairs shortest paths over the constraints'
// variables (plus ZeroVar). It reports ok=false when the constraint
// set is unsatisfiable (negative cycle).
func closure(cons []Constraint) (dist map[Var]map[Var]int64, ok bool) {
	vars := map[Var]bool{ZeroVar: true}
	for _, c := range cons {
		vars[c.X] = true
		vars[c.Y] = true
	}
	dist = make(map[Var]map[Var]int64, len(vars))
	for a := range vars {
		row := make(map[Var]int64, len(vars))
		for b := range vars {
			if a == b {
				row[b] = 0
			} else {
				row[b] = infWeight
			}
		}
		dist[a] = row
	}
	for _, c := range cons {
		w := c.C
		if w > infWeight {
			w = infWeight
		} else if w < -infWeight {
			w = -infWeight
		}
		if w < dist[c.Y][c.X] {
			dist[c.Y][c.X] = w
		}
	}
	for k := range vars {
		for i := range vars {
			dik := dist[i][k]
			if dik >= infWeight {
				continue
			}
			for j := range vars {
				if alt := saturate(dik, dist[k][j]); alt < dist[i][j] {
					dist[i][j] = alt
				}
			}
		}
	}
	for v := range vars {
		if dist[v][v] < 0 {
			return dist, false
		}
	}
	return dist, true
}

// Implies reports whether the conjunction c entails atom a over the
// integers (c ⊨ a), for conditions in the Rosenkrantz–Hunt class. It
// returns ErrOutsideClass if c or a uses ≠.
//
// An unsatisfiable c implies everything.
func Implies(c Conjunction, a Atom) (bool, error) {
	cons, err := NormalizeConjunction(c)
	if err != nil {
		return false, err
	}
	target, err := Normalize(a)
	if err != nil {
		return false, err
	}
	dist, ok := closure(cons)
	if !ok {
		return true, nil // false implies everything
	}
	// c ⊨ (x ≤ y + w) iff the closure already bounds x − y by ≤ w.
	for _, t := range target {
		row, okY := dist[t.Y]
		if !okY {
			return false, nil // variable unconstrained by c
		}
		d, okX := row[t.X]
		if !okX || d > t.C {
			return false, nil
		}
	}
	return true, nil
}

// MinimizeConjunction removes atoms entailed by the remaining ones,
// returning an equivalent, irredundant conjunction. Atoms outside the
// decidable class (≠) are always kept. The scan is greedy
// (first-removable-first), which yields a minimal — not necessarily
// minimum — atom set, as in tableau minimization practice.
func MinimizeConjunction(c Conjunction) Conjunction {
	atoms := append([]Atom{}, c.Atoms...)
	for i := 0; i < len(atoms); i++ {
		if atoms[i].Op == OpNE {
			continue
		}
		rest := make([]Atom, 0, len(atoms)-1)
		restHasNE := false
		for j, a := range atoms {
			if j == i {
				continue
			}
			if a.Op == OpNE {
				restHasNE = true
				continue // implication test runs on the decidable part
			}
			rest = append(rest, a)
		}
		implied, err := Implies(Conjunction{Atoms: rest}, atoms[i])
		if err != nil || !implied {
			continue
		}
		// With ≠ atoms excluded from `rest`, entailment still holds:
		// adding conjuncts only strengthens the left side.
		_ = restHasNE
		atoms = append(atoms[:i], atoms[i+1:]...)
		i--
	}
	return Conjunction{Atoms: atoms}
}

// SimplifyDNF drops statically unsatisfiable conjuncts (they
// contribute no tuples in any database state) and minimizes the
// survivors. Conjuncts containing ≠ atoms are kept unless their
// ≠-free part is already unsatisfiable (removing atoms can only grow
// the satisfying set, so an unsatisfiable subset proves the whole
// conjunct dead). The result is equivalent to the input; dropped
// reports how many conjuncts were eliminated.
func SimplifyDNF(d DNF) (out DNF, dropped int) {
	out = DNF{Conjuncts: make([]Conjunction, 0, len(d.Conjuncts))}
	for _, c := range d.Conjuncts {
		decidable := c
		if c.HasNE() {
			var kept []Atom
			for _, a := range c.Atoms {
				if a.Op != OpNE {
					kept = append(kept, a)
				}
			}
			decidable = Conjunction{Atoms: kept}
		}
		cons, err := NormalizeConjunction(decidable)
		if err != nil {
			out.Conjuncts = append(out.Conjuncts, c) // conservative
			continue
		}
		if _, ok := closure(cons); !ok {
			dropped++
			continue
		}
		if c.HasNE() {
			out.Conjuncts = append(out.Conjuncts, c)
		} else {
			out.Conjuncts = append(out.Conjuncts, MinimizeConjunction(c))
		}
	}
	return out, dropped
}
