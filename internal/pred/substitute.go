package pred

// This file implements the substitution C(t, Y2) of Definition 4.1 and
// the variant/invariant classification of Definition 4.2.

// Class partitions atoms relative to a substitution (Definition 4.2).
type Class uint8

const (
	// ClassInvariant atoms mention no substituted variable; they are
	// unaffected by the tuple being tested.
	ClassInvariant Class = iota
	// ClassVariantEvaluable atoms become ground (c op d) after
	// substitution and evaluate immediately to true or false.
	ClassVariantEvaluable
	// ClassVariantNonEvaluable atoms become (y op c) after
	// substitution: one variable substituted, one remaining.
	ClassVariantNonEvaluable
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case ClassInvariant:
		return "invariant"
	case ClassVariantEvaluable:
		return "variant evaluable"
	case ClassVariantNonEvaluable:
		return "variant non-evaluable"
	default:
		return "unknown class"
	}
}

// ClassifyAtom classifies one atom with respect to the set of
// substituted variables Y1, given as a membership predicate.
func ClassifyAtom(a Atom, inY1 func(Var) bool) Class {
	leftIn := inY1(a.Left)
	if !a.HasRightVar() {
		if leftIn {
			return ClassVariantEvaluable
		}
		return ClassInvariant
	}
	rightIn := inY1(a.Right)
	switch {
	case leftIn && rightIn:
		return ClassVariantEvaluable
	case leftIn || rightIn:
		return ClassVariantNonEvaluable
	default:
		return ClassInvariant
	}
}

// Split partitions the conjunction into its invariant, variant
// evaluable, and variant non-evaluable subexpressions, written
// C_INV ∧ C_VEVAL ∧ C_VNEVAL in Algorithm 4.1.
func (c Conjunction) Split(inY1 func(Var) bool) (inv, vEval, vNonEval []Atom) {
	for _, a := range c.Atoms {
		switch ClassifyAtom(a, inY1) {
		case ClassInvariant:
			inv = append(inv, a)
		case ClassVariantEvaluable:
			vEval = append(vEval, a)
		default:
			vNonEval = append(vNonEval, a)
		}
	}
	return inv, vEval, vNonEval
}

// SubstituteAtom substitutes bound variables into one atom.
//
// Results:
//   - ground=true: the atom became (c op d); value holds its truth.
//   - ground=false: residual holds the remaining atom. When exactly
//     one side was substituted the residual is rewritten into the
//     var-constant form (y op' c) of Definition 4.2.
func SubstituteAtom(a Atom, bind Binding) (residual Atom, ground, value bool) {
	lv, leftBound := bind(a.Left)
	if !a.HasRightVar() {
		if leftBound {
			return Atom{}, true, a.Op.Compare(lv, a.C)
		}
		return a, false, false
	}
	rv, rightBound := bind(a.Right)
	switch {
	case leftBound && rightBound:
		return Atom{}, true, a.Op.CompareShifted(lv, rv, a.C)
	case leftBound:
		// lv op y + c  ≡  y Flip(op) lv − c. The folded constant
		// saturates at the int64 bounds (AddSat doc): exact over the
		// engine's int64 attribute domain except that a bound excluding
		// every int64 keeps its nearest representable value, which can
		// only make an unsatisfiable residue satisfiable — the sound
		// (conservative) direction for the §4 irrelevance test.
		return VarConst(a.Right, a.Op.Flip(), SubSat(lv, a.C)), false, false
	case rightBound:
		// x op rv + c
		return VarConst(a.Left, a.Op, AddSat(rv, a.C)), false, false
	default:
		return a, false, false
	}
}

// Substitute computes C(t, Y2): bound variables are replaced by their
// values, ground atoms are evaluated and removed, and the residual
// conjunction over the remaining variables is returned.
//
// ok=false means some ground atom evaluated to false, so the whole
// substituted conjunction is unsatisfiable regardless of the residue
// (the residual is then meaningless). ok=true with an empty residual
// means the substituted conjunction is trivially true.
func (c Conjunction) Substitute(bind Binding) (residual Conjunction, ok bool) {
	out := make([]Atom, 0, len(c.Atoms))
	for _, a := range c.Atoms {
		r, ground, value := SubstituteAtom(a, bind)
		if ground {
			if !value {
				return Conjunction{}, false
			}
			continue
		}
		out = append(out, r)
	}
	return Conjunction{Atoms: out}, true
}

// BindTuple builds a Binding from a tuple over a scheme whose
// attributes are the substituted variables Y1. Variables outside the
// scheme remain unbound.
func BindTuple(s interface {
	Pos(Var) (int, bool)
}, t []int64) Binding {
	return func(v Var) (int64, bool) {
		p, ok := s.Pos(v)
		if !ok {
			return 0, false
		}
		return t[p], true
	}
}
