package pred

import (
	"testing"

	"mview/internal/schema"
	"mview/internal/tuple"
)

func inSet(vars ...Var) func(Var) bool {
	s := make(map[Var]bool, len(vars))
	for _, v := range vars {
		s[v] = true
	}
	return func(v Var) bool { return s[v] }
}

func TestClassifyAtom(t *testing.T) {
	y1 := inSet("A", "B")
	cases := []struct {
		a    Atom
		want Class
	}{
		{VarConst("A", OpLT, 10), ClassVariantEvaluable},
		{VarConst("C", OpLT, 10), ClassInvariant},
		{VarVar("A", OpEQ, "B", 0), ClassVariantEvaluable},
		{VarVar("A", OpEQ, "C", 0), ClassVariantNonEvaluable},
		{VarVar("C", OpEQ, "B", 0), ClassVariantNonEvaluable},
		{VarVar("C", OpEQ, "D", 0), ClassInvariant},
	}
	for _, c := range cases {
		if got := ClassifyAtom(c.a, y1); got != c.want {
			t.Errorf("ClassifyAtom(%s) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassInvariant.String() != "invariant" ||
		ClassVariantEvaluable.String() != "variant evaluable" ||
		ClassVariantNonEvaluable.String() != "variant non-evaluable" {
		t.Error("class names drifted from the paper")
	}
}

func TestSplit(t *testing.T) {
	// Example 4.1's condition over R(A,B) and S(C,D):
	// (A < 10) ∧ (C > 5) ∧ (B = C), substituting a tuple of R.
	c := And(
		VarConst("A", OpLT, 10),
		VarConst("C", OpGT, 5),
		VarVar("B", OpEQ, "C", 0),
	)
	inv, vEval, vNonEval := c.Split(inSet("A", "B"))
	if len(inv) != 1 || inv[0].Left != "C" {
		t.Errorf("invariant = %v", inv)
	}
	if len(vEval) != 1 || vEval[0].Left != "A" {
		t.Errorf("variant evaluable = %v", vEval)
	}
	if len(vNonEval) != 1 || vNonEval[0].Left != "B" {
		t.Errorf("variant non-evaluable = %v", vNonEval)
	}
}

// TestSubstituteExample41 works the paper's Example 4.1 substitutions.
func TestSubstituteExample41(t *testing.T) {
	c := And(
		VarConst("A", OpLT, 10),
		VarConst("C", OpGT, 5),
		VarVar("B", OpEQ, "C", 0),
	)

	// Insert (9, 10) into r: C(9,10,C) = (9<10) ∧ (C>5) ∧ (10=C),
	// which is satisfiable (C = 10 works): residual must keep both
	// C-atoms and drop the ground true atom.
	res, ok := c.Substitute(bindMap(map[Var]int64{"A": 9, "B": 10}))
	if !ok {
		t.Fatal("substitution reported trivially false")
	}
	if len(res.Atoms) != 2 {
		t.Fatalf("residual = %v", res)
	}
	// (10 = C) must have been rewritten to (C = 10).
	var sawCeq bool
	for _, a := range res.Atoms {
		if a.Left == "C" && a.Op == OpEQ && !a.HasRightVar() && a.C == 10 {
			sawCeq = true
		}
	}
	if !sawCeq {
		t.Errorf("residual missing rewritten C = 10: %v", res)
	}

	// Insert (11, 10): (11<10) is ground false, so the substituted
	// condition is unsatisfiable regardless of the database state.
	_, ok = c.Substitute(bindMap(map[Var]int64{"A": 11, "B": 10}))
	if ok {
		t.Error("substitution of (11,10) must be trivially false")
	}
}

func TestSubstituteAtomRewrites(t *testing.T) {
	// lv op y + c  ≡  y Flip(op) lv − c: check semantics for every op
	// by evaluating both sides over a small domain.
	ops := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	for _, op := range ops {
		for lv := int64(-2); lv <= 2; lv++ {
			for c := int64(-1); c <= 1; c++ {
				a := VarVar("x", op, "y", c)
				res, ground, _ := SubstituteAtom(a, bindMap(map[Var]int64{"x": lv}))
				if ground {
					t.Fatalf("atom %s with only x bound reported ground", a)
				}
				if res.Left != "y" || res.HasRightVar() {
					t.Fatalf("residual %v not in var-const form", res)
				}
				for y := int64(-3); y <= 3; y++ {
					want := op.Compare(lv, y+c)
					got := res.Op.Compare(y, res.C)
					if got != want {
						t.Fatalf("rewrite of %s at x=%d,y=%d: got %v want %v (residual %s)", a, lv, y, got, want, res)
					}
				}
			}
		}
	}
}

func TestSubstituteAtomRightBound(t *testing.T) {
	a := VarVar("x", OpLT, "y", 3)
	res, ground, _ := SubstituteAtom(a, bindMap(map[Var]int64{"y": 7}))
	if ground {
		t.Fatal("should not be ground")
	}
	if res.Left != "x" || res.Op != OpLT || res.HasRightVar() || res.C != 10 {
		t.Errorf("residual = %v, want x < 10", res)
	}
}

func TestSubstituteAtomUnboundUnchanged(t *testing.T) {
	a := VarVar("x", OpLT, "y", 3)
	res, ground, _ := SubstituteAtom(a, bindMap(nil))
	if ground || res != a {
		t.Errorf("unbound substitution altered atom: %v", res)
	}
	b := VarConst("x", OpGE, 5)
	res, ground, _ = SubstituteAtom(b, bindMap(nil))
	if ground || res != b {
		t.Errorf("unbound substitution altered atom: %v", res)
	}
}

func TestSubstituteTriviallyTrue(t *testing.T) {
	c := And(VarConst("A", OpLT, 10))
	res, ok := c.Substitute(bindMap(map[Var]int64{"A": 5}))
	if !ok || len(res.Atoms) != 0 {
		t.Errorf("want empty residual, got %v ok=%v", res, ok)
	}
}

func TestBindTuple(t *testing.T) {
	s := schema.MustScheme("A", "B")
	b := BindTuple(s, tuple.New(7, 8))
	if v, ok := b("B"); !ok || v != 8 {
		t.Errorf("BindTuple(B) = %d,%v", v, ok)
	}
	if _, ok := b("Z"); ok {
		t.Error("unknown variable must be unbound")
	}
}
