package pred

import (
	"math"
	"math/big"
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that accepted inputs
// round-trip through String → Parse to the same rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"A < 10",
		"A < 10 && C > 5 && B = C",
		"(A = 1 || A = 2) && (B = 1 || B = 2)",
		"A <= B + 3",
		"A >= B - 4 && C != 7",
		"true",
		"false",
		"R.A = S.B",
		"a AND b = 1 or c = 2",
		"A == 9223372036854775807",
		"A = -1",
		"x != y + -3",
		"(((((A = 1)))))",
		"A < 10 &&",
		"&& A < 10",
		"A $ 1",
		"A = B + 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(input)
		if err != nil {
			return // rejections are fine; panics are not
		}
		rendered := d.String()
		d2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted input does not re-parse: %q → %q: %v", input, rendered, err)
		}
		if got := d2.String(); got != rendered {
			t.Fatalf("round trip drifted: %q → %q → %q", input, rendered, got)
		}
	})
}

// FuzzNormalizeEval cross-checks Normalize against direct atom
// evaluation on fuzzed operands.
func FuzzNormalizeEval(f *testing.F) {
	f.Add(int64(1), int64(2), int64(0), uint8(0))
	f.Add(int64(-5), int64(5), int64(3), uint8(2))
	f.Fuzz(func(t *testing.T, x, y, c int64, opIdx uint8) {
		// Clamp to avoid arithmetic overflow in y + c.
		x %= 1 << 40
		y %= 1 << 40
		c %= 1 << 40
		op := []Op{OpEQ, OpLT, OpLE, OpGT, OpGE}[int(opIdx)%5]
		a := VarVar("x", op, "y", c)
		cons, err := Normalize(a)
		if err != nil {
			t.Fatal(err)
		}
		want := op.Compare(x, y+c)
		got := true
		for _, cc := range cons {
			val := func(v Var) int64 {
				switch v {
				case "x":
					return x
				case "y":
					return y
				default:
					return 0
				}
			}
			got = got && val(cc.X) <= val(cc.Y)+cc.C
		}
		if got != want {
			t.Fatalf("normalize mismatch for %s at x=%d y=%d: %v vs %v", a, x, y, got, want)
		}
	})
}

// FuzzCompareShifted cross-checks the overflow-safe x op (y + c)
// against exact big.Int arithmetic, with no clamping: the interesting
// inputs are exactly the ones where y + c leaves the int64 range.
func FuzzCompareShifted(f *testing.F) {
	f.Add(int64(5), int64(math.MaxInt64), int64(1), uint8(1))
	f.Add(int64(-7), int64(math.MinInt64), int64(-1), uint8(3))
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64), int64(math.MaxInt64), uint8(0))
	f.Add(int64(math.MinInt64), int64(math.MinInt64), int64(math.MinInt64), uint8(5))
	f.Fuzz(func(t *testing.T, x, y, c int64, opIdx uint8) {
		op := []Op{OpEQ, OpLT, OpLE, OpGT, OpGE, OpNE}[int(opIdx)%6]
		sum := new(big.Int).Add(big.NewInt(y), big.NewInt(c))
		cmp := big.NewInt(x).Cmp(sum)
		var want bool
		switch op {
		case OpEQ:
			want = cmp == 0
		case OpNE:
			want = cmp != 0
		case OpLT:
			want = cmp < 0
		case OpLE:
			want = cmp <= 0
		case OpGT:
			want = cmp > 0
		case OpGE:
			want = cmp >= 0
		}
		if got := op.CompareShifted(x, y, c); got != want {
			t.Fatalf("CompareShifted(%d, %s, %d, %d) = %v, want %v (exact sum %s)",
				x, op, y, c, got, want, sum)
		}
	})
}

// TestFuzzSeedsAsRegression replays the seed corpus through the fuzz
// bodies so `go test` (without -fuzz) still covers them.
func TestFuzzSeedsAsRegression(t *testing.T) {
	for _, s := range []string{"A <", "A = 1 extra", strings.Repeat("(", 100)} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}
