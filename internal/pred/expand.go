package pred

import "fmt"

// ExpandNE rewrites every ≠ atom of the conjunction into the exact
// disjunction (x < y + c) ∨ (x > y + c), returning the resulting list
// of ≠-free conjunctions. A conjunction with k ≠-atoms expands into
// 2^k conjuncts; maxConjuncts caps that growth (0 means a default of
// 256). The expansion is exact: its disjunction is equivalent to the
// input over the integers.
func ExpandNE(c Conjunction, maxConjuncts int) ([]Conjunction, error) {
	if maxConjuncts <= 0 {
		maxConjuncts = 256
	}
	out := []Conjunction{{Atoms: []Atom{}}}
	for _, a := range c.Atoms {
		if a.Op != OpNE {
			for i := range out {
				out[i].Atoms = append(out[i].Atoms, a)
			}
			continue
		}
		if len(out)*2 > maxConjuncts {
			return nil, fmt.Errorf("pred: expanding != atoms would exceed %d conjuncts", maxConjuncts)
		}
		lt := a
		lt.Op = OpLT
		gt := a
		gt.Op = OpGT
		next := make([]Conjunction, 0, len(out)*2)
		for _, conj := range out {
			ltc := Conjunction{Atoms: append(append([]Atom{}, conj.Atoms...), lt)}
			gtc := Conjunction{Atoms: append(append([]Atom{}, conj.Atoms...), gt)}
			next = append(next, ltc, gtc)
		}
		out = next
	}
	return out, nil
}

// ExpandNEDNF applies ExpandNE to every conjunct of a DNF, returning an
// equivalent ≠-free DNF. maxConjuncts bounds the total number of
// output conjuncts.
func ExpandNEDNF(d DNF, maxConjuncts int) (DNF, error) {
	if maxConjuncts <= 0 {
		maxConjuncts = 256
	}
	var out []Conjunction
	for _, c := range d.Conjuncts {
		cs, err := ExpandNE(c, maxConjuncts)
		if err != nil {
			return DNF{}, err
		}
		if len(out)+len(cs) > maxConjuncts {
			return DNF{}, fmt.Errorf("pred: expanding != atoms would exceed %d conjuncts", maxConjuncts)
		}
		out = append(out, cs...)
	}
	return DNF{Conjuncts: out}, nil
}
