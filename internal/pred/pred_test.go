package pred

import (
	"math"
	"testing"

	"mview/internal/schema"
	"mview/internal/tuple"
)

func bindMap(m map[Var]int64) Binding {
	return func(v Var) (int64, bool) {
		x, ok := m[v]
		return x, ok
	}
}

func TestOpCompare(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{OpEQ, 1, 1, true}, {OpEQ, 1, 2, false},
		{OpNE, 1, 2, true}, {OpNE, 2, 2, false},
		{OpLT, 1, 2, true}, {OpLT, 2, 2, false},
		{OpLE, 2, 2, true}, {OpLE, 3, 2, false},
		{OpGT, 3, 2, true}, {OpGT, 2, 2, false},
		{OpGE, 2, 2, true}, {OpGE, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Compare(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpFlip(t *testing.T) {
	// (x op y) ≡ (y Flip(op) x) for all operand pairs.
	ops := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	for _, op := range ops {
		for a := int64(-2); a <= 2; a++ {
			for b := int64(-2); b <= 2; b++ {
				if op.Compare(a, b) != op.Flip().Compare(b, a) {
					t.Errorf("Flip broken for %s on (%d,%d)", op, a, b)
				}
			}
		}
	}
}

func TestAtomString(t *testing.T) {
	cases := []struct {
		a    Atom
		want string
	}{
		{VarConst("A", OpLT, 10), "A < 10"},
		{VarVar("A", OpEQ, "B", 0), "A = B"},
		{VarVar("A", OpLE, "B", 3), "A <= B + 3"},
		{VarVar("A", OpGE, "B", -3), "A >= B - 3"},
		{VarConst("A", OpNE, -1), "A != -1"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestEvalAtom(t *testing.T) {
	b := bindMap(map[Var]int64{"A": 5, "B": 7})
	cases := []struct {
		a    Atom
		want bool
	}{
		{VarConst("A", OpLT, 10), true},
		{VarConst("A", OpGT, 10), false},
		{VarVar("A", OpLT, "B", 0), true},
		{VarVar("A", OpEQ, "B", -2), true}, // 5 = 7 + (−2)
		{VarVar("B", OpGE, "A", 2), true},  // 7 ≥ 5 + 2
	}
	for _, c := range cases {
		got, err := EvalAtom(c.a, b)
		if err != nil {
			t.Fatalf("EvalAtom(%s): %v", c.a, err)
		}
		if got != c.want {
			t.Errorf("EvalAtom(%s) = %v, want %v", c.a, got, c.want)
		}
	}
	if _, err := EvalAtom(VarConst("Z", OpEQ, 1), b); err == nil {
		t.Error("unbound left variable should error")
	}
	if _, err := EvalAtom(VarVar("A", OpEQ, "Z", 0), b); err == nil {
		t.Error("unbound right variable should error")
	}
}

// TestEvalAtomOverflow pins the overflow behaviour of x op y + c near
// the int64 bounds. A naive `y + c` wraps (MaxInt64 + 1 = MinInt64) and
// inverts the comparison — e.g. 5 < MaxInt64 + 1 evaluated as
// 5 < MinInt64 = false — which this test caught before EvalAtom moved
// to CompareShifted.
func TestEvalAtomOverflow(t *testing.T) {
	b := bindMap(map[Var]int64{
		"S":  5,
		"N":  -7,
		"Hi": math.MaxInt64,
		"Lo": math.MinInt64,
	})
	cases := []struct {
		a    Atom
		want bool
	}{
		// y + c above MaxInt64: every x is strictly below the true sum.
		{VarVar("S", OpLT, "Hi", 1), true},
		{VarVar("S", OpLE, "Hi", 1), true},
		{VarVar("S", OpGT, "Hi", 1), false},
		{VarVar("S", OpGE, "Hi", 1), false},
		{VarVar("S", OpEQ, "Hi", 1), false},
		{VarVar("S", OpNE, "Hi", 1), true},
		{VarVar("Hi", OpLT, "Hi", math.MaxInt64), true},
		// y + c below MinInt64: every x is strictly above the true sum.
		{VarVar("N", OpGT, "Lo", -1), true},
		{VarVar("N", OpGE, "Lo", -1), true},
		{VarVar("N", OpLT, "Lo", -1), false},
		{VarVar("N", OpLE, "Lo", -1), false},
		{VarVar("N", OpEQ, "Lo", -1), false},
		{VarVar("N", OpNE, "Lo", -1), true},
		{VarVar("Lo", OpGT, "Lo", math.MinInt64), true},
		// Sums that land exactly on a bound do not overflow.
		{VarVar("Hi", OpEQ, "Hi", 0), true},
		{VarVar("Lo", OpEQ, "Lo", 0), true},
		{VarVar("Hi", OpEQ, "Lo", math.MaxInt64), false}, // MinInt64 + MaxInt64 = -1
		{VarVar("N", OpGT, "Lo", math.MaxInt64), false},  // -7 > -1 is false
	}
	for _, c := range cases {
		got, err := EvalAtom(c.a, b)
		if err != nil {
			t.Fatalf("EvalAtom(%s): %v", c.a, err)
		}
		if got != c.want {
			t.Errorf("EvalAtom(%s) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestConjunctionEval(t *testing.T) {
	c := And(VarConst("A", OpLT, 10), VarVar("B", OpEQ, "C", 0))
	ok, err := c.Eval(bindMap(map[Var]int64{"A": 9, "B": 10, "C": 10}))
	if err != nil || !ok {
		t.Errorf("Eval = %v,%v want true", ok, err)
	}
	ok, err = c.Eval(bindMap(map[Var]int64{"A": 11, "B": 10, "C": 10}))
	if err != nil || ok {
		t.Errorf("Eval = %v,%v want false", ok, err)
	}
	if ok, err := True().Eval(bindMap(nil)); err != nil || !ok {
		t.Error("empty conjunction must be true")
	}
}

func TestDNFEval(t *testing.T) {
	d := Or(
		And(VarConst("A", OpLT, 0)),
		And(VarConst("A", OpGT, 10)),
	)
	for _, c := range []struct {
		a    int64
		want bool
	}{{-1, true}, {5, false}, {11, true}} {
		got, err := d.Eval(bindMap(map[Var]int64{"A": c.a}))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("DNF(A=%d) = %v, want %v", c.a, got, c.want)
		}
	}
	if ok, _ := Never().Eval(bindMap(nil)); ok {
		t.Error("Never must evaluate false")
	}
	if ok, _ := Always().Eval(bindMap(nil)); !ok {
		t.Error("Always must evaluate true")
	}
}

func TestVars(t *testing.T) {
	c := And(VarVar("B", OpEQ, "C", 0), VarConst("A", OpLT, 10))
	got := c.Vars()
	want := []Var{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Vars = %v, want %v", got, want)
		}
	}
	d := Or(c, And(VarConst("D", OpGE, 0)))
	if len(d.Vars()) != 4 {
		t.Errorf("DNF Vars = %v", d.Vars())
	}
}

func TestRename(t *testing.T) {
	c := And(VarVar("A", OpEQ, "B", 0), VarConst("A", OpLT, 3))
	r := c.Rename(func(v Var) Var { return "R." + v })
	if r.Atoms[0].Left != "R.A" || r.Atoms[0].Right != "R.B" || r.Atoms[1].Left != "R.A" {
		t.Errorf("Rename = %v", r)
	}
	// Original untouched.
	if c.Atoms[0].Left != "A" {
		t.Error("Rename mutated receiver")
	}
	d := Or(c).Rename(func(v Var) Var { return "q" + v })
	if d.Conjuncts[0].Atoms[0].Left != "qA" {
		t.Errorf("DNF Rename = %v", d)
	}
}

func TestHasNE(t *testing.T) {
	if And(VarConst("A", OpLT, 1)).HasNE() {
		t.Error("no NE present")
	}
	if !And(VarConst("A", OpNE, 1)).HasNE() {
		t.Error("NE not detected")
	}
	if !Or(True(), And(VarVar("A", OpNE, "B", 0))).HasNE() {
		t.Error("DNF NE not detected")
	}
}

func TestCompile(t *testing.T) {
	s := schema.MustScheme("A", "B", "C")
	d := MustParse("A < 10 && B = C")
	f, err := d.Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !f(tuple.New(9, 5, 5)) {
		t.Error("want true for (9,5,5)")
	}
	if f(tuple.New(11, 5, 5)) || f(tuple.New(9, 5, 6)) {
		t.Error("want false")
	}
	if _, err := MustParse("Z = 1").Compile(s); err == nil {
		t.Error("unknown variable should fail to compile")
	}
	// Var-var with offset.
	g, err := MustParse("B >= C + 2").Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if !g(tuple.New(0, 7, 5)) || g(tuple.New(0, 6, 5)) {
		t.Error("offset comparison miscompiled")
	}
}

func TestStringRendering(t *testing.T) {
	if got := True().String(); got != "true" {
		t.Errorf("True = %q", got)
	}
	if got := Never().String(); got != "false" {
		t.Errorf("Never = %q", got)
	}
	d := Or(And(VarConst("A", OpLT, 1)), And(VarConst("B", OpGT, 2)))
	if got := d.String(); got != "(A < 1) || (B > 2)" {
		t.Errorf("DNF = %q", got)
	}
}
