package irrelevance

import (
	"math/rand"
	"testing"

	"mview/internal/delta"
	"mview/internal/eval"
	"mview/internal/expr"
	"mview/internal/pred"
	"mview/internal/relation"
	"mview/internal/schema"
	"mview/internal/tuple"
)

func testDB(t *testing.T) *schema.Database {
	t.Helper()
	db, err := schema.NewDatabase(
		&schema.RelScheme{Name: "R", Scheme: schema.MustScheme("A", "B")},
		&schema.RelScheme{Name: "S", Scheme: schema.MustScheme("C", "D")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func example41View(t *testing.T) *expr.Bound {
	t.Helper()
	db := testDB(t)
	b, err := expr.Bind(expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("A < 10 && C > 5 && B = C"),
		Project:  []schema.Attribute{"A", "D"},
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExample41 reproduces the paper's Example 4.1 verdicts.
func TestExample41(t *testing.T) {
	b := example41View(t)
	c, err := NewChecker(b, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Inserting (9,10) into r is relevant: C(9,10,C) is satisfiable.
	rel, err := c.Relevant(tuple.New(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Error("(9,10) must be relevant")
	}
	// Inserting (11,10) is provably irrelevant: (11<10) is false.
	rel, err = c.Relevant(tuple.New(11, 10))
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Error("(11,10) must be irrelevant")
	}
	// (9,3): A<10 holds but B=C forces C=3, contradicting C>5.
	rel, err = c.Relevant(tuple.New(9, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Error("(9,3) must be irrelevant (C=3 contradicts C>5)")
	}
	tested, irr := c.Stats()
	if tested != 3 || irr != 2 {
		t.Errorf("Stats = %d,%d want 3,2", tested, irr)
	}
}

// TestDeletionsUseSameTest verifies §4's remark that the same
// substitution test covers deletions.
func TestDeletionsUseSameTest(t *testing.T) {
	b := example41View(t)
	c, err := NewChecker(b, 1, Options{}) // updates to S(C,D)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting (4, 99) from s: C>5 fails → the tuple was never visible.
	rel, err := c.Relevant(tuple.New(4, 99))
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Error("(4,99) must be irrelevant to deletions as well")
	}
	rel, err = c.Relevant(tuple.New(7, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Error("(7,99) must be relevant")
	}
}

func TestUnconditionedOperandAlwaysRelevant(t *testing.T) {
	db := testDB(t)
	// Condition only mentions R; S is unconstrained, so every S-update
	// is relevant (it multiplies the cross product).
	b, err := expr.Bind(expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("A < 10"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(b, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.Relevant(tuple.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Error("updates to an unconstrained operand are always relevant")
	}
}

func TestInvariantUnsatisfiableView(t *testing.T) {
	db := testDB(t)
	b, err := expr.Bind(expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("C > 5 && C < 5 && A = 1"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(b, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.Relevant(tuple.New(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Error("view condition is unsatisfiable; every update is irrelevant")
	}
}

func TestDisjunctiveCondition(t *testing.T) {
	db := testDB(t)
	b, err := expr.Bind(expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("(A < 0 && B = C) || (A > 100 && B = D)"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(b, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    tuple.Tuple
		want bool
	}{
		{tuple.New(-1, 7), true},  // first disjunct open
		{tuple.New(101, 7), true}, // second disjunct open
		{tuple.New(50, 7), false}, // both disjuncts closed
	}
	for _, cs := range cases {
		got, err := c.Relevant(cs.t)
		if err != nil {
			t.Fatal(err)
		}
		if got != cs.want {
			t.Errorf("Relevant(%v) = %v, want %v", cs.t, got, cs.want)
		}
	}
}

func TestNEExactExpansion(t *testing.T) {
	db := testDB(t)
	b, err := expr.Bind(expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("A != 5 && A >= 5 && A <= 5 && B = C"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(b, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Conservative() {
		t.Fatal("one ≠ atom should expand, not degrade")
	}
	// The condition is globally unsatisfiable (A=5 and A≠5).
	rel, err := c.Relevant(tuple.New(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Error("condition is unsatisfiable; update must be irrelevant")
	}
}

func TestNEConservativeFallback(t *testing.T) {
	db := testDB(t)
	// Nine ≠ atoms exceed an NELimit of 256 (2^9 = 512): conservative.
	cond := "A != 1 && A != 2 && A != 3 && A != 4 && A != 5 && B != 1 && B != 2 && B != 3 && B != 4"
	b, err := expr.Bind(expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse(cond + " && A > 1000"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(b, 0, Options{NELimit: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Conservative() {
		t.Fatal("expected conservative degradation")
	}
	// Even an "obviously" irrelevant tuple is reported relevant: sound,
	// not minimal.
	rel, err := c.Relevant(tuple.New(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Error("conservative checker must report relevant")
	}
}

func TestFilterTuplesAndRelation(t *testing.T) {
	b := example41View(t)
	c, err := NewChecker(b, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := []tuple.Tuple{tuple.New(9, 10), tuple.New(11, 10), tuple.New(5, 7), tuple.New(5, 2)}
	out, err := c.FilterTuples(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("FilterTuples = %v", out)
	}

	r := relation.MustFromTuples(schema.MustScheme("A", "B"), in...)
	fr, err := c.FilterRelation(r)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Len() != 2 || !fr.Has(tuple.New(9, 10)) || !fr.Has(tuple.New(5, 7)) {
		t.Errorf("FilterRelation = %v", fr)
	}
}

func TestFilterUpdate(t *testing.T) {
	b := example41View(t)
	c, err := NewChecker(b, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := delta.Update{
		Rel: "R",
		Inserts: relation.MustFromTuples(schema.MustScheme("A", "B"),
			tuple.New(9, 10), tuple.New(11, 10)),
		Deletes: relation.MustFromTuples(schema.MustScheme("A", "B"),
			tuple.New(5, 7), tuple.New(50, 7)),
	}
	out, err := c.FilterUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	if out.Inserts.Len() != 1 || !out.Inserts.Has(tuple.New(9, 10)) {
		t.Errorf("filtered inserts = %v", out.Inserts)
	}
	if out.Deletes.Len() != 1 || !out.Deletes.Has(tuple.New(5, 7)) {
		t.Errorf("filtered deletes = %v", out.Deletes)
	}
	// Nil sides are tolerated.
	out, err = c.FilterUpdate(delta.Update{Rel: "R"})
	if err != nil || out.Inserts != nil || out.Deletes != nil {
		t.Errorf("nil-side filter: %+v, %v", out, err)
	}
	// Errors propagate (arity mismatch inside a relation).
	bad := delta.Update{Rel: "R", Inserts: relation.MustFromTuples(schema.MustScheme("X"), tuple.New(1))}
	if _, err := c.FilterUpdate(bad); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestCheckerErrors(t *testing.T) {
	b := example41View(t)
	if _, err := NewChecker(b, 5, Options{}); err == nil {
		t.Error("bad operand index must fail")
	}
	c, err := NewChecker(b, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Relevant(tuple.New(1)); err == nil {
		t.Error("arity mismatch must fail")
	}
}

// TestSetRelevantTheorem42 exercises multi-tuple irrelevance: tuples
// individually relevant whose combination is impossible.
func TestSetRelevantTheorem42(t *testing.T) {
	b := example41View(t)

	// r-tuple (9,10) is relevant; s-tuple (20,1) is relevant
	// (C=20 > 5). But together B=C forces 10=20: impossible.
	rel, err := SetRelevant(b, map[int]tuple.Tuple{
		0: tuple.New(9, 10),
		1: tuple.New(20, 1),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Error("pair {(9,10), (20,1)} must be jointly irrelevant")
	}

	// A compatible pair is jointly relevant.
	rel, err = SetRelevant(b, map[int]tuple.Tuple{
		0: tuple.New(9, 10),
		1: tuple.New(10, 1),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Error("pair {(9,10), (10,1)} must be jointly relevant")
	}

	// Errors.
	if _, err := SetRelevant(b, nil, Options{}); err == nil {
		t.Error("empty set must fail")
	}
	if _, err := SetRelevant(b, map[int]tuple.Tuple{9: tuple.New(1, 2)}, Options{}); err == nil {
		t.Error("bad operand index must fail")
	}
	if _, err := SetRelevant(b, map[int]tuple.Tuple{0: tuple.New(1)}, Options{}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

// TestRelevantMatchesNaive fuzzes tuples against both the prepared
// (Algorithm 4.1) and the rebuild-per-tuple paths.
func TestRelevantMatchesNaive(t *testing.T) {
	db := testDB(t)
	conds := []string{
		"A < 10 && C > 5 && B = C",
		"A <= C + 3 && B >= D - 2",
		"(A < 0 && B = C) || (A > 50 && D <= B + 1)",
		"A = B && C = 7",
	}
	rng := rand.New(rand.NewSource(11))
	for _, cond := range conds {
		b, err := expr.Bind(expr.View{
			Name:     "v",
			Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
			Where:    pred.MustParse(cond),
		}, db)
		if err != nil {
			t.Fatal(err)
		}
		for opIdx := 0; opIdx < 2; opIdx++ {
			c, err := NewChecker(b, opIdx, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 200; trial++ {
				tu := tuple.New(int64(rng.Intn(120)-10), int64(rng.Intn(120)-10))
				fast, err := c.Relevant(tu)
				if err != nil {
					t.Fatal(err)
				}
				naive, err := c.RelevantNaive(tu)
				if err != nil {
					t.Fatal(err)
				}
				if fast != naive {
					t.Fatalf("cond %q op %d tuple %v: fast=%v naive=%v", cond, opIdx, tu, fast, naive)
				}
			}
		}
	}
}

// TestIrrelevantUpdatesNeverChangeView is the semantic soundness
// property behind Theorem 4.1: if the checker calls an insert
// irrelevant, materializing the view before and after the insert must
// give identical results — for arbitrary database states.
func TestIrrelevantUpdatesNeverChangeView(t *testing.T) {
	db := testDB(t)
	b, err := expr.Bind(expr.View{
		Name:     "v",
		Operands: []expr.Operand{{Rel: "R"}, {Rel: "S"}},
		Where:    pred.MustParse("A < 10 && C > 5 && B = C"),
		Project:  []schema.Attribute{"A", "D"},
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := NewChecker(b, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		r := relation.New(schema.MustScheme("A", "B"))
		s := relation.New(schema.MustScheme("C", "D"))
		for i := 0; i < rng.Intn(20); i++ {
			_ = r.Insert(tuple.New(int64(rng.Intn(20)), int64(rng.Intn(20))))
		}
		for i := 0; i < rng.Intn(20); i++ {
			_ = s.Insert(tuple.New(int64(rng.Intn(20)), int64(rng.Intn(20))))
		}
		tu := tuple.New(int64(rng.Intn(30)-5), int64(rng.Intn(30)-5))
		if r.Has(tu) {
			continue
		}
		rel, err := checker.Relevant(tu)
		if err != nil {
			t.Fatal(err)
		}
		before, err := eval.Materialize(b, []*relation.Relation{r, s}, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2 := r.Clone()
		_ = r2.Insert(tu)
		after, err := eval.Materialize(b, []*relation.Relation{r2, s}, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rel && !before.Equal(after) {
			t.Fatalf("irrelevant insert %v changed the view:\nbefore %v\nafter %v\nr=%v s=%v",
				tu, before, after, r, s)
		}
	}
}
